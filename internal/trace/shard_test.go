package trace

import (
	"fmt"
	"testing"
)

// TestShardSeedPinned pins exact derived seeds. These values are load-
// bearing: every per-shard workload stream — and therefore every sharded
// simulation output and checkpoint image — is a function of them, so a
// change here silently invalidates all committed sharded results.
func TestShardSeedPinned(t *testing.T) {
	cases := []struct {
		seed, shard, want uint64
	}{
		{42, 0, 0xbdd732262feb6e95},
		{42, 1, 0xd9639a006c85adb0},
		{42, 2, 0x5fd30d2fcbef75e3},
		{42, 3, 0x581ce1ff0e4ae394},
		{43, 0, 0x118e846ea93bc949},
		{0, 0, 0xe220a8397b1dcdaf},
	}
	for _, c := range cases {
		if got := ShardSeed(c.seed, c.shard); got != c.want {
			t.Errorf("ShardSeed(%d, %d) = %#x, want %#x", c.seed, c.shard, got, c.want)
		}
	}
}

// TestShardSeedDecorrelates checks the properties the derivation exists
// for: distinct streams across shards of one chip, across adjacent base
// seeds at the same shard index, and no shard trivially inheriting the
// base seed (shard workloads must not replay the monolithic one).
func TestShardSeedDecorrelates(t *testing.T) {
	seen := make(map[uint64]string)
	note := func(v uint64, what string) {
		if prev, dup := seen[v]; dup {
			t.Errorf("%s collides with %s: %#x", what, prev, v)
		}
		seen[v] = what
	}
	for seed := uint64(7); seed < 10; seed++ {
		for shard := uint64(0); shard < 64; shard++ {
			v := ShardSeed(seed, shard)
			if v == seed {
				t.Errorf("ShardSeed(%d, %d) equals the base seed", seed, shard)
			}
			note(v, fmt.Sprintf("ShardSeed(%d, %d)", seed, shard))
		}
	}
}
