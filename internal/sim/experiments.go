package sim

import (
	"fmt"
	"strings"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/drm"
	"wlreviver/internal/freep"
	"wlreviver/internal/lls"
	"wlreviver/internal/mc"
	"wlreviver/internal/obs"
	"wlreviver/internal/reviver"
	"wlreviver/internal/stats"
	"wlreviver/internal/trace"
)

// Scale groups the geometry knobs every experiment shares, so the same
// experiment code runs at test, bench and paper scale. See DESIGN.md §1
// for why geometric scaling preserves the paper's result shapes.
type Scale struct {
	// Blocks is the software capacity in 64 B blocks.
	Blocks uint64
	// BlocksPerPage is the OS page size in blocks.
	BlocksPerPage uint64
	// MeanEndurance is the mean cell lifetime in writes.
	MeanEndurance float64
	// GapWritePeriod is ψ, the writes per wear-leveling operation.
	GapWritePeriod uint64
	// Seed drives all randomness.
	Seed uint64
	// MaxWritesPerBlock bounds each run (in writes per block of
	// capacity); runs also end at their survival/usable floors.
	MaxWritesPerBlock float64
	// Workers is the fan-out of the experiment runners: each experiment
	// enumerates its independent engine configurations as jobs and runs
	// them on this many goroutines. 0 and 1 both run serially. Results
	// are identical for every value — every engine owns its seed and
	// shares nothing (enforced by TestParallelMatchesSerial).
	Workers int
	// Observe, when non-nil, is invoked once per engine an experiment
	// builds, with a stable key naming the engine's role (e.g.
	// "fig6/ocean/ECP6-SG-WLR"); the returned observer (which may be nil)
	// is attached to that engine. The factory runs on worker goroutines
	// and must be safe for concurrent calls, but each returned observer
	// serves exactly one engine, so the observers themselves need no
	// locking. Observation never changes experiment results (enforced by
	// TestObserverDoesNotPerturb).
	Observe func(key string) obs.Observer
	// SnapshotEvery is the per-engine snapshot period in simulated writes
	// (0: one snapshot per Blocks writes). Only meaningful with Observe.
	SnapshotEvery uint64
	// Checkpoint, when non-nil, coordinates per-job checkpointing, resume
	// and crash injection across the sweep (see CheckpointPlan). A run
	// resumed from any checkpoint is byte-identical to an uninterrupted
	// run; with Checkpoint nil the runners take no extra branches.
	Checkpoint *CheckpointPlan

	// ShardGrid, when >= 2, partitions every engine's address space into
	// that many independent shards executed by a per-engine pool
	// (ShardedEngine). The grid is SEMANTIC — it selects a coarser chip
	// model and is part of the checkpointed state — while Shards below
	// only sets execution width. 0 and 1 build the monolithic Engine.
	ShardGrid uint64
	// Shards is the per-engine shard execution pool width (0: GOMAXPROCS).
	// Results are byte-identical for every value (enforced by
	// TestShardedMatchesSerial); it is never persisted, so checkpoints
	// move freely between widths.
	Shards int
	// BatchWrites is the write-batch size between stop-condition checks,
	// curve samples and shard merge barriers (0: a small default suited to
	// test scales). Paper-scale runs want millions per batch so the shard
	// pool amortises its barrier.
	BatchWrites uint64
}

// TinyScale is for unit tests: a 64 KiB chip.
func TinyScale() Scale {
	return Scale{
		Blocks: 1 << 10, BlocksPerPage: 16, MeanEndurance: 600,
		GapWritePeriod: 20, Seed: 42, MaxWritesPerBlock: 1500,
	}
}

// BenchScale is for the benchmark harness: a 512 KiB chip.
func BenchScale() Scale {
	return Scale{
		Blocks: 1 << 13, BlocksPerPage: 32, MeanEndurance: 2500,
		GapWritePeriod: 50, Seed: 42, MaxWritesPerBlock: 6000,
	}
}

// PaperScale approaches the paper's setup as closely as is tractable on
// one core: a 4 MiB chip with 10^4 endurance, 4 KB pages, ψ=100.
func PaperScale() Scale {
	return Scale{
		Blocks: 1 << 16, BlocksPerPage: 64, MeanEndurance: 1e4,
		GapWritePeriod: 100, Seed: 42, MaxWritesPerBlock: 25000,
	}
}

// Paper1GBScale is the paper's actual setup (§IV-A): a 1 GB chip of 2^24
// 64 B blocks, 4 KB pages, 10^8 mean endurance, ψ=100 — reached by
// sharding the chip into 64 independent sub-chips so one engine's run
// saturates every core. Simulating the full device lifetime at this
// endurance is ~10^15 writes and out of reach on any machine; the
// default budget bounds a run to a fixed write volume (override
// MaxWritesPerBlock, or cmd/paper's -budget, to go further), which is
// what the paper-scale smoke job and the committed Performance numbers
// use.
func Paper1GBScale() Scale {
	return Scale{
		Blocks: 1 << 24, BlocksPerPage: 64, MeanEndurance: 1e8,
		GapWritePeriod: 100, Seed: 42, MaxWritesPerBlock: 4,
		ShardGrid: 64, BatchWrites: 1 << 21,
	}
}

// config derives an engine Config from the scale. LLS's chunk is sized
// at 1/16 of capacity, the paper's 64 MB : 1 GB proportion.
func (s Scale) config() Config {
	cfg := DefaultConfig()
	cfg.Blocks = s.Blocks
	cfg.BlocksPerPage = s.BlocksPerPage
	cfg.MeanEndurance = s.MeanEndurance
	cfg.GapWritePeriod = s.GapWritePeriod
	cfg.Seed = s.Seed
	cfg.LLSChunkPages = s.Blocks / 16 / s.BlocksPerPage
	if cfg.LLSChunkPages == 0 {
		cfg.LLSChunkPages = 1
	}
	return cfg
}

// maxWrites returns the run budget in writes.
func (s Scale) maxWrites() uint64 {
	return uint64(s.MaxWritesPerBlock * float64(s.Blocks))
}

// batch returns the write-batch size between stop checks, samples and
// shard merges.
func (s Scale) batch() uint64 {
	if s.BatchWrites > 0 {
		return s.BatchWrites
	}
	return checkEvery
}

// newMachine builds the chip the scale asks for — the monolithic Engine,
// or a ShardedEngine over ShardGrid independent shards each running its
// own instance of the named benchmark workload — behind the common
// Machine surface every experiment drives.
func (s Scale) newMachine(cfg Config, workload string) (Machine, error) {
	if s.ShardGrid <= 1 {
		gen, err := trace.NewBenchmark(workload, cfg.Blocks, cfg.BlocksPerPage, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return NewEngine(cfg, gen)
	}
	sc := ShardedConfig{Grid: s.ShardGrid, Pool: s.Shards}
	return NewShardedEngine(sc, cfg, func(shard uint64, shardCfg Config) (trace.Generator, error) {
		return trace.NewBenchmark(workload, shardCfg.Blocks, shardCfg.BlocksPerPage, shardCfg.Seed)
	})
}

// engineConfig derives the engine config for the engine identified by
// key, attaching an observer from the scale's factory when one is set.
func (s Scale) engineConfig(key string) Config {
	cfg := s.config()
	if s.Observe != nil {
		cfg.Observer = s.Observe(key)
		cfg.SnapshotEvery = s.SnapshotEvery
	}
	return cfg
}

// validateWorkload rejects unknown benchmark names before any job fans
// out, so a typo fails fast with the known names instead of erroring
// deep inside trace construction on a worker.
func validateWorkload(workload string) error {
	_, err := trace.LookupBenchmark(workload)
	return err
}

// benchmarkGen builds the synthetic stand-in for a Table I benchmark.
func (s Scale) benchmarkGen(name string) (*trace.Weighted, error) {
	return trace.NewBenchmark(name, s.Blocks, s.BlocksPerPage, s.Seed)
}

// ---- shared runners --------------------------------------------------------

// checkEvery is how many writes pass between stop-condition checks and
// curve samples; coarse enough to keep the hot loop tight.
const checkEvery = 1 << 10

// runCurve drives a machine until metric() falls to floor or the budget
// runs out, sampling (writes/block, metric) along the way. The inner
// batch is clamped to the remaining budget, so curves end exactly at
// maxWrites at every scale (not up to batchSize-1 writes past it). For a
// sharded machine each batch is also the shard merge barrier, so
// batchSize trades merge overhead against pool idle time.
//
// d (nil when checkpointing is off) restores the machine and curve from
// the job's checkpoint, checkpoints at batch ends — never mid-batch, so
// a resumed run replays the identical batch and sample sequence — and
// injects crash faults, surfacing them as ErrCrashed.
func runCurve(e Machine, d *ckptDriver, name string, metric func(Machine) float64, floor float64, maxWrites, batchSize uint64) (stats.Curve, error) {
	curve := stats.Curve{Name: name}
	done := false
	if d != nil {
		err := d.restore(e, func(dec *ckpt.Decoder) error {
			var herr error
			done, herr = loadCurveHarness(dec, name, &curve)
			return herr
		})
		if err != nil {
			return stats.Curve{}, err
		}
		if done {
			return curve, nil
		}
		d.arm(e)
	}
	if len(curve.Points) == 0 {
		curve.Append(0, metric(e))
	}
	for e.Writes() < maxWrites {
		batch := maxWrites - e.Writes()
		if batch > batchSize {
			batch = batchSize
		}
		allowed, crashNow := d.clampBatch(batch)
		if allowed < batch {
			e.RunN(allowed)
			return stats.Curve{}, ErrCrashed
		}
		ran := e.RunN(batch)
		if crashNow || e.Crashed() {
			return stats.Curve{}, ErrCrashed
		}
		m := metric(e)
		curve.Append(e.WritesPerBlock(), m)
		stop := ran < batch || m <= floor
		final := stop || e.Writes() >= maxWrites
		if err := d.afterBatch(e, final, func(enc *ckpt.Encoder) {
			saveCurveHarness(enc, &curve, final)
		}); err != nil {
			return stats.Curve{}, err
		}
		if stop {
			break
		}
	}
	return curve, nil
}

// curveJob wraps one machine build + runCurve drive as a runner job. key
// is the job's stable qualified identity (observer and checkpoint key);
// name labels the resulting curve.
func curveJob(s Scale, key, name string, build func() (Machine, error), metric func(Machine) float64, floor float64, maxWrites uint64) Job[stats.Curve] {
	return Job[stats.Curve]{
		Name: name,
		Run: func() (stats.Curve, uint64, error) {
			e, err := build()
			if err != nil {
				return stats.Curve{}, 0, err
			}
			c, err := runCurve(e, s.Checkpoint.driver(key), name, metric, floor, maxWrites, s.batch())
			if err != nil {
				return stats.Curve{}, 0, err
			}
			return c, e.Writes(), nil
		},
	}
}

// survival reads the survival-rate metric.
func survival(e Machine) float64 { return e.SurvivalRate() }

// usable reads the software-usable-space metric.
func usable(e Machine) float64 { return e.UsableFraction() }

// ---- Table I ---------------------------------------------------------------

// Table1Row reports one benchmark's calibration.
type Table1Row struct {
	Name        string
	Suite       string
	Description string
	PaperCoV    float64
	MeasuredCoV float64
}

// Table1Result reproduces Table I: the benchmarks and their write CoVs,
// with the synthetic generators' measured CoVs alongside the paper's.
type Table1Result struct {
	Rows []Table1Row
	// SimWrites is the total workload draws the experiment serviced.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Table1Result) TotalWrites() uint64 { return r.SimWrites }

// Table1 measures each synthetic benchmark generator's write CoV, one
// job per benchmark.
func Table1(s Scale) (*Table1Result, error) {
	jobs := make([]Job[Table1Row], 0, len(trace.Benchmarks))
	for _, spec := range trace.Benchmarks {
		jobs = append(jobs, Job[Table1Row]{
			Name: "table1/" + spec.Name,
			Run: func() (Table1Row, uint64, error) {
				g, err := s.benchmarkGen(spec.Name)
				if err != nil {
					return Table1Row{}, 0, err
				}
				draws := 64 * s.Blocks
				measured := trace.MeasureCoV(g, draws)
				return Table1Row{
					Name: spec.Name, Suite: spec.Suite, Description: spec.Description,
					PaperCoV: spec.WriteCoV, MeasuredCoV: measured,
				}, draws, nil
			},
		})
	}
	rows, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows, SimWrites: writes}, nil
}

// String formats the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — benchmark write CoVs (paper vs synthetic stand-in)\n")
	fmt.Fprintf(&b, "%-15s %-10s %10s %12s\n", "Name", "Suite", "Paper CoV", "Measured")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %-10s %10.2f %12.2f\n", row.Name, row.Suite, row.PaperCoV, row.MeasuredCoV)
	}
	return b.String()
}

// ---- Figure 5 ----------------------------------------------------------------

// Fig5Row is one benchmark's lifetime with and without WL-Reviver.
type Fig5Row struct {
	Benchmark string
	CoV       float64
	// Lifetimes are writes-per-block of capacity until 30% of blocks
	// failed (the paper's unavailability point).
	LifetimeNoWLR float64
	LifetimeWLR   float64
	// ImprovementPct is the WLR gain (paper reports 36%–325%).
	ImprovementPct float64
}

// Fig5Result reproduces Figure 5.
type Fig5Result struct {
	Rows []Fig5Row
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Fig5Result) TotalWrites() uint64 { return r.SimWrites }

// Fig5 measures each benchmark's lifetime under ECP6 + Start-Gap, with
// and without WL-Reviver — one job per (benchmark, arm), 16 independent
// engines. Lifetime is writes until 30% of the memory's capacity is lost
// (§IV-B: "an entire memory is considered unavailable when it loses 30%
// of its space"): dead blocks cost a page each without a revival
// framework, and one page per ~15 hidden failures with WL-Reviver, so
// the metric tracks the paper's block-failure lifetime while staying
// well-defined across both OS behaviours.
func Fig5(s Scale) (*Fig5Result, error) {
	var jobs []Job[float64]
	for _, spec := range trace.Benchmarks {
		for _, withWLR := range []bool{false, true} {
			key := fmt.Sprintf("fig5/%s/wlr=%v", spec.Name, withWLR)
			jobs = append(jobs, Job[float64]{
				Name: key,
				Run: func() (float64, uint64, error) {
					cfg := s.engineConfig(key)
					if withWLR {
						cfg.Protector = ProtectorWLReviver
					} else {
						cfg.Protector = ProtectorNone
					}
					e, err := s.newMachine(cfg, spec.Name)
					if err != nil {
						return 0, 0, err
					}
					curve, err := runCurve(e, s.Checkpoint.driver(key), spec.Name, survival, 0.70, s.maxWrites(), s.batch())
					if err != nil {
						return 0, 0, err
					}
					return curve.Points[len(curve.Points)-1].X, e.Writes(), nil
				},
			})
		}
	}
	lives, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{SimWrites: writes}
	for i, spec := range trace.Benchmarks {
		row := Fig5Row{
			Benchmark: spec.Name, CoV: spec.WriteCoV,
			LifetimeNoWLR: lives[2*i], LifetimeWLR: lives[2*i+1],
		}
		if row.LifetimeNoWLR > 0 {
			row.ImprovementPct = 100 * (row.LifetimeWLR - row.LifetimeNoWLR) / row.LifetimeNoWLR
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String formats the figure's data as a table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — writes (per block) to fail 30%% of blocks, ECP6 + Start-Gap\n")
	fmt.Fprintf(&b, "%-15s %8s %14s %14s %9s\n", "Benchmark", "CoV", "ECP6-SG", "ECP6-SG-WLR", "Gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %8.2f %14.1f %14.1f %8.0f%%\n",
			row.Benchmark, row.CoV, row.LifetimeNoWLR, row.LifetimeWLR, row.ImprovementPct)
	}
	return b.String()
}

// ---- Figure 6 ----------------------------------------------------------------

// Fig6Result reproduces Figure 6: survival-rate curves for one benchmark
// under six configurations.
type Fig6Result struct {
	Workload string
	Curves   []stats.Curve
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Fig6Result) TotalWrites() uint64 { return r.SimWrites }

// Fig6 produces capacity-survival curves (down to 70%) for ECP6/PAYG,
// each bare, with Start-Gap, and with Start-Gap + WL-Reviver — one job
// per configuration. The paper plots block survival; with the OS
// retirement cascade modelled, the equivalent decay is expressed in
// usable capacity (EXPERIMENTS.md discusses the correspondence).
func Fig6(s Scale, workload string) (*Fig6Result, error) {
	if err := validateWorkload(workload); err != nil {
		return nil, err
	}
	type variant struct {
		name  string
		ecc   ECCKind
		level LevelerKind
		prot  ProtectorKind
	}
	variants := []variant{
		{"ECP6", ECCECP6, LevelerNone, ProtectorNone},
		{"PAYG", ECCPAYG, LevelerNone, ProtectorNone},
		{"ECP6-SG", ECCECP6, LevelerStartGap, ProtectorNone},
		{"PAYG-SG", ECCPAYG, LevelerStartGap, ProtectorNone},
		{"ECP6-SG-WLR", ECCECP6, LevelerStartGap, ProtectorWLReviver},
		{"PAYG-SG-WLR", ECCPAYG, LevelerStartGap, ProtectorWLReviver},
	}
	jobs := make([]Job[stats.Curve], 0, len(variants))
	for _, v := range variants {
		// Curve names repeat across figures, so the observer/checkpoint
		// key is qualified with the experiment and workload.
		key := "fig6/" + workload + "/" + v.name
		jobs = append(jobs, curveJob(s, key, v.name, func() (Machine, error) {
			cfg := s.engineConfig(key)
			cfg.ECC = v.ecc
			cfg.Leveler = v.level
			cfg.Protector = v.prot
			return s.newMachine(cfg, workload)
		}, usable, 0.70, s.maxWrites()))
	}
	curves, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Workload: workload, Curves: curves, SimWrites: writes}, nil
}

// String formats the curves as a column table sampled at common points.
func (r *Fig6Result) String() string {
	return formatCurves(fmt.Sprintf("Figure 6 — surviving capacity vs writes/block (%s)", r.Workload), r.Curves)
}

// ---- Figure 7 ----------------------------------------------------------------

// Fig7Result reproduces Figure 7: user-usable space curves for
// WL-Reviver vs FREE-p with 0/5/10/15% pre-reservation.
type Fig7Result struct {
	Workload string
	Curves   []stats.Curve
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Fig7Result) TotalWrites() uint64 { return r.SimWrites }

// Fig7 produces the usable-space comparison under ECP6 + Start-Gap, one
// job per protection arm.
func Fig7(s Scale, workload string) (*Fig7Result, error) {
	if err := validateWorkload(workload); err != nil {
		return nil, err
	}
	arms := []struct {
		name    string
		prot    ProtectorKind
		reserve float64
	}{{"WL-Reviver", ProtectorWLReviver, 0}}
	for _, pct := range []float64{0, 0.05, 0.10, 0.15} {
		arms = append(arms, struct {
			name    string
			prot    ProtectorKind
			reserve float64
		}{fmt.Sprintf("FREE-p(%.0f%%)", pct*100), ProtectorFREEp, pct})
	}
	jobs := make([]Job[stats.Curve], 0, len(arms))
	for _, a := range arms {
		key := "fig7/" + workload + "/" + a.name
		jobs = append(jobs, curveJob(s, key, a.name, func() (Machine, error) {
			cfg := s.engineConfig(key)
			cfg.Protector = a.prot
			cfg.FreepReserveFraction = a.reserve
			return s.newMachine(cfg, workload)
		}, usable, 0.50, s.maxWrites()))
	}
	curves, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Workload: workload, Curves: curves, SimWrites: writes}, nil
}

// String formats the curves.
func (r *Fig7Result) String() string {
	return formatCurves(fmt.Sprintf("Figure 7 — user-usable space vs writes/block (%s), ECP6+SG", r.Workload), r.Curves)
}

// ---- Figure 8 ----------------------------------------------------------------

// Fig8Result reproduces Figure 8: software-usable space, WL-Reviver vs
// LLS.
type Fig8Result struct {
	Workload string
	Curves   []stats.Curve
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Fig8Result) TotalWrites() uint64 { return r.SimWrites }

// Fig8 produces the WLR-vs-LLS usable-space comparison, one job per
// scheme.
func Fig8(s Scale, workload string) (*Fig8Result, error) {
	if err := validateWorkload(workload); err != nil {
		return nil, err
	}
	arms := []struct {
		name string
		prot ProtectorKind
	}{{"WL-Reviver", ProtectorWLReviver}, {"LLS", ProtectorLLS}}
	jobs := make([]Job[stats.Curve], 0, len(arms))
	for _, a := range arms {
		key := "fig8/" + workload + "/" + a.name
		jobs = append(jobs, curveJob(s, key, a.name, func() (Machine, error) {
			cfg := s.engineConfig(key)
			cfg.Protector = a.prot
			return s.newMachine(cfg, workload)
		}, usable, 0.50, s.maxWrites()))
	}
	curves, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Workload: workload, Curves: curves, SimWrites: writes}, nil
}

// String formats the curves.
func (r *Fig8Result) String() string {
	return formatCurves(fmt.Sprintf("Figure 8 — software-usable space vs writes/block (%s), ECP6+SG", r.Workload), r.Curves)
}

// ---- New-leveler figures -----------------------------------------------------

// FigLevelerResult reports one related-work leveler's protection ladder:
// software-usable space curves for the leveler bare, +FREE-p, +LLS and
// +WL-Reviver (the "any wear-leveling technique" generality check).
type FigLevelerResult struct {
	Workload string
	Curves   []stats.Curve
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64

	title string
}

// TotalWrites reports the experiment's simulated write volume.
func (r *FigLevelerResult) TotalWrites() uint64 { return r.SimWrites }

// FigLeveler runs one leveler through the Fig. 7/8 protection ladder —
// bare vs FREE-p(10%) vs LLS vs WL-Reviver under ECP6 — one job per arm.
// expName qualifies the observer/checkpoint keys ("wolfram", "softwear").
func FigLeveler(s Scale, workload string, kind LevelerKind, expName string) (*FigLevelerResult, error) {
	if err := validateWorkload(workload); err != nil {
		return nil, err
	}
	arms := []struct {
		name    string
		prot    ProtectorKind
		reserve float64
	}{
		{kind.String(), ProtectorNone, 0},
		{kind.String() + "-FREE-p(10%)", ProtectorFREEp, 0.10},
		{kind.String() + "-LLS", ProtectorLLS, 0},
		{kind.String() + "-WLR", ProtectorWLReviver, 0},
	}
	jobs := make([]Job[stats.Curve], 0, len(arms))
	for _, a := range arms {
		key := expName + "/" + workload + "/" + a.name
		jobs = append(jobs, curveJob(s, key, a.name, func() (Machine, error) {
			cfg := s.engineConfig(key)
			cfg.Leveler = kind
			cfg.Protector = a.prot
			cfg.FreepReserveFraction = a.reserve
			return s.newMachine(cfg, workload)
		}, usable, 0.50, s.maxWrites()))
	}
	curves, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &FigLevelerResult{
		Workload: workload, Curves: curves, SimWrites: writes,
		title: fmt.Sprintf("%s — software-usable space vs writes/block (%s), ECP6", expName, workload),
	}, nil
}

// String formats the curves.
func (r *FigLevelerResult) String() string { return formatCurves(r.title, r.Curves) }

// ---- Table II ----------------------------------------------------------------

// Table2Cell is one (scheme, workload, failure-ratio) measurement.
type Table2Cell struct {
	FailureRatio float64
	Scheme       string
	Workload     string
	// AccessTime is raw PCM accesses per software request, measured over
	// the window since the previous failure-ratio threshold (paper
	// reports 1.001–1.020 with the 32 KB cache).
	AccessTime float64
	// UsableSpacePct is the software-usable capacity at the threshold.
	UsableSpacePct float64
	// Reached reports whether the run got to this failure ratio within
	// budget.
	Reached bool
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Cells []Table2Cell
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *Table2Result) TotalWrites() uint64 { return r.SimWrites }

// requestCounts pulls cumulative (requests, accesses) from a protector.
func requestCounts(p mc.Protector) (uint64, uint64) {
	switch t := p.(type) {
	case *reviver.Reviver:
		st := t.Stats()
		return st.SoftwareWrites + st.SoftwareReads, st.RequestAccesses
	case *lls.LLS:
		st := t.Stats()
		return st.SoftwareWrites + st.SoftwareReads, st.RequestAccesses
	case *freep.FREEp:
		st := t.Stats()
		return st.SoftwareWrites + st.SoftwareReads, st.RequestAccesses
	case *drm.DRM:
		st := t.Stats()
		return st.SoftwareWrites + st.SoftwareReads, st.RequestAccesses
	case *mc.Passthrough:
		return t.RequestCounts()
	}
	return 0, 0
}

// table2Harness is the table2Run driver-state stored alongside the
// engine in each checkpoint: cells produced so far, the access-time
// deltas' baseline and the index of the ratio in progress.
type table2Harness struct {
	cells    []Table2Cell
	prevReq  uint64
	prevAcc  uint64
	ratioIdx uint64
	done     bool
}

func (h *table2Harness) save(enc *ckpt.Encoder) {
	enc.Bool(h.done)
	enc.U64(h.prevReq)
	enc.U64(h.prevAcc)
	enc.U64(h.ratioIdx)
	enc.U32(uint32(len(h.cells)))
	for _, c := range h.cells {
		enc.F64(c.FailureRatio)
		enc.String(c.Scheme)
		enc.String(c.Workload)
		enc.F64(c.AccessTime)
		enc.F64(c.UsableSpacePct)
		enc.Bool(c.Reached)
	}
}

func (h *table2Harness) load(dec *ckpt.Decoder) error {
	done := dec.Bool()
	prevReq := dec.U64()
	prevAcc := dec.U64()
	ratioIdx := dec.U64()
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n > 1<<16 {
		return fmt.Errorf("sim: checkpoint cell count %d implausible", n)
	}
	cells := make([]Table2Cell, n)
	for i := range cells {
		cells[i] = Table2Cell{
			FailureRatio: dec.F64(), Scheme: dec.String(), Workload: dec.String(),
			AccessTime: dec.F64(), UsableSpacePct: dec.F64(), Reached: dec.Bool(),
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	h.done, h.prevReq, h.prevAcc, h.ratioIdx, h.cells = done, prevReq, prevAcc, ratioIdx, cells
	return nil
}

// table2Run drives one (scheme, workload) engine through the failure-
// ratio ladder, one cell per threshold reached.
func table2Run(s Scale, scheme string, prot ProtectorKind, workload string) ([]Table2Cell, uint64, error) {
	ratios := []float64{0.10, 0.20, 0.30}
	key := "table2/" + scheme + "/" + workload
	cfg := s.engineConfig(key)
	cfg.Protector = prot
	cfg.CacheKB = 32
	e, err := s.newMachine(cfg, workload)
	if err != nil {
		return nil, 0, err
	}
	d := s.Checkpoint.driver(key)
	var h table2Harness
	if d != nil {
		if err := d.restore(e, h.load); err != nil {
			return nil, 0, err
		}
		if h.done {
			return h.cells, e.Writes(), nil
		}
		d.arm(e)
	}
	budget := s.maxWrites()
	for i := h.ratioIdx; i < uint64(len(ratios)); i++ {
		ratio := ratios[i]
		h.ratioIdx = i
		reached := true
		for e.DeadFraction() < ratio {
			batch := budget - e.Writes()
			if batch > s.batch() {
				batch = s.batch()
			}
			if batch == 0 {
				reached = false
				break
			}
			allowed, crashNow := d.clampBatch(batch)
			if allowed < batch {
				e.RunN(allowed)
				return nil, 0, ErrCrashed
			}
			ran := e.RunN(batch)
			if crashNow || e.Crashed() {
				return nil, 0, ErrCrashed
			}
			if err := d.afterBatch(e, false, h.save); err != nil {
				return nil, 0, err
			}
			if ran == 0 {
				reached = false
				break
			}
		}
		req, acc := e.RequestCounts()
		cell := Table2Cell{
			FailureRatio: ratio, Scheme: scheme, Workload: workload,
			UsableSpacePct: 100 * e.UsableFraction(), Reached: reached,
		}
		if req > h.prevReq {
			cell.AccessTime = float64(acc-h.prevAcc) / float64(req-h.prevReq)
		}
		h.prevReq, h.prevAcc = req, acc
		h.cells = append(h.cells, cell)
		h.ratioIdx = i + 1
		if !reached {
			break
		}
	}
	h.done = true
	if err := d.afterBatch(e, true, h.save); err != nil {
		return nil, 0, err
	}
	return h.cells, e.Writes(), nil
}

// Table2 measures average access time (32 KB remap cache) and software-
// usable space at 10/20/30% failed blocks, for LLS and WL-Reviver on the
// given workloads — one job per (scheme, workload) engine.
func Table2(s Scale, workloads []string) (*Table2Result, error) {
	for _, w := range workloads {
		if err := validateWorkload(w); err != nil {
			return nil, err
		}
	}
	var jobs []Job[[]Table2Cell]
	for _, v := range []struct {
		name string
		prot ProtectorKind
	}{{"LLS", ProtectorLLS}, {"WL-Reviver", ProtectorWLReviver}} {
		for _, w := range workloads {
			jobs = append(jobs, Job[[]Table2Cell]{
				Name: fmt.Sprintf("table2/%s/%s", v.name, w),
				Run: func() ([]Table2Cell, uint64, error) {
					return table2Run(s, v.name, v.prot, w)
				},
			})
		}
	}
	cellGroups, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{SimWrites: writes}
	for _, cells := range cellGroups {
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

// String formats the table like the paper's Table II.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — avg access time (PCM accesses/request, 32KB cache) and software-usable space\n")
	fmt.Fprintf(&b, "%-8s %-12s %-14s %12s %14s\n", "Failure", "Scheme", "Workload", "AccessTime", "UsableSpace%")
	for _, c := range r.Cells {
		mark := ""
		if !c.Reached {
			mark = " (not reached)"
		}
		fmt.Fprintf(&b, "%6.0f%% %-12s %-14s %12.3f %13.1f%%%s\n",
			c.FailureRatio*100, c.Scheme, c.Workload, c.AccessTime, c.UsableSpacePct, mark)
	}
	return b.String()
}

// ---- shared formatting -------------------------------------------------------

// formatCurves renders a curve family as an aligned table over the union
// of sampled X positions (subsampled to at most 16 rows).
func formatCurves(title string, curves []stats.Curve) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%14s", "writes/block")
	maxX := 0.0
	for _, c := range curves {
		fmt.Fprintf(&b, " %14s", c.Name)
		if n := len(c.Points); n > 0 && c.Points[n-1].X > maxX {
			maxX = c.Points[n-1].X
		}
	}
	fmt.Fprintln(&b)
	const rows = 16
	for i := 0; i <= rows; i++ {
		x := maxX * float64(i) / rows
		fmt.Fprintf(&b, "%14.1f", x)
		for _, c := range curves {
			fmt.Fprintf(&b, " %14.4f", c.YAt(x))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// CurveData exposes the plottable series for CSV export.
func (r *Fig6Result) CurveData() (string, []stats.Curve) { return r.Workload, r.Curves }

// CurveData exposes the plottable series for CSV export.
func (r *Fig7Result) CurveData() (string, []stats.Curve) { return r.Workload, r.Curves }

// CurveData exposes the plottable series for CSV export.
func (r *Fig8Result) CurveData() (string, []stats.Curve) { return r.Workload, r.Curves }

// CurveData exposes the plottable series for CSV export.
func (r *FigLevelerResult) CurveData() (string, []stats.Curve) { return r.Workload, r.Curves }
