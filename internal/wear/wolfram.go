package wear

import (
	"fmt"

	"wlreviver/internal/obs"
	"wlreviver/internal/rng"
)

// wfrRegion is one WoLFRaM decoder region: an explicit permutation of the
// region's addresses held in the programmable address decoder, perturbed
// one random swap at a time as writes accumulate.
type wfrRegion struct {
	size uint64 // ckpt:skip construction-time region size, validated on restore
	perm []uint32
	// ckpt:derived inverse permutation rebuilt from perm in loadState
	inv    []uint32
	writes uint64 // writes since last remap
	swaps  uint64
	src    *rng.Source
}

func newWFRRegion(size uint64, src *rng.Source) *wfrRegion {
	r := &wfrRegion{
		size: size,
		perm: make([]uint32, size),
		inv:  make([]uint32, size),
		src:  src,
	}
	for i := uint64(0); i < size; i++ {
		r.perm[i] = uint32(i)
	}
	// The decoder powers up with a seeded random permutation, so even a
	// write stream that never triggers a remap sees randomized placement.
	src.Shuffle(int(size), func(i, j int) {
		r.perm[i], r.perm[j] = r.perm[j], r.perm[i]
	})
	for i := uint64(0); i < size; i++ {
		r.inv[r.perm[i]] = uint32(i)
	}
	return r
}

// WoLFRaMConfig configures a WoLFRaM leveler.
type WoLFRaMConfig struct {
	// NumPAs is the number of software-visible blocks; the decoder is a
	// bijection, so the scheme uses exactly NumPAs device blocks.
	NumPAs uint64
	// Regions is the number of independent decoder regions. Must divide
	// NumPAs; each region remaps only within itself, bounding decoder
	// storage the way the paper's per-region PRAD does.
	Regions uint64
	// SwapWritePeriod is the remap pace: one candidate swap per this many
	// writes landing in a region.
	SwapWritePeriod uint64
	// Seed keys the per-region swap-selection streams.
	Seed uint64
}

// WoLFRaM implements WoLFRaM-style wear leveling (arXiv:2010.02825): a
// programmable address decoder holds an explicit per-region permutation
// of the address space and perturbs it with seeded random swaps paced by
// the write counts landing in each region. Unlike Start-Gap it needs no
// gap block — every remap is a swap, so NumDAs == NumPAs — and unlike
// Security Refresh the permutation is arbitrary rather than XOR-keyed,
// which is what the decoder's lookup table buys.
type WoLFRaM struct {
	n          uint64 // ckpt:skip construction-time PA-space size, validated on restore
	regionSize uint64 // ckpt:skip construction-time region size, fingerprinted by the engine
	period     uint64 // ckpt:skip construction-time swap pace, fingerprinted by the engine
	regions    []*wfrRegion

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; DecoderRemapped probe
}

// NewWoLFRaM builds the scheme.
func NewWoLFRaM(cfg WoLFRaMConfig) (*WoLFRaM, error) {
	if cfg.NumPAs == 0 {
		return nil, fmt.Errorf("wear: wolfram needs a non-empty PA space")
	}
	if cfg.Regions == 0 || cfg.NumPAs%cfg.Regions != 0 {
		return nil, fmt.Errorf("wear: wolfram regions %d must divide the PA space %d", cfg.Regions, cfg.NumPAs)
	}
	if cfg.SwapWritePeriod == 0 {
		return nil, fmt.Errorf("wear: wolfram SwapWritePeriod must be positive")
	}
	regionSize := cfg.NumPAs / cfg.Regions
	if regionSize > 1<<32 {
		return nil, fmt.Errorf("wear: wolfram region size %d exceeds the decoder's 32-bit entries", regionSize)
	}
	src := rng.New(cfg.Seed ^ 0xADDECDE5)
	w := &WoLFRaM{
		n:          cfg.NumPAs,
		regionSize: regionSize,
		period:     cfg.SwapWritePeriod,
		regions:    make([]*wfrRegion, cfg.Regions),
	}
	for i := range w.regions {
		w.regions[i] = newWFRRegion(regionSize, src.Fork(uint64(i)))
	}
	return w, nil
}

// Name implements Leveler.
func (w *WoLFRaM) Name() string { return "WoLFRaM" }

// NumPAs implements Leveler.
func (w *WoLFRaM) NumPAs() uint64 { return w.n }

// NumDAs implements Leveler. The decoder is a bijection: no spare blocks.
func (w *WoLFRaM) NumDAs() uint64 { return w.n }

// Map implements Leveler.
func (w *WoLFRaM) Map(pa uint64) uint64 {
	if pa >= w.n {
		panic(fmt.Sprintf("wear: wolfram PA %d out of range [0,%d)", pa, w.n))
	}
	region := pa / w.regionSize
	return region*w.regionSize + uint64(w.regions[region].perm[pa%w.regionSize])
}

// Inverse implements Leveler. All DAs are mapped (ok is always true).
func (w *WoLFRaM) Inverse(da uint64) (uint64, bool) {
	if da >= w.n {
		panic(fmt.Sprintf("wear: wolfram DA %d out of range [0,%d)", da, w.n))
	}
	region := da / w.regionSize
	return region*w.regionSize + uint64(w.regions[region].inv[da%w.regionSize]), true
}

// NoteWrite implements Leveler: every SwapWritePeriod-th write landing in
// a region draws a uniformly random partner address and swaps the written
// address's decoder entry with it.
func (w *WoLFRaM) NoteWrite(pa uint64, mover Mover) {
	if pa >= w.n {
		panic(fmt.Sprintf("wear: wolfram PA %d out of range [0,%d)", pa, w.n))
	}
	region := pa / w.regionSize
	r := w.regions[region]
	r.writes++
	if r.writes < w.period {
		return
	}
	r.writes = 0
	// The partner is always drawn, even when it degenerates to the written
	// address itself: the RNG stream position stays a pure function of the
	// per-region write count, independent of remap outcomes.
	local := pa % w.regionSize
	q := r.src.Uint64n(r.size)
	if q == local {
		return
	}
	base := region * w.regionSize
	daA := base + uint64(r.perm[local])
	daB := base + uint64(r.perm[q])
	// Data moves BEFORE the decoder entries change: the Mover observes the
	// pre-update mapping, the contract wear.Mover documents.
	mover.Swap(daA, daB)
	r.perm[local], r.perm[q] = r.perm[q], r.perm[local]
	r.inv[r.perm[local]] = uint32(local)
	r.inv[r.perm[q]] = uint32(q)
	r.swaps++
	if w.observer != nil {
		w.observer.DecoderRemapped(daA, daB)
	}
}

// SetObserver attaches an event observer (nil detaches). DecoderRemapped
// fires once per decoder remap with the device addresses exchanged.
func (w *WoLFRaM) SetObserver(o obs.Observer) { w.observer = o }

// Swaps returns the total number of decoder remaps across all regions.
func (w *WoLFRaM) Swaps() uint64 {
	var total uint64
	for _, r := range w.regions {
		total += r.swaps
	}
	return total
}

var _ Leveler = (*WoLFRaM)(nil)
