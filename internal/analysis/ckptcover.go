package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Field annotations exempt a struct field from checkpoint coverage.
// The syntax, in a field's doc or trailing comment, is
//
//	// ckpt:derived <reason>   — rebuilt from checkpointed state on load
//	// ckpt:skip <reason>      — immutable config/wiring, never saved
//
// The reason is mandatory, exactly like //lint:ignore: an annotation
// without one does not exempt the field and is itself reported under
// the "ckpt-annotation" pseudo-rule.
const (
	ckptAnnPrefix = "ckpt:"
	ckptDerived   = "ckpt:derived"
	ckptSkip      = "ckpt:skip"
)

// CkptStateCoverage proves the crash-resume invariant structurally: for
// every type with a SaveState method, every struct field must be
// referenced by both SaveState and LoadState or carry a ckpt:derived /
// ckpt:skip annotation, and the two methods must cover the same field
// set. A field referenced only through sub-fields (e.U64(d.stats.Reads))
// is resolved one level, like seeded-constructors resolves config
// structs: every sub-field of a same-package struct without its own
// Save/Load pair must be covered too, so deleting one field-encode line
// always names the missing field. Resolution is type-aware (promoted
// fields of embedded structs attribute to the embedded field) with a
// syntactic fallback when type information is unavailable.
type CkptStateCoverage struct{}

// Name implements Rule.
func (*CkptStateCoverage) Name() string { return "ckpt-state-coverage" }

// Doc implements Rule.
func (*CkptStateCoverage) Doc() string {
	return "every field of a SaveState type is covered by both SaveState and LoadState or annotated ckpt:derived/ckpt:skip"
}

// Check implements Rule.
func (*CkptStateCoverage) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.IsTest() {
		return
	}
	encName, ok := f.ImportName(ckptImportPath)
	if !ok {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			continue
		}
		saveName := fd.Name.Name
		if saveName != "SaveState" && saveName != "saveState" {
			continue
		}
		if !takesCkptParam(fd, encName, "Encoder") {
			continue
		}
		tname := recvTypeName(fd)
		st := f.Pkg.LookupStruct(tname)
		if tname == "" || st == nil {
			continue
		}
		loadName := "LoadState"
		if saveName == "saveState" {
			loadName = "loadState"
		}
		loadFD, loadFile := findMethod(f.Pkg, tname, loadName)
		if loadFD == nil {
			report(fd.Name, "type %s has %s but no %s: checkpointed state cannot round-trip on resume", tname, saveName, loadName)
			continue
		}
		saveRefs := fieldRefs(f, fd)
		loadRefs := fieldRefs(loadFile, loadFD)
		for _, field := range st.Fields.List {
			if ann, wellFormed := fieldAnnotation(field); ann && wellFormed {
				continue // exempt; malformed annotations are reported by ckptAnnotationIssues
			}
			for _, name := range fieldIdentNames(field) {
				anchor := anchorNode(f, field, fd)
				saveOK, saveMissing := sideCovered(f.Pkg, name, field.Type, saveRefs)
				loadOK, loadMissing := sideCovered(f.Pkg, name, field.Type, loadRefs)
				switch {
				case !saveOK && !loadOK && saveRefs[name] == nil && loadRefs[name] == nil:
					report(anchor, "field %s of %s is checkpointed in neither %s nor %s: save and restore it, or annotate it ckpt:derived/ckpt:skip with a reason", name, tname, saveName, loadName)
				case saveRefs[name] != nil && loadRefs[name] == nil:
					report(anchor, "field %s of %s is referenced in %s but not in %s: a resumed run would silently diverge", name, tname, saveName, loadName)
				case saveRefs[name] == nil && loadRefs[name] != nil:
					report(anchor, "field %s of %s is referenced in %s but not in %s: the restored value is never captured", name, tname, loadName, saveName)
				default:
					// Both sides touch the field; surface any sub-fields
					// a side missed (one-level nested-struct expansion).
					for _, sub := range saveMissing {
						report(anchor, "field %s.%s of %s is not referenced in %s: sub-fields of a nested state struct must all be checkpointed", name, sub, tname, saveName)
					}
					for _, sub := range loadMissing {
						report(anchor, "field %s.%s of %s is not referenced in %s: sub-fields of a nested state struct must all be restored", name, sub, tname, loadName)
					}
				}
			}
		}
	}
}

// takesCkptParam reports whether fd has exactly one parameter of type
// *<encName>.<typeName> (e.g. *ckpt.Encoder).
func takesCkptParam(fd *ast.FuncDecl, encName, typeName string) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) > 1 {
		return false
	}
	star, ok := unparen(params.List[0].Type).(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(star.X).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != typeName {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && id.Name == encName && id.Obj == nil
}

// findMethod locates a method by receiver type name in any non-test
// file of the package, returning the declaration and its file.
func findMethod(pkg *Package, typeName, methodName string) (*ast.FuncDecl, *File) {
	for _, f := range pkg.Files {
		if f.IsTest() {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != methodName {
				continue
			}
			if recvTypeName(fd) == typeName {
				return fd, f
			}
		}
	}
	return nil, nil
}

// hasSavePair reports whether the package declares a SaveState (or
// saveState) method on the named type — nested fields of such a type
// are that method's responsibility, not the outer one's.
func hasSavePair(pkg *Package, typeName string) bool {
	for _, m := range []string{"SaveState", "saveState"} {
		if fd, _ := findMethod(pkg, typeName, m); fd != nil {
			return true
		}
	}
	return false
}

// fieldIdentNames returns the declared names of one struct field entry;
// an embedded field contributes its type's base identifier.
func fieldIdentNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, 0, len(field.Names))
		for _, n := range field.Names {
			if n.Name != "_" {
				names = append(names, n.Name)
			}
		}
		return names
	}
	if name := baseTypeName(field.Type); name != "" {
		return []string{name}
	}
	return nil
}

// baseTypeName unwraps *T, pkg.T and parentheses down to the base type
// identifier. Returns "" for shapes that cannot carry methods/fields of
// interest here (slices, maps, funcs, ...).
func baseTypeName(t ast.Expr) string {
	t = unparen(t)
	if st, ok := t.(*ast.StarExpr); ok {
		t = unparen(st.X)
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.SelectorExpr:
		return tt.Sel.Name
	}
	return ""
}

// localStructName resolves a field's type to a same-package named
// struct for one-level expansion; qualified (other-package) types and
// non-struct shapes return "".
func localStructName(t ast.Expr) string {
	t = unparen(t)
	if st, ok := t.(*ast.StarExpr); ok {
		t = unparen(st.X)
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// fieldAnnotation scans a field's doc and trailing comments for a ckpt
// annotation. annotated is true when any comment starts with "ckpt:";
// wellFormed additionally requires a known kind and a reason.
func fieldAnnotation(field *ast.Field) (annotated, wellFormed bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ckptAnnPrefix) {
				continue
			}
			fields := strings.Fields(text)
			if (fields[0] == ckptDerived || fields[0] == ckptSkip) && len(fields) >= 2 {
				return true, true
			}
			return true, false
		}
	}
	return false, false
}

// ckptAnnotationIssues reports malformed ckpt annotations anywhere in
// the file — an annotation with no reason or an unknown kind must not
// be able to silently exempt a field, mirroring "ignore-syntax". Run
// calls this for every file, independent of any rule's scope.
func ckptAnnotationIssues(fset *token.FileSet, f *File) []Diagnostic {
	var diags []Diagnostic
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ckptAnnPrefix) {
				continue
			}
			fields := strings.Fields(text)
			kind := fields[0]
			pos := fset.Position(c.Pos())
			switch {
			case kind != ckptDerived && kind != ckptSkip:
				diags = append(diags, Diagnostic{
					Pos:  pos,
					Rule: "ckpt-annotation",
					Msg:  "unknown annotation " + kind + ": want ckpt:derived <reason> or ckpt:skip <reason>",
				})
			case len(fields) < 2:
				diags = append(diags, Diagnostic{
					Pos:  pos,
					Rule: "ckpt-annotation",
					Msg:  "malformed annotation: the reason is mandatory (" + kind + " <reason>), and the field stays subject to ckpt-state-coverage until it has one",
				})
			}
		}
	}
	return diags
}

// anchorNode picks the node a finding is reported at: the field
// declaration when it lives in the file being checked (so //lint:ignore
// next to the field works), else the SaveState method name.
func anchorNode(f *File, field *ast.Field, fd *ast.FuncDecl) ast.Node {
	if f.Pkg.Fset.Position(field.Pos()).Filename == f.Path {
		return field
	}
	return fd.Name
}

// fieldRef records how one method touches one top-level field: whole
// references (d.f, d.f.Method(), d.f = x) cover the field entirely;
// sub-references (d.f.g) cover only the named sub-field.
type fieldRef struct {
	whole bool
	subs  map[string]bool
}

// sideCovered decides whether refs cover the field, expanding one level
// into same-package nested structs when the side only touched
// sub-fields. missing lists uncovered sub-field names in declaration
// order.
func sideCovered(pkg *Package, name string, fieldType ast.Expr, refs map[string]*fieldRef) (bool, []string) {
	r := refs[name]
	if r == nil {
		return false, nil
	}
	if r.whole || len(r.subs) == 0 {
		return r.whole, nil
	}
	inner := localStructName(fieldType)
	if inner == "" {
		return true, nil // other-package or unnamed type: subs are the best signal we have
	}
	innerStruct := pkg.LookupStruct(inner)
	if innerStruct == nil || hasSavePair(pkg, inner) {
		return true, nil
	}
	var missing []string
	for _, sub := range innerStruct.Fields.List {
		if ann, wellFormed := fieldAnnotation(sub); ann && wellFormed {
			continue
		}
		for _, sn := range fieldIdentNames(sub) {
			if !r.subs[sn] {
				missing = append(missing, sn)
			}
		}
	}
	return len(missing) == 0, missing
}

// fieldRefs walks a Save/LoadState body and classifies every selector
// chain rooted at the receiver. Type information (Selections) resolves
// promoted fields of embedded structs and tells fields from methods;
// when it is missing the walk falls back to parser object resolution
// and the package's declared struct shapes, which never under-counts a
// direct d.field reference.
func fieldRefs(f *File, fd *ast.FuncDecl) map[string]*fieldRef {
	refs := map[string]*fieldRef{}
	if fd == nil || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return refs
	}
	recvID := fd.Recv.List[0].Names[0]
	if recvID.Name == "_" {
		return refs
	}
	_, info := f.Pkg.TypeInfo()
	var recvObj types.Object
	if info != nil {
		recvObj = info.Defs[recvID]
	}
	st := f.Pkg.LookupStruct(recvTypeName(fd))
	declared := map[string]bool{}
	fieldTypeOf := map[string]ast.Expr{}
	if st != nil {
		for _, field := range st.Fields.List {
			for _, n := range fieldIdentNames(field) {
				declared[n] = true
				fieldTypeOf[n] = field.Type
			}
		}
	}
	markWhole := func(name string) {
		r := refs[name]
		if r == nil {
			r = &fieldRef{subs: map[string]bool{}}
			refs[name] = r
		}
		r.whole = true
	}
	markSub := func(name, sub string) {
		r := refs[name]
		if r == nil {
			r = &fieldRef{subs: map[string]bool{}}
			refs[name] = r
		}
		r.subs[sub] = true
	}

	// A selector that is the X of a longer chain is classified as part
	// of that chain, not on its own — otherwise d.stats.Reads would also
	// register a whole-reference of stats and defeat sub-expansion.
	consumed := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
				consumed[inner] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// *recv = x restores every field at once.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if star, ok := unparen(lhs).(*ast.StarExpr); ok {
					if id, ok := unparen(star.X).(*ast.Ident); ok && isReceiverIdent(id, recvID, recvObj, info) {
						for name := range declared {
							markWhole(name)
						}
					}
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return true
		}
		chain, rooted := receiverChain(sel, recvID, recvObj, info)
		if !rooted {
			return true
		}
		// First link: the top-level field (or a method — not a state
		// reference — or a promoted field of an embedded struct).
		first := chain[0]
		top := ""
		promoted := false
		if s := selectionOf(info, first); s != nil {
			if s.Kind() != types.FieldVal {
				return true
			}
			idx := s.Index()
			if rs := receiverStruct(recvObj); rs != nil && idx[0] < rs.NumFields() {
				top = rs.Field(idx[0]).Name()
				promoted = len(idx) > 1
			}
		}
		if top == "" {
			// Syntactic fallback: only names declared on the struct
			// count; method names fall through to "not a reference".
			if declared[first.Sel.Name] {
				top = first.Sel.Name
			} else {
				return true
			}
		}
		if promoted || len(chain) == 1 {
			markWhole(top)
			return true
		}
		// Second link: a field of the nested struct is a sub-reference;
		// a method call (d.src.State()) consumes the field wholesale.
		second := chain[1]
		if s := selectionOf(info, second); s != nil {
			if s.Kind() == types.FieldVal && len(s.Index()) == 1 {
				markSub(top, second.Sel.Name)
			} else {
				markWhole(top)
			}
			return true
		}
		if innerName := localStructName(fieldTypeOf[top]); innerName != "" {
			if innerStruct := f.Pkg.LookupStruct(innerName); innerStruct != nil {
				for _, sub := range innerStruct.Fields.List {
					for _, sn := range fieldIdentNames(sub) {
						if sn == second.Sel.Name {
							markSub(top, sn)
							return true
						}
					}
				}
			}
		}
		markWhole(top)
		return true
	})
	return refs
}

// receiverChain walks a selector expression down to its base; when that
// base is the method's receiver it returns the selector links from the
// receiver outward (d.stats.Reads → [d.stats, d.stats.Reads]).
func receiverChain(sel *ast.SelectorExpr, recvID *ast.Ident, recvObj types.Object, info *types.Info) ([]*ast.SelectorExpr, bool) {
	var rev []*ast.SelectorExpr
	cur := sel
	for {
		rev = append(rev, cur)
		switch x := unparen(cur.X).(type) {
		case *ast.SelectorExpr:
			cur = x
		case *ast.Ident:
			if !isReceiverIdent(x, recvID, recvObj, info) {
				return nil, false
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, true
		default:
			return nil, false
		}
	}
}

// isReceiverIdent reports whether id is a use of the method's receiver,
// preferring type-checker identity and falling back to the parser's
// object resolution (which handles shadowing within a single file).
func isReceiverIdent(id *ast.Ident, recvID *ast.Ident, recvObj types.Object, info *types.Info) bool {
	if info != nil && recvObj != nil {
		if obj := info.Uses[id]; obj != nil {
			return obj == recvObj
		}
	}
	return id.Name == recvID.Name && id.Obj != nil && id.Obj == recvID.Obj
}

// selectionOf looks up the type checker's resolution of a selector,
// tolerating absent info.
func selectionOf(info *types.Info, sel *ast.SelectorExpr) *types.Selection {
	if info == nil {
		return nil
	}
	return info.Selections[sel]
}

// receiverStruct unwraps a receiver object's type down to its struct.
func receiverStruct(recvObj types.Object) *types.Struct {
	if recvObj == nil {
		return nil
	}
	t := recvObj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if s, ok := t.Underlying().(*types.Struct); ok {
		return s
	}
	return nil
}
