package sim

import "wlreviver/internal/ckpt"

// Machine is the runner-facing surface of one simulated chip: what the
// experiment drivers (runCurve, table2Run) and the checkpoint driver
// need, independent of whether the chip is the monolithic *Engine or a
// *ShardedEngine executing its address-space shards on a pool. Both
// satisfy the same determinism contract — results are a pure function of
// the configuration, never of worker or shard-pool width — so every
// experiment runs unchanged over either.
type Machine interface {
	// RunN services up to n software writes, returning the number
	// actually serviced; fewer than n means the memory reached end of
	// life (or an armed crash fault fired).
	RunN(n uint64) uint64
	// Writes returns the software writes serviced so far.
	Writes() uint64
	// WritesPerBlock returns writes normalised by software capacity.
	WritesPerBlock() float64
	// SurvivalRate returns the fraction of device blocks not declared
	// dead (Figure 6's y-axis).
	SurvivalRate() float64
	// UsableFraction returns the software-usable capacity fraction
	// (Figures 7–8, Table II).
	UsableFraction() float64
	// DeadFraction returns the fraction of device blocks declared dead
	// (Table II's failure-ratio ladder).
	DeadFraction() float64
	// RequestCounts returns cumulative (software requests, raw PCM
	// accesses) where the protector tracks them (Table II's access-time
	// deltas).
	RequestCounts() (requests, accesses uint64)
	// Stopped reports whether the memory reached end of life.
	Stopped() bool
	// CrashAfter arms the crash-fault injector at an absolute
	// simulated-write threshold (0 disarms); Crashed reports it fired.
	CrashAfter(n uint64)
	Crashed() bool

	// Checkpoint plumbing (in-package): the complete mutable state, in a
	// fixed section order, restorable into a machine freshly built from
	// the identical configuration.
	encodeState(*ckpt.Encoder) error
	decodeState(*ckpt.Decoder) error
}

var (
	_ Machine = (*Engine)(nil)
	_ Machine = (*ShardedEngine)(nil)
)
