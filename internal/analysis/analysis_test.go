package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches an expected-diagnostic comment in a fixture:
//
//	// want <rule> "message substring"
var wantRE = regexp.MustCompile(`^// want ([a-z-]+) "([^"]*)"$`)

// expectation is one `// want` comment: a rule must fire on this line
// with a message containing substr.
type expectation struct {
	file   string
	line   int
	rule   string
	substr string
}

// TestGolden runs every rule over the fixture tree in testdata/src —
// a miniature module whose layout (cmd/, internal/sim, internal/pcm,
// ...) exercises the rules' path scoping — and checks the diagnostics
// against the fixtures' `// want` comments, both directions: every
// finding expected, every expectation found. Suppressed sites carry
// //lint:ignore directives and no want comment, so an ignored finding
// leaking through fails the test too.
func TestGolden(t *testing.T) {
	pkgs, err := Load("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}

	var wants []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, expectation{
						file: f.Path, line: pos.Line, rule: m[1], substr: m[2],
					})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want comments found in fixtures")
	}

	matched := make([]bool, len(wants))
	for _, d := range Run(pkgs, Rules()) {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.rule == d.Rule && strings.Contains(d.Msg, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected %s finding matching %q, got none", w.file, w.line, w.rule, w.substr)
		}
	}
}

// TestGoldenCoversEveryRule pins the acceptance criterion: each shipped
// rule has at least one positive case (a want comment) and at least one
// suppression exercising its //lint:ignore path in the fixtures.
func TestGoldenCoversEveryRule(t *testing.T) {
	pkgs, err := Load("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	positive := map[string]bool{}
	suppressed := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					if m := wantRE.FindStringSubmatch(c.Text); m != nil {
						positive[m[1]] = true
					}
					if rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), ignorePrefix); ok {
						if fields := strings.Fields(rest); len(fields) >= 2 {
							suppressed[fields[0]] = true
						}
					}
				}
			}
		}
	}
	for _, r := range Rules() {
		if !positive[r.Name()] {
			t.Errorf("rule %s has no positive fixture case", r.Name())
		}
		if !suppressed[r.Name()] {
			t.Errorf("rule %s has no suppressed fixture case", r.Name())
		}
	}
}

// parseOne wraps a source string into a single-file package at the
// given module-relative path.
func parseOne(t *testing.T, path, src string) []*Package {
	t.Helper()
	pkg := &Package{Dir: dirOf(path), Fset: token.NewFileSet()}
	astf, err := parser.ParseFile(pkg.Fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Files = []*File{{Path: path, AST: astf, Pkg: pkg}}
	return []*Package{pkg}
}

func dirOf(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[:i]
	}
	return ""
}

// TestMalformedIgnoreIsReported pins the no-silent-disable property: a
// //lint:ignore with a missing reason (or missing rule) cannot suppress
// anything and is itself a finding.
func TestMalformedIgnoreIsReported(t *testing.T) {
	src := `package sim

import "time"

func Bad() {
	//lint:ignore no-wallclock
	_ = time.Now()
}
`
	pkgs := parseOne(t, "internal/sim/bad.go", src)
	diags := Run(pkgs, Rules())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	// Both the malformed directive and the undimmed wall-clock call
	// must surface.
	if !strings.Contains(got, "ignore-syntax") || !strings.Contains(got, "no-wallclock") {
		t.Fatalf("want ignore-syntax and no-wallclock findings, got %v", diags)
	}
}

// TestMalformedCkptAnnotationIsReported pins the no-silent-disable
// property for checkpoint annotations, mirroring the bare-ignore rule:
// a ckpt:skip with no reason is itself a finding, and the field it
// decorates stays subject to ckpt-state-coverage.
func TestMalformedCkptAnnotationIsReported(t *testing.T) {
	src := `package wear

import "wlreviver/internal/ckpt"

type Sparse struct {
	cur uint64
	raw []byte // ckpt:skip
}

func (s *Sparse) SaveState(e *ckpt.Encoder) { e.U64(s.cur) }

func (s *Sparse) LoadState(d *ckpt.Decoder) error {
	s.cur = d.U64()
	return nil
}
`
	pkgs := parseOne(t, "internal/wear/sparse.go", src)
	diags := Run(pkgs, Rules())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	// Both the reasonless annotation and the uncovered field must
	// surface: a malformed annotation never exempts anything.
	if !strings.Contains(got, "ckpt-annotation") || !strings.Contains(got, "ckpt-state-coverage") {
		t.Fatalf("want ckpt-annotation and ckpt-state-coverage findings, got %v", diags)
	}
}

// TestUnknownCkptAnnotationIsReported: a typo like ckpt:derive must not
// silently mean nothing.
func TestUnknownCkptAnnotationIsReported(t *testing.T) {
	src := `package wear

type Sparse struct {
	raw []byte // ckpt:derive rebuilt on load
}
`
	pkgs := parseOne(t, "internal/wear/sparse.go", src)
	diags := Run(pkgs, Rules())
	if len(diags) != 1 || diags[0].Rule != "ckpt-annotation" {
		t.Fatalf("want exactly one ckpt-annotation finding, got %v", diags)
	}
}

// TestIgnoreWrongRuleDoesNotSuppress: a directive names exactly one
// rule; it must not silence a different one.
func TestIgnoreWrongRuleDoesNotSuppress(t *testing.T) {
	src := `package sim

import "time"

func Bad() {
	//lint:ignore no-global-rand reason that names the wrong rule
	_ = time.Now()
}
`
	pkgs := parseOne(t, "internal/sim/bad.go", src)
	diags := Run(pkgs, Rules())
	if len(diags) != 1 || diags[0].Rule != "no-wallclock" {
		t.Fatalf("want exactly one no-wallclock finding, got %v", diags)
	}
}

// TestAliasedImport: the rules resolve selector qualifiers through the
// file's import table, so an aliased import cannot dodge them.
func TestAliasedImport(t *testing.T) {
	src := `package sim

import clock "time"

func Bad() {
	_ = clock.Now()
}
`
	pkgs := parseOne(t, "internal/sim/bad.go", src)
	diags := Run(pkgs, Rules())
	if len(diags) != 1 || diags[0].Rule != "no-wallclock" {
		t.Fatalf("want one no-wallclock finding through the alias, got %v", diags)
	}
}

// TestShadowedPackageName: a local variable named like the package must
// not trigger the rule.
func TestShadowedPackageName(t *testing.T) {
	src := `package sim

type clock struct{}

func (clock) Now() int { return 0 }

func Fine() {
	var time clock
	_ = time.Now()
}
`
	pkgs := parseOne(t, "internal/sim/fine.go", src)
	if diags := Run(pkgs, Rules()); len(diags) != 0 {
		t.Fatalf("want no findings for shadowed name, got %v", diags)
	}
}

// TestDiagnosticString pins the driver's output contract: path:line:col,
// message, rule in brackets — the format the acceptance criterion and
// editors' error matchers rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:  token.Position{Filename: "internal/sim/engine.go", Line: 7, Column: 3},
		Rule: "no-wallclock",
		Msg:  "wall-clock call",
	}
	want := "internal/sim/engine.go:7:3: wall-clock call [no-wallclock]"
	if got := d.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%s", d) // Diagnostic must satisfy fmt.Stringer for the driver
}
