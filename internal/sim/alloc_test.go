package sim

import (
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
)

// The memory-layout contract for the hot path: once a run is past its
// warm-up (buffers grown, maps populated), servicing writes must not
// allocate — neither unobserved nor with the standard Metrics observer
// attached — and the sharded merge barrier must cost O(1) allocations
// per round regardless of how many events the round buffered.
//
// Endurance is pushed far above the measured write budget so the
// steady-state samples contain no cell failures (failure bookkeeping is
// allowed to allocate: it inserts into the sparse failure index).

func steadyConfig(observer obs.Observer) Config {
	s := TinyScale()
	s.MeanEndurance = 1e9
	s.MaxWritesPerBlock = 1 << 40
	cfg := s.config()
	cfg.Observer = observer
	if observer != nil {
		cfg.SnapshotEvery = 1 << 60 // park snapshots out of reach
	}
	return cfg
}

func steadyEngine(t *testing.T, observer obs.Observer) *Engine {
	t.Helper()
	cfg := steadyConfig(observer)
	gen, err := trace.NewUniform(cfg.Blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if e.RunN(20_000) != 20_000 { // warm-up: grow every buffer once
		t.Fatal("engine stopped during warm-up")
	}
	return e
}

func TestWritePathAllocsUnobserved(t *testing.T) {
	e := steadyEngine(t, nil)
	allocs := testing.AllocsPerRun(2000, func() { e.RunN(1) })
	if allocs != 0 {
		t.Errorf("steady-state unobserved write allocates %.2f objects, want 0", allocs)
	}
}

func TestWritePathAllocsObserved(t *testing.T) {
	e := steadyEngine(t, obs.NewMetrics())
	allocs := testing.AllocsPerRun(2000, func() { e.RunN(1) })
	if allocs != 0 {
		t.Errorf("steady-state observed write allocates %.2f objects, want 0", allocs)
	}
}

func TestShardedMergeAllocsPerRound(t *testing.T) {
	cfg := steadyConfig(obs.NewMetrics())
	se, err := NewShardedEngine(ShardedConfig{Grid: 4, Pool: 1}, cfg,
		func(shard uint64, shardCfg Config) (trace.Generator, error) {
			return trace.NewUniform(shardCfg.Blocks, 5+shard)
		})
	if err != nil {
		t.Fatal(err)
	}
	round := cfg.Blocks / 4 // default RoundWrites = shard blocks
	if se.RunN(16*round) != 16*round {
		t.Fatal("sharded engine stopped during warm-up")
	}
	// One iteration = one full round = one merge barrier per sub-round.
	// O(1) means a small constant independent of the events buffered; the
	// recorders and scheduling scratch are all engine-owned and reused.
	allocs := testing.AllocsPerRun(200, func() { se.RunN(round) })
	if allocs > 2 {
		t.Errorf("sharded round allocates %.2f objects, want O(1) (<= 2)", allocs)
	}
}
