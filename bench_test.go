package wlreviver

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`), reporting
// the headline numbers as custom benchmark metrics so regressions in the
// result *shapes* are visible, not just runtime. EXPERIMENTS.md records
// a reference run against the paper. Benches default to the tiny scale
// to stay fast; cmd/paper runs the same experiments at larger scales.

import (
	"fmt"
	"runtime"
	"testing"

	"wlreviver/internal/lls"
	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

// benchScale returns the scale benches run at. Experiments fan out over
// all CPUs; results are identical to serial runs (the sim package's
// parallel-vs-serial equivalence test enforces it), so the reported
// result metrics are unaffected.
func benchScale() Scale {
	s := TinyScale()
	s.Workers = runtime.NumCPU()
	return s
}

// BenchmarkTable1_WorkloadCoV regenerates Table I: synthetic benchmark
// generators calibrated to the paper's write CoVs.
func BenchmarkTable1_WorkloadCoV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range res.Rows {
			if row.Name == "mg" {
				continue // saturates at tiny scale (sample CoV ceiling)
			}
			rel := (row.MeasuredCoV - row.PaperCoV) / row.PaperCoV
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
		b.ReportMetric(worst*100, "worst-CoV-err-%")
	}
}

// BenchmarkFig5_LifetimeTo30PctFailed regenerates Figure 5: writes until
// 30% capacity loss, ECP6-SG vs ECP6-SG-WLR, all eight benchmarks.
func BenchmarkFig5_LifetimeTo30PctFailed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		minGain, maxGain := 1e18, 0.0
		for _, row := range res.Rows {
			if row.ImprovementPct < minGain {
				minGain = row.ImprovementPct
			}
			if row.ImprovementPct > maxGain {
				maxGain = row.ImprovementPct
			}
		}
		b.ReportMetric(minGain, "min-WLR-gain-%")
		b.ReportMetric(maxGain, "max-WLR-gain-%")
	}
}

// BenchmarkFig6_SurvivalCurves regenerates Figure 6: capacity-survival
// curves for ocean and mg under ECP6/PAYG × {-, SG, SG+WLR}.
func BenchmarkFig6_SurvivalCurves(b *testing.B) {
	for _, workload := range []string{"ocean", "mg"} {
		b.Run(workload, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Fig6(benchScale(), workload)
				if err != nil {
					b.Fatal(err)
				}
				life := map[string]float64{}
				for _, c := range res.Curves {
					life[c.Name] = c.Points[len(c.Points)-1].X
				}
				b.ReportMetric(life["ECP6-SG-WLR"]/life["ECP6-SG"], "WLR-lifetime-x")
			}
		})
	}
}

// BenchmarkFig7_FreepReservation regenerates Figure 7: WLR vs FREE-p
// with 0/5/10/15% pre-reserved space.
func BenchmarkFig7_FreepReservation(b *testing.B) {
	for _, workload := range []string{"ocean", "mg"} {
		b.Run(workload, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Fig7(benchScale(), workload)
				if err != nil {
					b.Fatal(err)
				}
				wlrEnd, bestFreep := 0.0, 0.0
				for _, c := range res.Curves {
					end := c.Points[len(c.Points)-1].X
					if c.Name == "WL-Reviver" {
						wlrEnd = end
					} else if end > bestFreep {
						bestFreep = end
					}
				}
				b.ReportMetric(wlrEnd/bestFreep, "WLR-vs-best-FREEp-x")
			}
		})
	}
}

// BenchmarkFig8_LLSUsableSpace regenerates Figure 8: WLR vs LLS
// software-usable space.
func BenchmarkFig8_LLSUsableSpace(b *testing.B) {
	for _, workload := range []string{"ocean", "mg"} {
		b.Run(workload, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Fig8(benchScale(), workload)
				if err != nil {
					b.Fatal(err)
				}
				wlr, lls := res.Curves[0], res.Curves[1]
				b.ReportMetric(
					wlr.Points[len(wlr.Points)-1].X/lls.Points[len(lls.Points)-1].X,
					"WLR-vs-LLS-lifetime-x")
			}
		})
	}
}

// BenchmarkTable2_AccessTimeAndSpace regenerates Table II: access time
// (32 KB remap cache) and usable space at 10/20/30% failed blocks.
func BenchmarkTable2_AccessTimeAndSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table2(benchScale(), []string{"mg", "ocean"})
		if err != nil {
			b.Fatal(err)
		}
		var worstAccess float64
		var wlrSpace30 float64
		for _, c := range res.Cells {
			if c.AccessTime > worstAccess {
				worstAccess = c.AccessTime
			}
			if c.Scheme == "WL-Reviver" && c.FailureRatio == 0.30 && c.Workload == "mg" && c.Reached {
				wlrSpace30 = c.UsableSpacePct
			}
		}
		b.ReportMetric(worstAccess, "worst-access-time")
		b.ReportMetric(wlrSpace30, "WLR-space-at-30%-%")
	}
}

// ---- ablations (DESIGN.md §3) ------------------------------------------------

// ablationRun drives one configured system to the usable floor and
// returns (writes/block, access ratio). Ablations run at the bench scale
// (not tiny) so the compared arms have enough resolution to differ.
func ablationRun(b *testing.B, mutate func(*Config)) (float64, float64) {
	b.Helper()
	s := BenchScale()
	cfg := DefaultConfig()
	cfg.Blocks = s.Blocks
	cfg.BlocksPerPage = s.BlocksPerPage
	cfg.MeanEndurance = s.MeanEndurance
	cfg.GapWritePeriod = s.GapWritePeriod
	cfg.Seed = s.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	gen, err := NewWorkload(WorkloadSpec{Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	budget := uint64(s.MaxWritesPerBlock * float64(s.Blocks))
	for sys.Writes() < budget && sys.UsableFraction() > 0.7 {
		if sys.Run(1<<12, nil) == 0 {
			break
		}
	}
	return sys.WritesPerBlock(), sys.AccessRatio()
}

// BenchmarkAblation_ChainSwitching isolates the one-step-chain invariant:
// without reduction, chains grow and every failed-block access walks them.
func BenchmarkAblation_ChainSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, withRatio := ablationRun(b, nil)
		_, withoutRatio := ablationRun(b, func(c *Config) { c.DisableChainReduction = true })
		b.ReportMetric(withRatio, "access-ratio-reduced")
		b.ReportMetric(withoutRatio, "access-ratio-unreduced")
	}
}

// BenchmarkAblation_InversePointerSection varies the stored pointer size:
// larger pointers shrink a page's shadow section (fewer spares per
// acquisition) in exchange for wider addressability.
func BenchmarkAblation_InversePointerSection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		life4, _ := ablationRun(b, func(c *Config) { c.RevPointerBytes = 4 })
		life16, _ := ablationRun(b, func(c *Config) { c.RevPointerBytes = 16 })
		b.ReportMetric(life4, "lifetime-4B-ptr")
		b.ReportMetric(life16, "lifetime-16B-ptr")
	}
}

// BenchmarkAblation_AcquisitionPolicy compares the paper's delayed
// (sacrificed-write) acquisition with the rejected immediate-interrupt
// design.
func BenchmarkAblation_AcquisitionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lifeDelayed, _ := ablationRun(b, nil)
		lifeImmediate, _ := ablationRun(b, func(c *Config) { c.ImmediateAcquisition = true })
		b.ReportMetric(lifeDelayed, "lifetime-delayed")
		b.ReportMetric(lifeImmediate, "lifetime-immediate")
	}
}

// BenchmarkAblation_RestrictedRandomizer isolates LLS's half-space
// randomization restriction: the same Start-Gap + WLR stack with the
// full Feistel vs the restricted permutation, under skewed writes.
func BenchmarkAblation_RestrictedRandomizer(b *testing.B) {
	s := BenchScale()
	runWith := func(restricted bool) float64 {
		cfg := DefaultConfig()
		cfg.Blocks = s.Blocks
		cfg.BlocksPerPage = s.BlocksPerPage
		cfg.MeanEndurance = s.MeanEndurance
		cfg.GapWritePeriod = s.GapWritePeriod
		cfg.Seed = s.Seed
		if restricted {
			rnd, err := lls.NewRestrictedRandomizer(cfg.Blocks, cfg.Seed)
			if err != nil {
				b.Fatal(err)
			}
			sg, err := wear.NewStartGap(wear.StartGapConfig{
				NumPAs: cfg.Blocks, GapWritePeriod: cfg.GapWritePeriod, Randomizer: rnd,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg.CustomLeveler = sg
		}
		gen, err := NewWorkload(WorkloadSpec{Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: cfg.Seed})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := New(cfg, gen)
		if err != nil {
			b.Fatal(err)
		}
		budget := uint64(s.MaxWritesPerBlock * float64(s.Blocks))
		for sys.Writes() < budget && sys.UsableFraction() > 0.7 {
			if sys.Run(1<<12, nil) == 0 {
				break
			}
		}
		return sys.WritesPerBlock()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(runWith(false), "lifetime-full-feistel")
		b.ReportMetric(runWith(true), "lifetime-restricted")
	}
}

// BenchmarkAblation_LevelerUnderWLR demonstrates framework generality:
// Start-Gap vs Security Refresh, both revived by WL-Reviver.
func BenchmarkAblation_LevelerUnderWLR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lifeSG, _ := ablationRun(b, nil)
		lifeSR, _ := ablationRun(b, func(c *Config) { c.Leveler = LevelerSecurityRefresh })
		b.ReportMetric(lifeSG, "lifetime-startgap")
		b.ReportMetric(lifeSR, "lifetime-securityrefresh")
	}
}

// ---- parallel runner ----------------------------------------------------------

// BenchmarkFig6_ByWorkers measures the experiment fan-out: the same six
// Figure 6 engines driven serially and across all CPUs. The ratio of the
// two is the wall-clock speedup the worker pool buys on this machine.
func BenchmarkFig6_ByWorkers(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := TinyScale()
			s.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Fig6(s, "ocean"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6_ByShards measures the intra-engine shard pool: the same
// Figure 6 experiment on an 8-shard grid, engines serial (workers=1) so
// all parallelism comes from within each engine, at -shards 1 and
// NumCPU. The ratio of the two is the single-device speedup sharding
// buys on this machine; the simulated results are byte-identical across
// the rows (enforced by the sim package's sharding equivalence tests).
func BenchmarkFig6_ByShards(b *testing.B) {
	for _, shards := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := TinyScale()
			s.Workers = 1
			s.ShardGrid = 8
			s.Shards = shards
			for i := 0; i < b.N; i++ {
				if _, err := Fig6(s, "ocean"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- hot-path microbenchmarks -------------------------------------------------

// BenchmarkEngineStepHealthy measures the per-write cost of the full
// stack before any failure.
func BenchmarkEngineStepHealthy(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 16
	cfg.MeanEndurance = 1e12 // never fails within the bench
	gen, err := trace.NewUniform(cfg.Blocks, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepDegraded measures the per-write cost on a chip with
// substantial hidden failures (chain redirections in play).
func BenchmarkEngineStepDegraded(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.BlocksPerPage = 16
	cfg.MeanEndurance = 1500
	cfg.GapWritePeriod = 50
	gen, err := trace.NewUniform(cfg.Blocks, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-degrade to ~10% failures.
	for e.Device().DeadBlocks() < e.Device().NumBlocks()/10 {
		if !e.Step() {
			b.Fatal("memory died during warmup")
		}
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			// The chip died mid-measurement; restart on a fresh one so
			// every counted iteration is a real degraded-path write.
			b.StopTimer()
			e, err = sim.NewEngine(cfg, gen)
			if err != nil {
				b.Fatal(err)
			}
			for e.Device().DeadBlocks() < e.Device().NumBlocks()/10 {
				if !e.Step() {
					b.Fatal("memory died during warmup")
				}
			}
			b.StartTimer()
		}
		steps++
	}
	_ = steps
}

// BenchmarkEngineRunN measures the batched write loop the experiment
// runners sit in (runCurve drives checkEvery-write batches through RunN).
func BenchmarkEngineRunN(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 16
	cfg.MeanEndurance = 1e12 // never fails within the bench
	gen, err := trace.NewUniform(cfg.Blocks, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.NewEngine(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1 << 10
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := uint64(batch)
		if rem := b.N - i; rem < batch {
			n = uint64(rem)
		}
		if e.RunN(n) != n {
			b.Fatal("engine stopped mid-bench")
		}
	}
}

// BenchmarkWorkloadNext isolates the generator draw that feeds every
// simulated write (alias-method sampling for benchmark workloads).
func BenchmarkWorkloadNext(b *testing.B) {
	gen, err := NewWorkload(WorkloadSpec{Kind: "mg", Blocks: 1 << 16, PageBlocks: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Next()
	}
}
