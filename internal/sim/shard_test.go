package sim

import (
	"encoding/json"
	"errors"
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

// shardTestGrid keeps the checkpoint-test geometry (1<<9 blocks, 8-block
// pages) divisible into whole-page shards: 128 blocks / 16 pages each.
const shardTestGrid = 4

// buildSharded constructs a fresh sharded chip for the role at the given
// execution pool width, attaching a metrics observer so chip-level
// observer state rides through every checkpoint. The returned Metrics is
// the attached observer.
func buildSharded(t *testing.T, r ckptRole, pool int) (*ShardedEngine, *obs.Metrics) {
	t.Helper()
	cfg := ckptTestConfig()
	r.mutate(&cfg)
	m := obs.NewMetrics()
	cfg.Observer = m
	cfg.SnapshotEvery = 1000
	se, err := NewShardedEngine(ShardedConfig{Grid: shardTestGrid, Pool: pool}, cfg,
		func(shard uint64, shardCfg Config) (trace.Generator, error) {
			return r.gen(shardCfg)
		})
	if err != nil {
		t.Fatal(err)
	}
	return se, m
}

// shardedFinalImage drives the chip to the budget and returns its
// complete final state as checkpoint bytes — every shard's every layer,
// the chip cursor and the accumulated chip metrics, byte for byte.
func shardedFinalImage(t *testing.T, se *ShardedEngine, budget uint64) []byte {
	t.Helper()
	for se.Writes() < budget && se.RunN(budget-se.Writes()) > 0 {
	}
	img, err := se.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func metricsJSON(t *testing.T, m *obs.Metrics) string {
	t.Helper()
	data, err := json.MarshalIndent(m.Report(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestShardedMatchesSerial is the tentpole's byte-identity oracle: for
// every engine role of the checkpoint sweep, a sharded chip run at pool
// widths 1, 2, 4 and 7 must produce the identical final checkpoint image
// (all shard state, the chip cursor, the observer) and the identical
// metrics report. Run under -race in CI, this also proves the shard pool
// shares nothing it shouldn't.
func TestShardedMatchesSerial(t *testing.T) {
	const budget = 40_000
	for _, r := range ckptRoles() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			var wantImg, wantMetrics string
			for _, pool := range []int{1, 2, 4, 7} {
				se, m := buildSharded(t, r, pool)
				img := string(shardedFinalImage(t, se, budget))
				rep := metricsJSON(t, m)
				if pool == 1 {
					wantImg, wantMetrics = img, rep
					continue
				}
				if img != wantImg {
					t.Errorf("pool=%d final state diverged from serial", pool)
				}
				if rep != wantMetrics {
					t.Errorf("pool=%d metrics diverged from serial", pool)
				}
			}
		})
	}
}

// TestShardedCrossPoolResume pins checkpoint portability across
// execution widths, both directions, for every role of the sweep: a
// checkpoint written under pool=4 resumed under pool=1 — and one written
// under pool=1 resumed under pool=7 — must finish byte-identical to the
// uninterrupted run. The pool width is not part of the persisted state,
// so this is the on-disk half of the byte-identity contract.
func TestShardedCrossPoolResume(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-pool resume sweep is slow; run without -short")
	}
	const budget = 40_000
	for _, r := range ckptRoles() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			ref, _ := buildSharded(t, r, 2)
			want := string(shardedFinalImage(t, ref, budget))

			psi := ref.cfg.GapWritePeriod
			points := []uint64{137, psi*3 + 1, budget / 2}
			for _, pools := range [][2]int{{4, 1}, {1, 7}} {
				for _, p := range points {
					a, _ := buildSharded(t, r, pools[0])
					for a.Writes() < p && a.RunN(p-a.Writes()) > 0 {
					}
					img, err := a.Checkpoint()
					if err != nil {
						t.Fatalf("checkpoint at %d: %v", p, err)
					}
					b, _ := buildSharded(t, r, pools[1])
					if err := b.RestoreCheckpoint(img); err != nil {
						t.Fatalf("restore at %d: %v", p, err)
					}
					if got := string(shardedFinalImage(t, b, budget)); got != want {
						t.Fatalf("pool %d→%d resume from write %d diverged", pools[0], pools[1], p)
					}
				}
			}
		})
	}
}

// TestShardedConfigValidation pins the constructor's rejections: grids
// that don't partition the chip, grids below 2, shards that split OS
// pages, and custom levelers (whose state can't be partitioned).
func TestShardedConfigValidation(t *testing.T) {
	gen := func(shard uint64, shardCfg Config) (trace.Generator, error) {
		return trace.NewUniform(shardCfg.Blocks, shardCfg.Seed)
	}
	cfg := ckptTestConfig()
	cases := []struct {
		name string
		sc   ShardedConfig
		mut  func(*Config)
	}{
		{"grid-1", ShardedConfig{Grid: 1}, nil},
		{"grid-indivisible", ShardedConfig{Grid: 3}, nil},
		{"splits-pages", ShardedConfig{Grid: 4}, func(c *Config) { c.BlocksPerPage = 6 }},
		{"custom-leveler", ShardedConfig{Grid: 4}, func(c *Config) {
			c.CustomLeveler = wear.Static{Size: c.Blocks}
		}},
	}
	for _, tc := range cases {
		c := cfg
		if tc.mut != nil {
			tc.mut(&c)
		}
		if _, err := NewShardedEngine(tc.sc, c, gen); err == nil {
			t.Errorf("%s: constructor accepted invalid config", tc.name)
		}
	}
}

// TestShardedRestoreRejectsGridMismatch: the grid is semantic state — a
// checkpoint taken under one grid must not restore into another.
func TestShardedRestoreRejectsGridMismatch(t *testing.T) {
	r := ckptRoles()[2] // sg-wlr
	a, _ := buildSharded(t, r, 1)
	if a.RunN(500) == 0 {
		t.Fatal("chip stopped immediately")
	}
	img, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptTestConfig()
	b, err := NewShardedEngine(ShardedConfig{Grid: 8, Pool: 1}, cfg,
		func(shard uint64, shardCfg Config) (trace.Generator, error) {
			return r.gen(shardCfg)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreCheckpoint(img); err == nil {
		t.Fatal("restore into different grid succeeded")
	}
	// A monolithic checkpoint is a different model entirely.
	mono := buildRole(t, r)
	if mono.RunN(500) == 0 {
		t.Fatal("engine stopped immediately")
	}
	mimg, err := mono.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := buildSharded(t, r, 1)
	if err := c.RestoreCheckpoint(mimg); err == nil {
		t.Fatal("restore of monolithic checkpoint into sharded chip succeeded")
	}
}

// TestShardedCrashAfterHalts mirrors TestCrashAfterHalts on the sharded
// chip: exactly n writes, Crashed reported, no further service.
func TestShardedCrashAfterHalts(t *testing.T) {
	se, _ := buildSharded(t, ckptRoles()[2], 2)
	se.CrashAfter(777)
	if got := se.RunN(10_000); got != 777 {
		t.Fatalf("serviced %d writes, want 777", got)
	}
	if !se.Crashed() {
		t.Fatal("chip not marked crashed")
	}
	if se.RunN(10) != 0 {
		t.Fatal("crashed chip serviced more writes")
	}
}

// shardedScale is the failure-dense experiment scale with a 4-shard grid:
// what the sweep-level differentials below drive through Fig8's curve
// runner and the checkpoint plan.
func shardedScale(shards int) Scale {
	return Scale{
		Blocks: 1 << 9, BlocksPerPage: 8, MeanEndurance: 120,
		GapWritePeriod: 10, Seed: 7, MaxWritesPerBlock: 100,
		ShardGrid: shardTestGrid, Shards: shards,
	}
}

// TestShardedExperimentMatchesAcrossShards runs a whole experiment
// (Fig8: curve runner, both protector arms) on the sharded chip at
// -shards 1, 2, 4 and 7 and requires byte-identical formatted output and
// metrics JSON — the end-to-end face of the byte-identity contract, over
// exactly what cmd/paper prints.
func TestShardedExperimentMatchesAcrossShards(t *testing.T) {
	var want string
	for _, shards := range []int{1, 2, 4, 7} {
		s := shardedScale(shards)
		col := newTestCollector()
		s.Observe = col.observe
		got := fig8Signature(t, s, col)
		if shards == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("-shards %d experiment output diverged from -shards 1", shards)
		}
	}
}

// TestShardedCrashResumeAcrossShards is the satellite's cross-width
// crash sweep: crash a sharded Fig8 run under one execution width,
// resume the on-disk checkpoints under another (4→1 and 1→4), and
// require output byte-identical to the uninterrupted run.
func TestShardedCrashResumeAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded crash/resume differential is slow; run without -short")
	}
	s := shardedScale(1)
	col := newTestCollector()
	s.Observe = col.observe
	want := fig8Signature(t, s, col)

	for _, widths := range [][2]int{{4, 1}, {1, 4}} {
		for _, crash := range []uint64{500, 5_000, 15_000, 25_000} {
			dir := t.TempDir()
			s := shardedScale(widths[0])
			s.Observe = newTestCollector().observe
			plan := &CheckpointPlan{Dir: dir, Every: 1 << 11}
			plan.ArmTotalCrash(crash)
			s.Checkpoint = plan
			if _, err := Fig8(s, "ocean"); err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("crash at %d: %v", crash, err)
			}

			s = shardedScale(widths[1])
			col := newTestCollector()
			s.Observe = col.observe
			s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
			if got := fig8Signature(t, s, col); got != want {
				t.Errorf("shards %d→%d resume after crash at %d diverged", widths[0], widths[1], crash)
			}
		}
	}
}
