package wear

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes Start-Gap's mutable registers. The static
// randomizer is reconstructed from configuration on restore and is not
// written.
func (s *StartGap) SaveState(e *ckpt.Encoder) {
	e.U64(s.start)
	e.U64(s.gap)
	e.U64(s.writes)
	e.U64(s.gapMoves)
}

// LoadState restores registers written by SaveState into a scheme built
// from the identical configuration.
func (s *StartGap) LoadState(dec *ckpt.Decoder) error {
	start := dec.U64()
	gap := dec.U64()
	writes := dec.U64()
	gapMoves := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if start >= s.n || gap > s.n || writes >= s.period {
		return fmt.Errorf("wear: start-gap checkpoint registers out of range")
	}
	s.start = start
	s.gap = gap
	s.writes = writes
	s.gapMoves = gapMoves
	return nil
}

// SaveState serializes the regioned scheme: each region's Start-Gap
// registers in region order.
func (s *RegionedStartGap) SaveState(e *ckpt.Encoder) {
	e.U32(uint32(len(s.regions)))
	for _, r := range s.regions {
		r.SaveState(e)
	}
}

// LoadState restores state written by SaveState into a scheme built from
// the identical configuration.
func (s *RegionedStartGap) LoadState(dec *ckpt.Decoder) error {
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(s.regions) {
		return fmt.Errorf("wear: checkpoint has %d regions, scheme has %d", n, len(s.regions))
	}
	for _, r := range s.regions {
		if err := r.LoadState(dec); err != nil {
			return err
		}
	}
	return nil
}

// saveState serializes one refresh region's registers and RNG stream
// position. The memoization table is derived and rebuilt on load.
func (r *srRegion) saveState(e *ckpt.Encoder) {
	e.U64(r.kPrev)
	e.U64(r.kCur)
	e.U64(r.rp)
	e.U64(r.swaps)
	e.U64(r.round)
	st := r.src.State()
	for _, w := range st {
		e.U64(w)
	}
}

// loadState restores registers written by saveState and rebuilds the
// memoization table from them.
func (r *srRegion) loadState(dec *ckpt.Decoder) error {
	kPrev := dec.U64()
	kCur := dec.U64()
	rp := dec.U64()
	swaps := dec.U64()
	round := dec.U64()
	var st [4]uint64
	for i := range st {
		st[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if kPrev >= r.size || kCur >= r.size || rp > r.size {
		return fmt.Errorf("wear: security-refresh checkpoint registers out of range")
	}
	r.kPrev = kPrev
	r.kCur = kCur
	r.rp = rp
	r.swaps = swaps
	r.round = round
	r.src.SetState(st)
	if r.tbl != nil {
		for ra := uint64(0); ra < r.size; ra++ {
			r.tbl[ra] = uint32(r.mapSlow(ra))
		}
	}
	return nil
}

// saveState serializes one decoder region: the pacing counters, the RNG
// stream position, and the forward permutation. The inverse is derived
// and rebuilt on load.
func (r *wfrRegion) saveState(e *ckpt.Encoder) {
	e.U64(r.writes)
	e.U64(r.swaps)
	st := r.src.State()
	for _, w := range st {
		e.U64(w)
	}
	e.U32s(r.perm)
}

// loadState restores a region written by saveState, validating the
// permutation and rebuilding the inverse from it.
func (r *wfrRegion) loadState(dec *ckpt.Decoder) error {
	writes := dec.U64()
	swaps := dec.U64()
	var st [4]uint64
	for i := range st {
		st[i] = dec.U64()
	}
	perm := dec.U32s()
	if err := dec.Err(); err != nil {
		return err
	}
	if uint64(len(perm)) != r.size {
		return fmt.Errorf("wear: wolfram checkpoint region has %d entries, region has %d", len(perm), r.size)
	}
	seen := make([]bool, r.size)
	for _, p := range perm {
		if uint64(p) >= r.size || seen[p] {
			return fmt.Errorf("wear: wolfram checkpoint decoder is not a permutation")
		}
		seen[p] = true
	}
	r.writes = writes
	r.swaps = swaps
	r.src.SetState(st)
	copy(r.perm, perm)
	for i, p := range r.perm {
		r.inv[p] = uint32(i)
	}
	return nil
}

// SaveState serializes WoLFRaM: every decoder region in index order.
func (w *WoLFRaM) SaveState(e *ckpt.Encoder) {
	e.U32(uint32(len(w.regions)))
	for _, r := range w.regions {
		r.saveState(e)
	}
}

// LoadState restores state written by SaveState into a scheme built from
// the identical configuration.
func (w *WoLFRaM) LoadState(dec *ckpt.Decoder) error {
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(w.regions) {
		return fmt.Errorf("wear: checkpoint has %d decoder regions, scheme has %d", n, len(w.regions))
	}
	for _, r := range w.regions {
		if err := r.loadState(dec); err != nil {
			return err
		}
	}
	return nil
}

// SaveState serializes SoftWear: the page table, the per-page epoch
// counters, the per-frame wear estimates and the pacing registers.
func (s *SoftWear) SaveState(e *ckpt.Encoder) {
	s.pt.SaveState(e)
	e.U32s(s.counts)
	e.U64s(s.est)
	e.U64(s.epochW)
	e.U64(s.relocs)
}

// LoadState restores state written by SaveState into a scheme built from
// the identical configuration.
func (s *SoftWear) LoadState(dec *ckpt.Decoder) error {
	if err := s.pt.LoadState(dec); err != nil {
		return err
	}
	counts := dec.U32s()
	est := dec.U64s()
	epochW := dec.U64()
	relocs := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(counts) != len(s.counts) || len(est) != len(s.est) {
		return fmt.Errorf("wear: softwear checkpoint page count mismatch")
	}
	if epochW >= s.period {
		return fmt.Errorf("wear: softwear checkpoint registers out of range")
	}
	copy(s.counts, counts)
	copy(s.est, est)
	s.epochW = epochW
	s.relocs = relocs
	return nil
}

// SaveState serializes Security Refresh: the outer region, every inner
// region in index order, and the write pacing counters.
func (s *SecurityRefresh) SaveState(e *ckpt.Encoder) {
	s.outer.saveState(e)
	e.U32(uint32(len(s.inner)))
	for _, r := range s.inner {
		r.saveState(e)
	}
	e.U64(s.outerW)
	e.U64s(s.innerW)
}

// LoadState restores state written by SaveState into a scheme built from
// the identical configuration.
func (s *SecurityRefresh) LoadState(dec *ckpt.Decoder) error {
	if err := s.outer.loadState(dec); err != nil {
		return err
	}
	n := int(dec.U32())
	if dec.Err() == nil && n != len(s.inner) {
		return fmt.Errorf("wear: checkpoint has %d inner regions, scheme has %d", n, len(s.inner))
	}
	for _, r := range s.inner {
		if err := r.loadState(dec); err != nil {
			return err
		}
	}
	outerW := dec.U64()
	innerW := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(innerW) != len(s.innerW) {
		return fmt.Errorf("wear: checkpoint inner pacing count mismatch")
	}
	copy(s.innerW, innerW)
	s.outerW = outerW
	return nil
}
