// Package wlreviver is a from-scratch reproduction of "WL-Reviver: A
// Framework for Reviving any Wear-Leveling Techniques in the Face of
// Failures on Phase Change Memory" (Fan, Jiang, Shu, Sun, Hu — DSN 2014).
//
// It provides a complete trace-driven PCM simulation stack — a cell-level
// endurance model, ECP/PAYG error correction, Start-Gap and Security
// Refresh wear leveling, an OS page-retirement model, the adapted FREE-p
// and LLS baselines — and the paper's contribution: the WL-Reviver
// framework, which keeps any wear-leveling scheme functioning after
// block failures by linking failed blocks to virtual shadow blocks
// (retired-page physical addresses) whose mapping the scheme itself
// keeps up to date.
//
// # Quick start
//
//	cfg := wlreviver.DefaultConfig()
//	workload, _ := wlreviver.NewWorkload(wlreviver.WorkloadSpec{
//		Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: 1,
//	})
//	sys, _ := wlreviver.New(cfg, workload)
//	sys.Run(10_000_000, nil)
//	fmt.Printf("survival %.3f usable %.3f\n", sys.SurvivalRate(), sys.UsableFraction())
//
// The experiment presets (Table1, Fig5 … Table2) regenerate every table
// and figure of the paper's evaluation; see EXPERIMENTS.md for the
// paper-vs-measured record.
package wlreviver

import (
	"fmt"

	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

// Config assembles one simulated PCM system; see sim.Config for the full
// field documentation.
type Config = sim.Config

// System is a running simulated PCM memory system.
type System = sim.Engine

// Workload is an endless stream of block write addresses.
type Workload = trace.Generator

// Leveler is the wear-leveling scheme interface; supply your own through
// Config.CustomLeveler to have the framework revive it (the paper's
// central claim — see examples/customleveler).
type Leveler = wear.Leveler

// Mover carries out a leveler's data migrations; the configured
// protection framework implements it.
type Mover = wear.Mover

// Kind selectors for the configurable components.
type (
	// LevelerKind selects the wear-leveling scheme.
	LevelerKind = sim.LevelerKind
	// ProtectorKind selects the failure-protection framework.
	ProtectorKind = sim.ProtectorKind
	// ECCKind selects the error-correction scheme.
	ECCKind = sim.ECCKind
)

// Component selectors (see the sim package for documentation).
const (
	LevelerNone             = sim.LevelerNone
	LevelerStartGap         = sim.LevelerStartGap
	LevelerSecurityRefresh  = sim.LevelerSecurityRefresh
	LevelerRegionedStartGap = sim.LevelerRegionedStartGap

	ProtectorNone      = sim.ProtectorNone
	ProtectorWLReviver = sim.ProtectorWLReviver
	ProtectorFREEp     = sim.ProtectorFREEp
	ProtectorLLS       = sim.ProtectorLLS
	ProtectorDRM       = sim.ProtectorDRM

	ECCECP6 = sim.ECCECP6
	ECCECP1 = sim.ECCECP1
	ECCPAYG = sim.ECCPAYG
)

// DefaultConfig returns the scaled default system (see sim.DefaultConfig).
func DefaultConfig() Config { return sim.DefaultConfig() }

// New builds a system from cfg and a workload covering cfg.Blocks blocks.
func New(cfg Config, workload Workload) (*System, error) {
	return sim.NewEngine(cfg, workload)
}

// BenchmarkNames lists the Table I benchmark names.
func BenchmarkNames() []string { return trace.BenchmarkNames() }

// Scale groups the geometry knobs shared by the experiment presets.
type Scale = sim.Scale

// TinyScale is the unit-test scale (64 KiB chip).
func TinyScale() Scale { return sim.TinyScale() }

// BenchScale is the benchmark-harness scale (512 KiB chip).
func BenchScale() Scale { return sim.BenchScale() }

// PaperScale approaches the paper's setup (4 MiB chip, 1e4 endurance).
func PaperScale() Scale { return sim.PaperScale() }

// Paper1GBScale is the paper's full 1 GB chip (2^24 blocks, 1e8
// endurance) with a 64-way shard grid; runs must be budget-bounded via
// MaxWritesPerBlock (full lifetime is ~1e15 writes).
func Paper1GBScale() Scale { return sim.Paper1GBScale() }

// Experiment result types.
type (
	// Table1Result reproduces Table I.
	Table1Result = sim.Table1Result
	// Fig5Result reproduces Figure 5.
	Fig5Result = sim.Fig5Result
	// Fig6Result reproduces Figure 6.
	Fig6Result = sim.Fig6Result
	// Fig7Result reproduces Figure 7.
	Fig7Result = sim.Fig7Result
	// Fig8Result reproduces Figure 8.
	Fig8Result = sim.Fig8Result
	// Table2Result reproduces Table II.
	Table2Result = sim.Table2Result
	// AttacksResult measures malicious wear-out resistance (§IV-B).
	AttacksResult = sim.AttacksResult
)

// CheckpointPlan coordinates per-job checkpointing, resume and crash
// injection across an experiment sweep (set it on Scale.Checkpoint). A
// run resumed from its checkpoints is byte-identical to an
// uninterrupted run; see EXPERIMENTS.md § Checkpoint format.
type CheckpointPlan = sim.CheckpointPlan

// Experiment is one registered evaluation preset (name, doc, runner).
type Experiment = sim.Experiment

// ResultPair bundles a per-workload figure's runs over the two reference
// workloads into one result.
type ResultPair = sim.ResultPair

// Experiments returns the ordered experiment registry; the CLI's -exp
// dispatch and the preset functions below are built over it.
func Experiments() []Experiment { return sim.Experiments() }

// ExperimentNames returns the registered experiment names in order.
func ExperimentNames() []string { return sim.ExperimentNames() }

// LookupExperiment returns the registered experiment with the given
// name, or an error listing the known names.
func LookupExperiment(name string) (Experiment, error) { return sim.LookupExperiment(name) }

// runRegistered dispatches a fixed-configuration preset through the
// registry, so the registry stays the one authority on what each named
// experiment runs.
func runRegistered[T any](name string, s Scale) (T, error) {
	var zero T
	e, err := LookupExperiment(name)
	if err != nil {
		return zero, err
	}
	res, err := e.Run(s)
	if err != nil {
		return zero, err
	}
	out, ok := res.(T)
	if !ok {
		return zero, fmt.Errorf("wlreviver: experiment %q returned %T", name, res)
	}
	return out, nil
}

// Table1 regenerates Table I (benchmark write CoVs).
func Table1(s Scale) (*Table1Result, error) { return runRegistered[*Table1Result]("table1", s) }

// Fig5 regenerates Figure 5 (lifetime to 30% capacity loss, ±WLR).
func Fig5(s Scale) (*Fig5Result, error) { return runRegistered[*Fig5Result]("fig5", s) }

// Fig6 regenerates Figure 6 (capacity-survival curves) for a benchmark.
// The registry's "fig6" entry fixes the paper's reference workloads; this
// parameterised form accepts any Table I benchmark name.
func Fig6(s Scale, workload string) (*Fig6Result, error) { return sim.Fig6(s, workload) }

// Fig7 regenerates Figure 7 (WLR vs FREE-p reservations) for a benchmark.
func Fig7(s Scale, workload string) (*Fig7Result, error) { return sim.Fig7(s, workload) }

// Fig8 regenerates Figure 8 (WLR vs LLS usable space) for a benchmark.
func Fig8(s Scale, workload string) (*Fig8Result, error) { return sim.Fig8(s, workload) }

// Table2 regenerates Table II (access time and usable space vs failure
// ratio, LLS vs WLR) for the given benchmark workloads.
func Table2(s Scale, workloads []string) (*Table2Result, error) { return sim.Table2(s, workloads) }

// Attacks measures hammering and birthday-paradox attack costs, ±WLR.
func Attacks(s Scale) (*AttacksResult, error) { return runRegistered[*AttacksResult]("attacks", s) }
