package reviver

// Reboot support (paper §III-A): the retirement bitmap — one bit per
// page, set at most once in the chip's lifetime — is persisted in PCM so
// a rebooting OS knows which pages to keep away from, and the framework's
// pointers live in PCM anyway (in-block pointers in the failed blocks,
// inverse pointers in the acquired pages' pointer sections), so the
// controller's tables can be rebuilt by reading them back — "even in very
// rare cases where the pointers are lost, they can be rebuilt by scanning
// the entire PCM".
//
// The simulator keeps that PCM-resident metadata as authoritative Go
// maps; Snapshot models reading it out of the chip at shutdown (or the
// full scan), and Restore models the reboot: the OS reloads the bitmap
// and the controller reloads its links.

import (
	"encoding/binary"
	"fmt"
)

var snapshotMagic = [4]byte{'W', 'L', 'R', 'V'}

const snapshotVersion = 1

// Snapshot serialises the framework's PCM-resident metadata: the OS
// retirement bitmap, the failed-block links, the spare-PA pool and the
// inverse-pointer slot assignments. It fails while a wear-leveling
// delivery is suspended (a clean shutdown completes pending work first;
// hardware would drain the migration buffer).
func (r *Reviver) Snapshot() ([]byte, error) {
	if len(r.pending) > 0 {
		return nil, fmt.Errorf("reviver: cannot snapshot with %d suspended deliveries", len(r.pending))
	}
	bitmap := r.os.Bitmap()
	var out []byte
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, snapshotVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(bitmap)))
	out = append(out, bitmap...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(r.ptr)))
	for da, pa := range r.ptr {
		out = binary.LittleEndian.AppendUint64(out, da)
		out = binary.LittleEndian.AppendUint64(out, pa)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(len(r.avail)))
	for _, pa := range r.avail {
		out = binary.LittleEndian.AppendUint64(out, pa)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(len(r.ptrSlot)))
	for pa, slot := range r.ptrSlot {
		out = binary.LittleEndian.AppendUint64(out, pa)
		out = binary.LittleEndian.AppendUint64(out, slot)
	}
	return out, nil
}

// Restore rebuilds the framework's state from a Snapshot after a reboot:
// the OS model reloads the retirement bitmap and the controller reloads
// links, spares and slot assignments. The device (the PCM itself, with
// its wear and failures) and the wear-leveling scheme's registers are
// non-volatile and must be the ones the snapshot was taken against;
// Restore validates the snapshot against them.
func (r *Reviver) Restore(data []byte) error {
	rd := &snapReader{buf: data}
	var magic [4]byte
	if err := rd.bytes(magic[:]); err != nil {
		return fmt.Errorf("reviver: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("reviver: bad snapshot magic %q", magic)
	}
	version, err := rd.u32()
	if err != nil {
		return fmt.Errorf("reviver: reading snapshot version: %w", err)
	}
	if version != snapshotVersion {
		return fmt.Errorf("reviver: unsupported snapshot version %d", version)
	}
	bmLen, err := rd.u64()
	if err != nil {
		return err
	}
	bitmap := make([]byte, bmLen)
	if err := rd.bytes(bitmap); err != nil {
		return fmt.Errorf("reviver: reading bitmap: %w", err)
	}
	if err := r.os.LoadBitmap(bitmap); err != nil {
		return err
	}

	ptr := make(map[uint64]uint64)
	nPtr, err := rd.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nPtr; i++ {
		da, err := rd.u64()
		if err != nil {
			return err
		}
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		if da >= r.lv.NumDAs() {
			return fmt.Errorf("reviver: snapshot links DA %d outside the DA space", da)
		}
		if !r.be.Dead(da) {
			return fmt.Errorf("reviver: snapshot links DA %d but the chip says it is healthy", da)
		}
		if !r.os.Retired(pa) {
			return fmt.Errorf("reviver: snapshot shadow PA %d is not in a retired page", pa)
		}
		ptr[da] = pa
	}
	var avail []uint64
	nAvail, err := rd.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nAvail; i++ {
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		if !r.os.Retired(pa) {
			return fmt.Errorf("reviver: snapshot spare PA %d is not in a retired page", pa)
		}
		avail = append(avail, pa)
	}
	ptrSlot := make(map[uint64]uint64)
	nSlot, err := rd.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nSlot; i++ {
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		slot, err := rd.u64()
		if err != nil {
			return err
		}
		ptrSlot[pa] = slot
	}

	r.ptr = ptr
	r.inv = make(map[uint64]uint64, len(ptr))
	for da, pa := range ptr {
		if other, dup := r.inv[pa]; dup {
			return fmt.Errorf("reviver: snapshot links PA %d to both DA %d and DA %d", pa, other, da)
		}
		r.inv[pa] = da
	}
	r.avail = avail
	r.ptrSlot = ptrSlot
	r.pending = nil
	r.pendVals = make(map[uint64]pendingVal)
	r.orphans = make(map[uint64]struct{})
	return nil
}

// snapReader is a bounds-checked little-endian reader.
type snapReader struct {
	buf []byte
	off int
}

func (s *snapReader) bytes(dst []byte) error {
	if s.off+len(dst) > len(s.buf) {
		return fmt.Errorf("reviver: snapshot truncated at offset %d", s.off)
	}
	copy(dst, s.buf[s.off:])
	s.off += len(dst)
	return nil
}

func (s *snapReader) u32() (uint32, error) {
	var b [4]byte
	if err := s.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (s *snapReader) u64() (uint64, error) {
	var b [8]byte
	if err := s.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
