package pcm

import (
	"math"
	"testing"

	"wlreviver/internal/rng"
)

// forceChecked disables a device's fast path permanently: every write
// takes the full checked path and the horizon is never re-armed.
func forceChecked(d *Device) {
	d.horizon = 0
	d.rescanIn = math.MaxUint64
}

// TestHorizonMatchesCheckedPath drives two identical devices — one with
// the failure-horizon fast path, one forced onto the checked path — with
// the same write stream through many cell failures, and requires every
// observable (per-write failure counts, wear, failed cells, thresholds,
// access stats) to stay identical.
func TestHorizonMatchesCheckedPath(t *testing.T) {
	cfg := Config{
		NumBlocks:     64,
		BlockBytes:    64,
		CellsPerBlock: 8,
		MeanEndurance: 500,
		LifetimeCoV:   0.3,
		Seed:          7,
	}
	fast, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forceChecked(slow)

	src := rng.New(3)
	failures := 0
	for i := 0; i < 300000; i++ {
		b := BlockID(src.Uint64n(cfg.NumBlocks))
		nfF := fast.Write(b)
		nfS := slow.Write(b)
		if nfF != nfS {
			t.Fatalf("write %d to block %d: fast reported %d failures, checked %d", i, b, nfF, nfS)
		}
		failures += nfF
		// Exercise the dead-block interplay once failures start.
		if nfF > 0 && !fast.Dead(b) && fast.FailedCells(b) >= 4 {
			fast.MarkDead(b)
			slow.MarkDead(b)
		}
	}
	if failures == 0 {
		t.Fatal("stream produced no cell failures; horizon expiry path not exercised")
	}
	for b := uint64(0); b < cfg.NumBlocks; b++ {
		id := BlockID(b)
		if fast.Wear(id) != slow.Wear(id) {
			t.Fatalf("block %d: wear %d vs %d", b, fast.Wear(id), slow.Wear(id))
		}
		if fast.FailedCells(id) != slow.FailedCells(id) {
			t.Fatalf("block %d: failed cells %d vs %d", b, fast.FailedCells(id), slow.FailedCells(id))
		}
		if fast.PeekNextFailure(id) != slow.PeekNextFailure(id) {
			t.Fatalf("block %d: next failure %d vs %d", b, fast.PeekNextFailure(id), slow.PeekNextFailure(id))
		}
		if fast.Dead(id) != slow.Dead(id) {
			t.Fatalf("block %d: dead %v vs %v", b, fast.Dead(id), slow.Dead(id))
		}
	}
	if fast.Stats() != slow.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", fast.Stats(), slow.Stats())
	}
}

// TestWriteNoFailSemantics pins the contract of the backend's fast entry:
// success must mean "a live block wrote with zero failures", and refusal
// must leave the device untouched.
func TestWriteNoFailSemantics(t *testing.T) {
	cfg := Config{
		NumBlocks:     16,
		BlockBytes:    64,
		CellsPerBlock: 4,
		MeanEndurance: 300,
		LifetimeCoV:   0.25,
		Seed:          11,
	}
	fast, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	forceChecked(ref)
	fast.MarkDead(3)
	ref.MarkDead(3)
	if fast.WriteNoFail(3) {
		t.Fatal("WriteNoFail accepted a dead block")
	}
	if fast.Wear(3) != 0 || fast.Stats().Writes != 0 {
		t.Fatal("refused WriteNoFail still mutated the device")
	}
	src := rng.New(8)
	for i := 0; i < 100000; i++ {
		b := BlockID(src.Uint64n(cfg.NumBlocks))
		nf := ref.Write(b)
		if fast.WriteNoFail(b) {
			if nf != 0 || ref.Dead(b) {
				t.Fatalf("write %d block %d: fast path taken where checked path saw %d failures (dead=%v)",
					i, b, nf, ref.Dead(b))
			}
		} else if fast.Write(b) != nf {
			t.Fatalf("write %d block %d: checked fallback diverged", i, b)
		}
	}
}
