#!/bin/sh
# verify.sh — the repo's full verification gate (also: `make verify`).
#
# Runs the tier-1 checks from ROADMAP.md plus vet and the race detector
# over the concurrent experiment runner. Keep this green before every
# commit; the race pass is what keeps internal/sim's worker pool honest.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/sim/"
go test -race ./internal/sim/

echo "verify: all checks passed"
