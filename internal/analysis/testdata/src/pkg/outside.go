// Fixture: no-global-rand only applies under internal/; this package
// sits outside it, so the import and the draw are not findings.
// (Nothing in the real repo does this either — the rule's scope is the
// paper's own internal packages.)
package pkg

import "math/rand"

// Sample is exempt by location.
func Sample() int { return rand.Int() }
