package wear

// Shared data-consistency harness: a leveler is correct if, after any
// sequence of migrations it performs, every PA still reads the data that
// was written to it ("the same valid PA consistently refers to the same
// data no matter where it is physically migrated" — paper §I-B).

import "testing"

// shadowMem mirrors the physical data movement a Mover performs.
type shadowMem struct {
	data []uint64
}

func newShadowMem(numDAs uint64) *shadowMem {
	m := &shadowMem{data: make([]uint64, numDAs)}
	for i := range m.data {
		m.data[i] = ^uint64(0) // poison: never a valid tag
	}
	return m
}

func (m *shadowMem) mover() Mover {
	return FuncMover{
		MigrateFn: func(src, dst uint64) { m.data[dst] = m.data[src] },
		SwapFn:    func(a, b uint64) { m.data[a], m.data[b] = m.data[b], m.data[a] },
	}
}

// tag is the logical content written at pa.
func tag(pa uint64) uint64 { return pa*2654435761 + 12345 }

// fillThrough writes every PA's tag through the current mapping.
func fillThrough(l Leveler, m *shadowMem) {
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		m.data[l.Map(pa)] = tag(pa)
	}
}

// verifyThrough checks every PA reads its tag through the current mapping.
func verifyThrough(t *testing.T, l Leveler, m *shadowMem, context string) {
	t.Helper()
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		if got := m.data[l.Map(pa)]; got != tag(pa) {
			t.Fatalf("%s: PA %d reads %d, want %d (mapped to DA %d)",
				context, pa, got, tag(pa), l.Map(pa))
		}
	}
}

// verifyBijection checks Map is injective into [0, NumDAs) and that
// Inverse agrees with Map.
func verifyBijection(t *testing.T, l Leveler, context string) {
	t.Helper()
	seen := make(map[uint64]uint64, l.NumPAs())
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		da := l.Map(pa)
		if da >= l.NumDAs() {
			t.Fatalf("%s: Map(%d) = %d outside DA space [0,%d)", context, pa, da, l.NumDAs())
		}
		if prev, dup := seen[da]; dup {
			t.Fatalf("%s: PAs %d and %d both map to DA %d", context, prev, pa, da)
		}
		seen[da] = pa
		back, ok := l.Inverse(da)
		if !ok || back != pa {
			t.Fatalf("%s: Inverse(%d) = (%d,%v), want (%d,true)", context, da, back, ok, pa)
		}
	}
	// Unmapped DAs must report ok=false.
	for da := uint64(0); da < l.NumDAs(); da++ {
		if _, mapped := seen[da]; !mapped {
			if _, ok := l.Inverse(da); ok {
				t.Fatalf("%s: unmapped DA %d has an inverse", context, da)
			}
		}
	}
}
