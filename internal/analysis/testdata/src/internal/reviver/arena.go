// Fixture: ckpt-state-coverage over an arena-shaped state — the
// index-linked chain arena persists as parallel SoA sections (node
// columns plus the free-list head). Dropping any one section from the
// encoder is the checkpoint bug this golden pins as caught: the image
// still decodes something, so only the structural rule notices.
package reviver

import "wlreviver/internal/ckpt"

// chainArena mirrors the real remap arena's persisted layout: parallel
// node columns, the free-list head, and a lookup index rebuilt from the
// columns on load.
type chainArena struct {
	pas      []uint64
	das      []uint64
	nexts    []uint32          // want ckpt-state-coverage "field nexts of chainArena is referenced in LoadState but not in SaveState"
	freeHead uint32            // want ckpt-state-coverage "field freeHead of chainArena is checkpointed in neither SaveState nor LoadState"
	byDA     map[uint64]uint32 // ckpt:derived rebuilt from the das column on load
}

// SaveState drops the nexts column — exactly the missing arena section
// a stale encoder would emit — and forgets freeHead entirely.
func (a *chainArena) SaveState(e *ckpt.Encoder) {
	e.U64s(a.pas)
	e.U64s(a.das)
}

// LoadState still expects every section; the mismatch is the finding.
func (a *chainArena) LoadState(d *ckpt.Decoder) error {
	a.pas = d.U64s()
	a.das = d.U64s()
	a.nexts = d.U32s()
	a.byDA = make(map[uint64]uint32, len(a.das))
	for i, da := range a.das {
		a.byDA[da] = uint32(i)
	}
	return nil
}
