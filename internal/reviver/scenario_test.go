package reviver

// Directed reproductions of the paper's worked examples: the
// shadow-block failure during a software write (Figure 2c/2d) and the
// migration into a failed block (Figure 3), each ending in the exact
// virtual-shadow switch the paper illustrates.
//
// A failure script installed as the backend's FailureHook kills chosen
// blocks at chosen wear counts, making the walked chains fully
// deterministic.

import (
	"testing"

	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

// script kills block da once its wear reaches killAt[da], via the
// backend's FailureHook.
type script struct {
	killAt map[uint64]uint64 // DA -> wear count at which it dies
}

func newScript() *script {
	return &script{killAt: make(map[uint64]uint64)}
}

// hook is installed as the backend's FailureHook.
func (s *script) hook(da, wear uint64) bool {
	at, scripted := s.killAt[da]
	return scripted && wear >= at
}

// scenarioRig is a transparent stack: Start-Gap with the identity
// randomizer over 16 blocks, 4-block pages, scripted failures.
type scenarioRig struct {
	t   *testing.T
	dev *pcm.Device
	be  *mc.Backend
	sg  *wear.StartGap
	os  *osmodel.Model
	rv  *Reviver
	e   *script
}

func newScenarioRig(t *testing.T) *scenarioRig {
	t.Helper()
	const blocks = 16
	sg, err := wear.NewStartGap(wear.StartGapConfig{
		NumPAs:         blocks,
		GapWritePeriod: 1 << 30, // migrations only when forced
		Randomizer:     wear.Identity{Size: blocks},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks:     blocks + 1,
		BlockBytes:    64,
		CellsPerBlock: 512,
		MeanEndurance: 1e12, // never fails naturally; the script decides
		LifetimeCoV:   0.2,
		Seed:          1,
		TrackContent:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	osm, err := osmodel.New(blocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := newScript()
	scheme, err := ecc.NewECP(6, blocks+1)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: scheme, FailureHook: e.hook}
	rv, err := New(Config{}, sg, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &scenarioRig{t: t, dev: dev, be: be, sg: sg, os: osm, rv: rv, e: e}
}

// write performs one engine-protocol software write.
func (r *scenarioRig) write(vblock, tag uint64) {
	r.t.Helper()
	for attempt := 0; attempt < 8; attempt++ {
		pa, ok := r.os.Translate(vblock)
		if !ok {
			r.t.Fatal("memory exhausted")
		}
		res := r.rv.Write(pa, tag)
		if !res.Retry {
			r.rv.ResumePending()
			r.sg.NoteWrite(pa, r.rv)
			return
		}
	}
	r.t.Fatal("write did not settle")
}

// TestScenarioFig2c reproduces Figure 2(c)/(d): a failed block D0 is
// linked to virtual shadow P1 whose mapping supplies shadow D2; a
// software write kills D2; a fresh PA P2 (mapping to D3) takes over, and
// the switch leaves D0 one step from D3 while D2 lands on a PA-DA loop
// with P1.
func TestScenarioFig2c(t *testing.T) {
	r := newScenarioRig(t)

	// Step 1: first failure. Kill DA 0 on its second write; the write to
	// PA 0 reports to the OS, which retires page 0 (PAs 0-3). The sweep
	// then links D0 to a virtual shadow from that page.
	r.e.killAt[0] = r.dev.Wear(0) + 2
	r.write(0, 100)
	r.write(0, 101) // D0 dies here; page 0 retired; retry lands on donor
	if !r.be.Dead(0) {
		t.Fatal("D0 should be dead")
	}
	p1, linked := r.rv.ShadowPA(0)
	if !linked {
		t.Fatal("D0 not linked to a virtual shadow")
	}
	if !r.os.Retired(p1) {
		t.Fatalf("virtual shadow P1=%d must be software-inaccessible", p1)
	}
	d2 := r.sg.Map(p1)
	if r.be.Dead(d2) {
		t.Fatalf("shadow D2=%d must be healthy (Theorem 1)", d2)
	}
	if steps, healthy := r.rv.ChainSteps(0); steps != 1 || !healthy {
		t.Fatalf("D0 chain = (%d,%v), want one healthy step", steps, healthy)
	}

	// Step 2: make a live PA map to D0. With the identity randomizer and
	// no migrations, no live PA maps to D0 (its mapper was retired), so
	// accesses reach D0 only after wear leveling rotates the mapping —
	// force gap moves until some live PA maps onto D0.
	var paToD0 uint64
	found := false
	for i := 0; i < 40 && !found; i++ {
		r.sg.ForceGapMove(r.rv)
		r.rv.ResumePending()
		if pa, ok := r.sg.Inverse(0); ok && !r.os.Retired(pa) {
			paToD0, found = pa, true
		}
	}
	if !found {
		t.Fatal("no live PA rotated onto D0")
	}
	// The rotation changed P1's mapping too; resolve the current shadow.
	d2 = r.sg.Map(p1)
	if r.be.Dead(d2) {
		t.Fatalf("current shadow %d of D0 should be healthy", d2)
	}

	// Step 3: the Figure 2(c) event — the software writes through D0 and
	// the shadow D2 fails during that write.
	r.e.killAt[d2] = r.dev.Wear(pcm.BlockID(d2)) + 1
	r.write(paToD0, 102) // virtual page of paToD0 is identity: vblock==pa
	if !r.be.Dead(d2) {
		t.Fatal("D2 should have died under the software write")
	}

	// Figure 2(d): D0 now points at a NEW virtual shadow P2 mapping to a
	// healthy D3, and D2 mutually links with P1 (a PA-DA loop).
	p2, ok := r.rv.ShadowPA(0)
	if !ok {
		t.Fatal("D0 lost its link")
	}
	if p2 == p1 {
		t.Fatalf("D0 should have switched shadows away from P1=%d", p1)
	}
	d3 := r.sg.Map(p2)
	if r.be.Dead(d3) {
		t.Fatalf("new shadow D3=%d must be healthy", d3)
	}
	if got := r.dev.Content(pcm.BlockID(d3)); got != 102 {
		t.Fatalf("D3 holds tag %d, want 102", got)
	}
	p1Back, ok := r.rv.ShadowPA(d2)
	if !ok || p1Back != p1 {
		t.Fatalf("D2's virtual shadow = (%d,%v), want P1=%d (the switch)", p1Back, ok, p1)
	}
	if !r.rv.OnLoop(d2) {
		t.Fatal("D2 should sit on a PA-DA loop")
	}
	if d, ok := r.rv.InversePointer(p2); !ok || d != 0 {
		t.Fatalf("inverse pointer of P2 = (%d,%v), want D0", d, ok)
	}
	if d, ok := r.rv.InversePointer(p1); !ok || d != d2 {
		t.Fatalf("inverse pointer of P1 = (%d,%v), want D2=%d", d, ok, d2)
	}
}

// TestScenarioFig3 reproduces Figure 3: wear leveling migrates data into
// a failed block D3 whose shadow is D4; the data lands on D4, producing
// a two-step chain for the block D0 whose virtual shadow P1 now maps to
// D3 — which WL-Reviver reduces by switching D0's and D3's virtual
// shadows.
func TestScenarioFig3(t *testing.T) {
	r := newScenarioRig(t)

	// Create two dead blocks, each hidden behind its own virtual shadow.
	// First failure: D0 (write to PA 0 kills it; page 0 retired).
	r.e.killAt[0] = r.dev.Wear(0) + 1
	r.write(0, 200)
	if !r.be.Dead(0) {
		t.Fatal("D0 should be dead")
	}
	// Second failure: D8 (page 2 stays live; spares exist, so no report).
	r.e.killAt[8] = r.dev.Wear(8) + 1
	r.write(8, 201)
	if !r.be.Dead(8) {
		t.Fatal("D8 should be dead")
	}
	p8, ok := r.rv.ShadowPA(8)
	if !ok {
		t.Fatal("D8 not linked")
	}

	// Drive gap moves until a migration's destination is the dead D8
	// while the PA mapping to the migration source is D0's virtual
	// shadow... that exact coincidence is rare in a 16-block rig, so
	// instead assert the general Figure 3 outcome across a full
	// rotation: after every forced migration, every dead block reachable
	// from a live PA or a spare PA is exactly one step from healthy
	// storage, and any two-step chain that momentarily formed was
	// switched (ChainSwitches grows when migrations land on dead
	// blocks).
	before := r.rv.Stats().ChainSwitches
	for i := 0; i < 3*(16+1); i++ {
		r.sg.ForceGapMove(r.rv)
		r.rv.ResumePending()
		if r.rv.HasPending() {
			continue
		}
		for pa := uint64(0); pa < 16; pa++ {
			if r.os.Retired(pa) {
				continue
			}
			da := r.sg.Map(pa)
			if !r.be.Dead(da) {
				continue
			}
			steps, healthy := r.rv.ChainSteps(da)
			if steps != 1 || !healthy {
				t.Fatalf("gap move %d: dead DA %d has chain (%d,%v)", i, da, steps, healthy)
			}
		}
	}
	after := r.rv.Stats().ChainSwitches
	if after == before {
		t.Log("note: no migration produced a reducible chain this rotation")
	}

	// D8 must still be resolvable and its (possibly migrated) data intact
	// if some live PA maps to it.
	if pa, ok := r.sg.Inverse(8); ok && !r.os.Retired(pa) {
		steps, healthy := r.rv.ChainSteps(8)
		if steps != 1 || !healthy {
			t.Fatalf("D8 chain = (%d,%v)", steps, healthy)
		}
	}
	_ = p8
}

// TestScenarioDelayedAcquisition reproduces §III-A's sacrificed write: a
// migration hits a failure with the spare pool empty, suspends, and the
// next software write is reported to the OS even though it would have
// succeeded.
func TestScenarioDelayedAcquisition(t *testing.T) {
	r := newScenarioRig(t)

	// Kill the gap's migration source target: the first forced gap move
	// migrates DA 15 -> DA 16 (the gap). Kill D16 so the migration write
	// fails with no spares anywhere.
	r.e.killAt[16] = r.dev.Wear(16) + 1
	r.sg.ForceGapMove(r.rv)
	if !r.rv.HasPending() {
		t.Fatal("migration should have suspended: no spare PAs exist")
	}
	st := r.rv.Stats()
	if st.Suspensions != 1 {
		t.Fatalf("suspensions = %d, want 1", st.Suspensions)
	}
	if r.os.RetiredPages() != 0 {
		t.Fatal("no page may be retired before a software write arrives")
	}

	// The next software write (to a perfectly healthy block) must be
	// sacrificed: reported to the OS, page retired, write redirected.
	r.write(9, 300)
	st = r.rv.Stats()
	if st.SacrificedWrites != 1 {
		t.Fatalf("sacrificed writes = %d, want 1", st.SacrificedWrites)
	}
	if r.os.RetiredPages() != 1 {
		t.Fatalf("retired pages = %d, want 1", r.os.RetiredPages())
	}
	if r.rv.HasPending() {
		t.Fatal("the acquisition should have resumed the pending migration")
	}
	// The suspended migration completed: D16 is linked and one step from
	// healthy storage.
	if steps, healthy := r.rv.ChainSteps(16); steps != 1 || !healthy {
		t.Fatalf("D16 chain = (%d,%v), want one healthy step", steps, healthy)
	}
	// And the sacrificed write's data is readable at its new location.
	pa, ok := r.os.Translate(9)
	if !ok {
		t.Fatal("translate failed")
	}
	if tag, _ := r.rv.Read(pa); tag != 300 {
		t.Fatalf("sacrificed write's data reads %d, want 300", tag)
	}
}
