package cache

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the cache's mutable state (tags, validity, LRU
// stamps, clock and hit/miss counters) into the open checkpoint section.
func (c *Cache) SaveState(e *ckpt.Encoder) {
	e.U64s(c.keys)
	e.Bools(c.valid)
	e.U64s(c.age)
	e.U64(c.clock)
	e.U64(c.hits)
	e.U64(c.misses)
}

// LoadState restores state written by SaveState into a cache built from
// the identical Config.
func (c *Cache) LoadState(dec *ckpt.Decoder) error {
	keys := dec.U64s()
	valid := dec.Bools()
	age := dec.U64s()
	clock := dec.U64()
	hits := dec.U64()
	misses := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	n := c.cfg.Sets * c.cfg.Ways
	if len(keys) != n || len(valid) != n || len(age) != n {
		return fmt.Errorf("cache: checkpoint entry count mismatch (cache has %d entries)", n)
	}
	copy(c.keys, keys)
	copy(c.valid, valid)
	copy(c.age, age)
	c.clock = clock
	c.hits = hits
	c.misses = misses
	return nil
}
