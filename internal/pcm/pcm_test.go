package pcm

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"wlreviver/internal/stats"
)

func testConfig(blocks uint64, endurance float64) Config {
	return Config{
		NumBlocks:     blocks,
		BlockBytes:    64,
		CellsPerBlock: 512,
		MeanEndurance: endurance,
		LifetimeCoV:   0.2,
		Seed:          42,
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{NumBlocks: 1, BlockBytes: 0, CellsPerBlock: 1, MeanEndurance: 1},
		{NumBlocks: 1, BlockBytes: 64, CellsPerBlock: 0, MeanEndurance: 1},
		{NumBlocks: 1, BlockBytes: 64, CellsPerBlock: 1, MeanEndurance: 0},
		{NumBlocks: 1, BlockBytes: 64, CellsPerBlock: 1, MeanEndurance: 1, LifetimeCoV: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := NewDevice(c); err == nil {
			t.Errorf("case %d: NewDevice accepted invalid config", i)
		}
	}
}

func TestWriteWears(t *testing.T) {
	d, err := NewDevice(testConfig(16, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Write(3)
	}
	if d.Wear(3) != 10 {
		t.Errorf("wear = %d, want 10", d.Wear(3))
	}
	if d.Wear(4) != 0 {
		t.Errorf("untouched block has wear %d", d.Wear(4))
	}
	if got := d.Stats().Writes; got != 10 {
		t.Errorf("stats writes = %d, want 10", got)
	}
	d.Read(3)
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("stats reads = %d, want 1", got)
	}
	if got := d.Stats().Total(); got != 11 {
		t.Errorf("stats total = %d, want 11", got)
	}
}

func TestReadDoesNotWear(t *testing.T) {
	d, _ := NewDevice(testConfig(4, 100))
	for i := 0; i < 1000; i++ {
		d.Read(0)
	}
	if d.Wear(0) != 0 {
		t.Error("reads should not wear")
	}
	if d.FailedCells(0) != 0 {
		t.Error("reads should not fail cells")
	}
}

// Writing a block well past its mean endurance must eventually fail cells,
// and cell failures must be reported exactly once each.
func TestCellFailuresAccumulate(t *testing.T) {
	d, _ := NewDevice(testConfig(4, 1000))
	total := 0
	for i := 0; i < 3000; i++ {
		total += d.Write(0)
		if total != d.FailedCells(0) {
			t.Fatalf("reported failures %d != tracked %d", total, d.FailedCells(0))
		}
	}
	if total == 0 {
		t.Fatal("no cell failed after 3x mean endurance")
	}
	// At 3x mean endurance with CoV 0.2 essentially every cell is dead.
	if total < 500 {
		t.Errorf("only %d/512 cells failed after 3x mean endurance", total)
	}
	if total > 512 {
		t.Errorf("%d failures exceed 512 cells", total)
	}
}

// The first-failure threshold should be well below the mean endurance
// (minimum of 512 normal variates) but positive.
func TestFirstFailureThreshold(t *testing.T) {
	d, _ := NewDevice(testConfig(1024, 1e4))
	var w stats.Welford
	for b := uint64(0); b < 1024; b++ {
		th := float64(d.PeekNextFailure(BlockID(b)))
		if th < 1 {
			t.Fatalf("block %d threshold %v < 1", b, th)
		}
		w.Add(th)
	}
	// E[min of 512 N(1e4, 2e3)] ~ mu - sigma*E[max of 512 std normals]
	// ~ 1e4 - 2e3*3.05 ~ 3900. Allow a generous band.
	if w.Mean() < 2500 || w.Mean() > 6000 {
		t.Errorf("mean first-failure threshold %v outside plausible band [2500, 6000]", w.Mean())
	}
}

// Failure thresholds are strictly increasing per block (order statistics).
func TestThresholdsMonotone(t *testing.T) {
	d, _ := NewDevice(testConfig(8, 1000))
	prev := uint64(0)
	for i := 0; i < 5000; i++ {
		if d.Write(1) > 0 {
			th := d.PeekNextFailure(1)
			if th <= prev && th != math.MaxUint64 {
				t.Fatalf("threshold %d not increasing past %d", th, prev)
			}
			prev = th
		}
	}
}

// After all cells fail, the next threshold is MaxUint64 and no more
// failures are reported.
func TestAllCellsExhausted(t *testing.T) {
	cfg := testConfig(2, 50)
	cfg.CellsPerBlock = 4
	d, _ := NewDevice(cfg)
	total := 0
	for i := 0; i < 500; i++ {
		total += d.Write(0)
	}
	if total != 4 {
		t.Fatalf("expected exactly 4 cell failures, got %d", total)
	}
	if d.PeekNextFailure(0) != math.MaxUint64 {
		t.Error("exhausted block should report MaxUint64 next failure")
	}
}

// The failure schedule of a block must not depend on writes to other
// blocks (deterministic per (seed, block)).
func TestScheduleIndependentOfAccessOrder(t *testing.T) {
	d1, _ := NewDevice(testConfig(8, 500))
	d2, _ := NewDevice(testConfig(8, 500))
	// d2 interleaves writes to other blocks.
	fail1, fail2 := []int{}, []int{}
	for i := 0; i < 2000; i++ {
		fail1 = append(fail1, d1.Write(3))
		d2.Write(5)
		fail2 = append(fail2, d2.Write(3))
		d2.Write(7)
	}
	for i := range fail1 {
		if fail1[i] != fail2[i] {
			t.Fatalf("failure schedule of block 3 diverged at write %d", i)
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cfgA := testConfig(8, 500)
	cfgB := testConfig(8, 500)
	cfgB.Seed = 43
	a, _ := NewDevice(cfgA)
	b, _ := NewDevice(cfgB)
	if a.PeekNextFailure(0) == b.PeekNextFailure(0) && a.PeekNextFailure(1) == b.PeekNextFailure(1) {
		t.Error("different seeds should shift failure thresholds")
	}
}

func TestMarkDeadAndSurvival(t *testing.T) {
	d, _ := NewDevice(testConfig(10, 1e6))
	if d.SurvivalRate() != 1 {
		t.Fatal("fresh device should have survival 1")
	}
	d.MarkDead(3)
	d.MarkDead(3) // idempotent
	d.MarkDead(7)
	if !d.Dead(3) || !d.Dead(7) || d.Dead(0) {
		t.Error("dead flags wrong")
	}
	if d.DeadBlocks() != 2 {
		t.Errorf("dead count = %d, want 2", d.DeadBlocks())
	}
	if got := d.SurvivalRate(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("survival = %v, want 0.8", got)
	}
}

func TestContentTracking(t *testing.T) {
	cfg := testConfig(8, 1e6)
	cfg.TrackContent = true
	d, _ := NewDevice(cfg)
	if !d.TracksContent() {
		t.Fatal("TrackContent not honoured")
	}
	d.SetContent(2, 99)
	if d.Content(2) != 99 {
		t.Error("content tag lost")
	}
	// Without tracking, content is inert.
	d2, _ := NewDevice(testConfig(8, 1e6))
	d2.SetContent(1, 5)
	if d2.Content(1) != 0 || d2.TracksContent() {
		t.Error("untracked device should ignore content")
	}
}

func TestWearCountsCopy(t *testing.T) {
	d, _ := NewDevice(testConfig(4, 1e6))
	d.Write(1)
	counts := d.WearCounts()
	counts[1] = 999
	if d.Wear(1) != 1 {
		t.Error("WearCounts must return a copy")
	}
}

// Empirical distribution of first-failure thresholds across many blocks
// should match the analytic minimum-order-statistic quantiles: compare
// medians of simulated vs. brute-force sorted samples.
func TestOrderStatisticsMatchBruteForce(t *testing.T) {
	const blocks = 512
	cfg := testConfig(blocks, 1e4)
	cfg.CellsPerBlock = 64
	d, _ := NewDevice(cfg)
	sim := make([]float64, blocks)
	for b := uint64(0); b < blocks; b++ {
		sim[b] = float64(d.PeekNextFailure(BlockID(b)))
	}
	// Brute force: sample 64 normals per block, take min.
	brute := make([]float64, blocks)
	bsrc := bruteNormals(77, blocks, 64, 1e4, 2e3)
	for i, lifes := range bsrc {
		sort.Float64s(lifes)
		brute[i] = lifes[0]
	}
	simMed := stats.Percentile(sim, 50)
	bruteMed := stats.Percentile(brute, 50)
	if math.Abs(simMed-bruteMed) > 0.12*bruteMed {
		t.Errorf("median first-failure mismatch: sim %v vs brute %v", simMed, bruteMed)
	}
}

// bruteNormals generates blocks x cells normal lifetimes with a simple
// deterministic LCG-free approach reusing the package RNG via device.
func bruteNormals(seed uint64, blocks, cells int, mu, sigma float64) [][]float64 {
	out := make([][]float64, blocks)
	// Use a separate device-independent generator: Box-Muller over cellU-like hashing.
	s := newTestNormSource(seed)
	for b := range out {
		out[b] = make([]float64, cells)
		for c := range out[b] {
			out[b][c] = mu + sigma*s.next()
		}
	}
	return out
}

type testNormSource struct{ state uint64 }

func newTestNormSource(seed uint64) *testNormSource { return &testNormSource{state: seed} }

func (s *testNormSource) next() float64 {
	// splitmix64 + inverse via erfinv for a standard normal
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	u := (float64(z>>11) + 0.5) / (1 << 53)
	return math.Sqrt2 * math.Erfinv(2*u-1)
}

// Property: Write never reports negative failures and FailedCells never
// exceeds CellsPerBlock.
func TestQuickFailureBounds(t *testing.T) {
	cfg := testConfig(16, 200)
	cfg.CellsPerBlock = 8
	d, _ := NewDevice(cfg)
	f := func(b uint8, n uint8) bool {
		blk := BlockID(b % 16)
		for i := 0; i < int(n); i++ {
			if d.Write(blk) < 0 {
				return false
			}
		}
		return d.FailedCells(blk) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteHotPath(b *testing.B) {
	d, _ := NewDevice(testConfig(1<<16, 1e9))
	mask := uint64(1<<16 - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(BlockID(uint64(i) & mask))
	}
}

// BenchmarkWriteFailurePath measures the order-statistic draw that runs
// on every cell failure — the degraded-chip write cost. Low endurance
// with high CoV makes nearly every write advance the failure schedule.
func BenchmarkWriteFailurePath(b *testing.B) {
	cfg := testConfig(1<<10, 64)
	cfg.LifetimeCoV = 0.3
	d, _ := NewDevice(cfg)
	mask := uint64(1<<10 - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := BlockID(uint64(i) & mask)
		if d.FailedCells(blk) >= cfg.CellsPerBlock-1 {
			b.StopTimer()
			d, _ = NewDevice(cfg)
			b.StartTimer()
		}
		d.Write(blk)
	}
}

// BenchmarkNewDevice measures construction, which performs one
// order-statistic draw per block.
func BenchmarkNewDevice(b *testing.B) {
	cfg := testConfig(1<<16, 1e9)
	for i := 0; i < b.N; i++ {
		if _, err := NewDevice(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeadBitsetWrite measures the fast-path write with the dead
// set populated the way a late-life chip looks: a scattering of dead
// blocks forcing every WriteNoFail through the packed-bitset membership
// test (the structure that replaced the map[BlockID]struct{} dead set).
// Dead hits return false immediately; live hits take the horizon
// decrement. Both sides of that branch are the per-write cost the
// bitset layout optimises.
func BenchmarkDeadBitsetWrite(b *testing.B) {
	const blocks = 1 << 16
	d, _ := NewDevice(testConfig(blocks, 1e9))
	for blk := uint64(0); blk < blocks; blk += 17 {
		d.MarkDead(BlockID(blk)) // ~6% dead, striped across the words
	}
	mask := uint64(blocks - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := BlockID(uint64(i) & mask)
		if !d.WriteNoFail(blk) && !d.Dead(blk) {
			d.Write(blk)
		}
	}
}
