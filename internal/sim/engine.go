// Package sim wires the full simulated system — workload, OS model,
// wear-leveling scheme, failure-protection framework, error correction
// and PCM device — and drives it write by write, mirroring the paper's
// trace-driven methodology (§IV-A). Package-level experiment presets
// (experiments.go) regenerate every table and figure of the evaluation.
package sim

import (
	"context"
	"errors"
	"fmt"

	"wlreviver/internal/cache"
	"wlreviver/internal/drm"
	"wlreviver/internal/ecc"
	"wlreviver/internal/freep"
	"wlreviver/internal/lls"
	"wlreviver/internal/mc"
	"wlreviver/internal/obs"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/reviver"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

// LevelerKind selects the wear-leveling scheme.
type LevelerKind int

// Wear-leveling schemes.
const (
	// LevelerNone disables wear leveling (Figure 6's "ECP6"/"PAYG"
	// baselines).
	LevelerNone LevelerKind = iota
	// LevelerStartGap is Start-Gap with Feistel address randomization.
	LevelerStartGap
	// LevelerSecurityRefresh is single- or two-level Security Refresh.
	LevelerSecurityRefresh
	// LevelerRegionedStartGap is the original paper's multi-region
	// Start-Gap organisation (independent start/gap per region).
	LevelerRegionedStartGap
	// LevelerWoLFRaM is WoLFRaM-style programmable-address-decoder
	// remapping (arXiv:2010.02825).
	LevelerWoLFRaM
	// LevelerSoftWear is SoftWear-style software-only page-granularity
	// leveling through the OS page table (arXiv:2004.03244).
	LevelerSoftWear
)

// String returns the scheme's display name.
func (k LevelerKind) String() string {
	switch k {
	case LevelerStartGap:
		return "SG"
	case LevelerSecurityRefresh:
		return "SR"
	case LevelerRegionedStartGap:
		return "SG-R"
	case LevelerWoLFRaM:
		return "WFR"
	case LevelerSoftWear:
		return "SW"
	default:
		return "none"
	}
}

// ProtectorKind selects the failure-protection framework.
type ProtectorKind int

// Failure-protection frameworks.
const (
	// ProtectorNone exposes the first failure to the leveler.
	ProtectorNone ProtectorKind = iota
	// ProtectorWLReviver is the paper's framework.
	ProtectorWLReviver
	// ProtectorFREEp is the adapted FREE-p baseline (§IV-C).
	ProtectorFREEp
	// ProtectorLLS is the LLS baseline (§IV-D).
	ProtectorLLS
	// ProtectorDRM is the adapted Dynamically Replicated Memory baseline
	// (page pairing; related work [11]).
	ProtectorDRM
)

// String returns the framework's display name.
func (k ProtectorKind) String() string {
	switch k {
	case ProtectorWLReviver:
		return "WLR"
	case ProtectorFREEp:
		return "FREE-p"
	case ProtectorLLS:
		return "LLS"
	case ProtectorDRM:
		return "DRM"
	default:
		return "none"
	}
}

// ECCKind selects the error-correction scheme.
type ECCKind int

// Error-correction schemes.
const (
	// ECCECP6 corrects up to 6 failed cells per 512-bit group.
	ECCECP6 ECCKind = iota
	// ECCECP1 corrects 1.
	ECCECP1
	// ECCPAYG is Pay-As-You-Go with the paper's default budget.
	ECCPAYG
)

// String returns the scheme's display name.
func (k ECCKind) String() string {
	switch k {
	case ECCECP1:
		return "ECP1"
	case ECCPAYG:
		return "PAYG"
	default:
		return "ECP6"
	}
}

// Config assembles one simulated system.
type Config struct {
	// Blocks is the software-visible capacity in blocks (the paper's
	// 1 GB chip is 2^24 blocks of 64 B; defaults here are scaled).
	Blocks uint64
	// BlocksPerPage is the OS page size in blocks (paper: 64).
	BlocksPerPage uint64
	// CellsPerBlock is the ECC-group size in cells (paper: 512).
	CellsPerBlock int
	// MeanEndurance and LifetimeCoV parameterise cell lifetimes
	// (paper: 1e8 and 0.2; scaled by default).
	MeanEndurance float64
	LifetimeCoV   float64
	// Seed drives all stochastic components.
	Seed uint64

	// Leveler selects the wear-leveling scheme; GapWritePeriod is ψ
	// (paper: 100). SRInnerRegions enables two-level Security Refresh.
	Leveler        LevelerKind
	GapWritePeriod uint64
	SRInnerRegions uint64
	// SGRegions is the region count for LevelerRegionedStartGap
	// (default 4).
	SGRegions uint64
	// WFRRegions is the decoder region count for LevelerWoLFRaM
	// (default 4); GapWritePeriod paces its remaps.
	WFRRegions uint64
	// SWEpochWrites is LevelerSoftWear's leveling epoch in writes
	// (default BlocksPerPage*GapWritePeriod); pages are BlocksPerPage
	// blocks.
	SWEpochWrites uint64
	// CustomLeveler, when non-nil, overrides Leveler with a user-supplied
	// scheme — the framework revives any wear.Leveler (see
	// examples/customleveler). Its PA space must equal Blocks.
	CustomLeveler wear.Leveler

	// Protector selects the failure-protection framework.
	Protector ProtectorKind
	// FreepReserveFraction is FREE-p's pre-reserved share (0–0.15).
	FreepReserveFraction float64
	// FreepZombiePairing selects the Zombie variant of the adapted
	// page-recovery baseline (pair coding between failed and spare
	// blocks).
	FreepZombiePairing bool
	// LLSChunkPages and LLSSalvageGroups parameterise LLS; the backup
	// region is sized at LLSBackupFraction of capacity (default 0.5).
	LLSChunkPages     uint64
	LLSSalvageGroups  uint64
	LLSBackupFraction float64

	// ECC selects the error-correction scheme.
	ECC ECCKind
	// CacheKB configures the remap cache (Table II uses 32); 0 disables.
	CacheKB int
	// TrackContent enables data-integrity tags (tests; slows the run).
	TrackContent bool
	// DisableChainReduction is the reviver chain-switching ablation knob.
	DisableChainReduction bool
	// ImmediateAcquisition is the reviver acquisition-policy ablation
	// knob (§III-A option 1 instead of the paper's option 2).
	ImmediateAcquisition bool
	// RevPointerBytes overrides the reviver's stored PA pointer size
	// (default 4), which sets the inverse-pointer section split.
	RevPointerBytes int

	// Observer, when non-nil, receives typed lifecycle events from every
	// layer plus periodic Snapshot samples. Observation is passive: the
	// simulated outcome is byte-identical with and without it, and the
	// write hot path pays nothing when it is nil.
	Observer obs.Observer
	// SnapshotEvery is the snapshot period in simulated writes — the
	// simulator's only clock, so snapshot timing is deterministic and
	// independent of wall-clock or worker count. 0 defaults to Blocks
	// (one snapshot per writes-per-block unit) when an Observer is set.
	SnapshotEvery uint64
}

// DefaultConfig returns the scaled default geometry: 2^16 blocks (4 MiB),
// 4 KB pages, endurance 10^4, ψ=100, Start-Gap + WL-Reviver + ECP6.
func DefaultConfig() Config {
	return Config{
		Blocks:           1 << 16,
		BlocksPerPage:    64,
		CellsPerBlock:    512,
		MeanEndurance:    1e4,
		LifetimeCoV:      0.2,
		Seed:             1,
		Leveler:          LevelerStartGap,
		GapWritePeriod:   100,
		Protector:        ProtectorWLReviver,
		ECC:              ECCECP6,
		LLSChunkPages:    16,
		LLSSalvageGroups: 8,
	}
}

// Engine drives one configured system.
type Engine struct {
	cfg  Config
	dev  *pcm.Device
	be   *mc.Backend
	lv   wear.Leveler
	os   *osmodel.Model
	prot mc.Protector
	gen  trace.Generator

	// Optional protector views and per-write constants, resolved once at
	// construction so the write loop carries no type assertions or
	// recomputed bounds.
	crip     mc.Crippler      // nil when prot cannot cripple
	space    mc.SpaceReporter // nil when prot reports no space metric
	llsStack bool             // crippling is terminal (Figure 8 semantics)
	maxRetry int

	// Devirtualized views of prot and lv, resolved once at construction.
	// rev is non-nil when the protector is WL-Reviver: Write and
	// ResumePending become direct calls. Every other protector's
	// ResumePending is a constant 0 (nothing to resume), so the call is
	// elided entirely. The leveler's NoteWrite dispatches through one
	// concrete field; noteSkip marks the Static leveler's no-op.
	rev      *reviver.Reviver
	sgLv     *wear.StartGap
	srLv     *wear.SecurityRefresh
	rsgLv    *wear.RegionedStartGap
	wfrLv    *wear.WoLFRaM
	swLv     *wear.SoftWear
	noteSkip bool

	// Batched address generation: when gen has a NextBatch fast path,
	// addresses are pulled through addrBuf in chunks, replacing one
	// interface call per write with one per addrBatch writes. Step and
	// Run share the buffer, so mixing them preserves the address stream.
	batchGen trace.BatchGenerator
	addrBuf  []uint64
	addrPos  int

	writes  uint64
	stopped bool

	// Crash-fault injection (checkpoint.go): crashAt is an absolute
	// write threshold (0 = disarmed); Run clamps each batch to it so the
	// hot loop carries no extra per-write check.
	crashAt uint64
	crashed bool

	// Observation state: snapEvery is 0 when no observer is attached, so
	// the hot path's snapshot check is a single always-false compare.
	observer   obs.Observer
	remapCache *cache.Cache
	snapEvery  uint64
	nextSnap   uint64
}

// addrBatch is the address-prefetch chunk size: large enough to amortize
// the generator dispatch, small enough to stay in L1.
const addrBatch = 512

// NewEngine builds the system and attaches the workload generator, whose
// block space must match cfg.Blocks. Every construction error wraps
// ErrBadConfig: nothing but the configuration can make it fail.
func NewEngine(cfg Config, gen trace.Generator) (*Engine, error) {
	e, err := newEngine(cfg, gen)
	if err != nil && !errors.Is(err, ErrBadConfig) {
		err = fmt.Errorf("%w: %w", err, ErrBadConfig)
	}
	return e, err
}

func newEngine(cfg Config, gen trace.Generator) (*Engine, error) {
	if cfg.Blocks == 0 || cfg.BlocksPerPage == 0 {
		return nil, fmt.Errorf("sim: Blocks and BlocksPerPage must be positive: %w", ErrBadConfig)
	}
	if gen.NumBlocks() != cfg.Blocks {
		return nil, fmt.Errorf("sim: workload covers %d blocks, system has %d: %w",
			gen.NumBlocks(), cfg.Blocks, ErrBadConfig)
	}

	var remapCache *cache.Cache
	if cfg.CacheKB > 0 {
		cc, err := cache.SizedConfig(cfg.CacheKB*1024, 8, 8)
		if err != nil {
			return nil, err
		}
		remapCache, err = cache.New(cc)
		if err != nil {
			return nil, err
		}
	}

	// Wear-leveling scheme (LLS substitutes its restricted randomizer).
	var lv wear.Leveler
	if cfg.CustomLeveler != nil {
		if cfg.CustomLeveler.NumPAs() != cfg.Blocks {
			return nil, fmt.Errorf("sim: custom leveler covers %d PAs, system has %d blocks: %w",
				cfg.CustomLeveler.NumPAs(), cfg.Blocks, ErrBadConfig)
		}
		lv = cfg.CustomLeveler
	}
	if lv == nil {
		switch cfg.Leveler {
		case LevelerStartGap:
			sgCfg := wear.StartGapConfig{
				NumPAs:         cfg.Blocks,
				GapWritePeriod: cfg.GapWritePeriod,
				Seed:           cfg.Seed,
			}
			if cfg.Protector == ProtectorLLS {
				rnd, err := lls.NewRestrictedRandomizer(cfg.Blocks, cfg.Seed)
				if err != nil {
					return nil, err
				}
				sgCfg.Randomizer = rnd
			}
			sg, err := wear.NewStartGap(sgCfg)
			if err != nil {
				return nil, err
			}
			lv = sg
		case LevelerSecurityRefresh:
			sr, err := wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
				NumPAs:           cfg.Blocks,
				InnerRegions:     cfg.SRInnerRegions,
				OuterWritePeriod: cfg.GapWritePeriod,
				InnerWritePeriod: cfg.GapWritePeriod,
				Seed:             cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			lv = sr
		case LevelerRegionedStartGap:
			regions := cfg.SGRegions
			if regions == 0 {
				regions = 4
			}
			rsg, err := wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
				NumPAs:         cfg.Blocks,
				Regions:        regions,
				GapWritePeriod: cfg.GapWritePeriod,
				Seed:           cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			lv = rsg
		case LevelerWoLFRaM:
			regions := cfg.WFRRegions
			if regions == 0 {
				regions = 4
			}
			wfr, err := wear.NewWoLFRaM(wear.WoLFRaMConfig{
				NumPAs:          cfg.Blocks,
				Regions:         regions,
				SwapWritePeriod: cfg.GapWritePeriod,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			lv = wfr
		case LevelerSoftWear:
			epoch := cfg.SWEpochWrites
			if epoch == 0 {
				epoch = cfg.BlocksPerPage * cfg.GapWritePeriod
			}
			sw, err := wear.NewSoftWear(wear.SoftWearConfig{
				NumPAs:      cfg.Blocks,
				PageBlocks:  cfg.BlocksPerPage,
				EpochWrites: epoch,
			})
			if err != nil {
				return nil, err
			}
			lv = sw
		case LevelerNone:
			lv = wear.Static{Size: cfg.Blocks}
		default:
			return nil, fmt.Errorf("sim: unknown leveler %d: %w", cfg.Leveler, ErrBadConfig)
		}
	}

	// Extra device blocks beyond the leveler's DA space.
	extra := uint64(0)
	switch cfg.Protector {
	case ProtectorFREEp:
		extra = freep.ReservedSlots(cfg.Blocks, cfg.FreepReserveFraction)
	case ProtectorDRM:
		extra = drm.ReservedBlocks(cfg.Blocks, cfg.FreepReserveFraction, cfg.BlocksPerPage)
	case ProtectorLLS:
		backupFrac := cfg.LLSBackupFraction
		if backupFrac == 0 {
			backupFrac = 0.5
		}
		chunkBlocks := cfg.LLSChunkPages * cfg.BlocksPerPage
		extra = uint64(float64(cfg.Blocks) * backupFrac)
		extra = (extra + chunkBlocks - 1) / chunkBlocks * chunkBlocks
	}

	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks:     lv.NumDAs() + extra,
		BlockBytes:    64,
		CellsPerBlock: cfg.CellsPerBlock,
		MeanEndurance: cfg.MeanEndurance,
		LifetimeCoV:   cfg.LifetimeCoV,
		Seed:          cfg.Seed,
		TrackContent:  cfg.TrackContent,
	})
	if err != nil {
		return nil, err
	}

	var scheme ecc.Scheme
	switch cfg.ECC {
	case ECCECP6:
		scheme, err = ecc.NewECP(6, dev.NumBlocks())
	case ECCECP1:
		scheme, err = ecc.NewECP(1, dev.NumBlocks())
	case ECCPAYG:
		scheme, err = ecc.NewPAYG(ecc.DefaultPAYGConfig(dev.NumBlocks()), dev.NumBlocks())
	default:
		err = fmt.Errorf("sim: unknown ECC %d: %w", cfg.ECC, ErrBadConfig)
	}
	if err != nil {
		return nil, err
	}
	be := &mc.Backend{Dev: dev, ECC: scheme}

	osm, err := osmodel.New(cfg.Blocks, cfg.BlocksPerPage)
	if err != nil {
		return nil, err
	}

	var prot mc.Protector
	switch cfg.Protector {
	case ProtectorNone:
		prot = mc.NewPassthrough(lv, be, osm)
	case ProtectorWLReviver:
		prot, err = reviver.New(reviver.Config{
			PointerBytes:          cfg.RevPointerBytes,
			RemapCache:            remapCache,
			DisableChainReduction: cfg.DisableChainReduction,
			ImmediateAcquisition:  cfg.ImmediateAcquisition,
			Observer:              cfg.Observer,
		}, lv, be, osm)
	case ProtectorFREEp:
		prot, err = freep.New(freep.Config{
			ReserveFraction: cfg.FreepReserveFraction,
			RemapCache:      remapCache,
			ZombiePairing:   cfg.FreepZombiePairing,
		}, lv, be, osm)
	case ProtectorLLS:
		prot, err = lls.New(lls.Config{
			ChunkPages:    cfg.LLSChunkPages,
			SalvageGroups: cfg.LLSSalvageGroups,
			RemapCache:    remapCache,
		}, lv, be, osm)
	case ProtectorDRM:
		prot, err = drm.New(drm.Config{
			ReserveFraction: cfg.FreepReserveFraction,
			RemapCache:      remapCache,
		}, lv, be, osm)
	default:
		err = fmt.Errorf("sim: unknown protector %d: %w", cfg.Protector, ErrBadConfig)
	}
	if err != nil {
		return nil, err
	}

	e := &Engine{cfg: cfg, dev: dev, be: be, lv: lv, os: osm, prot: prot, gen: gen}
	e.crip, _ = prot.(mc.Crippler)
	e.space, _ = prot.(mc.SpaceReporter)
	e.llsStack = cfg.Protector == ProtectorLLS
	e.maxRetry = int(osm.NumPages()) + 2
	e.rev, _ = prot.(*reviver.Reviver)
	switch l := lv.(type) {
	case *wear.StartGap:
		e.sgLv = l
	case *wear.SecurityRefresh:
		e.srLv = l
	case *wear.RegionedStartGap:
		e.rsgLv = l
	case *wear.WoLFRaM:
		e.wfrLv = l
	case *wear.SoftWear:
		e.swLv = l
	case wear.Static:
		e.noteSkip = true
	}
	if bg, ok := gen.(trace.BatchGenerator); ok {
		e.batchGen = bg
		e.addrBuf = make([]uint64, 0, addrBatch)
	}
	e.remapCache = remapCache
	if cfg.Observer != nil {
		e.attachObserver(cfg.Observer, cfg.SnapshotEvery)
	}
	return e, nil
}

// observable is the optional probe-attachment interface wear levelers
// (and custom levelers that want events) implement.
type observable interface {
	SetObserver(obs.Observer)
}

// attachObserver wires o into every instrumented layer and arms the
// snapshot pacing. every is the snapshot period in simulated writes
// (0: one snapshot per Blocks writes).
func (e *Engine) attachObserver(o obs.Observer, every uint64) {
	e.observer = o
	e.dev.SetObserver(o)
	e.be.Observer = o
	e.os.SetObserver(o)
	if e.remapCache != nil {
		e.remapCache.SetObserver(o)
	}
	if lo, ok := e.lv.(observable); ok {
		lo.SetObserver(o)
	}
	if every == 0 {
		every = e.cfg.Blocks
	}
	e.snapEvery = every
	e.nextSnap = every
}

// Metrics returns the attached observer as the standard *obs.Metrics
// accumulator, when the configuration used one.
func (e *Engine) Metrics() (*obs.Metrics, bool) {
	m, ok := e.observer.(*obs.Metrics)
	return m, ok
}

// emitSnapshot samples every layer into one obs.Snapshot. Runs off the
// hot path (at most once per snapEvery writes).
func (e *Engine) emitSnapshot() {
	s := obs.Snapshot{
		Writes:         e.writes,
		WritesPerBlock: e.WritesPerBlock(),
		SurvivalRate:   e.dev.SurvivalRate(),
		UsableFraction: e.UsableFraction(),
		DeadBlocks:     e.dev.DeadBlocks(),
		RetiredPages:   e.os.RetiredPages(),
		AccessRatio:    e.AccessRatio(),
		WearCoV:        e.dev.WearCoV(),
	}
	if e.rev != nil {
		s.LiveRemaps = e.rev.LinkedFailures()
		s.SparePAs = e.rev.AvailableSpares()
	}
	switch {
	case e.sgLv != nil:
		s.LevelerOps = e.sgLv.GapMoves()
	case e.srLv != nil:
		s.LevelerOps = e.srLv.OuterSwaps()
	case e.rsgLv != nil:
		s.LevelerOps = e.rsgLv.GapMoves()
	case e.wfrLv != nil:
		s.LevelerOps = e.wfrLv.Swaps()
	case e.swLv != nil:
		s.LevelerOps = e.swLv.Relocations()
	}
	if e.remapCache != nil {
		s.CacheHits = e.remapCache.Hits()
		s.CacheMisses = e.remapCache.Misses()
	}
	e.observer.Snapshot(s)
}

// nextAddr returns the next workload address, refilling the prefetch
// buffer from the generator's batch fast path when one exists.
func (e *Engine) nextAddr() uint64 {
	if e.batchGen == nil {
		return e.gen.Next()
	}
	if e.addrPos == len(e.addrBuf) {
		e.addrBuf = e.addrBuf[:addrBatch]
		e.batchGen.NextBatch(e.addrBuf)
		e.addrPos = 0
	}
	a := e.addrBuf[e.addrPos]
	e.addrPos++
	return a
}

// Step services one software write from the workload. It returns false
// when the memory can no longer accept writes (no usable pages, or the
// protector is terminally out of capacity).
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	if e.crashAt != 0 && e.writes >= e.crashAt {
		e.crashed = true
		return false
	}
	return e.writeTagged(e.nextAddr(), e.writes)
}

// runCtxBatch is RunContext's cancellation-check granularity in writes:
// large enough that the per-batch ctx.Err() call vanishes against the
// work, small enough that cancellation lands promptly at serving scale.
const runCtxBatch = 1 << 15

// RunContext services up to n writes, invoking onWrite (if non-nil)
// after each with the cumulative count serviced by this call. It is the
// canonical run entry point — Run and RunN are thin wrappers over it.
//
// Cancellation is observed at batch boundaries only (every runCtxBatch
// writes), never mid-batch, so the simulated outcome stays a pure
// function of the configuration and the write count actually serviced:
// a cancelled run is byte-identical to an uninterrupted run truncated
// at the same count. The hot loop itself carries no clock and no
// per-write context check. On cancellation the count serviced so far is
// returned alongside ctx.Err(); the engine remains valid and can
// continue with a later call.
func (e *Engine) RunContext(ctx context.Context, n uint64, onWrite func(done uint64)) (uint64, error) {
	crashing := false
	if e.crashAt != 0 {
		if e.crashed {
			return 0, nil
		}
		if e.writes >= e.crashAt {
			e.crashed = true
			return 0, nil
		}
		if left := e.crashAt - e.writes; n >= left {
			n = left
			crashing = true
		}
	}
	var done uint64
	for done < n {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		batch := n - done
		if batch > runCtxBatch {
			batch = runCtxBatch
		}
		got := e.runBatch(batch, done, onWrite)
		done += got
		if got < batch {
			break // end of life (or terminal crippling) inside the batch
		}
	}
	if crashing && done == n {
		e.crashed = true
	}
	return done, nil
}

// runBatch is the single tight write loop — every run entry point
// funnels here — so the stopped-recheck semantics live in exactly one
// place: stopped is rechecked every iteration, not just at entry,
// because writeTagged can set it while still reporting the write as
// serviced (the LLS crippling write is terminal), and the batch must
// halt there exactly as a Step-driven loop would. base offsets the
// cumulative count reported to onWrite across RunContext's batches.
func (e *Engine) runBatch(n, base uint64, onWrite func(done uint64)) uint64 {
	var done uint64
	for done < n && !e.stopped && e.writeTagged(e.nextAddr(), e.writes) {
		done++
		if onWrite != nil {
			onWrite(base + done)
		}
	}
	return done
}

// Run services up to n writes, invoking onWrite (if non-nil) after
// each. It returns the number of writes actually serviced. Run is
// RunContext without cancellation.
func (e *Engine) Run(n uint64, onWrite func(done uint64)) uint64 {
	done, _ := e.RunContext(context.Background(), n, onWrite)
	return done
}

// RunN services up to n writes with no per-write callback — the tight
// loop experiment runners sit in. It returns the writes serviced.
func (e *Engine) RunN(n uint64) uint64 { return e.Run(n, nil) }

// Writes returns the number of software writes serviced.
func (e *Engine) Writes() uint64 { return e.writes }

// WritesPerBlock returns writes normalised by capacity — the scale-free
// x-axis used in EXPERIMENTS.md.
func (e *Engine) WritesPerBlock() float64 {
	return float64(e.writes) / float64(e.cfg.Blocks)
}

// SurvivalRate returns the fraction of device blocks not declared dead
// (Figure 6's y-axis).
func (e *Engine) SurvivalRate() float64 { return e.dev.SurvivalRate() }

// UsableFraction returns the protector's software-usable capacity
// fraction (Figures 7–8, Table II).
func (e *Engine) UsableFraction() float64 {
	if e.space != nil {
		return e.space.SoftwareUsableFraction()
	}
	return e.os.UsableFraction()
}

// DeadFraction returns the fraction of device blocks declared dead
// (Table II's failure-ratio ladder).
func (e *Engine) DeadFraction() float64 {
	return float64(e.dev.DeadBlocks()) / float64(e.dev.NumBlocks())
}

// RequestCounts returns cumulative (software requests, raw PCM accesses)
// where the protector tracks them, else zeros.
func (e *Engine) RequestCounts() (requests, accesses uint64) {
	return requestCounts(e.prot)
}

// Crippled reports whether wear leveling has ceased to function.
func (e *Engine) Crippled() bool {
	return e.crip != nil && e.crip.Crippled()
}

// Stopped reports whether the memory reached end of life.
func (e *Engine) Stopped() bool { return e.stopped }

// Device exposes the device for metric collection.
func (e *Engine) Device() *pcm.Device { return e.dev }

// OS exposes the OS model.
func (e *Engine) OS() *osmodel.Model { return e.os }

// Protector exposes the protection framework.
func (e *Engine) Protector() mc.Protector { return e.prot }

// Leveler exposes the wear-leveling scheme.
func (e *Engine) Leveler() wear.Leveler { return e.lv }

// Reviver returns the WL-Reviver instance, if configured.
func (e *Engine) Reviver() (*reviver.Reviver, bool) {
	r, ok := e.prot.(*reviver.Reviver)
	return r, ok
}

// AccessRatio returns raw PCM accesses per software request where the
// protector tracks it (Table II's access-time metric), else 0.
func (e *Engine) AccessRatio() float64 {
	switch p := e.prot.(type) {
	case *reviver.Reviver:
		st := p.Stats()
		if n := st.SoftwareWrites + st.SoftwareReads; n > 0 {
			return float64(st.RequestAccesses) / float64(n)
		}
	case *lls.LLS:
		st := p.Stats()
		if n := st.SoftwareWrites + st.SoftwareReads; n > 0 {
			return float64(st.RequestAccesses) / float64(n)
		}
	case *freep.FREEp:
		st := p.Stats()
		if n := st.SoftwareWrites + st.SoftwareReads; n > 0 {
			return float64(st.RequestAccesses) / float64(n)
		}
	case *drm.DRM:
		st := p.Stats()
		if n := st.SoftwareWrites + st.SoftwareReads; n > 0 {
			return float64(st.RequestAccesses) / float64(n)
		}
	case *mc.Passthrough:
		return p.RequestAccessRatio()
	}
	return 0
}

// Read services one software read of a virtual block, returning the
// logical content tag (meaningful when TrackContent is on) and whether
// the address was readable. Reads do not pace wear leveling (the
// schemes schedule on writes) but do traverse the same failure
// redirection, so they contribute to the access-ratio metrics.
func (e *Engine) Read(vblock uint64) (uint64, bool) {
	pa, ok := e.os.Translate(vblock)
	if !ok {
		return 0, false
	}
	tag, _ := e.prot.Read(pa)
	return tag, true
}

// WriteTagged services one software write of an explicit content tag to
// a virtual block: translate, write through the protector, retry at the
// fresh translation after a reported failure, resume suspended
// wear-leveling work, then pace the leveler (unless crippled — for LLS,
// running out of reservable capacity is terminal, ending the Figure 8
// comparison). It returns false when the memory can no longer accept
// writes.
func (e *Engine) WriteTagged(vblock, tag uint64) bool {
	if e.stopped {
		return false
	}
	return e.writeTagged(vblock, tag)
}

// writeTagged is the write path with the stopped check hoisted into the
// callers' loops. Protector and leveler calls go through the concrete
// views resolved at construction, so the steady state carries no dynamic
// dispatch.
func (e *Engine) writeTagged(vblock, tag uint64) bool {
	var pa uint64
	for attempt := 0; ; attempt++ {
		if attempt > e.maxRetry {
			e.stopped = true
			return false
		}
		var ok bool
		pa, ok = e.os.Translate(vblock)
		if !ok {
			e.stopped = true
			return false
		}
		var retry bool
		if e.rev != nil {
			retry = e.rev.Write(pa, tag).Retry
		} else {
			retry = e.prot.Write(pa, tag).Retry
		}
		if !retry {
			break
		}
	}
	e.writes++
	if e.rev != nil {
		// Only WL-Reviver can suspend work; the other protectors'
		// ResumePending is a constant 0 and is skipped entirely.
		e.rev.ResumePending()
	}
	if e.crip == nil || !e.crip.Crippled() {
		switch {
		case e.sgLv != nil:
			e.sgLv.NoteWrite(pa, e.prot)
		case e.srLv != nil:
			e.srLv.NoteWrite(pa, e.prot)
		case e.rsgLv != nil:
			e.rsgLv.NoteWrite(pa, e.prot)
		case e.wfrLv != nil:
			e.wfrLv.NoteWrite(pa, e.prot)
		case e.swLv != nil:
			e.swLv.NoteWrite(pa, e.prot)
		case e.noteSkip:
			// Static leveler: NoteWrite is a no-op.
		default:
			e.lv.NoteWrite(pa, e.prot)
		}
	} else if e.llsStack {
		e.stopped = true
	}
	if e.snapEvery != 0 && e.writes >= e.nextSnap {
		// Snapshots fire at exact simulated-write thresholds, so an
		// observed run across any batching or worker count sees the same
		// series.
		e.emitSnapshot()
		e.nextSnap += e.snapEvery
	}
	return true
}
