package analysis

import "go/ast"

// The only non-test files allowed to start goroutines: the worker pool
// that fans experiments out across engines, and the shard scheduler that
// fans one engine's address-space shards out within a batch. Both merge
// their results in a deterministic order after a barrier, which is what
// keeps parallel output byte-identical to the serial run.
const (
	runnerFile    = "internal/sim/runner.go"
	shardPoolFile = "internal/sim/shardpool.go"
)

// ConfinedGoroutines bans `go` statements outside the two scheduler
// files and _test.go files. All concurrency flows through those pools,
// whose ordered merge steps are what make parallel output byte-identical
// to the serial run; an ad-hoc goroutine anywhere else can reorder
// writes into shared results and break that equivalence in ways the race
// detector only catches probabilistically.
type ConfinedGoroutines struct{}

// Name implements Rule.
func (*ConfinedGoroutines) Name() string { return "confined-goroutines" }

// Doc implements Rule.
func (*ConfinedGoroutines) Doc() string {
	return "go statements are confined to internal/sim/runner.go, internal/sim/shardpool.go and _test.go files"
}

// Check implements Rule.
func (*ConfinedGoroutines) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.Path == runnerFile || f.Path == shardPoolFile || f.IsTest() {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			report(g, "go statement outside %s or %s: route concurrency through the sim worker or shard pools", runnerFile, shardPoolFile)
		}
		return true
	})
}
