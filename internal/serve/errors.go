// Package serve hosts a fleet of simulated PCM devices behind a
// crash-safe HTTP/JSON daemon. Each device is one sim.Engine owned by a
// dedicated actor goroutine; engines are paged between memory and a
// spill directory under an LRU budget, and every acknowledged write is
// durable: it is either covered by the device's checkpoint image or
// replayable from a synced journal, so a kill -9 and restart converge
// to the byte-identical simulated state.
//
// The package deliberately contains no wall-clock calls: eviction
// recency is a logical counter bumped per request, and durability
// checkpoints fire on acknowledged-write counts, so every fleet
// decision is a pure function of the request sequence.
package serve

import "errors"

// The fleet's error taxonomy. Fleet methods return errors wrapping
// exactly one of these sentinels (or one of the sim/trace/ckpt
// sentinels for spec and checkpoint problems); the HTTP layer maps each
// to a status code in one table, and the client maps status bodies back
// to the same sentinels, so errors.Is works identically in-process and
// over the wire.
var (
	// ErrUnknownDevice reports an operation on a device ID that was
	// never created or has been deleted.
	ErrUnknownDevice = errors.New("unknown device")
	// ErrDeviceExists reports a create for an ID already in the fleet.
	ErrDeviceExists = errors.New("device already exists")
	// ErrDeviceStopped reports a write request against a device whose
	// memory reached end of life: zero writes were serviced.
	ErrDeviceStopped = errors.New("device stopped: memory reached end of life")
	// ErrDeviceCrippled reports a write request against a device whose
	// wear-leveling has terminally ceased to function.
	ErrDeviceCrippled = errors.New("device crippled: wear leveling ceased")
	// ErrBusy reports that the device's request mailbox is full — the
	// fleet's admission control. The request was not enqueued; back off
	// and retry.
	ErrBusy = errors.New("device busy: mailbox full")
	// ErrFleetFull reports that creating the device would exceed the
	// fleet's configured device capacity.
	ErrFleetFull = errors.New("fleet full")
	// ErrClosed reports an operation against a fleet that is shutting
	// down or has shut down.
	ErrClosed = errors.New("fleet closed")
)
