package reviver

import (
	"testing"

	"wlreviver/internal/rng"
	"wlreviver/internal/trace"
)

// BenchmarkChainArenaWalk measures a software read whose translation
// lands on a revived block, so every iteration walks the failure chain
// through the index-linked arena (shadow nodes in one slice, u32 next
// pointers) that replaced the per-node heap allocations. The harness is
// driven with scripted kills until chains form, then the deepest chain's
// entry PA is read repeatedly.
func BenchmarkChainArenaWalk(b *testing.B) {
	const blocks = 64
	// noReduce lets chains keep their full length (reduction would
	// collapse every walk to one hop), so the benchmark exercises a
	// genuine multi-node arena traversal.
	h := newHarness(b, harnessOpts{
		blocks: blocks, blocksPerPage: 8, endurance: 1e12, seed: 3, gapPeriod: 3,
		noReduce: true,
	})
	src := rng.New(9)
	killAt := make(map[uint64]uint64)
	for da := uint64(0); da < blocks+1; da++ {
		if src.Uint64n(64) < 20 {
			killAt[da] = 1 + src.Uint64n(40)
		}
	}
	h.be.FailureHook = func(da, wear uint64) bool {
		at, ok := killAt[da]
		return ok && wear >= at
	}
	g, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: blocks, PageBlocks: 8, TargetCoV: 2, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if !h.write(g.Next()) {
			break
		}
	}
	// Read through the deepest chain the run produced.
	bestPA, bestSteps := uint64(0), -1
	for pa := uint64(0); pa < blocks; pa++ {
		if steps, ok := h.rv.ChainSteps(h.lv.Map(pa)); ok && steps > bestSteps {
			bestPA, bestSteps = pa, steps
		}
	}
	if bestSteps < 1 {
		b.Fatalf("workload produced no chain to walk (best steps %d)", bestSteps)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.rv.Read(bestPA)
	}
	b.ReportMetric(float64(bestSteps), "chain-steps")
}
