package wlreviver_test

import (
	"fmt"

	"wlreviver"
)

// The smallest end-to-end use: build a system, wear it out a little, read
// the health metrics.
func Example() {
	cfg := wlreviver.DefaultConfig()
	cfg.Blocks = 1 << 10
	cfg.BlocksPerPage = 16
	cfg.MeanEndurance = 1e9 // effectively indestructible for this demo
	cfg.Seed = 1

	workload, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadUniform, Blocks: cfg.Blocks, Seed: 1})
	if err != nil {
		panic(err)
	}
	sys, err := wlreviver.New(cfg, workload)
	if err != nil {
		panic(err)
	}
	sys.Run(100_000, nil)
	fmt.Printf("writes=%d survival=%.2f usable=%.2f\n",
		sys.Writes(), sys.SurvivalRate(), sys.UsableFraction())
	// Output: writes=100000 survival=1.00 usable=1.00
}

// Workloads calibrated to the paper's Table I benchmarks: any Table I
// name is a valid WorkloadSpec.Kind.
func ExampleNewWorkload() {
	for _, name := range wlreviver.BenchmarkNames()[:3] {
		w, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: name, Blocks: 1 << 12, PageBlocks: 64, Seed: 1})
		if err != nil {
			panic(err)
		}
		fmt.Println(w.Name())
	}
	// Output:
	// blackscholes
	// streamcluster
	// swaptions
}

// Comparing protection frameworks on the same workload: WL-Reviver keeps
// the chip usable long after the unprotected stack has collapsed.
func ExampleConfig() {
	lifetime := func(p wlreviver.ProtectorKind) float64 {
		cfg := wlreviver.DefaultConfig()
		cfg.Blocks = 1 << 10
		cfg.BlocksPerPage = 16
		cfg.MeanEndurance = 600
		cfg.GapWritePeriod = 20
		cfg.Protector = p
		w, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: 42})
		if err != nil {
			panic(err)
		}
		sys, err := wlreviver.New(cfg, w)
		if err != nil {
			panic(err)
		}
		for sys.UsableFraction() > 0.7 {
			if sys.Run(1<<12, nil) == 0 {
				break
			}
		}
		return sys.WritesPerBlock()
	}
	bare := lifetime(wlreviver.ProtectorNone)
	revived := lifetime(wlreviver.ProtectorWLReviver)
	fmt.Printf("WL-Reviver extends lifetime: %v\n", revived > 2*bare)
	// Output: WL-Reviver extends lifetime: true
}
