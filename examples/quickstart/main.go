// Quickstart: build a small PCM system with Start-Gap wear leveling and
// the WL-Reviver framework, wear it out under a skewed workload, and
// watch the framework keep the memory alive past its first failures.
package main

import (
	"fmt"
	"log"

	"wlreviver"
)

func main() {
	cfg := wlreviver.DefaultConfig()
	cfg.Blocks = 1 << 14      // 1 MiB chip (16k blocks of 64 B)
	cfg.MeanEndurance = 5_000 // scaled endurance so wear-out is quick
	cfg.GapWritePeriod = 100  // Start-Gap's psi
	cfg.CacheKB = 32          // remap cache as in the paper's Table II

	// The "mg" workload is the paper's most skewed benchmark (write CoV
	// 40.87): exactly the traffic that kills unprotected PCM early.
	workload, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{
		Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the standard metrics observer: it counts every lifecycle
	// event (block failures, revivals, leveler moves, ...) and samples a
	// cross-layer Snapshot every SnapshotEvery simulated writes.
	// Observation is passive — the run is byte-identical without it.
	metrics := wlreviver.NewMetrics()
	cfg.Observer = metrics
	cfg.SnapshotEvery = 4 << 20 // one sample per 4M writes

	sys, err := wlreviver.New(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("writes/block  survival  usable  dead-blocks  retired-pages")
	for i := 0; i < 40; i++ {
		sys.Run(1<<20, nil)
		fmt.Printf("%12.1f  %8.4f  %6.4f  %11d  %13d\n",
			sys.WritesPerBlock(), sys.SurvivalRate(), sys.UsableFraction(),
			sys.Device().DeadBlocks(), sys.OS().RetiredPages())
		if sys.UsableFraction() < 0.7 || sys.Stopped() {
			break
		}
	}

	if rv, ok := sys.Reviver(); ok {
		st := rv.Stats()
		fmt.Printf("\nWL-Reviver activity: %d pages acquired, %d failures hidden, "+
			"%d chain switches, %d sacrificed writes\n",
			st.PagesAcquired, st.LinksCreated, st.ChainSwitches, st.SacrificedWrites)
		fmt.Printf("average PCM accesses per request: %.4f (1.0 = no overhead)\n", sys.AccessRatio())
	}

	// The same accumulator is reachable from the system itself.
	if m, ok := sys.Metrics(); ok {
		fmt.Printf("\nobserved events: %v\n", m.Counters())
		if last, ok := m.LastSnapshot(); ok {
			fmt.Printf("last snapshot: %.0f writes/block, survival %.4f, wear CoV %.3f\n",
				last.WritesPerBlock, last.SurvivalRate, last.WearCoV)
		}
	}
}
