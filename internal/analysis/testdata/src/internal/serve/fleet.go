// Fixture: the actor allowance is per-file — a go statement in any
// other internal/serve file is still a finding.
package serve

// BadSpawn is an ad-hoc goroutine outside the actor file.
func BadSpawn(run func()) {
	go run() // want confined-goroutines "go statement outside internal/sim/runner.go"
}
