package sim

import "sync"

// This file is the intra-engine shard scheduler — with runner.go, one of
// the only two non-test files in the repository allowed to start
// goroutines (enforced by wlvet's confined-goroutines rule). runner.go
// fans independent engines out across an experiment; runShards fans the
// independent address-space shards of ONE engine out within a batch.
// The same argument keeps both deterministic: the units share no mutable
// state, and the caller merges their results in a fixed order after the
// barrier, so scheduling can only change timing, never output.

// runShards executes fn(0) … fn(n-1) on up to pool concurrent
// goroutines and returns once all calls finished — the merge barrier of
// the sharded batch loop. pool <= 1 (or n <= 1) runs the calls serially
// on the calling goroutine, in index order; the sharded differential
// tests pin that every pool width produces byte-identical simulations.
//
// Workers are spawned per call rather than kept in a persistent pool:
// one batch is millions of writes at paper scale, so the spawn cost is
// noise (see BenchmarkShardMergeBarrier), and there is no pool lifecycle
// to leak or to tear down on every early return.
func runShards(pool, n int, fn func(i int)) {
	if pool <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if pool > n {
		pool = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
