package sim

import (
	"testing"

	"wlreviver/internal/trace"
)

// fuzzEngine builds the small reference engine the restore fuzzer
// targets: WL-Reviver over Start-Gap with a remap cache, every layer of
// the restore path live.
func fuzzEngine(tb testing.TB) *Engine {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 8
	cfg.BlocksPerPage = 8
	cfg.MeanEndurance = 120
	cfg.GapWritePeriod = 10
	cfg.Seed = 7
	cfg.CacheKB = 1
	gen, err := trace.NewBenchmark("ocean", cfg.Blocks, cfg.BlocksPerPage, cfg.Seed)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// FuzzRestoreRejectsCorrupt drives attacker-controlled bytes through
// the full engine restore path. Corrupt or truncated checkpoints must
// come back as errors — never a panic, never a silently inconsistent
// engine: when a restore is accepted, the engine must still run and
// re-checkpoint cleanly.
func FuzzRestoreRejectsCorrupt(f *testing.F) {
	seed := fuzzEngine(f)
	seed.RunN(2_000)
	valid, err := seed.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0x20
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzEngine(t)
		if err := e.RestoreCheckpoint(data); err != nil {
			return // rejected loudly — the required outcome for corruption
		}
		// Accepted: the image passed framing, CRC and every layer's
		// validation. The engine must behave like a live one.
		e.RunN(500)
		if _, err := e.Checkpoint(); err != nil {
			t.Fatalf("accepted restore left engine un-checkpointable: %v", err)
		}
	})
}
