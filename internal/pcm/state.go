package pcm

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the device's mutable state (wear counters, failure
// schedule position, dead marks, access stats, and the failure-horizon
// countdown) into the open checkpoint section. Configuration and the
// derived sigma are not written; Restore rebuilds the device from the
// same Config and overlays this state.
func (d *Device) SaveState(e *ckpt.Encoder) {
	e.U64s(d.wear)
	e.U64s(d.nextFail)
	e.U16s(d.failedCells)
	e.F64s(d.orderU)
	e.Bools(d.dead)
	e.Bool(d.content != nil)
	if d.content != nil {
		e.U64s(d.content)
	}
	e.U64(d.stats.Reads)
	e.U64(d.stats.Writes)
	e.U64(d.deadCount)
	e.U64(d.horizon)
	e.U64(d.rescanIn)
}

// LoadState restores state written by SaveState into a device freshly
// built from the identical Config. Slice lengths and the content-tracking
// flag must match the construction geometry.
func (d *Device) LoadState(dec *ckpt.Decoder) error {
	wear := dec.U64s()
	nextFail := dec.U64s()
	failedCells := dec.U16s()
	orderU := dec.F64s()
	dead := dec.Bools()
	hasContent := dec.Bool()
	var content []uint64
	if hasContent {
		content = dec.U64s()
	}
	reads := dec.U64()
	writes := dec.U64()
	deadCount := dec.U64()
	horizon := dec.U64()
	rescanIn := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	n := int(d.cfg.NumBlocks)
	if len(wear) != n || len(nextFail) != n || len(failedCells) != n ||
		len(orderU) != n || len(dead) != n {
		return fmt.Errorf("pcm: checkpoint block count mismatch (device has %d blocks)", n)
	}
	if hasContent != (d.content != nil) {
		return fmt.Errorf("pcm: checkpoint TrackContent=%v, device has %v", hasContent, d.content != nil)
	}
	if hasContent && len(content) != n {
		return fmt.Errorf("pcm: checkpoint content tag count mismatch")
	}
	var recount uint64
	for _, dd := range dead {
		if dd {
			recount++
		}
	}
	if recount != deadCount {
		return fmt.Errorf("pcm: checkpoint dead count %d disagrees with bitmap (%d)", deadCount, recount)
	}
	copy(d.wear, wear)
	copy(d.nextFail, nextFail)
	copy(d.failedCells, failedCells)
	copy(d.orderU, orderU)
	copy(d.dead, dead)
	if hasContent {
		copy(d.content, content)
	}
	d.stats = AccessStats{Reads: reads, Writes: writes}
	d.deadCount = deadCount
	d.horizon = horizon
	d.rescanIn = rescanIn
	return nil
}
