package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
)

// ckptRole is one engine configuration exercised by the checkpoint
// differential harness. Together the roles cover every stateful layer:
// each protector, each leveler, both ECC families, the remap cache,
// content tracking and the attack workloads.
type ckptRole struct {
	name   string
	mutate func(*Config)
	gen    func(cfg Config) (trace.Generator, error)
}

// benchGen returns a Weighted-benchmark generator factory.
func benchGen(name string) func(cfg Config) (trace.Generator, error) {
	return func(cfg Config) (trace.Generator, error) {
		return trace.NewBenchmark(name, cfg.Blocks, cfg.BlocksPerPage, cfg.Seed)
	}
}

func ckptRoles() []ckptRole {
	ocean := benchGen("ocean")
	return []ckptRole{
		{"static-none", func(c *Config) { c.Leveler = LevelerNone; c.Protector = ProtectorNone }, ocean},
		{"sg-none", func(c *Config) { c.Protector = ProtectorNone }, ocean},
		{"sg-wlr", func(c *Config) {}, ocean},
		{"sg-wlr-cache", func(c *Config) { c.CacheKB = 4 }, ocean},
		{"sg-wlr-content", func(c *Config) { c.TrackContent = true }, ocean},
		{"sr2l-wlr", func(c *Config) {
			c.Leveler = LevelerSecurityRefresh
			c.SRInnerRegions = 4
			c.ECC = ECCPAYG
		}, ocean},
		{"rsg-wlr", func(c *Config) {
			c.Leveler = LevelerRegionedStartGap
			c.SGRegions = 4
		}, ocean},
		{"sg-freep", func(c *Config) {
			c.Protector = ProtectorFREEp
			c.FreepReserveFraction = 0.10
			c.ECC = ECCECP1
		}, ocean},
		{"sg-freep-zombie", func(c *Config) {
			c.Protector = ProtectorFREEp
			c.FreepZombiePairing = true
		}, ocean},
		{"sg-lls", func(c *Config) { c.Protector = ProtectorLLS }, benchGen("mg")},
		{"wfr-wlr", func(c *Config) {
			c.Leveler = LevelerWoLFRaM
			c.WFRRegions = 8
		}, ocean},
		{"wfr-freep", func(c *Config) {
			c.Leveler = LevelerWoLFRaM
			c.Protector = ProtectorFREEp
			c.FreepReserveFraction = 0.10
		}, benchGen("mg")},
		{"sw-wlr", func(c *Config) { c.Leveler = LevelerSoftWear }, ocean},
		{"sw-lls", func(c *Config) {
			c.Leveler = LevelerSoftWear
			c.SWEpochWrites = 64
			c.Protector = ProtectorLLS
		}, benchGen("mg")},
		{"sg-drm", func(c *Config) { c.Protector = ProtectorDRM }, ocean},
		{"sg-wlr-hammer", func(c *Config) {}, func(cfg Config) (trace.Generator, error) {
			return trace.NewHammer(cfg.Blocks, []uint64{3, 41, 97})
		}},
		{"sg-wlr-birthday", func(c *Config) {}, func(cfg Config) (trace.Generator, error) {
			return trace.NewBirthdayParadox(cfg.Blocks, 8, 512, cfg.Seed)
		}},
	}
}

// ckptTestConfig is a small, failure-dense system: low endurance brings
// revives, gap moves, region swaps and page retirements within a few
// tens of thousands of writes.
func ckptTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 9
	cfg.BlocksPerPage = 8
	cfg.MeanEndurance = 120
	cfg.GapWritePeriod = 10
	cfg.Seed = 7
	return cfg
}

// buildRole constructs a fresh engine for the role, attaching a metrics
// observer so observer state rides through every checkpoint.
func buildRole(t *testing.T, r ckptRole) *Engine {
	t.Helper()
	cfg := ckptTestConfig()
	r.mutate(&cfg)
	gen, err := r.gen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = obs.NewMetrics()
	cfg.SnapshotEvery = 1000
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// finalImage drives the engine to the budget and returns its complete
// final state as checkpoint bytes — the strongest equality oracle the
// system has: every layer, the write cursor, the workload position and
// the accumulated metrics, byte for byte.
func finalImage(t *testing.T, e *Engine, budget uint64) []byte {
	t.Helper()
	for e.Writes() < budget && e.RunN(budget-e.Writes()) > 0 {
	}
	img, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestCheckpointRoundTrip checkpoints every role mid-run at swept
// points — including just after a gap move / region swap (ψ grid) and
// around the first block failure, when revives and remap chains are in
// flight — restores into a fresh engine, and requires the resumed run's
// complete final state to be byte-identical to the uninterrupted run's.
func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint differential sweep is slow; run without -short")
	}
	const budget = 40_000
	for _, r := range ckptRoles() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			// Uninterrupted reference run, plus the write count of the
			// first block failure so the sweep brackets it.
			ref := buildRole(t, r)
			firstFail := uint64(0)
			for ref.Writes() < budget {
				if ref.RunN(1) == 0 {
					break
				}
				if firstFail == 0 && ref.Device().DeadBlocks() > 0 {
					firstFail = ref.Writes()
				}
			}
			want, err := ref.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			psi := ref.cfg.GapWritePeriod
			points := []uint64{1, 137, psi * 3, psi*5 + 1, budget / 2, budget - 1}
			if firstFail > 1 {
				points = append(points, firstFail-1, firstFail, firstFail+1)
			}
			for _, p := range points {
				if p == 0 || p >= budget {
					continue
				}
				// Run a fresh engine to the checkpoint point...
				a := buildRole(t, r)
				for a.Writes() < p && a.RunN(p-a.Writes()) > 0 {
				}
				img, err := a.Checkpoint()
				if err != nil {
					t.Fatalf("checkpoint at %d: %v", p, err)
				}
				// ...restore into another fresh engine and finish there.
				b := buildRole(t, r)
				if err := b.RestoreCheckpoint(img); err != nil {
					t.Fatalf("restore at %d: %v", p, err)
				}
				got := finalImage(t, b, budget)
				if string(got) != string(want) {
					t.Fatalf("resume from write %d diverged from uninterrupted run", p)
				}
			}
		})
	}
}

// TestRestoreRejectsMismatchedConfig ensures a checkpoint cannot be
// restored into a differently configured system.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	r := ckptRoles()[2] // sg-wlr
	e := buildRole(t, r)
	if e.RunN(500) == 0 {
		t.Fatal("engine stopped immediately")
	}
	img, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.GapWritePeriod++ },
		func(c *Config) { c.Protector = ProtectorFREEp },
		func(c *Config) { c.ECC = ECCPAYG },
		func(c *Config) { c.MeanEndurance *= 2 },
	} {
		cfg := ckptTestConfig()
		mutate(&cfg)
		gen, err := benchGen("ocean")(cfg)
		if err != nil {
			t.Fatal(err)
		}
		other, err := NewEngine(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.RestoreCheckpoint(img); err == nil {
			t.Fatal("restore into mismatched config succeeded")
		}
	}
}

// TestCrashAfterHalts checks the injector's exact semantics: the engine
// services precisely n writes, reports Crashed, and refuses more work.
func TestCrashAfterHalts(t *testing.T) {
	e := buildRole(t, ckptRoles()[2])
	e.CrashAfter(777)
	if got := e.RunN(10_000); got != 777 {
		t.Fatalf("serviced %d writes, want 777", got)
	}
	if !e.Crashed() {
		t.Fatal("engine not marked crashed")
	}
	if e.RunN(10) != 0 || e.Step() {
		t.Fatal("crashed engine serviced more writes")
	}
}

// testCollector mirrors cmd/paper's -metrics collection: one Metrics
// accumulator per engine key, marshalled deterministically.
type testCollector struct {
	mu    sync.Mutex
	byKey map[string]*obs.Metrics
}

func newTestCollector() *testCollector {
	return &testCollector{byKey: make(map[string]*obs.Metrics)}
}

func (c *testCollector) observe(key string) obs.Observer {
	m := obs.NewMetrics()
	c.mu.Lock()
	c.byKey[key] = m
	c.mu.Unlock()
	return m
}

func (c *testCollector) json(t *testing.T) string {
	t.Helper()
	c.mu.Lock()
	reports := make(map[string]obs.Report, len(c.byKey))
	for key, m := range c.byKey {
		reports[key] = m.Report()
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// fig8Signature captures everything the experiment reports: the
// formatted stdout block plus the collected metrics JSON.
func fig8Signature(t *testing.T, s Scale, col *testCollector) string {
	t.Helper()
	res, err := Fig8(s, "ocean")
	if err != nil {
		t.Fatal(err)
	}
	return res.String() + "\n" + col.json(t)
}

// TestCrashResumeEquivalence is the sweep-level differential harness:
// Fig8 (curve runner) and Table2 (ladder runner, remap cache) at a
// failure-dense scale, crashed at ≥8 swept points via the sweep-wide
// budget, resumed, and required to match the uninterrupted run's
// formatted output and metrics JSON byte for byte — at workers 1 and 4.
func TestCrashResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/resume differential sweep is slow; run without -short")
	}
	scale := Scale{
		Blocks: 1 << 9, BlocksPerPage: 8, MeanEndurance: 120,
		GapWritePeriod: 10, Seed: 7, MaxWritesPerBlock: 100,
	}

	baseline := func(workers int) (string, string) {
		s := scale
		s.Workers = workers
		col := newTestCollector()
		s.Observe = col.observe
		fig8 := fig8Signature(t, s, col)

		s = scale
		s.Workers = workers
		t2, err := Table2(s, []string{"ocean"})
		if err != nil {
			t.Fatal(err)
		}
		return fig8, t2.String()
	}
	wantFig8, wantT2 := baseline(1)

	// The sweep totals ~28.7k writes (WLR stops near 20.5k, LLS near
	// 8.2k), so these points land before, around and after every batch
	// boundary, mid-failure-burst and on both arms' endgames.
	crashPoints := []uint64{1, 500, 2_000, 5_000, 7_777, 11_111, 15_000, 20_000, 25_000, 28_000}
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			if f8, t2 := baseline(workers); f8 != wantFig8 || t2 != wantT2 {
				t.Fatal("uninterrupted runs differ across workers")
			}
			for _, crash := range crashPoints {
				dir := t.TempDir()

				// Crashed attempt: must fail with ErrCrashed (or complete,
				// for crash points past the sweep's total) and leave only
				// consistent checkpoints behind. It observes too, so the
				// checkpointed metrics cover the pre-crash writes.
				s := scale
				s.Workers = workers
				s.Observe = newTestCollector().observe
				plan := &CheckpointPlan{Dir: dir, Every: 1 << 11}
				plan.ArmTotalCrash(crash)
				s.Checkpoint = plan
				if _, err := Fig8(s, "ocean"); err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatalf("crash at %d: %v", crash, err)
				}

				// Resumed run: byte-identical to uninterrupted.
				s = scale
				s.Workers = workers
				col := newTestCollector()
				s.Observe = col.observe
				s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
				if got := fig8Signature(t, s, col); got != wantFig8 {
					t.Errorf("fig8 resumed after crash at %d diverged", crash)
				}
			}

			// Table2's ladder runner, once per worker count: crash mid-run,
			// resume, compare.
			dir := t.TempDir()
			s := scale
			s.Workers = workers
			plan := &CheckpointPlan{Dir: dir, Every: 1 << 11}
			plan.ArmTotalCrash(9_999)
			s.Checkpoint = plan
			if _, err := Table2(s, []string{"ocean"}); err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatal(err)
			}
			s = scale
			s.Workers = workers
			s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
			t2, err := Table2(s, []string{"ocean"})
			if err != nil {
				t.Fatal(err)
			}
			if t2.String() != wantT2 {
				t.Error("table2 resumed after crash diverged")
			}
		})
	}
}

// TestCrashResumeEquivalenceNewLevelers runs the same sweep-level
// differential over the wolfram and softwear protection ladders: crash
// the 4-arm FigLeveler sweep at swept points, resume, and require the
// formatted output plus the collected metrics JSON (which carries the
// decoder-remap / page-relocation counters through the checkpoint) to
// match the uninterrupted run byte for byte — at workers 1 and 4.
func TestCrashResumeEquivalenceNewLevelers(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/resume differential sweep is slow; run without -short")
	}
	scale := Scale{
		Blocks: 1 << 9, BlocksPerPage: 8, MeanEndurance: 120,
		GapWritePeriod: 10, Seed: 7, MaxWritesPerBlock: 100,
	}
	for _, nl := range []struct {
		exp  string
		kind LevelerKind
	}{{"wolfram", LevelerWoLFRaM}, {"softwear", LevelerSoftWear}} {
		nl := nl
		t.Run(nl.exp, func(t *testing.T) {
			t.Parallel()
			signature := func(s Scale) string {
				col := newTestCollector()
				s.Observe = col.observe
				res, err := FigLeveler(s, "ocean", nl.kind, nl.exp)
				if err != nil {
					t.Fatal(err)
				}
				return res.String() + "\n" + col.json(t)
			}
			ref := scale
			ref.Workers = 1
			want := signature(ref)

			for _, workers := range []int{1, 4} {
				s := scale
				s.Workers = workers
				if got := signature(s); got != want {
					t.Fatalf("uninterrupted %s run differs at workers=%d", nl.exp, workers)
				}
				for _, crash := range []uint64{1, 2_000, 7_777, 15_000, 26_000} {
					dir := t.TempDir()
					s := scale
					s.Workers = workers
					s.Observe = newTestCollector().observe
					plan := &CheckpointPlan{Dir: dir, Every: 1 << 11}
					plan.ArmTotalCrash(crash)
					s.Checkpoint = plan
					if _, err := FigLeveler(s, "ocean", nl.kind, nl.exp); err != nil && !errors.Is(err, ErrCrashed) {
						t.Fatalf("crash at %d: %v", crash, err)
					}

					s = scale
					s.Workers = workers
					s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
					if got := signature(s); got != want {
						t.Errorf("%s resumed after crash at %d (workers=%d) diverged", nl.exp, crash, workers)
					}
				}
			}
		})
	}
}

// TestPerEngineCrashKey exercises the deterministic per-engine injector
// (CrashKey/CrashAt) end to end: crash exactly one job of the sweep,
// resume, match the uninterrupted output.
func TestPerEngineCrashKey(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/resume differential is slow; run without -short")
	}
	scale := Scale{
		Blocks: 1 << 9, BlocksPerPage: 8, MeanEndurance: 120,
		GapWritePeriod: 10, Seed: 7, MaxWritesPerBlock: 100,
	}
	want, err := Fig8(scale, "ocean")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := scale
	s.Checkpoint = &CheckpointPlan{
		Dir: dir, Every: 1 << 11,
		CrashKey: "fig8/ocean/LLS", CrashAt: 5_000,
	}
	if _, err := Fig8(s, "ocean"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	s = scale
	s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
	got, err := Fig8(s, "ocean")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("resume after per-engine crash diverged")
	}
}

// TestResumeRejectsCorruptFile ensures a corrupted on-disk checkpoint
// fails the resume loudly instead of silently diverging.
func TestResumeRejectsCorruptFile(t *testing.T) {
	scale := Scale{
		Blocks: 1 << 9, BlocksPerPage: 8, MeanEndurance: 120,
		GapWritePeriod: 10, Seed: 7, MaxWritesPerBlock: 20,
	}
	dir := t.TempDir()
	s := scale
	s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11}
	if _, err := Fig8(s, "ocean"); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files written: %v", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s = scale
	s.Checkpoint = &CheckpointPlan{Dir: dir, Every: 1 << 11, Resume: true}
	if _, err := Fig8(s, "ocean"); err == nil {
		t.Fatal("resume from corrupt checkpoint succeeded")
	}
}
