#!/bin/sh
# verify.sh — the repo's full verification gate (also: `make verify`).
#
# Runs the tier-1 checks from ROADMAP.md plus formatting, vet, the
# determinism-invariant analyzers (cmd/wlvet) and the race detector over
# every package. Keep this green before every commit: wlvet is what
# keeps wall-clock reads and unseeded randomness out of the simulation,
# and the full-tree race pass is what keeps concurrency honest wherever
# internal/sim's worker-pool results flow.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: unformatted files:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

# -summary prints the per-rule findings/suppressed table even when the
# tree is clean, so every gate run shows which invariants were checked.
echo "== go run ./cmd/wlvet -summary ./..."
go run ./cmd/wlvet -summary ./...

echo "== go build ./..."
go build ./...

# The examples are runnable documentation with no tests of their own;
# build them explicitly so an API change that breaks one fails the gate
# by name rather than hiding inside the tree build above.
echo "== go build ./examples/..."
go build ./examples/...

# The test pass doubles as the coverage gate: the profile feeds a
# ratchet floor (raise COVER_MIN when coverage rises; never lower it)
# and coverage.html, which CI publishes as an artifact.
COVER_MIN=67.8
echo "== go test -coverprofile=coverage.out ./..."
go test -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if awk -v got="$total" -v min="$COVER_MIN" 'BEGIN { exit !(got < min) }'; then
	echo "coverage regression: total ${total}% is below the ${COVER_MIN}% floor" >&2
	exit 1
fi
echo "coverage: ${total}% (floor ${COVER_MIN}%)"
go tool cover -html=coverage.out -o coverage.html

echo "== go test -race ./..."
go test -race ./...

echo "verify: all checks passed"
