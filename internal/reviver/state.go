package reviver

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the framework's mutable state: remap links,
// pointer-slot assignments, the spare pool, suspended deliveries and
// activity counters. The inverse link map is derived from ptr and is
// rebuilt on load. Unlike Snapshot (the in-PCM reboot image, which
// refuses pending operations), this is a faithful mid-run capture.
func (r *Reviver) SaveState(e *ckpt.Encoder) {
	e.MapU64(r.ptr)
	e.MapU64(r.ptrSlot)
	e.U64s(r.avail)
	e.U32(uint32(len(r.pending)))
	for _, p := range r.pending {
		e.U64(p.entry)
		e.U64(p.tag)
		e.Bool(p.has)
		e.U64(p.headPA)
		e.Bool(p.hasHead)
	}
	e.U32(uint32(len(r.pendVals)))
	for _, entry := range ckpt.KeysU64(r.pendVals) {
		v := r.pendVals[entry]
		e.U64(entry)
		e.U64(v.tag)
		e.Bool(v.has)
	}
	e.SetU64(r.orphans)
	e.U64(r.lastWritePA)
	e.Bool(r.lastWriteOK)
	e.U64(r.st.SoftwareWrites)
	e.U64(r.st.SoftwareReads)
	e.U64(r.st.RequestAccesses)
	e.U64(r.st.MaintenanceAccesses)
	e.U64(r.st.PagesAcquired)
	e.U64(r.st.SacrificedWrites)
	e.U64(r.st.LinksCreated)
	e.U64(r.st.ChainSwitches)
	e.U64(r.st.Suspensions)
	e.U64(r.st.RelocationsDropped)
}

// LoadState restores state written by SaveState into a framework built
// over the identical layer stack.
func (r *Reviver) LoadState(dec *ckpt.Decoder) error {
	ptr := dec.MapU64()
	ptrSlot := dec.MapU64()
	avail := dec.U64s()
	nPend := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nPend*18 > 1<<30 { // each pending op is 18 payload bytes
		return fmt.Errorf("reviver: checkpoint pending count %d implausible", nPend)
	}
	pending := make([]pendingOp, nPend)
	for i := range pending {
		pending[i] = pendingOp{
			entry:   dec.U64(),
			tag:     dec.U64(),
			has:     dec.Bool(),
			headPA:  dec.U64(),
			hasHead: dec.Bool(),
		}
	}
	nVals := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	pendVals := make(map[uint64]pendingVal, nVals)
	var prevEntry uint64
	for i := 0; i < nVals; i++ {
		entry := dec.U64()
		v := pendingVal{tag: dec.U64(), has: dec.Bool()}
		if dec.Err() != nil {
			return dec.Err()
		}
		if i > 0 && entry <= prevEntry {
			return fmt.Errorf("reviver: checkpoint pending values out of order")
		}
		prevEntry = entry
		pendVals[entry] = v
	}
	orphans := dec.SetU64()
	lastWritePA := dec.U64()
	lastWriteOK := dec.Bool()
	var st Stats
	st.SoftwareWrites = dec.U64()
	st.SoftwareReads = dec.U64()
	st.RequestAccesses = dec.U64()
	st.MaintenanceAccesses = dec.U64()
	st.PagesAcquired = dec.U64()
	st.SacrificedWrites = dec.U64()
	st.LinksCreated = dec.U64()
	st.ChainSwitches = dec.U64()
	st.Suspensions = dec.U64()
	st.RelocationsDropped = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	inv := make(map[uint64]uint64, len(ptr))
	for _, da := range ckpt.KeysU64(ptr) {
		pa := ptr[da]
		if other, dup := inv[pa]; dup {
			return fmt.Errorf("reviver: checkpoint links DAs %d and %d to the same shadow PA %d", other, da, pa)
		}
		inv[pa] = da
	}
	r.ptr = ptr
	r.inv = inv
	r.ptrSlot = ptrSlot
	r.avail = avail
	r.pending = pending
	r.pendVals = pendVals
	r.orphans = orphans
	r.lastWritePA = lastWritePA
	r.lastWriteOK = lastWriteOK
	r.st = st
	return nil
}
