package osmodel

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the model's mutable state — the exact page table,
// retirement bitmap and donor cursor — into the open checkpoint section.
// Unlike Bitmap/LoadBitmap (which model a reboot and re-derive donor
// assignments), this is a faithful capture: restoring reproduces the
// identical virtual→physical mapping.
func (m *Model) SaveState(e *ckpt.Encoder) {
	e.U32s(m.virtToPhys)
	e.Bools(m.retired)
	e.U64(m.retiredCnt)
	e.U64(m.donorCur)
}

// LoadState restores state written by SaveState into a model built with
// identical geometry.
func (m *Model) LoadState(dec *ckpt.Decoder) error {
	virtToPhys := dec.U32s()
	retired := dec.Bools()
	retiredCnt := dec.U64()
	donorCur := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if uint64(len(virtToPhys)) != m.numPages || uint64(len(retired)) != m.numPages {
		return fmt.Errorf("osmodel: checkpoint page count mismatch (model has %d pages)", m.numPages)
	}
	var recount uint64
	for p, r := range retired {
		if r {
			recount++
		}
		if uint64(virtToPhys[p]) >= m.numPages {
			return fmt.Errorf("osmodel: checkpoint page table entry %d out of range", p)
		}
	}
	if recount != retiredCnt {
		return fmt.Errorf("osmodel: checkpoint retired count %d disagrees with bitmap (%d)", retiredCnt, recount)
	}
	if donorCur >= m.numPages {
		return fmt.Errorf("osmodel: checkpoint donor cursor %d out of range", donorCur)
	}
	copy(m.virtToPhys, virtToPhys)
	copy(m.retired, retired)
	m.retiredCnt = retiredCnt
	m.donorCur = donorCur
	return nil
}
