package sim

import (
	"fmt"
	"math"
	"runtime"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/obs"
	"wlreviver/internal/stats"
	"wlreviver/internal/trace"
)

// ShardedConfig sizes a sharded chip. The two knobs are deliberately
// independent:
//
//   - Grid is SEMANTIC: it selects the chip model. A grid-G chip is G
//     independent sub-chips — each with its own wear and failure
//     schedule, leveler, OS page table, protector and workload stream —
//     merged into one reporting surface. Grid is part of the simulation
//     state: it is checkpointed, and changing it changes results
//     (exactly as changing Blocks or Seed would).
//
//   - Pool is EXECUTION-ONLY: how many OS threads run the shards of one
//     batch. It is never persisted and cannot affect output — shards
//     share no mutable state, and the batch merge visits them in shard
//     order — so a run at Pool=1 is byte-identical to Pool=8, and a
//     checkpoint written at Pool=4 resumes at any other width
//     (TestShardedMatchesSerial, TestShardedCrossPoolResume).
type ShardedConfig struct {
	// Grid is the number of equal address-space shards; it must divide
	// Config.Blocks, and each shard must hold whole OS pages.
	Grid uint64
	// Pool is the maximum shards executed concurrently per batch;
	// 0 defaults to GOMAXPROCS.
	Pool int
	// RoundWrites is the chip's scheduling-round size in writes: every
	// round of that many chip writes is split equally over the live
	// shards (see ShardedEngine). Like Grid it is SEMANTIC — part of the
	// chip model and the checkpointed state — not a performance knob.
	// 0 defaults to Blocks/Grid (one write per shard block per round).
	RoundWrites uint64
}

// ShardedEngine drives one chip partitioned into Grid address-space
// shards, each an independent *Engine over Blocks/Grid blocks with a
// seed derived by trace.ShardSeed.
//
// Writes are scheduled in fixed-size ROUNDS of RoundWrites chip writes:
// at each round start the round's budget is split equally over the live
// shards (remainder to the lowest shard indexes); shards that reach end
// of life mid-round under-serve their quota, and the shortfall is
// re-split over the remaining live shards until the round completes.
// RunN may start or stop anywhere inside a round — outstanding quotas
// are consumed lowest-shard-first, so the per-shard write totals after N
// chip writes are a pure function of N and the simulation state, never
// of how the caller batches its RunN calls or how wide the execution
// pool is. The allocation arithmetic is sequential; the execution of the
// allocated quotas runs on the pool, since the shards share nothing.
//
// At each merge barrier the shards' buffered observer events replay into
// the chip observer in shard order, with shard-local device addresses,
// pages and leveler regions rebased into chip space. Chip-level
// snapshots are emitted at round boundaries — the first round end at or
// past each SnapshotEvery threshold — so the snapshot series is as
// deterministic as the write schedule.
//
// The sharded chip is a different (coarser-grained) model than the
// monolithic one — wear leveling and failure protection act within
// shards, not across them — so its results are comparable to, but not
// byte-identical with, a Grid=1 run. What IS byte-identical is the run
// across every Pool width and every RunN batching, which is the property
// that lets one device run saturate all cores.
type ShardedEngine struct {
	cfg    Config // chip-level configuration (Blocks = whole chip)
	grid   uint64
	pool   int
	round  uint64 // scheduling-round size in chip writes
	shards []*Engine
	recs   []*obs.Recorder // one per shard; nil without an observer

	// Round scheduling state (checkpointed): writes left in the current
	// round, and the current sub-round's per-shard quotas and progress. A
	// sub-round is one equal split of the round's remaining budget; death
	// shortfalls start a new sub-round over the surviving shards.
	roundRem uint64
	quota    []uint64
	served   []uint64

	// Per-wave scratch, sized once: this call's allocations and serviced
	// counts indexed by shard, plus the to-run index list.
	alloc []uint64
	ran   []uint64
	live  []int

	writes  uint64
	stopped bool

	crashAt uint64
	crashed bool

	observer  obs.Observer
	snapEvery uint64
	nextSnap  uint64

	// Rebase strides: each shard's device, page and leveler-region
	// spaces are offset by shard × stride when its events replay.
	devStride  uint64
	pageStride uint64
	regStride  int
}

// NewShardedEngine builds the sharded chip. cfg describes the whole
// chip; newGen builds shard workload generators — it receives the shard
// index and the derived shard configuration (Blocks and Seed already
// shard-local) and must return a generator over shardCfg.Blocks blocks.
func NewShardedEngine(sc ShardedConfig, cfg Config, newGen func(shard uint64, shardCfg Config) (trace.Generator, error)) (*ShardedEngine, error) {
	if sc.Grid < 2 {
		return nil, fmt.Errorf("sim: shard grid must be at least 2, got %d (use NewEngine for a monolithic chip)", sc.Grid)
	}
	if cfg.Blocks%sc.Grid != 0 {
		return nil, fmt.Errorf("sim: %d blocks do not split into %d equal shards", cfg.Blocks, sc.Grid)
	}
	shardBlocks := cfg.Blocks / sc.Grid
	if cfg.BlocksPerPage == 0 || shardBlocks%cfg.BlocksPerPage != 0 {
		return nil, fmt.Errorf("sim: shard size %d blocks is not whole OS pages of %d blocks", shardBlocks, cfg.BlocksPerPage)
	}
	if cfg.CustomLeveler != nil {
		return nil, fmt.Errorf("sim: sharding cannot split a custom leveler; use NewEngine")
	}
	pool := sc.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	round := sc.RoundWrites
	if round == 0 {
		round = shardBlocks
	}

	se := &ShardedEngine{
		cfg:    cfg,
		grid:   sc.Grid,
		pool:   pool,
		round:  round,
		shards: make([]*Engine, sc.Grid),
		quota:  make([]uint64, sc.Grid),
		served: make([]uint64, sc.Grid),
		alloc:  make([]uint64, sc.Grid),
		ran:    make([]uint64, sc.Grid),
		live:   make([]int, 0, sc.Grid),
	}
	if cfg.Observer != nil {
		se.observer = cfg.Observer
		se.recs = make([]*obs.Recorder, sc.Grid)
		se.snapEvery = cfg.SnapshotEvery
		if se.snapEvery == 0 {
			se.snapEvery = cfg.Blocks
		}
		se.nextSnap = se.snapEvery
	}
	for shard := uint64(0); shard < sc.Grid; shard++ {
		shardCfg := cfg
		shardCfg.Blocks = shardBlocks
		shardCfg.Seed = trace.ShardSeed(cfg.Seed, shard)
		// Keep LLS's backup chunk the same fraction of (shard) capacity
		// the chip-level config asked for.
		if shardCfg.LLSChunkPages > 0 {
			shardCfg.LLSChunkPages = shardCfg.LLSChunkPages / sc.Grid
			if shardCfg.LLSChunkPages == 0 {
				shardCfg.LLSChunkPages = 1
			}
		}
		shardCfg.Observer = nil
		shardCfg.SnapshotEvery = 0
		if se.recs != nil {
			// The shard simulates under its own Recorder; snapshots are
			// suppressed (the chip emits aggregated ones at merges) by
			// parking the period past any reachable write count.
			se.recs[shard] = &obs.Recorder{}
			shardCfg.Observer = se.recs[shard]
			shardCfg.SnapshotEvery = math.MaxUint64
		}
		gen, err := newGen(shard, shardCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d workload: %w", shard, err)
		}
		e, err := NewEngine(shardCfg, gen)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", shard, err)
		}
		se.shards[shard] = e
	}
	se.devStride = se.shards[0].dev.NumBlocks()
	se.pageStride = shardBlocks / cfg.BlocksPerPage
	switch {
	case cfg.Leveler == LevelerRegionedStartGap && cfg.CustomLeveler == nil:
		regions := cfg.SGRegions
		if regions == 0 {
			regions = 4
		}
		se.regStride = int(regions)
	default:
		// Start-Gap and Security Refresh report region 0 / raw DAs.
		se.regStride = 1
	}
	return se, nil
}

// Grid returns the shard count (the semantic partition).
func (se *ShardedEngine) Grid() uint64 { return se.grid }

// PoolSize returns the execution pool width.
func (se *ShardedEngine) PoolSize() int { return se.pool }

// Shard exposes one shard's engine for inspection (tests, wear dumps).
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Config returns the chip-level configuration.
func (se *ShardedEngine) Config() Config { return se.cfg }

// Writes returns the software writes serviced across all shards.
func (se *ShardedEngine) Writes() uint64 { return se.writes }

// WritesPerBlock returns writes normalised by chip capacity.
func (se *ShardedEngine) WritesPerBlock() float64 {
	return float64(se.writes) / float64(se.cfg.Blocks)
}

// Stopped reports whether every shard reached end of life.
func (se *ShardedEngine) Stopped() bool { return se.stopped }

// CrashAfter arms the crash-fault injector at an absolute chip-wide
// write threshold (0 disarms), mirroring Engine.CrashAfter.
func (se *ShardedEngine) CrashAfter(n uint64) {
	se.crashAt = n
	if n == 0 {
		se.crashed = false
	}
}

// Crashed reports whether the crash-fault injector has fired.
func (se *ShardedEngine) Crashed() bool { return se.crashed }

// SurvivalRate returns the chip-wide fraction of device blocks not
// declared dead.
func (se *ShardedEngine) SurvivalRate() float64 {
	var dead uint64
	for _, e := range se.shards {
		dead += e.dev.DeadBlocks()
	}
	return 1 - float64(dead)/float64(se.devStride*se.grid)
}

// DeadFraction returns the chip-wide fraction of device blocks dead.
func (se *ShardedEngine) DeadFraction() float64 {
	return 1 - se.SurvivalRate()
}

// UsableFraction returns the chip-wide software-usable capacity: the
// mean of the equal-sized shards' fractions.
func (se *ShardedEngine) UsableFraction() float64 {
	var sum float64
	for _, e := range se.shards {
		sum += e.UsableFraction()
	}
	return sum / float64(se.grid)
}

// RequestCounts sums the shards' (software requests, raw PCM accesses).
func (se *ShardedEngine) RequestCounts() (requests, accesses uint64) {
	for _, e := range se.shards {
		r, a := e.RequestCounts()
		requests += r
		accesses += a
	}
	return requests, accesses
}

// subActive reports whether a sub-round has outstanding quota on any
// still-live shard. Quota stuck on a dead shard does not keep the
// sub-round active — nothing can serve it, so it flows back into the
// round's remainder at the next split.
func (se *ShardedEngine) subActive() bool {
	for i, e := range se.shards {
		if !e.Stopped() && se.quota[i] > se.served[i] {
			return true
		}
	}
	return false
}

// startSubRound splits the round's remaining budget equally over the
// live shards (remainder to the lowest indexes). It reports false when
// no shard is live — the chip has reached end of life.
func (se *ShardedEngine) startSubRound() bool {
	if se.roundRem == 0 {
		se.roundRem = se.round
	}
	live := se.live[:0]
	for i := range se.shards {
		se.quota[i], se.served[i] = 0, 0
		if !se.shards[i].Stopped() {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return false
	}
	base := se.roundRem / uint64(len(live))
	extra := se.roundRem % uint64(len(live))
	for j, s := range live {
		se.quota[s] = base
		if uint64(j) < extra {
			se.quota[s]++
		}
	}
	return true
}

// RunN services up to n software writes across the shards. The write
// schedule is the round grid documented on ShardedEngine: quotas are a
// function of simulation state only, and a call boundary anywhere inside
// a round consumes the outstanding quotas lowest-shard-first — so the
// run is byte-identical across every RunN batching, execution pool width
// and checkpoint/restore cut.
//
// It returns the writes serviced; fewer than n means every shard reached
// end of life (the chip keeps absorbing the workload's writes on its
// surviving shards until none remain).
func (se *ShardedEngine) RunN(n uint64) uint64 {
	if se.stopped {
		return 0
	}
	crashing := false
	if se.crashAt != 0 {
		if se.crashed {
			return 0
		}
		if se.writes >= se.crashAt {
			se.crashed = true
			return 0
		}
		if left := se.crashAt - se.writes; n >= left {
			n = left
			crashing = true
		}
	}
	var done uint64
	for done < n {
		if !se.subActive() && !se.startSubRound() {
			se.stopped = true
			se.emitDueSnapshots()
			break
		}
		// Allocate this call's budget over the sub-round's outstanding
		// quotas, lowest shard first — pure arithmetic, so the totals are
		// batching-invariant — then execute the allocations on the pool.
		m := n - done
		toRun := se.live[:0]
		for i := range se.shards {
			se.alloc[i] = 0
			if m == 0 || se.shards[i].Stopped() {
				continue
			}
			if rem := se.quota[i] - se.served[i]; rem > 0 {
				a := rem
				if a > m {
					a = m
				}
				se.alloc[i] = a
				m -= a
				toRun = append(toRun, i)
			}
		}
		runShards(se.pool, len(toRun), func(j int) {
			s := toRun[j]
			se.ran[s] = se.shards[s].RunN(se.alloc[s])
		})
		var total uint64
		for _, s := range toRun {
			se.served[s] += se.ran[s]
			total += se.ran[s]
		}
		se.writes += total
		done += total
		se.roundRem -= total
		se.mergeEvents()
		if se.roundRem == 0 {
			se.emitDueSnapshots()
		}
		// A shard that under-served its allocation has stopped (shards
		// carry no crash faults); its outstanding quota re-splits over the
		// survivors at the next sub-round, so the loop always either
		// finishes n or runs out of shards.
	}
	if crashing && done == n {
		se.crashed = true
	}
	return done
}

// mergeEvents is the barrier's deterministic publication step: replay
// each shard's buffered events into the chip observer in shard order,
// rebasing shard-local device addresses, pages and regions into chip
// space. Within a sub-round the lowest-shard-first allocation order
// guarantees shard i's events all precede shard j's (i < j) no matter
// where the barriers fall, so the chip observer sees one fixed event
// sequence at every batching.
func (se *ShardedEngine) mergeEvents() {
	if se.observer == nil {
		return
	}
	for i, rec := range se.recs {
		if rec.Len() == 0 {
			continue
		}
		rec.Replay(se.observer, obs.Rebase{
			DA:     uint64(i) * se.devStride,
			Page:   uint64(i) * se.pageStride,
			Region: i * se.regStride,
		})
		rec.Reset()
	}
}

// emitDueSnapshots emits aggregated chip snapshots for every period
// threshold crossed since the last emission. Called only at round
// boundaries and at chip stop — both deterministic chip write counts —
// so the snapshot series is invariant under call batching.
func (se *ShardedEngine) emitDueSnapshots() {
	if se.observer == nil {
		return
	}
	for se.snapEvery != 0 && se.writes >= se.nextSnap {
		se.observer.Snapshot(se.snapshotSample())
		se.nextSnap += se.snapEvery
	}
}

// snapshotSample aggregates one chip-level obs.Snapshot from the shards:
// counters sum, capacity fractions average over the equal shards, the
// access ratio is recomputed from summed counts, and the wear CoV comes
// from merging the shards' streaming moments (stats.Welford.Merge).
func (se *ShardedEngine) snapshotSample() obs.Snapshot {
	s := obs.Snapshot{
		Writes:         se.writes,
		WritesPerBlock: se.WritesPerBlock(),
		SurvivalRate:   se.SurvivalRate(),
		UsableFraction: se.UsableFraction(),
	}
	var wear stats.Welford
	for _, e := range se.shards {
		s.DeadBlocks += e.dev.DeadBlocks()
		s.RetiredPages += e.os.RetiredPages()
		if e.rev != nil {
			s.LiveRemaps += e.rev.LinkedFailures()
			s.SparePAs += e.rev.AvailableSpares()
		}
		switch {
		case e.sgLv != nil:
			s.LevelerOps += e.sgLv.GapMoves()
		case e.srLv != nil:
			s.LevelerOps += e.srLv.OuterSwaps()
		case e.rsgLv != nil:
			s.LevelerOps += e.rsgLv.GapMoves()
		case e.wfrLv != nil:
			s.LevelerOps += e.wfrLv.Swaps()
		case e.swLv != nil:
			s.LevelerOps += e.swLv.Relocations()
		}
		if e.remapCache != nil {
			s.CacheHits += e.remapCache.Hits()
			s.CacheMisses += e.remapCache.Misses()
		}
		wear.Merge(e.dev.WearMoments())
	}
	if req, acc := se.RequestCounts(); req > 0 {
		s.AccessRatio = float64(acc) / float64(req)
	}
	s.WearCoV = wear.CoV()
	return s
}

// Checkpoint serializes the sharded chip's complete mutable state, in
// the same self-describing CRC-framed format Engine.Checkpoint uses: a
// "sharded" header (grid, round schedule, cursor), then each shard's
// full section sequence in shard order, then the chip observer's state.
// The pool width is deliberately NOT stored — it is execution
// configuration, so any pool can resume the file.
func (se *ShardedEngine) Checkpoint() ([]byte, error) {
	enc := ckpt.NewEncoder()
	if err := se.encodeState(enc); err != nil {
		return nil, err
	}
	return enc.Finish(), nil
}

// RestoreCheckpoint restores an image produced by Checkpoint into a
// sharded engine freshly built from the identical configuration and
// grid. On error the engine must be discarded.
func (se *ShardedEngine) RestoreCheckpoint(data []byte) error {
	d, err := ckpt.NewDecoder(data)
	if err != nil {
		return err
	}
	if err := se.decodeState(d); err != nil {
		return err
	}
	return d.Close()
}

// encodeState implements the Machine checkpoint surface.
func (se *ShardedEngine) encodeState(enc *ckpt.Encoder) error {
	enc.Begin("sharded")
	enc.U64(se.grid)
	enc.U64(se.round)
	enc.U64(se.writes)
	enc.Bool(se.stopped)
	enc.U64(se.nextSnap)
	enc.U64(se.roundRem)
	enc.U64s(se.quota)
	enc.U64s(se.served)
	enc.End()
	for _, e := range se.shards {
		if err := e.encodeState(enc); err != nil {
			return err
		}
	}
	// Chip-level observer state (the shard "observer" sections above are
	// the Recorders, which are always empty at batch boundaries and
	// carry no state).
	enc.Begin("chipobserver")
	if osv, ok := se.observer.(ckptSaver); ok {
		enc.Bool(true)
		osv.SaveState(enc)
	} else {
		enc.Bool(false)
	}
	enc.End()
	return nil
}

// decodeState implements the Machine checkpoint surface.
func (se *ShardedEngine) decodeState(d *ckpt.Decoder) error {
	if err := d.Section("sharded"); err != nil {
		return err
	}
	grid := d.U64()
	round := d.U64()
	writes := d.U64()
	stopped := d.Bool()
	nextSnap := d.U64()
	roundRem := d.U64()
	quota := d.U64s()
	served := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if grid != se.grid {
		return fmt.Errorf("sim: checkpoint was taken under a different shard grid (%d, this chip has %d)", grid, se.grid)
	}
	if round != se.round {
		return fmt.Errorf("sim: checkpoint was taken under a different round size (%d, this chip has %d)", round, se.round)
	}
	if uint64(len(quota)) != se.grid || uint64(len(served)) != se.grid {
		return fmt.Errorf("sim: checkpoint quota vectors cover %d/%d shards, chip has %d", len(quota), len(served), se.grid)
	}
	se.writes = writes
	se.stopped = stopped
	if nextSnap != 0 {
		se.nextSnap = nextSnap
	}
	se.roundRem = roundRem
	copy(se.quota, quota)
	copy(se.served, served)
	var shardWrites uint64
	for i, e := range se.shards {
		if err := e.decodeState(d); err != nil {
			return fmt.Errorf("sim: shard %d: %w", i, err)
		}
		shardWrites += e.Writes()
	}
	if shardWrites != se.writes {
		return fmt.Errorf("sim: checkpoint shard writes sum to %d, chip cursor is %d", shardWrites, se.writes)
	}
	if err := d.Section("chipobserver"); err != nil {
		return err
	}
	if d.Bool() {
		if ol, ok := se.observer.(ckptLoader); ok {
			if err := ol.LoadState(d); err != nil {
				return err
			}
		} else {
			d.SkipRest()
		}
	}
	return d.Err()
}
