# Convenience targets; scripts/verify.sh is the canonical gate.

.PHONY: build test verify bench paper

build:
	go build ./...

test:
	go test ./...

# Full verification gate: vet + build + tests + race over the parallel
# experiment runner. ROADMAP.md's tier-1 line points here.
verify:
	sh scripts/verify.sh

# Experiment-harness benchmarks (result-shape metrics + hot-path ns/op).
bench:
	go test -bench=. -benchmem -run '^$$' ./...

# Regenerate the paper's tables and figures at bench scale on all CPUs.
paper:
	go run ./cmd/paper -scale bench -exp all
