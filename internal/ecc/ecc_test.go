package ecc

import (
	"math"
	"testing"
	"testing/quick"

	"wlreviver/internal/pcm"
)

func TestECPBasics(t *testing.T) {
	e, err := NewECP(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "ECP6" {
		t.Errorf("name = %q", e.Name())
	}
	if e.MetadataBitsPerBlock() != 61 {
		t.Errorf("ECP6 metadata = %v bits, want 61", e.MetadataBitsPerBlock())
	}
	// 6 failures absorbed, 7th kills.
	for i := 0; i < 6; i++ {
		if !e.Absorb(0, 1) {
			t.Fatalf("failure %d should be correctable", i+1)
		}
	}
	if e.Used(0) != 6 {
		t.Errorf("used = %d, want 6", e.Used(0))
	}
	if e.Absorb(0, 1) {
		t.Error("7th failure should kill an ECP6 block")
	}
	if e.Absorb(0, 0) {
		t.Error("dead block must stay dead even with zero new failures")
	}
	// Other blocks unaffected.
	if !e.Absorb(1, 1) {
		t.Error("block 1 should be healthy")
	}
}

func TestECPBatchFailures(t *testing.T) {
	e, _ := NewECP(6, 4)
	if e.Absorb(2, 7) {
		t.Error("7 simultaneous failures should kill ECP6")
	}
	e2, _ := NewECP(6, 4)
	if !e2.Absorb(2, 6) {
		t.Error("6 simultaneous failures should be fine")
	}
}

func TestECPZeroCapacity(t *testing.T) {
	e, _ := NewECP(0, 2)
	if !e.Absorb(0, 0) {
		t.Error("no failures is always fine")
	}
	if e.Absorb(0, 1) {
		t.Error("ECP0 cannot correct anything")
	}
	if e.MetadataBitsPerBlock() != 1 {
		t.Errorf("ECP0 metadata = %v, want 1 (full bit)", e.MetadataBitsPerBlock())
	}
}

func TestECPNegativeCapacity(t *testing.T) {
	if _, err := NewECP(-1, 2); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestPAYGLocalThenPool(t *testing.T) {
	cfg := PAYGConfig{LocalCapacity: 1, SetBlocks: 4, SetEntries: 2, OverflowEntries: 1, EntryBits: 13}
	p, err := NewPAYG(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0: local(1) + set pool(2) + overflow(1) = 4 correctable failures.
	for i := 0; i < 4; i++ {
		if !p.Absorb(0, 1) {
			t.Fatalf("failure %d should be correctable", i+1)
		}
	}
	if p.PooledUsed() != 3 {
		t.Errorf("pooled used = %d, want 3", p.PooledUsed())
	}
	if p.OverflowLeft() != 0 {
		t.Errorf("overflow left = %d, want 0", p.OverflowLeft())
	}
	if p.Absorb(0, 1) {
		t.Error("5th failure should kill the block")
	}
	// Block 1 shares set 0's pool, which is now empty, and overflow is
	// gone: local only.
	if !p.Absorb(1, 1) {
		t.Error("block 1 local layer should absorb one")
	}
	if p.Absorb(1, 1) {
		t.Error("block 1 second failure should die: pools empty")
	}
	// Block 4 is in set 1 with its own pool.
	if !p.Absorb(4, 3) {
		t.Error("block 4 should use set 1's fresh pool")
	}
}

func TestPAYGDeadStaysDead(t *testing.T) {
	cfg := PAYGConfig{LocalCapacity: 0, SetBlocks: 2, SetEntries: 0, OverflowEntries: 0}
	p, _ := NewPAYG(cfg, 4)
	if p.Absorb(0, 1) {
		t.Fatal("should die immediately with zero capacity")
	}
	if p.Absorb(0, 0) {
		t.Error("dead block revived")
	}
}

func TestPAYGConfigValidate(t *testing.T) {
	bad := []PAYGConfig{
		{LocalCapacity: -1, SetBlocks: 1},
		{SetBlocks: 0},
		{SetBlocks: 1, SetEntries: -1},
		{SetBlocks: 1, OverflowEntries: -1},
	}
	for i, c := range bad {
		if _, err := NewPAYG(c, 4); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultPAYGBudget(t *testing.T) {
	const blocks = 1 << 16
	cfg := DefaultPAYGConfig(blocks)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPAYG(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	bits := p.MetadataBitsPerBlock()
	// Paper: ~19.5 bits per group on average, under 1/3 of ECP6's 61.
	if bits < 15 || bits > 25 {
		t.Errorf("PAYG metadata = %v bits/block, want ~19.5", bits)
	}
	if bits >= 61.0/3.0+5 {
		t.Errorf("PAYG metadata %v should be well under ECP6's", bits)
	}
}

// Property: for any interleaving of failures across blocks, the total
// correctable failures never exceeds local*blocks + set pools + overflow.
func TestQuickPAYGConservation(t *testing.T) {
	f := func(seq []uint8) bool {
		cfg := PAYGConfig{LocalCapacity: 1, SetBlocks: 4, SetEntries: 3, OverflowEntries: 2}
		const blocks = 8
		p, err := NewPAYG(cfg, blocks)
		if err != nil {
			return false
		}
		absorbed := 0
		for _, s := range seq {
			if p.Absorb(pcm.BlockID(s%blocks), 1) {
				absorbed++
			}
		}
		// capacity: 8 local + 2 sets * 3 + 2 overflow = 16
		return absorbed <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PAYG should postpone the first dead block versus ECP with comparable or
// smaller budget, under uniform wear: drive two identical devices and
// compare the wear level at which the first block dies.
func TestPAYGPostponesFirstFailureVsSmallECP(t *testing.T) {
	mkDevice := func() *pcm.Device {
		d, err := pcm.NewDevice(pcm.Config{
			NumBlocks: 256, BlockBytes: 64, CellsPerBlock: 512,
			MeanEndurance: 2000, LifetimeCoV: 0.2, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	firstDeath := func(s Scheme, d *pcm.Device) uint64 {
		for round := uint64(1); round < 4000; round++ {
			for b := uint64(0); b < d.NumBlocks(); b++ {
				nf := d.Write(pcm.BlockID(b))
				if nf > 0 && !s.Absorb(pcm.BlockID(b), nf) {
					return round
				}
			}
		}
		return math.MaxUint64
	}
	ecp1, _ := NewECP(1, 256)
	ecpDeath := firstDeath(ecp1, mkDevice())
	payg, _ := NewPAYG(DefaultPAYGConfig(256), 256)
	paygDeath := firstDeath(payg, mkDevice())
	if paygDeath <= ecpDeath {
		t.Errorf("PAYG first death at round %d, ECP1 at %d; pooling should postpone it",
			paygDeath, ecpDeath)
	}
}

func TestSAFERBasics(t *testing.T) {
	s, err := NewSAFER(32, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SAFER32" {
		t.Errorf("name = %q", s.Name())
	}
	// 5 group-count bits + partition field + 32 inversion bits.
	if bits := s.MetadataBitsPerBlock(); bits < 40 || bits > 80 {
		t.Errorf("SAFER32 metadata = %v bits, want tens of bits", bits)
	}
	for i := 0; i < 32; i++ {
		if !s.Absorb(0, 1) {
			t.Fatalf("failure %d should be tolerable", i+1)
		}
	}
	if s.Used(0) != 32 {
		t.Errorf("used = %d", s.Used(0))
	}
	if s.Absorb(0, 1) {
		t.Error("33rd stuck cell should kill SAFER32")
	}
	if s.Absorb(0, 0) {
		t.Error("dead stays dead")
	}
	if !s.Absorb(1, 4) {
		t.Error("other blocks unaffected")
	}
}

func TestSAFERValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12} {
		if _, err := NewSAFER(n, 512, 4); err == nil {
			t.Errorf("SAFER(%d) accepted", n)
		}
	}
	if _, err := NewSAFER(8, 0, 4); err == nil {
		t.Error("zero cells accepted")
	}
}

// SAFER-32 should outlast ECP6 on a wearing block (more capacity), at
// similar or larger metadata cost.
func TestSAFEROutlastsECP6PerBlock(t *testing.T) {
	mk := func() *pcm.Device {
		d, _ := pcm.NewDevice(pcm.Config{
			NumBlocks: 4, BlockBytes: 64, CellsPerBlock: 512,
			MeanEndurance: 1000, LifetimeCoV: 0.2, Seed: 5,
		})
		return d
	}
	death := func(s Scheme, d *pcm.Device) int {
		for i := 1; i < 100000; i++ {
			nf := d.Write(0)
			if nf > 0 && !s.Absorb(0, nf) {
				return i
			}
		}
		return 1 << 30
	}
	ecp6, _ := NewECP(6, 4)
	safer, _ := NewSAFER(32, 512, 4)
	dEcp := death(ecp6, mk())
	dSafer := death(safer, mk())
	if dSafer <= dEcp {
		t.Errorf("SAFER32 died at write %d, ECP6 at %d", dSafer, dEcp)
	}
}
