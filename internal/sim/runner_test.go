package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("sq-%d", i),
			Run:  func() (int, uint64, error) { return i * i, uint64(i), nil },
		}
	}
	return jobs
}

func TestRunJobsOrderAndValues(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		results := RunJobs(squareJobs(17), workers)
		if len(results) != 17 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i || r.Writes != uint64(i) || r.Name != fmt.Sprintf("sq-%d", i) {
				t.Errorf("workers=%d slot %d: got (%q, %d, %d)", workers, i, r.Name, r.Value, r.Writes)
			}
		}
	}
}

func TestRunJobsEmpty(t *testing.T) {
	if got := RunJobs[int](nil, 4); len(got) != 0 {
		t.Errorf("nil jobs gave %d results", len(got))
	}
}

func TestRunJobsErrorCarriesName(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		{Name: "ok", Run: func() (int, uint64, error) { return 1, 0, nil }},
		{Name: "bad", Run: func() (int, uint64, error) { return 0, 0, boom }},
	}
	for _, workers := range []int{1, 2} {
		results := RunJobs(jobs, workers)
		if results[0].Err != nil || results[0].Value != 1 {
			t.Errorf("workers=%d: good job corrupted: %+v", workers, results[0])
		}
		if !errors.Is(results[1].Err, boom) {
			t.Errorf("workers=%d: error lost: %v", workers, results[1].Err)
		}
		if got := results[1].Err.Error(); got != "bad: boom" {
			t.Errorf("workers=%d: error not labelled: %q", workers, got)
		}
	}
}

func TestCollectJobsFirstErrorInJobOrder(t *testing.T) {
	// Two failures: CollectJobs must surface the earliest job's error no
	// matter which finishes first.
	jobs := []Job[int]{
		{Name: "a", Run: func() (int, uint64, error) { return 0, 0, errors.New("first") }},
		{Name: "b", Run: func() (int, uint64, error) { return 0, 0, errors.New("second") }},
	}
	for _, workers := range []int{1, 2} {
		_, _, err := CollectJobs(jobs, workers)
		if err == nil || err.Error() != "a: first" {
			t.Errorf("workers=%d: got %v, want a: first", workers, err)
		}
	}
}

func TestCollectJobsSumsWrites(t *testing.T) {
	values, writes, err := CollectJobs(squareJobs(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 10 {
		t.Fatalf("%d values", len(values))
	}
	if writes != 45 { // 0+1+...+9
		t.Errorf("writes = %d, want 45", writes)
	}
}

func TestRunJobsActuallyFansOut(t *testing.T) {
	// With more workers than jobs need, two jobs that wait on each other
	// can only complete if they really run concurrently.
	var entered atomic.Int32
	release := make(chan struct{})
	rendezvous := func() (int, uint64, error) {
		if entered.Add(1) == 2 {
			close(release)
		}
		<-release
		return 0, 0, nil
	}
	jobs := []Job[int]{{Name: "l", Run: rendezvous}, {Name: "r", Run: rendezvous}}
	done := make(chan struct{})
	go func() { RunJobs(jobs, 2); close(done) }()
	<-done // deadlocks (test timeout) if the pool were serial
}
