package serve

import (
	"fmt"

	"wlreviver/internal/obs"
	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
)

// DeviceSpec is a device's declarative, JSON-portable description — the
// request body a tenant posts to create a device, and the exact record
// the fleet persists as spec.json so an evicted or restarted device
// rebuilds the identical engine. Every field defaults from
// sim.DefaultConfig (zero values mean "default"), so the spec → Config
// mapping is a pure function and the configuration fingerprint inside
// checkpoint images always matches across rebuilds.
type DeviceSpec struct {
	// Stack names a registered device stack ("fig6/ECP6-SG-WLR", ...;
	// see sim.DeviceStackNames) supplying the ECC/leveler/protector
	// selection. The explicit selector fields below, when non-empty,
	// override the stack's choices.
	Stack string `json:"stack,omitempty"`

	// Geometry and media. Zero values take the sim.DefaultConfig
	// scaled-paper values.
	Blocks        uint64  `json:"blocks,omitempty"`
	BlocksPerPage uint64  `json:"blocks_per_page,omitempty"`
	CellsPerBlock int     `json:"cells_per_block,omitempty"`
	MeanEndurance float64 `json:"mean_endurance,omitempty"`
	LifetimeCoV   float64 `json:"lifetime_cov,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`

	// Component selectors by display name: Leveler "SG"/"SR"/"SG-R"/
	// "none", Protector "WLR"/"FREE-p"/"LLS"/"DRM"/"none", ECC "ECP6"/
	// "ECP1"/"PAYG". Empty selects the defaults (SG, WLR, ECP6) or the
	// Stack's choices when Stack is set.
	Leveler   string `json:"leveler,omitempty"`
	Protector string `json:"protector,omitempty"`
	ECC       string `json:"ecc,omitempty"`

	// Scheme knobs, zero-defaulted as in sim.Config.
	GapWritePeriod       uint64  `json:"gap_write_period,omitempty"`
	SRInnerRegions       uint64  `json:"sr_inner_regions,omitempty"`
	SGRegions            uint64  `json:"sg_regions,omitempty"`
	FreepReserveFraction float64 `json:"freep_reserve_fraction,omitempty"`
	LLSChunkPages        uint64  `json:"lls_chunk_pages,omitempty"`
	LLSSalvageGroups     uint64  `json:"lls_salvage_groups,omitempty"`
	LLSBackupFraction    float64 `json:"lls_backup_fraction,omitempty"`
	CacheKB              int     `json:"cache_kb,omitempty"`

	// SnapshotEvery is the metrics snapshot period in simulated writes
	// (0 defaults to Blocks).
	SnapshotEvery uint64 `json:"snapshot_every,omitempty"`

	// Workload drives the device's count-granularity write traffic.
	// Kind "" defaults to uniform; Blocks 0 defaults to the device's
	// Blocks; Seed 0 defaults to the device Seed.
	Workload trace.Spec `json:"workload,omitzero"`
}

// config resolves the spec into a sim.Config (without Observer). The
// mapping is deterministic: the same spec always yields the same
// Config, which the checkpoint configuration fingerprint depends on.
func (s DeviceSpec) config() (sim.Config, error) {
	cfg := sim.DefaultConfig()
	if s.Stack != "" {
		st, err := sim.LookupDeviceStack(s.Stack)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.ECC = st.ECC
		cfg.Leveler = st.Leveler
		cfg.Protector = st.Protector
		cfg.FreepReserveFraction = st.FreepReserveFraction
	} else {
		// Parse*Kind("") selects the sim defaults.
		var err error
		if cfg.Leveler, err = sim.ParseLevelerKind(s.Leveler); err != nil {
			return sim.Config{}, err
		}
		if cfg.Protector, err = sim.ParseProtectorKind(s.Protector); err != nil {
			return sim.Config{}, err
		}
		if cfg.ECC, err = sim.ParseECCKind(s.ECC); err != nil {
			return sim.Config{}, err
		}
	}
	if s.Stack != "" {
		// Explicit selectors override the stack's picks.
		if s.Leveler != "" {
			lv, err := sim.ParseLevelerKind(s.Leveler)
			if err != nil {
				return sim.Config{}, err
			}
			cfg.Leveler = lv
		}
		if s.Protector != "" {
			p, err := sim.ParseProtectorKind(s.Protector)
			if err != nil {
				return sim.Config{}, err
			}
			cfg.Protector = p
		}
		if s.ECC != "" {
			ecc, err := sim.ParseECCKind(s.ECC)
			if err != nil {
				return sim.Config{}, err
			}
			cfg.ECC = ecc
		}
	}
	setNZ := func(dst *uint64, v uint64) {
		if v != 0 {
			*dst = v
		}
	}
	setNZ(&cfg.Blocks, s.Blocks)
	setNZ(&cfg.BlocksPerPage, s.BlocksPerPage)
	setNZ(&cfg.Seed, s.Seed)
	setNZ(&cfg.GapWritePeriod, s.GapWritePeriod)
	setNZ(&cfg.SRInnerRegions, s.SRInnerRegions)
	setNZ(&cfg.SGRegions, s.SGRegions)
	setNZ(&cfg.LLSChunkPages, s.LLSChunkPages)
	setNZ(&cfg.LLSSalvageGroups, s.LLSSalvageGroups)
	setNZ(&cfg.SnapshotEvery, s.SnapshotEvery)
	if s.CellsPerBlock != 0 {
		cfg.CellsPerBlock = s.CellsPerBlock
	}
	if s.MeanEndurance != 0 {
		cfg.MeanEndurance = s.MeanEndurance
	}
	if s.LifetimeCoV != 0 {
		cfg.LifetimeCoV = s.LifetimeCoV
	}
	if s.FreepReserveFraction != 0 {
		cfg.FreepReserveFraction = s.FreepReserveFraction
	}
	if s.LLSBackupFraction != 0 {
		cfg.LLSBackupFraction = s.LLSBackupFraction
	}
	if s.CacheKB != 0 {
		cfg.CacheKB = s.CacheKB
	}
	return cfg, nil
}

// workload resolves the spec's workload declaration against the device
// geometry.
func (s DeviceSpec) workload(cfg sim.Config) trace.Spec {
	w := s.Workload
	if w.Kind == "" {
		w.Kind = trace.KindUniform
	}
	if w.Blocks == 0 {
		w.Blocks = cfg.Blocks
	}
	if w.PageBlocks == 0 {
		w.PageBlocks = cfg.BlocksPerPage
	}
	if w.Seed == 0 {
		w.Seed = cfg.Seed
	}
	return w
}

// buildEngine constructs the device's engine from its spec, with a
// fresh metrics observer attached. The result is a pure function of the
// spec: two calls yield engines whose checkpoint images agree byte for
// byte after the same write sequence.
func buildEngine(s DeviceSpec) (*sim.Engine, error) {
	cfg, err := s.config()
	if err != nil {
		return nil, err
	}
	gen, err := trace.NewFromSpec(s.workload(cfg))
	if err != nil {
		return nil, err
	}
	cfg.Observer = obs.NewMetrics()
	eng, err := sim.NewEngine(cfg, gen)
	if err != nil {
		return nil, fmt.Errorf("serve: building device engine: %w", err)
	}
	return eng, nil
}
