package drm

import "wlreviver/internal/ckpt"

// SaveState serializes the protector's mutable state: the page
// pairings, the free-frame pool (order matters — frames are taken by
// index) and counters.
func (d *DRM) SaveState(e *ckpt.Encoder) {
	e.MapU64(d.partner)
	e.U64s(d.freeFrames)
	e.U64(d.st.SoftwareWrites)
	e.U64(d.st.SoftwareReads)
	e.U64(d.st.RequestAccesses)
	e.U64(d.st.PagesPaired)
	e.U64(d.st.Repairings)
	e.Bool(d.st.Exposed)
	e.U64(d.st.LostWrites)
}

// LoadState restores state written by SaveState into a protector built
// over the identical layer stack.
func (d *DRM) LoadState(dec *ckpt.Decoder) error {
	partner := dec.MapU64()
	freeFrames := dec.U64s()
	var st Stats
	st.SoftwareWrites = dec.U64()
	st.SoftwareReads = dec.U64()
	st.RequestAccesses = dec.U64()
	st.PagesPaired = dec.U64()
	st.Repairings = dec.U64()
	st.Exposed = dec.Bool()
	st.LostWrites = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	d.partner = partner
	d.freeFrames = freeFrames
	d.st = st
	return nil
}
