// Fixture: observer-purity — a type implementing obs.Observer outside
// internal/obs and internal/stats must not assign package-level state or
// call engine mutators; embedding obs.Base (like real observers do) does
// not hide the implementing type from the type-aware check. A type that
// merely looks observer-ish is out of scope.
package sim

import (
	"wlreviver/internal/obs"
	"wlreviver/internal/pcm"
)

// droppedEvents is package-level state an impure observer leaks into.
var droppedEvents uint64

// failureLog is an observer with its own state (fine to mutate) plus
// two purity violations.
type failureLog struct {
	obs.Base
	count uint64
	dev   *pcm.Device
}

// BlockFailed mutates its own field (pure), a package-level counter
// (impure), and the engine (impure).
func (l *failureLog) BlockFailed(da, wear uint64) {
	l.count++
	droppedEvents++ // want observer-purity "assigns to package-level droppedEvents"
	l.dev.Write(da) // want observer-purity "calls engine mutator"
}

// Snapshot records why one impure site is exempt.
func (l *failureLog) Snapshot(s obs.Snapshot) {
	//lint:ignore observer-purity fixture demonstrates a justified suppression
	droppedEvents = s.Writes
}

// tally looks observer-ish but implements nothing: its package-level
// writes are the engine's business, not this rule's.
type tally struct{ total uint64 }

// BlockFailed alone does not satisfy obs.Observer, so neither write is
// a finding.
func (t *tally) BlockFailed(da, wear uint64) {
	droppedEvents++
	t.total++
}
