package wlreviver

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 10
	cfg.BlocksPerPage = 16
	cfg.MeanEndurance = 800
	cfg.GapWritePeriod = 20
	w, err := NewWorkload(WorkloadSpec{Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(300_000, nil)
	if sys.SurvivalRate() > 1 || sys.SurvivalRate() <= 0 {
		t.Errorf("survival %v out of range", sys.SurvivalRate())
	}
	if sys.UsableFraction() > 1 || sys.UsableFraction() < 0 {
		t.Errorf("usable %v out of range", sys.UsableFraction())
	}
	if sys.Writes() == 0 {
		t.Error("no writes serviced")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if _, err := NewWorkload(WorkloadSpec{Kind: WorkloadUniform, Blocks: 64, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := NewWorkload(WorkloadSpec{Kind: WorkloadSkewed, Blocks: 64, PageBlocks: 16, CoV: 5, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := NewWorkload(WorkloadSpec{Kind: WorkloadHammer, Blocks: 64, Targets: []uint64{1, 2}}); err != nil {
		t.Error(err)
	}
	if _, err := NewWorkload(WorkloadSpec{Kind: WorkloadBirthday, Blocks: 64, SetSize: 4, Burst: 100, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := NewWorkload(WorkloadSpec{Kind: "nope", Blocks: 64, PageBlocks: 16, Seed: 1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	names := BenchmarkNames()
	if len(names) != 8 {
		t.Errorf("benchmarks = %v", names)
	}
}

func TestExperimentFacade(t *testing.T) {
	s := TinyScale()
	t1, err := Table1(s)
	if err != nil || len(t1.Rows) != 8 {
		t.Fatalf("Table1: %v", err)
	}
	if !strings.Contains(t1.String(), "ocean") {
		t.Error("Table1 formatting")
	}
	// The heavier presets have dedicated shape tests in internal/sim;
	// here just confirm the facade compiles against their signatures.
	if _, err := Fig8(s, "ocean"); err != nil {
		t.Fatalf("Fig8: %v", err)
	}
}

func TestScalesDistinct(t *testing.T) {
	if TinyScale().Blocks >= BenchScale().Blocks || BenchScale().Blocks >= PaperScale().Blocks {
		t.Error("scales should be ordered tiny < bench < paper")
	}
}
