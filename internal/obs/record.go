package obs

// Recorder is an Observer that buffers every event it receives instead
// of acting on it, so a batch of events can be replayed later — in a
// caller-chosen order — into another Observer. The sharded engine gives
// each address-space shard its own Recorder: shard sub-simulations then
// run concurrently without sharing the user's observer, and at every
// batch-boundary merge the buffered events are replayed shard by shard
// in shard-index order, making the user-visible event stream independent
// of how the shards interleaved on the pool's goroutines.
//
// A Recorder is confined to one shard's simulation goroutine between
// merges and to the merging goroutine during Replay; it needs no
// locking, exactly like every other Observer.
type Recorder struct {
	events []event
	snaps  []Snapshot
}

// eventKind discriminates the buffered event payloads.
type eventKind uint8

const (
	evBlockFailed eventKind = iota
	evCellFailed
	evRevived
	evRemapCacheHit
	evRemapCacheMiss
	evGapMoved
	evRegionSwapped
	evDecoderRemapped
	evPageRelocated
	evPageRetired
	evSnapshot
)

// event is one buffered observation: two address/value words plus one
// small integer, interpreted per kind. Field order packs the struct to
// 24 bytes (a merge round at paper scale buffers millions of these).
type event struct {
	a, b uint64
	i    int32
	kind eventKind
}

// Rebase shifts shard-local identifiers into the enclosing chip's global
// spaces during Replay. A shard simulates device addresses, pages and
// leveler regions starting at zero; the sharded engine passes the
// shard's base offsets so the replayed stream reads as one chip.
type Rebase struct {
	// DA is added to every device address (block failures, cell
	// failures, revives, gap and swap addresses, remap-cache keys).
	DA uint64
	// Page is added to every OS page number.
	Page uint64
	// Region is added to every leveler region index.
	Region int
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards the buffered events, keeping capacity.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.snaps = r.snaps[:0]
}

// Replay delivers the buffered events to o in recording order, rebasing
// shard-local identifiers through rb. The buffer is left intact; callers
// pair Replay with Reset.
func (r *Recorder) Replay(o Observer, rb Rebase) {
	for _, e := range r.events {
		switch e.kind {
		case evBlockFailed:
			o.BlockFailed(e.a+rb.DA, e.b)
		case evCellFailed:
			o.CellFailed(e.a+rb.DA, int(e.i))
		case evRevived:
			o.Revived(e.a+rb.DA, e.b+rb.DA)
		case evRemapCacheHit:
			o.RemapCacheHit(e.a + rb.DA)
		case evRemapCacheMiss:
			o.RemapCacheMiss(e.a + rb.DA)
		case evGapMoved:
			o.GapMoved(int(e.i)+rb.Region, e.a+rb.DA)
		case evRegionSwapped:
			o.RegionSwapped(e.a+rb.DA, e.b+rb.DA)
		case evDecoderRemapped:
			o.DecoderRemapped(e.a+rb.DA, e.b+rb.DA)
		case evPageRelocated:
			o.PageRelocated(e.a+rb.Page, e.b+rb.Page)
		case evPageRetired:
			o.PageRetired(e.a + rb.Page)
		case evSnapshot:
			o.Snapshot(r.snaps[e.i])
		}
	}
}

// BlockFailed implements Observer.
func (r *Recorder) BlockFailed(da uint64, wear uint64) {
	r.events = append(r.events, event{kind: evBlockFailed, a: da, b: wear})
}

// CellFailed implements Observer.
func (r *Recorder) CellFailed(da uint64, failedCells int) {
	r.events = append(r.events, event{kind: evCellFailed, a: da, i: int32(failedCells)})
}

// Revived implements Observer.
func (r *Recorder) Revived(da uint64, shadowPA uint64) {
	r.events = append(r.events, event{kind: evRevived, a: da, b: shadowPA})
}

// RemapCacheHit implements Observer.
func (r *Recorder) RemapCacheHit(key uint64) {
	r.events = append(r.events, event{kind: evRemapCacheHit, a: key})
}

// RemapCacheMiss implements Observer.
func (r *Recorder) RemapCacheMiss(key uint64) {
	r.events = append(r.events, event{kind: evRemapCacheMiss, a: key})
}

// GapMoved implements Observer.
func (r *Recorder) GapMoved(region int, gapDA uint64) {
	r.events = append(r.events, event{kind: evGapMoved, a: gapDA, i: int32(region)})
}

// RegionSwapped implements Observer.
func (r *Recorder) RegionSwapped(a, b uint64) {
	r.events = append(r.events, event{kind: evRegionSwapped, a: a, b: b})
}

// DecoderRemapped implements Observer.
func (r *Recorder) DecoderRemapped(a, b uint64) {
	r.events = append(r.events, event{kind: evDecoderRemapped, a: a, b: b})
}

// PageRelocated implements Observer.
func (r *Recorder) PageRelocated(oldFrame, newFrame uint64) {
	r.events = append(r.events, event{kind: evPageRelocated, a: oldFrame, b: newFrame})
}

// PageRetired implements Observer.
func (r *Recorder) PageRetired(page uint64) {
	r.events = append(r.events, event{kind: evPageRetired, a: page})
}

// Snapshot implements Observer. Snapshots carry no addresses, so Replay
// forwards them unrebased.
func (r *Recorder) Snapshot(s Snapshot) {
	r.events = append(r.events, event{kind: evSnapshot, i: int32(len(r.snaps))})
	r.snaps = append(r.snaps, s)
}

var _ Observer = (*Recorder)(nil)
