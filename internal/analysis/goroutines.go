package analysis

import (
	"go/ast"
	"strings"
)

// goroutineFiles are the only non-test files allowed to start
// goroutines: the worker pool that fans experiments out across engines,
// the shard scheduler that fans one engine's address-space shards out
// within a batch, the fleet daemon's per-device actor spawner, and the
// two serving binaries (HTTP listener and load generator). Each keeps
// determinism a different way: the sim pools merge results in a
// deterministic order after a barrier; the fleet actor is the sole
// toucher of its device's engine, so every simulation still runs
// single-threaded; the binaries only orchestrate I/O around those.
var goroutineFiles = []string{
	"internal/sim/runner.go",
	"internal/sim/shardpool.go",
	"internal/serve/actor.go",
	"cmd/wlserved/main.go",
	"cmd/wlload/main.go",
}

// ConfinedGoroutines bans `go` statements outside the allowlisted
// scheduler/actor files and _test.go files. All concurrency flows
// through those files, whose ordered merges (sim pools) or exclusive
// per-device ownership (serve actors) are what keep concurrent output
// byte-identical to a serial run; an ad-hoc goroutine anywhere else can
// reorder writes into shared results and break that equivalence in ways
// the race detector only catches probabilistically.
type ConfinedGoroutines struct{}

// Name implements Rule.
func (*ConfinedGoroutines) Name() string { return "confined-goroutines" }

// Doc implements Rule.
func (*ConfinedGoroutines) Doc() string {
	return "go statements are confined to " + strings.Join(goroutineFiles, ", ") + " and _test.go files"
}

// Check implements Rule.
func (*ConfinedGoroutines) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.IsTest() {
		return
	}
	for _, allowed := range goroutineFiles {
		if f.Path == allowed {
			return
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			report(g, "go statement outside %s: route concurrency through the sim pools or the serve actor spawner", strings.Join(goroutineFiles, ", "))
		}
		return true
	})
}
