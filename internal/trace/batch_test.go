package trace

import (
	"bytes"
	"math"
	"testing"

	"wlreviver/internal/rng"
)

// batchEquivCases builds, for each generator kind, a factory producing an
// identically seeded fresh instance — two instances of the same case must
// emit identical streams.
func batchEquivCases(t *testing.T) map[string]func() BatchGenerator {
	t.Helper()
	const n = 1 << 10
	newWeighted := func(mix float64) func() BatchGenerator {
		return func() BatchGenerator {
			g, err := NewWeighted(WeightedConfig{
				NumBlocks: n, TargetCoV: 2.5, UniformMix: mix, Seed: 77,
			})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
	}
	// A recorded trace with a length that does not divide the batch size,
	// exercising Replay's wraparound copies.
	var buf bytes.Buffer
	{
		g, err := NewUniform(n, 13)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(&buf, g, 777); err != nil {
			t.Fatal(err)
		}
	}
	recording := buf.Bytes()
	return map[string]func() BatchGenerator{
		"weighted":     newWeighted(0),
		"weighted-mix": newWeighted(0.3),
		"uniform": func() BatchGenerator {
			g, err := NewUniform(n, 21)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"hammer": func() BatchGenerator {
			g, err := NewHammer(n, []uint64{3, 9, 4, 1, 500, 3, 7})
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"birthday": func() BatchGenerator {
			g, err := NewBirthdayParadox(n, 16, 100, 5)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"replay": func() BatchGenerator {
			g, err := ReadTrace(bytes.NewReader(recording), "rec")
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
}

// TestNextBatchMatchesNext pins the batch fast path to the one-at-a-time
// stream for every generator, across uneven chunk sizes (including chunks
// larger than a Replay recording).
func TestNextBatchMatchesNext(t *testing.T) {
	const total = 4096
	chunks := []int{1, 7, 64, 512, 1000}
	for name, mk := range batchEquivCases(t) {
		serial := mk()
		batched := mk()
		want := make([]uint64, total)
		for i := range want {
			want[i] = serial.Next()
		}
		got := make([]uint64, 0, total)
		buf := make([]uint64, 1000)
		for ci := 0; len(got) < total; ci++ {
			c := chunks[ci%len(chunks)]
			if rem := total - len(got); c > rem {
				c = rem
			}
			batched.NextBatch(buf[:c])
			got = append(got, buf[:c]...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: write %d: batch %d, serial %d", name, i, got[i], want[i])
			}
		}
	}
}

// calibrateWeightsRef is the pre-optimization implementation (separate
// expAt allocation + two-pass covOf per bisection probe), kept verbatim as
// the reference the fused version must match bit for bit.
func calibrateWeightsRef(logW []float64, targetCoV float64) []float64 {
	maxLog := logW[0]
	for _, l := range logW {
		if l > maxLog {
			maxLog = l
		}
	}
	expAt := func(alpha float64) []float64 {
		w := make([]float64, len(logW))
		for i, l := range logW {
			w[i] = math.Exp(alpha * (l - maxLog))
		}
		return w
	}
	covOf := func(w []float64) float64 {
		var mean float64
		for _, x := range w {
			mean += x
		}
		mean /= float64(len(w))
		var m2 float64
		for _, x := range w {
			d := x - mean
			m2 += d * d
		}
		if mean == 0 {
			return 0
		}
		return math.Sqrt(m2/float64(len(w))) / mean
	}
	if targetCoV == 0 {
		return expAt(0)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60 && covOf(expAt(hi)) < targetCoV; i++ {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if covOf(expAt(mid)) < targetCoV {
			lo = mid
		} else {
			hi = mid
		}
	}
	return expAt(hi)
}

// TestCalibrateWeightsPinned requires the fused scratch-buffer calibration
// to reproduce the reference implementation's weights bit for bit.
func TestCalibrateWeightsPinned(t *testing.T) {
	src := rng.New(31337)
	for _, size := range []int{1, 63, 4096} {
		logW := make([]float64, size)
		for i := range logW {
			logW[i] = src.NormFloat64()
		}
		for _, target := range []float64{0, 0.2, 1.15, 2.54, 9.77, 100} {
			got := expWeights(logW, calibrateAlpha(logW, target))
			want := calibrateWeightsRef(logW, target)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("size %d target %g: weight %d = %x, want %x",
						size, target, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func newBenchAlias(b *testing.B, n int) *Alias {
	b.Helper()
	src := rng.New(9)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = src.ExpFloat64()
	}
	a, err := NewAlias(weights, src.Fork(1))
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAliasSample measures the single-draw per-call path.
func BenchmarkAliasSample(b *testing.B) {
	a := newBenchAlias(b, 1<<16)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += a.Sample()
	}
	traceBenchSink = sink
}

// BenchmarkAliasBatch measures bulk sampling through SampleBatch.
func BenchmarkAliasBatch(b *testing.B) {
	a := newBenchAlias(b, 1<<16)
	buf := make([]uint64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(buf) {
		a.SampleBatch(buf)
	}
	traceBenchSink = buf[0]
}

var traceBenchSink uint64
