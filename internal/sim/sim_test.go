package sim

import (
	"strings"
	"testing"

	"wlreviver/internal/trace"
)

func tinyEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	s := TinyScale()
	cfg := s.config()
	if mutate != nil {
		mutate(&cfg)
	}
	gen, err := trace.NewUniform(cfg.Blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	gen, _ := trace.NewUniform(64, 1)
	if _, err := NewEngine(Config{}, gen); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.Blocks = 128 // mismatch with generator
	if _, err := NewEngine(cfg, gen); err == nil {
		t.Error("workload/system size mismatch accepted")
	}
}

func TestEngineVariantsConstruct(t *testing.T) {
	for _, lv := range []LevelerKind{LevelerNone, LevelerStartGap, LevelerSecurityRefresh, LevelerRegionedStartGap} {
		for _, prot := range []ProtectorKind{ProtectorNone, ProtectorWLReviver, ProtectorFREEp, ProtectorLLS, ProtectorDRM} {
			for _, e := range []ECCKind{ECCECP6, ECCECP1, ECCPAYG} {
				lv, prot, e := lv, prot, e
				eng := tinyEngine(t, func(c *Config) {
					c.Leveler = lv
					c.Protector = prot
					c.ECC = e
					c.FreepReserveFraction = 0.05
					c.CacheKB = 4
				})
				if eng.Run(500, nil) != 500 {
					t.Errorf("leveler=%v prot=%v ecc=%v: fresh system could not run 500 writes", lv, prot, e)
				}
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[string]string{
		LevelerStartGap.String():         "SG",
		LevelerSecurityRefresh.String():  "SR",
		LevelerRegionedStartGap.String(): "SG-R",
		LevelerNone.String():             "none",
		ProtectorWLReviver.String():      "WLR",
		ProtectorFREEp.String():          "FREE-p",
		ProtectorLLS.String():            "LLS",
		ProtectorDRM.String():            "DRM",
		ProtectorNone.String():           "none",
		ECCECP6.String():                 "ECP6",
		ECCECP1.String():                 "ECP1",
		ECCPAYG.String():                 "PAYG",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	e := tinyEngine(t, nil)
	e.Run(1000, nil)
	if e.Writes() != 1000 {
		t.Errorf("writes = %d", e.Writes())
	}
	if wpb := e.WritesPerBlock(); wpb <= 0 || wpb > 1 {
		t.Errorf("writes/block = %v", wpb)
	}
	if e.SurvivalRate() != 1 {
		t.Error("no failures expected yet")
	}
	if e.UsableFraction() != 1 {
		t.Error("usable should be 1")
	}
	if e.Crippled() || e.Stopped() {
		t.Error("fresh system neither crippled nor stopped")
	}
	if _, ok := e.Reviver(); !ok {
		t.Error("default protector is the reviver")
	}
	if e.Device() == nil || e.OS() == nil || e.Protector() == nil || e.Leveler() == nil {
		t.Error("accessors returned nil")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		e := tinyEngine(t, nil)
		e.Run(400_000, nil)
		return e.Device().DeadBlocks(), e.UsableFraction()
	}
	d1, u1 := run()
	d2, u2 := run()
	if d1 != d2 || u1 != u2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", d1, u1, d2, u2)
	}
	if d1 == 0 {
		t.Error("expected failures at tiny endurance")
	}
}

// TestRunNMatchesStepAtTerminalStop guards the LLS terminal path:
// writeTagged sets stopped while reporting the crippling write as
// serviced, and RunN must halt its batch right there, exactly as a
// Step-driven loop does (regression: RunN once checked stopped only at
// entry and ran up to checkEvery-1 writes past the terminal stop).
func TestRunNMatchesStepAtTerminalStop(t *testing.T) {
	build := func() *Engine {
		return tinyEngine(t, func(c *Config) { c.Protector = ProtectorLLS })
	}
	const budget uint64 = 2_000_000

	step := build()
	var stepWrites uint64
	for stepWrites < budget && step.Step() {
		stepWrites++
	}
	if !step.Stopped() {
		t.Fatalf("LLS engine still running after %d writes; terminal path not exercised", budget)
	}

	batched := build()
	var batchWrites uint64
	for batchWrites < budget {
		n := budget - batchWrites
		if n > checkEvery {
			n = checkEvery
		}
		done := batched.RunN(n)
		batchWrites += done
		if done < n {
			break
		}
	}

	if stepWrites != batchWrites || step.Writes() != batched.Writes() {
		t.Errorf("Step loop serviced %d (engine count %d); RunN batches serviced %d (engine count %d)",
			stepWrites, step.Writes(), batchWrites, batched.Writes())
	}
	if !batched.Stopped() {
		t.Error("RunN-driven engine not stopped")
	}
	if d1, d2 := step.Device().DeadBlocks(), batched.Device().DeadBlocks(); d1 != d2 {
		t.Errorf("device wear diverged: %d vs %d dead blocks", d1, d2)
	}
}

func TestAccessRatioTracked(t *testing.T) {
	e := tinyEngine(t, func(c *Config) { c.CacheKB = 4 })
	e.Run(300_000, nil)
	r := e.AccessRatio()
	if r < 1 || r > 2 {
		t.Errorf("access ratio %v outside [1,2]", r)
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.MeasuredCoV <= 0 {
			t.Errorf("%s: measured CoV %v", r.Name, r.MeasuredCoV)
		}
	}
	// Low-CoV benchmarks must calibrate tightly; mg saturates at tiny
	// scale (the sample CoV ceiling is sqrt(n-1)) but must stay extreme.
	ocean := byName["ocean"]
	if ocean.MeasuredCoV < 3 || ocean.MeasuredCoV > 5.5 {
		t.Errorf("ocean CoV %v, want ~4.15", ocean.MeasuredCoV)
	}
	if mg := byName["mg"]; mg.MeasuredCoV < 4*ocean.MeasuredCoV {
		t.Errorf("mg CoV %v should dwarf ocean's %v", mg.MeasuredCoV, ocean.MeasuredCoV)
	}
	if !strings.Contains(res.String(), "mg") {
		t.Error("formatting lost rows")
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var minGain, maxNo, minNo = 1e18, 0.0, 1e18
	var maxWLR, minWLR = 0.0, 1e18
	for _, r := range res.Rows {
		if r.LifetimeWLR <= r.LifetimeNoWLR {
			t.Errorf("%s: WLR lifetime %v <= baseline %v", r.Benchmark, r.LifetimeWLR, r.LifetimeNoWLR)
		}
		if r.ImprovementPct < minGain {
			minGain = r.ImprovementPct
		}
		if r.LifetimeNoWLR > maxNo {
			maxNo = r.LifetimeNoWLR
		}
		if r.LifetimeNoWLR < minNo {
			minNo = r.LifetimeNoWLR
		}
		if r.LifetimeWLR > maxWLR {
			maxWLR = r.LifetimeWLR
		}
		if r.LifetimeWLR < minWLR {
			minWLR = r.LifetimeWLR
		}
	}
	if minGain < 20 {
		t.Errorf("smallest WLR gain %v%%; paper reports 36%%-325%%", minGain)
	}
	// WLR flattens CoV sensitivity: lifetime spread shrinks.
	if maxWLR/minWLR >= maxNo/minNo {
		t.Errorf("WLR spread %v should be below baseline spread %v",
			maxWLR/minWLR, maxNo/minNo)
	}
}

func TestFig6Shapes(t *testing.T) {
	for _, w := range []string{"ocean", "mg"} {
		res, err := Fig6(TinyScale(), w)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Curves) != 6 {
			t.Fatalf("curves = %d", len(res.Curves))
		}
		life := map[string]float64{}
		for _, c := range res.Curves {
			life[c.Name] = c.Points[len(c.Points)-1].X
		}
		if life["ECP6-SG-WLR"] <= life["ECP6-SG"] {
			t.Errorf("%s: ECP6-SG-WLR lifetime %v <= ECP6-SG %v", w, life["ECP6-SG-WLR"], life["ECP6-SG"])
		}
		if life["PAYG-SG-WLR"] <= life["PAYG"] {
			t.Errorf("%s: PAYG-SG-WLR lifetime %v <= PAYG %v", w, life["PAYG-SG-WLR"], life["PAYG"])
		}
		if !strings.Contains(res.String(), "ECP6-SG-WLR") {
			t.Error("formatting lost curves")
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := Fig7(TinyScale(), "mg")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 5 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	byName := map[string]int{}
	for i, c := range res.Curves {
		byName[c.Name] = i
	}
	// FREE-p starts below 1 by its reservation.
	f15 := res.Curves[byName["FREE-p(15%)"]]
	if f15.Points[0].Y > 0.87 || f15.Points[0].Y < 0.83 {
		t.Errorf("FREE-p(15%%) starts at %v, want ~0.85", f15.Points[0].Y)
	}
	// WLR keeps 100% before the first failure and outlasts every FREE-p.
	wlr := res.Curves[byName["WL-Reviver"]]
	if wlr.Points[0].Y != 1 {
		t.Error("WLR must start fully usable")
	}
	wlrLife := wlr.Points[len(wlr.Points)-1].X
	for name, i := range byName {
		if name == "WL-Reviver" {
			continue
		}
		c := res.Curves[i]
		if end := c.Points[len(c.Points)-1].X; end >= wlrLife {
			t.Errorf("%s outlived WL-Reviver: %v >= %v", name, end, wlrLife)
		}
	}
	// Under skewed mg, larger reservations survive longer (paper §IV-C).
	ends := func(name string) float64 {
		c := res.Curves[byName[name]]
		return c.Points[len(c.Points)-1].X
	}
	if ends("FREE-p(15%)") <= ends("FREE-p(0%)") {
		t.Errorf("15%% reserve (%v) should outlast 0%% (%v) under mg",
			ends("FREE-p(15%)"), ends("FREE-p(0%)"))
	}
}

func TestFig8Shapes(t *testing.T) {
	res, err := Fig8(TinyScale(), "mg")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	wlr, llsCurve := res.Curves[0], res.Curves[1]
	if wlr.Name != "WL-Reviver" || llsCurve.Name != "LLS" {
		t.Fatalf("unexpected curve names %q %q", wlr.Name, llsCurve.Name)
	}
	wlrEnd := wlr.Points[len(wlr.Points)-1].X
	llsEnd := llsCurve.Points[len(llsCurve.Points)-1].X
	if llsEnd >= wlrEnd {
		t.Errorf("LLS sustained %v writes/block, WLR %v; WLR should win", llsEnd, wlrEnd)
	}
	// At LLS's half-life point, WLR must retain more usable space.
	x := llsEnd / 2
	if wlr.YAt(x) <= llsCurve.YAt(x) {
		t.Errorf("at %v writes/block WLR usable %v <= LLS %v", x, wlr.YAt(x), llsCurve.YAt(x))
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(TinyScale(), []string{"ocean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	space := map[string]map[float64]float64{"LLS": {}, "WL-Reviver": {}}
	for _, c := range res.Cells {
		if c.AccessTime < 0.99 || c.AccessTime > 2 {
			t.Errorf("%s@%v%%: access time %v implausible", c.Scheme, c.FailureRatio*100, c.AccessTime)
		}
		if c.Reached {
			space[c.Scheme][c.FailureRatio] = c.UsableSpacePct
		}
	}
	for ratio, wlrSpace := range space["WL-Reviver"] {
		if llsSpace, ok := space["LLS"][ratio]; ok && wlrSpace <= llsSpace {
			t.Errorf("at %v%% failures WLR space %v%% <= LLS %v%%", ratio*100, wlrSpace, llsSpace)
		}
	}
	if !strings.Contains(res.String(), "WL-Reviver") {
		t.Error("formatting lost cells")
	}
}

func TestAttacksShapes(t *testing.T) {
	res, err := Attacks(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	cost := map[string]map[string]float64{}
	for _, r := range res.Rows {
		if cost[r.Attack] == nil {
			cost[r.Attack] = map[string]float64{}
		}
		cost[r.Attack][r.Scheme] = r.LifetimeWPB
	}
	for attack, byScheme := range cost {
		if byScheme["ECP6-SG-WLR"] <= byScheme["ECP6-SG"] {
			t.Errorf("%s: WLR cost %v should exceed baseline %v",
				attack, byScheme["ECP6-SG-WLR"], byScheme["ECP6-SG"])
		}
	}
	if !strings.Contains(res.String(), "hammer-1") {
		t.Error("formatting lost rows")
	}
}

// End-to-end data integrity through the engine: every virtual block
// reads back the last tag written to it, across failures, retirements
// and migrations. (The reviver package proves this at the PA level; this
// covers the OS translation layer on top.)
func TestEngineContentIntegrity(t *testing.T) {
	s := TinyScale()
	cfg := s.config()
	cfg.Blocks = 512
	cfg.BlocksPerPage = 16
	cfg.MeanEndurance = 400
	cfg.TrackContent = true
	gen, err := trace.NewUniform(cfg.Blocks, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	// Expectations are keyed by physical address: after the OS folds a
	// retired page's virtual page onto a donor, two virtual blocks can
	// legitimately share one PA (last write wins), and a retirement also
	// relocates data between PAs — so expectations reset whenever a page
	// retires and rebuild from subsequent writes. PA-level integrity
	// through relocation itself is proven in the reviver's harness.
	expected := make(map[uint64]uint64) // pa -> tag
	vblocks := make(map[uint64]uint64)  // pa -> a vblock currently translating to it
	src, _ := trace.NewUniform(cfg.Blocks, 10)
	var tag uint64
	for i := 0; i < 300_000; i++ {
		v := src.Next()
		tag++
		before := e.OS().RetiredPages()
		if !e.WriteTagged(v, tag) {
			break
		}
		if e.OS().RetiredPages() != before {
			expected = make(map[uint64]uint64)
			vblocks = make(map[uint64]uint64)
		}
		if pa, ok := e.OS().Translate(v); ok {
			expected[pa] = tag
			vblocks[pa] = v
		}
		if i%10_000 == 0 {
			if rv, ok := e.Reviver(); ok && rv.HasPending() {
				continue
			}
			for pa, want := range expected {
				vb := vblocks[pa]
				cur, ok := e.OS().Translate(vb)
				if !ok {
					t.Fatal("translate failed on live memory")
				}
				if cur != pa {
					continue // translation moved; expectation stale
				}
				got, ok := e.Read(vb)
				if !ok {
					t.Fatal("read failed on live memory")
				}
				if got != want {
					t.Fatalf("PA %d (vblock %d) reads %d, want %d (iteration %d)", pa, vb, got, want, i)
				}
			}
		}
	}
	if e.Device().DeadBlocks() == 0 {
		t.Error("test never exercised failures")
	}
}
