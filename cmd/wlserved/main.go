// Command wlserved hosts a fleet of simulated PCM devices behind an
// HTTP/JSON API — one tenant per device, thousands of devices per
// process. Devices are paged between memory and the spill directory
// under an LRU budget, and every acknowledged write batch is durable
// before the response leaves the process: kill -9 the daemon, restart
// it over the same spill directory, and every device resumes
// byte-identical to an uninterrupted run.
//
// Example:
//
//	wlserved -addr :8080 -spill /var/lib/wlserved -max-resident 256
//
// See EXPERIMENTS.md § wlserved for the API and durability contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"wlreviver/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wlserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		spill       = flag.String("spill", "", "spill directory for device state (required)")
		maxDevices  = flag.Int("max-devices", 0, "device capacity (0 = unlimited)")
		maxResident = flag.Int("max-resident", 64, "in-memory engine budget (LRU)")
		mailbox     = flag.Int("mailbox", 32, "per-device request queue bound")
		batch       = flag.Uint64("batch", 1<<16, "write-servicing round size")
		ckptEvery   = flag.Uint64("ckpt-every", 1<<18, "durability checkpoint period in acked writes per device")
		noSync      = flag.Bool("no-sync", false, "skip fsync (forfeits the kill -9 durability contract)")
	)
	flag.Parse()
	if *spill == "" {
		return errors.New("-spill is required")
	}

	fleet, err := serve.Open(serve.Config{
		Dir:             *spill,
		MaxDevices:      *maxDevices,
		MaxResident:     *maxResident,
		MailboxDepth:    *mailbox,
		BatchWrites:     *batch,
		CheckpointEvery: *ckptEvery,
		DisableSync:     *noSync,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fleet.Close()
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(fleet)}

	// Serve until SIGINT/SIGTERM, then drain the listener and park the
	// fleet (checkpoint every resident device) so the next start needs
	// no journal replay.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	h := fleet.Health()
	fmt.Printf("wlserved: listening on %s (spill %s, %d devices recovered)\n", ln.Addr(), *spill, h.Devices)

	var serveErr error
	select {
	case sig := <-sigc:
		fmt.Printf("wlserved: %v, shutting down\n", sig)
		serveErr = srv.Shutdown(context.Background())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			serveErr = err
		}
	}
	if err := fleet.Close(); err != nil && serveErr == nil {
		serveErr = err
	}
	return serveErr
}
