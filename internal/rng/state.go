package rng

// State returns the generator's internal state words, for checkpointing.
// Restoring them with SetState reproduces the exact output stream from
// this point.
func (r *Source) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with words captured
// by State. An all-zero state is invalid for xoshiro256** and is coerced
// to the same fallback New uses, so a corrupt checkpoint cannot wedge
// the generator.
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9E3779B97F4A7C15
	}
	r.s = s
}
