package serve

import (
	"fmt"
	"os"
)

// This file is the only place in the package that launches goroutines
// (the wlvet confined-goroutines rule allowlists it), keeping the
// fleet's concurrency topology auditable in one screen: exactly one
// actor goroutine per registered device, joined by Fleet.Close through
// the WaitGroup. The actor is the sole code that ever touches a
// device's engine or journal, so the simulation itself runs
// single-threaded per device — determinism needs no engine-level
// locking.

// spawn starts the device's actor.
func (f *Fleet) spawn(d *device) {
	f.wg.Add(1)
	go f.runActor(d)
}

// runActor serialises a device's requests: receive, service against
// the checked-out engine, reply. It exits on fleet shutdown or device
// deletion.
func (f *Fleet) runActor(d *device) {
	defer f.wg.Done()
	for {
		select {
		case <-f.quit:
			f.mu.Lock()
			f.drainLocked(d, ErrClosed)
			f.mu.Unlock()
			return
		case r := <-d.mbox:
			if r.op == opDelete {
				f.handleDelete(d, r)
				return
			}
			f.serveRequest(d, r)
		}
	}
}

// handleDelete tears the device down from inside its own actor:
// unregister (so no further requests are admitted), answer the queued
// backlog, discard the engine without a checkpoint, and remove the
// spill directory.
func (f *Fleet) handleDelete(d *device, r *request) {
	f.mu.Lock()
	d.deleted = true
	delete(f.devices, d.id)
	res := f.resident[d.id]
	delete(f.resident, d.id)
	// Releasing disk ownership makes any in-flight spill of an evicted
	// predecessor a no-op, so it cannot recreate files after the
	// removal below.
	d.cur = nil
	f.drainLocked(d, fmt.Errorf("serve: device %q: %w", d.id, ErrUnknownDevice))
	f.mu.Unlock()

	// diskMu orders the removal after any in-flight spill of this
	// device (evictions run on other actors' goroutines).
	d.diskMu.Lock()
	if res != nil {
		_ = res.jl.close()
	}
	err := os.RemoveAll(d.dir)
	if err == nil && !f.cfg.DisableSync {
		// Sync the fleet directory so the acknowledged deletion
		// survives a crash — otherwise the device's spec.json could
		// reappear and be re-registered by the next Open.
		err = syncDir(f.cfg.Dir)
	}
	d.diskMu.Unlock()
	r.reply <- response{err: err}
}
