package ckpt

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// fuzzValues parses one value of every field kind out of the fuzz
// input, so the round-trip covers the full encoder surface with
// attacker-chosen values and lengths.
type fuzzValues struct {
	u8   uint8
	u16  uint16
	u32  uint32
	u64  uint64
	i64  int64
	f64  float64
	b    bool
	str  string
	u64s []uint64
	m    map[uint64]uint64
	set  map[uint64]struct{}
}

func parseFuzzValues(data []byte) fuzzValues {
	r := bytes.NewReader(data)
	next := func(n int) []byte {
		buf := make([]byte, n)
		r.Read(buf) // zero-padded at EOF, which is fine for fuzzing
		return buf
	}
	v := fuzzValues{
		u8:  next(1)[0],
		u16: binary.LittleEndian.Uint16(next(2)),
		u32: binary.LittleEndian.Uint32(next(4)),
		u64: binary.LittleEndian.Uint64(next(8)),
		i64: int64(binary.LittleEndian.Uint64(next(8))),
		f64: math.Float64frombits(binary.LittleEndian.Uint64(next(8))),
		b:   next(1)[0]&1 == 1,
	}
	v.str = string(next(int(next(1)[0]) % 64))
	n := int(next(1)[0]) % 32
	v.u64s = make([]uint64, n)
	for i := range v.u64s {
		v.u64s[i] = binary.LittleEndian.Uint64(next(8))
	}
	v.m = make(map[uint64]uint64)
	v.set = make(map[uint64]struct{})
	for i := 0; i < int(next(1)[0])%16; i++ {
		k := binary.LittleEndian.Uint64(next(8))
		v.m[k] = binary.LittleEndian.Uint64(next(8))
		v.set[k>>1] = struct{}{}
	}
	return v
}

// FuzzCheckpointRoundTrip encodes fuzz-chosen values through every
// field writer and requires the decoder to return them exactly, the
// re-encode to be byte-identical, and Close to account for every byte.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("checkpoint round trip seed"))
	f.Add(bytes.Repeat([]byte{0xFF}, 256))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := parseFuzzValues(data)
		// NaN never compares equal; normalise so the equality check below
		// stays meaningful (the bit pattern still round-trips — the
		// deterministic-encode check covers it).
		if math.IsNaN(v.f64) {
			v.f64 = 0
		}

		encode := func() []byte {
			enc := NewEncoder()
			enc.Begin("fuzz")
			enc.U8(v.u8)
			enc.U16(v.u16)
			enc.U32(v.u32)
			enc.U64(v.u64)
			enc.I64(v.i64)
			enc.F64(v.f64)
			enc.Bool(v.b)
			enc.String(v.str)
			enc.U64s(v.u64s)
			enc.MapU64(v.m)
			enc.SetU64(v.set)
			enc.End()
			return enc.Finish()
		}
		blob := encode()
		if !bytes.Equal(blob, encode()) {
			t.Fatal("encoding is not deterministic")
		}

		d, err := NewDecoder(blob)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if err := d.Section("fuzz"); err != nil {
			t.Fatal(err)
		}
		if got := d.U8(); got != v.u8 {
			t.Fatalf("u8: got %d want %d", got, v.u8)
		}
		if got := d.U16(); got != v.u16 {
			t.Fatalf("u16: got %d want %d", got, v.u16)
		}
		if got := d.U32(); got != v.u32 {
			t.Fatalf("u32: got %d want %d", got, v.u32)
		}
		if got := d.U64(); got != v.u64 {
			t.Fatalf("u64: got %d want %d", got, v.u64)
		}
		if got := d.I64(); got != v.i64 {
			t.Fatalf("i64: got %d want %d", got, v.i64)
		}
		if got := d.F64(); got != v.f64 {
			t.Fatalf("f64: got %v want %v", got, v.f64)
		}
		if got := d.Bool(); got != v.b {
			t.Fatalf("bool: got %v want %v", got, v.b)
		}
		if got := d.String(); got != v.str {
			t.Fatalf("string: got %q want %q", got, v.str)
		}
		u64s := d.U64s()
		if len(u64s) != len(v.u64s) {
			t.Fatalf("u64s: got %d elems want %d", len(u64s), len(v.u64s))
		}
		for i := range u64s {
			if u64s[i] != v.u64s[i] {
				t.Fatalf("u64s[%d]: got %d want %d", i, u64s[i], v.u64s[i])
			}
		}
		m := d.MapU64()
		if len(m) != len(v.m) {
			t.Fatalf("map: got %d entries want %d", len(m), len(v.m))
		}
		for k, val := range v.m {
			if m[k] != val {
				t.Fatalf("map[%d]: got %d want %d", k, m[k], val)
			}
		}
		set := d.SetU64()
		if len(set) != len(v.set) {
			t.Fatalf("set: got %d entries want %d", len(set), len(v.set))
		}
		for k := range v.set {
			if _, ok := set[k]; !ok {
				t.Fatalf("set missing %d", k)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// FuzzDecoderNeverPanics feeds raw attacker bytes straight into the
// decoder: every outcome except a clean error (or a faithful read) is a
// bug, and the allocation guard must hold memory at bay.
func FuzzDecoderNeverPanics(f *testing.F) {
	valid := func() []byte {
		enc := NewEncoder()
		enc.Begin("s")
		enc.U64(42)
		enc.U64s([]uint64{1, 2, 3})
		enc.End()
		return enc.Finish()
	}()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("WLCK\x01\x00\x00\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		if err := d.Section("s"); err != nil {
			return
		}
		d.U64()
		d.U64s()
		d.MapU64()
		d.SkipRest()
		_ = d.Close()
	})
}
