// Fixture: stand-in for the real deterministic generator so the fixture
// tree type-checks; the type-aware rules resolve it exactly like the
// real package.
package rng

// Source is a stand-in seeded generator.
type Source struct{ s uint64 }

// New returns a seeded source.
func New(seed uint64) *Source { return &Source{s: seed} }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.s = s.s*6364136223846793005 + 1442695040888963407
	return s.s
}

// State exposes the stream position for checkpointing.
func (s *Source) State() uint64 { return s.s }

// SetState restores the stream position.
func (s *Source) SetState(v uint64) { s.s = v }
