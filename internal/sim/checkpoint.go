package sim

import (
	"errors"
	"fmt"

	"wlreviver/internal/ckpt"
)

// ErrCrashed is returned by checkpoint-aware runners when an injected
// crash fault (CrashAfter, or a CheckpointPlan crash budget) halts the
// run. A crashed run's in-memory results are discarded — exactly like a
// process kill — and a subsequent run with Resume set converges to the
// uninterrupted result.
var ErrCrashed = errors.New("sim: run halted by injected crash fault")

// ckptSaver and ckptLoader are the per-layer checkpoint interfaces:
// SaveState appends the layer's mutable state to the open section, and
// LoadState restores it into a layer freshly built from the identical
// configuration.
type ckptSaver interface{ SaveState(*ckpt.Encoder) }
type ckptLoader interface{ LoadState(*ckpt.Decoder) error }

// CrashAfter arms the crash-fault injector: the engine refuses to
// service writes once e.Writes() reaches n (an absolute simulated-write
// threshold), setting Crashed. Runs already past n crash immediately on
// the next Run/Step. n = 0 disarms. The check costs one compare per
// Run call, not per write — Run clamps its batch to the threshold.
func (e *Engine) CrashAfter(n uint64) {
	e.crashAt = n
	if n == 0 {
		e.crashed = false
	}
}

// Crashed reports whether the crash-fault injector has fired.
func (e *Engine) Crashed() bool { return e.crashed }

// Checkpoint serializes the engine's complete mutable state — every
// layer plus the write cursor and workload stream position — into a
// self-describing, CRC-framed image (package ckpt). The configuration
// itself is not stored beyond a fingerprint: Restore rebuilds the system
// from the same Config and overlays this state, which keeps derived
// structures (randomizer tables, alias samplers, calibrated weights) out
// of the file.
func (e *Engine) Checkpoint() ([]byte, error) {
	enc := ckpt.NewEncoder()
	if err := e.encodeState(enc); err != nil {
		return nil, err
	}
	return enc.Finish(), nil
}

// RestoreCheckpoint restores an image produced by Checkpoint into an
// engine freshly built from the identical Config and workload. On any
// error (corruption, truncation, configuration mismatch) the engine's
// state is unspecified and the engine must be discarded — build a new
// one before retrying.
func (e *Engine) RestoreCheckpoint(data []byte) error {
	d, err := ckpt.NewDecoder(data)
	if err != nil {
		return err
	}
	if err := e.decodeState(d); err != nil {
		return err
	}
	return d.Close()
}

// encodeState writes the engine's sections, in fixed order, to enc.
// Callers may append further sections before Finish (the experiment
// driver stores its harness state in the same file).
func (e *Engine) encodeState(enc *ckpt.Encoder) error {
	e.encodeConfig(enc)

	gs, ok := e.gen.(ckptSaver)
	if !ok {
		return fmt.Errorf("sim: workload %q does not support checkpointing", e.gen.Name())
	}
	enc.Begin("workload")
	gs.SaveState(enc)
	enc.End()

	enc.Begin("engine")
	enc.U64(e.writes)
	enc.Bool(e.stopped)
	enc.U64(e.nextSnap)
	if e.batchGen != nil {
		// The unconsumed tail of the address-prefetch buffer: the workload
		// generator's state has already advanced past these addresses.
		enc.U64s(e.addrBuf[e.addrPos:])
	} else {
		enc.U64s(nil)
	}
	enc.End()

	enc.Begin("device")
	e.dev.SaveState(enc)
	enc.End()

	es, ok := e.be.ECC.(ckptSaver)
	if !ok {
		return fmt.Errorf("sim: ECC scheme %q does not support checkpointing", e.be.ECC.Name())
	}
	enc.Begin("ecc")
	es.SaveState(enc)
	enc.End()

	// The Static leveler is stateless; its section is intentionally empty.
	enc.Begin("leveler")
	if !e.noteSkip {
		ls, ok := e.lv.(ckptSaver)
		if !ok {
			return fmt.Errorf("sim: leveler %q does not support checkpointing", e.lv.Name())
		}
		ls.SaveState(enc)
	}
	enc.End()

	enc.Begin("os")
	e.os.SaveState(enc)
	enc.End()

	ps, ok := e.prot.(ckptSaver)
	if !ok {
		return fmt.Errorf("sim: protector %q does not support checkpointing", e.prot.Name())
	}
	enc.Begin("protector")
	ps.SaveState(enc)
	enc.End()

	if e.remapCache != nil {
		enc.Begin("cache")
		e.remapCache.SaveState(enc)
		enc.End()
	}

	// The observer section is always present so the section sequence does
	// not depend on runtime flags; byte-identical resumed metrics require
	// resuming with the same observer configuration.
	enc.Begin("observer")
	if osv, ok := e.observer.(ckptSaver); ok {
		enc.Bool(true)
		osv.SaveState(enc)
	} else {
		enc.Bool(false)
	}
	enc.End()
	return nil
}

// decodeState reads the engine's sections from d, in the encodeState
// order, after validating the configuration fingerprint. On error the
// engine is partially restored and must be discarded by the caller.
func (e *Engine) decodeState(d *ckpt.Decoder) error {
	if err := e.decodeConfig(d); err != nil {
		return err
	}

	if err := d.Section("workload"); err != nil {
		return err
	}
	gl, ok := e.gen.(ckptLoader)
	if !ok {
		return fmt.Errorf("sim: workload %q does not support checkpointing", e.gen.Name())
	}
	if err := gl.LoadState(d); err != nil {
		return err
	}

	if err := d.Section("engine"); err != nil {
		return err
	}
	writes := d.U64()
	stopped := d.Bool()
	nextSnap := d.U64()
	tail := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(tail) > addrBatch {
		return fmt.Errorf("sim: checkpoint address buffer holds %d entries, max %d: %w",
			len(tail), addrBatch, ckpt.ErrBadCheckpoint)
	}
	if e.batchGen == nil && len(tail) > 0 {
		return fmt.Errorf("sim: checkpoint has a prefetch buffer but the workload has no batch path: %w",
			ckpt.ErrBadCheckpoint)
	}
	e.writes = writes
	e.stopped = stopped
	if nextSnap != 0 {
		e.nextSnap = nextSnap
	}
	if e.batchGen != nil {
		e.addrBuf = append(e.addrBuf[:0], tail...)
		e.addrPos = 0
	}

	if err := d.Section("device"); err != nil {
		return err
	}
	if err := e.dev.LoadState(d); err != nil {
		return err
	}

	if err := d.Section("ecc"); err != nil {
		return err
	}
	el, ok := e.be.ECC.(ckptLoader)
	if !ok {
		return fmt.Errorf("sim: ECC scheme %q does not support checkpointing", e.be.ECC.Name())
	}
	if err := el.LoadState(d); err != nil {
		return err
	}

	if err := d.Section("leveler"); err != nil {
		return err
	}
	if !e.noteSkip {
		ll, ok := e.lv.(ckptLoader)
		if !ok {
			return fmt.Errorf("sim: leveler %q does not support checkpointing", e.lv.Name())
		}
		if err := ll.LoadState(d); err != nil {
			return err
		}
	}

	if err := d.Section("os"); err != nil {
		return err
	}
	if err := e.os.LoadState(d); err != nil {
		return err
	}

	if err := d.Section("protector"); err != nil {
		return err
	}
	pl, ok := e.prot.(ckptLoader)
	if !ok {
		return fmt.Errorf("sim: protector %q does not support checkpointing", e.prot.Name())
	}
	if err := pl.LoadState(d); err != nil {
		return err
	}

	if e.remapCache != nil {
		if err := d.Section("cache"); err != nil {
			return err
		}
		if err := e.remapCache.LoadState(d); err != nil {
			return err
		}
	}

	if err := d.Section("observer"); err != nil {
		return err
	}
	if d.Bool() {
		if ol, ok := e.observer.(ckptLoader); ok {
			if err := ol.LoadState(d); err != nil {
				return err
			}
		} else {
			// The checkpoint carries observer state but this engine runs
			// unobserved; the metrics are knowingly dropped.
			d.SkipRest()
		}
	}
	return d.Err()
}

// encodeConfig writes the configuration fingerprint: every Config field
// that shapes construction, plus the workload's identity. decodeConfig
// compares field by field so a resume against a different configuration
// fails with a descriptive error instead of silently diverging.
func (e *Engine) encodeConfig(enc *ckpt.Encoder) {
	c := e.cfg
	enc.Begin("config")
	enc.U64(c.Blocks)
	enc.U64(c.BlocksPerPage)
	enc.I64(int64(c.CellsPerBlock))
	enc.F64(c.MeanEndurance)
	enc.F64(c.LifetimeCoV)
	enc.U64(c.Seed)
	enc.I64(int64(c.Leveler))
	enc.U64(c.GapWritePeriod)
	enc.U64(c.SRInnerRegions)
	enc.U64(c.SGRegions)
	enc.U64(c.WFRRegions)
	enc.U64(c.SWEpochWrites)
	custom := ""
	if c.CustomLeveler != nil {
		custom = c.CustomLeveler.Name()
	}
	enc.String(custom)
	enc.I64(int64(c.Protector))
	enc.F64(c.FreepReserveFraction)
	enc.Bool(c.FreepZombiePairing)
	enc.U64(c.LLSChunkPages)
	enc.U64(c.LLSSalvageGroups)
	enc.F64(c.LLSBackupFraction)
	enc.I64(int64(c.ECC))
	enc.I64(int64(c.CacheKB))
	enc.Bool(c.TrackContent)
	enc.Bool(c.DisableChainReduction)
	enc.Bool(c.ImmediateAcquisition)
	enc.I64(int64(c.RevPointerBytes))
	enc.String(e.gen.Name())
	enc.U64(e.gen.NumBlocks())
	enc.End()
}

// decodeConfig validates the fingerprint section against this engine's
// configuration.
func (e *Engine) decodeConfig(d *ckpt.Decoder) error {
	if err := d.Section("config"); err != nil {
		return err
	}
	c := e.cfg
	custom := ""
	if c.CustomLeveler != nil {
		custom = c.CustomLeveler.Name()
	}
	checks := []struct {
		field string
		match bool
	}{
		{"Blocks", d.U64() == c.Blocks},
		{"BlocksPerPage", d.U64() == c.BlocksPerPage},
		{"CellsPerBlock", d.I64() == int64(c.CellsPerBlock)},
		{"MeanEndurance", d.F64() == c.MeanEndurance},
		{"LifetimeCoV", d.F64() == c.LifetimeCoV},
		{"Seed", d.U64() == c.Seed},
		{"Leveler", d.I64() == int64(c.Leveler)},
		{"GapWritePeriod", d.U64() == c.GapWritePeriod},
		{"SRInnerRegions", d.U64() == c.SRInnerRegions},
		{"SGRegions", d.U64() == c.SGRegions},
		{"WFRRegions", d.U64() == c.WFRRegions},
		{"SWEpochWrites", d.U64() == c.SWEpochWrites},
		{"CustomLeveler", d.String() == custom},
		{"Protector", d.I64() == int64(c.Protector)},
		{"FreepReserveFraction", d.F64() == c.FreepReserveFraction},
		{"FreepZombiePairing", d.Bool() == c.FreepZombiePairing},
		{"LLSChunkPages", d.U64() == c.LLSChunkPages},
		{"LLSSalvageGroups", d.U64() == c.LLSSalvageGroups},
		{"LLSBackupFraction", d.F64() == c.LLSBackupFraction},
		{"ECC", d.I64() == int64(c.ECC)},
		{"CacheKB", d.I64() == int64(c.CacheKB)},
		{"TrackContent", d.Bool() == c.TrackContent},
		{"DisableChainReduction", d.Bool() == c.DisableChainReduction},
		{"ImmediateAcquisition", d.Bool() == c.ImmediateAcquisition},
		{"RevPointerBytes", d.I64() == int64(c.RevPointerBytes)},
		{"workload", d.String() == e.gen.Name()},
		{"workload blocks", d.U64() == e.gen.NumBlocks()},
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, chk := range checks {
		if !chk.match {
			return fmt.Errorf("sim: checkpoint was taken under a different configuration (%s differs): %w",
				chk.field, ErrConfigMismatch)
		}
	}
	return nil
}
