package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
)

// statusTable is the single mapping from the error taxonomy to HTTP
// status codes. The client reverses it (kind → sentinel), so errors.Is
// works identically against a Fleet and against a remote daemon.
var statusTable = []struct {
	err  error
	kind string
	code int
}{
	{sim.ErrBadConfig, "bad_config", http.StatusBadRequest},
	{trace.ErrUnknownWorkload, "unknown_workload", http.StatusBadRequest},
	{sim.ErrUnknownExperiment, "unknown_experiment", http.StatusBadRequest},
	{ErrUnknownDevice, "unknown_device", http.StatusNotFound},
	{ErrDeviceExists, "device_exists", http.StatusConflict},
	{ErrDeviceStopped, "device_stopped", http.StatusConflict},
	{ErrDeviceCrippled, "device_crippled", http.StatusConflict},
	{ErrBusy, "busy", http.StatusTooManyRequests},
	{ErrFleetFull, "fleet_full", http.StatusInsufficientStorage},
	{ErrClosed, "fleet_closed", http.StatusServiceUnavailable},
	{sim.ErrConfigMismatch, "config_mismatch", http.StatusInternalServerError},
	{ckpt.ErrBadCheckpoint, "bad_checkpoint", http.StatusInternalServerError},
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// classify maps an error to its table row, defaulting to 500.
func classify(err error) (kind string, code int) {
	for _, row := range statusTable {
		if errors.Is(err, row.err) {
			return row.kind, row.code
		}
	}
	return "internal", http.StatusInternalServerError
}

// sentinelFor reverses classify for the client.
func sentinelFor(kind string) error {
	for _, row := range statusTable {
		if row.kind == kind {
			return row.err
		}
	}
	return nil
}

// createRequest is POST /v1/devices' body.
type createRequest struct {
	ID   string     `json:"id"`
	Spec DeviceSpec `json:"spec"`
}

// writeRequest is POST /v1/devices/{id}/writes' body: exactly one of
// Count (workload-driven) or Addrs (explicit addresses).
type writeRequest struct {
	Count uint64   `json:"count,omitempty"`
	Addrs []uint64 `json:"addrs,omitempty"`
}

// listResponse is GET /v1/devices' body.
type listResponse struct {
	Devices []string `json:"devices"`
}

// NewHandler builds the daemon's HTTP API over the fleet:
//
//	GET    /healthz                    fleet health
//	GET    /v1/stacks                  registered device-stack names
//	GET    /v1/devices                 sorted device IDs
//	POST   /v1/devices                 create {id, spec}
//	GET    /v1/devices/{id}            device status
//	POST   /v1/devices/{id}/writes     {count} or {addrs}
//	GET    /v1/devices/{id}/metrics    observer report JSON
//	POST   /v1/devices/{id}/checkpoint checkpoint image (octet-stream)
//	DELETE /v1/devices/{id}            delete device
func NewHandler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Health())
	})
	mux.HandleFunc("GET /v1/stacks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"stacks": sim.DeviceStackNames()})
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, listResponse{Devices: f.List()})
	})
	mux.HandleFunc("POST /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := f.Create(req.ID, req.Spec); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
	})
	mux.HandleFunc("GET /v1/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.Status(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/devices/{id}/writes", func(w http.ResponseWriter, r *http.Request) {
		var req writeRequest
		if !readJSON(w, r, &req) {
			return
		}
		if (req.Count > 0) == (len(req.Addrs) > 0) {
			writeError(w, fmt.Errorf("serve: exactly one of count or addrs is required: %w", sim.ErrBadConfig))
			return
		}
		var wr WriteResult
		var err error
		if req.Count > 0 {
			wr, err = f.Write(r.Context(), r.PathValue("id"), req.Count)
		} else {
			wr, err = f.WriteAddrs(r.Context(), r.PathValue("id"), req.Addrs)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, wr)
	})
	mux.HandleFunc("GET /v1/devices/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		raw, err := f.Metrics(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
	})
	mux.HandleFunc("POST /v1/devices/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		img, err := f.Checkpoint(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(img)
	})
	mux.HandleFunc("DELETE /v1/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := f.Delete(r.Context(), r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// readJSON decodes a request body, answering 400 on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeError(w, fmt.Errorf("serve: reading request body: %v: %w", err, sim.ErrBadConfig))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, fmt.Errorf("serve: malformed request body: %v: %w", err, sim.ErrBadConfig))
		return false
	}
	return true
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

// writeError writes the taxonomy-mapped error response.
func writeError(w http.ResponseWriter, err error) {
	kind, code := classify(err)
	writeJSON(w, code, errorBody{Error: err.Error(), Kind: kind})
}
