package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Client is the daemon's HTTP client. Errors decoded from the server's
// taxonomy-mapped responses wrap the same sentinels the Fleet returns
// in-process, so errors.Is(err, ErrBusy) and friends work unchanged
// over the wire. The client performs no retries and keeps no clocks;
// callers own backoff policy (see cmd/wlload).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). hc nil means http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// Create registers a device.
func (c *Client) Create(ctx context.Context, id string, spec DeviceSpec) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/devices", createRequest{ID: id, Spec: spec})
	return err
}

// Write services count workload-driven writes.
func (c *Client) Write(ctx context.Context, id string, count uint64) (WriteResult, error) {
	return c.write(ctx, id, writeRequest{Count: count})
}

// WriteAddrs services explicit software-address writes, in order.
func (c *Client) WriteAddrs(ctx context.Context, id string, addrs []uint64) (WriteResult, error) {
	return c.write(ctx, id, writeRequest{Addrs: addrs})
}

func (c *Client) write(ctx context.Context, id string, req writeRequest) (WriteResult, error) {
	data, err := c.do(ctx, http.MethodPost, "/v1/devices/"+url.PathEscape(id)+"/writes", req)
	if err != nil {
		return WriteResult{}, err
	}
	var wr WriteResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return WriteResult{}, fmt.Errorf("serve: decoding write result: %v", err)
	}
	return wr, nil
}

// Status fetches the device's observable state.
func (c *Client) Status(ctx context.Context, id string) (DeviceStatus, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/devices/"+url.PathEscape(id), nil)
	if err != nil {
		return DeviceStatus{}, err
	}
	var st DeviceStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return DeviceStatus{}, fmt.Errorf("serve: decoding status: %v", err)
	}
	return st, nil
}

// Metrics fetches the device's observer report JSON.
func (c *Client) Metrics(ctx context.Context, id string) (json.RawMessage, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/devices/"+url.PathEscape(id)+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(data), nil
}

// Checkpoint makes the device's checkpoint durable and returns the
// image bytes.
func (c *Client) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodPost, "/v1/devices/"+url.PathEscape(id)+"/checkpoint", nil)
}

// Delete removes the device and its spilled state.
func (c *Client) Delete(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/devices/"+url.PathEscape(id), nil)
	return err
}

// List fetches the sorted device IDs.
func (c *Client) List(ctx context.Context) ([]string, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/devices", nil)
	if err != nil {
		return nil, err
	}
	var lr listResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		return nil, fmt.Errorf("serve: decoding device list: %v", err)
	}
	return lr.Devices, nil
}

// Stacks fetches the registered device-stack names.
func (c *Client) Stacks(ctx context.Context) ([]string, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/stacks", nil)
	if err != nil {
		return nil, err
	}
	var sr struct {
		Stacks []string `json:"stacks"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("serve: decoding stacks: %v", err)
	}
	return sr.Stacks, nil
}

// Health fetches the fleet summary.
func (c *Client) Health(ctx context.Context) (Health, error) {
	data, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return Health{}, fmt.Errorf("serve: decoding health: %v", err)
	}
	return h, nil
}

// do issues one request and returns the response body, decoding error
// payloads back into the sentinel taxonomy.
func (c *Client) do(ctx context.Context, method, path string, body any) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			if sentinel := sentinelFor(eb.Kind); sentinel != nil {
				return nil, fmt.Errorf("%s: %w", eb.Error, sentinel)
			}
			return nil, fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, eb.Error)
		}
		return nil, fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}
