package wlreviver

import (
	"strings"
	"testing"
)

// drain pulls n addresses from a workload.
func drain(t *testing.T, w Workload, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// TestDeprecatedWrappersMatchSpec pins the compatibility contract of the
// workload redesign: every deprecated constructor yields the exact
// address stream of its WorkloadSpec equivalent.
func TestDeprecatedWrappersMatchSpec(t *testing.T) {
	const n = 2048
	cases := []struct {
		name    string
		wrapped func() (Workload, error)
		spec    WorkloadSpec
	}{
		{
			"uniform",
			func() (Workload, error) { return NewUniformWorkload(256, 7) },
			WorkloadSpec{Kind: WorkloadUniform, Blocks: 256, Seed: 7},
		},
		{
			"benchmark",
			func() (Workload, error) { return NewBenchmarkWorkload("mg", 256, 16, 7) },
			WorkloadSpec{Kind: "mg", Blocks: 256, PageBlocks: 16, Seed: 7},
		},
		{
			"skewed",
			func() (Workload, error) { return NewSkewedWorkload(256, 16, 4, 7) },
			WorkloadSpec{Kind: WorkloadSkewed, Blocks: 256, PageBlocks: 16, CoV: 4, Seed: 7},
		},
		{
			"hammer",
			func() (Workload, error) { return NewHammerWorkload(256, []uint64{3, 5, 9}) },
			WorkloadSpec{Kind: WorkloadHammer, Blocks: 256, Targets: []uint64{3, 5, 9}},
		},
		{
			"birthday",
			func() (Workload, error) { return NewBirthdayParadoxWorkload(256, 8, 100, 7) },
			WorkloadSpec{Kind: WorkloadBirthday, Blocks: 256, SetSize: 8, Burst: 100, Seed: 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, err := tc.wrapped()
			if err != nil {
				t.Fatal(err)
			}
			spec, err := NewWorkload(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			a, b := drain(t, old, n), drain(t, spec, n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("streams diverge at write %d: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	if _, err := NewWorkload(WorkloadSpec{Blocks: 64}); err == nil ||
		!strings.Contains(err.Error(), "Kind is required") {
		t.Errorf("empty kind: %v", err)
	}
	_, err := NewWorkload(WorkloadSpec{Kind: "nosuch", Blocks: 64})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, want := range []string{"nosuch", WorkloadUniform, "mg"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-kind error %q should mention %q", err, want)
		}
	}
}
