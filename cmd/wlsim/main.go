// Command wlsim runs a single configurable PCM wear-out simulation and
// reports its lifetime metrics — the generic entry point for exploring
// the design space beyond the paper's fixed experiments.
//
// Example:
//
//	wlsim -blocks 65536 -endurance 10000 -leveler startgap -protector wlr \
//	      -workload mg -writes 50000000 -curve
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wlreviver"
	"wlreviver/internal/sim"
	"wlreviver/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wlsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		blocks    = flag.Uint64("blocks", 1<<16, "software capacity in 64B blocks")
		pageBlk   = flag.Uint64("page-blocks", 64, "OS page size in blocks")
		endurance = flag.Float64("endurance", 1e4, "mean cell endurance in writes")
		cov       = flag.Float64("lifetime-cov", 0.2, "cell lifetime CoV")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		leveler   = flag.String("leveler", "startgap", "wear leveling: startgap, regioned, securityrefresh, none")
		psi       = flag.Uint64("psi", 100, "writes per wear-leveling operation")
		srInner   = flag.Uint64("sr-inner", 1, "security-refresh inner regions (power of two)")
		protector = flag.String("protector", "wlr", "framework: wlr, freep, zombie, drm, lls, none")
		reserve   = flag.Float64("freep-reserve", 0.05, "FREE-p pre-reserved fraction")
		eccName   = flag.String("ecc", "ecp6", "error correction: ecp6, ecp1, payg")
		cacheKB   = flag.Int("cache-kb", 0, "remap cache size in KB (0 = none)")
		workload  = flag.String("workload", "uniform", "workload: uniform, one of the Table I names, cov:<x>, hammer:<a,b,..>, birthday:<set>x<burst>")
		writes    = flag.Uint64("writes", 10_000_000, "write budget")
		floor     = flag.Float64("floor", 0.5, "stop when usable space falls to this fraction")
		curve     = flag.Bool("curve", false, "print the usable-space curve")
	)
	flag.Parse()

	cfg := wlreviver.DefaultConfig()
	cfg.Blocks = *blocks
	cfg.BlocksPerPage = *pageBlk
	cfg.MeanEndurance = *endurance
	cfg.LifetimeCoV = *cov
	cfg.Seed = *seed
	cfg.GapWritePeriod = *psi
	cfg.SRInnerRegions = *srInner
	cfg.FreepReserveFraction = *reserve
	cfg.CacheKB = *cacheKB
	cfg.LLSChunkPages = maxU64(1, *blocks/16 / *pageBlk)

	switch *leveler {
	case "startgap":
		cfg.Leveler = wlreviver.LevelerStartGap
	case "regioned":
		cfg.Leveler = wlreviver.LevelerRegionedStartGap
	case "securityrefresh":
		cfg.Leveler = wlreviver.LevelerSecurityRefresh
	case "none":
		cfg.Leveler = wlreviver.LevelerNone
	default:
		return fmt.Errorf("unknown leveler %q", *leveler)
	}
	switch *protector {
	case "wlr":
		cfg.Protector = wlreviver.ProtectorWLReviver
	case "freep":
		cfg.Protector = wlreviver.ProtectorFREEp
	case "zombie":
		cfg.Protector = wlreviver.ProtectorFREEp
		cfg.FreepZombiePairing = true
	case "drm":
		cfg.Protector = wlreviver.ProtectorDRM
	case "lls":
		cfg.Protector = wlreviver.ProtectorLLS
	case "none":
		cfg.Protector = wlreviver.ProtectorNone
	default:
		return fmt.Errorf("unknown protector %q", *protector)
	}
	switch *eccName {
	case "ecp6":
		cfg.ECC = wlreviver.ECCECP6
	case "ecp1":
		cfg.ECC = wlreviver.ECCECP1
	case "payg":
		cfg.ECC = wlreviver.ECCPAYG
	default:
		return fmt.Errorf("unknown ecc %q", *eccName)
	}

	gen, err := buildWorkload(*workload, cfg, *seed)
	if err != nil {
		return err
	}
	e, err := sim.NewEngine(cfg, gen)
	if err != nil {
		return err
	}

	var c stats.Curve
	c.Append(0, e.UsableFraction())
	const sampleEvery = 1 << 12
	for e.Writes() < *writes {
		advanced := false
		for i := 0; i < sampleEvery; i++ {
			if !e.Step() {
				break
			}
			advanced = true
		}
		c.Append(e.WritesPerBlock(), e.UsableFraction())
		if !advanced || e.UsableFraction() <= *floor {
			break
		}
	}

	fmt.Printf("system: %s + %s + %s, %d blocks, workload %s\n",
		cfg.ECC, cfg.Leveler, cfg.Protector, cfg.Blocks, gen.Name())
	fmt.Printf("writes serviced:    %d (%.1f per block)\n", e.Writes(), e.WritesPerBlock())
	fmt.Printf("survival rate:      %.4f\n", e.SurvivalRate())
	fmt.Printf("usable space:       %.4f\n", e.UsableFraction())
	fmt.Printf("dead blocks:        %d / %d\n", e.Device().DeadBlocks(), e.Device().NumBlocks())
	fmt.Printf("retired pages:      %d / %d\n", e.OS().RetiredPages(), e.OS().NumPages())
	wearCounts := e.Device().WearCounts()
	fmt.Printf("wear CoV:           %.4f\n", stats.CoVOfCounts(wearCounts))
	printWearQuantiles(wearCounts)
	if r := e.AccessRatio(); r > 0 {
		fmt.Printf("accesses/request:   %.4f\n", r)
	}
	fmt.Printf("crippled:           %v\n", e.Crippled())
	if rv, ok := e.Reviver(); ok {
		st := rv.Stats()
		fmt.Printf("reviver: pages=%d links=%d switches=%d sacrifices=%d suspensions=%d\n",
			st.PagesAcquired, st.LinksCreated, st.ChainSwitches, st.SacrificedWrites, st.Suspensions)
	}
	if *curve {
		fmt.Println("\nwrites/block  usable")
		for _, p := range c.Points {
			fmt.Printf("%12.1f  %.4f\n", p.X, p.Y)
		}
	}
	return nil
}

// printWearQuantiles summarises the per-block wear distribution.
func printWearQuantiles(counts []uint64) {
	var maxWear float64
	for _, c := range counts {
		if float64(c) > maxWear {
			maxWear = float64(c)
		}
	}
	if maxWear == 0 {
		return
	}
	h := stats.NewHistogram(0, maxWear+1, 256)
	for _, c := range counts {
		h.Add(float64(c))
	}
	fmt.Printf("wear quantiles:     p10=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		h.Quantile(0.10), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), maxWear)
}

// buildWorkload parses the -workload flag.
func buildWorkload(spec string, cfg wlreviver.Config, seed uint64) (wlreviver.Workload, error) {
	switch {
	case spec == "uniform":
		return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadUniform, Blocks: cfg.Blocks, Seed: seed})
	case strings.HasPrefix(spec, "cov:"):
		cov, err := strconv.ParseFloat(spec[len("cov:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad cov workload %q: %w", spec, err)
		}
		return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadSkewed, Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, CoV: cov, Seed: seed})
	case strings.HasPrefix(spec, "hammer:"):
		var targets []uint64
		for _, part := range strings.Split(spec[len("hammer:"):], ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad hammer target %q: %w", part, err)
			}
			targets = append(targets, v)
		}
		return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadHammer, Blocks: cfg.Blocks, Targets: targets})
	case strings.HasPrefix(spec, "birthday:"):
		var set int
		var burst uint64
		if _, err := fmt.Sscanf(spec[len("birthday:"):], "%dx%d", &set, &burst); err != nil {
			return nil, fmt.Errorf("bad birthday workload %q (want birthday:<set>x<burst>): %w", spec, err)
		}
		return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadBirthday, Blocks: cfg.Blocks, SetSize: set, Burst: burst, Seed: seed})
	default:
		return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: spec, Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: seed})
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
