package wear_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"wlreviver/internal/stats"
	"wlreviver/internal/wear"
	"wlreviver/internal/wear/conformance"
)

func newTestStartGap(t *testing.T, n, period uint64) *wear.StartGap {
	t.Helper()
	sg, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: n, GapWritePeriod: period, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestStartGapConfigErrors(t *testing.T) {
	if _, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 0, GapWritePeriod: 10}); err == nil {
		t.Error("zero PAs accepted")
	}
	if _, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 8, GapWritePeriod: 0}); err == nil {
		t.Error("zero period accepted")
	}
	wrong := wear.Identity{Size: 4}
	if _, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 8, GapWritePeriod: 1, Randomizer: wrong}); err == nil {
		t.Error("mismatched randomizer domain accepted")
	}
}

func TestStartGapInitialMapping(t *testing.T) {
	sg, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 8, GapWritePeriod: 1, Randomizer: wear.Identity{Size: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh scheme with identity randomizer: DA == PA, gap at the top.
	for pa := uint64(0); pa < 8; pa++ {
		if da := sg.Map(pa); da != pa {
			t.Errorf("Map(%d) = %d, want identity initially", pa, da)
		}
	}
	if sg.GapDA() != 8 {
		t.Errorf("gap at %d, want 8", sg.GapDA())
	}
	if _, ok := sg.Inverse(8); ok {
		t.Error("gap block should have no inverse")
	}
}

func TestStartGapBijectionUnderGapMoves(t *testing.T) {
	const n = 64
	sg := newTestStartGap(t, n, 1)
	mem := conformance.NewShadowMem(sg.NumDAs())
	conformance.FillThrough(sg, mem)
	mover := mem.Mover()
	// Drive through several full rotations (a rotation is n+1 gap moves).
	for step := 0; step < 3*(n+1)+7; step++ {
		sg.ForceGapMove(mover)
		conformance.VerifyBijection(t, sg, fmt.Sprintf("after %d gap moves", step+1))
		conformance.VerifyThrough(t, sg, mem, fmt.Sprintf("after %d gap moves", step+1))
	}
	if sg.GapMoves() != 3*(n+1)+7 {
		t.Errorf("gap moves = %d", sg.GapMoves())
	}
}

func TestStartGapStartAdvancesOnWrap(t *testing.T) {
	const n = 16
	sg := newTestStartGap(t, n, 1)
	mem := conformance.NewShadowMem(sg.NumDAs())
	conformance.FillThrough(sg, mem)
	if sg.Start() != 0 {
		t.Fatal("start should begin at 0")
	}
	for i := uint64(0); i < n+1; i++ {
		sg.ForceGapMove(mem.Mover())
	}
	if sg.Start() != 1 {
		t.Errorf("start = %d after one full rotation, want 1", sg.Start())
	}
	if sg.GapDA() != n {
		t.Errorf("gap = %d after full rotation, want %d", sg.GapDA(), n)
	}
}

func TestStartGapNoteWritePacing(t *testing.T) {
	sg := newTestStartGap(t, 32, 100)
	mem := conformance.NewShadowMem(sg.NumDAs())
	conformance.FillThrough(sg, mem)
	for i := 0; i < 99; i++ {
		sg.NoteWrite(0, mem.Mover())
	}
	if sg.GapMoves() != 0 {
		t.Fatalf("gap moved before ψ writes")
	}
	sg.NoteWrite(0, mem.Mover())
	if sg.GapMoves() != 1 {
		t.Fatalf("gap did not move at ψ-th write")
	}
	for i := 0; i < 100; i++ {
		sg.NoteWrite(0, mem.Mover())
	}
	if sg.GapMoves() != 2 {
		t.Fatalf("gap moves = %d after 200 writes, want 2", sg.GapMoves())
	}
	conformance.VerifyThrough(t, sg, mem, "after paced writes")
}

// Every block of data visits every device address over N*(N+1) gap moves
// (the full wear-leveling cycle) — spot-check that a single PA's DA
// changes and covers many distinct DAs.
func TestStartGapDataVisitsManyDAs(t *testing.T) {
	const n = 32
	sg := newTestStartGap(t, n, 1)
	mem := conformance.NewShadowMem(sg.NumDAs())
	conformance.FillThrough(sg, mem)
	visited := make(map[uint64]bool)
	for i := 0; i < n*(n+1); i++ {
		visited[sg.Map(7)] = true
		sg.ForceGapMove(mem.Mover())
	}
	if len(visited) != int(n+1) {
		t.Errorf("PA 7 visited %d distinct DAs over a full cycle, want %d", len(visited), n+1)
	}
	conformance.VerifyThrough(t, sg, mem, "after full cycle")
}

// Property: for arbitrary interleavings of writes and forced moves, the
// mapping stays consistent.
func TestQuickStartGapConsistency(t *testing.T) {
	prop := func(ops []bool) bool {
		sg, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 24, GapWritePeriod: 3, Seed: 11})
		if err != nil {
			return false
		}
		mem := conformance.NewShadowMem(sg.NumDAs())
		conformance.FillThrough(sg, mem)
		for _, forced := range ops {
			if forced {
				sg.ForceGapMove(mem.Mover())
			} else {
				sg.NoteWrite(0, mem.Mover())
			}
		}
		for pa := uint64(0); pa < sg.NumPAs(); pa++ {
			if mem.Data[sg.Map(pa)] != conformance.Tag(pa) {
				return false
			}
			if back, ok := sg.Inverse(sg.Map(pa)); !ok || back != pa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Wear-leveling efficacy: a heavily skewed write stream through Start-Gap
// with migrations should spread wear far more evenly than without.
func TestStartGapLevelsSkewedWrites(t *testing.T) {
	const n = 256
	const writes = 200000
	runCoV := func(level bool) float64 {
		sg := newTestStartGap(t, n, 10)
		wearCount := make([]uint64, sg.NumDAs())
		mover := wear.FuncMover{MigrateFn: func(src, dst uint64) { wearCount[dst]++ }}
		for i := 0; i < writes; i++ {
			pa := uint64(i) % 8 // hammer 8 hot addresses
			wearCount[sg.Map(pa)]++
			if level {
				sg.NoteWrite(pa, mover)
			}
		}
		return stats.CoVOfCounts(wearCount)
	}
	leveled, unleveled := runCoV(true), runCoV(false)
	if leveled >= unleveled/4 {
		t.Errorf("leveling barely helped: CoV %.3f leveled vs %.3f unleveled", leveled, unleveled)
	}
}

func TestStartGapPanicsOutOfRange(t *testing.T) {
	sg := newTestStartGap(t, 8, 1)
	for _, fn := range []func(){
		func() { sg.Map(8) },
		func() { sg.Inverse(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
