// Fixture: _test.go files are exempt from no-wallclock — benchmarks
// measure real time by design. Nothing in this file is a finding.
package sim

import (
	"testing"
	"time"
)

func BenchmarkTick(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_ = Tick()
	}
	_ = time.Since(start)
}
