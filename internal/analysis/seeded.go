package analysis

import (
	"go/ast"
	"strings"
)

// rngImport is the module's deterministic generator package; a
// parameter of type *rng.Source (or a config field of that type) counts
// as a seed.
const rngImport = "wlreviver/internal/rng"

// seededDirs are the packages whose exported constructors must be
// seedable: they build the stochastic components of the simulation.
var seededDirs = []string{"internal/sim", "internal/trace", "internal/pcm", "internal/wear"}

// SeededConstructors flags exported New* constructors in the simulation
// packages that draw randomness (reference the rng package in their
// body) without taking a seed: no parameter named like "seed", no
// *rng.Source parameter, and no config-struct parameter carrying such a
// field. An unseedable stochastic constructor can only fall back to a
// fixed or global seed, which either hides correlation between
// components or breaks replayability — both poison lifetime results.
//
// The check is shallow by design: it looks at the constructor's own
// body, not its callees. A constructor that delegates all randomness to
// an inner seeded call is fine; one that draws directly must expose the
// seed.
type SeededConstructors struct{}

// Name implements Rule.
func (*SeededConstructors) Name() string { return "seeded-constructors" }

// Doc implements Rule.
func (*SeededConstructors) Doc() string {
	return "exported New* constructors in sim/trace/pcm/wear that use randomness must take a seed or *rng.Source"
}

// Check implements Rule.
func (*SeededConstructors) Check(f *File, report func(ast.Node, string, ...any)) {
	inScope := false
	for _, dir := range seededDirs {
		if f.In(dir) {
			inScope = true
			break
		}
	}
	if !inScope || f.IsTest() {
		return
	}
	rngName, usesRNG := f.ImportName(rngImport)
	if !usesRNG {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || fd.Body == nil {
			continue
		}
		if !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "New") {
			continue
		}
		if !referencesPkg(fd.Body, rngName) {
			continue
		}
		if constructorSeeded(f, fd, rngName) {
			continue
		}
		report(fd.Name, "exported constructor %s uses package rng but takes no seed or *rng.Source parameter", fd.Name.Name)
	}
}

// referencesPkg reports whether the body contains a selector qualified
// by the given package name (e.g. rng.New, rng.Hash64).
func referencesPkg(body *ast.BlockStmt, pkgName string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkgName && id.Obj == nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// constructorSeeded reports whether any parameter provides a seed:
// by name ("seed", "Seed", "rngSeed", ...), by type (*rng.Source), or —
// one level deep — via a same-package config struct with such a field.
func constructorSeeded(f *File, fd *ast.FuncDecl, rngName string) bool {
	for _, p := range fd.Type.Params.List {
		for _, name := range p.Names {
			if strings.Contains(strings.ToLower(name.Name), "seed") {
				return true
			}
		}
		if typeIsRNGSource(p.Type, rngName) {
			return true
		}
		if st := paramStruct(f.Pkg, p.Type); st != nil && structHasSeed(st, rngName) {
			return true
		}
	}
	return false
}

// typeIsRNGSource reports whether t is rng.Source or *rng.Source.
func typeIsRNGSource(t ast.Expr, rngName string) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Source" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == rngName
}

// paramStruct resolves a parameter type naming a struct declared in the
// same package (Config, *Config, ...); nil otherwise.
func paramStruct(pkg *Package, t ast.Expr) *ast.StructType {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	return pkg.LookupStruct(id.Name)
}

// structHasSeed reports whether the struct carries a seed-like field or
// an rng.Source field.
func structHasSeed(st *ast.StructType, rngName string) bool {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if strings.Contains(strings.ToLower(name.Name), "seed") {
				return true
			}
		}
		if typeIsRNGSource(fld.Type, rngName) {
			return true
		}
	}
	return false
}
