// Package cache models the small SRAM remap cache the paper configures
// for the Table II access-time comparison (32 KB for a 1 GB chip, the
// proportion suggested by the LLS paper). The cache holds remap metadata
// for failed blocks — a hit removes the extra PCM accesses an indirection
// would otherwise cost.
//
// The model is a set-associative LRU cache over uint64 keys; only hit or
// miss matters to the simulation, not the cached payload.
package cache

import (
	"fmt"

	"wlreviver/internal/obs"
)

// Config describes the cache geometry.
type Config struct {
	// Sets is the number of cache sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
}

// SizedConfig derives a geometry from a capacity in bytes assuming
// entryBytes per entry and the given associativity, mirroring the paper's
// "32 KB cache" specification (8-byte entries, 8-way by default).
func SizedConfig(capacityBytes, entryBytes, ways int) (Config, error) {
	if capacityBytes <= 0 || entryBytes <= 0 || ways <= 0 {
		return Config{}, fmt.Errorf("cache: capacity, entry size and ways must be positive")
	}
	entries := capacityBytes / entryBytes
	if entries < ways {
		return Config{}, fmt.Errorf("cache: capacity %dB holds fewer than %d entries", capacityBytes, ways)
	}
	sets := entries / ways
	// Round sets down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return Config{Sets: p, Ways: ways}, nil
}

// Cache is a set-associative LRU cache of uint64 keys. The zero value is
// not usable; use New. It is not safe for concurrent use.
type Cache struct {
	cfg   Config   // ckpt:skip construction-time geometry, fingerprinted by the engine
	mask  uint64   // ckpt:derived recomputed from cfg.Sets in New
	keys  []uint64 // sets*ways entries
	valid []bool
	age   []uint64 // LRU stamps
	clock uint64

	hits, misses uint64

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; hit/miss probes
}

// New builds a cache. Sets must be a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets must be a positive power of two, got %d", cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive, got %d", cfg.Ways)
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:   cfg,
		mask:  uint64(cfg.Sets - 1),
		keys:  make([]uint64, n),
		valid: make([]bool, n),
		age:   make([]uint64, n),
	}, nil
}

// setBase returns the first slot index of the set for key.
func (c *Cache) setBase(key uint64) int {
	// Mix the key so sequential keys spread across sets.
	h := key * 0x9E3779B97F4A7C15
	return int((h>>32)&c.mask) * c.cfg.Ways
}

// Lookup probes the cache, inserting the key on a miss (allocate-on-miss,
// LRU eviction). It returns whether the key was present.
func (c *Cache) Lookup(key uint64) bool {
	c.clock++
	base := c.setBase(key)
	victim, victimAge := base, ^uint64(0)
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.keys[i] == key {
			c.age[i] = c.clock
			c.hits++
			if c.observer != nil {
				c.observer.RemapCacheHit(key)
			}
			return true
		}
		if !c.valid[i] {
			victim, victimAge = i, 0
		} else if c.age[i] < victimAge {
			victim, victimAge = i, c.age[i]
		}
	}
	c.misses++
	if c.observer != nil {
		c.observer.RemapCacheMiss(key)
	}
	c.keys[victim] = key
	c.valid[victim] = true
	c.age[victim] = c.clock
	return false
}

// Contains probes without inserting or updating recency.
func (c *Cache) Contains(key uint64) bool {
	base := c.setBase(key)
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.keys[i] == key {
			return true
		}
	}
	return false
}

// Invalidate removes a key if present (e.g. remap metadata changed).
func (c *Cache) Invalidate(key uint64) {
	base := c.setBase(key)
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.keys[i] == key {
			c.valid[i] = false
			return
		}
	}
}

// Hits returns the number of lookup hits.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of lookup misses.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Entries returns the total entry capacity.
func (c *Cache) Entries() int { return c.cfg.Sets * c.cfg.Ways }

// SetObserver attaches an event observer (nil detaches). Each Lookup
// fires exactly one RemapCacheHit or RemapCacheMiss.
func (c *Cache) SetObserver(o obs.Observer) { c.observer = o }
