package analysis

import (
	"go/ast"
	"go/types"
)

// obsDir/statsDir are the metric-sink packages: the only places an
// observer implementation may keep package-level state, and the only
// packages whose methods observers may freely call.
const (
	obsDir   = "internal/obs"
	statsDir = "internal/stats"
)

// engineMutators names methods that steer the simulation. An observer
// calling any of them on a module-internal type would make an observed
// run diverge from an unobserved one — exactly the loophole the
// observed≡unobserved differential tests probe dynamically. The list is
// curated from the engine's public mutation surface (device writes,
// engine stepping, state restore, OS-model retirement).
var engineMutators = map[string]bool{
	"Write":             true,
	"WriteTagged":       true,
	"WriteNoFail":       true,
	"WriteRaw":          true,
	"Run":               true,
	"RunN":              true,
	"Step":              true,
	"MarkDead":          true,
	"SetContent":        true,
	"SetObserver":       true,
	"ReportFailure":     true,
	"LoadBitmap":        true,
	"RestoreCheckpoint": true,
	"LoadState":         true,
	"CrashAfter":        true,
	"SetState":          true,
	"Retire":            true,
}

// ObserverPurity closes the observed≡unobserved loophole statically:
// methods on types that implement obs.Observer may not assign to
// package-level variables outside internal/obs and internal/stats, and
// may not call known engine mutators on module-internal types. The rule
// is type-aware — it resolves the Observer interface from the loaded
// tree's internal/obs package and checks implementations with
// types.Implements — so renaming a method or embedding obs.Base cannot
// dodge it. Packages without type information (or trees without an
// internal/obs package) are skipped rather than guessed at.
type ObserverPurity struct{}

// Name implements Rule.
func (*ObserverPurity) Name() string { return "observer-purity" }

// Doc implements Rule.
func (*ObserverPurity) Doc() string {
	return "obs.Observer implementations may not mutate package-level or engine state outside internal/obs and internal/stats"
}

// Check implements Rule.
func (*ObserverPurity) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.IsTest() || f.In(obsDir) || f.In(statsDir) {
		return
	}
	tpkg, info := f.Pkg.TypeInfo()
	if tpkg == nil || info == nil {
		return
	}
	iface := observerInterface(f.Pkg.Mod)
	if iface == nil {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil {
			continue
		}
		tname := recvTypeName(fd)
		obj, ok := tpkg.Scope().Lookup(tname).(*types.TypeName)
		if !ok {
			continue
		}
		t := obj.Type()
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		checkObserverMethod(fd, tname, info, report)
	}
}

// observerInterface resolves obs.Observer from the loaded tree.
func observerInterface(mod *Module) *types.Interface {
	if mod == nil {
		return nil
	}
	p := mod.byDir[obsDir]
	if p == nil {
		return nil
	}
	tpkg, _ := p.TypeInfo()
	if tpkg == nil {
		return nil
	}
	obj, ok := tpkg.Scope().Lookup("Observer").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func checkObserverMethod(fd *ast.FuncDecl, tname string, info *types.Info, report func(ast.Node, string, ...any)) {
	method := tname + "." + fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				reportPkgLevelTarget(lhs, method, info, report)
			}
		case *ast.IncDecStmt:
			reportPkgLevelTarget(stmt.X, method, info, report)
		case *ast.CallExpr:
			sel, ok := unparen(stmt.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok || !engineMutators[fn.Name()] || fn.Pkg() == nil {
				return true
			}
			if dir, isModule := dirFor(fn.Pkg().Path()); isModule && dir != obsDir && dir != statsDir {
				report(stmt, "observer method %s calls engine mutator (%s).%s: observers must not steer the simulation, or observed runs diverge from unobserved ones", method, fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// reportPkgLevelTarget flags an assignment/inc-dec whose target is
// rooted at a package-level variable outside internal/obs and
// internal/stats.
func reportPkgLevelTarget(lhs ast.Expr, method string, info *types.Info, report func(ast.Node, string, ...any)) {
	expr := unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = unparen(e.X)
		case *ast.StarExpr:
			expr = unparen(e.X)
		case *ast.SelectorExpr:
			// pkg.Var = ... roots at the selected object, not the
			// package name.
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					reportIfPkgVar(info.Uses[e.Sel], e, method, report)
					return
				}
			}
			expr = unparen(e.X)
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e] // := defines a local, never package-level
			}
			reportIfPkgVar(obj, e, method, report)
			return
		default:
			return
		}
	}
}

func reportIfPkgVar(obj types.Object, node ast.Node, method string, report func(ast.Node, string, ...any)) {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if dir, isModule := dirFor(v.Pkg().Path()); isModule && (dir == obsDir || dir == statsDir) {
		return
	}
	report(node, "observer method %s assigns to package-level %s: observers must be pure so observed runs stay byte-identical to unobserved ones", method, v.Name())
}
