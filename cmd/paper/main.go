// Command paper regenerates the tables and figures of the WL-Reviver
// paper's evaluation (DSN 2014) at a configurable scale.
//
// Usage:
//
//	paper [-scale tiny|bench|paper] [-exp all|table1|fig5|fig6|fig7|fig8|table2] [-seed N]
//
// Output is the textual form of each table/figure; EXPERIMENTS.md records
// a reference run against the paper's reported results.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wlreviver"
	"wlreviver/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "bench", "experiment scale: tiny, bench or paper")
	exp := flag.String("exp", "all", "experiment: all, table1, fig5, fig6, fig7, fig8, table2 or attacks")
	seed := flag.Uint64("seed", 0, "override the scale's RNG seed (0 keeps the default)")
	csvDir := flag.String("csv", "", "also write the curve figures as CSV files into this directory")
	flag.Parse()

	var scale wlreviver.Scale
	switch *scaleName {
	case "tiny":
		scale = wlreviver.TinyScale()
	case "bench":
		scale = wlreviver.BenchScale()
	case "paper":
		scale = wlreviver.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	fmt.Printf("# scale=%s blocks=%d page=%d blocks endurance=%.0f psi=%d seed=%d\n\n",
		*scaleName, scale.Blocks, scale.BlocksPerPage, scale.MeanEndurance,
		scale.GapWritePeriod, scale.Seed)

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	experiments := []experiment{
		{"table1", func() (fmt.Stringer, error) { return wlreviver.Table1(scale) }},
		{"fig5", func() (fmt.Stringer, error) { return wlreviver.Fig5(scale) }},
		{"fig6", func() (fmt.Stringer, error) { return both(scale, wlreviver.Fig6) }},
		{"fig7", func() (fmt.Stringer, error) { return both(scale, wlreviver.Fig7) }},
		{"fig8", func() (fmt.Stringer, error) { return both(scale, wlreviver.Fig8) }},
		{"table2", func() (fmt.Stringer, error) {
			return wlreviver.Table2(scale, []string{"mg", "ocean"})
		}},
		{"attacks", func() (fmt.Stringer, error) { return wlreviver.Attacks(scale) }},
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		matched = true
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res)
		fmt.Printf("(%s took %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, res); err != nil {
				return fmt.Errorf("%s: writing csv: %w", e.name, err)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// curveSet is implemented by results that carry plottable curves.
type curveSet interface {
	CurveData() (workload string, curves []stats.Curve)
}

// writeCSV dumps any curves a result carries as <dir>/<exp>[-workload].csv.
func writeCSV(dir, exp string, res fmt.Stringer) error {
	var sets []curveSet
	switch r := res.(type) {
	case pair:
		for _, half := range []fmt.Stringer{r.ocean, r.mg} {
			if cs, ok := half.(curveSet); ok {
				sets = append(sets, cs)
			}
		}
	case curveSet:
		sets = append(sets, r)
	default:
		return nil // tabular results have no curves
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cs := range sets {
		workload, curves := cs.CurveData()
		name := exp
		if workload != "" {
			name += "-" + workload
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprint(w, "writes_per_block")
		maxX := 0.0
		for _, c := range curves {
			fmt.Fprintf(w, ",%s", strings.ReplaceAll(c.Name, ",", ";"))
			if n := len(c.Points); n > 0 && c.Points[n-1].X > maxX {
				maxX = c.Points[n-1].X
			}
		}
		fmt.Fprintln(w)
		// Curves sample on their own grids (a run ends at its floor), so
		// resample everything onto a common 256-point grid.
		const gridPoints = 256
		for i := 0; i <= gridPoints; i++ {
			x := maxX * float64(i) / gridPoints
			fmt.Fprintf(w, "%g", x)
			for _, c := range curves {
				fmt.Fprintf(w, ",%g", c.YAt(x))
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// pair formats the ocean and mg variants of a per-workload figure.
type pair struct {
	ocean fmt.Stringer
	mg    fmt.Stringer
}

// String renders both workloads.
func (p pair) String() string { return p.ocean.String() + "\n" + p.mg.String() }

// both runs a per-workload figure for ocean and mg.
func both[T fmt.Stringer](scale wlreviver.Scale, f func(wlreviver.Scale, string) (T, error)) (fmt.Stringer, error) {
	ocean, err := f(scale, "ocean")
	if err != nil {
		return nil, err
	}
	mg, err := f(scale, "mg")
	if err != nil {
		return nil, err
	}
	return pair{ocean: ocean, mg: mg}, nil
}
