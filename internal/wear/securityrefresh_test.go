package wear_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"wlreviver/internal/stats"
	"wlreviver/internal/wear"
	"wlreviver/internal/wear/conformance"
)

func newTestSR(t *testing.T, n uint64, inner uint64) *wear.SecurityRefresh {
	t.Helper()
	cfg := wear.SecurityRefreshConfig{
		NumPAs:           n,
		InnerRegions:     inner,
		OuterWritePeriod: 2,
		InnerWritePeriod: 2,
		Seed:             13,
	}
	sr, err := wear.NewSecurityRefresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestSecurityRefreshConfigErrors(t *testing.T) {
	cases := []wear.SecurityRefreshConfig{
		{NumPAs: 0, OuterWritePeriod: 1},
		{NumPAs: 12, OuterWritePeriod: 1},                                        // not power of two
		{NumPAs: 16, InnerRegions: 3, OuterWritePeriod: 1, InnerWritePeriod: 1},  // inner not pow2
		{NumPAs: 16, InnerRegions: 32, OuterWritePeriod: 1, InnerWritePeriod: 1}, // inner > space
		{NumPAs: 16, OuterWritePeriod: 0},
		{NumPAs: 16, InnerRegions: 4, OuterWritePeriod: 1, InnerWritePeriod: 0},
	}
	for i, c := range cases {
		if _, err := wear.NewSecurityRefresh(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestSecurityRefreshNames(t *testing.T) {
	if got := newTestSR(t, 16, 1).Name(); got != "Security-Refresh" {
		t.Errorf("name = %q", got)
	}
	if got := newTestSR(t, 16, 4).Name(); got != "Security-Refresh-2L" {
		t.Errorf("name = %q", got)
	}
}

func TestSecurityRefreshSingleLevelConsistency(t *testing.T) {
	const n = 64
	sr := newTestSR(t, n, 1)
	mem := conformance.NewShadowMem(sr.NumDAs())
	conformance.FillThrough(sr, mem)
	for step := 0; step < 1000; step++ {
		sr.NoteWrite(uint64(step)%n, mem.Mover())
		if step%37 == 0 {
			conformance.VerifyBijection(t, sr, fmt.Sprintf("single-level step %d", step))
			conformance.VerifyThrough(t, sr, mem, fmt.Sprintf("single-level step %d", step))
		}
	}
	conformance.VerifyThrough(t, sr, mem, "single-level final")
	if sr.OuterSwaps() == 0 {
		t.Error("no swaps performed; refresh never progressed")
	}
}

func TestSecurityRefreshTwoLevelConsistency(t *testing.T) {
	const n = 64
	sr := newTestSR(t, n, 4)
	mem := conformance.NewShadowMem(sr.NumDAs())
	conformance.FillThrough(sr, mem)
	for step := 0; step < 2000; step++ {
		sr.NoteWrite(uint64(step*7)%n, mem.Mover())
		if step%61 == 0 {
			conformance.VerifyBijection(t, sr, fmt.Sprintf("two-level step %d", step))
			conformance.VerifyThrough(t, sr, mem, fmt.Sprintf("two-level step %d", step))
		}
	}
	conformance.VerifyThrough(t, sr, mem, "two-level final")
}

// Property: arbitrary write sequences keep the two-level mapping a
// data-preserving bijection.
func TestQuickSecurityRefreshConsistency(t *testing.T) {
	prop := func(pas []uint16) bool {
		sr, err := wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
			NumPAs: 32, InnerRegions: 2, OuterWritePeriod: 1, InnerWritePeriod: 1, Seed: 3,
		})
		if err != nil {
			return false
		}
		mem := conformance.NewShadowMem(sr.NumDAs())
		conformance.FillThrough(sr, mem)
		for _, p := range pas {
			sr.NoteWrite(uint64(p)%32, mem.Mover())
		}
		for pa := uint64(0); pa < 32; pa++ {
			if mem.Data[sr.Map(pa)] != conformance.Tag(pa) {
				return false
			}
			if back, ok := sr.Inverse(sr.Map(pa)); !ok || back != pa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Re-keying must actually relocate data over time.
func TestSecurityRefreshRelocatesData(t *testing.T) {
	const n = 64
	sr := newTestSR(t, n, 1)
	mem := conformance.NewShadowMem(sr.NumDAs())
	conformance.FillThrough(sr, mem)
	initial := sr.Map(5)
	visited := map[uint64]bool{initial: true}
	for i := 0; i < 5000; i++ {
		sr.NoteWrite(uint64(i)%n, mem.Mover())
		visited[sr.Map(5)] = true
	}
	if len(visited) < 4 {
		t.Errorf("PA 5 visited only %d DAs over 5000 writes; refresh not randomizing", len(visited))
	}
}

// Security Refresh should level a hammered address across the space.
func TestSecurityRefreshLevelsSkewedWrites(t *testing.T) {
	const n = 256
	const writes = 300000
	runCoV := func(level bool) float64 {
		sr, err := wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
			NumPAs: n, OuterWritePeriod: 8, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		wearCount := make([]uint64, sr.NumDAs())
		mover := wear.FuncMover{SwapFn: func(a, b uint64) { wearCount[a]++; wearCount[b]++ }}
		for i := 0; i < writes; i++ {
			pa := uint64(i) % 4
			wearCount[sr.Map(pa)]++
			if level {
				sr.NoteWrite(pa, mover)
			}
		}
		return stats.CoVOfCounts(wearCount)
	}
	leveled, unleveled := runCoV(true), runCoV(false)
	if leveled >= unleveled/3 {
		t.Errorf("refresh barely leveled: CoV %.3f vs %.3f", leveled, unleveled)
	}
}

func TestSecurityRefreshPanics(t *testing.T) {
	sr := newTestSR(t, 16, 1)
	for _, fn := range []func(){
		func() { sr.Map(16) },
		func() { sr.Inverse(16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNopAndFuncMovers(t *testing.T) {
	wear.NopMover{}.Migrate(1, 2) // must not panic
	wear.NopMover{}.Swap(1, 2)
	var m wear.FuncMover
	m.Migrate(1, 2) // nil fns tolerated
	m.Swap(1, 2)
	called := 0
	m = wear.FuncMover{
		MigrateFn: func(a, b uint64) { called++ },
		SwapFn:    func(a, b uint64) { called++ },
	}
	m.Migrate(0, 1)
	m.Swap(0, 1)
	if called != 2 {
		t.Error("FuncMover did not dispatch")
	}
}
