module wlreviver

go 1.22
