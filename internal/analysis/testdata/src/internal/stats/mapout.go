// Fixture: ordered-map-output positives (print and append sinks),
// the sorted-keys exemption, and a suppressed commutative fold.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// counters carries a map-typed field so the selector heuristic has
// something to resolve.
type counters struct {
	byName map[string]int
}

// PrintCounts ranges a map straight into a printer: iteration order
// leaks into output bytes.
func PrintCounts(w io.Writer, counts map[string]int) {
	for k, v := range counts { // want ordered-map-output "range over map feeds fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Names appends map keys into a result slice with no sort in sight.
func Names(c *counters) []string {
	var names []string
	for k := range c.byName { // want ordered-map-output "range over map feeds an append into a result slice"
		names = append(names, k)
	}
	return names
}

// SortedNames is the canonical fix: collect, sort, iterate the slice.
// The sort.Strings call exempts the collection loop.
func SortedNames(c *counters) []string {
	names := make([]string, 0, len(c.byName))
	for k := range c.byName {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// DebugDump prints a map for interactive debugging; the output never
// reaches a figure or table, which the suppression reason records.
func DebugDump(w io.Writer, counts map[string]int) {
	//lint:ignore ordered-map-output debug-only dump, never feeds a figure or table
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
