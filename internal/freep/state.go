package freep

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the protector's mutable state: the free-slot
// pool, failed-block remaps, Zombie pair baselines and counters.
func (f *FREEp) SaveState(e *ckpt.Encoder) {
	e.U64s(f.slots)
	e.MapU64(f.remap)
	e.U32(uint32(len(f.pairBase)))
	for _, slot := range ckpt.KeysU64(f.pairBase) {
		e.U64(slot)
		e.I64(int64(f.pairBase[slot]))
	}
	e.U64(f.st.SoftwareWrites)
	e.U64(f.st.SoftwareReads)
	e.U64(f.st.RequestAccesses)
	e.U64(f.st.SlotsUsed)
	e.Bool(f.st.Exposed)
	e.U64(f.st.LostWrites)
	e.U64(f.st.PairRevivals)
}

// LoadState restores state written by SaveState into a protector built
// over the identical layer stack.
func (f *FREEp) LoadState(dec *ckpt.Decoder) error {
	slots := dec.U64s()
	remap := dec.MapU64()
	nPairs := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if nPairs*16 > 1<<30 {
		return fmt.Errorf("freep: checkpoint pair count %d implausible", nPairs)
	}
	pairBase := make(map[uint64]int, nPairs)
	var prev uint64
	for i := 0; i < nPairs; i++ {
		slot := dec.U64()
		base := dec.I64()
		if dec.Err() != nil {
			return dec.Err()
		}
		if i > 0 && slot <= prev {
			return fmt.Errorf("freep: checkpoint pair keys out of order")
		}
		prev = slot
		pairBase[slot] = int(base)
	}
	var st Stats
	st.SoftwareWrites = dec.U64()
	st.SoftwareReads = dec.U64()
	st.RequestAccesses = dec.U64()
	st.SlotsUsed = dec.U64()
	st.Exposed = dec.Bool()
	st.LostWrites = dec.U64()
	st.PairRevivals = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	f.slots = slots
	f.remap = remap
	f.pairBase = pairBase
	f.st = st
	return nil
}
