package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestCoverageCatchesDeletedFieldEncode is the meta-regression for
// ckpt-state-coverage: it proves the analyzer guards the real tree, not
// just fixtures. For every SaveState/saveState method in internal/pcm,
// internal/reviver and internal/wear it enumerates the single-line
// statements that hold a field's only save-side reference, deletes each
// one in a scratch copy of the tree, and asserts the rule reports a
// finding naming exactly that field. If a refactor ever blinds the
// analyzer — a loader regression, a selector-resolution bug — this
// fails before the invariant silently stops being checked.
func TestCoverageCatchesDeletedFieldEncode(t *testing.T) {
	base := t.TempDir()
	copyGoTree(t, "..", filepath.Join(base, "internal"))

	pkgs, err := Load(base)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, []Rule{&CkptStateCoverage{}}); len(diags) != 0 {
		t.Fatalf("baseline tree is not clean under ckpt-state-coverage: %v", diags)
	}

	targets := map[string]bool{
		"internal/pcm":     true,
		"internal/reviver": true,
		"internal/wear":    true,
	}
	type candidate struct {
		path  string
		line  int
		field string
		tname string
	}
	var cands []candidate
	for _, pkg := range pkgs {
		if !targets[pkg.Dir] {
			continue
		}
		for _, f := range pkg.Files {
			encName, ok := f.ImportName(ckptImportPath)
			if !ok {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				if fd.Name.Name != "SaveState" && fd.Name.Name != "saveState" {
					continue
				}
				if !takesCkptParam(fd, encName, "Encoder") || len(fd.Recv.List[0].Names) == 0 {
					continue
				}
				tname := recvTypeName(fd)
				st := f.Pkg.LookupStruct(tname)
				if st == nil {
					continue
				}
				declared := map[string]bool{}
				for _, field := range st.Fields.List {
					for _, n := range fieldIdentNames(field) {
						declared[n] = true
					}
				}
				recvID := fd.Recv.List[0].Names[0]
				_, info := pkg.TypeInfo()
				var recvObj types.Object
				if info != nil {
					recvObj = info.Defs[recvID]
				}
				// Lines holding exactly one single-line statement are the
				// deletable ones: removing the whole line keeps the file
				// parseable.
				stmtLines := map[int]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n.(type) {
					case *ast.ExprStmt, *ast.AssignStmt:
						from := pkg.Fset.Position(n.Pos()).Line
						if from == pkg.Fset.Position(n.End()).Line {
							stmtLines[from] = true
						}
					}
					return true
				})
				fieldLines := map[string]map[int]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					chain, rooted := receiverChain(sel, recvID, recvObj, info)
					if !rooted {
						return true
					}
					top := chain[0].Sel.Name
					if !declared[top] {
						return true
					}
					if fieldLines[top] == nil {
						fieldLines[top] = map[int]bool{}
					}
					fieldLines[top][pkg.Fset.Position(sel.Pos()).Line] = true
					return true
				})
				for field, lines := range fieldLines {
					if len(lines) != 1 {
						continue // the field survives on another line; deleting one is not a drop
					}
					var line int
					for l := range lines {
						line = l
					}
					if !stmtLines[line] {
						continue
					}
					cands = append(cands, candidate{f.Path, line, field, tname})
				}
			}
		}
	}
	// The floor guards the enumerator itself: if a refactor stopped it
	// finding encode lines, every mutation would vacuously "pass".
	if len(cands) < 5 {
		t.Fatalf("found only %d single-line field encodes across internal/{pcm,reviver,wear}; enumerator is broken", len(cands))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].path != cands[j].path {
			return cands[i].path < cands[j].path
		}
		return cands[i].line < cands[j].line
	})

	for _, c := range cands {
		abspath := filepath.Join(base, c.path)
		orig, err := os.ReadFile(abspath)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(orig), "\n")
		lines[c.line-1] = ""
		mutated := strings.Join(lines, "\n")
		if _, err := parser.ParseFile(token.NewFileSet(), c.path, mutated, 0); err != nil {
			continue // the line was part of a larger construct after all
		}
		if err := os.WriteFile(abspath, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
		mpkgs, err := Load(base)
		if err != nil {
			t.Fatal(err)
		}
		diags := Run(mpkgs, []Rule{&CkptStateCoverage{}})
		want := "field " + c.field + " of " + c.tname
		found := false
		for _, d := range diags {
			if d.Rule == "ckpt-state-coverage" && strings.Contains(d.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: deleting the only %s.%s encode produced no finding naming the field; got %v",
				c.path, c.line, c.tname, c.field, diags)
		}
		if err := os.WriteFile(abspath, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// copyGoTree copies the non-test .go files of src into dst, skipping
// testdata and this analyzer's own package (irrelevant to the targets
// and expensive to re-parse on every mutation).
func copyGoTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || rel == "analysis" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
