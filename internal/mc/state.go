package mc

import "wlreviver/internal/ckpt"

// SaveState serializes the baseline protector's counters and crippled
// flag. The Backend itself is stateless (its device and ECC scheme are
// checkpointed separately).
func (p *Passthrough) SaveState(e *ckpt.Encoder) {
	e.Bool(p.crippled)
	e.U64(p.requests)
	e.U64(p.reqAccesses)
	e.U64(p.lostWrites)
	e.U64(p.firstFailure)
}

// LoadState restores state written by SaveState.
func (p *Passthrough) LoadState(dec *ckpt.Decoder) error {
	crippled := dec.Bool()
	requests := dec.U64()
	reqAccesses := dec.U64()
	lostWrites := dec.U64()
	firstFailure := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	p.crippled = crippled
	p.requests = requests
	p.reqAccesses = reqAccesses
	p.lostWrites = lostWrites
	p.firstFailure = firstFailure
	return nil
}
