package reviver

// Randomized failure-schedule property test: quick.Check drives the full
// harness with arbitrary workload seeds and randomly scripted block
// kills, then verifies the paper's theorems and data integrity. This is
// the broadest net for chain-maintenance corner cases (loops, heads,
// switch interactions) beyond the statistical wear-out runs.

import (
	"fmt"
	"testing"
	"testing/quick"

	"wlreviver/internal/rng"
	"wlreviver/internal/trace"
)

// randomFailureScheduleProp runs one scripted-kill scenario under the
// Start-Gap harness and verifies the theorems and data integrity. Shared
// by the randomized quick.Check test and the deterministic regression
// sweep below.
func randomFailureScheduleProp(t *testing.T, seed uint64, killDensity uint8) bool {
	t.Logf("prop input: seed=%d killDensity=%d", seed, killDensity)
	const blocks = 64
	h := newHarness(t, harnessOpts{
		blocks: blocks, blocksPerPage: 8, endurance: 1e12, seed: 3, gapPeriod: 3,
	})
	// Script: each block gets a kill threshold drawn from a small
	// wear range with probability (killDensity%64)/64.
	src := rng.New(seed)
	killAt := make(map[uint64]uint64)
	density := uint64(killDensity) % 48
	for da := uint64(0); da < blocks+1; da++ {
		if src.Uint64n(64) < density {
			killAt[da] = 1 + src.Uint64n(40)
		}
	}
	h.be.FailureHook = func(da, wear uint64) bool {
		at, ok := killAt[da]
		return ok && wear >= at
	}
	g, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: blocks, PageBlocks: 8, TargetCoV: 2, Seed: seed,
	})
	if err != nil {
		return false
	}
	for i := 0; i < 3000; i++ {
		if !h.write(g.Next()) {
			break // memory exhausted: a legal outcome
		}
	}
	// Drain pending work, then check the theorems and content.
	for retries := 0; h.rv.HasPending() && retries < 50; retries++ {
		if !h.write(g.Next()) {
			break
		}
	}
	if h.rv.HasPending() {
		return true // permanently starved near death; nothing to verify
	}
	h.verifyTheorems() // t.Fatal on violation fails the whole test
	h.verifyContent()
	return true
}

func TestQuickRandomFailureSchedules(t *testing.T) {
	prop := func(seed uint64, killDensity uint8) bool {
		return randomFailureScheduleProp(t, seed, killDensity)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFailureScheduleSweep pins the property over a fixed seed
// grid. The quick.Check variant above historically flaked ("PA <n>
// reads tag <m>"); making instances deterministic (the grid below plus
// the pinned regressions that follow) surfaced one test artifact and a
// cluster of genuine suspended-delivery bugs. The artifact: sweepOrphans
// iterated an unordered map, so which orphaned spare was re-acquired
// first depended on Go's map hash seed — it now sweeps in sorted DA
// order, and separately the harness did not model the OS's recovery
// copies clobbering the donor frame (see noteRelocations). The engine
// bugs all involved deliveries suspended for lack of spare PAs: the
// orphan sweep relinked blocks whose data was still in the suspension
// buffer (detaching the chain head from where the data would resume),
// readEffective only consulted the buffer at the walk's entry, a fresh
// delivery into a suspended entry was later overwritten by the stale
// buffer instead of superseding it, and a starved walk's reduce()
// rewired the chain one hop from the starvation point while the
// suspension stayed aimed at the original entry. Any future failure
// here reproduces on every run.
func TestRandomFailureScheduleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the 300-scenario grid takes a few seconds")
	}
	for _, density := range []uint8{7, 23, 47} {
		t.Run(fmt.Sprintf("density%d", density), func(t *testing.T) {
			for seed := uint64(0); seed < 100; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					if !randomFailureScheduleProp(t, seed, density) {
						t.Fatal("property returned false")
					}
				})
			}
		})
	}
}

// TestRegressionFailureSchedules pins the exact (seed, killDensity)
// inputs that historically failed the randomized test, each the minimal
// reproducer for one of the suspended-delivery corners described above.
func TestRegressionFailureSchedules(t *testing.T) {
	cases := []struct {
		seed    uint64
		density uint8
	}{
		{46, 23},                    // donor-frame clobber bookkeeping
		{17051106687227390348, 32},  // orphan sweep relinked a suspended entry
		{6572427127705645652, 178},  // stale buffer overwrote a fresh delivery; starved reduce rewired the chain
		{7267576173342026046, 172},  // further starved-walk interleavings
		{8759791726591383302, 15},   // from the randomized test's
		{16920225663028178630, 125}, // failure log; kept as a
		{6920108699745412171, 28},   // belt-and-braces net over the
		{18091369981270603192, 132}, // same code paths
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("seed%d_density%d", c.seed, c.density), func(t *testing.T) {
			if !randomFailureScheduleProp(t, c.seed, c.density) {
				t.Fatal("property returned false")
			}
		})
	}
}

// The same property with Security Refresh as the revived scheme: swaps
// stress the dual-head delivery paths.
func TestQuickRandomFailureSchedulesSecurityRefresh(t *testing.T) {
	prop := func(seed uint64, killDensity uint8) bool {
		const blocks = 64
		h := newHarness(t, harnessOpts{
			blocks: blocks, blocksPerPage: 8, endurance: 1e12, seed: 5,
			gapPeriod: 3, securityRef: true,
		})
		src := rng.New(seed ^ 0x5F5F)
		killAt := make(map[uint64]uint64)
		density := uint64(killDensity) % 48
		for da := uint64(0); da < blocks; da++ {
			if src.Uint64n(64) < density {
				killAt[da] = 1 + src.Uint64n(40)
			}
		}
		h.be.FailureHook = func(da, wear uint64) bool {
			at, ok := killAt[da]
			return ok && wear >= at
		}
		g, err := trace.NewUniform(blocks, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 3000; i++ {
			if !h.write(g.Next()) {
				break
			}
		}
		for retries := 0; h.rv.HasPending() && retries < 50; retries++ {
			if !h.write(g.Next()) {
				break
			}
		}
		if h.rv.HasPending() {
			return true
		}
		h.verifyTheorems()
		h.verifyContent()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
