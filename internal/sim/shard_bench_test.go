package sim

import (
	"fmt"
	"runtime"
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
)

// benchSharded builds a failure-free sharded chip: large enough that the
// per-shard write loop dominates, endurance high enough that no block
// dies within the bench, an observer attached so the merge barrier does
// its real (event replay) work rather than the empty fast path.
func benchSharded(b *testing.B, grid uint64, pool int, observe bool) *ShardedEngine {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 16
	cfg.MeanEndurance = 1e12
	if observe {
		cfg.Observer = obs.NewMetrics()
	}
	se, err := NewShardedEngine(ShardedConfig{Grid: grid, Pool: pool}, cfg,
		func(shard uint64, shardCfg Config) (trace.Generator, error) {
			return trace.NewUniform(shardCfg.Blocks, shardCfg.Seed)
		})
	if err != nil {
		b.Fatal(err)
	}
	return se
}

// BenchmarkEngineRunNSharded measures the sharded write loop against the
// monolithic BenchmarkEngineRunN: the same 2^16-block healthy chip, cut
// into 8 shards, at pool widths 1 and NumCPU. The pool=1 row prices the
// sharding overhead (allocation arithmetic plus barrier); the ratio of
// the two rows is the speedup the shard pool buys on this machine.
func BenchmarkEngineRunNSharded(b *testing.B) {
	for _, pool := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			se := benchSharded(b, 8, pool, false)
			const batch = 1 << 12
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := uint64(batch)
				if rem := b.N - i; rem < batch {
					n = uint64(rem)
				}
				if se.RunN(n) != n {
					b.Fatal("chip stopped mid-bench")
				}
			}
		})
	}
}

// BenchmarkShardMergeBarrier isolates the fixed per-batch cost of the
// merge barrier: one write per shard per RunN call, so every iteration
// is almost entirely quota allocation, fan-out/join and ordered event
// replay into the chip observer. Real runs amortise this over
// Scale.BatchWrites-sized batches; this bench prices the thing being
// amortised.
func BenchmarkShardMergeBarrier(b *testing.B) {
	const grid = 8
	se := benchSharded(b, grid, 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if se.RunN(grid) != grid {
			b.Fatal("chip stopped mid-bench")
		}
	}
}
