package sim

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/stats"
)

// CheckpointPlan coordinates checkpoint, resume and crash injection
// across an experiment sweep. Each engine an experiment builds gets a
// per-job checkpoint file in Dir, named after its stable observer-style
// key (e.g. "fig6/ocean/ECP6-SG-WLR"), and checkpoints at exact
// simulated-write boundaries: the first batch end at or past each
// multiple of Every. Because batches are never split to take a
// checkpoint, a run resumed from any checkpoint replays the identical
// batch sequence and produces byte-identical results to an
// uninterrupted run, at every Workers value.
//
// The same plan is shared by every worker goroutine; its only mutable
// state (the crash budget) is mutex-guarded.
type CheckpointPlan struct {
	// Dir is the checkpoint directory; it must exist.
	Dir string
	// Every is the checkpoint period in per-engine simulated writes.
	// 0 checkpoints each job only once, at completion.
	Every uint64
	// Resume restores each job from its file in Dir before running.
	// Jobs without a file start fresh; jobs checkpointed as complete
	// return their recorded results without re-running.
	Resume bool
	// CrashKey, when non-empty, arms the crash-fault injector on the
	// engine whose job key matches ("*" matches every engine): that
	// engine halts at CrashAt total simulated writes and its experiment
	// returns ErrCrashed.
	CrashKey string
	// CrashAt is the absolute per-engine write threshold for CrashKey.
	CrashAt uint64

	mu         sync.Mutex
	crashArmed bool
	crashLeft  uint64
}

// ArmTotalCrash arms a sweep-wide crash budget: after n more simulated
// writes across all engines combined, the sweep halts with ErrCrashed —
// the cmd/paper -crash-after test hook. Unlike CrashKey, the exact
// engine that trips the budget depends on worker scheduling; the
// resume guarantee holds regardless, which is the point of the fault.
func (p *CheckpointPlan) ArmTotalCrash(n uint64) {
	p.mu.Lock()
	p.crashArmed = true
	p.crashLeft = n
	p.mu.Unlock()
}

// takeBudget draws up to want writes from the crash budget. It returns
// how many writes the caller may service and whether the crash fires
// once they are done. With no budget armed it grants everything.
func (p *CheckpointPlan) takeBudget(want uint64) (allowed uint64, crashNow bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.crashArmed {
		return want, false
	}
	if want >= p.crashLeft {
		allowed = p.crashLeft
		p.crashLeft = 0
		return allowed, true
	}
	p.crashLeft -= want
	return want, false
}

// driver builds the per-job checkpoint driver for the given key, or nil
// when no plan is set — the nil driver is a no-op in every method, so
// runners carry no checkpoint branches when checkpointing is off.
func (p *CheckpointPlan) driver(key string) *ckptDriver {
	if p == nil {
		return nil
	}
	return &ckptDriver{plan: p, key: key}
}

// ckptDriver threads one job's checkpoint state through its run loop.
// All methods are nil-receiver safe.
type ckptDriver struct {
	plan *CheckpointPlan
	key  string
	next uint64 // next checkpoint boundary in engine writes
}

// path returns the job's checkpoint file: the key with every character
// outside [a-zA-Z0-9._-] replaced by '_', plus the .ckpt suffix.
func (d *ckptDriver) path() string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, d.key)
	return filepath.Join(d.plan.Dir, sanitized+".ckpt")
}

// restore loads the job's checkpoint into e (and the harness section
// into loadHarness) when the plan resumes and the file exists, and arms
// the next checkpoint boundary either way. A missing file is a fresh
// start, not an error; a present-but-invalid file is an error — a
// corrupt checkpoint must never silently diverge.
func (d *ckptDriver) restore(e Machine, loadHarness func(*ckpt.Decoder) error) error {
	if d == nil {
		return nil
	}
	if d.plan.Resume {
		data, err := os.ReadFile(d.path())
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// fresh start
		case err != nil:
			return err
		default:
			dec, err := ckpt.NewDecoder(data)
			if err != nil {
				return fmt.Errorf("%s: %w", d.path(), err)
			}
			if err := e.decodeState(dec); err != nil {
				return fmt.Errorf("%s: %w", d.path(), err)
			}
			if err := dec.Section("harness"); err != nil {
				return fmt.Errorf("%s: %w", d.path(), err)
			}
			if err := loadHarness(dec); err != nil {
				return fmt.Errorf("%s: %w", d.path(), err)
			}
			if err := dec.Close(); err != nil {
				return fmt.Errorf("%s: %w", d.path(), err)
			}
		}
	}
	if d.plan.Every != 0 {
		d.next = (e.Writes()/d.plan.Every + 1) * d.plan.Every
	}
	return nil
}

// arm applies the plan's per-engine crash fault when this job's key
// matches.
func (d *ckptDriver) arm(e Machine) {
	if d == nil || d.plan.CrashKey == "" {
		return
	}
	if d.plan.CrashKey == "*" || d.plan.CrashKey == d.key {
		e.CrashAfter(d.plan.CrashAt)
	}
}

// clampBatch draws the batch from the sweep-wide crash budget.
func (d *ckptDriver) clampBatch(want uint64) (allowed uint64, crashNow bool) {
	if d == nil {
		return want, false
	}
	return d.plan.takeBudget(want)
}

// afterBatch runs at every batch end. It checkpoints the engine plus
// the harness section when the run crossed the next boundary, or
// unconditionally when final (the job's completion record). Crashed
// batches never reach here — a crash abandons the job abruptly, like
// the process kill it simulates, so the file keeps the previous
// consistent image.
func (d *ckptDriver) afterBatch(e Machine, final bool, saveHarness func(*ckpt.Encoder)) error {
	if d == nil {
		return nil
	}
	if !final && (d.plan.Every == 0 || e.Writes() < d.next) {
		return nil
	}
	enc := ckpt.NewEncoder()
	if err := e.encodeState(enc); err != nil {
		return err
	}
	enc.Begin("harness")
	saveHarness(enc)
	enc.End()
	if err := writeFileAtomic(d.path(), enc.Finish()); err != nil {
		return err
	}
	if d.plan.Every != 0 {
		d.next = (e.Writes()/d.plan.Every + 1) * d.plan.Every
	}
	return nil
}

// writeFileAtomic writes data via a temp file and rename, so a crash
// mid-write leaves either the old checkpoint or the new one — never a
// torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// saveCurveHarness writes the curve-runner harness section payload: the
// done flag and the curve sampled so far.
func saveCurveHarness(enc *ckpt.Encoder, curve *stats.Curve, done bool) {
	enc.Bool(done)
	curve.SaveState(enc)
}

// loadCurveHarness reads the payload written by saveCurveHarness,
// checking the curve belongs to this job.
func loadCurveHarness(dec *ckpt.Decoder, name string, curve *stats.Curve) (done bool, err error) {
	done = dec.Bool()
	if err := curve.LoadState(dec); err != nil {
		return false, err
	}
	if curve.Name != name {
		return false, fmt.Errorf("sim: checkpoint holds curve %q, expected %q", curve.Name, name)
	}
	return done, nil
}
