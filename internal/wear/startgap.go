package wear

import (
	"fmt"

	"wlreviver/internal/obs"
)

// StartGap implements the Start-Gap wear-leveling scheme (Qureshi et al.,
// MICRO'09), the representative scheme used throughout the paper's
// evaluation.
//
// The scheme manages N data blocks plus one gap block (NumDAs = N+1). Two
// registers, Start and Gap, define the algebraic mapping
//
//	pa' = R(pa)                       // static randomization
//	a   = (pa' + Start) mod N
//	da  = a      if a < Gap
//	da  = a + 1  otherwise
//
// Every GapWritePeriod writes (ψ, paper default 100) the gap moves one
// slot down by migrating the block above it into the gap; when the gap
// wraps around the top, Start advances, completing one rotation of the
// whole address space. Over N+1 gap movements every block of data visits
// a new device address, which evens wear even under adversarial write
// streams — provided the mapping keeps functioning, which is exactly what
// fails on the first block failure without WL-Reviver.
type StartGap struct {
	n      uint64 // ckpt:skip construction-time PA-space size, validated on restore
	start  uint64
	gap    uint64
	rand   Randomizer // ckpt:skip construction-time Feistel network, a pure function of the seed
	period uint64     // ckpt:skip construction-time ψ, fingerprinted by the engine
	writes uint64     // writes since last gap movement

	gapMoves uint64

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; GapMoved probe
}

// StartGapConfig configures a StartGap leveler.
type StartGapConfig struct {
	// NumPAs is the number of software-visible blocks N; the scheme uses
	// N+1 device blocks.
	NumPAs uint64
	// GapWritePeriod is ψ: one gap movement per ψ serviced writes.
	// The paper uses 100.
	GapWritePeriod uint64
	// Randomizer is the static address-space randomization layer. When
	// nil, a 4-round Feistel keyed by Seed is used. Pass Identity to
	// disable randomization (ablation).
	Randomizer Randomizer
	// Seed keys the default randomizer.
	Seed uint64
}

// NewStartGap builds the scheme.
func NewStartGap(cfg StartGapConfig) (*StartGap, error) {
	if cfg.NumPAs == 0 {
		return nil, fmt.Errorf("wear: start-gap needs a non-empty PA space")
	}
	if cfg.GapWritePeriod == 0 {
		return nil, fmt.Errorf("wear: start-gap GapWritePeriod must be positive")
	}
	r := cfg.Randomizer
	if r == nil {
		var err error
		r, err = NewFeistel(cfg.NumPAs, 4, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	if r.N() != cfg.NumPAs {
		return nil, fmt.Errorf("wear: randomizer domain %d != NumPAs %d", r.N(), cfg.NumPAs)
	}
	// The randomizer is static for the lifetime of the scheme, so its
	// permutation is flattened into a lookup table once here; the per-write
	// Map becomes one array load instead of multi-round Feistel hashing.
	r = Precompute(r)
	return &StartGap{
		n:      cfg.NumPAs,
		gap:    cfg.NumPAs, // gap starts at the top (block N)
		rand:   r,
		period: cfg.GapWritePeriod,
	}, nil
}

// Name implements Leveler.
func (s *StartGap) Name() string { return "Start-Gap" }

// NumPAs implements Leveler.
func (s *StartGap) NumPAs() uint64 { return s.n }

// NumDAs implements Leveler. Start-Gap uses one extra block for the gap.
func (s *StartGap) NumDAs() uint64 { return s.n + 1 }

// Map implements Leveler.
func (s *StartGap) Map(pa uint64) uint64 {
	if pa >= s.n {
		panic(fmt.Sprintf("wear: start-gap PA %d out of range [0,%d)", pa, s.n))
	}
	a := s.rand.Map(pa) + s.start
	if a >= s.n {
		a -= s.n
	}
	if a < s.gap {
		return a
	}
	return a + 1
}

// Inverse implements Leveler. The gap block has no preimage.
func (s *StartGap) Inverse(da uint64) (uint64, bool) {
	if da >= s.n+1 {
		panic(fmt.Sprintf("wear: start-gap DA %d out of range [0,%d]", da, s.n))
	}
	if da == s.gap {
		return 0, false
	}
	a := da
	if a > s.gap {
		a--
	}
	if a >= s.start {
		a -= s.start
	} else {
		a += s.n - s.start
	}
	return s.rand.Inverse(a), true
}

// GapDA returns the current device address of the gap block.
func (s *StartGap) GapDA() uint64 { return s.gap }

// GapMoves returns the number of gap movements performed.
func (s *StartGap) GapMoves() uint64 { return s.gapMoves }

// NoteWrite implements Leveler: after every ψ-th write, move the gap.
// The written PA does not influence Start-Gap's schedule.
func (s *StartGap) NoteWrite(_ uint64, mover Mover) {
	s.writes++
	if s.writes < s.period {
		return
	}
	s.writes = 0
	s.moveGap(mover)
}

// moveGap performs one gap movement: the block logically above the gap is
// migrated into the gap, and the gap takes its place. When the gap is at
// the bottom (0), the block at the top (N) wraps into it and Start
// advances.
func (s *StartGap) moveGap(mover Mover) {
	var src uint64
	if s.gap == 0 {
		src = s.n
	} else {
		src = s.gap - 1
	}
	mover.Migrate(src, s.gap)
	s.gap = src
	if s.gap == s.n { // wrapped: one full rotation completed
		s.start++
		if s.start == s.n {
			s.start = 0
		}
	}
	s.gapMoves++
	if s.observer != nil {
		s.observer.GapMoved(0, s.gap)
	}
}

// SetObserver attaches an event observer (nil detaches). GapMoved fires
// once per gap movement with region 0 and the gap's new device address.
func (s *StartGap) SetObserver(o obs.Observer) { s.observer = o }

// ForceGapMove triggers one gap movement immediately, regardless of the
// write counter. Used by tests and by analyses that need to step the
// mapping deterministically.
func (s *StartGap) ForceGapMove(mover Mover) { s.moveGap(mover) }

// Start returns the current start register (exposed for tests/inspection).
func (s *StartGap) Start() uint64 { return s.start }

var _ Leveler = (*StartGap)(nil)
