package wear

// maxTableDomain caps the size of precomputed permutation tables. One
// uint32 table at 2^24 entries costs 64 MiB — acceptable for paper-scale
// geometries — but beyond that the memoization is declined and the
// underlying randomizer is used directly.
const maxTableDomain = 1 << 24

// Table is a Randomizer whose forward permutation has been flattened
// into a lookup array, turning the per-write Map from multi-round
// Feistel hashing (with cycle walking) into a single array load. The
// inverse stays on the source randomizer: Inverse runs only on failure
// handling and leveler maintenance — orders of magnitude rarer than Map
// — so a second 64 MiB array per engine buys nothing the source cannot
// compute. Build one with Precompute.
type Table struct {
	fwd []uint32
	src Randomizer
}

// Precompute memoizes a static randomizer into a Table by evaluating its
// permutation once over the whole domain. It returns the input unchanged
// when memoization would not help (Identity, an existing Table) or would
// cost too much memory (domain above maxTableDomain, or not addressable
// with uint32 entries).
//
// The input must be static: its Map must not depend on mutable state.
// Every Randomizer in this package and its users satisfies that by
// contract ("a static invertible address scrambler") — the dynamic layers
// (start/gap registers, refresh keys) live above the Randomizer.
func Precompute(r Randomizer) Randomizer {
	if r == nil {
		return nil
	}
	switch r.(type) {
	case Identity, *Table:
		return r
	}
	n := r.N()
	if n == 0 || n > maxTableDomain {
		return r
	}
	t := &Table{fwd: make([]uint32, n), src: r}
	for x := uint64(0); x < n; x++ {
		t.fwd[x] = uint32(r.Map(x))
	}
	return t
}

// Map returns the memoized image of x. Out-of-domain inputs panic via the
// bounds check, matching the underlying randomizer's contract.
func (t *Table) Map(x uint64) uint64 { return uint64(t.fwd[x]) }

// Inverse returns the preimage of y, computed by the source randomizer.
func (t *Table) Inverse(y uint64) uint64 { return t.src.Inverse(y) }

// N returns the domain size.
func (t *Table) N() uint64 { return uint64(len(t.fwd)) }

var _ Randomizer = (*Table)(nil)
