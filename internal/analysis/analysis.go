// Package analysis is a zero-dependency static-analysis engine that
// enforces the repository's determinism invariants.
//
// The reproduction's headline guarantee is bit-exact determinism: every
// figure and table must be byte-identical across -workers values and
// across runs from the same seed. The dynamic checks (the parallel-vs-
// serial test and the race detector) catch violations at run time; the
// rules in this package catch them at `make verify` time, before a
// wall-clock read or an unseeded random draw ever produces a subtly
// wrong curve.
//
// The engine is built on the standard library only (go/ast, go/parser,
// go/token) so the module stays dependency-free. Rules implement the
// Rule interface and report Diagnostics; findings can be suppressed at
// a single site with a justifying comment:
//
//	//lint:ignore <rule-name> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a bare ignore is itself a finding.
//
// The cmd/wlvet driver walks the module and exits non-zero on findings;
// scripts/verify.sh runs it between `go vet` and `go build`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired and a
// human-readable message.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic as "path:line:col: message [rule]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Rule)
}

// File is one parsed source file plus the context rules need: its
// module-relative path and a back pointer to the package it belongs to.
type File struct {
	// Path is relative to the module root and slash-separated, e.g.
	// "internal/sim/engine.go". Rules scope themselves by prefix.
	Path string
	AST  *ast.File
	Pkg  *Package
}

// Package groups the files of one directory (one Go package, test files
// included) under a shared FileSet. Type information is computed lazily
// by TypeInfo (typed.go) the first time a type-aware rule asks for it.
type Package struct {
	// Dir is the module-relative, slash-separated directory, e.g.
	// "internal/sim". The module root is "".
	Dir   string
	Fset  *token.FileSet
	Files []*File

	// Mod links the package to the other packages of the same Load
	// call for module-internal import resolution. nil for packages
	// built by hand in tests; type-aware rules must tolerate that.
	Mod *Module

	// TypeErrors collects (non-fatal) type-checking errors from
	// TypeInfo. Fixture trees import packages they don't carry, so
	// errors here are expected and diagnostics never depend on them.
	TypeErrors []error

	typesPkg    *types.Package
	typesInfo   *types.Info
	typeChecked bool
	checking    bool
}

// Rule is one determinism invariant. Check is called once per file and
// reports findings through report; the engine attaches the rule name,
// resolves positions and applies //lint:ignore suppressions.
type Rule interface {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore comments, e.g. "no-wallclock".
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Check inspects one file. report may be called any number of
	// times with the offending node and a printf-style message.
	Check(f *File, report func(node ast.Node, format string, args ...any))
}

// Rules returns the repository's rule set, in diagnostic-name order.
func Rules() []Rule {
	return []Rule{
		&CkptStateCoverage{},
		&ConfinedGoroutines{},
		&NoCkptMapOrder{},
		&NoGlobalRand{},
		&NoWallclock{},
		&ObserverPurity{},
		&OrderedMapOutput{},
		&SeededConstructors{},
		&TransitiveNondeterminism{},
	}
}

// IsTest reports whether the file is a _test.go file.
func (f *File) IsTest() bool { return strings.HasSuffix(f.Path, "_test.go") }

// In reports whether the file lives in dir or below it, e.g.
// f.In("internal/sim").
func (f *File) In(dir string) bool {
	return f.Path == dir || strings.HasPrefix(f.Path, dir+"/")
}

// ImportName returns the identifier the file uses for the import with
// the given path ("time" for `import "time"`, "t" for `import t "time"`)
// and whether the file imports it at all. Dot and blank imports return
// ok=false: their names never qualify a selector.
func (f *File) ImportName(path string) (name string, ok bool) {
	for _, imp := range f.AST.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return "", false
			}
			return imp.Name.Name, true
		}
		base := path
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		return base, true
	}
	return "", false
}

// LookupStruct finds a struct type declared anywhere in the package by
// name. Used by rules that need shallow field resolution (e.g. "does
// this config struct carry a Seed?") without a full type checker.
func (p *Package) LookupStruct(name string) *ast.StructType {
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// Load parses every .go file under root, grouped by directory. It skips
// hidden directories, vendor and testdata trees — testdata holds the
// analyzer's own fixtures, which intentionally violate the rules. The
// returned packages are sorted by directory, files by path.
func Load(root string) ([]*Package, error) {
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := ""
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir, Fset: token.NewFileSet()}
			byDir[dir] = pkg
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// ParseComments keeps //lint:ignore directives; object
		// resolution (on by default) lets rules chase local
		// identifiers to their declarations.
		astf, err := parser.ParseFile(pkg.Fset, rel, src, parser.ParseComments)
		if err != nil {
			return err
		}
		pkg.Files = append(pkg.Files, &File{Path: rel, AST: astf, Pkg: pkg})
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Path < p.Files[j].Path })
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	newModule(pkgs)
	return pkgs, nil
}

// RuleStats counts one rule's outcomes over a RunStats call: findings
// that survived, and findings silenced by a well-formed //lint:ignore.
type RuleStats struct {
	Findings   int
	Suppressed int
}

// Run applies every rule to every file and returns the surviving
// diagnostics, sorted by position. Findings carrying a well-formed
// //lint:ignore are dropped; malformed ignore directives (missing rule
// or missing reason) are reported under the "ignore-syntax" rule so a
// bare ignore can never silently disable the gate. Malformed ckpt
// field annotations are reported the same way under "ckpt-annotation"
// (see ckptcover.go).
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	diags, _ := RunStats(pkgs, rules)
	return diags
}

// RunStats is Run plus a per-rule tally. Every rule passed in gets an
// entry (so a summary can show explicit zeros); the "ignore-syntax" and
// "ckpt-annotation" pseudo-rules appear only when they fire.
func RunStats(pkgs []*Package, rules []Rule) ([]Diagnostic, map[string]RuleStats) {
	stats := make(map[string]RuleStats, len(rules))
	for _, r := range rules {
		stats[r.Name()] = RuleStats{}
	}
	count := func(rule string, suppressed bool) {
		st := stats[rule]
		if suppressed {
			st.Suppressed++
		} else {
			st.Findings++
		}
		stats[rule] = st
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			sup := suppressions(pkg.Fset, f)
			for _, bad := range sup.malformed {
				diags = append(diags, bad)
				count(bad.Rule, false)
			}
			for _, bad := range ckptAnnotationIssues(pkg.Fset, f) {
				diags = append(diags, bad)
				count(bad.Rule, false)
			}
			for _, r := range rules {
				rule := r // capture for the closure
				r.Check(f, func(node ast.Node, format string, args ...any) {
					pos := pkg.Fset.Position(node.Pos())
					if sup.covers(rule.Name(), pos.Line) {
						count(rule.Name(), true)
						return
					}
					count(rule.Name(), false)
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Rule: rule.Name(),
						Msg:  fmt.Sprintf(format, args...),
					})
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, stats
}
