package wear

import (
	"fmt"

	"wlreviver/internal/obs"
	"wlreviver/internal/osmodel"
)

// SoftWearConfig configures a SoftWear leveler.
type SoftWearConfig struct {
	// NumPAs is the number of software-visible blocks; relocations are
	// swaps, so the scheme uses exactly NumPAs device blocks.
	NumPAs uint64
	// PageBlocks is the relocation granularity in blocks — the OS page
	// size. Must divide NumPAs.
	PageBlocks uint64
	// EpochWrites is the leveling epoch length: once per this many total
	// writes the policy relocates the epoch's hottest page onto the
	// least-worn frame.
	EpochWrites uint64
}

// SoftWear implements SoftWear-style software-only wear leveling
// (arXiv:2004.03244): the OS counts writes per virtual page in software,
// and at every epoch boundary relocates the epoch's hottest page onto the
// frame with the lowest cumulative software wear estimate, updating the
// page table (osmodel.PageTable) rather than any hardware decoder. There
// are no hardware counters and no RNG on the hot path — ties break to the
// lowest index, so the policy is deterministic from the write stream
// alone. Relocations are page-sized swaps (NumDAs == NumPAs).
type SoftWear struct {
	n          uint64 // ckpt:skip construction-time PA-space size, validated on restore
	pageBlocks uint64 // ckpt:skip construction-time page size, fingerprinted by the engine
	period     uint64 // ckpt:skip construction-time epoch length, fingerprinted by the engine
	pt         *osmodel.PageTable
	counts     []uint32 // per-vpage writes this epoch
	est        []uint64 // per-frame cumulative software wear estimate
	epochW     uint64   // writes since last epoch boundary
	relocs     uint64

	// In-flight relocation cursor: a page relocation is pageBlocks
	// block-pair swaps, and the mapping must advance pair by pair — each
	// Mover call observes the pre-update mapping of ITS pair and the
	// post-update mapping of every earlier pair (the wear.Mover contract;
	// WL-Reviver's chain walks depend on it). The cursor lives only inside
	// one NoteWrite call, so it is never checkpointed.
	relocActive bool   // ckpt:skip transient within one NoteWrite call
	relocA      uint64 // ckpt:skip transient within one NoteWrite call
	relocB      uint64 // ckpt:skip transient within one NoteWrite call
	relocProg   uint64 // ckpt:skip transient within one NoteWrite call

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; PageRelocated probe
}

// NewSoftWear builds the scheme.
func NewSoftWear(cfg SoftWearConfig) (*SoftWear, error) {
	if cfg.NumPAs == 0 {
		return nil, fmt.Errorf("wear: softwear needs a non-empty PA space")
	}
	if cfg.PageBlocks == 0 || cfg.NumPAs%cfg.PageBlocks != 0 {
		return nil, fmt.Errorf("wear: softwear page size %d must divide the PA space %d", cfg.PageBlocks, cfg.NumPAs)
	}
	if cfg.EpochWrites == 0 {
		return nil, fmt.Errorf("wear: softwear EpochWrites must be positive")
	}
	numPages := cfg.NumPAs / cfg.PageBlocks
	pt, err := osmodel.NewPageTable(numPages)
	if err != nil {
		return nil, err
	}
	return &SoftWear{
		n:          cfg.NumPAs,
		pageBlocks: cfg.PageBlocks,
		period:     cfg.EpochWrites,
		pt:         pt,
		counts:     make([]uint32, numPages),
		est:        make([]uint64, numPages),
	}, nil
}

// Name implements Leveler.
func (s *SoftWear) Name() string { return "SoftWear" }

// NumPAs implements Leveler.
func (s *SoftWear) NumPAs() uint64 { return s.n }

// NumDAs implements Leveler. Relocations are swaps: no spare blocks.
func (s *SoftWear) NumDAs() uint64 { return s.n }

// Map implements Leveler.
func (s *SoftWear) Map(pa uint64) uint64 {
	if pa >= s.n {
		panic(fmt.Sprintf("wear: softwear PA %d out of range [0,%d)", pa, s.n))
	}
	v, off := pa/s.pageBlocks, pa%s.pageBlocks
	f := s.pt.Frame(v)
	if s.relocActive && off < s.relocProg {
		// Block pairs below the cursor have already exchanged frames.
		if v == s.relocA {
			f = s.pt.Frame(s.relocB)
		} else if v == s.relocB {
			f = s.pt.Frame(s.relocA)
		}
	}
	return f*s.pageBlocks + off
}

// Inverse implements Leveler. All DAs are mapped (ok is always true).
func (s *SoftWear) Inverse(da uint64) (uint64, bool) {
	if da >= s.n {
		panic(fmt.Sprintf("wear: softwear DA %d out of range [0,%d)", da, s.n))
	}
	f, off := da/s.pageBlocks, da%s.pageBlocks
	v := s.pt.PageAt(f)
	if s.relocActive && off < s.relocProg {
		if v == s.relocA {
			v = s.relocB
		} else if v == s.relocB {
			v = s.relocA
		}
	}
	return v*s.pageBlocks + off, true
}

// NoteWrite implements Leveler: count the write in software, and at every
// epoch boundary relocate the hottest page onto the least-worn frame.
func (s *SoftWear) NoteWrite(pa uint64, mover Mover) {
	if pa >= s.n {
		panic(fmt.Sprintf("wear: softwear PA %d out of range [0,%d)", pa, s.n))
	}
	v := pa / s.pageBlocks
	s.counts[v]++
	s.est[s.pt.Frame(v)]++
	s.epochW++
	if s.epochW < s.period {
		return
	}
	s.epochW = 0
	s.rebalance(mover)
}

// rebalance performs one epoch's relocation decision and resets the
// per-page epoch counters.
func (s *SoftWear) rebalance(mover Mover) {
	hot, cold := uint64(0), uint64(0)
	for v := uint64(1); v < uint64(len(s.counts)); v++ {
		if s.counts[v] > s.counts[hot] {
			hot = v
		}
	}
	for f := uint64(1); f < uint64(len(s.est)); f++ {
		if s.est[f] < s.est[cold] {
			cold = f
		}
	}
	if oldFrame := s.pt.Frame(hot); oldFrame != cold {
		// Each block pair's data moves BEFORE its mapping flips (the
		// wear.Mover contract): the relocation cursor advances the mapping
		// pair by pair as the swaps land, then the page table commits the
		// whole exchange.
		s.relocActive, s.relocA, s.relocB, s.relocProg = true, hot, s.pt.PageAt(cold), 0
		for i := uint64(0); i < s.pageBlocks; i++ {
			mover.Swap(oldFrame*s.pageBlocks+i, cold*s.pageBlocks+i)
			s.relocProg = i + 1
		}
		s.relocActive = false
		s.pt.Swap(s.relocA, s.relocB)
		s.relocs++
		if s.observer != nil {
			s.observer.PageRelocated(oldFrame, cold)
		}
	}
	for v := range s.counts {
		s.counts[v] = 0
	}
}

// SetObserver attaches an event observer (nil detaches). PageRelocated
// fires once per epoch relocation with the frames exchanged.
func (s *SoftWear) SetObserver(o obs.Observer) { s.observer = o }

// Relocations returns the number of page relocations performed.
func (s *SoftWear) Relocations() uint64 { return s.relocs }

var _ Leveler = (*SoftWear)(nil)
