// Fixture: transitive-nondeterminism — wrapping time.Now in helpers
// does not launder it. The base rule owns the direct call; the
// transitive rule flags each call site of a tainted helper, at any
// depth, with a witness chain.
package sim

import "time"

// stamp is the direct offender; the base rule owns this finding.
func stamp() int64 {
	return time.Now().UnixNano() // want no-wallclock "wall-clock call time.Now"
}

// wrap launders stamp behind one level of indirection.
func wrap() int64 {
	return stamp() // want transitive-nondeterminism "call to stamp transitively reads the wall clock"
}

// deep shows the taint crossing two levels: it never touches time
// itself, but calling wrap still reaches the wall clock.
func deep() int64 {
	return wrap() // want transitive-nondeterminism "call to wrap transitively reads the wall clock"
}

// paced records why one transitive read is acceptable.
func paced() int64 {
	//lint:ignore transitive-nondeterminism fixture demonstrates a justified suppression
	return wrap()
}
