package wear

import (
	"fmt"
	"math/bits"

	"wlreviver/internal/obs"
)

// RegionedStartGap is the practical Start-Gap organisation from the
// original MICRO'09 paper: the memory is divided into R regions, each
// with its own Start and Gap registers and its own gap line, so a gap
// movement copies within a region (bounded latency) and regions level
// independently. A chip-wide static randomizer still decorrelates
// addresses across the whole space, which is what defeats spatially
// concentrated writes.
//
// Under WL-Reviver this is simply another Leveler — the framework revives
// it unmodified, which the tests use as further evidence of generality.
type RegionedStartGap struct {
	regions    []*StartGap
	rand       Randomizer // ckpt:skip construction-time Feistel network, a pure function of the seed
	numPAs     uint64     // ckpt:skip construction-time geometry, validated on restore
	regionSize uint64     // ckpt:skip construction-time geometry, validated on restore
	daStride   uint64     // ckpt:derived regionSize + 1 (each region's private gap line)
	shift      uint       // ckpt:derived log2(regionSize), recomputed in New
}

// RegionedStartGapConfig configures the scheme.
type RegionedStartGapConfig struct {
	// NumPAs is the total software-visible space in blocks.
	NumPAs uint64
	// Regions is the number of independent regions; it must divide
	// NumPAs, and the region size must be a power of two (the region is
	// selected by high address bits, as in the original design).
	Regions uint64
	// GapWritePeriod is ψ per region: one gap move per ψ writes landing
	// in that region.
	GapWritePeriod uint64
	// Randomizer is the chip-wide static scrambler (nil: 4-round
	// Feistel keyed by Seed).
	Randomizer Randomizer
	// Seed keys the default randomizer.
	Seed uint64
}

// NewRegionedStartGap builds the scheme.
func NewRegionedStartGap(cfg RegionedStartGapConfig) (*RegionedStartGap, error) {
	if cfg.NumPAs == 0 || cfg.Regions == 0 {
		return nil, fmt.Errorf("wear: regioned start-gap needs positive space and regions")
	}
	if cfg.NumPAs%cfg.Regions != 0 {
		return nil, fmt.Errorf("wear: regions %d must divide the space %d", cfg.Regions, cfg.NumPAs)
	}
	regionSize := cfg.NumPAs / cfg.Regions
	if regionSize&(regionSize-1) != 0 {
		return nil, fmt.Errorf("wear: region size %d must be a power of two", regionSize)
	}
	if cfg.GapWritePeriod == 0 {
		return nil, fmt.Errorf("wear: GapWritePeriod must be positive")
	}
	r := cfg.Randomizer
	if r == nil {
		var err error
		r, err = NewFeistel(cfg.NumPAs, 4, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	if r.N() != cfg.NumPAs {
		return nil, fmt.Errorf("wear: randomizer domain %d != NumPAs %d", r.N(), cfg.NumPAs)
	}
	// Flatten the chip-wide static scrambler into a lookup table (the
	// per-region Start-Gaps below use Identity, which stays as-is).
	r = Precompute(r)
	s := &RegionedStartGap{
		regions:    make([]*StartGap, cfg.Regions),
		rand:       r,
		numPAs:     cfg.NumPAs,
		regionSize: regionSize,
		daStride:   regionSize + 1,
		shift:      uint(bits.TrailingZeros64(regionSize)),
	}
	for i := range s.regions {
		// Each region runs an un-randomized Start-Gap over its local
		// offsets; the chip-wide randomizer has already scrambled.
		sg, err := NewStartGap(StartGapConfig{
			NumPAs:         regionSize,
			GapWritePeriod: cfg.GapWritePeriod,
			Randomizer:     Identity{Size: regionSize},
		})
		if err != nil {
			return nil, err
		}
		s.regions[i] = sg
	}
	return s, nil
}

// Name implements Leveler.
func (s *RegionedStartGap) Name() string {
	return fmt.Sprintf("Start-Gap-%dR", len(s.regions))
}

// NumPAs implements Leveler.
func (s *RegionedStartGap) NumPAs() uint64 { return s.numPAs }

// NumDAs implements Leveler: one gap line per region.
func (s *RegionedStartGap) NumDAs() uint64 {
	return s.numPAs + uint64(len(s.regions))
}

// split scrambles pa and separates it into (region, local offset).
func (s *RegionedStartGap) split(pa uint64) (uint64, uint64) {
	mid := s.rand.Map(pa)
	return mid >> s.shift, mid & (s.regionSize - 1)
}

// Map implements Leveler.
func (s *RegionedStartGap) Map(pa uint64) uint64 {
	if pa >= s.numPAs {
		panic(fmt.Sprintf("wear: regioned start-gap PA %d out of range [0,%d)", pa, s.numPAs))
	}
	region, local := s.split(pa)
	return region*s.daStride + s.regions[region].Map(local)
}

// Inverse implements Leveler.
func (s *RegionedStartGap) Inverse(da uint64) (uint64, bool) {
	if da >= s.NumDAs() {
		panic(fmt.Sprintf("wear: regioned start-gap DA %d out of range [0,%d)", da, s.NumDAs()))
	}
	region := da / s.daStride
	localDA := da % s.daStride
	local, ok := s.regions[region].Inverse(localDA)
	if !ok {
		return 0, false // the region's gap line
	}
	return s.rand.Inverse(region<<s.shift | local), true
}

// NoteWrite implements Leveler: the written address's region paces its
// own gap, with local migrations translated to chip DAs.
func (s *RegionedStartGap) NoteWrite(pa uint64, mover Mover) {
	region, _ := s.split(pa)
	base := region * s.daStride
	s.regions[region].NoteWrite(0, FuncMover{
		MigrateFn: func(src, dst uint64) { mover.Migrate(base+src, base+dst) },
		SwapFn:    func(a, b uint64) { mover.Swap(base+a, base+b) },
	})
}

// GapMoves returns the total gap movements across regions.
func (s *RegionedStartGap) GapMoves() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.GapMoves()
	}
	return total
}

// regionGapObserver translates a region-local GapMoved event into chip
// coordinates: the real region index and the gap's chip device address.
type regionGapObserver struct {
	obs.Base
	o      obs.Observer
	region int
	base   uint64
}

func (r regionGapObserver) GapMoved(_ int, gapDA uint64) {
	r.o.GapMoved(r.region, r.base+gapDA)
}

// SetObserver attaches an event observer (nil detaches). Each region's
// gap movement fires GapMoved with the region index and the chip DA.
func (s *RegionedStartGap) SetObserver(o obs.Observer) {
	for i, r := range s.regions {
		if o == nil {
			r.SetObserver(nil)
			continue
		}
		r.SetObserver(regionGapObserver{o: o, region: i, base: uint64(i) * s.daStride})
	}
}

var _ Leveler = (*RegionedStartGap)(nil)
