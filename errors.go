package wlreviver

import (
	"wlreviver/internal/ckpt"
	"wlreviver/internal/serve"
	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
)

// The package's error taxonomy. Every error returned by constructors,
// checkpoint restore, registry lookups, and the fleet client wraps one
// of these sentinels, so callers branch with errors.Is instead of
// matching message text. The fleet daemon maps the same sentinels to
// HTTP status codes (see internal/serve's status table), so a client
// round-trips to the identical taxonomy it would see in-process.
var (
	// ErrBadConfig reports an invalid Config or WorkloadSpec field
	// (zero geometry, unknown component selector, out-of-range knob).
	ErrBadConfig = sim.ErrBadConfig
	// ErrUnknownWorkload reports a WorkloadSpec.Kind that names neither
	// a generic kind nor a Table I benchmark.
	ErrUnknownWorkload = trace.ErrUnknownWorkload
	// ErrUnknownExperiment reports an experiment or device-stack name
	// absent from the registry.
	ErrUnknownExperiment = sim.ErrUnknownExperiment
	// ErrBadCheckpoint reports a structurally invalid checkpoint image:
	// truncation, CRC mismatch, wrong format version, or sections that
	// contradict the restoring engine's shape.
	ErrBadCheckpoint = ckpt.ErrBadCheckpoint
	// ErrConfigMismatch reports a checkpoint whose configuration
	// fingerprint differs from the restoring system's Config — the
	// image is valid, but for a different device.
	ErrConfigMismatch = sim.ErrConfigMismatch
	// ErrCrashed reports that an injected crash fault halted a sweep; a
	// subsequent resumed run converges to the uninterrupted result.
	ErrCrashed = sim.ErrCrashed

	// ErrUnknownDevice reports a fleet operation on a device ID that
	// was never created or has been deleted.
	ErrUnknownDevice = serve.ErrUnknownDevice
	// ErrDeviceExists reports a create for an ID already in the fleet.
	ErrDeviceExists = serve.ErrDeviceExists
	// ErrDeviceStopped reports writes against a device whose simulation
	// has halted (capacity exhausted or write budget reached).
	ErrDeviceStopped = serve.ErrDeviceStopped
	// ErrDeviceCrippled reports writes against a device that stopped
	// because its media degraded past the point of servicing writes.
	ErrDeviceCrippled = serve.ErrDeviceCrippled
	// ErrBusy reports that a device's request mailbox is full — the
	// fleet's admission control; back off and retry.
	ErrBusy = serve.ErrBusy
	// ErrFleetFull reports that creating a device would exceed the
	// fleet's configured device capacity.
	ErrFleetFull = serve.ErrFleetFull
	// ErrFleetClosed reports an operation against a fleet that is
	// shutting down.
	ErrFleetClosed = serve.ErrClosed
)
