package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//lint:ignore <rule-name> <reason>
//
// matching staticcheck's convention so editors highlight it. The
// directive silences <rule-name> findings on its own line and on the
// line directly below it (covering both trailing and leading comment
// placement). The reason is mandatory.
const ignorePrefix = "lint:ignore"

// suppressionSet holds a file's directives plus diagnostics for any
// malformed ones.
type suppressionSet struct {
	byLine    map[int][]string // line -> rule names silenced from that line
	malformed []Diagnostic
}

// covers reports whether a finding of rule at line is silenced.
func (s suppressionSet) covers(rule string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, r := range s.byLine[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// suppressions extracts every //lint:ignore directive from the file.
// A directive with no rule name or no reason is reported under the
// "ignore-syntax" pseudo-rule: an unjustified ignore must not be able
// to silently disable the gate.
func suppressions(fset *token.FileSet, f *File) suppressionSet {
	set := suppressionSet{byLine: map[int][]string{}}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, ignorePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				set.malformed = append(set.malformed, Diagnostic{
					Pos:  pos,
					Rule: "ignore-syntax",
					Msg:  "malformed directive: want //lint:ignore <rule> <reason>, the reason is mandatory",
				})
				continue
			}
			set.byLine[pos.Line] = append(set.byLine[pos.Line], fields[0])
		}
	}
	return set
}
