// Package trace generates and replays the write workloads driving the
// simulator.
//
// The paper's evaluation replays Pin-collected write traces of eight
// PARSEC/NPB/SPLASH-2 benchmarks, characterised in its Table I solely by
// their per-block write-count CoV (coefficient of variation). Those
// traces are not available here, so this package substitutes synthetic
// generators calibrated to the same CoVs (see DESIGN.md): each block gets
// a stationary write weight drawn from a lognormal field — correlated
// within OS pages, since applications write pages rather than isolated
// cache lines — and writes are sampled from the weights with Walker's
// alias method in O(1) per write.
//
// The package also provides uniform traffic, the malicious wear-out
// attacks the wear-leveling literature considers (address hammering and
// Seznec's birthday-paradox attack), and a binary trace-file format so
// workloads can be generated once and replayed.
package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"wlreviver/internal/rng"
)

// Generator produces an endless stream of virtual block write addresses.
// (The paper assumes each program runs repeatedly to produce the
// required wear; an endless stationary stream models that.)
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// NumBlocks is the size of the virtual block address space written.
	NumBlocks() uint64
	// Next returns the next block address to write.
	Next() uint64
}

// BatchGenerator is a Generator with a bulk fast path. NextBatch(dst) must
// produce exactly the addresses len(dst) successive Next calls would —
// the same stream, amortizing the per-call interface dispatch — which the
// equivalence tests pin for every generator in this package.
type BatchGenerator interface {
	Generator
	// NextBatch fills dst with the next len(dst) block addresses.
	NextBatch(dst []uint64)
}

// Alias is Walker/Vose alias-method sampler over n weighted outcomes.
type Alias struct {
	prob  []float64 // ckpt:derived rebuilt from the weights the owner reconstructs
	alias []uint32  // ckpt:derived rebuilt from the weights the owner reconstructs
	src   *rng.Source
}

// NewAlias builds a sampler for the given non-negative weights. At least
// one weight must be positive.
func NewAlias(weights []float64, src *rng.Source) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("trace: alias needs at least one weight")
	}
	if n > math.MaxUint32 {
		return nil, fmt.Errorf("trace: alias table too large (%d)", n)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("trace: weight %d is %v; must be finite and non-negative", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("trace: all weights are zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]uint32, n),
		src:   src,
	}
	scaled := make([]float64, n)
	small := make([]uint32, 0, n)
	large := make([]uint32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a, nil
}

// Sample draws one outcome index from a single 64-bit draw: the high bits
// of u·n select the column (Lemire multiply-shift, rejection elided — the
// bias is O(n/2^64)) and the low bits, reused as a fixed-point fraction,
// decide column vs alias. Half the RNG work of the classic two-draw
// formulation; the sampled stream differs from it, which Table I's CoV
// harness revalidates.
func (a *Alias) Sample() uint64 {
	hi, lo := bits.Mul64(a.src.Uint64(), uint64(len(a.prob)))
	if float64(lo>>11)*(1.0/(1<<53)) < a.prob[hi] {
		return hi
	}
	return uint64(a.alias[hi])
}

// SampleBatch fills dst with len(dst) successive Sample draws.
func (a *Alias) SampleBatch(dst []uint64) {
	n := uint64(len(a.prob))
	prob, alias, src := a.prob, a.alias, a.src
	for i := range dst {
		hi, lo := bits.Mul64(src.Uint64(), n)
		if float64(lo>>11)*(1.0/(1<<53)) < prob[hi] {
			dst[i] = hi
		} else {
			dst[i] = uint64(alias[hi])
		}
	}
}

// WeightedConfig configures a CoV-calibrated stationary workload.
type WeightedConfig struct {
	// Label names the workload in reports.
	Label string
	// NumBlocks is the virtual block space size.
	NumBlocks uint64
	// PageBlocks groups blocks whose weights are correlated (an OS page,
	// 64 blocks by default). 1 makes every block independent.
	PageBlocks uint64
	// TargetCoV is the desired coefficient of variation of per-block
	// write counts (Table I's metric).
	TargetCoV float64
	// UniformMix is the fraction of writes drawn uniformly at random
	// (background traffic); 0 disables.
	UniformMix float64
	// Seed keys the weight field and the sampling stream.
	Seed uint64
}

// Weighted is a stationary weighted-random write stream.
type Weighted struct {
	cfg   WeightedConfig // ckpt:skip construction-time config, fingerprinted by the registry
	alias *Alias
	src   *rng.Source
}

// NewWeighted builds the workload. Per-block weights are
// w(block) = pageWeight(page) * jitter(block), with both factors
// lognormal; their σ are chosen so the combined weight CoV equals
// TargetCoV, with 80% of the log-variance carried at page granularity.
func NewWeighted(cfg WeightedConfig) (*Weighted, error) {
	if cfg.NumBlocks == 0 {
		return nil, fmt.Errorf("trace: NumBlocks must be positive")
	}
	if cfg.PageBlocks == 0 {
		cfg.PageBlocks = 64
	}
	if cfg.TargetCoV < 0 {
		return nil, fmt.Errorf("trace: negative TargetCoV")
	}
	if cfg.UniformMix < 0 || cfg.UniformMix > 1 {
		return nil, fmt.Errorf("trace: UniformMix must be in [0,1]")
	}
	src := rng.New(cfg.Seed ^ 0x7A5CE5)
	wsrc := src.Fork(1)
	// Generate a unit lognormal log-weight field, correlated within
	// pages (80% of the log-variance at page granularity).
	pageSigma := math.Sqrt(0.8)
	blockSigma := math.Sqrt(0.2)
	logW := make([]float64, cfg.NumBlocks)
	var pageW float64
	for b := uint64(0); b < cfg.NumBlocks; b++ {
		if b%cfg.PageBlocks == 0 {
			pageW = pageSigma * wsrc.NormFloat64()
		}
		logW[b] = pageW + blockSigma*wsrc.NormFloat64()
	}
	// The asymptotic lognormal CoV badly overstates what a finite sample
	// exhibits (the tail mass is too rare to be drawn), so calibrate
	// empirically: weights = exp(alpha*logW) with alpha chosen by
	// bisection so the sample CoV of the weights equals TargetCoV. The
	// chosen alpha is a pure function of (NumBlocks, PageBlocks, Seed,
	// TargetCoV) — the field is fully determined by the first three — so
	// it is memoized: experiment arms re-deriving the same workload (and
	// sharded chips re-deriving the same shard streams) skip the ~110
	// bisection probes, each a pass over the whole field.
	key := calKey{numBlocks: cfg.NumBlocks, pageBlocks: cfg.PageBlocks, targetCoV: cfg.TargetCoV, seed: cfg.Seed}
	calMu.Lock()
	alpha, hit := calCache[key]
	calMu.Unlock()
	if !hit {
		alpha = calibrateAlpha(logW, cfg.TargetCoV)
		calMu.Lock()
		calCache[key] = alpha
		calMu.Unlock()
	}
	weights := expWeights(logW, alpha)
	alias, err := NewAlias(weights, src.Fork(2))
	if err != nil {
		return nil, err
	}
	return &Weighted{cfg: cfg, alias: alias, src: src.Fork(3)}, nil
}

// Name implements Generator.
func (w *Weighted) Name() string {
	if w.cfg.Label != "" {
		return w.cfg.Label
	}
	return fmt.Sprintf("weighted-cov%.1f", w.cfg.TargetCoV)
}

// NumBlocks implements Generator.
func (w *Weighted) NumBlocks() uint64 { return w.cfg.NumBlocks }

// Next implements Generator.
func (w *Weighted) Next() uint64 {
	if w.cfg.UniformMix > 0 && w.src.Float64() < w.cfg.UniformMix {
		return w.src.Uint64n(w.cfg.NumBlocks)
	}
	return w.alias.Sample()
}

// NextBatch implements BatchGenerator. Without background traffic the
// whole batch is one alias-sampling loop; with a mix the per-write checks
// are preserved draw for draw.
func (w *Weighted) NextBatch(dst []uint64) {
	if w.cfg.UniformMix == 0 {
		w.alias.SampleBatch(dst)
		return
	}
	for i := range dst {
		dst[i] = w.Next()
	}
}

// calKey identifies one calibration problem: the log-weight field is a
// pure function of (numBlocks, pageBlocks, seed), and the bisection's
// answer additionally of targetCoV.
type calKey struct {
	numBlocks  uint64
	pageBlocks uint64
	targetCoV  float64
	seed       uint64
}

var (
	calMu    sync.Mutex
	calCache = map[calKey]float64{}
)

// calibrateAlpha returns alpha >= 0 chosen by bisection so the sample
// CoV of exp(alpha*logW) matches targetCoV as closely as the field
// allows. alpha = 0 yields uniform weights. The log-weights are shifted
// by their maximum before exponentiation so arbitrary alphas cannot
// overflow; CoV is scale-invariant, so the shift does not affect
// calibration.
func calibrateAlpha(logW []float64, targetCoV float64) float64 {
	if targetCoV == 0 {
		return 0
	}
	maxLog := logW[0]
	for _, l := range logW {
		if l > maxLog {
			maxLog = l
		}
	}
	n := float64(len(logW))
	// The bisection probes ~110 alphas; each probe reuses one scratch
	// buffer, fusing exponentiation with the mean accumulation. Element
	// order and operation order match the original expAt+covOf
	// formulation exactly, so the probed CoVs — and therefore the chosen
	// alpha and final weights — are bit-identical (pinned by test).
	scratch := make([]float64, len(logW))
	covAt := func(alpha float64) float64 {
		var mean float64
		for i, l := range logW {
			x := math.Exp(alpha * (l - maxLog))
			scratch[i] = x
			mean += x
		}
		mean /= n
		var m2 float64
		for _, x := range scratch {
			d := x - mean
			m2 += d * d
		}
		if mean == 0 {
			return 0
		}
		return math.Sqrt(m2/n) / mean
	}
	// Expand the upper bracket until the CoV crosses the target or the
	// field saturates (a finite sample's CoV is capped near sqrt(n-1)).
	lo, hi := 0.0, 1.0
	for i := 0; i < 60 && covAt(hi) < targetCoV; i++ {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if covAt(mid) < targetCoV {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// expWeights materialises exp(alpha*(logW-max)), the weight field the
// bisection's final probe saw.
func expWeights(logW []float64, alpha float64) []float64 {
	maxLog := logW[0]
	for _, l := range logW {
		if l > maxLog {
			maxLog = l
		}
	}
	w := make([]float64, len(logW))
	for i, l := range logW {
		w[i] = math.Exp(alpha * (l - maxLog))
	}
	return w
}

// Uniform writes every block with equal probability.
type Uniform struct {
	n   uint64 // ckpt:skip construction-time block count, fingerprinted by the registry
	src *rng.Source
}

// NewUniform builds a uniform workload over n blocks.
func NewUniform(n uint64, seed uint64) (*Uniform, error) {
	if n == 0 {
		return nil, fmt.Errorf("trace: NumBlocks must be positive")
	}
	return &Uniform{n: n, src: rng.New(seed)}, nil
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// NumBlocks implements Generator.
func (u *Uniform) NumBlocks() uint64 { return u.n }

// Next implements Generator.
func (u *Uniform) Next() uint64 { return u.src.Uint64n(u.n) }

// NextBatch implements BatchGenerator.
func (u *Uniform) NextBatch(dst []uint64) {
	for i := range dst {
		dst[i] = u.src.Uint64n(u.n)
	}
}

// MeasureCoV replays draws writes from g and returns the CoV of the
// resulting per-block write counts — the procedure behind Table I.
func MeasureCoV(g Generator, draws uint64) float64 {
	counts := make([]uint64, g.NumBlocks())
	if bg, ok := g.(BatchGenerator); ok {
		var buf [512]uint64
		for left := draws; left > 0; {
			chunk := uint64(len(buf))
			if left < chunk {
				chunk = left
			}
			bg.NextBatch(buf[:chunk])
			for _, a := range buf[:chunk] {
				counts[a]++
			}
			left -= chunk
		}
	} else {
		for i := uint64(0); i < draws; i++ {
			counts[g.Next()]++
		}
	}
	var mean, m2 float64
	n := float64(len(counts))
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= n
	for _, c := range counts {
		d := float64(c) - mean
		m2 += d * d
	}
	if mean == 0 {
		return 0
	}
	return math.Sqrt(m2/n) / mean
}
