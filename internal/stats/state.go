package stats

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the curve: name, then the points in order.
func (c *Curve) SaveState(e *ckpt.Encoder) {
	e.String(c.Name)
	e.U32(uint32(len(c.Points)))
	for _, p := range c.Points {
		e.F64(p.X)
		e.F64(p.Y)
	}
}

// LoadState restores a curve written by SaveState, replacing the
// receiver's contents.
func (c *Curve) LoadState(dec *ckpt.Decoder) error {
	name := dec.String()
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n*16 > 1<<32 { // each point is 16 payload bytes
		return fmt.Errorf("stats: checkpoint point count %d implausible", n)
	}
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{X: dec.F64(), Y: dec.F64()}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	c.Name = name
	c.Points = points
	return nil
}
