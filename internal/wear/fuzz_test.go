package wear

import (
	"testing"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/rng"
)

// nopMover satisfies Mover without a backing device; the mapping
// algebra under test is independent of data movement.
type nopMover struct{}

func (nopMover) Migrate(src, dst uint64) {}
func (nopMover) Swap(a, b uint64)        {}

// FuzzStartGapMapInverse checks Start-Gap's core algebra under
// fuzz-chosen geometry, seed and write history: Map must be a bijection
// from the PA space into the DA space minus the gap, Inverse must be
// its exact inverse, and the gap DA must be the one address with no
// preimage. The checkpoint restore path rebuilds levelers from exactly
// these fields, so this property is what makes a restored mapping safe.
func FuzzStartGapMapInverse(f *testing.F) {
	f.Add(uint64(8), uint64(1), uint64(0))
	f.Add(uint64(64), uint64(42), uint64(7))
	f.Add(uint64(129), uint64(0xDEADBEEF), uint64(1000))
	f.Add(uint64(1), uint64(3), uint64(5))
	f.Fuzz(func(t *testing.T, n, seed, writes uint64) {
		n = n%512 + 1
		writes %= 4096
		s, err := NewStartGap(StartGapConfig{NumPAs: n, GapWritePeriod: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < writes; i++ {
			s.NoteWrite(i%n, nopMover{})
		}
		seen := make(map[uint64]bool, n)
		for pa := uint64(0); pa < n; pa++ {
			da := s.Map(pa)
			if da >= s.NumDAs() {
				t.Fatalf("Map(%d) = %d, outside DA space %d", pa, da, s.NumDAs())
			}
			if da == s.GapDA() {
				t.Fatalf("Map(%d) hit the gap DA %d", pa, da)
			}
			if seen[da] {
				t.Fatalf("Map not injective: DA %d has two preimages", da)
			}
			seen[da] = true
			inv, ok := s.Inverse(da)
			if !ok || inv != pa {
				t.Fatalf("Inverse(Map(%d)) = (%d, %v), want (%d, true)", pa, inv, ok, pa)
			}
		}
		if _, ok := s.Inverse(s.GapDA()); ok {
			t.Fatalf("Inverse(gap DA %d) returned a PA", s.GapDA())
		}
	})
}

// FuzzWoLFRaMMapInverse checks the programmable decoder's algebra under
// fuzz-chosen geometry, seed and write history: every region's
// permutation must stay a bijection of its slice of the DA space, with
// Inverse exact, and the mapping must survive a checkpoint round-trip
// unchanged.
func FuzzWoLFRaMMapInverse(f *testing.F) {
	f.Add(uint64(16), uint64(2), uint64(1), uint64(0))
	f.Add(uint64(64), uint64(4), uint64(42), uint64(300))
	f.Add(uint64(128), uint64(8), uint64(0xADDEC), uint64(2000))
	f.Add(uint64(3), uint64(1), uint64(9), uint64(17))
	f.Fuzz(func(t *testing.T, n, regions, seed, writes uint64) {
		n = n%512 + 1
		regions = regions%8 + 1
		if n%regions != 0 {
			t.Skip("regions must divide the PA space")
		}
		writes %= 4096
		w, err := NewWoLFRaM(WoLFRaMConfig{
			NumPAs: n, Regions: regions, SwapWritePeriod: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < writes; i++ {
			w.NoteWrite(i%n, nopMover{})
		}
		checkPermutation(t, w)

		enc := ckpt.NewEncoder()
		enc.Begin("leveler")
		w.SaveState(enc)
		enc.End()
		fresh, err := NewWoLFRaM(WoLFRaMConfig{
			NumPAs: n, Regions: regions, SwapWritePeriod: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ckpt.NewDecoder(enc.Finish())
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Section("leveler"); err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadState(dec); err != nil {
			t.Fatal(err)
		}
		for pa := uint64(0); pa < n; pa++ {
			if a, b := w.Map(pa), fresh.Map(pa); a != b {
				t.Fatalf("restored Map(%d) = %d, want %d", pa, b, a)
			}
		}
	})
}

// FuzzSoftWearPageTable checks the OS-level scheme's algebra under
// fuzz-chosen geometry and write history: the page table must stay a
// permutation (Map a bijection, Inverse exact) through any sequence of
// epoch relocations, and a restored page table must reject corrupted
// (non-permutation) state rather than import it.
func FuzzSoftWearPageTable(f *testing.F) {
	f.Add(uint64(4), uint64(4), uint64(8), uint64(0))
	f.Add(uint64(8), uint64(8), uint64(16), uint64(500))
	f.Add(uint64(16), uint64(4), uint64(5), uint64(3000))
	f.Add(uint64(1), uint64(2), uint64(1), uint64(40))
	f.Fuzz(func(t *testing.T, pages, pageBlocks, epoch, writes uint64) {
		pages = pages%64 + 1
		pageBlocks = pageBlocks%32 + 1
		epoch = epoch%128 + 1
		writes %= 4096
		s, err := NewSoftWear(SoftWearConfig{
			NumPAs: pages * pageBlocks, PageBlocks: pageBlocks, EpochWrites: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(writes ^ 0x50F7)
		for i := uint64(0); i < writes; i++ {
			s.NoteWrite(src.Uint64n(s.NumPAs()), nopMover{})
		}
		checkPermutation(t, s)

		// A corrupted page table (duplicate frame) must not restore.
		enc := ckpt.NewEncoder()
		enc.Begin("leveler")
		bad := make([]uint32, pages)
		for i := range bad {
			bad[i] = 0 // every page claims frame 0
		}
		enc.U32s(bad)
		enc.U32s(make([]uint32, pages))
		enc.U64s(make([]uint64, pages))
		enc.U64(0)
		enc.U64(0)
		enc.End()
		dec, err := ckpt.NewDecoder(enc.Finish())
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Section("leveler"); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadState(dec); pages > 1 && err == nil {
			t.Fatal("non-permutation page table restored without error")
		}
	})
}

// checkPermutation verifies Map is a self-inverse-consistent bijection
// over the full (NumPAs == NumDAs) space.
func checkPermutation(t *testing.T, l Leveler) {
	t.Helper()
	n := l.NumPAs()
	seen := make(map[uint64]bool, n)
	for pa := uint64(0); pa < n; pa++ {
		da := l.Map(pa)
		if da >= l.NumDAs() {
			t.Fatalf("Map(%d) = %d, outside DA space %d", pa, da, l.NumDAs())
		}
		if seen[da] {
			t.Fatalf("Map not injective: DA %d has two preimages", da)
		}
		seen[da] = true
		inv, ok := l.Inverse(da)
		if !ok || inv != pa {
			t.Fatalf("Inverse(Map(%d)) = (%d, %v), want (%d, true)", pa, inv, ok, pa)
		}
	}
}
