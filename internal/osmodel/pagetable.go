package osmodel

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// PageTable is a bijective virtual-page → physical-frame mapping — the
// OS-owned translation layer a software-only wear-leveler (SoftWear,
// arXiv:2004.03244) drives. It is deliberately separate from Model, which
// tracks page retirement and failure-driven remapping: a PageTable is a
// pure permutation the leveling policy mutates one swap at a time.
type PageTable struct {
	vToP []uint32
	// ckpt:derived inverse mapping rebuilt from vToP in LoadState
	pToV []uint32
}

// NewPageTable builds an identity mapping over numPages pages.
func NewPageTable(numPages uint64) (*PageTable, error) {
	if numPages == 0 {
		return nil, fmt.Errorf("osmodel: page table needs at least one page")
	}
	if numPages > 1<<32 {
		return nil, fmt.Errorf("osmodel: %d pages exceed the table's 32-bit entries", numPages)
	}
	t := &PageTable{
		vToP: make([]uint32, numPages),
		pToV: make([]uint32, numPages),
	}
	for i := uint64(0); i < numPages; i++ {
		t.vToP[i] = uint32(i)
		t.pToV[i] = uint32(i)
	}
	return t, nil
}

// NumPages returns the number of pages mapped.
func (t *PageTable) NumPages() uint64 { return uint64(len(t.vToP)) }

// Frame returns the physical frame backing a virtual page.
func (t *PageTable) Frame(vpage uint64) uint64 {
	if vpage >= uint64(len(t.vToP)) {
		panic(fmt.Sprintf("osmodel: vpage %d out of range [0,%d)", vpage, len(t.vToP)))
	}
	return uint64(t.vToP[vpage])
}

// PageAt returns the virtual page backed by a physical frame.
func (t *PageTable) PageAt(frame uint64) uint64 {
	if frame >= uint64(len(t.pToV)) {
		panic(fmt.Sprintf("osmodel: frame %d out of range [0,%d)", frame, len(t.pToV)))
	}
	return uint64(t.pToV[frame])
}

// Swap exchanges the frames backing two virtual pages.
func (t *PageTable) Swap(v1, v2 uint64) {
	f1, f2 := t.Frame(v1), t.Frame(v2)
	t.vToP[v1], t.vToP[v2] = uint32(f2), uint32(f1)
	t.pToV[f1], t.pToV[f2] = uint32(v2), uint32(v1)
}

// SaveState serializes the forward mapping; the inverse is derived.
func (t *PageTable) SaveState(e *ckpt.Encoder) {
	e.U32s(t.vToP)
}

// LoadState restores a mapping written by SaveState into a table of the
// same geometry, validating it is a permutation before committing.
func (t *PageTable) LoadState(dec *ckpt.Decoder) error {
	vToP := dec.U32s()
	if err := dec.Err(); err != nil {
		return err
	}
	n := len(t.vToP)
	if len(vToP) != n {
		return fmt.Errorf("osmodel: checkpoint page table has %d pages, table has %d", len(vToP), n)
	}
	pToV := make([]uint32, n)
	seen := make([]bool, n)
	for v, f := range vToP {
		if uint64(f) >= uint64(n) || seen[f] {
			return fmt.Errorf("osmodel: checkpoint page table is not a permutation")
		}
		seen[f] = true
		pToV[f] = uint32(v)
	}
	copy(t.vToP, vToP)
	copy(t.pToV, pToV)
	return nil
}
