// Fixture: the Observer contract the observer-purity rule resolves from
// whichever tree it analyzes — here the miniature fixture module.
package obs

// Snapshot is the sample passed to Observer.Snapshot.
type Snapshot struct{ Writes uint64 }

// Observer is the stand-in event interface.
type Observer interface {
	BlockFailed(da, wear uint64)
	Snapshot(s Snapshot)
}

// Base is a no-op Observer for embedding.
type Base struct{}

// BlockFailed implements Observer.
func (Base) BlockFailed(da, wear uint64) {}

// Snapshot implements Observer.
func (Base) Snapshot(s Snapshot) {}
