package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"wlreviver/internal/rng"
)

func TestAliasErrors(t *testing.T) {
	src := rng.New(1)
	cases := [][]float64{
		{},
		{0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, ws := range cases {
		if _, err := NewAlias(ws, src); err == nil {
			t.Errorf("case %d: invalid weights accepted: %v", i, ws)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	src := rng.New(2)
	weights := []float64{1, 2, 3, 4, 0, 10}
	a, err := NewAlias(weights, src)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample()]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := counts[i] / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
	if counts[4] != 0 {
		t.Error("zero-weight outcome was sampled")
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Sample() != 0 {
			t.Fatal("single outcome must always be 0")
		}
	}
}

// Property: alias samples are always in range.
func TestQuickAliasInRange(t *testing.T) {
	src := rng.New(5)
	prop := func(raw []float64) bool {
		ws := make([]float64, 0, len(raw)+1)
		for _, w := range raw {
			ws = append(ws, math.Abs(math.Mod(w, 100)))
		}
		ws = append(ws, 1) // ensure positive sum
		a, err := NewAlias(ws, src)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			if a.Sample() >= uint64(len(ws)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedConfigErrors(t *testing.T) {
	cases := []WeightedConfig{
		{NumBlocks: 0},
		{NumBlocks: 10, TargetCoV: -1},
		{NumBlocks: 10, UniformMix: -0.1},
		{NumBlocks: 10, UniformMix: 1.1},
	}
	for i, c := range cases {
		if _, err := NewWeighted(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWeightedHitsTargetCoV(t *testing.T) {
	for _, target := range []float64{0, 2, 5, 12} {
		g, err := NewWeighted(WeightedConfig{
			NumBlocks:  1 << 14,
			PageBlocks: 64,
			TargetCoV:  target,
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := MeasureCoV(g, 1<<21)
		// Sampling noise adds ~sqrt(1/meanCount) in quadrature; with 128
		// writes/block that is ~0.09. Accept 30% relative + 0.35 absolute.
		tol := 0.30*target + 0.35
		if math.Abs(got-target) > tol {
			t.Errorf("target CoV %.2f: measured %.2f (tolerance %.2f)", target, got, tol)
		}
	}
}

func TestWeightedName(t *testing.T) {
	g, _ := NewWeighted(WeightedConfig{NumBlocks: 16, TargetCoV: 3.5, Seed: 1})
	if g.Name() != "weighted-cov3.5" {
		t.Errorf("name = %q", g.Name())
	}
	g2, _ := NewWeighted(WeightedConfig{Label: "custom", NumBlocks: 16, Seed: 1})
	if g2.Name() != "custom" {
		t.Errorf("name = %q", g2.Name())
	}
}

func TestWeightedUniformMix(t *testing.T) {
	g, err := NewWeighted(WeightedConfig{
		NumBlocks: 1 << 12, TargetCoV: 40, UniformMix: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := MeasureCoV(g, 1<<19)
	pure, _ := NewWeighted(WeightedConfig{NumBlocks: 1 << 12, TargetCoV: 40, Seed: 3})
	unmixed := MeasureCoV(pure, 1<<19)
	if mixed >= unmixed {
		t.Errorf("uniform mix should lower CoV: mixed %.1f vs pure %.1f", mixed, unmixed)
	}
}

func TestUniform(t *testing.T) {
	if _, err := NewUniform(0, 1); err == nil {
		t.Error("zero blocks accepted")
	}
	g, err := NewUniform(1024, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "uniform" || g.NumBlocks() != 1024 {
		t.Error("metadata wrong")
	}
	cov := MeasureCoV(g, 1<<20)
	// Pure Poisson noise: CoV ~ 1/sqrt(1024) ~ 0.03 at 1024 writes/block.
	if cov > 0.1 {
		t.Errorf("uniform CoV = %.3f, want ~0", cov)
	}
}

func TestBenchmarkPresets(t *testing.T) {
	if len(Benchmarks) != 8 {
		t.Fatalf("Table I has 8 benchmarks, got %d", len(Benchmarks))
	}
	names := BenchmarkNames()
	if names[0] != "blackscholes" || names[3] != "mg" {
		t.Errorf("order wrong: %v", names)
	}
	if _, err := LookupBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	spec, err := LookupBenchmark("ocean")
	if err != nil || spec.WriteCoV != 4.15 {
		t.Errorf("ocean spec wrong: %+v, %v", spec, err)
	}
	if _, err := NewBenchmark("nope", 64, 64, 1); err == nil {
		t.Error("NewBenchmark accepted unknown name")
	}
}

func TestBenchmarkGeneratorCoVOrdering(t *testing.T) {
	// mg (CoV 40.87) must measure substantially more skewed than ocean
	// (CoV 4.15) at equal scale.
	mg, err := NewBenchmark("mg", 1<<14, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	ocean, err := NewBenchmark("ocean", 1<<14, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	mgCoV := MeasureCoV(mg, 1<<21)
	oceanCoV := MeasureCoV(ocean, 1<<21)
	if mgCoV < 3*oceanCoV {
		t.Errorf("mg CoV %.2f should far exceed ocean CoV %.2f", mgCoV, oceanCoV)
	}
}

func TestHammer(t *testing.T) {
	if _, err := NewHammer(0, []uint64{0}); err == nil {
		t.Error("zero space accepted")
	}
	if _, err := NewHammer(10, nil); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := NewHammer(10, []uint64{10}); err == nil {
		t.Error("out-of-range target accepted")
	}
	h, err := NewHammer(100, []uint64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{h.Next(), h.Next(), h.Next(), h.Next()}
	want := []uint64{3, 7, 3, 7}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("hammer sequence %v, want %v", seq, want)
		}
	}
	// Mutating the caller's slice must not affect the generator.
	targets := []uint64{5}
	h2, _ := NewHammer(10, targets)
	targets[0] = 9
	if h2.Next() != 5 {
		t.Error("hammer aliased caller's slice")
	}
}

func TestBirthdayParadox(t *testing.T) {
	for _, bad := range []struct {
		n     uint64
		set   int
		burst uint64
	}{{0, 1, 1}, {10, 0, 1}, {10, 11, 1}, {10, 2, 0}} {
		if _, err := NewBirthdayParadox(bad.n, bad.set, bad.burst, 1); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
	b, err := NewBirthdayParadox(1000, 4, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Within one burst only setSize distinct addresses appear.
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		a := b.Next()
		if a >= 1000 {
			t.Fatalf("address %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) > 4 {
		t.Errorf("burst touched %d distinct addresses, want <=4", len(seen))
	}
	// Over many bursts the set changes.
	for i := 0; i < 16*20; i++ {
		seen[b.Next()] = true
	}
	if len(seen) <= 4 {
		t.Error("attack never re-drew its target set")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	g, _ := NewUniform(256, 21)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(&buf, "replayed")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "replayed" || r.NumBlocks() != 256 || r.Len() != 1000 {
		t.Errorf("metadata wrong: %q %d %d", r.Name(), r.NumBlocks(), r.Len())
	}
	// Same seed generator produces the same stream as the replay.
	g2, _ := NewUniform(256, 21)
	for i := 0; i < 1000; i++ {
		if r.Next() != g2.Next() {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	// Replay loops.
	g3, _ := NewUniform(256, 21)
	if r.Next() != g3.Next() {
		t.Error("replay did not loop to the start")
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil), "x"); err == nil {
		t.Error("empty file accepted")
	}
	bad := append([]byte("NOPE"), make([]byte, 20)...)
	if _, err := ReadTrace(bytes.NewReader(bad), "x"); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated records.
	g, _ := NewUniform(16, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadTrace(bytes.NewReader(trunc), "x"); err == nil {
		t.Error("truncated file accepted")
	}
}

func BenchmarkWeightedNext(b *testing.B) {
	g, _ := NewWeighted(WeightedConfig{NumBlocks: 1 << 16, TargetCoV: 10, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
