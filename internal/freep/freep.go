// Package freep implements the adapted FREE-p baseline of the paper's
// §IV-C (original: Yoon et al., HPCA 2011).
//
// FREE-p hides a failed block by embedding, in the failed block itself
// (protected by a strong 7-modular-redundancy code), a pointer to a free
// slot — a healthy block in a reserved remap region. As designed, FREE-p
// acquires that region incrementally with OS support, but then it cannot
// coexist with wear leveling: the slots' device addresses are recorded
// directly, so migrating slot data would strand the pointers. The paper
// therefore adapts it: a fixed fraction of the PCM is pre-reserved as
// the remap region, outside the wear-leveling space, so slots never
// move. The adapted scheme works with Start-Gap until the pre-reserved
// slots run out; the next failure then reaches the wear-leveling scheme,
// which ceases to function (Figure 7's cliffs).
package freep

import (
	"fmt"

	"wlreviver/internal/cache"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

// Config parameterises the adapted FREE-p.
type Config struct {
	// ReserveFraction is the fraction of total PCM capacity pre-reserved
	// as the remap region (the paper sweeps 0, 0.05, 0.10, 0.15).
	ReserveFraction float64
	// RemapCache, when non-nil, caches failed-block remap pointers.
	RemapCache *cache.Cache
	// ZombiePairing models the Zombie variant (Azevedo et al., ISCA'13):
	// the failed block and its spare form a pair whose combined cells
	// back an error-correction code, so the pair absorbs
	// ZombiePairExtra additional cell failures before a fresh spare is
	// needed. Zero disables pairing (plain FREE-p pointers).
	ZombiePairing bool
	// ZombiePairExtra is the pair's additional correction capacity
	// (default 8 when ZombiePairing is set).
	ZombiePairExtra int
}

// Stats counts the baseline's activity.
type Stats struct {
	SoftwareWrites  uint64
	SoftwareReads   uint64
	RequestAccesses uint64
	SlotsUsed       uint64
	Exposed         bool
	LostWrites      uint64
	// PairRevivals counts writes served through a device-dead spare's
	// pair code (Zombie mode).
	PairRevivals uint64
}

// FREEp is the adapted FREE-p protector. The reserved slots occupy the
// device blocks above the wear-leveling space: DA layout is
// [0, lv.NumDAs()) for the leveler, then ReservedSlots() slot blocks.
type FREEp struct {
	cfg Config         // ckpt:skip construction-time config, fingerprinted by the engine
	lv  wear.Leveler   // ckpt:skip wiring; the leveler checkpoints itself
	be  *mc.Backend    // ckpt:skip wiring; the backend checkpoints itself
	os  *osmodel.Model // ckpt:skip wiring; the OS model checkpoints itself

	slots    []uint64          // free slot DAs, allocated from the end
	remap    map[uint64]uint64 // failed DA -> slot DA
	pairBase map[uint64]int    // slot DA -> failed-cell count when paired
	reserved uint64            // ckpt:derived recomputed from cfg in New
	st       Stats
}

// ReservedSlots returns the number of slot blocks a device must provide
// beyond the leveler's DA space for the given total data blocks and
// reserve fraction (reserve is a fraction of the combined capacity).
func ReservedSlots(dataBlocks uint64, fraction float64) uint64 {
	if fraction <= 0 {
		return 0
	}
	// reserved = fraction * (data + reserved)  =>  reserved = data*f/(1-f)
	return uint64(float64(dataBlocks) * fraction / (1 - fraction))
}

// New builds the protector. The backend's device must hold
// lv.NumDAs() + ReservedSlots(lv.NumPAs(), cfg.ReserveFraction) blocks.
func New(cfg Config, lv wear.Leveler, be *mc.Backend, os *osmodel.Model) (*FREEp, error) {
	if cfg.ReserveFraction < 0 || cfg.ReserveFraction >= 1 {
		return nil, fmt.Errorf("freep: reserve fraction %v outside [0,1)", cfg.ReserveFraction)
	}
	reserved := ReservedSlots(lv.NumPAs(), cfg.ReserveFraction)
	need := lv.NumDAs() + reserved
	if be.Dev.NumBlocks() < need {
		return nil, fmt.Errorf("freep: device has %d blocks, need %d (%d leveler + %d reserved)",
			be.Dev.NumBlocks(), need, lv.NumDAs(), reserved)
	}
	if cfg.ZombiePairing && cfg.ZombiePairExtra == 0 {
		cfg.ZombiePairExtra = 8
	}
	f := &FREEp{
		cfg:      cfg,
		lv:       lv,
		be:       be,
		os:       os,
		remap:    make(map[uint64]uint64),
		pairBase: make(map[uint64]int),
		reserved: reserved,
	}
	f.slots = make([]uint64, 0, reserved)
	for i := uint64(0); i < reserved; i++ {
		f.slots = append(f.slots, lv.NumDAs()+i)
	}
	return f, nil
}

// Name implements mc.Protector.
func (f *FREEp) Name() string {
	if f.cfg.ZombiePairing {
		return fmt.Sprintf("Zombie(%.0f%%)", f.cfg.ReserveFraction*100)
	}
	return fmt.Sprintf("FREE-p(%.0f%%)", f.cfg.ReserveFraction*100)
}

// Stats returns a copy of the counters.
func (f *FREEp) Stats() Stats { return f.st }

// FreeSlots returns the number of unallocated remap slots.
func (f *FREEp) FreeSlots() int { return len(f.slots) }

// Crippled implements mc.Crippler: once a failure is exposed to the
// wear-leveling scheme it stops functioning.
func (f *FREEp) Crippled() bool { return f.st.Exposed }

// pairUsable reports whether a device-dead spare is still serviceable
// through its pair code (Zombie mode only).
func (f *FREEp) pairUsable(slot uint64) bool {
	if !f.cfg.ZombiePairing {
		return false
	}
	base, paired := f.pairBase[slot]
	if !paired {
		return false
	}
	return f.be.Dev.FailedCells(pcm.BlockID(slot))-base <= f.cfg.ZombiePairExtra
}

// takeSlot pops a free slot.
func (f *FREEp) takeSlot() (uint64, bool) {
	if len(f.slots) == 0 {
		return 0, false
	}
	s := f.slots[len(f.slots)-1]
	f.slots = f.slots[:len(f.slots)-1]
	return s, true
}

// effective resolves da through its remap pointer, charging the pointer
// read unless cached. FREE-p chains are always one hop: when a slot
// fails, the pointer in the original failed block is rewritten.
func (f *FREEp) effective(da uint64) (uint64, uint64) {
	slot, ok := f.remap[da]
	if !ok {
		return da, 0
	}
	if f.cfg.RemapCache != nil && f.cfg.RemapCache.Lookup(da) {
		return slot, 0
	}
	f.be.ReadRaw(da) // read the embedded pointer
	return slot, 1
}

// writeTo delivers a write to the storage behind da, allocating slots on
// failures. It returns the raw accesses used and false when the failure
// had to be exposed (no slots left).
func (f *FREEp) writeTo(da, tag uint64) (uint64, bool) {
	target, accesses := f.effective(da)
	orig := da
	for {
		accesses++
		if f.be.WriteRaw(target) {
			if f.be.Dev.TracksContent() {
				f.be.Dev.SetContent(pcm.BlockID(target), tag)
			}
			return accesses, true
		}
		// The target failed. With Zombie pairing, the failed/spare pair's
		// cells back a shared error-correction code: the pair stays
		// serviceable until ZombiePairExtra cell failures beyond the
		// pairing point accumulate in the spare.
		if target != da && f.pairUsable(target) {
			if f.be.Dev.TracksContent() {
				f.be.Dev.SetContent(pcm.BlockID(target), tag)
			}
			f.be.Dev.Write(pcm.BlockID(orig)) // refresh the pair code
			f.st.PairRevivals++
			return accesses, true
		}
		// Rewrite the original block's pointer to a fresh slot (the dead
		// slot is abandoned).
		slot, ok := f.takeSlot()
		if !ok {
			f.st.Exposed = true
			f.st.LostWrites++
			return accesses, false
		}
		f.remap[orig] = slot
		if f.cfg.ZombiePairing {
			f.pairBase[slot] = f.be.Dev.FailedCells(pcm.BlockID(slot))
		}
		f.st.SlotsUsed++
		f.be.Dev.Write(pcm.BlockID(orig)) // pointer write (7MR-coded)
		if f.cfg.RemapCache != nil {
			f.cfg.RemapCache.Invalidate(orig)
		}
		target = slot
	}
}

// Write implements mc.Protector.
func (f *FREEp) Write(pa, tag uint64) mc.WriteResult {
	f.st.SoftwareWrites++
	da := f.lv.Map(pa)
	accesses, ok := f.writeTo(da, tag)
	f.st.RequestAccesses += accesses
	if ok {
		return mc.WriteResult{Accesses: accesses}
	}
	// Slots exhausted: the failure is exposed (wear leveling has ceased)
	// and handled by the standard OS path — page retirement, data
	// relocation, retry at the fresh translation.
	relocs := f.relocate(pa)
	return mc.WriteResult{Accesses: accesses, Relocations: relocs, Retry: true}
}

// relocate retires pa's page via the OS and copies its data out.
func (f *FREEp) relocate(pa uint64) []osmodel.Relocation {
	_, relocs := f.os.ReportFailure(pa)
	performed := relocs[:0]
	for _, rc := range relocs {
		src, _ := f.effective(f.lv.Map(rc.OldPA))
		if f.be.Dead(src) && !f.pairUsable(src) {
			continue
		}
		f.be.ReadRaw(src)
		tag := f.be.Dev.Content(pcm.BlockID(src))
		if _, ok := f.writeTo(f.lv.Map(rc.NewPA), tag); ok {
			performed = append(performed, rc)
		}
	}
	return performed
}

// Read implements mc.Protector.
func (f *FREEp) Read(pa uint64) (uint64, uint64) {
	f.st.SoftwareReads++
	target, accesses := f.effective(f.lv.Map(pa))
	f.be.ReadRaw(target)
	accesses++
	f.st.RequestAccesses += accesses
	if f.be.Dead(target) && !f.pairUsable(target) {
		return 0, accesses
	}
	return f.be.Dev.Content(pcm.BlockID(target)), accesses
}

// ResumePending implements mc.Protector: FREE-p never suspends (slots
// are pre-reserved; exhaustion is terminal).
func (f *FREEp) ResumePending() uint64 { return 0 }

// Migrate implements wear.Mover. Slot blocks are outside the
// wear-leveling space, so migrating into or out of a hidden failure
// works: reads and writes resolve through the stable DA pointers.
func (f *FREEp) Migrate(src, dst uint64) {
	esrc, _ := f.effective(src)
	if f.be.Dead(esrc) && !f.pairUsable(esrc) {
		return // nothing recoverable to move
	}
	f.be.ReadRaw(esrc)
	tag := f.be.Dev.Content(pcm.BlockID(esrc))
	f.writeTo(dst, tag)
}

// Swap implements wear.Mover.
func (f *FREEp) Swap(a, b uint64) {
	ea, _ := f.effective(a)
	eb, _ := f.effective(b)
	f.be.ReadRaw(ea)
	f.be.ReadRaw(eb)
	ta, tb := f.be.Dev.Content(pcm.BlockID(ea)), f.be.Dev.Content(pcm.BlockID(eb))
	deadA := f.be.Dead(ea) && !f.pairUsable(ea)
	deadB := f.be.Dead(eb) && !f.pairUsable(eb)
	if !deadB {
		f.writeTo(a, tb)
	}
	if !deadA {
		f.writeTo(b, ta)
	}
}

// SoftwareUsableFraction implements mc.SpaceReporter: the paper's
// Figure 7 metric — PCM space excluding pre-reserved space and failed
// blocks. Failures hidden behind slots cost nothing extra (the slot is
// already inside the reserve); after exposure, every reported failure
// retires a page.
func (f *FREEp) SoftwareUsableFraction() float64 {
	total := float64(f.lv.NumPAs() + f.reserved)
	return f.os.UsableFraction() * float64(f.lv.NumPAs()) / total
}

var (
	_ mc.Protector     = (*FREEp)(nil)
	_ mc.Crippler      = (*FREEp)(nil)
	_ mc.SpaceReporter = (*FREEp)(nil)
)
