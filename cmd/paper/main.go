// Command paper regenerates the tables and figures of the WL-Reviver
// paper's evaluation (DSN 2014) at a configurable scale.
//
// Usage:
//
//	paper [-scale tiny|bench|paper|paper1gb] [-exp all|table1|fig5|fig6|fig7|fig8|table2|attacks]
//	      [-seed N] [-workers N] [-shards N] [-shard-grid N] [-budget F]
//	      [-cpuprofile f] [-memprofile f] [-benchjson f]
//	      [-csv dir] [-metrics f] [-progress] [-timing=false]
//	      [-checkpoint-every N] [-checkpoint-dir d] [-resume d] [-crash-after N]
//	paper -benchdiff old.json new.json
//
// The experiment set is wlreviver.Experiments(); -exp selects one entry
// by name (or "all"). Output is the textual form of each table/figure;
// EXPERIMENTS.md records a reference run against the paper's reported
// results. Experiments fan their independent engines out over -workers
// goroutines (default: all CPUs); results are identical for any worker
// count. -metrics attaches a wlreviver.Metrics observer to every engine
// and writes the collected event counters and snapshot series as JSON
// (schema in EXPERIMENTS.md); -progress streams snapshot lines to stderr.
// Neither changes the simulated results or stdout.
//
// When the scale carries a shard grid (paper1gb does; -shard-grid sets
// one anywhere), each engine's chip is partitioned into that many
// independent sub-chips executed by a per-engine pool of -shards
// goroutines (default: all CPUs). The grid is semantic — it selects a
// coarser chip model, appears in the banner, and is part of checkpoint
// state — while -shards is pure execution width: results are
// byte-identical for every value, and checkpoints move freely between
// widths. -budget overrides the scale's write budget (simulated
// writes/block); paper1gb needs it, as a full-lifetime run at 1e8
// endurance is ~1e15 writes.
//
// -checkpoint-dir writes per-engine checkpoint files (every
// -checkpoint-every simulated writes, and at each job's completion);
// -resume restores them and continues, producing output byte-identical
// to an uninterrupted run (use -timing=false for byte-stable stdout).
// -crash-after injects a crash fault after N simulated writes across
// the sweep and exits with code 3 — the test hook behind the resume
// guarantee. See EXPERIMENTS.md § Checkpoint format.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"wlreviver"
	"wlreviver/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		if errors.Is(err, wlreviver.ErrCrashed) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "bench", "experiment scale: tiny, bench, paper or paper1gb")
	exp := flag.String("exp", "all", "experiment: all, table1, fig5, fig6, fig7, fig8, table2 or attacks")
	seed := flag.Uint64("seed", 0, "override the scale's RNG seed (0 keeps the default)")
	workers := flag.Int("workers", runtime.NumCPU(), "engine fan-out per experiment; 1 runs serially")
	shards := flag.Int("shards", 0, "per-engine shard execution pool width (0: all CPUs); output-invariant")
	shardGrid := flag.Uint64("shard-grid", 0, "partition each chip into N shards (semantic; 0 keeps the scale's default)")
	budget := flag.Float64("budget", 0, "override the scale's write budget in simulated writes per block (0 keeps the default)")
	csvDir := flag.String("csv", "", "also write the curve figures as CSV files into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-clock and writes/sec as JSON to this file")
	benchDiff := flag.Bool("benchdiff", false, "compare two -benchjson files given as positional arguments and exit")
	gatePct := flag.Float64("gate", 0, "with -benchdiff: fail when new total writes/sec regresses more than this percent vs old (0 disables)")
	metricsPath := flag.String("metrics", "", "observe every engine and write event counters and snapshots as JSON to this file")
	progress := flag.Bool("progress", false, "stream per-engine snapshot lines to stderr while experiments run")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "checkpoint each engine every N simulated writes (0: only at -checkpoint-dir job completion)")
	ckptDir := flag.String("checkpoint-dir", "", "write per-engine checkpoint files into this directory")
	resumeDir := flag.String("resume", "", "resume from the checkpoint files in this directory (implies -checkpoint-dir)")
	crashAfter := flag.Uint64("crash-after", 0, "test hook: inject a crash after N simulated writes across the sweep (exit code 3)")
	timing := flag.Bool("timing", true, "print per-experiment wall-clock lines (disable for byte-stable stdout)")
	flag.Parse()

	if *benchDiff {
		if flag.NArg() != 2 {
			return fmt.Errorf("-benchdiff needs exactly two arguments: old.json new.json")
		}
		return runBenchDiff(flag.Arg(0), flag.Arg(1), *gatePct)
	}

	var scale wlreviver.Scale
	switch *scaleName {
	case "tiny":
		scale = wlreviver.TinyScale()
	case "bench":
		scale = wlreviver.BenchScale()
	case "paper":
		scale = wlreviver.PaperScale()
	case "paper1gb":
		scale = wlreviver.Paper1GBScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.Workers = *workers
	if *shardGrid != 0 {
		scale.ShardGrid = *shardGrid
	}
	scale.Shards = *shards
	if *budget != 0 {
		scale.MaxWritesPerBlock = *budget
	}

	if *resumeDir != "" {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			return fmt.Errorf("-resume %s conflicts with -checkpoint-dir %s", *resumeDir, *ckptDir)
		}
		*ckptDir = *resumeDir
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint-dir: %w", err)
		}
		scale.Checkpoint = &wlreviver.CheckpointPlan{
			Dir:    *ckptDir,
			Every:  *ckptEvery,
			Resume: *resumeDir != "",
		}
	} else if *ckptEvery != 0 || *crashAfter != 0 {
		return fmt.Errorf("-checkpoint-every and -crash-after need -checkpoint-dir or -resume")
	}
	if *crashAfter != 0 {
		scale.Checkpoint.ArmTotalCrash(*crashAfter)
	}

	var collector *metricsCollector
	if *metricsPath != "" || *progress {
		collector = &metricsCollector{
			byKey:    make(map[string]*wlreviver.Metrics),
			progress: *progress,
		}
		scale.Observe = collector.observe
		// ~64 snapshots per full-length run, paced in simulated writes so
		// the series is identical for any -workers value.
		scale.SnapshotEvery = uint64(scale.MaxWritesPerBlock*float64(scale.Blocks)) / 64
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// The banner mentions workers only when parallel, so the output is
	// byte-identical across -workers values apart from this header. The
	// shard grid appears because it is semantic (a different chip model);
	// -shards never does, because the pool width is output-invariant.
	parallelNote := ""
	if scale.Workers > 1 {
		parallelNote = fmt.Sprintf(" workers=%d", scale.Workers)
	}
	gridNote := ""
	if scale.ShardGrid >= 2 {
		gridNote = fmt.Sprintf(" shardgrid=%d", scale.ShardGrid)
	}
	fmt.Printf("# scale=%s blocks=%d page=%d blocks endurance=%.0f psi=%d seed=%d%s%s\n\n",
		*scaleName, scale.Blocks, scale.BlocksPerPage, scale.MeanEndurance,
		scale.GapWritePeriod, scale.Seed, gridNote, parallelNote)

	experiments := wlreviver.Experiments()
	if *exp != "all" {
		e, err := wlreviver.LookupExperiment(*exp)
		if err != nil {
			return err
		}
		experiments = []wlreviver.Experiment{e}
	}

	report := benchReport{
		Scale:     *scaleName,
		Seed:      scale.Seed,
		Workers:   scale.Workers,
		ShardGrid: scale.ShardGrid,
		NumCPU:    runtime.NumCPU(),
	}
	if scale.ShardGrid >= 2 {
		// Record the effective pool width (0 means "all CPUs" on the
		// flag) so bench rows are self-describing.
		report.Shards = scale.Shards
		if report.Shards == 0 {
			report.Shards = runtime.GOMAXPROCS(0)
		}
	}
	for _, e := range experiments {
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		elapsed := time.Since(start)
		fmt.Println(res)
		if *timing {
			fmt.Printf("(%s took %v)\n\n", e.Name, elapsed.Round(time.Millisecond))
		} else {
			fmt.Println()
		}
		report.add(e.Name, elapsed, totalWrites(res))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.Name, res); err != nil {
				return fmt.Errorf("%s: writing csv: %w", e.Name, err)
			}
		}
	}

	if *benchJSON != "" {
		if err := report.write(*benchJSON); err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
	}
	if *metricsPath != "" {
		if err := collector.write(*metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// ---- machine-readable timings ----------------------------------------------

// benchExperiment is one experiment's cost in the -benchjson report.
type benchExperiment struct {
	Name         string  `json:"name"`
	Seconds      float64 `json:"seconds"`
	Writes       uint64  `json:"writes"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// benchReport is the -benchjson document: per-experiment wall-clock and
// simulated-write throughput, plus run-wide totals.
type benchReport struct {
	Scale        string            `json:"scale"`
	Seed         uint64            `json:"seed"`
	Workers      int               `json:"workers"`
	Shards       int               `json:"shards,omitempty"`
	ShardGrid    uint64            `json:"shard_grid,omitempty"`
	NumCPU       int               `json:"num_cpu"`
	Experiments  []benchExperiment `json:"experiments"`
	TotalSeconds float64           `json:"total_seconds"`
	TotalWrites  uint64            `json:"total_writes"`
	WritesPerSec float64           `json:"writes_per_sec"`
}

// add records one experiment's timing.
func (r *benchReport) add(name string, elapsed time.Duration, writes uint64) {
	e := benchExperiment{Name: name, Seconds: elapsed.Seconds(), Writes: writes}
	if e.Seconds > 0 {
		e.WritesPerSec = float64(writes) / e.Seconds
	}
	r.Experiments = append(r.Experiments, e)
	r.TotalSeconds += e.Seconds
	r.TotalWrites += writes
	if r.TotalSeconds > 0 {
		r.WritesPerSec = float64(r.TotalWrites) / r.TotalSeconds
	}
}

// write dumps the report as indented JSON.
func (r *benchReport) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readBenchReport loads a -benchjson document.
func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// runBenchDiff compares two -benchjson reports experiment by experiment,
// printing wall-clock and throughput deltas. A speedup above 1 means the
// new run is faster (lower seconds, higher writes/sec). A nonzero
// gatePct turns the comparison into a CI gate: the run fails when the
// new report's total writes/sec falls more than gatePct percent below
// the old one. The gate looks only at the sweep total — per-experiment
// throughput at tiny scale is too noisy on shared runners to gate on —
// so a genuine hot-path regression still trips it while one slow
// experiment offset by a fast one does not hide (the totals weight by
// wall-clock, which is what CI budgets care about).
func runBenchDiff(oldPath, newPath string, gatePct float64) error {
	oldR, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newR, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("# benchdiff %s (scale=%s seed=%d workers=%d shards=%d) vs %s (scale=%s seed=%d workers=%d shards=%d)\n",
		oldPath, oldR.Scale, oldR.Seed, oldR.Workers, oldR.Shards,
		newPath, newR.Scale, newR.Seed, newR.Workers, newR.Shards)
	// Differing -shards is the intended comparison (same simulation,
	// different pool width), so it draws no warning; a differing grid is
	// a different chip model and does.
	if oldR.Scale != newR.Scale || oldR.Seed != newR.Seed || oldR.Workers != newR.Workers ||
		oldR.ShardGrid != newR.ShardGrid {
		fmt.Println("# warning: runs differ in scale, seed, workers or shard grid; deltas are not like-for-like")
	}
	fmt.Printf("%-12s %10s %10s %8s %14s %14s %8s\n",
		"experiment", "old s", "new s", "time", "old w/s", "new w/s", "w/s")
	row := func(name string, oldS, newS, oldW, newW float64) {
		timeRatio, wRatio := "n/a", "n/a"
		if newS > 0 {
			timeRatio = fmt.Sprintf("%.2fx", oldS/newS)
		}
		if oldW > 0 {
			wRatio = fmt.Sprintf("%.2fx", newW/oldW)
		}
		fmt.Printf("%-12s %10.2f %10.2f %8s %14.0f %14.0f %8s\n",
			name, oldS, newS, timeRatio, oldW, newW, wRatio)
	}
	newByName := make(map[string]benchExperiment, len(newR.Experiments))
	for _, e := range newR.Experiments {
		newByName[e.Name] = e
	}
	for _, oe := range oldR.Experiments {
		ne, ok := newByName[oe.Name]
		if !ok {
			fmt.Printf("%-12s %10.2f %10s (missing from %s)\n", oe.Name, oe.Seconds, "-", newPath)
			continue
		}
		delete(newByName, oe.Name)
		row(oe.Name, oe.Seconds, ne.Seconds, oe.WritesPerSec, ne.WritesPerSec)
	}
	for _, ne := range newR.Experiments {
		if _, stillNew := newByName[ne.Name]; stillNew {
			fmt.Printf("%-12s %10s %10.2f (missing from %s)\n", ne.Name, "-", ne.Seconds, oldPath)
		}
	}
	row("total", oldR.TotalSeconds, newR.TotalSeconds, oldR.WritesPerSec, newR.WritesPerSec)
	if gatePct > 0 && oldR.WritesPerSec > 0 {
		floor := oldR.WritesPerSec * (1 - gatePct/100)
		if newR.WritesPerSec < floor {
			return fmt.Errorf("perf gate: total %.0f writes/sec is %.1f%% below baseline %.0f (limit %g%%)",
				newR.WritesPerSec, 100*(1-newR.WritesPerSec/oldR.WritesPerSec),
				oldR.WritesPerSec, gatePct)
		}
		fmt.Printf("# perf gate: ok (total %.0f w/s vs baseline %.0f, limit -%g%%)\n",
			newR.WritesPerSec, oldR.WritesPerSec, gatePct)
	}
	return nil
}

// writeCounter is implemented by results that track their simulated
// write volume.
type writeCounter interface {
	TotalWrites() uint64
}

// totalWrites extracts the simulated write count from a result
// (wlreviver.ResultPair sums its halves itself).
func totalWrites(res fmt.Stringer) uint64 {
	if wc, ok := res.(writeCounter); ok {
		return wc.TotalWrites()
	}
	return 0
}

// curveSet is implemented by results that carry plottable curves.
type curveSet interface {
	CurveData() (workload string, curves []stats.Curve)
}

// writeCSV dumps any curves a result carries as <dir>/<exp>[-workload].csv.
func writeCSV(dir, exp string, res fmt.Stringer) error {
	var sets []curveSet
	switch r := res.(type) {
	case wlreviver.ResultPair:
		for _, half := range r.Halves() {
			if cs, ok := half.(curveSet); ok {
				sets = append(sets, cs)
			}
		}
	case curveSet:
		sets = append(sets, r)
	default:
		return nil // tabular results have no curves
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cs := range sets {
		workload, curves := cs.CurveData()
		name := exp
		if workload != "" {
			name += "-" + workload
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprint(w, "writes_per_block")
		maxX := 0.0
		for _, c := range curves {
			fmt.Fprintf(w, ",%s", strings.ReplaceAll(c.Name, ",", ";"))
			if n := len(c.Points); n > 0 && c.Points[n-1].X > maxX {
				maxX = c.Points[n-1].X
			}
		}
		fmt.Fprintln(w)
		// Curves sample on their own grids (a run ends at its floor), so
		// resample everything onto a common 256-point grid.
		const gridPoints = 256
		for i := 0; i <= gridPoints; i++ {
			x := maxX * float64(i) / gridPoints
			fmt.Fprintf(w, "%g", x)
			for _, c := range curves {
				fmt.Fprintf(w, ",%g", c.YAt(x))
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ---- engine observation (-metrics / -progress) ------------------------------

// metricsCollector hands one wlreviver.Metrics accumulator to each engine
// an experiment builds, keyed by the engine's role. The factory runs on
// worker goroutines, hence the mutex; each returned observer serves one
// engine, so the accumulators themselves are unshared.
type metricsCollector struct {
	mu       sync.Mutex
	byKey    map[string]*wlreviver.Metrics
	progress bool
}

// observe is the wlreviver.Scale.Observe factory.
func (c *metricsCollector) observe(key string) wlreviver.Observer {
	m := wlreviver.NewMetrics()
	c.mu.Lock()
	c.byKey[key] = m
	c.mu.Unlock()
	if c.progress {
		return progressObserver{Metrics: m, key: key}
	}
	return m
}

// write dumps every engine's metrics report as one JSON document keyed
// by engine role. Keys marshal sorted, so the file is deterministic.
func (c *metricsCollector) write(path string) error {
	c.mu.Lock()
	reports := make(map[string]wlreviver.MetricsReport, len(c.byKey))
	for key, m := range c.byKey {
		reports[key] = m.Report()
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// progressObserver forwards everything to its Metrics and additionally
// streams each snapshot to stderr, leaving stdout byte-identical.
type progressObserver struct {
	*wlreviver.Metrics
	key string
}

// Snapshot accumulates the sample and prints a progress line.
func (p progressObserver) Snapshot(s wlreviver.Snapshot) {
	p.Metrics.Snapshot(s)
	fmt.Fprintf(os.Stderr, "progress %s: writes/block=%.0f survival=%.3f usable=%.3f dead=%d remaps=%d\n",
		p.key, s.WritesPerBlock, s.SurvivalRate, s.UsableFraction, s.DeadBlocks, s.LiveRemaps)
}
