// Package ecc implements the error-correction substrates the paper
// evaluates underneath wear leveling: ECP (Error-Correcting Pointers,
// Schechter et al., ISCA'10) and PAYG (Pay-As-You-Go, Qureshi, MICRO'11).
//
// The simulator models correction capacity rather than bit patterns: the
// PCM device reports cell failures per block, and the scheme decides when
// a block's failures exceed what its (local plus, for PAYG, pooled)
// metadata can correct. At that point the block is declared dead and
// higher layers (WL-Reviver, FREE-p, LLS) take over.
package ecc

import (
	"fmt"

	"wlreviver/internal/bitset"
	"wlreviver/internal/pcm"
)

// Scheme is an error-correction policy for a device.
type Scheme interface {
	// Name identifies the scheme in reports ("ECP6", "PAYG", ...).
	Name() string
	// Absorb accounts newFailures fresh cell failures on block b and
	// reports whether the block is still correctable. Once it returns
	// false for a block, subsequent calls for that block return false.
	Absorb(b pcm.BlockID, newFailures int) bool
	// MetadataBitsPerBlock reports the average metadata overhead in bits
	// per block (per 512-bit group in the paper's terms), for the
	// space-overhead comparisons (ECP6: 61, PAYG default: 19.5).
	MetadataBitsPerBlock() float64
}

// ECP corrects up to Capacity failed cells per block by pointing
// replacement cells at them. ECP6 (61 bits per 512-bit group) is the
// paper's base scheme; ECP1 is PAYG's local layer.
//
// Cell failures are rare relative to the block count for most of a run,
// so correction usage is a sparse map and the dead flags a bitset rather
// than dense per-block arrays.
type ECP struct {
	name      string  // ckpt:skip construction-time label
	capacity  int     // ckpt:skip construction-time capacity, fingerprinted by the engine
	bits      float64 // ckpt:skip construction-time overhead constant
	numBlocks uint64  // ckpt:skip construction-time geometry, fingerprinted by the engine
	used      map[uint64]uint16
	deadFlag  bitset.Bits
}

// NewECP returns an ECP scheme with the given per-block capacity for a
// device of numBlocks blocks. Metadata bits follow the ECP paper's
// formula for a 512-bit group: n pointers of 9 bits, n replacement bits,
// and one "full" bit.
func NewECP(capacity int, numBlocks uint64) (*ECP, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("ecc: negative ECP capacity %d", capacity)
	}
	return &ECP{
		name:      fmt.Sprintf("ECP%d", capacity),
		capacity:  capacity,
		bits:      float64(capacity*10 + 1),
		numBlocks: numBlocks,
		used:      make(map[uint64]uint16),
		deadFlag:  bitset.New(numBlocks),
	}, nil
}

// Name implements Scheme.
func (e *ECP) Name() string { return e.name }

// MetadataBitsPerBlock implements Scheme.
func (e *ECP) MetadataBitsPerBlock() float64 { return e.bits }

// Absorb implements Scheme.
func (e *ECP) Absorb(b pcm.BlockID, newFailures int) bool {
	if e.deadFlag.Test(uint64(b)) {
		return false
	}
	u := e.used[uint64(b)] + uint16(newFailures)
	e.used[uint64(b)] = u
	if int(u) > e.capacity {
		e.deadFlag.Set(uint64(b))
		return false
	}
	return true
}

// Used returns the number of corrections consumed on block b.
func (e *ECP) Used(b pcm.BlockID) int { return int(e.used[uint64(b)]) }

// PAYGConfig parameterises the Pay-As-You-Go hierarchy.
type PAYGConfig struct {
	// LocalCapacity is the per-block local correction capacity
	// (paper default: ECP1, i.e. 1).
	LocalCapacity int
	// SetBlocks is the number of blocks sharing one global pool
	// (the PAYG paper groups lines into sets).
	SetBlocks int
	// SetEntries is the number of pooled correction entries per set.
	SetEntries int
	// OverflowEntries is the size of the chip-wide overflow pool shared
	// by all sets once their local pools are exhausted.
	OverflowEntries int
	// EntryBits is the metadata cost of one pooled entry (pointer +
	// replacement cell + tag), used only for overhead reporting.
	EntryBits float64
}

// DefaultPAYGConfig returns the paper's setting: ECP1 locally and an
// average of 19.5 metadata bits per 512-bit group. With an 11-bit local
// layer and 13-bit pooled entries (9-bit pointer, 1 replacement bit,
// ~3-bit tag amortised), the remaining 8.5 bits/block budget buys
// SetBlocks*8.5/13 pooled entries per set plus a 10% overflow pool.
func DefaultPAYGConfig(numBlocks uint64) PAYGConfig {
	const (
		budgetPerBlock = 19.5
		localBits      = 11.0
		entryBits      = 13.0
		setBlocks      = 64
	)
	perSetBudget := float64(setBlocks) * (budgetPerBlock - localBits) / entryBits
	perSet := int(perSetBudget)
	sets := int((numBlocks + setBlocks - 1) / setBlocks)
	return PAYGConfig{
		LocalCapacity:   1,
		SetBlocks:       setBlocks,
		SetEntries:      perSet,
		OverflowEntries: sets * perSet / 10,
		EntryBits:       entryBits,
	}
}

// Validate reports whether the configuration is usable.
func (c PAYGConfig) Validate() error {
	switch {
	case c.LocalCapacity < 0:
		return fmt.Errorf("ecc: negative PAYG local capacity")
	case c.SetBlocks <= 0:
		return fmt.Errorf("ecc: PAYG SetBlocks must be positive")
	case c.SetEntries < 0:
		return fmt.Errorf("ecc: negative PAYG SetEntries")
	case c.OverflowEntries < 0:
		return fmt.Errorf("ecc: negative PAYG OverflowEntries")
	}
	return nil
}

// PAYG implements Pay-As-You-Go error correction: a small local layer per
// block plus dynamically allocated pooled entries. A block dies when a
// cell failure arrives and neither its local layer, its set pool, nor the
// overflow pool has a free entry.
type PAYG struct {
	cfg       PAYGConfig // ckpt:skip construction-time config, fingerprinted by the engine
	numBlocks uint64     // ckpt:skip construction-time geometry, fingerprinted by the engine

	localUsed map[uint64]uint16
	setFree   []int32
	overflow  int64
	deadFlag  bitset.Bits

	pooledUsed uint64
}

// NewPAYG builds a PAYG scheme for numBlocks blocks.
func NewPAYG(cfg PAYGConfig, numBlocks uint64) (*PAYG, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := (numBlocks + uint64(cfg.SetBlocks) - 1) / uint64(cfg.SetBlocks)
	p := &PAYG{
		cfg:       cfg,
		numBlocks: numBlocks,
		localUsed: make(map[uint64]uint16),
		setFree:   make([]int32, sets),
		overflow:  int64(cfg.OverflowEntries),
		deadFlag:  bitset.New(numBlocks),
	}
	for i := range p.setFree {
		p.setFree[i] = int32(cfg.SetEntries)
	}
	return p, nil
}

// Name implements Scheme.
func (p *PAYG) Name() string { return "PAYG" }

// MetadataBitsPerBlock implements Scheme.
func (p *PAYG) MetadataBitsPerBlock() float64 {
	local := float64(p.cfg.LocalCapacity*10 + 1)
	sets := float64(len(p.setFree))
	pooled := (sets*float64(p.cfg.SetEntries) + float64(p.cfg.OverflowEntries)) *
		p.cfg.EntryBits / float64(p.numBlocks)
	return local + pooled
}

// Absorb implements Scheme.
func (p *PAYG) Absorb(b pcm.BlockID, newFailures int) bool {
	if p.deadFlag.Test(uint64(b)) {
		return false
	}
	for i := 0; i < newFailures; i++ {
		if int(p.localUsed[uint64(b)]) < p.cfg.LocalCapacity {
			p.localUsed[uint64(b)]++
			continue
		}
		set := uint64(b) / uint64(p.cfg.SetBlocks)
		if p.setFree[set] > 0 {
			p.setFree[set]--
			p.pooledUsed++
			continue
		}
		if p.overflow > 0 {
			p.overflow--
			p.pooledUsed++
			continue
		}
		p.deadFlag.Set(uint64(b))
		return false
	}
	return true
}

// PooledUsed returns the number of pooled entries consumed so far.
func (p *PAYG) PooledUsed() uint64 { return p.pooledUsed }

// OverflowLeft returns the remaining overflow-pool entries.
func (p *PAYG) OverflowLeft() int64 { return p.overflow }

// verify interface compliance.
var (
	_ Scheme = (*ECP)(nil)
	_ Scheme = (*PAYG)(nil)
)

// SAFER implements Stuck-At-Fault Error Recovery (Seong et al.,
// MICRO'10), the other hard-error scheme the paper cites. SAFER exploits
// the fact that a stuck-at PCM cell still reads reliably: it dynamically
// partitions a data block into groups such that each group contains at
// most one stuck cell, then stores each group either directly or
// inverted so the stuck value always matches the data.
//
// The simulator models correction capacity: SAFER-n (n a power of two)
// partitions into up to n groups and is modeled as correcting up to n
// stuck cells per block. (The real scheme guarantees separability for
// two arbitrary faults and achieves near-certain separability for more
// via its recursive bit-flipping partition; the deterministic-capacity
// simplification is documented here and errs slightly in SAFER's
// favour.) Metadata per the SAFER paper: log2(n) group-count bits, the
// partition field, and n inversion bits — for SAFER32 over a 512-bit
// block, 5 + 29 + 32 = 66 bits; the constructor computes the general
// form.
type SAFER struct {
	name      string  // ckpt:skip construction-time label
	capacity  int     // ckpt:skip construction-time capacity, fingerprinted by the engine
	bits      float64 // ckpt:skip construction-time overhead constant
	numBlocks uint64  // ckpt:skip construction-time geometry, fingerprinted by the engine
	used      map[uint64]uint16
	deadFlag  bitset.Bits
}

// NewSAFER returns a SAFER-n scheme (n must be a positive power of two)
// for a device of numBlocks blocks with cellsPerBlock-cell groups.
func NewSAFER(n int, cellsPerBlock int, numBlocks uint64) (*SAFER, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ecc: SAFER group count %d must be a positive power of two", n)
	}
	if cellsPerBlock <= 0 {
		return nil, fmt.Errorf("ecc: cellsPerBlock must be positive")
	}
	logN := 0
	for 1<<logN < n {
		logN++
	}
	// Partition field: ceil(log2(cells)) bits per partition level beyond
	// the first, following the paper's recursive construction.
	logCells := 0
	for 1<<logCells < cellsPerBlock {
		logCells++
	}
	partitionBits := 0
	if logN > 0 {
		partitionBits = logCells + (logN-1)*logN/2
	}
	return &SAFER{
		name:      fmt.Sprintf("SAFER%d", n),
		capacity:  n,
		bits:      float64(logN + partitionBits + n),
		numBlocks: numBlocks,
		used:      make(map[uint64]uint16),
		deadFlag:  bitset.New(numBlocks),
	}, nil
}

// Name implements Scheme.
func (s *SAFER) Name() string { return s.name }

// MetadataBitsPerBlock implements Scheme.
func (s *SAFER) MetadataBitsPerBlock() float64 { return s.bits }

// Absorb implements Scheme.
func (s *SAFER) Absorb(b pcm.BlockID, newFailures int) bool {
	if s.deadFlag.Test(uint64(b)) {
		return false
	}
	u := s.used[uint64(b)] + uint16(newFailures)
	s.used[uint64(b)] = u
	if int(u) > s.capacity {
		s.deadFlag.Set(uint64(b))
		return false
	}
	return true
}

// Used returns the number of stuck cells tolerated on block b.
func (s *SAFER) Used(b pcm.BlockID) int { return int(s.used[uint64(b)]) }

var _ Scheme = (*SAFER)(nil)
