package wear

import (
	"fmt"
	"math/bits"

	"wlreviver/internal/obs"
	"wlreviver/internal/rng"
)

// srRegion is one Security Refresh region: an XOR-remapped address space
// of power-of-two size that incrementally re-keys itself.
//
// Every address ra in the region is mapped to ra ⊕ key. A refresh round
// introduces a new key and walks a refresh pointer over the region,
// swapping each address's old location (ra ⊕ kPrev) with its new one
// (ra ⊕ kCur). An address is "already remapped" in the current round when
// either it or its swap partner (ra ⊕ kPrev ⊕ kCur) has been passed by
// the pointer; remapped addresses use kCur, the rest still use kPrev.
type srRegion struct {
	size  uint64 // ckpt:skip construction-time region size, validated on restore
	kPrev uint64
	kCur  uint64
	rp    uint64 // next address to refresh; size means round complete
	src   *rng.Source
	swaps uint64
	round uint64

	// tbl memoizes mapSlow for every region address, updated incrementally
	// as the refresh pointer walks: a re-key changes no mapping (the new
	// key only takes effect as addresses are swapped), and each swap
	// re-keys exactly the pair (ra, partner) just processed. nil when the
	// region is too large to memoize.
	// ckpt:derived memo table rebuilt from kPrev/kCur/rp in loadState
	tbl []uint32
}

func newSRRegion(size uint64, src *rng.Source) *srRegion {
	k0 := src.Uint64n(size)
	r := &srRegion{size: size, kPrev: k0, kCur: k0, rp: size, src: src}
	if size <= maxTableDomain {
		r.tbl = make([]uint32, size)
		for ra := uint64(0); ra < size; ra++ {
			r.tbl[ra] = uint32(ra ^ k0)
		}
	}
	return r
}

// remapped reports whether ra has been re-keyed in the current round.
func (r *srRegion) remapped(ra uint64) bool {
	return ra < r.rp || (ra^r.kPrev^r.kCur) < r.rp
}

func (r *srRegion) mapAddr(ra uint64) uint64 {
	if r.tbl != nil {
		return uint64(r.tbl[ra])
	}
	return r.mapSlow(ra)
}

// mapSlow computes the mapping from the refresh registers; the reference
// the incremental table is pinned against.
func (r *srRegion) mapSlow(ra uint64) uint64 {
	if r.remapped(ra) {
		return ra ^ r.kCur
	}
	return ra ^ r.kPrev
}

func (r *srRegion) inverse(da uint64) uint64 {
	raCur := da ^ r.kCur
	if r.remapped(raCur) {
		return raCur
	}
	return da ^ r.kPrev
}

// step performs one refresh action: start a new round if the previous one
// finished, then process the address under the refresh pointer, swapping
// its old and new locations unless its partner was already processed.
// swap is called with region-local device addresses.
func (r *srRegion) step(swap func(a, b uint64)) {
	if r.rp >= r.size {
		r.kPrev = r.kCur
		r.kCur = r.src.Uint64n(r.size)
		r.rp = 0
		r.round++
	}
	ra := r.rp
	partner := ra ^ r.kPrev ^ r.kCur
	if r.kPrev == r.kCur {
		r.rp++
		return // degenerate round (initial key): nothing moves
	}
	if partner < ra {
		r.rp++
		return // pair already swapped when the pointer passed partner
	}
	// The swap callback runs BEFORE the pointer advances: Mover
	// implementations observe the pre-update mapping, the same contract
	// Start-Gap's Migrate follows (see wear.Mover).
	swap(ra^r.kPrev, ra^r.kCur)
	r.rp++
	r.swaps++
	if r.tbl != nil {
		// Advancing rp past ra re-keys exactly ra and its partner (every
		// other address's remapped status is unchanged: it either was
		// already below the old pointer or involves a different pair).
		r.tbl[ra] = uint32(ra ^ r.kCur)
		r.tbl[partner] = uint32(partner ^ r.kCur)
	}
}

// SecurityRefreshConfig configures the scheme.
type SecurityRefreshConfig struct {
	// NumPAs is the (power-of-two) address-space size in blocks.
	NumPAs uint64
	// InnerRegions, when >1, enables the two-level organisation: an outer
	// refresh across the whole space composed with an independent inner
	// refresh per region. Must be a power of two dividing NumPAs; 1
	// selects the single-level scheme.
	InnerRegions uint64
	// OuterWritePeriod is the number of serviced writes per outer refresh
	// step (the scheme's refresh interval).
	OuterWritePeriod uint64
	// InnerWritePeriod is the number of serviced writes per inner refresh
	// step of the written region (two-level only).
	InnerWritePeriod uint64
	// Seed keys the random refresh keys.
	Seed uint64
}

// SecurityRefresh implements the Security Refresh wear-leveling scheme
// (single- or two-level). Unlike Start-Gap it needs no gap block: its
// migrations are swaps (NumDAs == NumPAs).
type SecurityRefresh struct {
	cfg    SecurityRefreshConfig // ckpt:skip construction-time config, fingerprinted by the engine
	outer  *srRegion
	inner  []*srRegion
	shift  uint   // ckpt:derived log2(inner region size), recomputed in New
	mask   uint64 // ckpt:derived inner-region mask, recomputed in New
	outerW uint64
	innerW []uint64

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; RegionSwapped probe
}

// NewSecurityRefresh builds the scheme.
func NewSecurityRefresh(cfg SecurityRefreshConfig) (*SecurityRefresh, error) {
	if cfg.NumPAs == 0 || cfg.NumPAs&(cfg.NumPAs-1) != 0 {
		return nil, fmt.Errorf("wear: security refresh needs a power-of-two space, got %d", cfg.NumPAs)
	}
	if cfg.InnerRegions == 0 {
		cfg.InnerRegions = 1
	}
	if cfg.InnerRegions&(cfg.InnerRegions-1) != 0 || cfg.InnerRegions > cfg.NumPAs {
		return nil, fmt.Errorf("wear: inner regions %d must be a power of two dividing the space", cfg.InnerRegions)
	}
	if cfg.OuterWritePeriod == 0 {
		return nil, fmt.Errorf("wear: OuterWritePeriod must be positive")
	}
	if cfg.InnerRegions > 1 && cfg.InnerWritePeriod == 0 {
		return nil, fmt.Errorf("wear: InnerWritePeriod must be positive with two levels")
	}
	src := rng.New(cfg.Seed ^ 0x5ECFEFFE5)
	s := &SecurityRefresh{
		cfg:   cfg,
		outer: newSRRegion(cfg.NumPAs, src.Fork(0)),
	}
	if cfg.InnerRegions > 1 {
		regionSize := cfg.NumPAs / cfg.InnerRegions
		s.shift = uint(bits.TrailingZeros64(regionSize))
		s.mask = regionSize - 1
		s.inner = make([]*srRegion, cfg.InnerRegions)
		s.innerW = make([]uint64, cfg.InnerRegions)
		for i := range s.inner {
			s.inner[i] = newSRRegion(regionSize, src.Fork(uint64(i)+1))
		}
	}
	return s, nil
}

// Name implements Leveler.
func (s *SecurityRefresh) Name() string {
	if len(s.inner) > 0 {
		return "Security-Refresh-2L"
	}
	return "Security-Refresh"
}

// NumPAs implements Leveler.
func (s *SecurityRefresh) NumPAs() uint64 { return s.cfg.NumPAs }

// NumDAs implements Leveler.
func (s *SecurityRefresh) NumDAs() uint64 { return s.cfg.NumPAs }

// Map implements Leveler.
func (s *SecurityRefresh) Map(pa uint64) uint64 {
	if pa >= s.cfg.NumPAs {
		panic(fmt.Sprintf("wear: security refresh PA %d out of range", pa))
	}
	mid := s.outer.mapAddr(pa)
	if len(s.inner) == 0 {
		return mid
	}
	region := mid >> s.shift
	return region<<s.shift | s.inner[region].mapAddr(mid&s.mask)
}

// Inverse implements Leveler. All DAs are mapped (ok is always true).
func (s *SecurityRefresh) Inverse(da uint64) (uint64, bool) {
	if da >= s.cfg.NumPAs {
		panic(fmt.Sprintf("wear: security refresh DA %d out of range", da))
	}
	mid := da
	if len(s.inner) > 0 {
		region := da >> s.shift
		mid = region<<s.shift | s.inner[region].inverse(da&s.mask)
	}
	return s.outer.inverse(mid), true
}

// midToDA translates an outer-level address to the device address through
// the inner mapping of its region.
func (s *SecurityRefresh) midToDA(mid uint64) uint64 {
	if len(s.inner) == 0 {
		return mid
	}
	region := mid >> s.shift
	return region<<s.shift | s.inner[region].mapAddr(mid&s.mask)
}

// NoteWrite implements Leveler. Outer refreshes are paced by total write
// volume; inner refreshes are paced per region by the writes landing in
// that region, as in the two-level scheme's demand-driven refresh.
func (s *SecurityRefresh) NoteWrite(pa uint64, mover Mover) {
	s.outerW++
	if s.outerW >= s.cfg.OuterWritePeriod {
		s.outerW = 0
		s.outer.step(func(a, b uint64) {
			da1, da2 := s.midToDA(a), s.midToDA(b)
			mover.Swap(da1, da2)
			if s.observer != nil {
				s.observer.RegionSwapped(da1, da2)
			}
		})
	}
	if len(s.inner) == 0 {
		return
	}
	region := s.outer.mapAddr(pa) >> s.shift
	s.innerW[region]++
	if s.innerW[region] >= s.cfg.InnerWritePeriod {
		s.innerW[region] = 0
		base := region << s.shift
		s.inner[region].step(func(a, b uint64) {
			mover.Swap(base|a, base|b)
			if s.observer != nil {
				s.observer.RegionSwapped(base|a, base|b)
			}
		})
	}
}

// SetObserver attaches an event observer (nil detaches). RegionSwapped
// fires once per outer or inner refresh swap with the device addresses
// exchanged.
func (s *SecurityRefresh) SetObserver(o obs.Observer) { s.observer = o }

// OuterSwaps returns the number of outer-level swaps performed.
func (s *SecurityRefresh) OuterSwaps() uint64 { return s.outer.swaps }

var _ Leveler = (*SecurityRefresh)(nil)
