// Fixture: internal/sim/runner.go is the one non-test file allowed to
// start goroutines. Nothing in this file is a finding.
package sim

// RunPool fans work out; allowed here by path.
func RunPool(jobs []func()) {
	done := make(chan struct{})
	for _, j := range jobs {
		j := j
		go func() {
			j()
			done <- struct{}{}
		}()
	}
	for range jobs {
		<-done
	}
}
