package wlreviver

import (
	"wlreviver/internal/serve"
	"wlreviver/internal/sim"
)

// Fleet hosts many simulated devices in one process — the embedded form
// of the wlserved daemon. Each device is a full System owned by a
// per-device actor, paged in and out of memory under an LRU budget and
// journaled so acknowledged writes survive a process kill. See
// EXPERIMENTS.md § wlserved.
type Fleet = serve.Fleet

// FleetConfig parameterises OpenFleet.
type FleetConfig = serve.Config

// OpenFleet opens (or recovers) a fleet over its spill directory.
func OpenFleet(cfg FleetConfig) (*Fleet, error) { return serve.Open(cfg) }

// DeviceSpec is a fleet device's declarative, JSON-portable
// description: geometry, component stack, and workload.
type DeviceSpec = serve.DeviceSpec

// DeviceStatus is a fleet device's observable state.
type DeviceStatus = serve.DeviceStatus

// WriteResult reports how a fleet write request was serviced.
type WriteResult = serve.WriteResult

// FleetHealth is the fleet-level device and residency summary.
type FleetHealth = serve.Health

// FleetClient is the HTTP client for a remote wlserved daemon. Its
// errors wrap the same sentinels the in-process Fleet returns, so
// errors.Is works identically against either.
type FleetClient = serve.Client

// NewFleetClient returns a client for the daemon at base
// (e.g. "http://127.0.0.1:8080"); hc nil uses http.DefaultClient.
var NewFleetClient = serve.NewClient

// NewFleetHandler builds the wlserved HTTP API over a fleet, for
// embedding the daemon in another process.
var NewFleetHandler = serve.NewHandler

// DeviceStack is a named ECC/leveler/protector stack from the paper's
// figure sweeps, creatable by name via DeviceSpec.Stack.
type DeviceStack = sim.DeviceStack

// DeviceStacks lists the registered stacks in registry order.
func DeviceStacks() []DeviceStack { return sim.DeviceStacks() }

// DeviceStackNames lists the registered stack names in registry order.
func DeviceStackNames() []string { return sim.DeviceStackNames() }

// LookupDeviceStack returns the named stack or ErrUnknownExperiment.
func LookupDeviceStack(name string) (DeviceStack, error) { return sim.LookupDeviceStack(name) }
