package wlreviver

import (
	"fmt"

	"wlreviver/internal/trace"
)

// Generic workload kinds for WorkloadSpec.Kind. Any Table I benchmark
// name (see BenchmarkNames) is also a valid kind.
const (
	// WorkloadUniform writes uniformly at random over Blocks.
	WorkloadUniform = "uniform"
	// WorkloadSkewed is a stationary workload calibrated to CoV, with
	// page-correlated weights (PageBlocks blocks per page).
	WorkloadSkewed = "skewed"
	// WorkloadHammer repeatedly writes the Targets addresses round-robin
	// (malicious single-set hammering).
	WorkloadHammer = "hammer"
	// WorkloadBirthday is Seznec's birthday-paradox attack: bursts of
	// Burst writes over random SetSize-address sets.
	WorkloadBirthday = "birthday"
)

// WorkloadSpec declares a workload for NewWorkload. Kind and Blocks are
// always required; the remaining fields apply to the kinds noted on each.
type WorkloadSpec struct {
	// Kind selects the generator family: WorkloadUniform, WorkloadSkewed,
	// WorkloadHammer, WorkloadBirthday, or a Table I benchmark name
	// ("mg", "ocean", ... — see BenchmarkNames).
	Kind string
	// Blocks is the software-visible address space in blocks.
	Blocks uint64
	// PageBlocks is the page size in blocks driving page-correlated skew
	// (skewed and benchmark kinds).
	PageBlocks uint64
	// CoV is the target write coefficient of variation (skewed kind).
	CoV float64
	// Targets are the hammered block addresses (hammer kind).
	Targets []uint64
	// SetSize is the number of simultaneously attacked addresses per
	// burst (birthday kind).
	SetSize int
	// Burst is the writes issued per attacked set (birthday kind).
	Burst uint64
	// Seed drives the generator's randomness (all kinds except hammer,
	// which is deterministic in Targets).
	Seed uint64
}

// NewWorkload builds a workload from its declarative spec — the single
// construction path the per-kind convenience wrappers delegate to.
func NewWorkload(spec WorkloadSpec) (Workload, error) {
	switch spec.Kind {
	case "":
		return nil, fmt.Errorf("wlreviver: WorkloadSpec.Kind is required (generic kinds: %v; benchmarks: %v)",
			genericWorkloadKinds(), BenchmarkNames())
	case WorkloadUniform:
		return trace.NewUniform(spec.Blocks, spec.Seed)
	case WorkloadSkewed:
		return trace.NewWeighted(trace.WeightedConfig{
			NumBlocks: spec.Blocks, PageBlocks: spec.PageBlocks,
			TargetCoV: spec.CoV, Seed: spec.Seed,
		})
	case WorkloadHammer:
		return trace.NewHammer(spec.Blocks, spec.Targets)
	case WorkloadBirthday:
		return trace.NewBirthdayParadox(spec.Blocks, spec.SetSize, spec.Burst, spec.Seed)
	default:
		if _, err := trace.LookupBenchmark(spec.Kind); err != nil {
			return nil, fmt.Errorf("wlreviver: unknown workload kind %q (generic kinds: %v; benchmarks: %v)",
				spec.Kind, genericWorkloadKinds(), BenchmarkNames())
		}
		return trace.NewBenchmark(spec.Kind, spec.Blocks, spec.PageBlocks, spec.Seed)
	}
}

// genericWorkloadKinds lists the non-benchmark kinds for error messages.
func genericWorkloadKinds() []string {
	return []string{WorkloadUniform, WorkloadSkewed, WorkloadHammer, WorkloadBirthday}
}
