package reviver

import (
	"testing"

	"wlreviver/internal/cache"
	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

// harness wires a small full stack (device + ECC + leveler + OS + reviver)
// and drives it the way the simulation engine does: translate, write,
// replay relocations, retry sacrificed writes, resume pending migrations,
// then pace the leveler.
type harness struct {
	t   testing.TB
	dev *pcm.Device
	be  *mc.Backend
	lv  wear.Leveler
	os  *osmodel.Model
	rv  *Reviver

	expected map[uint64]uint64 // PA -> last tag written there
	nextTag  uint64
}

type harnessOpts struct {
	blocks        uint64  // PA space size (blocks)
	blocksPerPage uint64  // page size
	endurance     float64 // mean cell endurance
	seed          uint64
	securityRef   bool // use Security Refresh instead of Start-Gap
	regioned      bool // use the multi-region Start-Gap organisation
	cacheKB       int  // remap cache size; 0 = none
	noReduce      bool // disable chain reduction
	gapPeriod     uint64
}

func newHarness(t testing.TB, o harnessOpts) *harness {
	t.Helper()
	if o.blocksPerPage == 0 {
		o.blocksPerPage = 16
	}
	if o.gapPeriod == 0 {
		o.gapPeriod = 8
	}
	var lv wear.Leveler
	numDAs := o.blocks + 1
	if o.regioned {
		const regions = 4
		rsg, err := wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
			NumPAs: o.blocks, Regions: regions, GapWritePeriod: o.gapPeriod, Seed: o.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lv = rsg
		numDAs = o.blocks + regions
	} else if o.securityRef {
		sr, err := wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
			NumPAs: o.blocks, OuterWritePeriod: o.gapPeriod, Seed: o.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lv = sr
		numDAs = o.blocks
	} else {
		sg, err := wear.NewStartGap(wear.StartGapConfig{
			NumPAs: o.blocks, GapWritePeriod: o.gapPeriod, Seed: o.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lv = sg
	}
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks:     numDAs,
		BlockBytes:    64,
		CellsPerBlock: 512,
		MeanEndurance: o.endurance,
		LifetimeCoV:   0.2,
		Seed:          o.seed,
		TrackContent:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ecc.NewECP(6, numDAs)
	if err != nil {
		t.Fatal(err)
	}
	osm, err := osmodel.New(o.blocks, o.blocksPerPage)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{DisableChainReduction: o.noReduce}
	if o.cacheKB > 0 {
		cc, err := cache.SizedConfig(o.cacheKB*1024, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cc)
		if err != nil {
			t.Fatal(err)
		}
		cfg.RemapCache = c
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	rv, err := New(cfg, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t: t, dev: dev, be: be, lv: lv, os: osm, rv: rv,
		expected: make(map[uint64]uint64),
	}
}

// write performs one software write to vblock, following the engine
// protocol. Returns false when the memory is exhausted.
func (h *harness) write(vblock uint64) bool {
	h.nextTag++
	tag := h.nextTag
	for attempt := 0; ; attempt++ {
		if attempt > int(h.os.NumPages())+2 {
			h.t.Fatalf("write to vblock %d did not settle after %d retries", vblock, attempt)
		}
		pa, ok := h.os.Translate(vblock)
		if !ok {
			return false
		}
		res := h.rv.Write(pa, tag)
		h.noteRelocations(pa, res.Relocations, res.Retry)
		if !res.Retry {
			h.expected[pa] = tag
			h.rv.ResumePending()
			h.lv.NoteWrite(pa, h.rv)
			return true
		}
	}
}

// noteRelocations updates PA-level expectations after a page retirement:
// the reviver has already performed the OS's recovery copies; the harness
// only moves its bookkeeping. Blocks of the retired page that were not
// copied (no recoverable data, or the copy was dropped) are dropped.
//
// The donor page is a live frame (the fully-committed model folds the
// retired page's virtual page onto it), so every performed copy
// *overwrites* the donor block — including copies of blocks software
// never wrote, whose content the harness does not track. Those must
// clear the donor PA's expectation rather than leave a stale tag behind;
// missing that was the historic "PA <n> reads tag 0" flake.
func (h *harness) noteRelocations(reportPA uint64, relocs []osmodel.Relocation, retired bool) {
	if !retired {
		if len(relocs) != 0 {
			h.t.Fatalf("relocations returned without a retirement")
		}
		return
	}
	moved := make(map[uint64]uint64, len(relocs))
	for _, rc := range relocs {
		moved[rc.OldPA] = rc.NewPA
	}
	page := h.os.PageOf(reportPA)
	bpp := h.os.BlocksPerPage()
	for off := uint64(0); off < bpp; off++ {
		old := page*bpp + off
		tag, had := h.expected[old]
		delete(h.expected, old)
		if newPA, copied := moved[old]; copied {
			if had {
				h.expected[newPA] = tag
			} else {
				delete(h.expected, newPA)
			}
		}
	}
}

// verifyContent checks every live PA reads back its last written tag.
func (h *harness) verifyContent() {
	h.t.Helper()
	if h.rv.HasPending() {
		return // transient state; data sits in the migration buffer
	}
	for pa, want := range h.expected {
		if h.os.Retired(pa) {
			continue
		}
		got, _ := h.rv.Read(pa)
		if got != want {
			h.t.Fatalf("PA %d reads tag %d, want %d", pa, got, want)
		}
	}
}

// verifyTheorems checks the paper's three theorems at a rest point.
func (h *harness) verifyTheorems() {
	h.t.Helper()
	if h.rv.HasPending() {
		return
	}
	// Theorem 1: every software-accessible failed block has a one-step
	// chain to a healthy block.
	for pa := uint64(0); pa < h.lv.NumPAs(); pa++ {
		if h.os.Retired(pa) {
			continue
		}
		da := h.lv.Map(pa)
		if !h.be.Dead(da) {
			continue
		}
		steps, healthy := h.rv.ChainSteps(da)
		if !healthy || steps != 1 {
			h.t.Fatalf("theorem 1 violated: live PA %d -> dead DA %d has chain (steps=%d healthy=%v)",
				pa, da, steps, healthy)
		}
	}
	// Theorem 2: every unlinked reserved PA reaches a healthy block in at
	// most one step.
	for _, p := range h.rv.SparePAs() {
		da := h.lv.Map(p)
		steps, healthy := h.rv.ChainSteps(da)
		if !healthy || steps > 1 {
			h.t.Fatalf("theorem 2 violated: spare PA %d -> DA %d (steps=%d healthy=%v)",
				p, da, steps, healthy)
		}
	}
	// Loop blocks must not be mapped by any live software PA.
	for da := range h.rv.byDA {
		if !h.rv.OnLoop(da) {
			continue
		}
		p, ok := h.lv.Inverse(da)
		if !ok {
			continue
		}
		if !h.os.Retired(p) {
			h.t.Fatalf("PA-DA loop block %d is mapped by live PA %d", da, p)
		}
	}
}

// run drives n writes from g, verifying invariants periodically.
func (h *harness) run(g trace.Generator, n int, checkEvery int) int {
	performed := 0
	for i := 0; i < n; i++ {
		if !h.write(g.Next() % h.lv.NumPAs()) {
			break
		}
		performed++
		if checkEvery > 0 && i%checkEvery == 0 {
			h.verifyTheorems()
			h.verifyContent()
		}
	}
	return performed
}

func TestNewValidation(t *testing.T) {
	dev, _ := pcm.NewDevice(pcm.Config{
		NumBlocks: 65, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: 100, LifetimeCoV: 0.2, Seed: 1,
	})
	e, _ := ecc.NewECP(6, 65)
	be := &mc.Backend{Dev: dev, ECC: e}
	osm, _ := osmodel.New(64, 16)
	sg, _ := wear.NewStartGap(wear.StartGapConfig{NumPAs: 64, GapWritePeriod: 10, Seed: 1})

	if _, err := New(Config{PointerBytes: 128}, sg, be, osm); err == nil {
		t.Error("pointer larger than block accepted")
	}
	osmBig, _ := osmodel.New(128, 16)
	if _, err := New(Config{}, sg, be, osmBig); err == nil {
		t.Error("mismatched OS space accepted")
	}
	sgBig, _ := wear.NewStartGap(wear.StartGapConfig{NumPAs: 128, GapWritePeriod: 10, Seed: 1})
	osm128, _ := osmodel.New(128, 16)
	if _, err := New(Config{}, sgBig, be, osm128); err == nil {
		t.Error("leveler DA space larger than device accepted")
	}
	rv, err := New(Config{}, sg, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Name() != "WL-Reviver" {
		t.Errorf("name = %q", rv.Name())
	}
}

func TestHealthyPathSingleAccess(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 64, endurance: 1e9, seed: 1})
	g, _ := trace.NewUniform(64, 1)
	h.run(g, 500, 100)
	st := h.rv.Stats()
	if st.SoftwareWrites == 0 {
		t.Fatal("no writes recorded")
	}
	if st.RequestAccesses != st.SoftwareWrites+st.SoftwareReads {
		t.Errorf("healthy chip should use exactly one access per request: %d accesses for %d requests",
			st.RequestAccesses, st.SoftwareWrites+st.SoftwareReads)
	}
	if st.PagesAcquired != 0 || st.LinksCreated != 0 {
		t.Error("no failures expected at 1e9 endurance")
	}
}

func TestFirstFailureAcquiresOnePage(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 400, seed: 2})
	g, _ := trace.NewUniform(256, 2)
	for i := 0; i < 2_000_000 && h.rv.Stats().PagesAcquired == 0; i++ {
		if !h.write(g.Next()) {
			t.Fatal("memory died before first acquisition")
		}
	}
	st := h.rv.Stats()
	if st.PagesAcquired == 0 {
		t.Fatal("no page ever acquired")
	}
	if h.os.RetiredPages() != st.PagesAcquired {
		t.Errorf("OS retired %d pages but reviver acquired %d", h.os.RetiredPages(), st.PagesAcquired)
	}
	// A 16-block page with 4-byte pointers: 16*16/17 = 15 shadows.
	if got := h.rv.AvailableSpares() + h.rv.LinkedFailures(); got > 15 {
		t.Errorf("spares+links = %d exceeds a page's shadow section", got)
	}
	h.verifyTheorems()
	h.verifyContent()
}

// The centrepiece: a long wear-out run under a skewed workload with
// failures accumulating, verifying the theorems and data integrity
// throughout.
func TestLongRunInvariantsStartGap(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 300, seed: 3})
	g, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: 256, PageBlocks: 16, TargetCoV: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	performed := h.run(g, 600_000, 2_000)
	st := h.rv.Stats()
	if st.LinksCreated == 0 {
		t.Error("expected failures to be linked during wear-out")
	}
	if st.PagesAcquired < 2 {
		t.Errorf("expected multiple page acquisitions, got %d", st.PagesAcquired)
	}
	if performed < 10_000 {
		t.Errorf("memory died suspiciously early: %d writes", performed)
	}
	t.Logf("writes=%d pages=%d links=%d switches=%d sacrifices=%d suspensions=%d dead=%d",
		performed, st.PagesAcquired, st.LinksCreated, st.ChainSwitches,
		st.SacrificedWrites, st.Suspensions, h.dev.DeadBlocks())
}

func TestLongRunInvariantsRegionedStartGap(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 300, seed: 14, regioned: true})
	g, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: 256, PageBlocks: 16, TargetCoV: 4, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.run(g, 600_000, 2_000)
	st := h.rv.Stats()
	if st.LinksCreated == 0 {
		t.Error("expected failures to be linked during wear-out")
	}
	t.Logf("regioned: pages=%d links=%d switches=%d dead=%d",
		st.PagesAcquired, st.LinksCreated, st.ChainSwitches, h.dev.DeadBlocks())
}

func TestLongRunInvariantsSecurityRefresh(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 300, seed: 4, securityRef: true})
	g, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: 256, PageBlocks: 16, TargetCoV: 4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.run(g, 600_000, 2_000)
	st := h.rv.Stats()
	if st.LinksCreated == 0 {
		t.Error("expected failures to be linked during wear-out")
	}
	t.Logf("SR: pages=%d links=%d switches=%d suspensions=%d dead=%d",
		st.PagesAcquired, st.LinksCreated, st.ChainSwitches, st.Suspensions, h.dev.DeadBlocks())
}

// Migration-detected failures with an empty spare pool must suspend and
// then sacrifice the next software write (§III-A).
func TestSacrificeProtocol(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 200, seed: 5, gapPeriod: 4})
	g, _ := trace.NewUniform(256, 5)
	h.run(g, 600_000, 5_000)
	st := h.rv.Stats()
	if st.Suspensions == 0 {
		t.Skip("workload never suspended a migration; adjust parameters")
	}
	if st.SacrificedWrites == 0 {
		t.Error("suspensions occurred but no write was ever sacrificed")
	}
	t.Logf("suspensions=%d sacrifices=%d", st.Suspensions, st.SacrificedWrites)
}

func TestHammerAttackSurvives(t *testing.T) {
	// Hammering a handful of addresses should be absorbed by leveling +
	// revival: data must stay correct as blocks die under the hot spots.
	h := newHarness(t, harnessOpts{blocks: 128, blocksPerPage: 16, endurance: 500, seed: 6, gapPeriod: 4})
	g, err := trace.NewHammer(128, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	h.run(g, 400_000, 2_000)
	if h.dev.DeadBlocks() == 0 {
		t.Error("hammer should have killed blocks")
	}
}

func TestChainReductionKeepsOneStep(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 250, seed: 7})
	g, _ := trace.NewUniform(256, 7)
	h.run(g, 500_000, 1_000) // verifyTheorems asserts 1-step chains
	if h.rv.Stats().ChainSwitches == 0 {
		t.Log("note: no chain switch was ever needed in this run")
	}
}

func TestDisableChainReductionAblation(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 250, seed: 8, noReduce: true})
	g, _ := trace.NewUniform(256, 8)
	maxSteps := 0
	for i := 0; i < 500_000; i++ {
		if !h.write(g.Next()) {
			break
		}
		if i%5_000 == 0 && !h.rv.HasPending() {
			for da := range h.rv.byDA {
				if s, healthy := h.rv.ChainSteps(da); healthy && s > maxSteps {
					maxSteps = s
				}
			}
			h.verifyContent() // data must stay correct even with long chains
		}
	}
	t.Logf("longest observed chain without reduction: %d steps", maxSteps)
}

func TestRemapCacheReducesAccesses(t *testing.T) {
	run := func(cacheKB int) (uint64, uint64) {
		h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 250, seed: 9, cacheKB: cacheKB})
		g, _ := trace.NewUniform(256, 9)
		h.run(g, 400_000, 10_000)
		st := h.rv.Stats()
		return st.RequestAccesses, st.SoftwareWrites + st.SoftwareReads
	}
	accNone, reqNone := run(0)
	accCache, reqCache := run(32)
	ratioNone := float64(accNone) / float64(reqNone)
	ratioCache := float64(accCache) / float64(reqCache)
	if ratioCache > ratioNone {
		t.Errorf("cache increased access ratio: %.4f with vs %.4f without", ratioCache, ratioNone)
	}
	if ratioCache > 1.05 {
		t.Errorf("cached access ratio %.4f implausibly high", ratioCache)
	}
	t.Logf("access ratio: %.4f uncached, %.4f cached", ratioNone, ratioCache)
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		h := newHarness(t, harnessOpts{blocks: 128, blocksPerPage: 16, endurance: 300, seed: 10})
		g, _ := trace.NewUniform(128, 10)
		h.run(g, 200_000, 0)
		return h.rv.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
}

func TestIntrospectionHelpers(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 128, blocksPerPage: 16, endurance: 250, seed: 11})
	g, _ := trace.NewUniform(128, 11)
	for i := 0; i < 600_000 && h.rv.LinkedFailures() == 0; i++ {
		if !h.write(g.Next()) {
			break
		}
	}
	if h.rv.LinkedFailures() == 0 {
		t.Skip("no failure occurred")
	}
	found := false
	for da := range h.rv.byDA {
		p, ok := h.rv.ShadowPA(da)
		if !ok {
			t.Fatalf("linked block %d has no ShadowPA", da)
		}
		d, ok := h.rv.InversePointer(p)
		if !ok || d != da {
			t.Fatalf("inverse pointer of PA %d is (%d,%v), want (%d,true)", p, d, ok, da)
		}
		found = true
	}
	if !found {
		t.Fatal("no linked failures to inspect")
	}
	if _, ok := h.rv.ShadowPA(99999); ok {
		t.Error("unknown DA should have no shadow")
	}
}

// Run the stack to complete exhaustion: every page retired. The harness
// must terminate cleanly rather than loop or panic.
func TestRunToExhaustion(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 64, blocksPerPage: 16, endurance: 80, seed: 12, gapPeriod: 4})
	g, _ := trace.NewUniform(64, 12)
	for i := 0; i < 3_000_000; i++ {
		if !h.write(g.Next()) {
			break
		}
	}
	if h.os.UsablePages() > 0 {
		t.Logf("run ended with %d usable pages (did not fully exhaust)", h.os.UsablePages())
	}
}
