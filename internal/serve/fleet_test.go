package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
)

// testSpec is the shared small-device spec: large enough to exercise
// failures and revival, small enough that a test hosts hundreds.
func testSpec(seed uint64) DeviceSpec {
	return DeviceSpec{
		Blocks:         1 << 9,
		BlocksPerPage:  8,
		MeanEndurance:  500,
		Seed:           seed,
		GapWritePeriod: 10,
		Workload:       trace.Spec{Kind: "mg"},
	}
}

// testConfig is a fleet config over a fresh temp dir, with fsync off
// (the process outlives every simulated crash here; the smoke script
// covers real kill -9 durability).
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{Dir: t.TempDir(), DisableSync: true}
}

// referenceRun plays n workload writes on a standalone engine built
// from the same spec and returns its metrics JSON and checkpoint image
// — the byte-exact target every fleet path must hit.
func referenceRun(t *testing.T, spec DeviceSpec, n uint64) (metrics, img []byte) {
	t.Helper()
	eng, err := buildEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.RunN(n); got != n {
		t.Fatalf("reference run serviced %d of %d writes", got, n)
	}
	raw, err := metricsOf(eng)
	if err != nil {
		t.Fatal(err)
	}
	img, err = eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return raw, img
}

// fleetState fetches a device's metrics JSON and checkpoint image.
func fleetState(t *testing.T, f *Fleet, id string) (metrics, img []byte) {
	t.Helper()
	ctx := context.Background()
	raw, err := f.Metrics(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	img, err = f.Checkpoint(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return raw, img
}

// TestFleetMatchesStandaloneBatched pins the core server-side
// scheduling contract: a device driven through the fleet in ragged
// request batches (forcing internal BatchWrites rounds) ends
// byte-identical — metrics JSON and checkpoint image — to a standalone
// engine run of the same spec and total.
func TestFleetMatchesStandaloneBatched(t *testing.T) {
	spec := testSpec(7)
	const total = 60_000
	wantMetrics, wantImg := referenceRun(t, spec, total)

	cfg := testConfig(t)
	cfg.BatchWrites = 1 << 10 // force many internal rounds per request
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Create("dev", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var sent uint64
	for _, chunk := range []uint64{1, 999, 12_345, 7, 30_000, 16_648} {
		wr, err := f.Write(ctx, "dev", chunk)
		if err != nil {
			t.Fatal(err)
		}
		if wr.Done != chunk {
			t.Fatalf("chunk %d: serviced %d", chunk, wr.Done)
		}
		sent += chunk
	}
	if sent != total {
		t.Fatalf("test bug: chunks sum to %d, want %d", sent, total)
	}
	gotMetrics, gotImg := fleetState(t, f, "dev")
	if !bytes.Equal(gotMetrics, wantMetrics) {
		t.Errorf("metrics diverge from standalone run:\nfleet: %s\nsolo:  %s", gotMetrics, wantMetrics)
	}
	if !bytes.Equal(gotImg, wantImg) {
		t.Errorf("checkpoint image diverges from standalone run (%d vs %d bytes)", len(gotImg), len(wantImg))
	}
}

// TestFleetMatchesStandaloneEvicted drives two devices through a
// one-slot residency budget so every request evicts the other device
// (checkpoint to spill, rebuild on next touch) — and both must still
// match their standalone runs exactly.
func TestFleetMatchesStandaloneEvicted(t *testing.T) {
	specA, specB := testSpec(7), testSpec(11)
	const total = 24_000
	wantMetricsA, wantImgA := referenceRun(t, specA, total)
	wantMetricsB, wantImgB := referenceRun(t, specB, total)

	cfg := testConfig(t)
	cfg.MaxResident = 1
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Create("a", specA); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("b", specB); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ { // alternate: every touch reloads from spill
		for _, id := range []string{"a", "b"} {
			if _, err := f.Write(ctx, id, total/8); err != nil {
				t.Fatalf("%s round %d: %v", id, i, err)
			}
		}
	}
	if h := f.Health(); h.Resident > 1 {
		t.Errorf("resident count %d exceeds budget 1", h.Resident)
	}
	gotMetricsA, gotImgA := fleetState(t, f, "a")
	gotMetricsB, gotImgB := fleetState(t, f, "b")
	if !bytes.Equal(gotMetricsA, wantMetricsA) || !bytes.Equal(gotImgA, wantImgA) {
		t.Errorf("device a diverges from standalone run after evictions")
	}
	if !bytes.Equal(gotMetricsB, wantMetricsB) || !bytes.Equal(gotImgB, wantImgB) {
		t.Errorf("device b diverges from standalone run after evictions")
	}
}

// TestFleetMatchesStandaloneAfterKill abandons a fleet without any
// shutdown (the in-process analogue of kill -9: no Close, no final
// checkpoint) and reopens the spill directory. The journal must replay
// every acknowledged write, converging to the uninterrupted run byte
// for byte.
func TestFleetMatchesStandaloneAfterKill(t *testing.T) {
	spec := testSpec(7)
	const total = 40_000
	wantMetrics, wantImg := referenceRun(t, spec, total)

	cfg := testConfig(t)
	cfg.CheckpointEvery = 9_000 // several durability checkpoints, then a journal tail
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("dev", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f1.Write(ctx, "dev", 25_000); err != nil {
		t.Fatal(err)
	}
	// Abandon f1: no Close, so nothing beyond the journal survives on
	// purpose. Its actors idle until the process exits.

	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st, err := f2.Status(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 25_000 {
		t.Fatalf("recovered %d writes, want 25000", st.Writes)
	}
	if _, err := f2.Write(ctx, "dev", total-25_000); err != nil {
		t.Fatal(err)
	}
	gotMetrics, gotImg := fleetState(t, f2, "dev")
	if !bytes.Equal(gotMetrics, wantMetrics) {
		t.Errorf("metrics diverge after kill+restart:\nfleet: %s\nsolo:  %s", gotMetrics, wantMetrics)
	}
	if !bytes.Equal(gotImg, wantImg) {
		t.Errorf("checkpoint image diverges after kill+restart")
	}
}

// TestFleetNewLevelerStacks hosts devices on the WoLFRaM and SoftWear
// registry stacks and drives them through the fleet's full durability
// gauntlet — a one-slot residency budget (every touch spills and
// reloads the other device) and then an abandoned fleet reopened from
// its spill directory — requiring byte-identity with standalone engine
// runs of the same specs throughout.
func TestFleetNewLevelerStacks(t *testing.T) {
	specFor := func(stack string, seed uint64) DeviceSpec {
		s := testSpec(seed)
		s.Stack = stack
		return s
	}
	specA := specFor("wolfram/WFR-WLR", 7)
	specB := specFor("softwear/SW-WLR", 11)
	const total = 24_000
	wantMetricsA, wantImgA := referenceRun(t, specA, total)
	wantMetricsB, wantImgB := referenceRun(t, specB, total)

	cfg := testConfig(t)
	cfg.MaxResident = 1 // every alternation evicts the other device
	cfg.CheckpointEvery = 9_000
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("wfr", specA); err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("sw", specB); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		for _, id := range []string{"wfr", "sw"} {
			if _, err := f1.Write(ctx, id, total/8); err != nil {
				t.Fatalf("%s round %d: %v", id, i, err)
			}
		}
	}
	// Abandon f1 mid-run (in-process kill -9) and recover from spill +
	// journal replay.
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for i := 4; i < 8; i++ {
		for _, id := range []string{"wfr", "sw"} {
			if _, err := f2.Write(ctx, id, total/8); err != nil {
				t.Fatalf("%s round %d after reopen: %v", id, i, err)
			}
		}
	}
	if h := f2.Health(); h.Resident > 1 {
		t.Errorf("resident count %d exceeds budget 1", h.Resident)
	}
	gotMetricsA, gotImgA := fleetState(t, f2, "wfr")
	gotMetricsB, gotImgB := fleetState(t, f2, "sw")
	if !bytes.Equal(gotMetricsA, wantMetricsA) || !bytes.Equal(gotImgA, wantImgA) {
		t.Errorf("WoLFRaM device diverges from standalone run across spill/evict/reload")
	}
	if !bytes.Equal(gotMetricsB, wantMetricsB) || !bytes.Equal(gotImgB, wantImgB) {
		t.Errorf("SoftWear device diverges from standalone run across spill/evict/reload")
	}
}

// TestFleetAddressWrites pins the explicit-address path: the fleet
// device matches a standalone engine fed the same WriteTagged sequence,
// including across a kill+restart that replays the address journal.
func TestFleetAddressWrites(t *testing.T) {
	spec := testSpec(7)
	addrs := make([]uint64, 3_000)
	for i := range addrs {
		addrs[i] = uint64(i*37) % (1 << 9)
	}

	eng, err := buildEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !eng.WriteTagged(a, eng.Writes()) {
			t.Fatal("reference engine stopped unexpectedly")
		}
	}
	wantImg, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("dev", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f1.WriteAddrs(ctx, "dev", addrs[:1_000]); err != nil {
		t.Fatal(err)
	}
	// kill: abandon without Close, forcing journal replay of the
	// address batch on reopen.
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.WriteAddrs(ctx, "dev", addrs[1_000:]); err != nil {
		t.Fatal(err)
	}
	_, gotImg := fleetState(t, f2, "dev")
	if !bytes.Equal(gotImg, wantImg) {
		t.Errorf("address-write checkpoint diverges from standalone run")
	}

	// Out-of-range addresses are rejected all-or-nothing.
	if _, err := f2.WriteAddrs(ctx, "dev", []uint64{1 << 9}); !errors.Is(err, sim.ErrBadConfig) {
		t.Errorf("out-of-range address: got %v, want ErrBadConfig", err)
	}
}

// TestStaleSpillDoesNotClobberReload pins the eviction/reload race: a
// victim is removed from the residency table before its spill runs, so
// the device's own actor can reload it (rebuilding from checkpoint +
// journal and acknowledging new writes) first. The late spill must
// then back off — writing its eviction-time image and truncating the
// shared journal would destroy records of the writes the new engine
// has since acknowledged.
func TestStaleSpillDoesNotClobberReload(t *testing.T) {
	spec := testSpec(7)
	cfg := testConfig(t)
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Create("dev", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f.Write(ctx, "dev", 5_000); err != nil {
		t.Fatal(err)
	}
	// Evict by hand exactly as victimsLocked would — remove from the
	// residency table — but hold the spill back, simulating the
	// evicting actor losing the scheduling race.
	f.mu.Lock()
	stale := f.resident["dev"]
	delete(f.resident, "dev")
	f.mu.Unlock()
	// The device's next request reloads it and acknowledges more
	// writes into the journal the stale resident still has open.
	if _, err := f.Write(ctx, "dev", 5_000); err != nil {
		t.Fatal(err)
	}
	// Now the delayed spill runs. It must detect the ownership
	// handover and leave the new owner's on-disk state alone.
	if err := f.spill(stale); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(cfg.Dir, "dev", journalFile)); err != nil || fi.Size() == 0 {
		t.Fatalf("stale spill truncated the live journal: %v, %d bytes", err, fi.Size())
	}
	// Kill + reopen: all 10k acknowledged writes must replay.
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st, err := f2.Status(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 10_000 {
		t.Errorf("recovered %d writes, want 10000 (stale spill rolled back acked state)", st.Writes)
	}
}

// TestJournalAddrBatchChunking pins the bounded-record invariant: an
// address batch larger than addrsPerRecord spans several records with
// correct intermediate absolute totals, every line stays far below the
// replay scanner's cap, and reading back reproduces the batch exactly.
func TestJournalAddrBatchChunking(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	n := 3*addrsPerRecord + 17
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i * 31)
	}
	const before = 100
	if err := jl.appendAddrs(before+uint64(n), addrs); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) > 1<<20 {
			t.Fatalf("journal line of %d bytes would outgrow the replay scanner", len(line))
		}
	}
	recs, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("batch of %d addrs produced %d records, want 4", n, len(recs))
	}
	total := uint64(before)
	var got []uint64
	for i, rec := range recs {
		if !rec.isAddrs {
			t.Fatalf("record %d is not an address record", i)
		}
		total += uint64(len(rec.addrs))
		if rec.after != total {
			t.Errorf("record %d: after=%d, want running total %d", i, rec.after, total)
		}
		got = append(got, rec.addrs...)
	}
	if len(got) != n {
		t.Fatalf("read back %d addrs, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d: read %d, want %d", i, got[i], addrs[i])
		}
	}
}

// TestFleetLargeAddressBatchRecovers drives an address batch spanning
// several journal records through the fleet, kills it, and reopens:
// chunked replay must land byte-identical to a standalone engine fed
// the same sequence.
func TestFleetLargeAddressBatchRecovers(t *testing.T) {
	spec := testSpec(7)
	n := 2*addrsPerRecord + 123
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i*37) % (1 << 9)
	}
	eng, err := buildEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !eng.WriteTagged(a, eng.Writes()) {
			t.Fatal("reference engine stopped unexpectedly")
		}
	}
	wantImg, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("dev", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f1.WriteAddrs(ctx, "dev", addrs); err != nil {
		t.Fatal(err)
	}
	// kill: abandon without Close, forcing replay of the chunked
	// address records on reopen.
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st, err := f2.Status(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != uint64(n) {
		t.Fatalf("recovered %d writes, want %d", st.Writes, n)
	}
	_, gotImg := fleetState(t, f2, "dev")
	if !bytes.Equal(gotImg, wantImg) {
		t.Errorf("chunked address replay diverges from standalone run")
	}
}

// TestJournalAppendFailurePoisonsResident pins the divergence guard:
// when a journal append fails after writes were applied, the resident
// is discarded without a checkpoint and the device transparently
// reloads the exact acknowledged state on its next touch.
func TestJournalAppendFailurePoisonsResident(t *testing.T) {
	cfg := testConfig(t)
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Create("dev", testSpec(7)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f.Write(ctx, "dev", 5_000); err != nil {
		t.Fatal(err)
	}
	// Force the next append to fail by closing the journal's file
	// handle underneath the resident.
	f.mu.Lock()
	res := f.resident["dev"]
	f.mu.Unlock()
	if err := res.jl.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, "dev", 1_000); err == nil {
		t.Fatal("write with a dead journal handle should fail")
	}
	// The diverged engine (5k acked + 1k unjournaled) must be gone.
	f.mu.Lock()
	_, stillResident := f.resident["dev"]
	f.mu.Unlock()
	if stillResident {
		t.Fatal("poisoned resident survived checkin")
	}
	// The device reloads from durable state and keeps serving.
	st, err := f.Status(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 5_000 {
		t.Errorf("reloaded with %d writes, want the 5000 acknowledged", st.Writes)
	}
	if _, err := f.Write(ctx, "dev", 1_000); err != nil {
		t.Fatal(err)
	}
	if st, err = f.Status(ctx, "dev"); err != nil || st.Writes != 6_000 {
		t.Errorf("after recovery: %d writes, %v; want 6000", st.Writes, err)
	}
}

// TestDeleteDurable exercises the delete path with syncing enabled: the
// fleet directory is fsynced after removal so the acknowledged deletion
// survives a crash, and a reopen must not resurrect the device.
func TestDeleteDurable(t *testing.T) {
	cfg := Config{Dir: t.TempDir()} // sync on
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Create("dev", testSpec(7)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f1.Write(ctx, "dev", 1_000); err != nil {
		t.Fatal(err)
	}
	if err := f1.Delete(ctx, "dev"); err != nil {
		t.Fatal(err)
	}
	// kill: abandon without Close.
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if ids := f2.List(); len(ids) != 0 {
		t.Errorf("deleted device resurrected after reopen: %v", ids)
	}
}

// TestEvictionBudgetAndSpillHygiene pins the LRU mechanics: the
// resident count respects the budget, spilled devices leave exactly
// the three expected files (no temp litter), journals are truncated by
// the spill checkpoint, and deletion removes the directory.
func TestEvictionBudgetAndSpillHygiene(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxResident = 2
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	ids := []string{"d0", "d1", "d2", "d3", "d4"}
	for i, id := range ids {
		if err := f.Create(id, testSpec(uint64(100+i))); err != nil {
			t.Fatal(err)
		}
		if h := f.Health(); h.Resident > 2 {
			t.Fatalf("after creating %s: %d resident, budget 2", id, h.Resident)
		}
	}
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			if _, err := f.Write(ctx, id, 500); err != nil {
				t.Fatal(err)
			}
			if h := f.Health(); h.Resident > 2 {
				t.Fatalf("after writing %s: %d resident, budget 2", id, h.Resident)
			}
		}
	}
	// d0 was evicted (budget 2, five devices touched round-robin):
	// its directory must hold exactly the spec, checkpoint and a
	// truncated journal.
	dir := filepath.Join(cfg.Dir, "d0")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("spill left temp file %s", e.Name())
		}
	}
	if len(names) != 3 {
		t.Errorf("spill dir holds %v, want spec.json, state.ckpt, journal.wal", names)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalFile)); err != nil || fi.Size() != 0 {
		t.Errorf("spilled journal not truncated: %v, %d bytes", err, fi.Size())
	}
	// A spilled device resumes transparently.
	st, err := f.Status(ctx, "d0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 1_500 {
		t.Errorf("d0 resumed with %d writes, want 1500", st.Writes)
	}
	// Deletion removes the device and its directory.
	if err := f.Delete(ctx, "d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("device dir survives deletion: %v", err)
	}
	if _, err := f.Status(ctx, "d0"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("deleted device status: got %v, want ErrUnknownDevice", err)
	}
}

// TestFleetErrors pins the taxonomy on the registry paths.
func TestFleetErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxDevices = 1
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	if err := f.Create("bad id!", testSpec(1)); !errors.Is(err, sim.ErrBadConfig) {
		t.Errorf("invalid id: got %v, want ErrBadConfig", err)
	}
	spec := testSpec(1)
	spec.Workload.Kind = "nosuch"
	if err := f.Create("dev", spec); !errors.Is(err, trace.ErrUnknownWorkload) {
		t.Errorf("unknown workload: got %v, want ErrUnknownWorkload", err)
	}
	spec = testSpec(1)
	spec.Stack = "fig9/nope"
	if err := f.Create("dev", spec); !errors.Is(err, sim.ErrUnknownExperiment) {
		t.Errorf("unknown stack: got %v, want ErrUnknownExperiment", err)
	}
	if err := f.Create("dev", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("dev", testSpec(1)); !errors.Is(err, ErrDeviceExists) {
		t.Errorf("duplicate create: got %v, want ErrDeviceExists", err)
	}
	if err := f.Create("dev2", testSpec(2)); !errors.Is(err, ErrFleetFull) {
		t.Errorf("over capacity: got %v, want ErrFleetFull", err)
	}
	if _, err := f.Write(ctx, "ghost", 1); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: got %v, want ErrUnknownDevice", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, "dev", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("closed fleet: got %v, want ErrClosed", err)
	}
}

// TestDeviceStackCreation creates one device per registered stack name
// — the "create from a registry experiment name" path.
func TestDeviceStackCreation(t *testing.T) {
	f, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	for i, name := range sim.DeviceStackNames() {
		id := deviceIDForStack(i)
		spec := testSpec(uint64(i + 1))
		spec.Stack = name
		if err := f.Create(id, spec); err != nil {
			t.Fatalf("stack %q: %v", name, err)
		}
		if _, err := f.Write(ctx, id, 2_000); err != nil {
			t.Fatalf("stack %q write: %v", name, err)
		}
	}
}

func deviceIDForStack(i int) string { return "stack-" + string(rune('a'+i)) }

// TestGracefulCloseParksEverything verifies Close checkpoints every
// resident device so a reopen needs no journal replay, and that the
// devices resume exactly.
func TestGracefulCloseParksEverything(t *testing.T) {
	cfg := testConfig(t)
	f1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f1.Create("dev", testSpec(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write(ctx, "dev", 10_000); err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(cfg.Dir, "dev", journalFile)); err != nil || fi.Size() != 0 {
		t.Errorf("journal not truncated by graceful close")
	}
	f2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st, err := f2.Status(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 10_000 {
		t.Errorf("resumed with %d writes, want 10000", st.Writes)
	}
}

// TestThousandDevices hosts 1000 tiny devices under a 32-engine budget
// — the fleet-scale smoke the acceptance criteria name. Skipped in
// -short runs.
func TestThousandDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale test")
	}
	cfg := testConfig(t)
	cfg.MaxResident = 32
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	const devices = 1000
	spec := DeviceSpec{
		Blocks:        256,
		BlocksPerPage: 8,
		MeanEndurance: 1e6,
	}
	for i := 0; i < devices; i++ {
		s := spec
		s.Seed = uint64(i + 1)
		id := deviceIDNum(i)
		if err := f.Create(id, s); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
	}
	for i := 0; i < devices; i++ {
		if _, err := f.Write(ctx, deviceIDNum(i), 1_000); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	h := f.Health()
	if h.Devices != devices {
		t.Errorf("hosting %d devices, want %d", h.Devices, devices)
	}
	if h.Resident > 32 {
		t.Errorf("%d resident engines, budget 32", h.Resident)
	}
	for _, i := range []int{0, 499, 999} {
		st, err := f.Status(ctx, deviceIDNum(i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Writes != 1_000 {
			t.Errorf("device %d: %d writes, want 1000", i, st.Writes)
		}
	}
}

func deviceIDNum(i int) string {
	return "dev-" + string([]byte{byte('0' + i/1000%10), byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)})
}
