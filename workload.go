package wlreviver

import (
	"wlreviver/internal/trace"
)

// Generic workload kinds for WorkloadSpec.Kind. Any Table I benchmark
// name (see BenchmarkNames) is also a valid kind.
const (
	// WorkloadUniform writes uniformly at random over Blocks.
	WorkloadUniform = trace.KindUniform
	// WorkloadSkewed is a stationary workload calibrated to CoV, with
	// page-correlated weights (PageBlocks blocks per page).
	WorkloadSkewed = trace.KindSkewed
	// WorkloadHammer repeatedly writes the Targets addresses round-robin
	// (malicious single-set hammering).
	WorkloadHammer = trace.KindHammer
	// WorkloadBirthday is Seznec's birthday-paradox attack: bursts of
	// Burst writes over random SetSize-address sets.
	WorkloadBirthday = trace.KindBirthday
)

// WorkloadSpec declares a workload for NewWorkload. Kind and Blocks are
// always required; the remaining fields apply to the kinds noted on
// each field. The type is JSON-taggable — it is the same wire form the
// fleet daemon (cmd/wlserved) accepts in device-creation requests.
type WorkloadSpec = trace.Spec

// NewWorkload builds a workload from its declarative spec — the single
// construction path for every generator family. Unknown or missing
// kinds report ErrUnknownWorkload.
func NewWorkload(spec WorkloadSpec) (Workload, error) {
	return trace.NewFromSpec(spec)
}
