package reviver

// Randomized failure-schedule property test: quick.Check drives the full
// harness with arbitrary workload seeds and randomly scripted block
// kills, then verifies the paper's theorems and data integrity. This is
// the broadest net for chain-maintenance corner cases (loops, heads,
// switch interactions) beyond the statistical wear-out runs.

import (
	"testing"
	"testing/quick"

	"wlreviver/internal/rng"
	"wlreviver/internal/trace"
)

func TestQuickRandomFailureSchedules(t *testing.T) {
	prop := func(seed uint64, killDensity uint8) bool {
		const blocks = 64
		h := newHarness(t, harnessOpts{
			blocks: blocks, blocksPerPage: 8, endurance: 1e12, seed: 3, gapPeriod: 3,
		})
		// Script: each block gets a kill threshold drawn from a small
		// wear range with probability (killDensity%64)/64.
		src := rng.New(seed)
		killAt := make(map[uint64]uint64)
		density := uint64(killDensity) % 48
		for da := uint64(0); da < blocks+1; da++ {
			if src.Uint64n(64) < density {
				killAt[da] = 1 + src.Uint64n(40)
			}
		}
		h.be.FailureHook = func(da, wear uint64) bool {
			at, ok := killAt[da]
			return ok && wear >= at
		}
		g, err := trace.NewWeighted(trace.WeightedConfig{
			NumBlocks: blocks, PageBlocks: 8, TargetCoV: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 3000; i++ {
			if !h.write(g.Next()) {
				break // memory exhausted: a legal outcome
			}
		}
		// Drain pending work, then check the theorems and content.
		for retries := 0; h.rv.HasPending() && retries < 50; retries++ {
			if !h.write(g.Next()) {
				break
			}
		}
		if h.rv.HasPending() {
			return true // permanently starved near death; nothing to verify
		}
		h.verifyTheorems() // t.Fatal on violation fails the whole test
		h.verifyContent()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The same property with Security Refresh as the revived scheme: swaps
// stress the dual-head delivery paths.
func TestQuickRandomFailureSchedulesSecurityRefresh(t *testing.T) {
	prop := func(seed uint64, killDensity uint8) bool {
		const blocks = 64
		h := newHarness(t, harnessOpts{
			blocks: blocks, blocksPerPage: 8, endurance: 1e12, seed: 5,
			gapPeriod: 3, securityRef: true,
		})
		src := rng.New(seed ^ 0x5F5F)
		killAt := make(map[uint64]uint64)
		density := uint64(killDensity) % 48
		for da := uint64(0); da < blocks; da++ {
			if src.Uint64n(64) < density {
				killAt[da] = 1 + src.Uint64n(40)
			}
		}
		h.be.FailureHook = func(da, wear uint64) bool {
			at, ok := killAt[da]
			return ok && wear >= at
		}
		g, err := trace.NewUniform(blocks, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 3000; i++ {
			if !h.write(g.Next()) {
				break
			}
		}
		for retries := 0; h.rv.HasPending() && retries < 50; retries++ {
			if !h.write(g.Next()) {
				break
			}
		}
		if h.rv.HasPending() {
			return true
		}
		h.verifyTheorems()
		h.verifyContent()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
