// Package mc holds the memory-controller plumbing shared by the failure-
// protection frameworks (WL-Reviver, FREE-p, LLS): the raw write path
// that combines device wear with error correction, and the Protector
// interface through which the simulation engine drives them.
package mc

import (
	"wlreviver/internal/ecc"
	"wlreviver/internal/obs"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

// Backend couples the PCM device with an error-correction scheme: every
// raw write wears the target block, feeds fresh cell failures to the ECC
// scheme, and declares the block dead when correction capacity is
// exceeded.
type Backend struct {
	Dev *pcm.Device
	ECC ecc.Scheme
	// FailureHook, when non-nil, is consulted on every raw write after
	// wear is applied; returning true forces the block to be declared
	// dead regardless of the ECC scheme. It exists so tests can script
	// exact failure times (see reviver's scenario tests); production
	// stacks leave it nil.
	FailureHook func(da, wear uint64) bool
	// Observer, when non-nil, receives a BlockFailed event each time a
	// block is declared dead on this write path. The backend is the sole
	// place blocks die outside tests, so this single probe is authoritative.
	Observer obs.Observer
}

// WriteRaw performs one raw block write at da. It returns false when the
// block is dead after the write — either it was already dead or this
// write pushed it beyond correction capacity (in the latter case the
// written data is considered lost, as in the paper's failure model).
func (b *Backend) WriteRaw(da uint64) bool {
	// Failure-horizon fast path: while the device guarantees no cell can
	// fail on this write and the block is alive, there is nothing for the
	// failure hook or the ECC layer to observe — the entire dead/ECC
	// bookkeeping collapses into one branch.
	if b.FailureHook == nil && b.Dev.WriteNoFail(pcm.BlockID(da)) {
		return true
	}
	if b.Dev.Dead(pcm.BlockID(da)) {
		b.Dev.Write(pcm.BlockID(da)) // the attempt still wears the cells
		return false
	}
	nf := b.Dev.Write(pcm.BlockID(da))
	if b.FailureHook != nil && b.FailureHook(da, b.Dev.Wear(pcm.BlockID(da))) {
		b.markDead(da)
		return false
	}
	if nf > 0 && !b.ECC.Absorb(pcm.BlockID(da), nf) {
		b.markDead(da)
		return false
	}
	return true
}

// markDead declares block da uncorrectable and emits the BlockFailed
// event with the block's wear at death.
func (b *Backend) markDead(da uint64) {
	b.Dev.MarkDead(pcm.BlockID(da))
	if b.Observer != nil {
		b.Observer.BlockFailed(da, b.Dev.Wear(pcm.BlockID(da)))
	}
}

// ReadRaw performs one raw block read at da.
func (b *Backend) ReadRaw(da uint64) {
	b.Dev.Read(pcm.BlockID(da))
}

// Dead reports whether block da has been declared uncorrectable.
func (b *Backend) Dead(da uint64) bool { return b.Dev.Dead(pcm.BlockID(da)) }

// WriteResult reports the outcome of a software-issued write through a
// Protector.
type WriteResult struct {
	// Accesses is the number of raw PCM accesses the request consumed
	// (Table II's metric numerator).
	Accesses uint64
	// Relocations reports OS recovery copies that a page retirement
	// during this write already performed (data moved OldPA -> NewPA).
	// They are informational for address bookkeeping; callers must not
	// replay them.
	Relocations []osmodel.Relocation
	// Retry is set when the write was reported to the OS as failed
	// (really or as a sacrifice) and must be re-issued by the caller at
	// the freshly translated address.
	Retry bool
}

// Protector mediates every access between the address-mapping layer and
// the raw device, hiding failed blocks. It also implements wear.Mover so
// wear-leveling migrations flow through the same redirection.
type Protector interface {
	wear.Mover
	// Name identifies the framework in reports.
	Name() string
	// Write services a software-issued write of tag to physical address
	// pa (tag is the logical content for data-integrity checking; zero
	// when content tracking is off).
	Write(pa, tag uint64) WriteResult
	// Read services a software-issued read of pa, returning the logical
	// content tag and the raw accesses used.
	Read(pa uint64) (tag uint64, accesses uint64)
	// ResumePending completes any wear-leveling operation that was
	// suspended awaiting spare-space acquisition, returning the raw
	// accesses used. Callers invoke it after every write.
	ResumePending() uint64
}

// SpaceReporter is implemented by protectors that can report how much of
// the chip remains usable by software — the y-axis of the paper's
// Figures 7 and 8 and Table II's space column.
type SpaceReporter interface {
	// SoftwareUsableFraction returns the fraction of the chip's capacity
	// software can still use (excluding failed, reserved and retired
	// space).
	SoftwareUsableFraction() float64
}

// Crippler is implemented by protectors that can lose their ability to
// support wear leveling (a failure reached the wear-leveling scheme and,
// per the paper's premise, the scheme ceased to function). The engine
// stops pacing the leveler once Crippled returns true.
type Crippler interface {
	Crippled() bool
}
