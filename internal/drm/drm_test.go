package drm

import (
	"testing"

	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

type stack struct {
	dev *pcm.Device
	be  *mc.Backend
	lv  *wear.StartGap
	os  *osmodel.Model
	d   *DRM
}

func newStack(t *testing.T, blocks uint64, endurance float64, fraction float64) *stack {
	t.Helper()
	lv, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: blocks, GapWritePeriod: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reserved := ReservedBlocks(blocks, fraction, 16)
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks + 1 + reserved + 16, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 4, TrackContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ecc.NewECP(6, dev.NumBlocks())
	osm, err := osmodel.New(blocks, 16)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	d, err := New(Config{ReserveFraction: fraction}, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{dev: dev, be: be, lv: lv, os: osm, d: d}
}

func (s *stack) drive(t *testing.T, g trace.Generator, n int) {
	t.Helper()
	for i := 0; i < n && !s.d.Crippled(); i++ {
		pa, ok := s.os.Translate(g.Next())
		if !ok {
			break
		}
		s.d.Write(pa, uint64(i))
		if !s.d.Crippled() {
			s.lv.NoteWrite(pa, s.d)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	s := newStack(t, 64, 1e9, 0.10)
	if _, err := New(Config{ReserveFraction: -0.1}, s.lv, s.be, s.os); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := New(Config{ReserveFraction: 0.99}, s.lv, s.be, s.os); err == nil {
		t.Error("oversized reserve accepted")
	}
}

func TestReservedBlocksPageAligned(t *testing.T) {
	if got := ReservedBlocks(1000, 0, 16); got != 0 {
		t.Errorf("zero fraction reserved %d", got)
	}
	got := ReservedBlocks(1000, 0.10, 16)
	if got%16 != 0 {
		t.Errorf("reserve %d not page aligned", got)
	}
	if got < 96 || got > 112 {
		t.Errorf("reserve %d implausible for 10%% of 1000", got)
	}
}

func TestHealthyPath(t *testing.T) {
	s := newStack(t, 64, 1e9, 0.10)
	res := s.d.Write(5, 55)
	if res.Accesses != 1 || res.Retry {
		t.Errorf("healthy write: %+v", res)
	}
	tag, acc := s.d.Read(5)
	if tag != 55 || acc != 1 {
		t.Errorf("read = (%d,%d)", tag, acc)
	}
	if s.d.Name() != "DRM(10%)" {
		t.Errorf("name = %q", s.d.Name())
	}
	if s.d.ResumePending() != 0 {
		t.Error("nothing pends")
	}
	want := 64.0 / float64(64+ReservedBlocks(64, 0.10, 16))
	if got := s.d.SoftwareUsableFraction(); got < want-0.001 || got > want+0.001 {
		t.Errorf("usable = %v, want %v", got, want)
	}
}

func TestFailurePairsPage(t *testing.T) {
	s := newStack(t, 128, 300, 0.25)
	g, _ := trace.NewUniform(128, 6)
	s.drive(t, g, 400_000)
	st := s.d.Stats()
	if st.PagesPaired == 0 {
		t.Fatal("wear-out never paired a page")
	}
	if s.dev.DeadBlocks() == 0 {
		t.Fatal("no failures at 300 endurance")
	}
}

func TestDataIntegrityAcrossMigrations(t *testing.T) {
	s := newStack(t, 128, 350, 0.25)
	g, _ := trace.NewUniform(128, 7)
	last := make(map[uint64]uint64)
	for i := 0; i < 400_000 && !s.d.Crippled(); i++ {
		pa, ok := s.os.Translate(g.Next())
		if !ok {
			break
		}
		s.d.Write(pa, uint64(i))
		last[pa] = uint64(i)
		if !s.d.Crippled() {
			s.lv.NoteWrite(pa, s.d)
		}
		if i%10_000 == 0 {
			for p, want := range last {
				if got, _ := s.d.Read(p); got != want {
					t.Fatalf("PA %d reads %d, want %d (iteration %d)", p, got, want, i)
				}
			}
		}
	}
	if s.d.Stats().PagesPaired == 0 {
		t.Skip("no pairing exercised")
	}
}

func TestExhaustionExposes(t *testing.T) {
	s := newStack(t, 64, 120, 0.10)
	g, _ := trace.NewUniform(64, 8)
	s.drive(t, g, 3_000_000)
	if !s.d.Crippled() {
		t.Fatal("DRM survived unbounded wear-out")
	}
	if s.d.Stats().LostWrites == 0 {
		t.Error("exposure should lose writes")
	}
}

// A partner frame whose block dies at a paired offset triggers repairing
// to a new compatible frame.
func TestRepairingOnPartnerFailure(t *testing.T) {
	s := newStack(t, 128, 200, 0.40)
	g, _ := trace.NewHammer(128, []uint64{1, 2, 3, 4})
	s.drive(t, g, 2_000_000)
	st := s.d.Stats()
	if st.PagesPaired == 0 {
		t.Skip("no pairing")
	}
	if st.Repairings == 0 {
		t.Log("note: no partner-side failure occurred in this run")
	}
}
