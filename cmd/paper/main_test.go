package main

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// paperBin is the CLI under test, built once by TestMain so the
// end-to-end tests exercise the real binary boundary (flags, exit
// codes, file I/O) rather than in-process calls.
var paperBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "paperbin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	paperBin = filepath.Join(dir, "paper")
	if out, err := exec.Command("go", "build", "-o", paperBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building paper: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// paper runs the built binary and returns its stdout and exit code.
func paper(t *testing.T, args ...string) (stdout string, exitCode int) {
	t.Helper()
	cmd := exec.Command(paperBin, args...)
	out, err := cmd.Output()
	if err != nil {
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("paper %v: %v", args, err)
		}
		t.Logf("paper %v stderr: %s", args, exitErr.Stderr)
		return string(out), exitErr.ExitCode()
	}
	return string(out), 0
}

// goldenTable1SHA pins the byte-exact stdout of the tiny Table I run.
// The simulator guarantees this output is a pure function of (scale,
// seed): any commit that shifts it must either fix a correctness bug or
// consciously re-pin the hash (and explain the result change in the
// commit). Regenerate with:
//
//	go run ./cmd/paper -scale tiny -exp table1 -workers 1 -timing=false | sha256sum
const goldenTable1SHA = "0ef1ea466b8933621b57ef1f20998593322c0106c8696587e602a06efa5131c1"

func TestGoldenTable1Stdout(t *testing.T) {
	out, code := paper(t, "-scale", "tiny", "-exp", "table1", "-workers", "1", "-timing=false")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	sum := sha256.Sum256([]byte(out))
	if got := hex.EncodeToString(sum[:]); got != goldenTable1SHA {
		t.Errorf("tiny table1 stdout hash changed:\n got %s\nwant %s\noutput:\n%s", got, goldenTable1SHA, out)
	}
}

// TestShardedCLIByteIdentity is the binary-level face of the sharding
// contract: with a fixed semantic grid (-shard-grid 4), the execution
// pool width (-shards) must leave stdout and the -metrics JSON byte for
// byte unchanged. The banner is included deliberately — it names the
// grid but never the pool width.
func TestShardedCLIByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess sharding differential is slow; run without -short")
	}
	dir := t.TempDir()
	var wantOut, wantJSON string
	for _, shards := range []string{"1", "7"} {
		metrics := filepath.Join(dir, "metrics-"+shards+".json")
		out, code := paper(t, "-scale", "tiny", "-exp", "fig8", "-workers", "1",
			"-shard-grid", "4", "-shards", shards, "-timing=false", "-metrics", metrics)
		if code != 0 {
			t.Fatalf("-shards %s exit code %d", shards, code)
		}
		data, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		if shards == "1" {
			wantOut, wantJSON = out, string(data)
			continue
		}
		if out != wantOut {
			t.Errorf("-shards %s stdout differs from -shards 1", shards)
		}
		if string(data) != wantJSON {
			t.Errorf("-shards %s -metrics JSON differs from -shards 1", shards)
		}
	}
}

// TestCrashResumeCLI is the binary-level differential: a run killed by
// -crash-after (exit code 3) and resumed with -resume must reproduce
// the uninterrupted run's stdout and -metrics JSON byte for byte.
func TestCrashResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash/resume differential is slow; run without -short")
	}
	dir := t.TempDir()
	baseMetrics := filepath.Join(dir, "base-metrics.json")
	base, code := paper(t, "-scale", "tiny", "-exp", "fig8", "-workers", "2",
		"-timing=false", "-metrics", baseMetrics)
	if code != 0 {
		t.Fatalf("baseline exit code %d", code)
	}

	// The crashed attempt must use the same flags as the resume —
	// -metrics attaches the observer whose counters the checkpoint
	// carries across the crash.
	ckDir := filepath.Join(dir, "ck")
	_, code = paper(t, "-scale", "tiny", "-exp", "fig8", "-workers", "2",
		"-timing=false", "-metrics", filepath.Join(dir, "crashed-metrics.json"),
		"-checkpoint-dir", ckDir, "-checkpoint-every", "100000",
		"-crash-after", "300000")
	if code != 3 {
		t.Fatalf("crashed run exited %d, want 3", code)
	}

	resumeMetrics := filepath.Join(dir, "resume-metrics.json")
	resumed, code := paper(t, "-scale", "tiny", "-exp", "fig8", "-workers", "2",
		"-timing=false", "-resume", ckDir, "-metrics", resumeMetrics)
	if code != 0 {
		t.Fatalf("resumed exit code %d", code)
	}
	if resumed != base {
		t.Error("resumed stdout differs from uninterrupted run")
	}
	baseJSON, err := os.ReadFile(baseMetrics)
	if err != nil {
		t.Fatal(err)
	}
	resumeJSON, err := os.ReadFile(resumeMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if string(baseJSON) != string(resumeJSON) {
		t.Error("resumed -metrics JSON differs from uninterrupted run")
	}
}
