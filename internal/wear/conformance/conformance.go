// Package conformance is a reusable test suite for wear.Leveler
// implementations. A scheme that passes Run upholds every property the
// rest of the framework relies on:
//
//   - the PA→DA mapping stays a data-preserving bijection under
//     arbitrary NoteWrite schedules (paper §I-B: "the same valid PA
//     consistently refers to the same data no matter where it is
//     physically migrated"),
//   - Map and Inverse agree over the whole dense address space,
//   - checkpoint state round-trips to an identical scheme that then
//     evolves identically (crash-resume determinism),
//   - identical seeds and schedules replay the identical migration
//     stream (cross-instance determinism), and
//   - the scheme runs unmodified under WL-Reviver with injected block
//     failures — the paper's central "revive any scheme" claim.
//
// New levelers register a Factory and call Run from an external test
// package; the suite needs nothing scheme-specific beyond construction.
package conformance

import (
	"fmt"
	"testing"

	"wlreviver/internal/ckpt"
	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/reviver"
	"wlreviver/internal/rng"
	"wlreviver/internal/wear"
)

// ShadowMem mirrors the physical data movement a Mover performs, so a
// test can check that the mapping always points at the data the PA last
// wrote.
type ShadowMem struct {
	Data []uint64
}

// NewShadowMem builds a shadow of numDAs device blocks, poisoned with a
// value no Tag ever produces.
func NewShadowMem(numDAs uint64) *ShadowMem {
	m := &ShadowMem{Data: make([]uint64, numDAs)}
	for i := range m.Data {
		m.Data[i] = ^uint64(0)
	}
	return m
}

// Mover returns a wear.Mover that applies the scheme's migrations to the
// shadow.
func (m *ShadowMem) Mover() wear.Mover {
	return wear.FuncMover{
		MigrateFn: func(src, dst uint64) { m.Data[dst] = m.Data[src] },
		SwapFn:    func(a, b uint64) { m.Data[a], m.Data[b] = m.Data[b], m.Data[a] },
	}
}

// Tag is the logical content written at pa.
func Tag(pa uint64) uint64 { return pa*2654435761 + 12345 }

// FillThrough writes every PA's tag through the current mapping.
func FillThrough(l wear.Leveler, m *ShadowMem) {
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		m.Data[l.Map(pa)] = Tag(pa)
	}
}

// VerifyThrough checks every PA reads its tag through the current
// mapping.
func VerifyThrough(t testing.TB, l wear.Leveler, m *ShadowMem, context string) {
	t.Helper()
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		if got := m.Data[l.Map(pa)]; got != Tag(pa) {
			t.Fatalf("%s: PA %d reads %d, want %d (mapped to DA %d)",
				context, pa, got, Tag(pa), l.Map(pa))
		}
	}
}

// VerifyBijection checks Map is injective into [0, NumDAs), that Inverse
// agrees with Map on every mapped DA, and that unmapped DAs report
// ok=false.
func VerifyBijection(t testing.TB, l wear.Leveler, context string) {
	t.Helper()
	seen := make(map[uint64]uint64, l.NumPAs())
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		da := l.Map(pa)
		if da >= l.NumDAs() {
			t.Fatalf("%s: Map(%d) = %d outside DA space [0,%d)", context, pa, da, l.NumDAs())
		}
		if prev, dup := seen[da]; dup {
			t.Fatalf("%s: PAs %d and %d both map to DA %d", context, prev, pa, da)
		}
		seen[da] = pa
		back, ok := l.Inverse(da)
		if !ok || back != pa {
			t.Fatalf("%s: Inverse(%d) = (%d,%v), want (%d,true)", context, da, back, ok, pa)
		}
	}
	for da := uint64(0); da < l.NumDAs(); da++ {
		if _, mapped := seen[da]; !mapped {
			if _, ok := l.Inverse(da); ok {
				t.Fatalf("%s: unmapped DA %d has an inverse", context, da)
			}
		}
	}
}

// Factory builds fresh, identically-configured instances of one leveler
// for the suite. New must return an independent scheme every call; two
// calls with the same seed must configure identical schemes (schemes
// without an RNG simply ignore the seed).
type Factory struct {
	// Name labels the subtest tree.
	Name string
	// New constructs the scheme.
	New func(seed uint64) (wear.Leveler, error)
	// PageBlocks is the OS page size the revive subtest runs the scheme
	// under; it must divide the scheme's NumPAs. Zero selects 16.
	PageBlocks uint64
}

// stateful is the checkpoint surface every shipped leveler implements
// (mirrors the sim engine's ckptSaver/ckptLoader pair).
type stateful interface {
	SaveState(*ckpt.Encoder)
	LoadState(*ckpt.Decoder) error
}

// schedule derives a deterministic, adversarially mixed PA stream:
// mostly uniform with a hammered hot set, the two access patterns that
// drive every scheme's leveling triggers at different rates.
func schedule(src *rng.Source, numPAs uint64) uint64 {
	if src.Uint64n(4) == 0 {
		return src.Uint64n(4) % numPAs // hammer a small hot set
	}
	return src.Uint64n(numPAs)
}

// Run exercises the full conformance suite against the factory's scheme.
func Run(t *testing.T, f Factory) {
	t.Run("bijection", func(t *testing.T) { runBijection(t, f) })
	t.Run("checkpoint", func(t *testing.T) { runCheckpoint(t, f) })
	t.Run("determinism", func(t *testing.T) { runDeterminism(t, f) })
	t.Run("revive", func(t *testing.T) { runRevive(t, f) })
}

// runBijection drives an arbitrary write schedule and re-verifies the
// dense bijection and data consistency throughout.
func runBijection(t *testing.T, f Factory) {
	lv, err := f.New(17)
	if err != nil {
		t.Fatal(err)
	}
	VerifyBijection(t, lv, "fresh")
	mem := NewShadowMem(lv.NumDAs())
	FillThrough(lv, mem)
	src := rng.New(91)
	for step := 0; step < 4000; step++ {
		lv.NoteWrite(schedule(src, lv.NumPAs()), mem.Mover())
		if step%97 == 0 {
			VerifyBijection(t, lv, fmt.Sprintf("step %d", step))
			VerifyThrough(t, lv, mem, fmt.Sprintf("step %d", step))
		}
	}
	VerifyBijection(t, lv, "final")
	VerifyThrough(t, lv, mem, "final")
}

// runCheckpoint saves mid-evolution state, restores it into a fresh
// identically-configured scheme, and requires the pair to be
// indistinguishable: identical dense mappings, identical re-encoded
// state bytes, and identical evolution under a continued shared
// schedule.
func runCheckpoint(t *testing.T, f Factory) {
	const seed = 23
	lv, err := f.New(seed)
	if err != nil {
		t.Fatal(err)
	}
	saver, ok := lv.(stateful)
	if !ok {
		t.Fatalf("%s does not implement SaveState/LoadState; every shipped leveler must checkpoint", lv.Name())
	}
	mem := NewShadowMem(lv.NumDAs())
	FillThrough(lv, mem)
	src := rng.New(41)
	for step := 0; step < 1500; step++ {
		lv.NoteWrite(schedule(src, lv.NumPAs()), mem.Mover())
	}

	blob := encodeState(t, saver)
	fresh, err := f.New(seed)
	if err != nil {
		t.Fatal(err)
	}
	loader := fresh.(stateful)
	dec, err := ckpt.NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Section("leveler"); err != nil {
		t.Fatal(err)
	}
	if err := loader.LoadState(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := dec.Close(); err != nil {
		t.Fatal(err)
	}

	compareMappings(t, lv, fresh, "after restore")
	if again := encodeState(t, loader); string(again) != string(blob) {
		t.Fatal("re-encoded state differs from the checkpoint it was restored from")
	}

	// Continued evolution must not diverge: the restored scheme is the
	// original, not merely a scheme with the same mapping.
	memB := NewShadowMem(fresh.NumDAs())
	copy(memB.Data, mem.Data)
	cont := rng.New(43)
	for step := 0; step < 1500; step++ {
		pa := schedule(cont, lv.NumPAs())
		lv.NoteWrite(pa, mem.Mover())
		fresh.NoteWrite(pa, memB.Mover())
		if step%211 == 0 {
			compareMappings(t, lv, fresh, fmt.Sprintf("continued step %d", step))
		}
	}
	compareMappings(t, lv, fresh, "continued final")
	VerifyThrough(t, fresh, memB, "restored final")
}

// encodeState serializes one leveler section the way the engine does.
func encodeState(t *testing.T, s stateful) []byte {
	t.Helper()
	enc := ckpt.NewEncoder()
	enc.Begin("leveler")
	s.SaveState(enc)
	enc.End()
	return enc.Finish()
}

// compareMappings requires two schemes to agree on the dense forward
// mapping (the bijection check makes Inverse agreement follow).
func compareMappings(t *testing.T, a, b wear.Leveler, context string) {
	t.Helper()
	if a.NumPAs() != b.NumPAs() || a.NumDAs() != b.NumDAs() {
		t.Fatalf("%s: geometry differs: %d/%d PAs, %d/%d DAs",
			context, a.NumPAs(), b.NumPAs(), a.NumDAs(), b.NumDAs())
	}
	for pa := uint64(0); pa < a.NumPAs(); pa++ {
		if da, db := a.Map(pa), b.Map(pa); da != db {
			t.Fatalf("%s: Map(%d) = %d vs %d", context, pa, da, db)
		}
	}
}

// runDeterminism replays one schedule into two same-seed instances and
// requires identical migration streams and final mappings — the property
// RunN batching, sharding and crash-resume all build on.
func runDeterminism(t *testing.T, f Factory) {
	record := func() ([]string, wear.Leveler) {
		lv, err := f.New(71)
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		mover := wear.FuncMover{
			MigrateFn: func(src, dst uint64) { events = append(events, fmt.Sprintf("M %d %d", src, dst)) },
			SwapFn:    func(a, b uint64) { events = append(events, fmt.Sprintf("S %d %d", a, b)) },
		}
		src := rng.New(29)
		for step := 0; step < 3000; step++ {
			lv.NoteWrite(schedule(src, lv.NumPAs()), mover)
		}
		return events, lv
	}
	evA, lvA := record()
	evB, lvB := record()
	if len(evA) == 0 {
		t.Fatal("schedule triggered no migrations; the suite exercised nothing")
	}
	if len(evA) != len(evB) {
		t.Fatalf("migration streams diverge: %d vs %d events", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("migration %d diverges: %q vs %q", i, evA[i], evB[i])
		}
	}
	compareMappings(t, lvA, lvB, "deterministic replay")
}

// runRevive runs the scheme unmodified under WL-Reviver on a PCM device
// with low endurance, so block failures pile up mid-schedule, and
// requires data consistency plus the paper's chain invariants — the
// framework's "revive any wear-leveling technique" claim, per scheme.
func runRevive(t *testing.T, f Factory) {
	lv, err := f.New(31)
	if err != nil {
		t.Fatal(err)
	}
	pageBlocks := f.PageBlocks
	if pageBlocks == 0 {
		pageBlocks = 16
	}
	if lv.NumPAs()%pageBlocks != 0 {
		t.Fatalf("factory page size %d does not divide NumPAs %d", pageBlocks, lv.NumPAs())
	}
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks:     lv.NumDAs(),
		BlockBytes:    64,
		CellsPerBlock: 512,
		MeanEndurance: 220,
		LifetimeCoV:   0.25,
		Seed:          31,
		TrackContent:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ecc.NewECP(6, lv.NumDAs())
	if err != nil {
		t.Fatal(err)
	}
	osm, err := osmodel.New(lv.NumPAs(), pageBlocks)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	rv, err := reviver.New(reviver.Config{}, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}

	expected := make(map[uint64]uint64)
	src := rng.New(37)
	var nextTag, performed uint64
	for i := 0; i < 60000; i++ {
		vblock := schedule(src, lv.NumPAs())
		nextTag++
		wrote := false
		for attempt := uint64(0); !wrote; attempt++ {
			if attempt > osm.NumPages()+2 {
				t.Fatalf("write to vblock %d did not settle", vblock)
			}
			pa, ok := osm.Translate(vblock)
			if !ok {
				i = 1 << 30 // memory exhausted: stop the outer loop too
				break
			}
			res := rv.Write(pa, nextTag)
			noteRelocations(t, osm, expected, pa, res.Relocations, res.Retry)
			if !res.Retry {
				expected[pa] = nextTag
				rv.ResumePending()
				lv.NoteWrite(pa, rv)
				wrote = true
				performed++
			}
		}
		if wrote && performed%512 == 0 {
			verifyRevived(t, lv, be, osm, rv, expected)
		}
	}
	if dev.DeadBlocks() == 0 {
		t.Fatal("no block ever failed; the revive path was not exercised")
	}
	verifyRevived(t, lv, be, osm, rv, expected)
}

// noteRelocations mirrors a page retirement into the PA-level
// expectations: the reviver already performed the OS's recovery copies,
// so the test only moves its bookkeeping (and drops blocks that were not
// copied).
func noteRelocations(t *testing.T, osm *osmodel.Model, expected map[uint64]uint64,
	reportPA uint64, relocs []osmodel.Relocation, retired bool) {
	t.Helper()
	if !retired {
		if len(relocs) != 0 {
			t.Fatalf("relocations returned without a retirement")
		}
		return
	}
	moved := make(map[uint64]uint64, len(relocs))
	for _, rc := range relocs {
		moved[rc.OldPA] = rc.NewPA
	}
	page := osm.PageOf(reportPA)
	bpp := osm.BlocksPerPage()
	for off := uint64(0); off < bpp; off++ {
		old := page*bpp + off
		tag, had := expected[old]
		delete(expected, old)
		if newPA, copied := moved[old]; copied {
			if had {
				expected[newPA] = tag
			} else {
				delete(expected, newPA)
			}
		}
	}
}

// verifyRevived checks content consistency and the paper's chain-length
// theorems at a rest point (a pending suspended migration parks data in
// the migration buffer, so those instants are skipped).
func verifyRevived(t *testing.T, lv wear.Leveler, be *mc.Backend, osm *osmodel.Model,
	rv *reviver.Reviver, expected map[uint64]uint64) {
	t.Helper()
	if rv.HasPending() {
		return
	}
	for pa, want := range expected {
		if osm.Retired(pa) {
			continue
		}
		if got, _ := rv.Read(pa); got != want {
			t.Fatalf("PA %d reads tag %d, want %d", pa, got, want)
		}
	}
	// Theorem 1: every software-accessible failed block has a one-step
	// chain to a healthy block.
	for pa := uint64(0); pa < lv.NumPAs(); pa++ {
		if osm.Retired(pa) {
			continue
		}
		da := lv.Map(pa)
		if !be.Dead(da) {
			continue
		}
		steps, healthy := rv.ChainSteps(da)
		if !healthy || steps != 1 {
			t.Fatalf("theorem 1 violated: live PA %d -> dead DA %d has chain (steps=%d healthy=%v)",
				pa, da, steps, healthy)
		}
	}
	// Theorem 2: every unlinked reserved PA reaches a healthy block in at
	// most one step.
	for _, p := range rv.SparePAs() {
		steps, healthy := rv.ChainSteps(lv.Map(p))
		if !healthy || steps > 1 {
			t.Fatalf("theorem 2 violated: spare PA %d (steps=%d healthy=%v)", p, steps, healthy)
		}
	}
}
