package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// The per-device spill layout. A device directory holds its immutable
// spec, its last durable checkpoint image, and the write-ahead journal
// of batches acknowledged since that checkpoint:
//
//	<fleet dir>/<device id>/spec.json
//	<fleet dir>/<device id>/state.ckpt
//	<fleet dir>/<device id>/journal.wal
//
// Durability contract: a write batch is acknowledged to the client only
// after its journal record is synced (unless Config.DisableSync).
// Recovery rebuilds the engine from spec.json, restores state.ckpt if
// present, and replays the journal — the simulation is deterministic,
// so replay reproduces the exact acknowledged state. Checkpointing
// makes state.ckpt durable first and truncates the journal second, so
// a crash between the two merely replays batches the checkpoint
// already covers (replay skips records at or below the restored write
// count).
const (
	specFile    = "spec.json"
	ckptFile    = "state.ckpt"
	journalFile = "journal.wal"
)

// journalRecord is one acknowledged batch (or one addrsPerRecord-sized
// slice of a large address batch). A count record ("c <after>")
// records that the workload-driven write total reached after; an
// address record ("a <after> <a1> <a2> ...") records explicit addresses
// serviced in order, with after again the resulting total. Records
// carry the absolute post-batch total rather than a delta so replay is
// idempotent under the checkpoint-then-truncate race.
type journalRecord struct {
	after   uint64
	addrs   []uint64 // nil for count records
	isAddrs bool
}

// journal is the append-only write-ahead log. The owning device actor
// is the only writer; sync-before-ack makes appended records survive a
// process kill.
type journal struct {
	f    *os.File
	sync bool
}

// openJournal opens (creating if absent) the device's journal for
// appending.
func openJournal(dir string, sync bool) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, sync: sync}, nil
}

// appendCount journals a count batch whose serviced writes brought the
// device total to after, syncing before return.
func (j *journal) appendCount(after uint64) error {
	var buf bytes.Buffer
	buf.WriteByte('c')
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatUint(after, 10))
	buf.WriteByte('\n')
	return j.append(buf.Bytes())
}

// addrsPerRecord bounds one address record so its journal line (~21
// bytes per decimal address) stays far below replay's scanner cap —
// WriteAddrs accepts arbitrarily large batches in-process, and a
// single unbounded line would make the device unloadable after the
// fact. Larger batches are split into several records carrying
// intermediate absolute totals, written and synced as one append.
const addrsPerRecord = 1 << 12

// appendAddrs journals an explicit-address batch (the serviced prefix
// only) whose writes brought the device total to after, syncing before
// return. Batches over addrsPerRecord span multiple records; a crash
// mid-append persists only a prefix of whole records, which is safe —
// nothing in this append was acknowledged yet, and what replays is a
// true prefix of the serviced writes.
func (j *journal) appendAddrs(after uint64, addrs []uint64) error {
	var buf bytes.Buffer
	first := after - uint64(len(addrs))
	for start := 0; start < len(addrs); start += addrsPerRecord {
		end := min(start+addrsPerRecord, len(addrs))
		buf.WriteByte('a')
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatUint(first+uint64(end), 10))
		for _, a := range addrs[start:end] {
			buf.WriteByte(' ')
			buf.WriteString(strconv.FormatUint(a, 10))
		}
		buf.WriteByte('\n')
	}
	return j.append(buf.Bytes())
}

func (j *journal) append(line []byte) error {
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// reset truncates the journal after a checkpoint became durable.
func (j *journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// close closes the journal handle.
func (j *journal) close() error { return j.f.Close() }

// readJournal parses the device's journal records in order. A torn
// final line — a crash mid-append before the sync completed — is
// dropped: its batch was never acknowledged.
func readJournal(dir string) ([]journalRecord, error) {
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if n := bytes.LastIndexByte(data, '\n'); n < 0 {
		return nil, nil // only a torn fragment (or empty)
	} else {
		data = data[:n+1]
	}
	var recs []journalRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// parseRecord decodes one journal line.
func parseRecord(line string) (journalRecord, error) {
	fields := splitFields(line)
	if len(fields) < 2 {
		return journalRecord{}, fmt.Errorf("serve: malformed journal record %q", line)
	}
	after, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return journalRecord{}, fmt.Errorf("serve: malformed journal record %q: %v", line, err)
	}
	switch fields[0] {
	case "c":
		if len(fields) != 2 {
			return journalRecord{}, fmt.Errorf("serve: malformed journal record %q", line)
		}
		return journalRecord{after: after}, nil
	case "a":
		addrs := make([]uint64, 0, len(fields)-2)
		for _, fld := range fields[2:] {
			a, err := strconv.ParseUint(fld, 10, 64)
			if err != nil {
				return journalRecord{}, fmt.Errorf("serve: malformed journal record %q: %v", line, err)
			}
			addrs = append(addrs, a)
		}
		return journalRecord{after: after, addrs: addrs, isAddrs: true}, nil
	}
	return journalRecord{}, fmt.Errorf("serve: unknown journal record type %q", fields[0])
}

// splitFields splits on single spaces (the journal's only separator).
func splitFields(line string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if i > start {
				out = append(out, line[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// writeFileDurable atomically replaces path with data: write to a
// temporary sibling, sync it, rename over the target, then sync the
// directory so the rename itself survives a crash.
func writeFileDurable(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory, making renames and creates inside it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
