package freep

import (
	"testing"

	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

type stack struct {
	dev *pcm.Device
	be  *mc.Backend
	lv  *wear.StartGap
	os  *osmodel.Model
	fp  *FREEp
}

func newStack(t *testing.T, blocks uint64, endurance float64, fraction float64) *stack {
	t.Helper()
	lv, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: blocks, GapWritePeriod: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reserved := ReservedSlots(blocks, fraction)
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks + 1 + reserved, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 2, TrackContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ecc.NewECP(6, dev.NumBlocks())
	osm, err := osmodel.New(blocks, 16)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	fp, err := New(Config{ReserveFraction: fraction}, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{dev: dev, be: be, lv: lv, os: osm, fp: fp}
}

func (s *stack) drive(t *testing.T, g trace.Generator, n int) int {
	t.Helper()
	performed := 0
	for i := 0; i < n; i++ {
		v := g.Next()
		pa, ok := s.os.Translate(v)
		if !ok {
			break
		}
		res := s.fp.Write(pa, uint64(i))
		if res.Retry {
			if pa2, ok2 := s.os.Translate(v); ok2 {
				s.fp.Write(pa2, uint64(i))
			}
		}
		performed++
		if !s.fp.Crippled() {
			s.lv.NoteWrite(pa, s.fp)
		}
	}
	return performed
}

func TestReservedSlots(t *testing.T) {
	if ReservedSlots(1000, 0) != 0 {
		t.Error("zero fraction should reserve nothing")
	}
	// 5% of combined capacity: r = 1000*0.05/0.95 ~ 52.
	if got := ReservedSlots(1000, 0.05); got < 50 || got > 55 {
		t.Errorf("ReservedSlots(1000, 0.05) = %d", got)
	}
	// Check the fraction holds: r/(1000+r) ~ 0.05.
	r := float64(ReservedSlots(100000, 0.15))
	if frac := r / (100000 + r); frac < 0.149 || frac > 0.151 {
		t.Errorf("reserve fraction realised %v, want 0.15", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	s := newStack(t, 64, 1e9, 0.05)
	if _, err := New(Config{ReserveFraction: -0.1}, s.lv, s.be, s.os); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := New(Config{ReserveFraction: 1.0}, s.lv, s.be, s.os); err == nil {
		t.Error("fraction 1.0 accepted")
	}
	// Device too small for the requested reserve.
	if _, err := New(Config{ReserveFraction: 0.5}, s.lv, s.be, s.os); err == nil {
		t.Error("oversized reserve accepted on a small device")
	}
}

func TestHealthyWritesPassThrough(t *testing.T) {
	s := newStack(t, 64, 1e9, 0.05)
	res := s.fp.Write(3, 99)
	if res.Retry || res.Accesses != 1 {
		t.Errorf("healthy write: %+v", res)
	}
	tag, acc := s.fp.Read(3)
	if tag != 99 || acc != 1 {
		t.Errorf("read = (%d, %d)", tag, acc)
	}
	if s.fp.Name() != "FREE-p(5%)" {
		t.Errorf("name = %q", s.fp.Name())
	}
}

func TestFailureUsesSlot(t *testing.T) {
	s := newStack(t, 64, 300, 0.10)
	g, _ := trace.NewUniform(64, 7)
	s.drive(t, g, 300_000)
	st := s.fp.Stats()
	if st.SlotsUsed == 0 {
		t.Fatal("no slot was ever used despite wear-out")
	}
	if s.fp.FreeSlots()+int(st.SlotsUsed) != int(ReservedSlots(64, 0.10)) {
		t.Errorf("slot accounting broken: free %d + used %d != %d",
			s.fp.FreeSlots(), st.SlotsUsed, ReservedSlots(64, 0.10))
	}
}

// A remapped block must read back its data, including across migrations
// (the adapted scheme's whole point).
func TestDataIntegrityAcrossMigrations(t *testing.T) {
	s := newStack(t, 64, 400, 0.15)
	g, _ := trace.NewUniform(64, 8)
	last := make(map[uint64]uint64) // pa -> tag
	for i := 0; i < 300_000; i++ {
		v := g.Next()
		pa, ok := s.os.Translate(v)
		if !ok || s.fp.Crippled() {
			break
		}
		res := s.fp.Write(pa, uint64(i))
		if res.Retry {
			break // slots exhausted; integrity only guaranteed before
		}
		last[pa] = uint64(i)
		s.lv.NoteWrite(pa, s.fp)
		if i%10_000 == 0 {
			for p, want := range last {
				if s.os.Retired(p) {
					delete(last, p)
					continue
				}
				if got, _ := s.fp.Read(p); got != want {
					t.Fatalf("PA %d reads %d, want %d (iteration %d)", p, got, want, i)
				}
			}
		}
	}
}

// Exhausting the pre-reserved slots must expose the failure and cripple
// wear leveling — the cliff in Figure 7.
func TestExhaustionCripples(t *testing.T) {
	s := newStack(t, 64, 150, 0.05)
	g, _ := trace.NewUniform(64, 9)
	s.drive(t, g, 2_000_000)
	if !s.fp.Crippled() {
		t.Fatal("FREE-p never exposed a failure at 150 endurance with 5% reserve")
	}
	if s.fp.FreeSlots() != 0 {
		t.Errorf("crippled with %d slots still free", s.fp.FreeSlots())
	}
	if s.fp.Stats().LostWrites == 0 {
		t.Error("exposure should lose writes")
	}
}

func TestZeroReserveCripplesOnFirstFailure(t *testing.T) {
	s := newStack(t, 64, 200, 0)
	g, _ := trace.NewUniform(64, 10)
	s.drive(t, g, 2_000_000)
	if !s.fp.Crippled() {
		t.Fatal("0% reserve should cripple at the first failure")
	}
	if s.fp.Stats().SlotsUsed != 0 {
		t.Error("no slots exist to use")
	}
}

func TestUsableFraction(t *testing.T) {
	s := newStack(t, 64, 1e9, 0.10)
	got := s.fp.SoftwareUsableFraction()
	want := 64.0 / float64(64+ReservedSlots(64, 0.10))
	if got < want-0.001 || got > want+0.001 {
		t.Errorf("usable = %v, want %v", got, want)
	}
}

func TestLargerReserveSurvivesLonger(t *testing.T) {
	writesUntilCrippled := func(fraction float64) int {
		s := newStack(t, 128, 250, fraction)
		g, _ := trace.NewUniform(128, 11)
		n := 0
		for i := 0; i < 3_000_000 && !s.fp.Crippled(); i++ {
			v := g.Next()
			pa, ok := s.os.Translate(v)
			if !ok {
				break
			}
			s.fp.Write(pa, uint64(i))
			if !s.fp.Crippled() {
				s.lv.NoteWrite(pa, s.fp)
			}
			n++
		}
		return n
	}
	small := writesUntilCrippled(0.02)
	large := writesUntilCrippled(0.15)
	if large <= small {
		t.Errorf("15%% reserve crippled after %d writes, 2%% after %d; larger reserve should last longer under uniform load",
			large, small)
	}
}

func newZombieStack(t *testing.T, blocks uint64, endurance float64, fraction float64) *stack {
	t.Helper()
	lv, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: blocks, GapWritePeriod: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reserved := ReservedSlots(blocks, fraction)
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks + 1 + reserved, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 2, TrackContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ecc.NewECP(6, dev.NumBlocks())
	osm, err := osmodel.New(blocks, 16)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	fp, err := New(Config{ReserveFraction: fraction, ZombiePairing: true}, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{dev: dev, be: be, lv: lv, os: osm, fp: fp}
}

func TestZombieName(t *testing.T) {
	s := newZombieStack(t, 64, 1e9, 0.05)
	if s.fp.Name() != "Zombie(5%)" {
		t.Errorf("name = %q", s.fp.Name())
	}
}

// Zombie's pair coding keeps a worn spare serviceable, so under traffic
// that hammers remapped blocks it consumes fewer slots than plain FREE-p
// and survives at least as long.
func TestZombiePairingSavesSlots(t *testing.T) {
	run := func(zombie bool) (Stats, int) {
		var s *stack
		if zombie {
			s = newZombieStack(t, 128, 150, 0.15)
		} else {
			s = newStack(t, 128, 150, 0.15)
		}
		// Hammer two addresses so their blocks — and then their spare
		// slots — wear out repeatedly.
		g, err := trace.NewHammer(128, []uint64{3, 7})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 2_000_000 && !s.fp.Crippled(); i++ {
			pa, ok := s.os.Translate(g.Next())
			if !ok {
				break
			}
			s.fp.Write(pa, uint64(i))
			if !s.fp.Crippled() {
				s.lv.NoteWrite(pa, s.fp)
			}
			n++
		}
		return s.fp.Stats(), n
	}
	plainStats, plainWrites := run(false)
	zombieStats, zombieWrites := run(true)
	if zombieStats.PairRevivals == 0 {
		t.Fatal("pair coding never engaged; the workload should wear spares out")
	}
	if zombieWrites < plainWrites {
		t.Errorf("Zombie crippled after %d writes, plain FREE-p after %d; pairing should not hurt",
			zombieWrites, plainWrites)
	}
	t.Logf("plain: %d writes, %d slots; zombie: %d writes, %d slots, %d revivals",
		plainWrites, plainStats.SlotsUsed, zombieWrites, zombieStats.SlotsUsed, zombieStats.PairRevivals)
}

// Data behind a pair-revived spare stays readable.
func TestZombiePairDataIntegrity(t *testing.T) {
	s := newZombieStack(t, 64, 300, 0.15)
	g, _ := trace.NewUniform(64, 33)
	last := make(map[uint64]uint64)
	for i := 0; i < 400_000 && !s.fp.Crippled(); i++ {
		pa, ok := s.os.Translate(g.Next())
		if !ok {
			break
		}
		res := s.fp.Write(pa, uint64(i))
		if res.Retry {
			break
		}
		last[pa] = uint64(i)
		s.lv.NoteWrite(pa, s.fp)
		if i%20_000 == 0 {
			for p, want := range last {
				if s.os.Retired(p) {
					delete(last, p)
					continue
				}
				if got, _ := s.fp.Read(p); got != want {
					t.Fatalf("PA %d reads %d, want %d", p, got, want)
				}
			}
		}
	}
}
