package obs

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the accumulator: counters (sorted by name), the
// snapshot series and the wear-at-death samples.
func (m *Metrics) SaveState(e *ckpt.Encoder) {
	names := ckpt.KeysString(m.counters)
	e.U32(uint32(len(names)))
	for _, name := range names {
		e.String(name)
		e.U64(m.counters[name])
	}
	e.U32(uint32(len(m.snapshots)))
	for _, s := range m.snapshots {
		e.U64(s.Writes)
		e.F64(s.WritesPerBlock)
		e.F64(s.SurvivalRate)
		e.F64(s.UsableFraction)
		e.U64(s.DeadBlocks)
		e.U64(s.RetiredPages)
		e.I64(int64(s.LiveRemaps))
		e.I64(int64(s.SparePAs))
		e.U64(s.LevelerOps)
		e.U64(s.CacheHits)
		e.U64(s.CacheMisses)
		e.F64(s.AccessRatio)
		e.F64(s.WearCoV)
	}
	e.F64s(m.deathWear)
}

// LoadState restores state written by SaveState, replacing the
// accumulator's contents.
func (m *Metrics) LoadState(dec *ckpt.Decoder) error {
	nCounters := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if nCounters > 1<<20 {
		return fmt.Errorf("obs: checkpoint counter count %d implausible", nCounters)
	}
	counters := make(map[string]uint64, nCounters)
	prev := ""
	for i := 0; i < nCounters; i++ {
		name := dec.String()
		v := dec.U64()
		if dec.Err() != nil {
			return dec.Err()
		}
		if i > 0 && name <= prev {
			return fmt.Errorf("obs: checkpoint counters out of order")
		}
		prev = name
		counters[name] = v
	}
	nSnaps := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nSnaps*96 > 1<<32 { // each snapshot is 96 payload bytes
		return fmt.Errorf("obs: checkpoint snapshot count %d implausible", nSnaps)
	}
	snapshots := make([]Snapshot, nSnaps)
	for i := range snapshots {
		snapshots[i] = Snapshot{
			Writes:         dec.U64(),
			WritesPerBlock: dec.F64(),
			SurvivalRate:   dec.F64(),
			UsableFraction: dec.F64(),
			DeadBlocks:     dec.U64(),
			RetiredPages:   dec.U64(),
			LiveRemaps:     int(dec.I64()),
			SparePAs:       int(dec.I64()),
			LevelerOps:     dec.U64(),
			CacheHits:      dec.U64(),
			CacheMisses:    dec.U64(),
			AccessRatio:    dec.F64(),
			WearCoV:        dec.F64(),
		}
	}
	deathWear := dec.F64s()
	if err := dec.Err(); err != nil {
		return err
	}
	m.counters = counters
	m.snapshots = snapshots
	m.deathWear = deathWear
	return nil
}
