// Reboot: WL-Reviver survives power cycles (paper §III-A). The
// retirement bitmap — one bit per page, written at most once in the
// chip's life — persists in PCM, and the framework's pointers live in
// PCM blocks anyway, so after a reboot the OS reloads the bitmap and the
// controller reloads its links; nothing else is needed.
//
// This example wires the component stack directly (the PCM device and
// the wear-leveling registers are the non-volatile parts that survive;
// the OS model and the framework tables are rebuilt), wears the memory
// down, snapshots, "reboots", restores, and shows the system continuing
// with every failure still hidden.
package main

import (
	"fmt"
	"log"

	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/reviver"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

const (
	blocks    = 1 << 12
	pageSize  = 16
	endurance = 1_200
)

func main() {
	// --- the non-volatile parts: PCM chip + wear-leveling registers ---
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks + 1, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := ecc.NewECP(6, dev.NumBlocks())
	if err != nil {
		log.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: scheme}
	sg, err := wear.NewStartGap(wear.StartGapConfig{
		NumPAs: blocks, GapWritePeriod: 50, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- first boot ---
	osm, err := osmodel.New(blocks, pageSize)
	if err != nil {
		log.Fatal(err)
	}
	rv, err := reviver.New(reviver.Config{}, sg, be, osm)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := trace.NewBenchmark("fft", blocks, pageSize, 11)
	if err != nil {
		log.Fatal(err)
	}

	drive := func(rv *reviver.Reviver, osm *osmodel.Model, n int) {
		for i := 0; i < n; i++ {
			v := gen.Next()
			for attempt := 0; attempt < int(osm.NumPages())+2; attempt++ {
				pa, ok := osm.Translate(v)
				if !ok {
					return
				}
				res := rv.Write(pa, uint64(i))
				if !res.Retry {
					rv.ResumePending()
					sg.NoteWrite(pa, rv)
					break
				}
			}
		}
	}

	drive(rv, osm, 1_500_000)
	for rv.HasPending() {
		drive(rv, osm, 1)
	}
	fmt.Printf("before reboot: %d dead blocks hidden behind %d retired pages (%d spares left)\n",
		rv.LinkedFailures(), osm.RetiredPages(), rv.AvailableSpares())

	snap, err := rv.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (bitmap + links + spares)\n", len(snap))

	// --- reboot: OS and controller tables rebuilt, chip untouched ---
	osm2, err := osmodel.New(blocks, pageSize)
	if err != nil {
		log.Fatal(err)
	}
	rv2, err := reviver.New(reviver.Config{}, sg, be, osm2)
	if err != nil {
		log.Fatal(err)
	}
	if err := rv2.Restore(snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reboot:  %d dead blocks hidden behind %d retired pages (%d spares left)\n",
		rv2.LinkedFailures(), osm2.RetiredPages(), rv2.AvailableSpares())

	// --- second life: keep wearing, failures keep being hidden ---
	drive(rv2, osm2, 1_000_000)
	st2 := rv2.Stats()
	fmt.Printf("second life:   +%d more failures hidden, +%d pages acquired — business as usual\n",
		rv2.LinkedFailures()-rv.LinkedFailures(), st2.PagesAcquired)
}
