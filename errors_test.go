package wlreviver

import (
	"errors"
	"testing"
)

// TestErrorTaxonomy pins the public sentinel set: each failure mode
// reached through the public API matches its exported sentinel via
// errors.Is, so callers can branch without string matching.
func TestErrorTaxonomy(t *testing.T) {
	check := func(name string, err, sentinel error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: expected an error", name)
			return
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: %v does not wrap the sentinel", name, err)
		}
	}

	_, err := NewWorkload(WorkloadSpec{Kind: "nosuch", Blocks: 64})
	check("unknown workload kind", err, ErrUnknownWorkload)

	w, err := NewWorkload(WorkloadSpec{Kind: WorkloadUniform, Blocks: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{}, w)
	check("zero config", err, ErrBadConfig)

	cfg := DefaultConfig()
	cfg.Blocks = 128 // workload covers 64
	cfg.BlocksPerPage = 8
	_, err = New(cfg, w)
	check("workload/config mismatch", err, ErrBadConfig)

	_, err = LookupExperiment("nosuch")
	check("unknown experiment", err, ErrUnknownExperiment)

	_, err = LookupDeviceStack("nosuch")
	check("unknown device stack", err, ErrUnknownExperiment)

	cfg = DefaultConfig()
	cfg.Blocks = 64
	cfg.BlocksPerPage = 8
	sys, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	check("garbage checkpoint", sys.RestoreCheckpoint([]byte("not a checkpoint")), ErrBadCheckpoint)

	img, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	other, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	check("checkpoint config mismatch", other.RestoreCheckpoint(img), ErrConfigMismatch)
}
