package wear

import "fmt"

// Feistel is a static pseudo-random invertible permutation over [0, N),
// the "address-space randomization" layer of Start-Gap (the paper's §IV-D
// notes its importance: removing or restricting it compromises leveling).
//
// It is an unbalanced-capable Feistel network over the smallest even bit
// width covering N, made total on [0, N) by cycle walking: values that
// land outside [0, N) are re-encrypted until they fall inside. Cycle
// walking preserves bijectivity because the underlying cipher permutes
// [0, 2^width) and the trajectory of any x < N must re-enter [0, N).
type Feistel struct {
	n      uint64
	rounds int
	keys   []uint64
	half   uint // bits per half
	mask   uint64
}

// NewFeistel builds a permutation over [0, n) keyed by seed. rounds must
// be at least 3 for good mixing; 4 is the default used by callers.
func NewFeistel(n uint64, rounds int, seed uint64) (*Feistel, error) {
	if n == 0 {
		return nil, fmt.Errorf("wear: feistel domain must be non-empty")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("wear: feistel needs at least 1 round, got %d", rounds)
	}
	bits := uint(1)
	for uint64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	f := &Feistel{
		n:      n,
		rounds: rounds,
		keys:   make([]uint64, rounds),
		half:   bits / 2,
		mask:   (uint64(1) << (bits / 2)) - 1,
	}
	state := seed
	for i := range f.keys {
		state, f.keys[i] = splitMix64(state)
	}
	return f, nil
}

func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return state, z
}

// roundF is the Feistel round function: a fast integer hash of the half
// value mixed with the round key, truncated to half width.
func (f *Feistel) roundF(k, x uint64) uint64 {
	z := x ^ k
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return z & f.mask
}

// encryptOnce applies one pass of the network over the full 2^width domain.
func (f *Feistel) encryptOnce(x uint64) uint64 {
	l := (x >> f.half) & f.mask
	r := x & f.mask
	for _, k := range f.keys {
		l, r = r, l^f.roundF(k, r)
	}
	return l<<f.half | r
}

// decryptOnce inverts encryptOnce.
func (f *Feistel) decryptOnce(x uint64) uint64 {
	l := (x >> f.half) & f.mask
	r := x & f.mask
	for i := len(f.keys) - 1; i >= 0; i-- {
		l, r = r^f.roundF(f.keys[i], l), l
	}
	return l<<f.half | r
}

// Map returns the randomized image of x. It panics if x >= N, which
// always indicates a caller bug.
func (f *Feistel) Map(x uint64) uint64 {
	if x >= f.n {
		panic(fmt.Sprintf("wear: feistel input %d out of domain [0,%d)", x, f.n))
	}
	y := f.encryptOnce(x)
	for y >= f.n {
		y = f.encryptOnce(y)
	}
	return y
}

// Inverse returns the preimage of y. It panics if y >= N.
func (f *Feistel) Inverse(y uint64) uint64 {
	if y >= f.n {
		panic(fmt.Sprintf("wear: feistel input %d out of domain [0,%d)", y, f.n))
	}
	x := f.decryptOnce(y)
	for x >= f.n {
		x = f.decryptOnce(x)
	}
	return x
}

// N returns the domain size.
func (f *Feistel) N() uint64 { return f.n }

// Identity is the trivial randomizer (no address scrambling); used by
// ablation experiments to isolate the randomization layer's contribution.
type Identity struct{ Size uint64 }

// Map returns x unchanged.
func (i Identity) Map(x uint64) uint64 { return x }

// Inverse returns y unchanged.
func (i Identity) Inverse(y uint64) uint64 { return y }

// N returns the domain size.
func (i Identity) N() uint64 { return i.Size }

// Randomizer is a static invertible address scrambler.
type Randomizer interface {
	Map(x uint64) uint64
	Inverse(y uint64) uint64
	N() uint64
}

// verify interface compliance.
var (
	_ Randomizer = (*Feistel)(nil)
	_ Randomizer = Identity{}
)
