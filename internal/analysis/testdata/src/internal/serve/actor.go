// Fixture: internal/serve/actor.go is the fleet daemon's allowlisted
// goroutine spawner — one actor per device. Nothing in this file is a
// finding.
package serve

// Spawn starts a device actor; allowed here by path.
func Spawn(run func()) {
	go run()
}
