package sim

// Engine-level counterpart of internal/wear/conformance: every leveler
// kind, slotted into the full simulation stack, must behave identically
// regardless of how the run is batched or sharded, and must keep
// servicing writes once WL-Reviver starts revving failed blocks. This is
// what makes the leveler registry generic: a kind that passes here works
// under every experiment runner, the crash/resume machinery and the
// fleet daemon without special cases.

import (
	"testing"

	"wlreviver/internal/trace"
)

// levelerKindsUnderTest is every registered leveler with a mapping
// (LevelerNone is the no-op baseline the others are measured against).
var levelerKindsUnderTest = []LevelerKind{
	LevelerStartGap,
	LevelerSecurityRefresh,
	LevelerRegionedStartGap,
	LevelerWoLFRaM,
	LevelerSoftWear,
}

// levelerTestConfig is the failure-dense checkpoint geometry with
// content tracking on, so revives must preserve data, not just space.
func levelerTestConfig(kind LevelerKind) Config {
	cfg := ckptTestConfig()
	cfg.Leveler = kind
	cfg.TrackContent = true
	if kind == LevelerSecurityRefresh {
		cfg.SRInnerRegions = 4
	}
	return cfg
}

// TestLevelerKindsRunNBatching pins batching-invariance: an engine
// stepped one write at a time must end byte-identical to one driven in
// ragged large batches — for every leveler kind, under WL-Reviver, with
// failures occurring mid-run.
func TestLevelerKindsRunNBatching(t *testing.T) {
	const budget = 40_000
	for _, kind := range levelerKindsUnderTest {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			build := func() *Engine {
				cfg := levelerTestConfig(kind)
				gen, err := trace.NewBenchmark("ocean", cfg.Blocks, cfg.BlocksPerPage, cfg.Seed)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(cfg, gen)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			single := build()
			for single.Writes() < budget && single.RunN(1) > 0 {
			}
			exhausted := single.Writes() < budget
			want, err := single.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if single.Device().DeadBlocks() == 0 {
				t.Fatal("no block failed; the revive path was not exercised")
			}

			batched := build()
			for _, chunk := range []uint64{1, 137, 7_777, 13_000, budget} {
				if batched.Writes() >= single.Writes() {
					break
				}
				n := chunk
				if rest := single.Writes() - batched.Writes(); n > rest {
					n = rest
				}
				if batched.RunN(n) == 0 {
					break
				}
			}
			if exhausted {
				// The single-stepped run ended on a failed write attempt,
				// which still consumes a workload address; make the same
				// final attempt here so both ends of life are identical.
				batched.RunN(1)
			}
			got, err := batched.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("%s: batched run diverged from single-stepped run", kind)
			}
		})
	}
}

// TestLevelerKindsShardPoolWidths pins shard-invariance: a sharded chip
// hosting the kind must produce the identical final checkpoint image at
// every execution pool width (the -shards CLI axis).
func TestLevelerKindsShardPoolWidths(t *testing.T) {
	const budget = 30_000
	for _, kind := range levelerKindsUnderTest {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			var want string
			for _, pool := range []int{1, 3, 7} {
				cfg := levelerTestConfig(kind)
				se, err := NewShardedEngine(ShardedConfig{Grid: shardTestGrid, Pool: pool}, cfg,
					func(shard uint64, shardCfg Config) (trace.Generator, error) {
						return trace.NewBenchmark("ocean", shardCfg.Blocks, shardCfg.BlocksPerPage, shardCfg.Seed)
					})
				if err != nil {
					t.Fatal(err)
				}
				img := shardedFinalImage(t, se, budget)
				if want == "" {
					want = string(img)
					continue
				}
				if string(img) != want {
					t.Fatalf("%s: pool width %d diverged from width 1", kind, pool)
				}
			}
		})
	}
}

// TestLevelerKindsSurviveFailures drives each kind far past its first
// block failures under WL-Reviver and requires the engine to keep
// servicing writes with a sane usable-space report — the engine-level
// revive-compatibility claim.
func TestLevelerKindsSurviveFailures(t *testing.T) {
	for _, kind := range levelerKindsUnderTest {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := levelerTestConfig(kind)
			gen, err := trace.NewBenchmark("mg", cfg.Blocks, cfg.BlocksPerPage, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(cfg, gen)
			if err != nil {
				t.Fatal(err)
			}
			var firstFail uint64
			for e.Writes() < 120_000 && firstFail == 0 {
				if e.RunN(500) == 0 {
					break
				}
				if e.Device().DeadBlocks() > 0 {
					firstFail = e.Writes()
				}
			}
			if firstFail == 0 {
				t.Fatal("no block ever failed")
			}
			// Keep writing well past the first failure — the revived
			// scheme must keep servicing the workload, not stall.
			if got := e.RunN(2_000); got != 2_000 {
				t.Fatalf("engine serviced only %d of 2000 writes past the first failure", got)
			}
			if u := e.UsableFraction(); u <= 0 || u > 1 {
				t.Fatalf("usable fraction %v out of range after failures", u)
			}
			var ops uint64
			switch {
			case e.sgLv != nil:
				ops = e.sgLv.GapMoves()
			case e.srLv != nil:
				ops = e.srLv.OuterSwaps()
			case e.rsgLv != nil:
				ops = e.rsgLv.GapMoves()
			case e.wfrLv != nil:
				ops = e.wfrLv.Swaps()
			case e.swLv != nil:
				ops = e.swLv.Relocations()
			}
			if ops == 0 {
				t.Fatalf("%s performed zero leveling operations over %d writes", kind, e.Writes())
			}
		})
	}
}
