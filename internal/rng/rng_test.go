package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x != %x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var or uint64
	for i := 0; i < 16; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for Intn(%d)", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if f := r.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(10)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(77)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("forks with different labels overlapped %d/100 draws", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(123).Fork(5)
	b := New(123).Fork(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork of same seed/label diverged")
		}
	}
}

// Property: Uint64n(n) < n for arbitrary positive n.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(999)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%x, %x) = (%x, %x), want (%x, %x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(1000003)
	}
}

// Hash64/HashFloat64Open promise exact equivalence with the Source path;
// pcm's order-statistic draws rely on it for byte-identical results.
func TestHash64MatchesSource(t *testing.T) {
	seeds := []uint64{0, 1, 42, math.MaxUint64, 0x9E3779B97F4A7C15}
	r := New(99)
	for i := 0; i < 1000; i++ {
		seeds = append(seeds, r.Uint64())
	}
	for _, seed := range seeds {
		if got, want := Hash64(seed), New(seed).Uint64(); got != want {
			t.Fatalf("Hash64(%#x) = %#x, Source gives %#x", seed, got, want)
		}
		if got, want := HashFloat64Open(seed), New(seed).Float64Open(); got != want {
			t.Fatalf("HashFloat64Open(%#x) = %v, Source gives %v", seed, got, want)
		}
	}
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hash64(uint64(i))
	}
}

func BenchmarkNewSourceDraw(b *testing.B) {
	// The allocation Hash64 avoids: a full Source per single draw.
	for i := 0; i < b.N; i++ {
		_ = New(uint64(i)).Uint64()
	}
}
