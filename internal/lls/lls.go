// Package lls implements the LLS baseline (Jiang et al., ACM TACO 2013:
// "Hardware-Assisted Cooperative Integration of Wear-Leveling and
// Salvaging for Phase Change Memory"), as characterised in the paper's
// §II and evaluated in its Figure 8 and Table II.
//
// LLS lets wear leveling continue across failures by remapping failed
// blocks to backup blocks in a reserved region that it grows in large
// chunks (64 MB in the original; scaled here), taken from the software's
// address space with OS support. Four design traits — all criticised by
// the WL-Reviver paper — are modelled:
//
//  1. Chunked reservation with OS-driven data relocation: each expansion
//     retires a whole chunk of pages and copies their data elsewhere.
//  2. Order-matched backups inside salvaging groups: the i-th failed
//     block of a group maps to the group's i-th live backup, so a new
//     failure in the middle shifts the data of every later failed block
//     (expensive block insertions).
//  3. A bitmap consulted on every access to a remapped block (a third
//     PCM access unless cached).
//  4. A restricted Start-Gap randomizer (first half of PAs maps into the
//     second half of randomized PAs and vice versa) so the mapping stays
//     compatible with half-space reservations — which weakens leveling
//     under skewed writes (the package provides RestrictedRandomizer).
//
// Because a salvaging group stripes across chunks, one hot group forces
// a new chunk while other groups still hold idle backups — the usable-
// space inefficiency the paper reports.
package lls

import (
	"fmt"
	"sort"

	"wlreviver/internal/cache"
	"wlreviver/internal/mc"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"

	"wlreviver/internal/osmodel"
)

// RestrictedRandomizer is the half-space address randomization LLS needs:
// addresses in the lower half scramble into the upper half and vice
// versa. It composes two half-size Feistel permutations.
type RestrictedRandomizer struct {
	n    uint64
	half uint64
	lo   *wear.Feistel // maps [0, n/2) -> offsets in the upper half
	hi   *wear.Feistel // maps [0, n/2) -> offsets in the lower half
}

// NewRestrictedRandomizer builds the permutation over [0, n); n must be
// even.
func NewRestrictedRandomizer(n uint64, seed uint64) (*RestrictedRandomizer, error) {
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("lls: restricted randomizer needs an even domain, got %d", n)
	}
	lo, err := wear.NewFeistel(n/2, 4, seed^0x10)
	if err != nil {
		return nil, err
	}
	hi, err := wear.NewFeistel(n/2, 4, seed^0x20)
	if err != nil {
		return nil, err
	}
	return &RestrictedRandomizer{n: n, half: n / 2, lo: lo, hi: hi}, nil
}

// Map implements wear.Randomizer.
func (r *RestrictedRandomizer) Map(x uint64) uint64 {
	if x < r.half {
		return r.half + r.lo.Map(x)
	}
	return r.hi.Map(x - r.half)
}

// Inverse implements wear.Randomizer.
func (r *RestrictedRandomizer) Inverse(y uint64) uint64 {
	if y >= r.half {
		return r.lo.Inverse(y - r.half)
	}
	return r.half + r.hi.Inverse(y)
}

// N implements wear.Randomizer.
func (r *RestrictedRandomizer) N() uint64 { return r.n }

var _ wear.Randomizer = (*RestrictedRandomizer)(nil)

// Config parameterises LLS.
type Config struct {
	// ChunkPages is the reservation granularity in OS pages.
	ChunkPages uint64
	// SalvageGroups is the number of salvaging groups blocks are striped
	// into (by DA modulo).
	SalvageGroups uint64
	// RemapCache, when non-nil, caches remapped blocks' backup locations
	// (removing the bitmap and pointer accesses on a hit).
	RemapCache *cache.Cache
}

// Stats counts LLS activity.
type Stats struct {
	SoftwareWrites  uint64
	SoftwareReads   uint64
	RequestAccesses uint64
	ChunksReserved  uint64
	ShiftWrites     uint64
	Failures        uint64
	Exposed         bool
}

// group holds one salvaging group's failure/backup bookkeeping.
type group struct {
	failed  []uint64 // failed data-region DAs, sorted (order matching)
	backups []uint64 // live backup DAs in fixed order; failed[i] uses backups[i]
}

// LLS is the baseline protector. Backup blocks occupy device blocks
// above the wear-leveling space (the capacity they represent is taken
// from the software space page-for-page when a chunk is reserved; see
// package comment and DESIGN.md for this accounting).
type LLS struct {
	cfg Config         // ckpt:skip construction-time config, fingerprinted by the engine
	lv  wear.Leveler   // ckpt:skip wiring; the leveler checkpoints itself
	be  *mc.Backend    // ckpt:skip wiring; the backend checkpoints itself
	os  *osmodel.Model // ckpt:skip wiring; the OS model checkpoints itself

	groups      []group
	chunkBlocks uint64 // ckpt:derived recomputed from cfg in New
	maxChunks   uint64 // ckpt:derived recomputed from cfg in New
	nextBackup  uint64 // next unallocated backup DA
	st          Stats
}

// New builds the protector. The device must provide backup capacity
// beyond lv.NumDAs(); every full chunk of it is usable.
func New(cfg Config, lv wear.Leveler, be *mc.Backend, os *osmodel.Model) (*LLS, error) {
	if cfg.ChunkPages == 0 {
		return nil, fmt.Errorf("lls: ChunkPages must be positive")
	}
	if cfg.SalvageGroups == 0 {
		return nil, fmt.Errorf("lls: SalvageGroups must be positive")
	}
	chunkBlocks := cfg.ChunkPages * os.BlocksPerPage()
	extra := be.Dev.NumBlocks() - min64(be.Dev.NumBlocks(), lv.NumDAs())
	maxChunks := extra / chunkBlocks
	if maxChunks == 0 {
		return nil, fmt.Errorf("lls: device provides no backup capacity (%d extra blocks, chunk is %d)",
			extra, chunkBlocks)
	}
	return &LLS{
		cfg:         cfg,
		lv:          lv,
		be:          be,
		os:          os,
		groups:      make([]group, cfg.SalvageGroups),
		chunkBlocks: chunkBlocks,
		maxChunks:   maxChunks,
		nextBackup:  lv.NumDAs(),
	}, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Name implements mc.Protector.
func (l *LLS) Name() string { return "LLS" }

// Stats returns a copy of the counters.
func (l *LLS) Stats() Stats { return l.st }

// Crippled implements mc.Crippler.
func (l *LLS) Crippled() bool { return l.st.Exposed }

// groupOf returns the salvaging group of a data-region DA.
func (l *LLS) groupOf(da uint64) *group {
	return &l.groups[da%l.cfg.SalvageGroups]
}

// backupIndex returns the order-matching index of da in its group, or -1.
func (g *group) backupIndex(da uint64) int {
	i := sort.Search(len(g.failed), func(i int) bool { return g.failed[i] >= da })
	if i < len(g.failed) && g.failed[i] == da {
		return i
	}
	return -1
}

// effective resolves a data-region DA through the group bookkeeping,
// charging the failed-block probe and bitmap read unless cached.
func (l *LLS) effective(da uint64) (uint64, uint64) {
	g := l.groupOf(da)
	i := g.backupIndex(da)
	if i < 0 {
		return da, 0
	}
	if l.cfg.RemapCache != nil && l.cfg.RemapCache.Lookup(da) {
		return g.backups[i], 0
	}
	// One access to the failed block (detect/probe) and one to the
	// bitmap region to compute the backup location.
	l.be.ReadRaw(da)
	l.be.ReadRaw(g.backups[i])
	return g.backups[i], 2
}

// reserveChunk expands the backup region by one chunk, retiring
// ChunkPages of the software's top-most live pages (with the OS's data
// relocation) and striping the fresh backups across the groups. Returns
// false when no capacity remains.
func (l *LLS) reserveChunk() bool {
	if l.st.ChunksReserved == l.maxChunks {
		return false
	}
	if l.os.UsablePages() < l.cfg.ChunkPages {
		return false // software space exhausted
	}
	// Claim the chunk's backup range and stripe it into the groups
	// before touching the OS: the retirement below relocates data, and
	// those relocation writes can hit failures that need backups — the
	// fresh chunk must already be visible to them (and a reentrant
	// reservation must see updated counters).
	for i := uint64(0); i < l.chunkBlocks; i++ {
		da := l.nextBackup
		l.nextBackup++
		g := &l.groups[i%l.cfg.SalvageGroups]
		g.backups = append(g.backups, da)
	}
	l.st.ChunksReserved++
	pagesNeeded := l.cfg.ChunkPages
	bpp := l.os.BlocksPerPage()
	for p := int64(l.os.NumPages()) - 1; p >= 0 && pagesNeeded > 0; p-- {
		pa := uint64(p) * bpp
		if l.os.Retired(pa) {
			continue
		}
		_, relocs := l.os.ReportFailure(pa)
		for _, rc := range relocs {
			src, _ := l.effective(l.lv.Map(rc.OldPA))
			if l.be.Dead(src) {
				continue
			}
			l.be.ReadRaw(src)
			l.writeTo(l.lv.Map(rc.NewPA), l.be.Dev.Content(pcm.BlockID(src)))
		}
		pagesNeeded--
	}
	return true
}

// handleFailure registers a fresh failure of data-region DA da,
// reserving capacity and shifting later blocks' data as order matching
// requires. Returns false when LLS is out of options (exposed).
func (l *LLS) handleFailure(da uint64) bool {
	g := l.groupOf(da)
	for len(g.backups) <= len(g.failed) {
		if !l.reserveChunk() {
			l.st.Exposed = true
			return false
		}
	}
	i := sort.Search(len(g.failed), func(i int) bool { return g.failed[i] >= da })
	g.failed = append(g.failed, 0)
	copy(g.failed[i+1:], g.failed[i:])
	g.failed[i] = da
	l.st.Failures++
	if l.cfg.RemapCache != nil {
		l.cfg.RemapCache.Invalidate(da)
	}
	// Order matching: every failed block after the insertion point moves
	// its data one backup later.
	return l.reshift(g, i)
}

// dropBackup removes a dead backup from the group's live list.
func (l *LLS) dropBackup(g *group, j int) {
	g.backups = append(g.backups[:j], g.backups[j+1:]...)
}

// reshift re-establishes order matching for every failed block after
// index i: block failed[k] (k > i) has its data at backups[k-1] and must
// move it to backups[k]. Runs end-to-start so data is never clobbered;
// a backup dying mid-shift is dropped and the shift restarted (backups
// strictly decrease, so this terminates).
func (l *LLS) reshift(g *group, i int) bool {
	for len(g.backups) < len(g.failed) {
		if !l.reserveChunk() {
			l.st.Exposed = true
			return false
		}
	}
	for k := len(g.failed) - 1; k > i; k-- {
		src := g.backups[k-1]
		dst := g.backups[k]
		l.be.ReadRaw(src)
		l.st.ShiftWrites++
		if !l.be.WriteRaw(dst) {
			l.dropBackup(g, k)
			return l.reshift(g, i)
		}
		if l.be.Dev.TracksContent() {
			l.be.Dev.SetContent(pcm.BlockID(dst), l.be.Dev.Content(pcm.BlockID(src)))
		}
		if l.cfg.RemapCache != nil {
			l.cfg.RemapCache.Invalidate(g.failed[k])
		}
	}
	return true
}

// writeTo delivers a write to the storage behind data-region DA da.
func (l *LLS) writeTo(da, tag uint64) (uint64, bool) {
	target, accesses := l.effective(da)
	for attempt := 0; attempt < 64; attempt++ {
		accesses++
		if l.be.WriteRaw(target) {
			if l.be.Dev.TracksContent() {
				l.be.Dev.SetContent(pcm.BlockID(target), tag)
			}
			return accesses, true
		}
		if target == da {
			// A data block died: register the failure.
			if !l.handleFailure(da) {
				return accesses, false
			}
		} else {
			// The backup died under our write: drop it and restore order
			// matching for everything behind it (their data still sits
			// one backup lower). The dying block's own data is the tag
			// in hand, rewritten on the next attempt.
			g := l.groupOf(da)
			i := g.backupIndex(da)
			if i < 0 {
				return accesses, false
			}
			l.dropBackup(g, i)
			if !l.reshift(g, i) {
				return accesses, false
			}
			if l.cfg.RemapCache != nil {
				l.cfg.RemapCache.Invalidate(da)
			}
		}
		var acc uint64
		target, acc = l.effective(da)
		accesses += acc
	}
	l.st.Exposed = true
	return accesses, false
}

// Write implements mc.Protector. LLS reserves synchronously through the
// OS, so a write only fails when the whole chip is out of capacity.
func (l *LLS) Write(pa, tag uint64) mc.WriteResult {
	l.st.SoftwareWrites++
	accesses, ok := l.writeTo(l.lv.Map(pa), tag)
	l.st.RequestAccesses += accesses
	if !ok {
		return mc.WriteResult{Accesses: accesses, Retry: false}
	}
	return mc.WriteResult{Accesses: accesses}
}

// Read implements mc.Protector.
func (l *LLS) Read(pa uint64) (uint64, uint64) {
	l.st.SoftwareReads++
	target, accesses := l.effective(l.lv.Map(pa))
	l.be.ReadRaw(target)
	accesses++
	l.st.RequestAccesses += accesses
	if l.be.Dead(target) {
		return 0, accesses
	}
	return l.be.Dev.Content(pcm.BlockID(target)), accesses
}

// ResumePending implements mc.Protector: LLS never defers.
func (l *LLS) ResumePending() uint64 { return 0 }

// Migrate implements wear.Mover: backups sit outside the wear-leveling
// space, so resolution through the order matching commutes with
// migration.
func (l *LLS) Migrate(src, dst uint64) {
	esrc, _ := l.effective(src)
	if l.be.Dead(esrc) {
		return
	}
	l.be.ReadRaw(esrc)
	l.writeTo(dst, l.be.Dev.Content(pcm.BlockID(esrc)))
}

// Swap implements wear.Mover.
func (l *LLS) Swap(a, b uint64) {
	ea, _ := l.effective(a)
	eb, _ := l.effective(b)
	l.be.ReadRaw(ea)
	l.be.ReadRaw(eb)
	ta, tb := l.be.Dev.Content(pcm.BlockID(ea)), l.be.Dev.Content(pcm.BlockID(eb))
	deadA, deadB := l.be.Dead(ea), l.be.Dead(eb)
	if !deadB {
		l.writeTo(a, tb)
	}
	if !deadA {
		l.writeTo(b, ta)
	}
}

// SoftwareUsableFraction implements mc.SpaceReporter: pages not consumed
// by chunk reservations (LLS hides failures, so only reservations cost
// software space — in chunk-sized steps, Figure 8's staircase).
func (l *LLS) SoftwareUsableFraction() float64 {
	return l.os.UsableFraction()
}

var (
	_ mc.Protector     = (*LLS)(nil)
	_ mc.Crippler      = (*LLS)(nil)
	_ mc.SpaceReporter = (*LLS)(nil)
)
