package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"wlreviver/internal/sim"
)

// Config parameterises a Fleet.
type Config struct {
	// Dir is the spill directory: one subdirectory per device holding
	// its spec, checkpoint and journal. Required.
	Dir string
	// MaxDevices caps the number of devices the fleet will host
	// (resident or spilled). 0 means unlimited.
	MaxDevices int
	// MaxResident is the LRU budget on in-memory engines. Devices over
	// the budget are checkpointed to Dir and rebuilt transparently on
	// their next request. 0 defaults to 64. Devices pinned by an
	// in-flight request are never evicted, so the instantaneous count
	// may briefly exceed the budget under load.
	MaxResident int
	// MailboxDepth is the per-device request queue bound — the fleet's
	// admission control. A request arriving at a full mailbox is
	// rejected with ErrBusy. 0 defaults to 32.
	MailboxDepth int
	// BatchWrites is the round size a count-granularity write request
	// is serviced in (cancellation and accounting granularity).
	// 0 defaults to 1<<16.
	BatchWrites uint64
	// CheckpointEvery is the durability checkpoint period in
	// acknowledged writes per device: once a device accumulates this
	// many journaled writes its checkpoint is rewritten and the journal
	// truncated, bounding recovery replay. 0 defaults to 1<<18.
	CheckpointEvery uint64
	// DisableSync skips every fsync (tests on slow filesystems). The
	// kill -9 durability contract only holds with syncing on.
	DisableSync bool
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxResident <= 0 {
		c.MaxResident = 64
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 32
	}
	if c.BatchWrites == 0 {
		c.BatchWrites = 1 << 16
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1 << 18
	}
	return c
}

// Fleet hosts a set of simulated PCM devices, each owned by a
// dedicated actor goroutine and paged between memory and the spill
// directory under the MaxResident budget. All fleet bookkeeping —
// device registry, residency table, logical LRU clock — lives behind
// one mutex; engines themselves are only ever touched by their owning
// actor while pinned.
type Fleet struct {
	cfg Config

	mu       sync.Mutex
	devices  map[string]*device
	resident map[string]*resident
	clock    uint64 // logical recency counter (no wall-clock in this package)
	closed   bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// device is a registered device's identity: immutable spec, spill
// directory and request mailbox. The engine itself lives in the
// residency table and may be absent (spilled).
type device struct {
	id   string
	dir  string
	spec DeviceSpec
	mbox chan *request

	// deleted is set (under Fleet.mu) when the device is being torn
	// down, so no further requests are admitted.
	deleted bool

	// diskMu serialises on-disk state transitions that can race across
	// actors: a spill (runs on the evicting actor's goroutine) against
	// this device's own reload or deletion.
	diskMu sync.Mutex

	// cur (guarded by Fleet.mu) is the resident that owns the device's
	// on-disk state. An evicted resident whose spill loses the race with
	// the device's own reload is no longer cur and must not touch the
	// checkpoint or journal files — the reloaded engine already carries
	// (and keeps journaling) every write the stale image would save.
	cur *resident
}

// resident is an in-memory engine plus its open journal.
type resident struct {
	d       *device
	eng     *sim.Engine
	jl      *journal
	vblocks uint64 // software-visible address space, for addr validation

	pinned    bool   // owned by an in-flight request; not evictable
	lastTouch uint64 // fleet clock at last checkin
	sinceCkpt uint64 // acked writes since the last durable checkpoint

	// broken is set by the owning actor when a journal append failed
	// after writes were already applied: the engine has diverged from
	// the durable history and must be discarded — without a checkpoint
	// — so the next touch reloads the exact acknowledged state.
	broken bool
}

// request ops.
type op int

const (
	opWrite op = iota
	opWriteAddrs
	opStatus
	opMetrics
	opCheckpoint
	opDelete
)

// request is one mailbox message; reply is buffered (capacity 1) so
// the actor never blocks answering a caller that gave up.
type request struct {
	op    op
	ctx   context.Context
	count uint64
	addrs []uint64
	reply chan response
}

type response struct {
	val any
	err error
}

// WriteResult reports how a write request was serviced. Done < Requested
// means the device reached end of life (or was crippled, or the request
// context was cancelled) partway through; the serviced prefix is
// acknowledged and durable either way.
type WriteResult struct {
	Requested uint64 `json:"requested"`
	Done      uint64 `json:"done"`
	Writes    uint64 `json:"writes"`
	Stopped   bool   `json:"stopped"`
	Crippled  bool   `json:"crippled"`
}

// DeviceStatus is a device's observable state.
type DeviceStatus struct {
	ID             string  `json:"id"`
	Writes         uint64  `json:"writes"`
	Stopped        bool    `json:"stopped"`
	Crippled       bool    `json:"crippled"`
	SurvivalRate   float64 `json:"survival_rate"`
	UsableFraction float64 `json:"usable_fraction"`
	WritesPerBlock float64 `json:"writes_per_block"`
}

// Health is the fleet-level summary.
type Health struct {
	Devices  int `json:"devices"`
	Resident int `json:"resident"`
}

// validID keeps device IDs filesystem- and URL-safe.
var validID = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Open creates a fleet over the spill directory, recovering every
// device a previous process left there: each subdirectory with a
// spec.json is re-registered and its actor started. Engines are
// rebuilt lazily on first touch (restore checkpoint, replay journal),
// so recovery cost is paid per touched device, not at startup.
func Open(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required: %w", sim.ErrBadConfig)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:      cfg,
		devices:  make(map[string]*device),
		resident: make(map[string]*resident),
		quit:     make(chan struct{}),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(cfg.Dir, e.Name(), specFile))
		if err != nil {
			if os.IsNotExist(err) {
				continue // interrupted create or delete; not a device
			}
			return nil, err
		}
		var spec DeviceSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("serve: device %q: corrupt spec.json: %v", e.Name(), err)
		}
		d := f.registerLocked(e.Name(), spec)
		f.spawn(d)
	}
	return f, nil
}

// registerLocked adds a device to the registry. Callers own f.mu or
// have exclusive access (Open).
func (f *Fleet) registerLocked(id string, spec DeviceSpec) *device {
	d := &device{
		id:   id,
		dir:  filepath.Join(f.cfg.Dir, id),
		spec: spec,
		mbox: make(chan *request, f.cfg.MailboxDepth),
	}
	f.devices[id] = d
	return d
}

// Create registers a new device from its spec, persists the spec, and
// starts its actor. The engine is built eagerly — both to validate the
// spec synchronously and to prime residency for the first writes.
func (f *Fleet) Create(id string, spec DeviceSpec) error {
	if !validID.MatchString(id) {
		return fmt.Errorf("serve: invalid device id %q (want %s): %w", id, validID, sim.ErrBadConfig)
	}
	cfg, err := spec.config()
	if err != nil {
		return err
	}
	eng, err := buildEngine(spec)
	if err != nil {
		return err
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if _, ok := f.devices[id]; ok {
		f.mu.Unlock()
		return fmt.Errorf("serve: device %q: %w", id, ErrDeviceExists)
	}
	if f.cfg.MaxDevices > 0 && len(f.devices) >= f.cfg.MaxDevices {
		f.mu.Unlock()
		return fmt.Errorf("serve: %d devices: %w", len(f.devices), ErrFleetFull)
	}
	d := f.registerLocked(id, spec)
	f.mu.Unlock()

	if err := f.materialize(d, eng, cfg.Blocks); err != nil {
		f.unregister(d)
		return err
	}
	f.spawn(d)
	return nil
}

// materialize writes the device's durable identity and inserts its
// fresh engine into the residency table.
func (f *Fleet) materialize(d *device, eng *sim.Engine, vblocks uint64) error {
	durable := !f.cfg.DisableSync
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d.spec, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileDurable(filepath.Join(d.dir, specFile), data, durable); err != nil {
		return err
	}
	if durable {
		if err := syncDir(f.cfg.Dir); err != nil {
			return err
		}
	}
	jl, err := openJournal(d.dir, durable)
	if err != nil {
		return err
	}
	res := &resident{d: d, eng: eng, jl: jl, vblocks: vblocks}
	f.mu.Lock()
	f.clock++
	res.lastTouch = f.clock
	f.resident[d.id] = res
	d.cur = res
	victims := f.victimsLocked()
	f.mu.Unlock()
	f.spillAll(victims)
	return nil
}

// unregister rolls back a failed Create: the device never served a
// request, so queued senders (admitted between register and failure)
// are answered with ErrUnknownDevice.
func (f *Fleet) unregister(d *device) {
	f.mu.Lock()
	d.deleted = true
	delete(f.devices, d.id)
	f.drainLocked(d, fmt.Errorf("serve: device %q: %w", d.id, ErrUnknownDevice))
	f.mu.Unlock()
}

// drainLocked empties a dead device's mailbox under f.mu. Admission
// enqueues under the same mutex after checking d.deleted, so once the
// flag is set this drain observes every admitted request.
func (f *Fleet) drainLocked(d *device, err error) {
	for {
		select {
		case r := <-d.mbox:
			r.reply <- response{err: err}
		default:
			return
		}
	}
}

// post admits a request into the device's mailbox and waits for the
// reply. A full mailbox rejects immediately with ErrBusy (admission
// control); a cancelled context abandons the wait but the actor still
// services the request (its own ctx makes write work cancel promptly).
func (f *Fleet) post(ctx context.Context, id string, r *request) (any, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	d, ok := f.devices[id]
	if !ok || d.deleted {
		f.mu.Unlock()
		return nil, fmt.Errorf("serve: device %q: %w", id, ErrUnknownDevice)
	}
	select {
	case d.mbox <- r:
		f.mu.Unlock()
	default:
		f.mu.Unlock()
		return nil, fmt.Errorf("serve: device %q: %w", id, ErrBusy)
	}
	select {
	case resp := <-r.reply:
		return resp.val, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.quit:
		return nil, ErrClosed
	}
}

// Write services count workload-driven writes on the device.
func (f *Fleet) Write(ctx context.Context, id string, count uint64) (WriteResult, error) {
	v, err := f.post(ctx, id, &request{op: opWrite, ctx: ctx, count: count, reply: make(chan response, 1)})
	if wr, ok := v.(WriteResult); ok {
		return wr, err
	}
	return WriteResult{}, err
}

// WriteAddrs services explicit software-address writes, in order.
func (f *Fleet) WriteAddrs(ctx context.Context, id string, addrs []uint64) (WriteResult, error) {
	v, err := f.post(ctx, id, &request{op: opWriteAddrs, ctx: ctx, addrs: addrs, reply: make(chan response, 1)})
	if wr, ok := v.(WriteResult); ok {
		return wr, err
	}
	return WriteResult{}, err
}

// Status reports the device's observable state (loading it if spilled).
func (f *Fleet) Status(ctx context.Context, id string) (DeviceStatus, error) {
	v, err := f.post(ctx, id, &request{op: opStatus, ctx: ctx, reply: make(chan response, 1)})
	if st, ok := v.(DeviceStatus); ok {
		return st, err
	}
	return DeviceStatus{}, err
}

// Metrics returns the device's observer report as deterministic JSON.
func (f *Fleet) Metrics(ctx context.Context, id string) (json.RawMessage, error) {
	v, err := f.post(ctx, id, &request{op: opMetrics, ctx: ctx, reply: make(chan response, 1)})
	if raw, ok := v.(json.RawMessage); ok {
		return raw, err
	}
	return nil, err
}

// Checkpoint makes the device's checkpoint durable, truncates its
// journal, and returns the image.
func (f *Fleet) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	v, err := f.post(ctx, id, &request{op: opCheckpoint, ctx: ctx, reply: make(chan response, 1)})
	if img, ok := v.([]byte); ok {
		return img, err
	}
	return nil, err
}

// Delete tears the device down: its actor exits, its engine is
// discarded without a checkpoint, and its spill directory is removed.
func (f *Fleet) Delete(ctx context.Context, id string) error {
	_, err := f.post(ctx, id, &request{op: opDelete, ctx: ctx, reply: make(chan response, 1)})
	return err
}

// List returns the registered device IDs, sorted.
func (f *Fleet) List() []string {
	f.mu.Lock()
	ids := make([]string, 0, len(f.devices))
	for id := range f.devices {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Health returns the fleet-level device and residency counts.
func (f *Fleet) Health() Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Health{Devices: len(f.devices), Resident: len(f.resident)}
}

// Close shuts the fleet down gracefully: actors stop, then every
// resident engine is checkpointed to the spill directory, so a
// subsequent Open resumes without journal replay. In-flight callers
// receive ErrClosed.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	close(f.quit)
	f.wg.Wait()

	f.mu.Lock()
	victims := make([]*resident, 0, len(f.resident))
	ids := make([]string, 0, len(f.resident))
	for id := range f.resident {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		victims = append(victims, f.resident[id])
		delete(f.resident, id)
	}
	f.mu.Unlock()
	var firstErr error
	for _, v := range victims {
		if err := f.spill(v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// checkout pins the device's engine, rebuilding it from the spill
// directory when evicted. Only the device's own actor calls checkout,
// so a given device is never loaded twice concurrently.
func (f *Fleet) checkout(d *device) (*resident, error) {
	f.mu.Lock()
	if res, ok := f.resident[d.id]; ok {
		res.pinned = true
		f.mu.Unlock()
		return res, nil
	}
	f.mu.Unlock()
	res, err := f.load(d)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	res.pinned = true
	f.resident[d.id] = res
	f.mu.Unlock()
	return res, nil
}

// checkin unpins after a request, bumps recency, and synchronously
// evicts the coldest unpinned engines while the fleet is over budget.
// A broken resident (journal append failed mid-request) is discarded
// instead: no checkpoint, since its engine state diverged from the
// durable history; the next touch reloads exactly the acknowledged
// state from checkpoint + journal.
func (f *Fleet) checkin(res *resident) {
	f.mu.Lock()
	res.pinned = false
	f.clock++
	res.lastTouch = f.clock
	if res.broken {
		delete(f.resident, res.d.id)
		if res.d.cur == res {
			res.d.cur = nil
		}
	}
	victims := f.victimsLocked()
	f.mu.Unlock()
	if res.broken {
		_ = res.jl.close()
	}
	f.spillAll(victims)
}

// victimsLocked removes and returns the coldest unpinned residents
// until the budget holds. lastTouch values are unique (the clock is a
// counter under f.mu), so victim selection is deterministic.
func (f *Fleet) victimsLocked() []*resident {
	var victims []*resident
	for len(f.resident) > f.cfg.MaxResident {
		var coldest *resident
		for _, r := range f.resident {
			if r.pinned {
				continue
			}
			if coldest == nil || r.lastTouch < coldest.lastTouch {
				coldest = r
			}
		}
		if coldest == nil {
			return victims // everything left is pinned; retry at next checkin
		}
		delete(f.resident, coldest.d.id)
		victims = append(victims, coldest)
	}
	return victims
}

// spillAll spills each victim, logging nowhere: a failed spill loses
// no acknowledged data (the journal still covers it) but the error is
// surfaced on the device's next load if the directory is truly broken.
func (f *Fleet) spillAll(victims []*resident) {
	for _, v := range victims {
		// Best effort: the journal remains authoritative if this fails.
		_ = f.spill(v)
	}
}

// spill checkpoints an evicted engine to its device directory and
// closes the journal. It runs on whichever actor triggered the
// eviction; diskMu keeps it exclusive with the device's own reload or
// deletion, and the ownership check makes it a no-op when the device
// was reloaded (or deleted) before the spill got the lock — writing
// the eviction-time image then would clobber the new owner's
// checkpoint and truncate journal records of writes it has since
// acknowledged.
func (f *Fleet) spill(res *resident) error {
	res.d.diskMu.Lock()
	defer res.d.diskMu.Unlock()
	f.mu.Lock()
	stale := res.d.cur != res
	f.mu.Unlock()
	if stale {
		// The journal already covers every write this image would
		// save; just drop the superseded handle.
		return res.jl.close()
	}
	_, err := f.saveCheckpointLocked(res)
	if cerr := res.jl.close(); err == nil {
		err = cerr
	}
	return err
}

// saveCheckpoint makes the engine's current state durable under the
// device's disk lock, excluding any in-flight spill of a predecessor
// resident.
func (f *Fleet) saveCheckpoint(res *resident) ([]byte, error) {
	res.d.diskMu.Lock()
	defer res.d.diskMu.Unlock()
	return f.saveCheckpointLocked(res)
}

// saveCheckpointLocked writes the checkpoint and resets the journal:
// image first (atomic replace + fsync), truncate second, so a crash
// between the two only costs redundant replay. Callers hold diskMu.
func (f *Fleet) saveCheckpointLocked(res *resident) ([]byte, error) {
	img, err := res.eng.Checkpoint()
	if err != nil {
		return nil, err
	}
	if err := writeFileDurable(filepath.Join(res.d.dir, ckptFile), img, !f.cfg.DisableSync); err != nil {
		return nil, err
	}
	if err := res.jl.reset(); err != nil {
		return nil, err
	}
	res.sinceCkpt = 0
	return img, nil
}

// load rebuilds a spilled device: engine from spec, checkpoint overlay
// if present, then journal replay. The simulation is deterministic, so
// replaying the journaled batches reproduces the exact acknowledged
// state the process lost.
func (f *Fleet) load(d *device) (*resident, error) {
	d.diskMu.Lock()
	defer d.diskMu.Unlock()
	cfg, err := d.spec.config()
	if err != nil {
		return nil, err
	}
	eng, err := buildEngine(d.spec)
	if err != nil {
		return nil, err
	}
	img, err := os.ReadFile(filepath.Join(d.dir, ckptFile))
	if err == nil {
		if err := eng.RestoreCheckpoint(img); err != nil {
			return nil, fmt.Errorf("serve: device %q: restoring checkpoint: %w", d.id, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	ckptWrites := eng.Writes()
	recs, err := readJournal(d.dir)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.after <= eng.Writes() {
			continue // already covered by the checkpoint
		}
		if rec.isAddrs {
			for _, a := range rec.addrs {
				if !eng.WriteTagged(a, eng.Writes()) {
					break
				}
			}
		} else {
			eng.RunN(rec.after - eng.Writes())
		}
	}
	jl, err := openJournal(d.dir, !f.cfg.DisableSync)
	if err != nil {
		return nil, err
	}
	res := &resident{
		d: d, eng: eng, jl: jl, vblocks: cfg.Blocks,
		sinceCkpt: eng.Writes() - ckptWrites,
	}
	// Take disk ownership before releasing diskMu, so a pending spill
	// of the evicted predecessor observes the handover no matter how
	// its lock acquisition interleaves with this reload.
	f.mu.Lock()
	d.cur = res
	f.mu.Unlock()
	return res, nil
}
