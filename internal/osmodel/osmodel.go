// Package osmodel models the only operating-system behaviour WL-Reviver
// relies on (paper §III-A): when the memory reports an access error, the
// OS discontinues use of the page associated with the error, relocating
// the page's live data elsewhere. No other OS support is assumed — no
// explicit reservation calls, no new interrupt types.
//
// The model maintains a virtual→physical page table for the software's
// address space. Retiring a physical page remaps its virtual page onto a
// surviving donor page (the OS's recovery copy), shrinking
// software-usable capacity; the retired page's physical addresses become
// invisible to software, which is exactly the implicit reservation
// WL-Reviver exploits.
//
// A retirement bitmap — one bit per page, set at most once in the chip's
// lifetime — records which pages are out of use so the knowledge survives
// reboot (paper §III-A); it can be serialised and reloaded.
package osmodel

import (
	"fmt"

	"wlreviver/internal/obs"
)

// Relocation describes one block's OS-driven recovery copy when its page
// is retired: the data at OldPA is rewritten at NewPA.
type Relocation struct {
	OldPA uint64
	NewPA uint64
}

// Model is the OS page-management model. It addresses memory in blocks;
// a page is BlocksPerPage consecutive blocks (64 for 4 KB pages of 64 B
// blocks).
type Model struct {
	blocksPerPage uint64 // ckpt:skip construction-time geometry, fingerprinted by the engine
	numPages      uint64 // ckpt:skip construction-time geometry, validated on restore

	virtToPhys []uint32 // virtual page -> physical page
	retired    []bool
	retiredCnt uint64
	donorCur   uint64 // round-robin cursor for choosing donor pages

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; PageRetired probe
}

// New builds a model covering numBlocks blocks with pages of
// blocksPerPage blocks. numBlocks must be a multiple of blocksPerPage.
func New(numBlocks, blocksPerPage uint64) (*Model, error) {
	if blocksPerPage == 0 {
		return nil, fmt.Errorf("osmodel: blocksPerPage must be positive")
	}
	if numBlocks == 0 || numBlocks%blocksPerPage != 0 {
		return nil, fmt.Errorf("osmodel: numBlocks %d must be a positive multiple of page size %d",
			numBlocks, blocksPerPage)
	}
	numPages := numBlocks / blocksPerPage
	if numPages > 1<<32 {
		return nil, fmt.Errorf("osmodel: %d pages exceed the page-table width", numPages)
	}
	m := &Model{
		blocksPerPage: blocksPerPage,
		numPages:      numPages,
		virtToPhys:    make([]uint32, numPages),
		retired:       make([]bool, numPages),
	}
	for i := uint64(0); i < numPages; i++ {
		m.virtToPhys[i] = uint32(i)
	}
	return m, nil
}

// NumPages returns the total number of physical pages.
func (m *Model) NumPages() uint64 { return m.numPages }

// BlocksPerPage returns the page size in blocks.
func (m *Model) BlocksPerPage() uint64 { return m.blocksPerPage }

// Translate maps a virtual block address to the physical block address
// (PA) the software would issue. ok is false when the memory has no
// usable pages left.
func (m *Model) Translate(vblock uint64) (pa uint64, ok bool) {
	vpage := vblock / m.blocksPerPage
	if vpage >= m.numPages {
		panic(fmt.Sprintf("osmodel: virtual block %d out of range", vblock))
	}
	if m.retiredCnt == m.numPages {
		return 0, false
	}
	ppage := uint64(m.virtToPhys[vpage])
	return ppage*m.blocksPerPage + vblock%m.blocksPerPage, true
}

// PageOf returns the physical page containing block address pa.
func (m *Model) PageOf(pa uint64) uint64 { return pa / m.blocksPerPage }

// Retired reports whether the page containing pa has been retired.
func (m *Model) Retired(pa uint64) bool { return m.retired[m.PageOf(pa)] }

// RetiredPages returns the number of retired pages.
func (m *Model) RetiredPages() uint64 { return m.retiredCnt }

// UsablePages returns the number of pages still available to software.
func (m *Model) UsablePages() uint64 { return m.numPages - m.retiredCnt }

// UsableFraction returns UsablePages/NumPages, the paper's
// "software-usable space" metric denominator.
func (m *Model) UsableFraction() float64 {
	return float64(m.UsablePages()) / float64(m.numPages)
}

// ReportFailure is the memory-exception path: the OS retires the page
// containing pa, relocates its live data to a donor page, and never
// accesses the page again. It returns the PAs of the retired page (which
// thereby become implicitly reserved for the reporting layer) and the
// recovery copies the OS performs. Reporting a failure on an
// already-retired page is a caller bug and panics.
func (m *Model) ReportFailure(pa uint64) (reservedPAs []uint64, copies []Relocation) {
	page := m.PageOf(pa)
	if page >= m.numPages {
		panic(fmt.Sprintf("osmodel: PA %d out of range", pa))
	}
	if m.retired[page] {
		panic(fmt.Sprintf("osmodel: page %d already retired; software should not have accessed it", page))
	}
	m.retired[page] = true
	m.retiredCnt++
	if m.observer != nil {
		m.observer.PageRetired(page)
	}

	reservedPAs = make([]uint64, m.blocksPerPage)
	for i := uint64(0); i < m.blocksPerPage; i++ {
		reservedPAs[i] = page*m.blocksPerPage + i
	}

	if m.retiredCnt == m.numPages {
		return reservedPAs, nil // nowhere to relocate; memory exhausted
	}
	// Remap every virtual page currently backed by the retired physical
	// page (the original owner plus any pages folded onto it by earlier
	// retirements) to a single donor, and copy the data once.
	hadData := false
	var donor uint64
	for v := uint64(0); v < m.numPages; v++ {
		if uint64(m.virtToPhys[v]) != page {
			continue
		}
		if !hadData {
			hadData = true
			donor = m.pickDonor()
		}
		m.virtToPhys[v] = uint32(donor)
	}
	if !hadData {
		return reservedPAs, nil // page held no live data
	}
	copies = make([]Relocation, m.blocksPerPage)
	for i := uint64(0); i < m.blocksPerPage; i++ {
		copies[i] = Relocation{
			OldPA: page*m.blocksPerPage + i,
			NewPA: donor*m.blocksPerPage + i,
		}
	}
	return reservedPAs, copies
}

// pickDonor returns the next non-retired physical page in round-robin
// order. Requires at least one live page.
func (m *Model) pickDonor() uint64 {
	for {
		m.donorCur++
		if m.donorCur >= m.numPages {
			m.donorCur = 0
		}
		if !m.retired[m.donorCur] {
			return m.donorCur
		}
	}
}

// SetObserver attaches an event observer (nil detaches). PageRetired
// fires once per retirement in ReportFailure; LoadBitmap restores state
// silently (a reboot replays no events).
func (m *Model) SetObserver(o obs.Observer) { m.observer = o }

// Bitmap returns a copy of the retirement bitmap, one bit per page,
// little-endian within bytes. This is the structure WL-Reviver persists
// in PCM so a rebooted OS knows which pages are out of use.
func (m *Model) Bitmap() []byte {
	out := make([]byte, (m.numPages+7)/8)
	for p := uint64(0); p < m.numPages; p++ {
		if m.retired[p] {
			out[p/8] |= 1 << (p % 8)
		}
	}
	return out
}

// LoadBitmap restores retirement state from a bitmap produced by Bitmap,
// as the memory-diagnostics step of a reboot would. Virtual pages that
// pointed at retired pages are remapped to donors. It returns an error if
// the bitmap length does not match.
func (m *Model) LoadBitmap(bm []byte) error {
	if len(bm) != int((m.numPages+7)/8) {
		return fmt.Errorf("osmodel: bitmap length %d does not match %d pages", len(bm), m.numPages)
	}
	// Reset to identity, then retire marked pages.
	m.retiredCnt = 0
	for p := uint64(0); p < m.numPages; p++ {
		m.retired[p] = false
		m.virtToPhys[p] = uint32(p)
	}
	for p := uint64(0); p < m.numPages; p++ {
		if bm[p/8]&(1<<(p%8)) != 0 {
			m.retired[p] = true
			m.retiredCnt++
		}
	}
	if m.retiredCnt == m.numPages {
		return nil
	}
	// Virtual page p was identity-mapped to physical p; remap the ones
	// whose physical page is retired.
	for p := uint64(0); p < m.numPages; p++ {
		if m.retired[p] {
			m.virtToPhys[p] = uint32(m.pickDonor())
		}
	}
	return nil
}
