// Package bitset provides a flat, allocation-free bit vector used for
// per-block boolean state (dead blocks, materialized failure schedules,
// ECC dead flags) at device scale, where a []bool would cost 8x the
// memory and push useful data out of cache on the hot write path.
package bitset

import "math/bits"

// Bits is a bit vector backed by a []uint64; bit i lives in word i>>6.
// Length is fixed at construction (New); Test/Set/Clear panic on
// out-of-range indices exactly as a slice index would.
type Bits []uint64

// New returns a Bits able to hold n bits, all clear.
func New(n uint64) Bits { return make(Bits, (n+63)/64) }

// Test reports whether bit i is set.
func (b Bits) Test(i uint64) bool { return b[i>>6]>>(i&63)&1 != 0 }

// Set sets bit i.
func (b Bits) Set(i uint64) { b[i>>6] |= 1 << (i & 63) }

// Clear clears bit i.
func (b Bits) Clear(i uint64) { b[i>>6] &^= 1 << (i & 63) }

// Count returns the number of set bits.
func (b Bits) Count() uint64 {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return uint64(n)
}

// Words exposes the backing words for bulk serialization. The bit at
// index i is word i>>6, bit i&63; trailing pad bits are always zero as
// long as callers stay within the constructed length.
func (b Bits) Words() []uint64 { return b }
