package sim

import (
	"testing"

	"wlreviver/internal/trace"
)

// serialOnly hides a generator's NextBatch fast path, forcing the engine
// onto the one-Next-per-write baseline.
type serialOnly struct{ g trace.Generator }

func (s serialOnly) Name() string      { return s.g.Name() }
func (s serialOnly) NumBlocks() uint64 { return s.g.NumBlocks() }
func (s serialOnly) Next() uint64      { return s.g.Next() }

// fastpathConfig is a geometry small enough to push engines deep into the
// failure regime quickly: cell failures, page acquisitions and chain
// reductions all occur within a few hundred thousand writes.
func fastpathConfig() Config {
	cfg := DefaultConfig()
	cfg.Blocks = 1 << 10
	cfg.BlocksPerPage = 16
	cfg.CellsPerBlock = 64
	cfg.MeanEndurance = 500
	cfg.Seed = 21
	return cfg
}

func fastpathGen(t *testing.T, cfg Config) *trace.Weighted {
	t.Helper()
	gen, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: cfg.Blocks,
		TargetCoV: 2.0,
		Seed:      cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// compareEngines asserts two engines reached bit-identical end states.
func compareEngines(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	if a.Writes() != b.Writes() {
		t.Fatalf("%s: writes %d vs %d", label, a.Writes(), b.Writes())
	}
	if a.Stopped() != b.Stopped() {
		t.Fatalf("%s: stopped %v vs %v", label, a.Stopped(), b.Stopped())
	}
	if a.SurvivalRate() != b.SurvivalRate() {
		t.Fatalf("%s: survival %v vs %v", label, a.SurvivalRate(), b.SurvivalRate())
	}
	if a.UsableFraction() != b.UsableFraction() {
		t.Fatalf("%s: usable %v vs %v", label, a.UsableFraction(), b.UsableFraction())
	}
	if a.Device().Stats() != b.Device().Stats() {
		t.Fatalf("%s: device stats %+v vs %+v", label, a.Device().Stats(), b.Device().Stats())
	}
	aw, bw := a.Device().WearCounts(), b.Device().WearCounts()
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("%s: block %d wear %d vs %d", label, i, aw[i], bw[i])
		}
	}
}

// TestBatchedMatchesStepDriven pins the engine's batched address path to
// the Step-driven baseline: the same configuration run (a) through RunN
// with address prefetching, (b) through RunN with batching hidden, and
// (c) through a pure Step loop must end in identical states — deep into
// the failure regime, not just the healthy prefix.
func TestBatchedMatchesStepDriven(t *testing.T) {
	cfg := fastpathConfig()
	const writes = 400_000

	build := func(hideBatch bool) *Engine {
		gen := fastpathGen(t, cfg)
		var g trace.Generator = gen
		if hideBatch {
			g = serialOnly{g: gen}
		}
		e, err := NewEngine(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	batched := build(false)
	if batched.batchGen == nil {
		t.Fatal("engine did not adopt the generator's batch fast path")
	}
	hidden := build(true)
	if hidden.batchGen != nil {
		t.Fatal("serialOnly wrapper failed to hide NextBatch")
	}
	stepped := build(false)

	batched.RunN(writes)
	hidden.RunN(writes)
	var steps uint64
	for steps < writes && stepped.Step() {
		steps++
	}

	if batched.Device().DeadBlocks() == 0 {
		t.Fatal("run ended before any block died; failure paths not exercised")
	}
	compareEngines(t, "batched vs hidden-batch", batched, hidden)
	compareEngines(t, "batched vs step-driven", batched, stepped)
}

// TestStepRunNInterleavingCoherent checks Step and Run share the address
// prefetch buffer: interleaving them must reproduce a pure RunN stream.
func TestStepRunNInterleavingCoherent(t *testing.T) {
	cfg := fastpathConfig()
	const writes = 120_000

	pure, err := NewEngine(cfg, fastpathGen(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewEngine(cfg, fastpathGen(t, cfg))
	if err != nil {
		t.Fatal(err)
	}

	pure.RunN(writes)
	var done uint64
	for chunk := uint64(1); done < writes; chunk = chunk*3 + 7 {
		if done < writes && mixed.Step() {
			done++
		}
		n := chunk % 997
		if rem := writes - done; n > rem {
			n = rem
		}
		done += mixed.Run(n, nil)
		if mixed.Stopped() {
			break
		}
	}
	compareEngines(t, "pure RunN vs Step/Run mix", pure, mixed)
}

// BenchmarkEngineRunNFastPath measures the full optimized write loop —
// batched addresses, memoized randomization, horizon fast path,
// devirtualized dispatch — on the healthy steady state.
func BenchmarkEngineRunNFastPath(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MeanEndurance = 1e12 // stay in the failure-free regime
	gen, err := trace.NewWeighted(trace.WeightedConfig{
		NumBlocks: cfg.Blocks,
		TargetCoV: 2.0,
		Seed:      3,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	const batch = 1 << 12
	for i := 0; i < b.N; i += batch {
		n := uint64(batch)
		if rem := b.N - i; rem < batch {
			n = uint64(rem)
		}
		if e.RunN(n) != n {
			b.Fatal("engine stopped mid-bench")
		}
	}
}
