// Command wlvet runs the repository's determinism-invariant analyzers
// (internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	wlvet [-rules] [-json] [-summary] [packages]
//
// The package arguments are accepted for command-line symmetry with go
// vet ("go run ./cmd/wlvet ./..."), but the tool always analyzes whole
// directories: "./..." (or no argument) means the entire module, any
// other argument is a directory to analyze recursively.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. Findings
// print one per line as
//
//	path:line:col: message [rule]
//
// and can be silenced per site with `//lint:ignore <rule> <reason>` on
// the offending line or the line above. With -json each finding is one
// NDJSON object ({"file","line","col","rule","msg"}) on stdout instead,
// for problem matchers and editor integrations. With -summary a
// per-rule findings/suppressed table goes to stderr after the findings,
// including zero rows, so a green run still shows what was checked and
// how many sites are running on suppressions. scripts/verify.sh runs
// wlvet -summary between go vet and go build; see README.md "Static
// analysis".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wlreviver/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as NDJSON objects on stdout")
	summary := flag.Bool("summary", false, "print a per-rule findings/suppressed summary to stderr")
	flag.Parse()

	if *listRules {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-26s %s\n", r.Name(), r.Doc())
		}
		return
	}

	if err := run(flag.Args(), *jsonOut, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "wlvet:", err)
		os.Exit(2)
	}
}

// finding is the NDJSON shape of one diagnostic.
type finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func run(args []string, jsonOut, summary bool) error {
	roots := args
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var diags []analysis.Diagnostic
	total := map[string]analysis.RuleStats{}
	for _, root := range roots {
		dir, err := resolveRoot(root)
		if err != nil {
			return err
		}
		pkgs, err := analysis.Load(dir)
		if err != nil {
			return err
		}
		ds, stats := analysis.RunStats(pkgs, analysis.Rules())
		diags = append(diags, ds...)
		for name, s := range stats {
			t := total[name]
			t.Findings += s.Findings
			t.Suppressed += s.Suppressed
			total[name] = t
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if jsonOut {
			if err := enc.Encode(finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Msg: d.Msg,
			}); err != nil {
				return err
			}
		} else {
			fmt.Println(d)
		}
	}
	if summary {
		printSummary(total)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wlvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// printSummary writes the per-rule table to stderr, every rule on its
// own row (zeros included) so a clean run still shows coverage, plus
// any pseudo-rules (ignore-syntax, ckpt-annotation) that fired.
func printSummary(total map[string]analysis.RuleStats) {
	names := make([]string, 0, len(total))
	for name := range total {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "wlvet summary: %-26s %8s %10s\n", "rule", "findings", "suppressed")
	for _, name := range names {
		s := total[name]
		fmt.Fprintf(os.Stderr, "wlvet summary: %-26s %8d %10d\n", name, s.Findings, s.Suppressed)
	}
}

// resolveRoot maps a package-pattern-ish argument to a directory.
// "./..." means the module root, located by walking up from the working
// directory to the nearest go.mod; anything else is used as a directory
// after trimming a trailing "/..." wildcard.
func resolveRoot(arg string) (string, error) {
	if arg == "./..." || arg == "..." {
		return moduleRoot()
	}
	if len(arg) > 4 && arg[len(arg)-4:] == "/..." {
		arg = arg[:len(arg)-4]
	}
	info, err := os.Stat(arg)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return "", fmt.Errorf("%s: not a directory", arg)
	}
	return arg, nil
}

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
