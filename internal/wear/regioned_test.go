package wear_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"wlreviver/internal/obs"
	"wlreviver/internal/stats"
	"wlreviver/internal/wear"
	"wlreviver/internal/wear/conformance"
)

func newTestRegioned(t *testing.T, n, regions, period uint64) *wear.RegionedStartGap {
	t.Helper()
	s, err := wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
		NumPAs: n, Regions: regions, GapWritePeriod: period, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegionedConfigErrors(t *testing.T) {
	cases := []wear.RegionedStartGapConfig{
		{NumPAs: 0, Regions: 1, GapWritePeriod: 1},
		{NumPAs: 64, Regions: 0, GapWritePeriod: 1},
		{NumPAs: 65, Regions: 2, GapWritePeriod: 1}, // not divisible
		{NumPAs: 96, Regions: 2, GapWritePeriod: 1}, // region size 48 not pow2
		{NumPAs: 64, Regions: 2, GapWritePeriod: 0}, // no period
	}
	for i, c := range cases {
		if _, err := wear.NewRegionedStartGap(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	wrong := wear.Identity{Size: 32}
	if _, err := wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
		NumPAs: 64, Regions: 2, GapWritePeriod: 1, Randomizer: wrong,
	}); err == nil {
		t.Error("mismatched randomizer accepted")
	}
}

func TestRegionedGeometry(t *testing.T) {
	s := newTestRegioned(t, 64, 4, 2)
	if s.NumPAs() != 64 {
		t.Errorf("PAs = %d", s.NumPAs())
	}
	if s.NumDAs() != 68 { // one gap line per region
		t.Errorf("DAs = %d, want 68", s.NumDAs())
	}
	if s.Name() != "Start-Gap-4R" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestRegionedBijectionAndConsistency(t *testing.T) {
	s := newTestRegioned(t, 64, 4, 1)
	mem := conformance.NewShadowMem(s.NumDAs())
	conformance.FillThrough(s, mem)
	conformance.VerifyBijection(t, s, "initial")
	for step := 0; step < 600; step++ {
		s.NoteWrite(uint64(step*13)%64, mem.Mover())
		if step%37 == 0 {
			conformance.VerifyBijection(t, s, fmt.Sprintf("step %d", step))
			conformance.VerifyThrough(t, s, mem, fmt.Sprintf("step %d", step))
		}
	}
	conformance.VerifyThrough(t, s, mem, "final")
	if s.GapMoves() == 0 {
		t.Error("no gap ever moved")
	}
}

// Property: arbitrary write sequences keep the regioned mapping a
// data-preserving bijection.
func TestQuickRegionedConsistency(t *testing.T) {
	prop := func(pas []uint16) bool {
		s, err := wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
			NumPAs: 32, Regions: 2, GapWritePeriod: 1, Seed: 3,
		})
		if err != nil {
			return false
		}
		mem := conformance.NewShadowMem(s.NumDAs())
		conformance.FillThrough(s, mem)
		for _, p := range pas {
			s.NoteWrite(uint64(p)%32, mem.Mover())
		}
		for pa := uint64(0); pa < 32; pa++ {
			if mem.Data[s.Map(pa)] != conformance.Tag(pa) {
				return false
			}
			if back, ok := s.Inverse(s.Map(pa)); !ok || back != pa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// gapCounter tallies GapMoved events per region through the public
// observer hook.
type gapCounter struct {
	obs.Base
	moves map[int]int
}

func (c *gapCounter) GapMoved(region int, gapDA uint64) { c.moves[region]++ }

// Writes confined to one region must only move that region's gap.
func TestRegionedIndependentPacing(t *testing.T) {
	s := newTestRegioned(t, 64, 4, 4)
	counter := &gapCounter{moves: make(map[int]int)}
	s.SetObserver(counter)
	mem := conformance.NewShadowMem(s.NumDAs())
	conformance.FillThrough(s, mem)
	// All writes to PA 5: lands in one fixed region (static randomizer).
	for i := 0; i < 100; i++ {
		s.NoteWrite(5, mem.Mover())
	}
	if len(counter.moves) != 1 {
		t.Errorf("%d regions moved their gaps; writes went to one region only", len(counter.moves))
	}
	conformance.VerifyThrough(t, s, mem, "after confined writes")
}

// The regioned organisation must still level skewed traffic chip-wide
// (the chip-wide randomizer spreads hot addresses across regions).
func TestRegionedLevelsSkewedWrites(t *testing.T) {
	const n = 256
	s := newTestRegioned(t, n, 4, 10)
	wearCount := make([]uint64, s.NumDAs())
	mover := wear.FuncMover{MigrateFn: func(src, dst uint64) { wearCount[dst]++ }}
	for i := 0; i < 200000; i++ {
		pa := uint64(i) % 8
		wearCount[s.Map(pa)]++
		s.NoteWrite(pa, mover)
	}
	if cov := stats.CoVOfCounts(wearCount); cov > 3.0 {
		t.Errorf("wear CoV %.2f too high; regioned leveling ineffective", cov)
	}
}

func TestRegionedPanics(t *testing.T) {
	s := newTestRegioned(t, 32, 2, 1)
	for _, fn := range []func(){
		func() { s.Map(32) },
		func() { s.Inverse(s.NumDAs()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
