// Fixture: no-ckpt-map-order outside internal/ckpt — a function is
// serialization code when it takes a ckpt.Encoder, whatever its name;
// functions without one are out of scope even in the same file.
package pcm

import "wlreviver/internal/ckpt"

// Device is a stand-in stateful layer with a map-typed field for the
// selector heuristic to resolve.
type Device struct {
	remaps map[uint64]uint64
}

// SaveState feeds a map to the encoder in iteration order.
func (d *Device) SaveState(e *ckpt.Encoder) {
	for k, v := range d.remaps { // want no-ckpt-map-order "range over map in serialization code"
		e.U64(k)
		e.U64(v)
	}
}

// LoadState restores the remap table; ckpt-state-coverage pairs it with
// SaveState above and sees remaps covered on both sides.
func (d *Device) LoadState(dec *ckpt.Decoder) error {
	d.remaps = map[uint64]uint64{dec.U64(): dec.U64()}
	return nil
}

// Write is a stand-in engine mutator for the observer-purity fixture in
// internal/sim.
func (d *Device) Write(da uint64) { d.remaps[da] = da }

// SaveSorted is the fix: iterate the sorted key slice the ckpt helpers
// return. Ranging a slice never fires the rule.
func SaveSorted(e *ckpt.Encoder, m map[uint64]uint64) {
	for _, k := range ckpt.KeysU64(m) {
		e.U64(k)
		e.U64(m[k])
	}
}

// CountRemaps takes no encoder: not serialization code, out of scope.
func (d *Device) CountRemaps() int {
	n := 0
	for range d.remaps {
		n++
	}
	return n
}
