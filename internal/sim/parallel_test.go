package sim

import (
	"reflect"
	"testing"

	"wlreviver/internal/trace"
)

// Parallel fan-out must not change a single result: every engine owns
// its seed and shares nothing, so workers=4 must reproduce workers=1
// exactly. Run under -race this is also the concurrency workout for the
// job pool.
func TestParallelMatchesSerial(t *testing.T) {
	serial := TinyScale()
	serial.Workers = 1
	parallel := TinyScale()
	parallel.Workers = 4

	t.Run("fig5", func(t *testing.T) {
		t.Parallel()
		a, err := Fig5(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig5(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Fig5 diverged:\nserial:   %+v\nparallel: %+v", a.Rows, b.Rows)
		}
	})

	t.Run("fig6", func(t *testing.T) {
		t.Parallel()
		for _, w := range []string{"ocean", "mg"} {
			a, err := Fig6(serial, w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Fig6(parallel, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Curves, b.Curves) {
				t.Errorf("%s: curves diverged between workers=1 and workers=4", w)
			}
			if a.SimWrites != b.SimWrites {
				t.Errorf("%s: write accounting diverged: %d vs %d", w, a.SimWrites, b.SimWrites)
			}
		}
	})

	t.Run("table2", func(t *testing.T) {
		t.Parallel()
		a, err := Table2(serial, []string{"ocean", "mg"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Table2(parallel, []string{"ocean", "mg"})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("Table2 diverged between workers=1 and workers=4")
		}
	})
}

// The runCurve budget clamp: a budget that is not a multiple of the
// checkEvery batch must end the curve exactly at the budget, not up to
// checkEvery-1 writes past it.
func TestRunCurveRespectsBudgetExactly(t *testing.T) {
	s := TinyScale()
	cfg := s.config()
	cfg.MeanEndurance = 1e9 // indestructible: only the budget can stop the run
	gen, err := trace.NewUniform(cfg.Blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	budget := uint64(checkEvery*3 + 137) // deliberately off the batch grid
	if _, err := runCurve(e, nil, "clamp", survival, 0, budget, checkEvery); err != nil {
		t.Fatal(err)
	}
	if e.Writes() != budget {
		t.Errorf("engine serviced %d writes, budget was %d", e.Writes(), budget)
	}
}
