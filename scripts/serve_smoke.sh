#!/bin/sh
# serve_smoke.sh — wlserved crash-durability smoke (also: `make serve-smoke`).
#
# Proves the daemon's headline contract end to end, over real processes
# and real fsync: a fleet that is kill -9'd mid-run and restarted over
# its spill directory converges to the byte-identical per-device state
# of an uninterrupted run.
#
#   1. Reference: start wlserved, top 50 devices up to the target with
#      wlload, record every device's metrics and checkpoint hashes.
#   2. Crash: fresh spill dir, same traffic — but the daemon is
#      kill -9'd while wlload is mid-run. Restart it over the same
#      spill dir, re-run wlload (it tops surviving state up to the same
#      target), record the hashes.
#   3. The two statefiles must be byte-identical.
set -eu

cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-18436}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
DEVICES=50
TARGET=60000
LOAD_FLAGS="-addr $BASE -devices $DEVICES -target $TARGET -blocks 1024 -page-blocks 16 -concurrency 8"

WORK=$(mktemp -d)
DPID=""
cleanup() {
	[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building wlserved and wlload"
go build -o "$WORK/wlserved" ./cmd/wlserved
go build -o "$WORK/wlload" ./cmd/wlload

start_daemon() { # $1 = spill dir
	"$WORK/wlserved" -addr "$ADDR" -spill "$1" -max-resident 16 &
	DPID=$!
}

# wait_ready polls the daemon with a no-op wlload run (0-write top-up of
# device 0) until it answers, so the script needs no curl/wget.
wait_ready() {
	i=0
	until "$WORK/wlload" -addr "$BASE" -devices 1 -target 0 \
		-blocks 1024 -page-blocks 16 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "serve_smoke: daemon did not become ready" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== reference run (uninterrupted)"
start_daemon "$WORK/ref"
wait_ready
$WORK/wlload $LOAD_FLAGS -statefile "$WORK/ref.json"
kill "$DPID" && wait "$DPID" || true
DPID=""

echo "== crash run (kill -9 mid-load, restart, top up)"
start_daemon "$WORK/crash"
wait_ready
$WORK/wlload $LOAD_FLAGS >/dev/null 2>&1 &
LPID=$!
sleep 0.4
kill -9 "$DPID"
wait "$LPID" 2>/dev/null || true # wlload fails once the daemon is gone
DPID=""
start_daemon "$WORK/crash"
wait_ready
$WORK/wlload $LOAD_FLAGS -statefile "$WORK/crash.json"
kill "$DPID" && wait "$DPID" || true
DPID=""

echo "== comparing statefiles"
if ! cmp -s "$WORK/ref.json" "$WORK/crash.json"; then
	echo "serve_smoke: crash+restart state diverges from uninterrupted run" >&2
	diff -u "$WORK/ref.json" "$WORK/crash.json" >&2 || true
	exit 1
fi
echo "serve_smoke: $DEVICES devices byte-identical after kill -9 + restart"
