package sim

import "fmt"

// ParseLevelerKind maps a scheme's display name (the String() form:
// "SG", "SR", "SG-R", "WFR", "SW", "none") back to its LevelerKind. The
// empty string selects the DefaultConfig scheme, Start-Gap.
func ParseLevelerKind(s string) (LevelerKind, error) {
	switch s {
	case "":
		return LevelerStartGap, nil
	case "none":
		return LevelerNone, nil
	case "SG":
		return LevelerStartGap, nil
	case "SR":
		return LevelerSecurityRefresh, nil
	case "SG-R":
		return LevelerRegionedStartGap, nil
	case "WFR":
		return LevelerWoLFRaM, nil
	case "SW":
		return LevelerSoftWear, nil
	}
	return 0, fmt.Errorf("sim: unknown leveler %q (known: none, SG, SR, SG-R, WFR, SW): %w", s, ErrBadConfig)
}

// ParseProtectorKind maps a framework's display name ("WLR", "FREE-p",
// "LLS", "DRM", "none") back to its ProtectorKind. The empty string
// selects the DefaultConfig framework, WL-Reviver.
func ParseProtectorKind(s string) (ProtectorKind, error) {
	switch s {
	case "":
		return ProtectorWLReviver, nil
	case "none":
		return ProtectorNone, nil
	case "WLR":
		return ProtectorWLReviver, nil
	case "FREE-p":
		return ProtectorFREEp, nil
	case "LLS":
		return ProtectorLLS, nil
	case "DRM":
		return ProtectorDRM, nil
	}
	return 0, fmt.Errorf("sim: unknown protector %q (known: none, WLR, FREE-p, LLS, DRM): %w", s, ErrBadConfig)
}

// ParseECCKind maps a scheme's display name ("ECP6", "ECP1", "PAYG")
// back to its ECCKind. The empty string selects ECP6.
func ParseECCKind(s string) (ECCKind, error) {
	switch s {
	case "", "ECP6":
		return ECCECP6, nil
	case "ECP1":
		return ECCECP1, nil
	case "PAYG":
		return ECCPAYG, nil
	}
	return 0, fmt.Errorf("sim: unknown ECC %q (known: ECP6, ECP1, PAYG): %w", s, ErrBadConfig)
}
