package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Job is one self-contained unit of an experiment fan-out — typically
// "build one engine from its own config and seed and drive it to a stop
// condition". Run must own everything it touches (generator, engine,
// RNG state): jobs execute concurrently and the determinism guarantee of
// RunJobs rests on jobs sharing no mutable state. Every engine in this
// package already satisfies that — each carries its own seed, device and
// workload — which is what makes the experiments embarrassingly
// parallel.
type Job[T any] struct {
	// Name labels the job in error reports.
	Name string
	// Run produces the job's value and the number of simulated writes
	// (or workload draws) it serviced, for throughput accounting.
	Run func() (value T, writes uint64, err error)
}

// Result is one job's outcome, delivered in the job's submission slot
// regardless of completion order.
type Result[T any] struct {
	// Name echoes the job's name.
	Name string
	// Value is the job's product; the zero value when Err is set.
	Value T
	// Writes is the simulated write count the job reported.
	Writes uint64
	// Err is the job's failure, wrapped with its name.
	Err error
}

// RunJobs executes jobs on a pool of workers goroutines and returns the
// results in job order. workers <= 1 runs the jobs serially on the
// calling goroutine in submission order — exactly the legacy loop the
// experiments used. Because each job is deterministic given its own
// seed and shares nothing, the returned results are identical for every
// workers value; the parallel-vs-serial equivalence test enforces it.
func RunJobs[T any](jobs []Job[T], workers int) []Result[T] {
	results := make([]Result[T], len(jobs))
	if workers <= 1 || len(jobs) <= 1 {
		for i := range jobs {
			results[i] = runJob(jobs[i])
			if len(jobs) > 1 {
				// Return the finished job's engine (hundreds of MB at paper
				// scale) before the next one builds, keeping the process's
				// peak RSS at the single-job watermark.
				runtime.GC()
			}
		}
		return results
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job, folding its name into any error.
func runJob[T any](j Job[T]) Result[T] {
	r := Result[T]{Name: j.Name}
	r.Value, r.Writes, r.Err = j.Run()
	if r.Err != nil {
		r.Err = fmt.Errorf("%s: %w", j.Name, r.Err)
	}
	return r
}

// CollectJobs runs the jobs and returns just the values in job order,
// failing on the first job error (in job order, so which error surfaces
// does not depend on scheduling). TotalWrites sums the write counts.
func CollectJobs[T any](jobs []Job[T], workers int) (values []T, totalWrites uint64, err error) {
	results := RunJobs(jobs, workers)
	values = make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, 0, r.Err
		}
		values[i] = r.Value
		totalWrites += r.Writes
	}
	return values, totalWrites, nil
}
