package obs

import (
	"encoding/json"
	"testing"
)

// feed drives one fixed event stream into an observer.
func feed(o Observer) {
	for i := 0; i < 5; i++ {
		o.CellFailed(uint64(i), i+1)
	}
	o.BlockFailed(3, 900)
	o.BlockFailed(7, 1100)
	o.Revived(3, 40)
	o.RemapCacheHit(3)
	o.RemapCacheMiss(7)
	o.GapMoved(0, 12)
	o.RegionSwapped(1, 2)
	o.PageRetired(0)
	o.Snapshot(Snapshot{Writes: 100, AccessRatio: 1.5})
	o.Snapshot(Snapshot{Writes: 200, AccessRatio: 2.5})
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	feed(m)
	want := map[string]uint64{
		CounterCellFailed:     5,
		CounterBlockFailed:    2,
		CounterRevived:        1,
		CounterRemapCacheHit:  1,
		CounterRemapCacheMiss: 1,
		CounterGapMoved:       1,
		CounterRegionSwapped:  1,
		CounterPageRetired:    1,
		CounterSnapshots:      2,
	}
	got := m.Counters()
	for k, v := range want {
		if got[k] != v {
			t.Errorf("counter %s = %d, want %d", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d counters, want %d: %v", len(got), len(want), got)
	}
	if m.Counter(CounterBlockFailed) != 2 {
		t.Errorf("Counter(block_failed) = %d", m.Counter(CounterBlockFailed))
	}
}

func TestMetricsSnapshots(t *testing.T) {
	m := NewMetrics()
	if _, ok := m.LastSnapshot(); ok {
		t.Fatal("LastSnapshot on empty Metrics reported ok")
	}
	feed(m)
	snaps := m.Snapshots()
	if len(snaps) != 2 || snaps[0].Writes != 100 || snaps[1].Writes != 200 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	last, ok := m.LastSnapshot()
	if !ok || last.Writes != 200 {
		t.Fatalf("LastSnapshot = %+v, %v", last, ok)
	}
}

func TestMetricsReportDeterministic(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	feed(a)
	feed(b)
	ja, err := json.Marshal(a.Report())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("identical streams marshalled differently:\n%s\n%s", ja, jb)
	}
}

func TestReportSummaries(t *testing.T) {
	m := NewMetrics()
	feed(m)
	r := m.Report()
	if r.WearAtDeath == nil || r.WearAtDeath.Count != 2 {
		t.Fatalf("WearAtDeath = %+v", r.WearAtDeath)
	}
	if r.WearAtDeath.Min != 900 || r.WearAtDeath.Max != 1100 {
		t.Errorf("WearAtDeath range = [%g, %g]", r.WearAtDeath.Min, r.WearAtDeath.Max)
	}
	if r.WearAtDeathHist == nil || len(r.WearAtDeathHist.Counts) != 16 {
		t.Fatalf("WearAtDeathHist = %+v", r.WearAtDeathHist)
	}
	if r.AccessRatio == nil || r.AccessRatio.Count != 2 || r.AccessRatio.Mean != 2.0 {
		t.Fatalf("AccessRatio = %+v", r.AccessRatio)
	}
}

func TestReportEmptyMetrics(t *testing.T) {
	r := NewMetrics().Report()
	if r.WearAtDeath != nil || r.WearAtDeathHist != nil || r.AccessRatio != nil {
		t.Fatalf("empty Metrics produced summaries: %+v", r)
	}
	if len(r.Snapshots) != 0 {
		t.Fatalf("empty Metrics produced snapshots: %+v", r.Snapshots)
	}
}

func TestWearAtDeathHistogramDegenerate(t *testing.T) {
	m := NewMetrics()
	m.BlockFailed(1, 500)
	m.BlockFailed(2, 500)
	h := m.WearAtDeathHistogram(8)
	if h == nil || h.Total() != 2 {
		t.Fatalf("degenerate histogram = %+v", h)
	}
}

// TestBaseIsNoOp pins that Base satisfies Observer and does nothing, so
// user observers can embed it and override a subset of events.
func TestBaseIsNoOp(t *testing.T) {
	var o Observer = Base{}
	feed(o) // must not panic
}
