package wear

import (
	"testing"

	"wlreviver/internal/rng"
)

// TestTableMatchesFeistel pins the memoized permutation to the Feistel it
// was built from, forward and inverse, over the whole domain (including a
// non-power-of-two size that exercises cycle walking).
func TestTableMatchesFeistel(t *testing.T) {
	for _, n := range []uint64{1, 2, 97, 1 << 10, 1000} {
		f, err := NewFeistel(n, 4, 42+n)
		if err != nil {
			t.Fatal(err)
		}
		tab := Precompute(f)
		if _, ok := tab.(*Table); !ok {
			t.Fatalf("n=%d: Precompute did not memoize a Feistel", n)
		}
		if tab.N() != n {
			t.Fatalf("n=%d: table domain %d", n, tab.N())
		}
		for x := uint64(0); x < n; x++ {
			if got, want := tab.Map(x), f.Map(x); got != want {
				t.Fatalf("n=%d: Map(%d) = %d, want %d", n, x, got, want)
			}
			if got, want := tab.Inverse(x), f.Inverse(x); got != want {
				t.Fatalf("n=%d: Inverse(%d) = %d, want %d", n, x, got, want)
			}
		}
	}
}

// TestPrecomputePassthrough checks the cases Precompute declines.
func TestPrecomputePassthrough(t *testing.T) {
	if Precompute(nil) != nil {
		t.Error("nil should pass through")
	}
	id := Identity{Size: 8}
	if Precompute(id) != Randomizer(id) {
		t.Error("Identity should pass through")
	}
	f, _ := NewFeistel(64, 4, 1)
	tab := Precompute(f)
	if Precompute(tab) != tab {
		t.Error("an existing Table should pass through")
	}
}

// TestStartGapTableAcrossGapMoves drives a (table-backed) StartGap through
// several full rotations and checks every mapping against the Start-Gap
// algebra computed directly from the raw Feistel and the scheme's
// start/gap registers — the table must stay exact as the dynamic layer
// moves on top of it.
func TestStartGapTableAcrossGapMoves(t *testing.T) {
	const n = 257 // odd: exercises cycle walking in the reference Feistel
	raw, err := NewFeistel(n, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewStartGap(StartGapConfig{NumPAs: n, GapWritePeriod: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sg.rand.(*Table); !ok {
		t.Fatal("NewStartGap did not precompute its randomizer")
	}
	for move := 0; move < 3*(n+1); move++ {
		start, gap := sg.Start(), sg.GapDA()
		for pa := uint64(0); pa < n; pa++ {
			a := raw.Map(pa) + start
			if a >= n {
				a -= n
			}
			want := a
			if a >= gap {
				want = a + 1
			}
			if got := sg.Map(pa); got != want {
				t.Fatalf("move %d: Map(%d) = %d, want %d (start=%d gap=%d)",
					move, pa, got, want, start, gap)
			}
		}
		sg.ForceGapMove(NopMover{})
	}
}

// tableShadow is a minimal data-movement mirror for the internal table
// tests; the exported, full-featured harness lives in the conformance
// package (which package wear cannot import without a cycle).
type tableShadow struct{ data []uint64 }

func newTableShadow(l Leveler) *tableShadow {
	s := &tableShadow{data: make([]uint64, l.NumDAs())}
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		s.data[l.Map(pa)] = pa*2654435761 + 12345
	}
	return s
}

func (s *tableShadow) mover() Mover {
	return FuncMover{
		MigrateFn: func(src, dst uint64) { s.data[dst] = s.data[src] },
		SwapFn:    func(a, b uint64) { s.data[a], s.data[b] = s.data[b], s.data[a] },
	}
}

func (s *tableShadow) verify(t *testing.T, l Leveler, context string) {
	t.Helper()
	for pa := uint64(0); pa < l.NumPAs(); pa++ {
		if got, want := s.data[l.Map(pa)], pa*2654435761+12345; got != want {
			t.Fatalf("%s: PA %d reads %d, want %d", context, pa, got, want)
		}
	}
}

// TestSRRegionTableMatchesSlowMap steps a refresh region through several
// complete re-key rounds, checking the incrementally maintained table
// against the register-derived mapping for every address after every step.
func TestSRRegionTableMatchesSlowMap(t *testing.T) {
	const size = 64
	r := newSRRegion(size, rng.New(11))
	if r.tbl == nil {
		t.Fatal("region did not build its table")
	}
	noop := func(a, b uint64) {}
	check := func(step int) {
		for ra := uint64(0); ra < size; ra++ {
			if got, want := r.mapAddr(ra), r.mapSlow(ra); got != want {
				t.Fatalf("step %d (round %d, rp %d): mapAddr(%d) = %d, want %d",
					step, r.round, r.rp, ra, got, want)
			}
			if back := r.inverse(r.mapAddr(ra)); back != ra {
				t.Fatalf("step %d: inverse(map(%d)) = %d", step, ra, back)
			}
		}
	}
	check(0)
	for i := 1; i <= 6*size; i++ { // several rounds, including re-keys
		r.step(noop)
		check(i)
	}
	if r.round < 5 {
		t.Fatalf("only %d rounds completed; re-key path not exercised", r.round)
	}
}

// TestSecurityRefreshTableUnderWrites runs the full two-level scheme under
// a write stream with real swaps mirrored in shadow memory, re-checking
// data consistency (which routes through the memoized mapAddr) and that
// every region's table still matches its registers at the end.
func TestSecurityRefreshTableUnderWrites(t *testing.T) {
	s, err := NewSecurityRefresh(SecurityRefreshConfig{
		NumPAs:           256,
		InnerRegions:     4,
		OuterWritePeriod: 3,
		InnerWritePeriod: 5,
		Seed:             99,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newTableShadow(s)
	src := rng.New(5)
	for i := 0; i < 5000; i++ {
		s.NoteWrite(src.Uint64n(s.NumPAs()), m.mover())
	}
	m.verify(t, s, "after writes")
	regions := append([]*srRegion{s.outer}, s.inner...)
	for ri, r := range regions {
		for ra := uint64(0); ra < r.size; ra++ {
			if got, want := r.mapAddr(ra), r.mapSlow(ra); got != want {
				t.Fatalf("region %d: mapAddr(%d) = %d, want %d", ri, ra, got, want)
			}
		}
	}
}

// BenchmarkStartGapMapCached measures the memoized per-write Map — the
// hot path the table optimization targets.
func BenchmarkStartGapMapCached(b *testing.B) {
	const n = 1 << 16
	sg, err := NewStartGap(StartGapConfig{NumPAs: n, GapWritePeriod: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += sg.Map(uint64(i) & (n - 1))
	}
	benchSink = sink
}

// BenchmarkStartGapMapFeistel is the pre-memoization baseline: the same
// mapping computed through the raw Feistel each call.
func BenchmarkStartGapMapFeistel(b *testing.B) {
	const n = 1 << 16
	f, err := NewFeistel(n, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	sg := &StartGap{n: n, gap: n, rand: f, period: 100}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += sg.Map(uint64(i) & (n - 1))
	}
	benchSink = sink
}

var benchSink uint64
