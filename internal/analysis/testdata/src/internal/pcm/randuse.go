// Fixture: no-global-rand positives — the import itself and each
// top-level draw — plus a suppressed draw.
package pcm

import "math/rand" // want no-global-rand "import of math/rand"

// Noise draws from the process-global generator.
func Noise() float64 {
	return rand.Float64() // want no-global-rand "call to rand.Float64"
}

// Jitter draws twice; the second carries a justified suppression.
func Jitter() int {
	n := rand.Intn(8) // want no-global-rand "call to rand.Intn"
	//lint:ignore no-global-rand fixture demonstrates a justified suppression
	return n + rand.Intn(8)
}

// Burst launders Jitter's draw behind a helper: the base rule owns the
// draws inside Jitter, the transitive rule owns this call site.
func Burst() int {
	return 1 + Jitter() // want transitive-nondeterminism "call to Jitter transitively draws from math/rand"
}

// Sample records why one transitive draw is acceptable.
func Sample() float64 {
	//lint:ignore transitive-nondeterminism fixture demonstrates a justified suppression
	return Noise()
}
