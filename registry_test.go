package wlreviver

import (
	"reflect"
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	wantOrder := []string{"table1", "fig5", "fig6", "fig7", "fig8", "table2", "wolfram", "softwear", "attacks"}
	if got := ExperimentNames(); !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("ExperimentNames() = %v, want %v", got, wantOrder)
	}
	for _, e := range Experiments() {
		if e.Name == "" || e.Doc == "" || e.Run == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
	}
	if _, err := LookupExperiment("table1"); err != nil {
		t.Error(err)
	}
	_, err := LookupExperiment("fig9")
	if err == nil || !strings.Contains(err.Error(), "fig9") || !strings.Contains(err.Error(), "table2") {
		t.Errorf("unknown-experiment error should name the request and the known set: %v", err)
	}
}

// TestRegistryDrivesFacade pins that the preset functions dispatch
// through the registry and keep their concrete result types.
func TestRegistryDrivesFacade(t *testing.T) {
	s := TinyScale()
	direct, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := LookupExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if viaRegistry.String() != direct.String() {
		t.Error("registry and facade runs disagree")
	}
	if _, ok := viaRegistry.(*Table1Result); !ok {
		t.Errorf("registry returned %T, want *Table1Result", viaRegistry)
	}
}

// TestUnknownWorkloadRejectedUpfront pins the bugfix: per-workload
// experiments reject a bad workload name before running any engine, with
// an error listing the known benchmarks.
func TestUnknownWorkloadRejectedUpfront(t *testing.T) {
	s := TinyScale()
	for name, run := range map[string]func() error{
		"fig6":   func() error { _, err := Fig6(s, "nosuch"); return err },
		"fig7":   func() error { _, err := Fig7(s, "nosuch"); return err },
		"fig8":   func() error { _, err := Fig8(s, "nosuch"); return err },
		"table2": func() error { _, err := Table2(s, []string{"mg", "nosuch"}); return err },
	} {
		err := run()
		if err == nil {
			t.Errorf("%s accepted unknown workload", name)
			continue
		}
		if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "mg") {
			t.Errorf("%s error should name the bad workload and the known set: %v", name, err)
		}
	}
}
