// Package ckpt implements the simulator's checkpoint wire format: a
// versioned, deterministic binary encoding built from named sections,
// each framed with an explicit payload length and a CRC32 so corrupt or
// truncated files are rejected before any state is applied.
//
// Layout (all integers little-endian):
//
//	magic   "WLCK" (4 bytes)
//	version uint32
//	repeated sections:
//	    nameLen uint16
//	    name    nameLen bytes
//	    payLen  uint64
//	    payload payLen bytes
//	    crc32   uint32   (IEEE, over payload only)
//
// Sections appear in a fixed order chosen by the writer; the reader asks
// for each section by name and fails on any mismatch, so a reordered or
// spliced file cannot partially apply. Determinism rules: every field is
// written in declared order, and map contents must be emitted under a
// sorted key order (use KeysU64 / KeysString) — the no-ckpt-map-order
// wlvet rule enforces this for code in this package and in SaveState
// methods.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// ErrBadCheckpoint reports a checkpoint image that cannot be decoded:
// bad magic, wrong format version, CRC mismatch, truncation, or a
// section/field layout the reader did not expect. Every decode failure
// in this package wraps it, so callers can classify restore errors with
// errors.Is(err, ErrBadCheckpoint) instead of matching message text.
var ErrBadCheckpoint = errors.New("bad checkpoint image")

// Version is the on-disk format version. Bump it whenever any section's
// field layout changes; old files are then rejected up front instead of
// being misread (see EXPERIMENTS.md § Checkpoint format for the policy).
// Version 2: the device section switched to bitset/sparse-index failure
// tracking and the reviver section to the flat shadow-node arena.
const Version = 2

var magic = [4]byte{'W', 'L', 'C', 'K'}

// maxSectionName bounds section names; anything longer indicates a
// corrupt frame rather than a real section.
const maxSectionName = 256

// Encoder builds a checkpoint image in memory. Writes never fail;
// Finish returns the complete framed byte stream. Field-writing methods
// panic if called outside a Begin/End section pair — that is a
// programming error, not a runtime condition.
type Encoder struct {
	buf    []byte
	inSec  bool
	lenOff int // offset of the open section's payLen field
	payOff int // offset where the open section's payload starts
}

// NewEncoder returns an encoder with the magic and version header
// already written.
func NewEncoder() *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1024)}
	e.buf = append(e.buf, magic[:]...)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, Version)
	return e
}

// Begin opens a named section. Sections must not nest.
func (e *Encoder) Begin(name string) {
	if e.inSec {
		panic("ckpt: Begin inside an open section")
	}
	if len(name) == 0 || len(name) > maxSectionName {
		panic("ckpt: bad section name length")
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(name)))
	e.buf = append(e.buf, name...)
	e.lenOff = len(e.buf)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, 0) // patched in End
	e.payOff = len(e.buf)
	e.inSec = true
}

// End closes the open section, patching its length and appending the
// payload CRC.
func (e *Encoder) End() {
	if !e.inSec {
		panic("ckpt: End without Begin")
	}
	payload := e.buf[e.payOff:]
	binary.LittleEndian.PutUint64(e.buf[e.lenOff:], uint64(len(payload)))
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(payload))
	e.inSec = false
}

// Finish returns the completed checkpoint image.
func (e *Encoder) Finish() []byte {
	if e.inSec {
		panic("ckpt: Finish with an open section")
	}
	return e.buf
}

func (e *Encoder) need() {
	if !e.inSec {
		panic("ckpt: field write outside a section")
	}
}

// alloc extends the buffer by n bytes in one step and returns the region
// to fill. Bulk array writers stream elements straight into it, so a
// paper-scale section costs one (amortized) growth instead of per-element
// append checks and no intermediate []byte staging.
func (e *Encoder) alloc(n int) []byte {
	e.need()
	if cap(e.buf)-len(e.buf) < n {
		grown := make([]byte, len(e.buf), len(e.buf)+n+len(e.buf)/2)
		copy(grown, e.buf)
		e.buf = grown
	}
	off := len(e.buf)
	e.buf = e.buf[:off+n]
	return e.buf[off : off+n]
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.need(); e.buf = append(e.buf, v) }

// U16 writes a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.need(); e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.need(); e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.need(); e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 writes a signed integer as its two's-complement uint64 image.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	e.U8(b)
}

// F64 writes a float64 as its IEEE-754 bit image.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.need()
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s writes a count-prefixed []uint64.
func (e *Encoder) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	b := e.alloc(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], x)
	}
}

// U32s writes a count-prefixed []uint32.
func (e *Encoder) U32s(v []uint32) {
	e.U32(uint32(len(v)))
	b := e.alloc(4 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], x)
	}
}

// U16s writes a count-prefixed []uint16.
func (e *Encoder) U16s(v []uint16) {
	e.U32(uint32(len(v)))
	b := e.alloc(2 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint16(b[i*2:], x)
	}
}

// I32s writes a count-prefixed []int32.
func (e *Encoder) I32s(v []int32) {
	e.U32(uint32(len(v)))
	b := e.alloc(4 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
}

// F64s writes a count-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	b := e.alloc(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
}

// Bools writes a count-prefixed []bool, one byte per element.
func (e *Encoder) Bools(v []bool) {
	e.U32(uint32(len(v)))
	b := e.alloc(len(v))
	for i, x := range v {
		if x {
			b[i] = 1
		} else {
			b[i] = 0
		}
	}
}

// MapU64 writes a map[uint64]uint64 as a count followed by key/value
// pairs in ascending key order.
func (e *Encoder) MapU64(m map[uint64]uint64) {
	keys := KeysU64(m)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.U64(k)
		e.U64(m[k])
	}
}

// SetU64 writes a map[uint64]struct{} as a sorted count-prefixed key list.
func (e *Encoder) SetU64(m map[uint64]struct{}) {
	e.U64s(KeysU64(m))
}

// KeysU64 returns m's keys sorted ascending — the required iteration
// order for serializing any uint64-keyed map.
func KeysU64[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// KeysString returns m's keys sorted ascending — the required iteration
// order for serializing any string-keyed map.
func KeysString[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Decoder reads a checkpoint image section by section. All read methods
// share one sticky error: after the first failure every subsequent read
// returns the zero value, so callers can decode a full section and check
// Err once. A decoder never applies partial state itself — callers must
// check Err (or use the sim package's restore wrappers, which do) before
// trusting any decoded value.
type Decoder struct {
	buf     []byte
	off     int    // read position in buf (between sections)
	sec     []byte // payload of the open section
	secOff  int    // read position inside sec
	secName string
	err     error
}

// NewDecoder validates the header and returns a decoder positioned at
// the first section.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("ckpt: truncated header (%d bytes): %w", len(data), ErrBadCheckpoint)
	}
	if string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("ckpt: bad magic %q: %w", data[:4], ErrBadCheckpoint)
	}
	v := binary.LittleEndian.Uint32(data[4:])
	if v != Version {
		return nil, fmt.Errorf("ckpt: version %d, want %d: %w", v, Version, ErrBadCheckpoint)
	}
	return &Decoder{buf: data, off: 8}, nil
}

// fail records the first error, wrapping ErrBadCheckpoint.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format+": %w", append(args, ErrBadCheckpoint)...)
	}
}

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

// Section advances to the next section, which must have the given name.
// The previous section must have been fully consumed; the new section's
// CRC is verified before any field can be read.
func (d *Decoder) Section(name string) error {
	if d.err != nil {
		return d.err
	}
	if d.sec != nil && d.secOff != len(d.sec) {
		d.fail("section %q: %d bytes left unread", d.secName, len(d.sec)-d.secOff)
		return d.err
	}
	if d.off+2 > len(d.buf) {
		d.fail("truncated before section %q", name)
		return d.err
	}
	nameLen := int(binary.LittleEndian.Uint16(d.buf[d.off:]))
	d.off += 2
	if nameLen == 0 || nameLen > maxSectionName || d.off+nameLen > len(d.buf) {
		d.fail("bad section name frame before %q", name)
		return d.err
	}
	got := string(d.buf[d.off : d.off+nameLen])
	d.off += nameLen
	if got != name {
		d.fail("section %q, want %q", got, name)
		return d.err
	}
	if d.off+8 > len(d.buf) {
		d.fail("section %q: truncated length", name)
		return d.err
	}
	payLen := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	if payLen > uint64(len(d.buf)-d.off) {
		d.fail("section %q: payload length %d exceeds remaining %d", name, payLen, len(d.buf)-d.off)
		return d.err
	}
	payload := d.buf[d.off : d.off+int(payLen)]
	d.off += int(payLen)
	if d.off+4 > len(d.buf) {
		d.fail("section %q: truncated CRC", name)
		return d.err
	}
	want := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if got := crc32.ChecksumIEEE(payload); got != want {
		d.fail("section %q: CRC mismatch (got %08x, want %08x)", name, got, want)
		return d.err
	}
	d.sec, d.secOff, d.secName = payload, 0, name
	return nil
}

// SkipRest discards any unread bytes of the open section, so the next
// Section call succeeds. Used when a section's content is knowingly
// ignored (e.g. restoring without an observer attached).
func (d *Decoder) SkipRest() {
	if d.err == nil && d.sec != nil {
		d.secOff = len(d.sec)
	}
}

// Close verifies the whole image was consumed: no sticky error, the last
// section fully read, and no trailing sections or garbage bytes.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.sec != nil && d.secOff != len(d.sec) {
		d.fail("section %q: %d bytes left unread", d.secName, len(d.sec)-d.secOff)
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail("%d trailing bytes after last section", len(d.buf)-d.off)
		return d.err
	}
	return nil
}

// take returns n payload bytes, or nil after recording an error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.sec == nil {
		d.fail("field read outside a section")
		return nil
	}
	if n < 0 || d.secOff+n > len(d.sec) {
		d.fail("section %q: read of %d bytes overruns payload", d.secName, n)
		return nil
	}
	b := d.sec[d.secOff : d.secOff+n]
	d.secOff += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed integer written by Encoder.I64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("section %q: bad bool byte", d.secName)
		return false
	}
}

// F64 reads a float64 bit image.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	b := d.take(n)
	return string(b)
}

// count reads an element count and validates it against the bytes still
// available in the section at elemSize bytes per element — the guard
// that keeps a corrupt count from turning into a huge allocation.
func (d *Decoder) count(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > len(d.sec)-d.secOff {
		d.fail("section %q: count %d exceeds payload", d.secName, n)
		return 0
	}
	return n
}

// U64s reads a count-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	v := make([]uint64, n)
	d.u64sFill(v)
	return v
}

// U64sInto reads a count-prefixed []uint64 written by Encoder.U64s
// directly into dst, whose length must equal the stored count. Large
// restores (wear arrays, bitsets, chain arenas) decode in place with no
// transient slice.
func (d *Decoder) U64sInto(dst []uint64) {
	n := d.count(8)
	if d.err != nil {
		return
	}
	if n != len(dst) {
		d.fail("section %q: array count %d, want %d", d.secName, n, len(dst))
		return
	}
	d.u64sFill(dst)
}

func (d *Decoder) u64sFill(dst []uint64) {
	b := d.take(8 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
}

// U32s reads a count-prefixed []uint32.
func (d *Decoder) U32s() []uint32 {
	n := d.count(4)
	b := d.take(4 * n)
	if d.err != nil {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return v
}

// U16s reads a count-prefixed []uint16.
func (d *Decoder) U16s() []uint16 {
	n := d.count(2)
	b := d.take(2 * n)
	if d.err != nil {
		return nil
	}
	v := make([]uint16, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return v
}

// I32s reads a count-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.count(4)
	b := d.take(4 * n)
	if d.err != nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return v
}

// F64s reads a count-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.count(8)
	b := d.take(8 * n)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v
}

// Bools reads a count-prefixed []bool.
func (d *Decoder) Bools() []bool {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = d.Bool()
	}
	return v
}

// MapU64 reads a map written by Encoder.MapU64. Keys must be strictly
// ascending (the writer's sorted order); anything else is corruption.
func (d *Decoder) MapU64() map[uint64]uint64 {
	n := d.count(16)
	if d.err != nil {
		return nil
	}
	m := make(map[uint64]uint64, n)
	var prev uint64
	for i := 0; i < n; i++ {
		k := d.U64()
		v := d.U64()
		if d.err != nil {
			return nil
		}
		if i > 0 && k <= prev {
			d.fail("section %q: map keys out of order", d.secName)
			return nil
		}
		prev = k
		m[k] = v
	}
	return m
}

// SetU64 reads a set written by Encoder.SetU64.
func (d *Decoder) SetU64() map[uint64]struct{} {
	keys := d.U64s()
	if d.err != nil {
		return nil
	}
	m := make(map[uint64]struct{}, len(keys))
	for i, k := range keys {
		if i > 0 && k <= keys[i-1] {
			d.fail("section %q: set keys out of order", d.secName)
			return nil
		}
		m[k] = struct{}{}
	}
	return m
}
