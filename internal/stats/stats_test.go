package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"wlreviver/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d, want 8", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Variance(), 4, 1e-12) {
		t.Errorf("variance = %v, want 4", w.Variance())
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Errorf("stddev = %v, want 2", w.StdDev())
	}
	if !almostEqual(w.CoV(), 0.4, 1e-12) {
		t.Errorf("cov = %v, want 0.4", w.CoV())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CoV() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single observation: mean 42, variance 0")
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.Mean() != b.Mean() || a.Variance() != b.Variance() || a.Count() != b.Count() {
		t.Error("AddN(x,5) differs from five Add(x)")
	}
}

func TestWelfordMerge(t *testing.T) {
	data := []float64{1, 5, 2, 8, 9, 3, 3, 7, 0, 4}
	var whole, left, right Welford
	for i, x := range data {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", left.Count(), whole.Count())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("merged mean %v != %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %v != %v", left.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	saved := a
	a.Merge(b) // merging empty is a no-op
	if a != saved {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b != saved {
		t.Error("merging into empty did not copy")
	}
}

// Property: Welford matches the two-pass computation on random data.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	r := rng.New(1)
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		var w Welford
		for i := range xs {
			xs[i] = r.Float64() * 100
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(m)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Variance(), ss/float64(m), 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoVOfCounts(t *testing.T) {
	if got := CoVOfCounts([]uint64{5, 5, 5, 5}); got != 0 {
		t.Errorf("uniform counts CoV = %v, want 0", got)
	}
	got := CoVOfCounts([]uint64{0, 10})
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("CoV of {0,10} = %v, want 1", got)
	}
	if CoVOfCounts(nil) != 0 {
		t.Error("empty counts should give 0")
	}
}

func TestMeanOfCounts(t *testing.T) {
	if MeanOfCounts(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := MeanOfCounts([]uint64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// input not modified
	if !sort.Float64sAreSorted([]float64{15, 20, 35, 40, 50}) {
		t.Fatal("sanity")
	}
	if math.IsNaN(Percentile(nil, 50)) == false {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first
	h.Add(99) // clamps to last
	counts := h.Counts()
	if counts[0] != 2 || counts[9] != 2 {
		t.Errorf("clamping failed: %v", counts)
	}
	if h.Total() != 12 {
		t.Errorf("total = %d, want 12", h.Total())
	}
	if c := h.BucketCenter(0); !almostEqual(c, 0.5, 1e-12) {
		t.Errorf("bucket 0 center = %v", c)
	}
	q := h.Quantile(0.5)
	if q < 3 || q > 7 {
		t.Errorf("median estimate %v implausible", q)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
}

func TestCurveYAt(t *testing.T) {
	var c Curve
	c.Append(0, 100)
	c.Append(10, 50)
	c.Append(20, 0)
	cases := []struct{ x, want float64 }{
		{-5, 100}, {0, 100}, {5, 75}, {10, 50}, {15, 25}, {20, 0}, {30, 0},
	}
	for _, cs := range cases {
		if got := c.YAt(cs.x); !almostEqual(got, cs.want, 1e-9) {
			t.Errorf("YAt(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
	var empty Curve
	if !math.IsNaN(empty.YAt(1)) {
		t.Error("empty curve YAt should be NaN")
	}
}

func TestCurveXWhereYFallsTo(t *testing.T) {
	var c Curve
	c.Append(0, 100)
	c.Append(10, 80)
	c.Append(20, 60)
	if x, ok := c.XWhereYFallsTo(70); !ok || x != 20 {
		t.Errorf("fall to 70: got (%v,%v), want (20,true)", x, ok)
	}
	if _, ok := c.XWhereYFallsTo(10); ok {
		t.Error("should never fall to 10")
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(10)
	if !s.Due(0) {
		t.Fatal("sampler should fire at 0")
	}
	if s.Due(5) {
		t.Fatal("should not fire at 5")
	}
	if !s.Due(10) {
		t.Fatal("should fire at 10")
	}
	if !s.Due(35) { // skips ahead past gaps
		t.Fatal("should fire at 35")
	}
	if s.Due(39) {
		t.Fatal("should not fire again before 40")
	}
	if !s.Due(40) {
		t.Fatal("should fire at 40")
	}
}

func TestSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(0)
}
