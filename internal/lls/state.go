package lls

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the protector's mutable state: each salvaging
// group's failed/backup pairing, the backup allocation cursor and the
// counters.
func (l *LLS) SaveState(e *ckpt.Encoder) {
	e.U32(uint32(len(l.groups)))
	for _, g := range l.groups {
		e.U64s(g.failed)
		e.U64s(g.backups)
	}
	e.U64(l.nextBackup)
	e.U64(l.st.SoftwareWrites)
	e.U64(l.st.SoftwareReads)
	e.U64(l.st.RequestAccesses)
	e.U64(l.st.ChunksReserved)
	e.U64(l.st.ShiftWrites)
	e.U64(l.st.Failures)
	e.Bool(l.st.Exposed)
}

// LoadState restores state written by SaveState into a protector built
// over the identical layer stack.
func (l *LLS) LoadState(dec *ckpt.Decoder) error {
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(l.groups) {
		return fmt.Errorf("lls: checkpoint has %d groups, protector has %d", n, len(l.groups))
	}
	groups := make([]group, n)
	for i := range groups {
		// No pairing-length invariant holds here: groups stripe idle
		// backups ahead of need, and backups that themselves fail (or an
		// exhausted backup region) can leave failures outnumbering live
		// backups.
		groups[i].failed = dec.U64s()
		groups[i].backups = dec.U64s()
		if dec.Err() != nil {
			return dec.Err()
		}
	}
	nextBackup := dec.U64()
	var st Stats
	st.SoftwareWrites = dec.U64()
	st.SoftwareReads = dec.U64()
	st.RequestAccesses = dec.U64()
	st.ChunksReserved = dec.U64()
	st.ShiftWrites = dec.U64()
	st.Failures = dec.U64()
	st.Exposed = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	l.groups = groups
	l.nextBackup = nextBackup
	l.st = st
	return nil
}
