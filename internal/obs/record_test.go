package obs

import (
	"fmt"
	"testing"
)

// logObserver renders each delivered event as one line, so replay tests
// can compare exact sequences.
type logObserver struct {
	Base
	lines []string
}

func (l *logObserver) BlockFailed(da, wear uint64)   { l.add("block %d %d", da, wear) }
func (l *logObserver) CellFailed(da uint64, n int)   { l.add("cell %d %d", da, n) }
func (l *logObserver) Revived(da, shadow uint64)     { l.add("revived %d %d", da, shadow) }
func (l *logObserver) RemapCacheHit(key uint64)      { l.add("hit %d", key) }
func (l *logObserver) RemapCacheMiss(key uint64)     { l.add("miss %d", key) }
func (l *logObserver) GapMoved(region int, g uint64) { l.add("gap %d %d", region, g) }
func (l *logObserver) RegionSwapped(a, b uint64)     { l.add("swap %d %d", a, b) }
func (l *logObserver) DecoderRemapped(a, b uint64)   { l.add("remap %d %d", a, b) }
func (l *logObserver) PageRelocated(o, n uint64)     { l.add("reloc %d %d", o, n) }
func (l *logObserver) PageRetired(page uint64)       { l.add("retired %d", page) }
func (l *logObserver) Snapshot(s Snapshot)           { l.add("snap %d", s.Writes) }

func (l *logObserver) add(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// TestRecorderReplayRebases drives one of each event through a Recorder
// and checks the replayed stream: recording order preserved, device
// addresses, pages and regions shifted by the rebase offsets, snapshots
// and wear counts passed through untouched.
func TestRecorderReplayRebases(t *testing.T) {
	r := &Recorder{}
	r.BlockFailed(3, 99)
	r.CellFailed(4, 7)
	r.Revived(5, 6)
	r.RemapCacheHit(8)
	r.RemapCacheMiss(9)
	r.GapMoved(1, 10)
	r.RegionSwapped(11, 12)
	r.DecoderRemapped(13, 14)
	r.PageRelocated(3, 5)
	r.PageRetired(2)
	r.Snapshot(Snapshot{Writes: 1234})
	if r.Len() != 11 {
		t.Fatalf("Len() = %d, want 11", r.Len())
	}

	var got logObserver
	r.Replay(&got, Rebase{DA: 100, Page: 20, Region: 4})
	want := []string{
		"block 103 99",
		"cell 104 7",
		"revived 105 106",
		"hit 108",
		"miss 109",
		"gap 5 110",
		"swap 111 112",
		"remap 113 114",
		"reloc 23 25",
		"retired 22",
		"snap 1234",
	}
	if len(got.lines) != len(want) {
		t.Fatalf("replayed %d events, want %d: %v", len(got.lines), len(want), got.lines)
	}
	for i := range want {
		if got.lines[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, got.lines[i], want[i])
		}
	}

	// Replay leaves the buffer intact; Reset empties it.
	if r.Len() != 11 {
		t.Fatalf("Replay consumed the buffer: Len() = %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Reset left %d events", r.Len())
	}
	var after logObserver
	r.Replay(&after, Rebase{})
	if len(after.lines) != 0 {
		t.Fatalf("replay after Reset delivered %v", after.lines)
	}
}

// TestRecorderZeroRebase: a zero Rebase is the identity, so a Recorder
// inserted between a layer and its observer is invisible.
func TestRecorderZeroRebase(t *testing.T) {
	r := &Recorder{}
	var direct, relayed logObserver
	feed := func(o Observer) {
		o.BlockFailed(1, 2)
		o.GapMoved(0, 3)
		o.PageRetired(4)
	}
	feed(&direct)
	feed(r)
	r.Replay(&relayed, Rebase{})
	if len(direct.lines) != len(relayed.lines) {
		t.Fatalf("relayed %d events, want %d", len(relayed.lines), len(direct.lines))
	}
	for i := range direct.lines {
		if direct.lines[i] != relayed.lines[i] {
			t.Errorf("event %d = %q, want %q", i, relayed.lines[i], direct.lines[i])
		}
	}
}
