package trace

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// saveSource writes one rng.Source's four state words.
func saveSource(e *ckpt.Encoder, s [4]uint64) {
	for _, w := range s {
		e.U64(w)
	}
}

// loadSource reads four state words written by saveSource.
func loadSource(dec *ckpt.Decoder) [4]uint64 {
	var s [4]uint64
	for i := range s {
		s[i] = dec.U64()
	}
	return s
}

// SaveState serializes the workload's stream position: the sampling RNG
// and the alias sampler's RNG. The weight field and alias tables are
// deterministic functions of the configuration and are rebuilt on
// construction.
func (w *Weighted) SaveState(e *ckpt.Encoder) {
	saveSource(e, w.src.State())
	saveSource(e, w.alias.src.State())
}

// LoadState restores state written by SaveState into a workload built
// from the identical configuration.
func (w *Weighted) LoadState(dec *ckpt.Decoder) error {
	src := loadSource(dec)
	asrc := loadSource(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	w.src.SetState(src)
	w.alias.src.SetState(asrc)
	return nil
}

// SaveState serializes the uniform workload's RNG position.
func (u *Uniform) SaveState(e *ckpt.Encoder) {
	saveSource(e, u.src.State())
}

// LoadState restores state written by SaveState.
func (u *Uniform) LoadState(dec *ckpt.Decoder) error {
	src := loadSource(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	u.src.SetState(src)
	return nil
}

// SaveState serializes the hammer's round-robin cursor.
func (h *Hammer) SaveState(e *ckpt.Encoder) {
	e.I64(int64(h.pos))
}

// LoadState restores state written by SaveState.
func (h *Hammer) LoadState(dec *ckpt.Decoder) error {
	pos := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= int64(len(h.addrs)) {
		return fmt.Errorf("trace: hammer checkpoint cursor %d out of range", pos)
	}
	h.pos = int(pos)
	return nil
}

// SaveState serializes the attack's RNG, current address set and
// position within the burst.
func (b *BirthdayParadox) SaveState(e *ckpt.Encoder) {
	saveSource(e, b.src.State())
	e.U64s(b.set)
	e.U64(b.left)
	e.I64(int64(b.pos))
}

// LoadState restores state written by SaveState into an attack built
// from the identical configuration.
func (b *BirthdayParadox) LoadState(dec *ckpt.Decoder) error {
	src := loadSource(dec)
	set := dec.U64s()
	left := dec.U64()
	pos := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(set) != len(b.set) || left > b.burst || pos < 0 || pos >= int64(len(b.set)) {
		return fmt.Errorf("trace: birthday checkpoint state out of range")
	}
	copy(b.set, set)
	b.src.SetState(src)
	b.left = left
	b.pos = int(pos)
	return nil
}

// SaveState serializes the replay cursor. The records themselves come
// from the trace file the workload was built from.
func (r *Replay) SaveState(e *ckpt.Encoder) {
	e.I64(int64(r.pos))
}

// LoadState restores state written by SaveState.
func (r *Replay) LoadState(dec *ckpt.Decoder) error {
	pos := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= int64(len(r.records)) {
		return fmt.Errorf("trace: replay checkpoint cursor %d out of range", pos)
	}
	r.pos = int(pos)
	return nil
}
