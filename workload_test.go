package wlreviver

import (
	"errors"
	"strings"
	"testing"
)

// drain pulls n addresses from a workload.
func drain(t *testing.T, w Workload, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// TestWorkloadSpecDeterministic pins the redesigned construction
// contract: the same WorkloadSpec always yields the exact same address
// stream, across every generator family.
func TestWorkloadSpecDeterministic(t *testing.T) {
	const n = 2048
	cases := []struct {
		name string
		spec WorkloadSpec
	}{
		{"uniform", WorkloadSpec{Kind: WorkloadUniform, Blocks: 256, Seed: 7}},
		{"benchmark", WorkloadSpec{Kind: "mg", Blocks: 256, PageBlocks: 16, Seed: 7}},
		{"skewed", WorkloadSpec{Kind: WorkloadSkewed, Blocks: 256, PageBlocks: 16, CoV: 4, Seed: 7}},
		{"hammer", WorkloadSpec{Kind: WorkloadHammer, Blocks: 256, Targets: []uint64{3, 5, 9}}},
		{"birthday", WorkloadSpec{Kind: WorkloadBirthday, Blocks: 256, SetSize: 8, Burst: 100, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first, err := NewWorkload(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			second, err := NewWorkload(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			a, b := drain(t, first, n), drain(t, second, n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("streams diverge at write %d: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	_, err := NewWorkload(WorkloadSpec{Blocks: 64})
	if err == nil || !strings.Contains(err.Error(), "Kind is required") {
		t.Errorf("empty kind: %v", err)
	}
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("empty kind should wrap ErrUnknownWorkload, got %v", err)
	}
	_, err = NewWorkload(WorkloadSpec{Kind: "nosuch", Blocks: 64})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown kind should wrap ErrUnknownWorkload, got %v", err)
	}
	for _, want := range []string{"nosuch", WorkloadUniform, "mg"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-kind error %q should mention %q", err, want)
		}
	}
}
