package analysis

import "go/ast"

// wallclockFuncs are the package-time functions whose result (or
// behaviour) depends on the wall clock. Any of them in simulation code
// makes output depend on the machine and the moment, breaking the
// byte-identical-across-runs guarantee.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallclock bans wall-clock reads (time.Now, time.Since, ...)
// everywhere except cmd/ (where drivers time experiments for humans)
// and _test.go files (benchmarks measure real time by design). The
// simulator has its own notion of time — the write counter — and every
// figure must be reproducible from a seed alone.
type NoWallclock struct{}

// Name implements Rule.
func (*NoWallclock) Name() string { return "no-wallclock" }

// Doc implements Rule.
func (*NoWallclock) Doc() string {
	return "time.Now/time.Since and friends are banned outside cmd/ and _test.go files"
}

// Check implements Rule.
func (*NoWallclock) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.In("cmd") || f.IsTest() {
		return
	}
	timeName, ok := f.ImportName("time")
	if !ok {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !wallclockFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && id.Obj == nil {
			report(sel, "wall-clock call time.%s: simulation code must be deterministic; time experiments in cmd/ or a benchmark instead", sel.Sel.Name)
		}
		return true
	})
}
