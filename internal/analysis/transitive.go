package analysis

import (
	"go/ast"
	"go/types"
)

// TransitiveNondeterminism extends no-wallclock and no-global-rand
// through one package's call graph: a helper that wraps time.Now or a
// math/rand draw taints every same-package function that reaches it,
// and each call to a tainted function is flagged with a witness chain
// (caller -> helper -> time.Now). The direct use is the base rules'
// finding; this rule makes sure wrapping it in a helper does not
// launder it — a //lint:ignore on the helper justifies that one site,
// not the callers. Scoping matches the base rules: wall-clock taint is
// reported outside cmd/, rand taint inside internal/, never in tests.
type TransitiveNondeterminism struct {
	cache map[*Package]*taintSets
}

// taintSets maps each tainted function to a human-readable witness
// chain ending at the nondeterministic call.
type taintSets struct {
	wall map[*types.Func]string
	rand map[*types.Func]string
}

// Name implements Rule.
func (*TransitiveNondeterminism) Name() string { return "transitive-nondeterminism" }

// Doc implements Rule.
func (*TransitiveNondeterminism) Doc() string {
	return "calls to same-package helpers that transitively reach time.Now or math/rand are flagged like direct uses"
}

// Check implements Rule.
func (r *TransitiveNondeterminism) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.IsTest() {
		return
	}
	wallScope := !f.In("cmd")
	randScope := f.In("internal")
	if !wallScope && !randScope {
		return
	}
	tpkg, info := f.Pkg.TypeInfo()
	if tpkg == nil || info == nil {
		return
	}
	taint := r.taintFor(f.Pkg, tpkg, info)
	if len(taint.wall) == 0 && len(taint.rand) == 0 {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := localCallee(call, info, tpkg)
		if callee == nil {
			return true
		}
		if chain, ok := taint.wall[callee]; ok && wallScope {
			report(call, "call to %s transitively reads the wall clock (%s): simulation code must be deterministic", callee.Name(), chain)
		}
		if chain, ok := taint.rand[callee]; ok && randScope {
			report(call, "call to %s transitively draws from math/rand (%s): use a seeded *rng.Source", callee.Name(), chain)
		}
		return true
	})
}

// taintFor computes (and memoizes per package) which functions reach a
// wall-clock read or a global rand draw.
func (r *TransitiveNondeterminism) taintFor(pkg *Package, tpkg *types.Package, info *types.Info) *taintSets {
	if r.cache == nil {
		r.cache = map[*Package]*taintSets{}
	}
	if t, ok := r.cache[pkg]; ok {
		return t
	}
	t := &taintSets{wall: map[*types.Func]string{}, rand: map[*types.Func]string{}}
	r.cache[pkg] = t

	// Seed order follows the (sorted) file walk so witness chains are
	// deterministic when a caller reaches several seeds.
	var wallOrder, randOrder []*types.Func
	callers := map[*types.Func][]*types.Func{} // callee -> callers
	for _, f := range pkg.Files {
		if f.IsTest() {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := localCallee(call, info, tpkg); callee != nil {
					callers[callee] = append(callers[callee], fn)
					return true
				}
				// Direct nondeterministic call: seed the taint.
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := unparen(sel.X).(*ast.Ident); ok {
						if pn, ok := info.Uses[id].(*types.PkgName); ok {
							path := pn.Imported().Path()
							if path == "time" && wallclockFuncs[sel.Sel.Name] {
								if _, seen := t.wall[fn]; !seen {
									t.wall[fn] = fn.Name() + " -> time." + sel.Sel.Name
									wallOrder = append(wallOrder, fn)
								}
							}
							for _, rp := range randPkgs {
								if path == rp {
									if _, seen := t.rand[fn]; !seen {
										t.rand[fn] = fn.Name() + " -> " + pn.Name() + "." + sel.Sel.Name
										randOrder = append(randOrder, fn)
									}
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	// Propagate taint from the seeds up through the callers.
	for i, set := range []map[*types.Func]string{t.wall, t.rand} {
		queue := wallOrder
		if i == 1 {
			queue = randOrder
		}
		for len(queue) > 0 {
			callee := queue[0]
			queue = queue[1:]
			for _, caller := range callers[callee] {
				if _, seen := set[caller]; seen || caller == callee {
					continue
				}
				set[caller] = caller.Name() + " -> " + set[callee]
				queue = append(queue, caller)
			}
		}
	}
	return t
}

// localCallee resolves a call to a function or method defined in the
// same package; calls into other packages (including the seeds' own
// time./rand. calls) return nil.
func localCallee(call *ast.CallExpr, info *types.Info, tpkg *types.Package) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && fn.Pkg() == tpkg {
			return fn
		}
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() == tpkg {
				return fn
			}
		}
	}
	return nil
}
