package mc

import (
	"testing"

	"wlreviver/internal/ecc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

func newBackend(t *testing.T, blocks uint64, endurance float64) *Backend {
	t.Helper()
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 3, TrackContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ecc.NewECP(6, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return &Backend{Dev: dev, ECC: e}
}

func TestBackendWriteRawHealthy(t *testing.T) {
	be := newBackend(t, 8, 1e9)
	for i := 0; i < 100; i++ {
		if !be.WriteRaw(3) {
			t.Fatal("healthy write failed")
		}
	}
	if be.Dead(3) {
		t.Fatal("block should be alive")
	}
	be.ReadRaw(3)
	if be.Dev.Stats().Reads != 1 {
		t.Error("read not counted")
	}
}

func TestBackendDeclaresDeath(t *testing.T) {
	be := newBackend(t, 4, 100)
	died := false
	for i := 0; i < 5000; i++ {
		if !be.WriteRaw(0) {
			died = true
			break
		}
	}
	if !died {
		t.Fatal("block never died at 50x endurance")
	}
	if !be.Dead(0) {
		t.Fatal("device not marked dead")
	}
	// Writes to a dead block keep failing but still wear.
	w := be.Dev.Wear(0)
	if be.WriteRaw(0) {
		t.Error("write to dead block should fail")
	}
	if be.Dev.Wear(0) != w+1 {
		t.Error("failed write should still wear")
	}
}

func TestPassthroughHealthyPath(t *testing.T) {
	be := newBackend(t, 64, 1e9)
	osm, _ := osmodel.New(64, 16)
	lv := wear.Static{Size: 64}
	p := NewPassthrough(lv, be, osm)
	if p.Name() != "none" {
		t.Errorf("name = %q", p.Name())
	}
	res := p.Write(5, 42)
	if res.Retry || res.Accesses != 1 {
		t.Errorf("healthy write: %+v", res)
	}
	tag, acc := p.Read(5)
	if tag != 42 || acc != 1 {
		t.Errorf("read = (%d,%d), want (42,1)", tag, acc)
	}
	if p.Crippled() {
		t.Error("no failure yet")
	}
	if p.ResumePending() != 0 {
		t.Error("nothing pends")
	}
	if got := p.RequestAccessRatio(); got != 1 {
		t.Errorf("access ratio = %v, want 1", got)
	}
	if got := p.SoftwareUsableFraction(); got != 1 {
		t.Errorf("usable = %v, want 1", got)
	}
}

func TestPassthroughCripplesOnFailure(t *testing.T) {
	be := newBackend(t, 65, 200)
	osm, _ := osmodel.New(64, 16)
	lv, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 64, GapWritePeriod: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPassthrough(lv, be, osm)
	crippledAt := uint64(0)
	for i := 0; i < 200000; i++ {
		pa, ok := osm.Translate(uint64(i) % 64)
		if !ok {
			break
		}
		res := p.Write(pa, uint64(i))
		if res.Retry && crippledAt == 0 {
			crippledAt = uint64(i)
		}
		if !p.Crippled() {
			lv.NoteWrite(pa, p)
		}
	}
	if !p.Crippled() {
		t.Fatal("passthrough never crippled at 200 endurance")
	}
	if p.FirstFailureAt() == 0 {
		t.Error("first failure index not recorded")
	}
	if p.LostWrites() == 0 {
		t.Error("lost writes not counted")
	}
	if osm.RetiredPages() == 0 {
		t.Error("failures should retire pages")
	}
}

func TestPassthroughMoverOps(t *testing.T) {
	be := newBackend(t, 16, 1e9)
	osm, _ := osmodel.New(16, 16)
	lv := wear.Static{Size: 16}
	p := NewPassthrough(lv, be, osm)
	p.Write(1, 11)
	p.Write(2, 22)
	p.Migrate(1, 3)
	if be.Dev.Content(3) != 11 {
		t.Error("migrate did not move content")
	}
	p.Swap(1, 2)
	if be.Dev.Content(1) != 22 || be.Dev.Content(2) != 11 {
		t.Error("swap did not exchange content")
	}
	if p.Crippled() {
		t.Error("healthy mover ops should not cripple")
	}
}
