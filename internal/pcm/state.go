package pcm

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the device's mutable state (wear counters, failure
// thresholds, the packed bitsets, the sparse failure-schedule index, dead
// marks, access stats, and the failure-horizon countdown) into the open
// checkpoint section. Configuration and the derived sigma and lower-bound
// table are not written; Restore rebuilds the device from the same Config
// and overlays this state.
func (d *Device) SaveState(e *ckpt.Encoder) {
	e.U64s(d.wear)
	e.U64s(d.nextFail)
	e.U64s(d.exactBits.Words())
	e.U64s(d.deadBits.Words())
	e.U32(uint32(len(d.fails)))
	for _, b := range ckpt.KeysU64(d.fails) {
		fs := d.fails[b]
		e.U64(b)
		e.U16(fs.cells)
		e.F64(fs.u)
	}
	e.Bool(d.content != nil)
	if d.content != nil {
		e.U64s(d.content)
	}
	e.U64(d.stats.Reads)
	e.U64(d.stats.Writes)
	e.U64(d.deadCount)
	e.U64(d.horizon)
	e.U64(d.rescanIn)
}

// LoadState restores state written by SaveState into a device freshly
// built from the identical Config. The flat arrays decode in place (no
// transient copies); on any error the device's state is unspecified, per
// the RestoreCheckpoint contract that a failed restore discards the
// engine.
func (d *Device) LoadState(dec *ckpt.Decoder) error {
	dec.U64sInto(d.wear)
	dec.U64sInto(d.nextFail)
	dec.U64sInto(d.exactBits.Words())
	dec.U64sInto(d.deadBits.Words())
	nFails := int(dec.U32())
	if dec.Err() == nil && uint64(nFails) > d.cfg.NumBlocks {
		return fmt.Errorf("pcm: checkpoint failure index count %d exceeds %d blocks", nFails, d.cfg.NumBlocks)
	}
	fails := make(map[uint64]failState, nFails)
	order := make([]uint64, 0, nFails)
	for i := 0; i < nFails && dec.Err() == nil; i++ {
		b := dec.U64()
		fails[b] = failState{cells: dec.U16(), u: dec.F64()}
		order = append(order, b)
	}
	hasContent := dec.Bool()
	if dec.Err() == nil && hasContent != (d.content != nil) {
		return fmt.Errorf("pcm: checkpoint TrackContent=%v, device has %v", hasContent, d.content != nil)
	}
	if hasContent && d.content != nil {
		dec.U64sInto(d.content)
	}
	reads := dec.U64()
	writes := dec.U64()
	deadCount := dec.U64()
	horizon := dec.U64()
	rescanIn := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if d.exactBits.Count() != uint64(len(fails)) {
		return fmt.Errorf("pcm: checkpoint failure index has %d entries, exact bitmap has %d",
			len(fails), d.exactBits.Count())
	}
	var prev uint64
	for i, b := range order {
		if i > 0 && b <= prev {
			return fmt.Errorf("pcm: checkpoint failure index keys out of order")
		}
		prev = b
		if b >= d.cfg.NumBlocks || !d.exactBits.Test(b) ||
			int(fails[b].cells) > d.cfg.CellsPerBlock {
			return fmt.Errorf("pcm: checkpoint failure index entry for block %d is inconsistent", b)
		}
	}
	if recount := d.deadBits.Count(); recount != deadCount {
		return fmt.Errorf("pcm: checkpoint dead count %d disagrees with bitmap (%d)", deadCount, recount)
	}
	d.fails = fails
	d.stats = AccessStats{Reads: reads, Writes: writes}
	d.deadCount = deadCount
	d.horizon = horizon
	d.rescanIn = rescanIn
	return nil
}
