package analysis

import "go/ast"

// randPkgs are the import paths of the standard library's random-number
// packages. Both share the problem: their convenience functions draw
// from a process-global, implicitly seeded source, so two runs (or two
// worker interleavings) disagree.
var randPkgs = []string{"math/rand", "math/rand/v2"}

// NoGlobalRand bans math/rand inside internal/. Every stochastic
// component must draw from an explicitly passed, seeded
// internal/rng.Source so experiments replay bit-exactly from a single
// seed. The import itself is flagged — even rand.New(rand.NewSource(s))
// is off the table, because splitting the repo's randomness across two
// generator families silently decorrelates substreams.
type NoGlobalRand struct{}

// Name implements Rule.
func (*NoGlobalRand) Name() string { return "no-global-rand" }

// Doc implements Rule.
func (*NoGlobalRand) Doc() string {
	return "math/rand is banned in internal/; use seeded internal/rng sources"
}

// Check implements Rule.
func (*NoGlobalRand) Check(f *File, report func(ast.Node, string, ...any)) {
	if !f.In("internal") {
		return
	}
	for _, path := range randPkgs {
		name, ok := f.ImportName(path)
		if !ok {
			continue
		}
		for _, imp := range f.AST.Imports {
			if str(imp.Path.Value) == path {
				report(imp, "import of %s: internal/ draws randomness from seeded internal/rng sources only", path)
			}
		}
		// Also flag each use of a top-level function, so the finding
		// a developer sees points at the draw, not just the import.
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == name && id.Obj == nil {
				report(call, "call to %s.%s draws from math/rand; use a seeded *rng.Source", name, sel.Sel.Name)
			}
			return true
		})
	}
}

// str strips the quotes from an import path literal.
func str(lit string) string {
	if len(lit) >= 2 && lit[0] == '"' && lit[len(lit)-1] == '"' {
		return lit[1 : len(lit)-1]
	}
	return lit
}
