// Package wear implements in-PCM wear-leveling schemes behind a common
// Leveler interface: Start-Gap with static address randomization (Qureshi
// et al., MICRO'09) and Security Refresh (Seong et al., ISCA'10).
//
// A Leveler owns the algebraic PA→DA mapping function and its periodic
// data migrations. Following the paper's framework boundary (§III), the
// only operation a leveler needs from its environment is "migrate a block
// of data into a memory block", expressed by the Mover interface; data
// movement, wear accounting, error handling and failure redirection all
// happen behind Mover, which is what lets WL-Reviver revive any scheme
// without modifying it.
package wear

// Leveler is an in-memory-controller wear-leveling scheme.
//
// Mapping functions are bijections from the PA space [0, NumPAs) onto
// their image inside the DA space [0, NumDAs); NumDAs may exceed NumPAs
// by buffer blocks (e.g. Start-Gap's gap line) that never hold live data.
type Leveler interface {
	// Name identifies the scheme in reports.
	Name() string
	// NumPAs is the size of the physical (software-side) address space in
	// blocks.
	NumPAs() uint64
	// NumDAs is the size of the device address space the scheme manages.
	NumDAs() uint64
	// Map translates a physical address to its current device address.
	Map(pa uint64) uint64
	// Inverse translates a device address back to the physical address
	// currently mapped to it. ok is false when da is an unmapped buffer
	// block (such as the gap line).
	Inverse(da uint64) (pa uint64, ok bool)
	// NoteWrite informs the scheme that one software write to pa has been
	// serviced. When the scheme's leveling condition is met (e.g. every
	// ψ writes for Start-Gap), it performs its data migrations through
	// mover and updates the mapping function accordingly. Schemes with
	// region-local refresh (Security Refresh) use pa to credit the
	// written region; Start-Gap ignores it.
	NoteWrite(pa uint64, mover Mover)
}

// Mover carries out the physical data movement of wear-leveling
// operations. Implementations add device wear, run error correction, and
// redirect accesses around failed blocks (package reviver, freep, lls).
//
// Contract: a scheme invokes the Mover BEFORE applying the corresponding
// mapping-function update, so implementations observe the pre-migration
// mapping and can compute the post-migration preimages from the call's
// arguments (after Migrate(src, dst) the PA previously mapped to src maps
// to dst; after Swap(a, b) the mappers of a and b exchange).
type Mover interface {
	// Migrate copies the block of data at device address src into the
	// block at device address dst. dst is guaranteed by the scheme to
	// hold no live data (Theorem 3's buffer-block assumption).
	Migrate(src, dst uint64)
	// Swap exchanges the blocks of data at device addresses a and b, the
	// fundamental operation of swap-based schemes such as Security
	// Refresh. The implicit buffer involved is not modeled as a DA.
	Swap(a, b uint64)
}

// NopMover performs no data movement; useful for driving a leveler's
// mapping evolution in isolation (tests, mapping analyses).
type NopMover struct{}

// Migrate implements Mover.
func (NopMover) Migrate(src, dst uint64) {}

// Swap implements Mover.
func (NopMover) Swap(a, b uint64) {}

// FuncMover adapts plain functions to the Mover interface.
type FuncMover struct {
	MigrateFn func(src, dst uint64)
	SwapFn    func(a, b uint64)
}

// Migrate implements Mover.
func (m FuncMover) Migrate(src, dst uint64) {
	if m.MigrateFn != nil {
		m.MigrateFn(src, dst)
	}
}

// Swap implements Mover.
func (m FuncMover) Swap(a, b uint64) {
	if m.SwapFn != nil {
		m.SwapFn(a, b)
	}
}

// Static is the degenerate "no wear leveling" scheme: an identity PA→DA
// mapping that never migrates. It provides the no-leveling baselines in
// the paper's Figure 6 (curves "ECP6" and "PAYG").
type Static struct {
	// Size is the PA/DA space size in blocks.
	Size uint64
}

// Name implements Leveler.
func (s Static) Name() string { return "none" }

// NumPAs implements Leveler.
func (s Static) NumPAs() uint64 { return s.Size }

// NumDAs implements Leveler.
func (s Static) NumDAs() uint64 { return s.Size }

// Map implements Leveler.
func (s Static) Map(pa uint64) uint64 { return pa }

// Inverse implements Leveler.
func (s Static) Inverse(da uint64) (uint64, bool) { return da, true }

// NoteWrite implements Leveler; it never migrates.
func (s Static) NoteWrite(_ uint64, _ Mover) {}

var _ Leveler = Static{}
