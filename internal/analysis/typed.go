package analysis

import (
	"go/ast"
	"go/importer"
	"go/types"
	"strings"
	"sync"
)

// modulePath is the import-path prefix of the module under analysis.
// Both the real tree and the golden fixture tree under testdata/src use
// it, so one importer serves both: "wlreviver/internal/ckpt" resolves to
// whichever internal/ckpt directory the current Load call parsed.
const modulePath = "wlreviver"

// Module ties the packages of one Load call together so the type
// checker can resolve module-internal imports against the same parsed
// tree the syntactic rules see — testdata and vendor stay excluded, and
// no go/packages (or build cache, or network) is involved.
type Module struct {
	byDir map[string]*Package
}

func newModule(pkgs []*Package) *Module {
	m := &Module{byDir: make(map[string]*Package, len(pkgs))}
	for _, p := range pkgs {
		p.Mod = m
		m.byDir[p.Dir] = p
	}
	return m
}

// dirFor maps a module-internal import path to its module-relative
// directory ("wlreviver" → "", "wlreviver/internal/ckpt" →
// "internal/ckpt").
func dirFor(path string) (string, bool) {
	if path == modulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// TypeInfo type-checks the package's non-test files on first use and
// memoizes the result. The checker is deliberately tolerant: errors are
// collected rather than fatal (TypeErrors), imports that cannot be
// resolved become empty marker packages, and rules that consume the
// returned Info must degrade gracefully when an entry is missing. A nil
// package is returned when the directory holds only test files or when
// the package is currently mid-check (import cycles cannot occur in
// valid Go, but the guard keeps a broken tree from recursing).
func (p *Package) TypeInfo() (*types.Package, *types.Info) {
	if p.typeChecked || p.checking {
		return p.typesPkg, p.typesInfo
	}
	p.checking = true
	defer func() { p.checking = false; p.typeChecked = true }()

	var files []*ast.File
	for _, f := range p.Files {
		if f.IsTest() {
			continue
		}
		files = append(files, f.AST)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    &moduleImporter{mod: p.Mod},
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	path := modulePath
	if p.Dir != "" {
		path = modulePath + "/" + p.Dir
	}
	// Check never panics with an Error handler set; a partially filled
	// Info on a broken tree is exactly what the tolerant rules want.
	tpkg, _ := conf.Check(path, p.Fset, files, info)
	p.typesPkg, p.typesInfo = tpkg, info
	return p.typesPkg, p.typesInfo
}

// moduleImporter resolves imports for the type checker: module-internal
// paths recurse into the Load tree, everything else goes to the
// process-wide standard-library importer.
type moduleImporter struct {
	mod *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if dir, ok := dirFor(path); ok {
		if mi.mod != nil {
			if p := mi.mod.byDir[dir]; p != nil {
				if tpkg, _ := p.TypeInfo(); tpkg != nil {
					return tpkg, nil
				}
			}
		}
		// The directory is not part of this Load (fixture trees import
		// packages they do not carry): hand back an empty marker so the
		// checker keeps going.
		return markerPackage(path), nil
	}
	return stdImport(path), nil
}

// stdImport resolves a standard-library path through importer.Default,
// memoized process-wide (the importer reads compiler export data from
// disk; every Load would otherwise pay for "fmt" again). When export
// data is unavailable — stripped containers — it degrades to an empty
// marker package. Rules must therefore never depend on stdlib *types*
// for correctness: identifying time/math_rand call sites by package
// path and selector name works identically with real or marker stdlib.
func stdImport(path string) *types.Package {
	stdMu.Lock()
	defer stdMu.Unlock()
	if p, ok := stdCache[path]; ok {
		return p
	}
	if stdImporter == nil {
		stdImporter = importer.Default()
	}
	p, err := stdImporter.Import(path)
	if err != nil || p == nil {
		p = markerPackage(path)
	}
	stdCache[path] = p
	return p
}

var (
	stdMu       sync.Mutex
	stdImporter types.Importer
	stdCache    = map[string]*types.Package{}
)

// markerPackage builds an empty, complete package so the checker treats
// unresolvable imports as "known but memberless" instead of aborting.
func markerPackage(path string) *types.Package {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	return p
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// recvTypeName returns the receiver type's base identifier for a method
// declaration ("Device" for `func (d *Device) ...`), or "" when the
// declaration has no receiver or an unexpected shape.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := unparen(fd.Recv.List[0].Type)
	if st, ok := t.(*ast.StarExpr); ok {
		t = unparen(st.X)
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := unparen(tt.X).(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr: // generic receiver T[P1, P2]
		if id, ok := unparen(tt.X).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
