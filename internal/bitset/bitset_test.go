package bitset

import "testing"

func TestBitsBasics(t *testing.T) {
	for _, n := range []uint64{1, 63, 64, 65, 1000} {
		b := New(n)
		if got, want := len(b), int((n+63)/64); got != want {
			t.Fatalf("New(%d): %d words, want %d", n, got, want)
		}
		for i := uint64(0); i < n; i++ {
			if b.Test(i) {
				t.Fatalf("New(%d): bit %d set", n, i)
			}
		}
	}

	b := New(200)
	for _, i := range []uint64{0, 1, 63, 64, 127, 128, 199} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Set(63) // idempotent
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after re-Set = %d, want 7", got)
	}
	b.Clear(63)
	if b.Test(63) {
		t.Fatal("bit 63 still set after Clear")
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("Count after Clear = %d, want 6", got)
	}
	if b.Test(62) || !b.Test(64) {
		t.Fatal("Clear disturbed neighbouring bits")
	}
	if got := len(b.Words()); got != 4 {
		t.Fatalf("Words: %d words, want 4", got)
	}
}

func TestBitsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Test past the constructed length did not panic")
		}
	}()
	b := New(64)
	b.Test(64)
}
