# Convenience targets; scripts/verify.sh is the canonical gate.

.PHONY: build test verify bench benchgate bench-baseline microbench paper fuzz serve-smoke

build:
	go build ./...

test:
	go test ./...

# Full verification gate: gofmt + vet + wlvet (determinism invariants)
# + build + tests + race over every package. ROADMAP.md's tier-1 line
# points here.
verify:
	sh scripts/verify.sh

# Perf-trajectory snapshot: run the full experiment suite at the reduced
# tiny scale and record per-experiment wall-clock and writes/sec as
# BENCH_<timestamp>.json plus every engine's event counters and snapshot
# series as METRICS_<timestamp>.json, then the Figure 6 experiment on an
# 8-shard grid once per shard-pool width (1, 2, all CPUs) as
# BENCH_<timestamp>-shards<N>.json — like-for-like rows whose ratios are
# this machine's intra-engine speedup (compare with
# `go run ./cmd/paper -benchdiff old.json new.json`). EXPERIMENTS.md
# documents both JSON schemas; compare BENCH snapshots across commits to
# track the hot path.
bench:
	stamp=$$(date +%Y%m%d-%H%M%S) && \
	go run ./cmd/paper -scale tiny -exp all \
		-benchjson BENCH_$$stamp.json -metrics METRICS_$$stamp.json && \
	for n in 1 2 0; do \
		go run ./cmd/paper -scale tiny -exp fig6 -workers 1 \
			-shard-grid 8 -shards $$n -timing=false \
			-benchjson BENCH_$$stamp-shards$$n.json >/dev/null || exit 1; \
	done

# CI perf gate: rerun the tiny-scale sweep and fail if total writes/sec
# falls more than 10% below the committed baseline. The baseline is
# hardware-specific — after a deliberate perf change (or a runner-class
# change) regenerate it with `make bench-baseline` and commit the diff;
# the benchdiff table this prints shows exactly which experiment moved.
benchgate:
	go run ./cmd/paper -scale tiny -exp all -timing=false \
		-benchjson BENCH_gate.json >/dev/null
	go run ./cmd/paper -benchdiff -gate 10 bench/ci-baseline.json BENCH_gate.json

bench-baseline:
	go run ./cmd/paper -scale tiny -exp all -timing=false \
		-benchjson bench/ci-baseline.json >/dev/null

# Go-test microbenchmarks (result-shape metrics + hot-path ns/op).
microbench:
	go test -bench=. -benchmem -run '^$$' ./...

# Brief fuzzing pass over the checkpoint wire format, the engine
# restore path and the Start-Gap mapping algebra. Each target's seed
# corpus lives in its package's testdata/fuzz/ and replays as part of
# the ordinary test suite (the CI smoke run); this target additionally
# explores new inputs for a few seconds each.
fuzz:
	go test ./internal/ckpt -fuzz FuzzCheckpointRoundTrip -fuzztime 10s
	go test ./internal/ckpt -fuzz FuzzDecoderNeverPanics -fuzztime 10s
	go test ./internal/wear -fuzz FuzzStartGapMapInverse -fuzztime 10s
	go test ./internal/wear -fuzz FuzzWoLFRaMMapInverse -fuzztime 10s
	go test ./internal/wear -fuzz FuzzSoftWearPageTable -fuzztime 10s
	go test ./internal/sim -fuzz FuzzRestoreRejectsCorrupt -fuzztime 10s

# wlserved crash-durability smoke: drive 50 devices with wlload,
# kill -9 the daemon mid-run, restart over the same spill directory and
# prove the topped-up fleet is byte-identical to an uninterrupted run.
serve-smoke:
	sh scripts/serve_smoke.sh

# Regenerate the paper's tables and figures at bench scale on all CPUs.
paper:
	go run ./cmd/paper -scale bench -exp all
