// Fixture: the observability package is part of the deterministic core,
// so the determinism rules apply to it unchanged — snapshot pacing must
// come from simulated writes, never the wall clock, and observers must
// not fan work out on their own goroutines.
package obs

import (
	"math/rand" // want no-global-rand "import of math/rand"
	"time"
)

// StampSnapshot timestamps a sample from the wall clock — exactly the
// design the simulated-write pacing exists to forbid.
func StampSnapshot() int64 {
	return time.Now().UnixNano() // want no-wallclock "wall-clock call time.Now"
}

// EmitAsync hands an event to a goroutine, making delivery order — and
// hence any ordered sink — racy. One finding, one justified suppression.
func EmitAsync(deliver func()) {
	go deliver() // want confined-goroutines "go statement outside internal/sim/runner.go"
	//lint:ignore confined-goroutines fixture demonstrates a justified suppression
	go deliver()
}

// SampleJitter perturbs the snapshot period with the global RNG.
func SampleJitter(every uint64) uint64 {
	return every + uint64(rand.Intn(8)) // want no-global-rand "call to rand.Intn draws from math/rand"
}
