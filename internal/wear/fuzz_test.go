package wear

import "testing"

// nopMover satisfies Mover without a backing device; the mapping
// algebra under test is independent of data movement.
type nopMover struct{}

func (nopMover) Migrate(src, dst uint64) {}
func (nopMover) Swap(a, b uint64)        {}

// FuzzStartGapMapInverse checks Start-Gap's core algebra under
// fuzz-chosen geometry, seed and write history: Map must be a bijection
// from the PA space into the DA space minus the gap, Inverse must be
// its exact inverse, and the gap DA must be the one address with no
// preimage. The checkpoint restore path rebuilds levelers from exactly
// these fields, so this property is what makes a restored mapping safe.
func FuzzStartGapMapInverse(f *testing.F) {
	f.Add(uint64(8), uint64(1), uint64(0))
	f.Add(uint64(64), uint64(42), uint64(7))
	f.Add(uint64(129), uint64(0xDEADBEEF), uint64(1000))
	f.Add(uint64(1), uint64(3), uint64(5))
	f.Fuzz(func(t *testing.T, n, seed, writes uint64) {
		n = n%512 + 1
		writes %= 4096
		s, err := NewStartGap(StartGapConfig{NumPAs: n, GapWritePeriod: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < writes; i++ {
			s.NoteWrite(i%n, nopMover{})
		}
		seen := make(map[uint64]bool, n)
		for pa := uint64(0); pa < n; pa++ {
			da := s.Map(pa)
			if da >= s.NumDAs() {
				t.Fatalf("Map(%d) = %d, outside DA space %d", pa, da, s.NumDAs())
			}
			if da == s.GapDA() {
				t.Fatalf("Map(%d) hit the gap DA %d", pa, da)
			}
			if seen[da] {
				t.Fatalf("Map not injective: DA %d has two preimages", da)
			}
			seen[da] = true
			inv, ok := s.Inverse(da)
			if !ok || inv != pa {
				t.Fatalf("Inverse(Map(%d)) = (%d, %v), want (%d, true)", pa, inv, ok, pa)
			}
		}
		if _, ok := s.Inverse(s.GapDA()); ok {
			t.Fatalf("Inverse(gap DA %d) returned a PA", s.GapDA())
		}
	})
}
