// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every stochastic component in the repository draws from an explicitly
// passed *rng.Source rather than a global generator, so that experiments
// are reproducible from a single seed and independent subsystems can be
// given statistically independent substreams via Fork.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. It is not cryptographically secure;
// it is a simulation RNG.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
// The zero value is not valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources built from the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// xoshiro256** must not be seeded with all zeros; SplitMix64 of any
	// seed cannot produce four consecutive zeros, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

// splitMix64 advances the SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := (0 - n) % n // 2^64 mod n: reject lo below this for uniformity
	for {
		hi, lo := mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo1 := t & mask
	hi1 := t >> 32
	lo1 += aLo * bHi
	hi = aHi*bHi + hi1 + (lo1 >> 32)
	lo = a * b
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0 or 1.
// Useful as input to inverse CDFs that diverge at the endpoints.
func (r *Source) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
		if f > 0 && f < 1 {
			return f
		}
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1),
// computed with the Box–Muller transform (polar form).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the elements indexed [0, n) using swap, à la
// math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives a new Source whose stream is statistically independent of
// the parent's subsequent output. Forking consumes one value from the
// parent. Label distinguishes multiple forks taken at the same point.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03)
}

// Hash64 returns the first value New(seed).Uint64() would produce,
// without constructing a Source. xoshiro256**'s first output depends only
// on s[1], so a single SplitMix64 step suffices; callers that consume one
// value per seed (e.g. counter-keyed stochastic fields) avoid the
// allocation and the three unused state words. Guaranteed identical to
// the Source path, enforced by test.
func Hash64(seed uint64) uint64 {
	_, s1 := splitMix64(seed + 0x9E3779B97F4A7C15) // advance past s[0]
	return rotl(s1*5, 7) * 9
}

// HashFloat64Open returns the first value New(seed).Float64Open() would
// produce. The (0,1) retry loop in Float64Open can never fire on its
// first draw — (x>>11 + 0.5)·2⁻⁵³ is already strictly inside (0,1) — so
// this is a single hash.
func HashFloat64Open(seed uint64) float64 {
	return (float64(Hash64(seed)>>11) + 0.5) * (1.0 / (1 << 53))
}
