// Custom leveler: the paper's central claim is that WL-Reviver revives
// ANY wear-leveling scheme, interacting with it only through its data
// migrations. This example makes that concrete by implementing a
// wear-leveling scheme the paper never saw — a table-based random-swap
// leveler — and running it under the framework without changing a line
// of WL-Reviver.
//
// RandomSwap keeps an explicit permutation table (something the in-PCM
// schemes avoid for cost reasons, but a perfectly legal Leveler) and,
// every ψ writes, swaps the device locations of two physical addresses.
// The framework only sees Swap calls; failures under the swaps are
// hidden exactly as they are for Start-Gap and Security Refresh.
package main

import (
	"fmt"
	"log"

	"wlreviver"
)

// RandomSwap is a toy wear-leveling scheme with an explicit PA→DA table.
// It implements wlreviver.Leveler and nothing else — exactly what a
// scheme designer would write.
type RandomSwap struct {
	perm   []uint64 // pa -> da
	inv    []uint64 // da -> pa
	period uint64
	writes uint64
	tick   uint64
}

// NewRandomSwap builds the scheme over n blocks, swapping one pair every
// period writes.
func NewRandomSwap(n, period uint64) *RandomSwap {
	s := &RandomSwap{
		perm:   make([]uint64, n),
		inv:    make([]uint64, n),
		period: period,
	}
	for i := uint64(0); i < n; i++ {
		s.perm[i] = i
		s.inv[i] = i
	}
	return s
}

// Name implements wlreviver.Leveler.
func (s *RandomSwap) Name() string { return "random-swap" }

// NumPAs implements wlreviver.Leveler.
func (s *RandomSwap) NumPAs() uint64 { return uint64(len(s.perm)) }

// NumDAs implements wlreviver.Leveler: swap-based schemes need no buffer
// block.
func (s *RandomSwap) NumDAs() uint64 { return uint64(len(s.perm)) }

// Map implements wlreviver.Leveler.
func (s *RandomSwap) Map(pa uint64) uint64 { return s.perm[pa] }

// Inverse implements wlreviver.Leveler.
func (s *RandomSwap) Inverse(da uint64) (uint64, bool) { return s.inv[da], true }

// NoteWrite implements wlreviver.Leveler: every period writes, pick two
// addresses deterministically and exchange their device locations. The
// Swap call goes out BEFORE the table update, per the Mover contract.
func (s *RandomSwap) NoteWrite(_ uint64, mover wlreviver.Mover) {
	s.writes++
	if s.writes < s.period {
		return
	}
	s.writes = 0
	s.tick++
	n := uint64(len(s.perm))
	pa1 := s.tick % n
	// A splitmix-style hash picks the partner pseudo-randomly.
	z := s.tick * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	pa2 := (z ^ (z >> 27)) % n
	if pa1 == pa2 {
		return
	}
	da1, da2 := s.perm[pa1], s.perm[pa2]
	mover.Swap(da1, da2)
	s.perm[pa1], s.perm[pa2] = da2, da1
	s.inv[da1], s.inv[da2] = pa2, pa1
}

func main() {
	cfg := wlreviver.DefaultConfig()
	cfg.Blocks = 1 << 12
	cfg.BlocksPerPage = 16
	cfg.MeanEndurance = 2_000
	lev := NewRandomSwap(cfg.Blocks, 16)
	cfg.CustomLeveler = lev

	workload, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadSkewed, Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, CoV: 10, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := wlreviver.New(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running custom scheme %q under WL-Reviver\n\n", lev.Name())
	fmt.Println("writes/block  survival  usable  failures-hidden")
	for sys.UsableFraction() > 0.7 && sys.WritesPerBlock() < 4000 {
		if sys.Run(1<<19, nil) == 0 {
			break
		}
		hidden := 0
		if rv, ok := sys.Reviver(); ok {
			hidden = rv.LinkedFailures()
		}
		fmt.Printf("%12.1f  %8.4f  %6.4f  %15d\n",
			sys.WritesPerBlock(), sys.SurvivalRate(), sys.UsableFraction(), hidden)
	}
	fmt.Println("\nthe framework revived a scheme it had never seen — no adaptation needed")
}
