package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// File format: a small binary container for recorded write traces so
// workloads can be generated once (cmd/tracegen) and replayed.
//
//	offset  size  field
//	0       4     magic "WLTR"
//	4       4     version (little-endian uint32, currently 1)
//	8       8     NumBlocks (little-endian uint64)
//	16      8     count of records (little-endian uint64)
//	24      8*n   block addresses (little-endian uint64 each)

var fileMagic = [4]byte{'W', 'L', 'T', 'R'}

const fileVersion = 1

// WriteTrace records n writes drawn from g into w.
func WriteTrace(w io.Writer, g Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], fileVersion)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("trace: writing version: %w", err)
	}
	binary.LittleEndian.PutUint64(scratch[:], g.NumBlocks())
	if _, err := bw.Write(scratch[:]); err != nil {
		return fmt.Errorf("trace: writing block count: %w", err)
	}
	binary.LittleEndian.PutUint64(scratch[:], n)
	if _, err := bw.Write(scratch[:]); err != nil {
		return fmt.Errorf("trace: writing record count: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		binary.LittleEndian.PutUint64(scratch[:], g.Next())
		if _, err := bw.Write(scratch[:]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Replay is a Generator that replays a recorded trace, looping back to
// the start when exhausted (matching the paper's "run multiple times"
// replay).
type Replay struct {
	name      string   // ckpt:skip construction-time label
	numBlocks uint64   // ckpt:skip construction-time geometry from the trace header
	records   []uint64 // ckpt:skip the immutable trace itself, validated on restore
	pos       int
}

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader, name string) (*Replay, error) {
	br := bufio.NewReader(r)
	var head [24]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(head[0:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	numBlocks := binary.LittleEndian.Uint64(head[8:16])
	count := binary.LittleEndian.Uint64(head[16:24])
	if numBlocks == 0 {
		return nil, fmt.Errorf("trace: file declares zero blocks")
	}
	if count == 0 {
		return nil, fmt.Errorf("trace: file holds no records")
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("trace: %d records exceed the %d cap", count, maxRecords)
	}
	records := make([]uint64, count)
	var scratch [8]byte
	for i := range records {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		records[i] = binary.LittleEndian.Uint64(scratch[:])
		if records[i] >= numBlocks {
			return nil, fmt.Errorf("trace: record %d address %d outside space [0,%d)",
				i, records[i], numBlocks)
		}
	}
	return &Replay{name: name, numBlocks: numBlocks, records: records}, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// NumBlocks implements Generator.
func (r *Replay) NumBlocks() uint64 { return r.numBlocks }

// Len returns the number of recorded writes.
func (r *Replay) Len() int { return len(r.records) }

// Next implements Generator, looping at the end of the recording.
func (r *Replay) Next() uint64 {
	a := r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
	}
	return a
}

// NextBatch implements BatchGenerator: bulk copies with wraparound.
func (r *Replay) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		n := copy(dst, r.records[r.pos:])
		r.pos += n
		if r.pos == len(r.records) {
			r.pos = 0
		}
		dst = dst[n:]
	}
}

var _ BatchGenerator = (*Replay)(nil)
