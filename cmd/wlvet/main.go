// Command wlvet runs the repository's determinism-invariant analyzers
// (internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	wlvet [-rules] [packages]
//
// The package arguments are accepted for command-line symmetry with go
// vet ("go run ./cmd/wlvet ./..."), but the tool always analyzes whole
// directories: "./..." (or no argument) means the entire module, any
// other argument is a directory to analyze recursively.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. Findings
// print one per line as
//
//	path:line:col: message [rule]
//
// and can be silenced per site with `//lint:ignore <rule> <reason>` on
// the offending line or the line above. scripts/verify.sh runs wlvet
// between go vet and go build; see README.md "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wlreviver/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-22s %s\n", r.Name(), r.Doc())
		}
		return
	}

	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "wlvet:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	roots := args
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	findings := 0
	for _, root := range roots {
		dir, err := resolveRoot(root)
		if err != nil {
			return err
		}
		pkgs, err := analysis.Load(dir)
		if err != nil {
			return err
		}
		for _, d := range analysis.Run(pkgs, analysis.Rules()) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "wlvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// resolveRoot maps a package-pattern-ish argument to a directory.
// "./..." means the module root, located by walking up from the working
// directory to the nearest go.mod; anything else is used as a directory
// after trimming a trailing "/..." wildcard.
func resolveRoot(arg string) (string, error) {
	if arg == "./..." || arg == "..." {
		return moduleRoot()
	}
	if len(arg) > 4 && arg[len(arg)-4:] == "/..." {
		arg = arg[:len(arg)-4]
	}
	info, err := os.Stat(arg)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return "", fmt.Errorf("%s: not a directory", arg)
	}
	return arg, nil
}

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
