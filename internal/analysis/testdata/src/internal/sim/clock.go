// Fixture: no-wallclock positives and a suppressed site inside
// internal/, where wall-clock reads are banned.
package sim

import "time"

// Tick draws wall-clock time three ways; two are findings, the third
// carries a justified suppression.
func Tick() time.Duration {
	start := time.Now()          // want no-wallclock "wall-clock call time.Now"
	time.Sleep(time.Millisecond) // want no-wallclock "wall-clock call time.Sleep"
	//lint:ignore no-wallclock fixture demonstrates a justified suppression
	end := time.Now()
	return end.Sub(start)
}

// Elapsed uses time.Since, the second banned spelling.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want no-wallclock "wall-clock call time.Since"
}
