// Package stats provides the statistical primitives used by the simulator
// and its evaluation harness: streaming moments (Welford), coefficient of
// variation, histograms, percentiles, and curve sampling for the
// survival-rate and usable-space series reported in the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates the same observation n times.
func (w *Welford) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		w.Add(x)
	}
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with <2 observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CoV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// CoVOfCounts computes the coefficient of variation of a slice of counts.
// It is the metric the paper's Table I reports for per-block write counts.
func CoVOfCounts(counts []uint64) float64 {
	w := WelfordOfCounts(counts)
	return w.CoV()
}

// WelfordOfCounts accumulates a count slice into a Welford so callers can
// Merge moments across disjoint slices (e.g. the shards of a partitioned
// chip) instead of concatenating the counts.
func WelfordOfCounts(counts []uint64) Welford {
	var w Welford
	for _, c := range counts {
		w.Add(float64(c))
	}
	return w
}

// MeanOfCounts returns the mean of a slice of counts.
func MeanOfCounts(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	return sum / float64(len(counts))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. values is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width bucket histogram over [Min, Max). Values
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	Min, Max float64
	counts   []uint64
	total    uint64
}

// NewHistogram creates a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if max <= min {
		panic("stats: histogram max must exceed min")
	}
	return &Histogram{Min: min, Max: max, counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.counts)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Counts returns a copy of the bucket counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.counts))
	return h.Min + (float64(i)+0.5)*w
}

// Quantile returns an approximate quantile (0..1) from the histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return h.BucketCenter(i)
		}
	}
	return h.BucketCenter(len(h.counts) - 1)
}

// Point is one (X, Y) sample of an experiment curve, e.g.
// (writes issued, survival rate).
type Point struct {
	X float64
	Y float64
}

// Curve is an ordered series of points as plotted in the paper's figures.
type Curve struct {
	Name   string
	Points []Point
}

// Append adds a point to the curve.
func (c *Curve) Append(x, y float64) {
	c.Points = append(c.Points, Point{X: x, Y: y})
}

// YAt returns the linearly interpolated Y value at x, clamping outside
// the sampled range. It requires points sorted by X (Append order).
func (c *Curve) YAt(x float64) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return math.NaN()
	}
	if x <= pts[0].X {
		return pts[0].Y
	}
	if x >= pts[len(pts)-1].X {
		return pts[len(pts)-1].Y
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	a, b := pts[i-1], pts[i]
	if b.X == a.X {
		return a.Y
	}
	frac := (x - a.X) / (b.X - a.X)
	return a.Y*(1-frac) + b.Y*frac
}

// XWhereYFallsTo returns the smallest sampled X at which Y has dropped to
// or below threshold, assuming Y is non-increasing in X (as survival-rate
// and usable-space curves are). Returns (0, false) if Y never drops.
func (c *Curve) XWhereYFallsTo(threshold float64) (float64, bool) {
	for _, p := range c.Points {
		if p.Y <= threshold {
			return p.X, true
		}
	}
	return 0, false
}

// Sampler triggers curve sampling every Interval units of X.
type Sampler struct {
	Interval float64
	next     float64
}

// NewSampler returns a Sampler that fires at x=0 and then every interval.
func NewSampler(interval float64) *Sampler {
	if interval <= 0 {
		panic("stats: sampler interval must be positive")
	}
	return &Sampler{Interval: interval}
}

// Due reports whether a sample is due at position x and, if so, advances
// the next trigger past x.
func (s *Sampler) Due(x float64) bool {
	if x < s.next {
		return false
	}
	for s.next <= x {
		s.next += s.Interval
	}
	return true
}
