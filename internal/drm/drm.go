// Package drm implements an adapted Dynamically Replicated Memory
// baseline (Ipek et al., ASPLOS 2010), the remaining recovery approach in
// the paper's related work: instead of remapping individual failed
// blocks, DRM pairs a faulty page with a *compatible* partner page — one
// whose failed blocks sit at different offsets — so the pair serves every
// offset from whichever side is healthy there.
//
// Like FREE-p and Zombie, the original design records physical partner
// locations, which wear-leveling migrations would invalidate; the same
// adaptation the paper applies to FREE-p (§IV-C) applies here: partner
// pages come from a pre-reserved region outside the wear-leveling space,
// so the pairing stays valid while the wear-leveling scheme keeps
// migrating the primary data. The scheme works until no compatible
// partner can be found (or the reserve is exhausted), after which the
// next failure reaches the wear-leveling scheme and cripples it.
package drm

import (
	"fmt"

	"wlreviver/internal/cache"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

// Config parameterises the adapted DRM.
type Config struct {
	// ReserveFraction is the fraction of total PCM capacity pre-reserved
	// as partner pages.
	ReserveFraction float64
	// RemapCache, when non-nil, caches failed-block partner locations.
	RemapCache *cache.Cache
}

// Stats counts the baseline's activity.
type Stats struct {
	SoftwareWrites  uint64
	SoftwareReads   uint64
	RequestAccesses uint64
	PagesPaired     uint64
	Repairings      uint64 // pairings replaced after a partner-side failure
	Exposed         bool
	LostWrites      uint64
}

// DRM is the adapted protector. The partner region occupies device
// blocks above the wear-leveling space, carved into page-sized frames.
type DRM struct {
	cfg Config         // ckpt:skip construction-time config, fingerprinted by the engine
	lv  wear.Leveler   // ckpt:skip wiring; the leveler checkpoints itself
	be  *mc.Backend    // ckpt:skip wiring; the backend checkpoints itself
	os  *osmodel.Model // ckpt:skip wiring; the OS model checkpoints itself

	pageBlocks uint64 // ckpt:derived recomputed from cfg in New
	// partner[page] is the partner frame's base DA for a paired primary
	// page (page is a DA-space page index: DA / pageBlocks).
	partner map[uint64]uint64
	// freeFrames are unpaired reserved frames' base DAs.
	freeFrames []uint64
	reserved   uint64 // ckpt:derived recomputed from cfg in New
	st         Stats
}

// ReservedBlocks returns the partner-region size in blocks for the given
// data capacity and reserve fraction, rounded down to whole pages.
func ReservedBlocks(dataBlocks uint64, fraction float64, pageBlocks uint64) uint64 {
	if fraction <= 0 {
		return 0
	}
	raw := uint64(float64(dataBlocks) * fraction / (1 - fraction))
	return raw / pageBlocks * pageBlocks
}

// New builds the protector. The device must hold
// lv.NumDAs() + ReservedBlocks(...) blocks.
func New(cfg Config, lv wear.Leveler, be *mc.Backend, os *osmodel.Model) (*DRM, error) {
	if cfg.ReserveFraction < 0 || cfg.ReserveFraction >= 1 {
		return nil, fmt.Errorf("drm: reserve fraction %v outside [0,1)", cfg.ReserveFraction)
	}
	pageBlocks := os.BlocksPerPage()
	reserved := ReservedBlocks(lv.NumPAs(), cfg.ReserveFraction, pageBlocks)
	need := lv.NumDAs() + reserved
	if be.Dev.NumBlocks() < need {
		return nil, fmt.Errorf("drm: device has %d blocks, need %d (%d leveler + %d reserved)",
			be.Dev.NumBlocks(), need, lv.NumDAs(), reserved)
	}
	d := &DRM{
		cfg:        cfg,
		lv:         lv,
		be:         be,
		os:         os,
		pageBlocks: pageBlocks,
		partner:    make(map[uint64]uint64),
		reserved:   reserved,
	}
	for base := lv.NumDAs(); base+pageBlocks <= lv.NumDAs()+reserved; base += pageBlocks {
		d.freeFrames = append(d.freeFrames, base)
	}
	return d, nil
}

// Name implements mc.Protector.
func (d *DRM) Name() string {
	return fmt.Sprintf("DRM(%.0f%%)", d.cfg.ReserveFraction*100)
}

// Stats returns a copy of the counters.
func (d *DRM) Stats() Stats { return d.st }

// FreeFrames returns the number of unpaired partner frames.
func (d *DRM) FreeFrames() int { return len(d.freeFrames) }

// Crippled implements mc.Crippler.
func (d *DRM) Crippled() bool { return d.st.Exposed }

// pageOf returns (page index, offset) of a data-region DA.
func (d *DRM) pageOf(da uint64) (uint64, uint64) {
	return da / d.pageBlocks, da % d.pageBlocks
}

// effective resolves a data-region DA: a dead block in a paired page is
// served by the partner frame's same-offset block. The probe of the dead
// block costs one access unless cached.
func (d *DRM) effective(da uint64) (uint64, uint64) {
	if !d.be.Dead(da) {
		return da, 0
	}
	page, off := d.pageOf(da)
	base, paired := d.partner[page]
	if !paired {
		return da, 0
	}
	if d.cfg.RemapCache != nil && d.cfg.RemapCache.Lookup(da) {
		return base + off, 0
	}
	d.be.ReadRaw(da)
	return base + off, 1
}

// compatible reports whether a partner frame can serve every currently
// dead offset of the page (its blocks at those offsets are healthy).
func (d *DRM) compatible(page, base uint64) bool {
	for off := uint64(0); off < d.pageBlocks; off++ {
		if d.be.Dead(page*d.pageBlocks+off) && d.be.Dead(base+off) {
			return false
		}
	}
	return true
}

// pairPage finds a compatible partner frame for a page, migrating data
// already held by an old incompatible partner. Returns false when no
// compatible frame exists (exposure).
func (d *DRM) pairPage(page uint64) bool {
	oldBase, had := d.partner[page]
	for i, base := range d.freeFrames {
		if !d.compatible(page, base) {
			continue
		}
		d.freeFrames = append(d.freeFrames[:i], d.freeFrames[i+1:]...)
		if had {
			// Move the data the old partner was serving to the new one.
			for off := uint64(0); off < d.pageBlocks; off++ {
				da := page*d.pageBlocks + off
				if !d.be.Dead(da) || d.be.Dead(oldBase+off) {
					continue
				}
				d.be.ReadRaw(oldBase + off)
				if d.be.WriteRaw(base+off) && d.be.Dev.TracksContent() {
					d.be.Dev.SetContent(pcm.BlockID(base+off), d.be.Dev.Content(pcm.BlockID(oldBase+off)))
				}
			}
			d.st.Repairings++
		}
		d.partner[page] = base
		d.st.PagesPaired++
		if d.cfg.RemapCache != nil {
			for off := uint64(0); off < d.pageBlocks; off++ {
				d.cfg.RemapCache.Invalidate(page*d.pageBlocks + off)
			}
		}
		return true
	}
	// The old (incompatible) partner frame is worn at the conflicting
	// offset but other offsets may still serve later pairings; DRM's
	// simple pool model abandons it, as the original abandons
	// incompatible candidates.
	return false
}

// writeTo delivers a write to the storage behind a data-region DA.
func (d *DRM) writeTo(da, tag uint64) (uint64, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		target, accesses := d.effective(da)
		accesses++
		if d.be.WriteRaw(target) {
			if d.be.Dev.TracksContent() {
				d.be.Dev.SetContent(pcm.BlockID(target), tag)
			}
			return accesses, true
		}
		// Either the data block or the partner-side block died: the page
		// needs a (new) compatible partner.
		page, _ := d.pageOf(da)
		if !d.pairPage(page) {
			d.st.Exposed = true
			d.st.LostWrites++
			return accesses, false
		}
	}
	d.st.Exposed = true
	return 0, false
}

// Write implements mc.Protector.
func (d *DRM) Write(pa, tag uint64) mc.WriteResult {
	d.st.SoftwareWrites++
	accesses, _ := d.writeTo(d.lv.Map(pa), tag)
	d.st.RequestAccesses += accesses
	return mc.WriteResult{Accesses: accesses}
}

// Read implements mc.Protector.
func (d *DRM) Read(pa uint64) (uint64, uint64) {
	d.st.SoftwareReads++
	target, accesses := d.effective(d.lv.Map(pa))
	d.be.ReadRaw(target)
	accesses++
	d.st.RequestAccesses += accesses
	if d.be.Dead(target) {
		return 0, accesses
	}
	return d.be.Dev.Content(pcm.BlockID(target)), accesses
}

// ResumePending implements mc.Protector: DRM pairs synchronously.
func (d *DRM) ResumePending() uint64 { return 0 }

// Migrate implements wear.Mover: partner frames are outside the
// wear-leveling space, so pairing commutes with migration.
func (d *DRM) Migrate(src, dst uint64) {
	esrc, _ := d.effective(src)
	if d.be.Dead(esrc) {
		return
	}
	d.be.ReadRaw(esrc)
	d.writeTo(dst, d.be.Dev.Content(pcm.BlockID(esrc)))
}

// Swap implements wear.Mover.
func (d *DRM) Swap(a, b uint64) {
	ea, _ := d.effective(a)
	eb, _ := d.effective(b)
	d.be.ReadRaw(ea)
	d.be.ReadRaw(eb)
	ta, tb := d.be.Dev.Content(pcm.BlockID(ea)), d.be.Dev.Content(pcm.BlockID(eb))
	deadA, deadB := d.be.Dead(ea), d.be.Dead(eb)
	if !deadB {
		d.writeTo(a, tb)
	}
	if !deadA {
		d.writeTo(b, ta)
	}
}

// SoftwareUsableFraction implements mc.SpaceReporter: the reserve is lost
// up front; hidden failures cost nothing further until exposure, after
// which every lost write leaves a dead block unusable.
func (d *DRM) SoftwareUsableFraction() float64 {
	total := float64(d.lv.NumPAs() + d.reserved)
	usable := float64(d.lv.NumPAs()) / total
	if d.st.Exposed {
		deadData := 0.0
		for da := uint64(0); da < d.lv.NumDAs(); da++ {
			page, _ := d.pageOf(da)
			if _, paired := d.partner[page]; !paired && d.be.Dead(da) {
				deadData++
			}
		}
		usable -= deadData / total
	}
	if usable < 0 {
		return 0
	}
	return usable
}

var (
	_ mc.Protector     = (*DRM)(nil)
	_ mc.Crippler      = (*DRM)(nil)
	_ mc.SpaceReporter = (*DRM)(nil)
)
