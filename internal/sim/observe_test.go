package sim

import (
	"encoding/json"
	"sync"
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
)

// reportSet runs Fig6 on the given scale with a metrics observer on
// every engine and returns the result text plus each engine's report.
func reportSet(t *testing.T, s Scale) (string, map[string]obs.Report) {
	t.Helper()
	var mu sync.Mutex
	byKey := make(map[string]*obs.Metrics)
	s.Observe = func(key string) obs.Observer {
		m := obs.NewMetrics()
		mu.Lock()
		byKey[key] = m
		mu.Unlock()
		return m
	}
	s.SnapshotEvery = s.Blocks * 100
	res, err := Fig6(s, "mg")
	if err != nil {
		t.Fatal(err)
	}
	reports := make(map[string]obs.Report, len(byKey))
	for key, m := range byKey {
		reports[key] = m.Report()
	}
	return res.String(), reports
}

// TestObserverDoesNotPerturb is the core passivity guarantee: attaching
// observers changes neither an experiment's result nor its determinism
// across worker counts, and the collected metrics are themselves
// identical for any -workers value.
func TestObserverDoesNotPerturb(t *testing.T) {
	s := TinyScale()
	s.Workers = 1
	plain, err := Fig6(s, "mg")
	if err != nil {
		t.Fatal(err)
	}
	serialOut, serialReports := reportSet(t, s)
	if serialOut != plain.String() {
		t.Error("observed run diverged from unobserved run")
	}

	s.Workers = 4
	parallelOut, parallelReports := reportSet(t, s)
	if parallelOut != serialOut {
		t.Error("observed output differs across worker counts")
	}
	serialJSON, err := json.Marshal(serialReports)
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := json.Marshal(parallelReports)
	if err != nil {
		t.Fatal(err)
	}
	if string(serialJSON) != string(parallelJSON) {
		t.Error("metrics reports differ across worker counts")
	}
	if len(serialReports) == 0 {
		t.Fatal("no engines were observed")
	}
	for key, r := range serialReports {
		if len(r.Counters) == 0 {
			t.Errorf("%s: no events recorded", key)
		}
	}
}

// TestSnapshotCadence pins the snapshot pacing contract: samples land
// exactly every SnapshotEvery simulated writes.
func TestSnapshotCadence(t *testing.T) {
	s := TinyScale()
	cfg := s.config()
	cfg.Protector = ProtectorWLReviver
	m := obs.NewMetrics()
	cfg.Observer = m
	cfg.SnapshotEvery = 512
	gen, err := trace.NewUniform(cfg.Blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 10 * 512
	if got := e.Run(writes, nil); got != writes {
		t.Fatalf("ran %d of %d writes", got, writes)
	}
	snaps := m.Snapshots()
	if len(snaps) != 10 {
		t.Fatalf("got %d snapshots, want 10", len(snaps))
	}
	for i, snap := range snaps {
		if want := uint64(i+1) * 512; snap.Writes != want {
			t.Errorf("snapshot %d at %d writes, want %d", i, snap.Writes, want)
		}
	}
	if got, _ := e.Metrics(); got != m {
		t.Error("Engine.Metrics did not return the attached accumulator")
	}
}

// TestObserverEventCountsPinned locks a tiny deterministic scenario's
// event stream: any change to these numbers is a change to what the
// simulation does (or to where probes fire) and must be deliberate.
func TestObserverEventCountsPinned(t *testing.T) {
	cfg := TinyScale().config()
	cfg.Protector = ProtectorWLReviver
	m := obs.NewMetrics()
	cfg.Observer = m
	gen, err := trace.NewUniform(cfg.Blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(500_000, nil)

	counters := m.Counters()
	if counters[obs.CounterBlockFailed] == 0 || counters[obs.CounterRevived] == 0 {
		t.Fatalf("scenario produced no failures/revivals: %v", counters)
	}
	// Cross-layer consistency: every block failure is observed exactly
	// where the device records it, and WL-Reviver links every failed
	// block at least once (cyclic chains recycle and relink, so revivals
	// may exceed failures).
	if counters[obs.CounterRevived] < counters[obs.CounterBlockFailed] {
		t.Errorf("revived %d < block_failed %d",
			counters[obs.CounterRevived], counters[obs.CounterBlockFailed])
	}
	if counters[obs.CounterBlockFailed] != e.Device().DeadBlocks() {
		t.Errorf("block_failed %d != device dead blocks %d",
			counters[obs.CounterBlockFailed], e.Device().DeadBlocks())
	}
	if r := m.Report(); r.WearAtDeath == nil || r.WearAtDeath.Count != counters[obs.CounterBlockFailed] {
		t.Errorf("wear-at-death summary inconsistent with block_failed: %+v", r.WearAtDeath)
	}
	// Reference run: tiny scale, uniform seed-5 workload, ECP6 + Start-Gap
	// + WL-Reviver, 500k-write budget (the run retires every page and
	// stops first). Pinned from the run this test was introduced with;
	// re-pinned when the suspended-delivery fixes (orphan-sweep skip,
	// buffer supersede, starved-walk retargeting) shifted late-life
	// maintenance traffic slightly.
	want := map[string]uint64{
		obs.CounterBlockFailed: 946,
		obs.CounterCellFailed:  7984,
		obs.CounterRevived:     946,
		obs.CounterGapMoved:    16076,
		obs.CounterPageRetired: 64,
		obs.CounterSnapshots:   313,
	}
	if len(counters) != len(want) {
		t.Errorf("counter set %v, want keys of %v", counters, want)
	}
	for name, w := range want {
		if counters[name] != w {
			t.Errorf("%s = %d, want %d", name, counters[name], w)
		}
	}
}
