// Command wlload drives a wlserved daemon with a deterministic device
// fleet: it creates -devices devices cycling through the -mix workload
// kinds, then tops every device up to -target simulated writes in
// -batch sized requests, reporting latency and throughput. The traffic
// is defined by (mix, seed, target), not by timing: rerunning after a
// daemon crash tops the surviving state up to the same final write
// counts, so the resulting metrics and checkpoint hashes are
// byte-identical to an uninterrupted run — which -statefile records
// for exactly that comparison.
//
// Example:
//
//	wlload -addr http://127.0.0.1:8080 -devices 50 -target 200000 \
//	       -mix ocean,mg -concurrency 8 -statefile state.json
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"wlreviver/internal/serve"
	"wlreviver/internal/stats"
	"wlreviver/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wlload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	devices     int
	target      uint64
	batch       uint64
	mix         []string
	concurrency int
	seed        uint64
	blocks      uint64
	pageBlocks  uint64
	endurance   float64
	statefile   string
}

func run() error {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		devices     = flag.Int("devices", 16, "number of devices")
		target      = flag.Uint64("target", 100_000, "simulated writes each device is topped up to")
		batch       = flag.Uint64("batch", 4096, "writes per request")
		mix         = flag.String("mix", "ocean,mg", "comma-separated workload kinds cycled across devices (Table I names, uniform, skewed)")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		seed        = flag.Uint64("seed", 1, "base seed; device i uses seed+i")
		blocks      = flag.Uint64("blocks", 1<<12, "device capacity in blocks")
		pageBlocks  = flag.Uint64("page-blocks", 16, "page size in blocks")
		endurance   = flag.Float64("endurance", 1e3, "mean cell endurance in writes")
		statefile   = flag.String("statefile", "", "write per-device {id, writes, metrics_sha256, ckpt_sha256} JSON here")
	)
	flag.Parse()
	opts := options{
		addr: *addr, devices: *devices, target: *target, batch: *batch,
		mix: strings.Split(*mix, ","), concurrency: *concurrency, seed: *seed,
		blocks: *blocks, pageBlocks: *pageBlocks, endurance: *endurance,
		statefile: *statefile,
	}
	if opts.devices <= 0 || opts.batch == 0 || len(opts.mix) == 0 {
		return errors.New("-devices, -batch and -mix must be positive")
	}
	if opts.concurrency <= 0 {
		opts.concurrency = 1
	}
	return drive(context.Background(), opts)
}

// deviceID names device i; zero-padded so listings sort naturally.
func deviceID(i int) string { return fmt.Sprintf("load-%04d", i) }

// specFor is the deterministic device spec for index i.
func specFor(opts options, i int) serve.DeviceSpec {
	return serve.DeviceSpec{
		Blocks:        opts.blocks,
		BlocksPerPage: opts.pageBlocks,
		MeanEndurance: opts.endurance,
		Seed:          opts.seed + uint64(i),
		Workload: trace.Spec{
			Kind: opts.mix[i%len(opts.mix)],
		},
	}
}

// driver is the state shared across the client worker goroutines.
type driver struct {
	opts      options
	client    *serve.Client
	mu        sync.Mutex
	latencies []float64 // per-request seconds
	written   uint64
	errs      []error
}

func drive(ctx context.Context, opts options) error {
	d := &driver{opts: opts, client: serve.NewClient(opts.addr, nil)}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := d.driveDevice(ctx, i); err != nil {
					d.mu.Lock()
					d.errs = append(d.errs, fmt.Errorf("%s: %w", deviceID(i), err))
					d.mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < opts.devices; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	if len(d.errs) > 0 {
		for _, err := range d.errs {
			fmt.Fprintln(os.Stderr, "wlload:", err)
		}
		return fmt.Errorf("%d of %d devices failed", len(d.errs), opts.devices)
	}
	d.report(elapsed)
	if opts.statefile != "" {
		return d.writeState(ctx)
	}
	return nil
}

// driveDevice creates (if absent) and tops up one device. ErrBusy
// replies back off exponentially — the daemon's admission control at
// work — and every other error aborts the device.
func (d *driver) driveDevice(ctx context.Context, i int) error {
	id := deviceID(i)
	st, err := d.client.Status(ctx, id)
	if errors.Is(err, serve.ErrUnknownDevice) {
		if err := d.call(ctx, func() error { return d.client.Create(ctx, id, specFor(d.opts, i)) }); err != nil {
			return err
		}
		st, err = d.client.Status(ctx, id)
	}
	if err != nil {
		return err
	}
	for st.Writes < d.opts.target && !st.Stopped {
		n := min(d.opts.batch, d.opts.target-st.Writes)
		var wr serve.WriteResult
		if err := d.call(ctx, func() error {
			var werr error
			wr, werr = d.client.Write(ctx, id, n)
			return werr
		}); err != nil {
			return err
		}
		d.mu.Lock()
		d.written += wr.Done
		d.mu.Unlock()
		st.Writes = wr.Writes
		st.Stopped = wr.Stopped
	}
	return nil
}

// call times one request, retrying ErrBusy with exponential backoff.
func (d *driver) call(ctx context.Context, f func() error) error {
	backoff := time.Millisecond
	for {
		t0 := time.Now()
		err := f()
		lat := time.Since(t0).Seconds()
		d.mu.Lock()
		d.latencies = append(d.latencies, lat)
		d.mu.Unlock()
		if !errors.Is(err, serve.ErrBusy) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 512*time.Millisecond {
			backoff *= 2
		}
	}
}

// report prints the latency/throughput summary.
func (d *driver) report(elapsed time.Duration) {
	lat := d.latencies
	sort.Float64s(lat)
	ms := func(p float64) float64 { return stats.Percentile(lat, p) * 1e3 }
	fmt.Printf("wlload: %d devices, %d writes in %.2fs (%.0f writes/s)\n",
		d.opts.devices, d.written, elapsed.Seconds(), float64(d.written)/elapsed.Seconds())
	if len(lat) > 0 {
		fmt.Printf("wlload: %d requests, latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			len(lat), ms(50), ms(90), ms(99), lat[len(lat)-1]*1e3)
	}
}

// deviceState is one -statefile record.
type deviceState struct {
	ID            string `json:"id"`
	Writes        uint64 `json:"writes"`
	MetricsSHA256 string `json:"metrics_sha256"`
	CkptSHA256    string `json:"ckpt_sha256"`
}

// writeState fetches every device's metrics report and checkpoint
// image and records their hashes, sorted by ID — the run's replayable
// fingerprint. Two runs that drove the same devices to the same
// targets produce byte-identical statefiles, interrupted or not.
func (d *driver) writeState(ctx context.Context) error {
	states := make([]deviceState, 0, d.opts.devices)
	for i := 0; i < d.opts.devices; i++ {
		id := deviceID(i)
		st, err := d.client.Status(ctx, id)
		if err != nil {
			return err
		}
		metrics, err := d.client.Metrics(ctx, id)
		if err != nil {
			return err
		}
		img, err := d.client.Checkpoint(ctx, id)
		if err != nil {
			return err
		}
		states = append(states, deviceState{
			ID:            id,
			Writes:        st.Writes,
			MetricsSHA256: fmt.Sprintf("%x", sha256.Sum256(metrics)),
			CkptSHA256:    fmt.Sprintf("%x", sha256.Sum256(img)),
		})
	}
	sort.Slice(states, func(a, b int) bool { return states[a].ID < states[b].ID })
	data, err := json.MarshalIndent(states, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(d.opts.statefile, append(data, '\n'), 0o644)
}
