// Fixture: ckpt-state-coverage — per-direction misses, a field dropped
// from both sides, annotated and suppressed exemptions, a missing
// LoadState counterpart, one-level nested expansion, embedded
// promotion, and the unexported saveState/loadState pairing.
package wear

import "wlreviver/internal/ckpt"

// Gauge drops one field per direction and one entirely.
type Gauge struct {
	pos     uint64
	peak    uint64 // want ckpt-state-coverage "field peak of Gauge is referenced in SaveState but not in LoadState"
	floor   uint64 // want ckpt-state-coverage "field floor of Gauge is referenced in LoadState but not in SaveState"
	dropped uint64 // want ckpt-state-coverage "field dropped of Gauge is checkpointed in neither SaveState nor LoadState"
}

// SaveState forgets floor and dropped.
func (g *Gauge) SaveState(e *ckpt.Encoder) {
	e.U64(g.pos)
	e.U64(g.peak)
}

// LoadState forgets peak and dropped.
func (g *Gauge) LoadState(d *ckpt.Decoder) error {
	g.pos = d.U64()
	g.floor = d.U64()
	return nil
}

// Calib is the clean annotated case: derived and construction-time
// fields carry annotations with reasons, so neither is a finding.
type Calib struct {
	scale uint64
	tbl   []uint64 // ckpt:derived rebuilt from scale in LoadState
	limit uint64   // ckpt:skip construction-time bound, fingerprinted by the engine
}

// SaveState captures only the live state.
func (c *Calib) SaveState(e *ckpt.Encoder) { e.U64(c.scale) }

// LoadState restores it and rebuilds the derived table.
func (c *Calib) LoadState(d *ckpt.Decoder) error {
	c.scale = d.U64()
	c.tbl = make([]uint64, c.scale)
	return nil
}

// Legacy pins the suppression path: the directive on the line above the
// field exempts it with a recorded reason.
type Legacy struct {
	used uint64
	//lint:ignore ckpt-state-coverage fixture demonstrates a justified suppression
	spare uint64
}

// SaveState ignores spare; the suppression absorbs the finding.
func (l *Legacy) SaveState(e *ckpt.Encoder) { e.U64(l.used) }

// LoadState likewise.
func (l *Legacy) LoadState(d *ckpt.Decoder) error {
	l.used = d.U64()
	return nil
}

// OneWay has no LoadState at all: nothing the checkpoint captures can
// ever be restored.
type OneWay struct {
	seen uint64
}

// SaveState without a counterpart is itself the finding.
func (o *OneWay) SaveState(e *ckpt.Encoder) { // want ckpt-state-coverage "type OneWay has SaveState but no LoadState"
	e.U64(o.seen)
}

// tallyCounts is nested state reached one level deep from Meter.
type tallyCounts struct {
	reads  uint64
	writes uint64
}

// Meter saves t.reads but forgets t.writes; the load side covers the
// whole struct, so only the save side reports the sub-field.
type Meter struct {
	t tallyCounts // want ckpt-state-coverage "field t.writes of Meter is not referenced in SaveState"
}

// SaveState misses one sub-field of the nested struct.
func (m *Meter) SaveState(e *ckpt.Encoder) {
	e.U64(m.t.reads)
}

// LoadState reassigns the whole struct: full coverage on this side.
func (m *Meter) LoadState(d *ckpt.Decoder) error {
	m.t = tallyCounts{reads: d.U64()}
	return nil
}

// counterCore is embedded state; promoted references count as coverage
// of the embedded field itself.
type counterCore struct {
	hits   uint64
	misses uint64
}

// Wrapped is clean: it reaches the embedded fields through promotion.
type Wrapped struct {
	counterCore
}

// SaveState uses promoted selectors only.
func (w *Wrapped) SaveState(e *ckpt.Encoder) {
	e.U64(w.hits)
	e.U64(w.misses)
}

// LoadState likewise.
func (w *Wrapped) LoadState(d *ckpt.Decoder) error {
	w.hits = d.U64()
	w.misses = d.U64()
	return nil
}

// region mirrors the real tree's unexported saveState/loadState pairs;
// case-matched pairing resolves them too, and the annotated derived
// field stays exempt.
type region struct {
	key  uint64
	salt uint64 // ckpt:derived recomputed from key in loadState
}

func (r *region) saveState(e *ckpt.Encoder) { e.U64(r.key) }

func (r *region) loadState(d *ckpt.Decoder) error {
	r.key = d.U64()
	r.salt = r.key * 3
	return nil
}
