package trace

import (
	"fmt"

	"wlreviver/internal/rng"
)

// Hammer is the simplest malicious wear-out attack: it cycles writes over
// a small fixed set of addresses forever. Without wear leveling it
// destroys the targeted blocks in MeanEndurance writes.
type Hammer struct {
	n     uint64   // ckpt:skip construction-time block count, validated on restore
	addrs []uint64 // ckpt:skip construction-time target list, validated on restore
	pos   int
}

// NewHammer builds a hammer attack over the given target addresses within
// an n-block space.
func NewHammer(n uint64, targets []uint64) (*Hammer, error) {
	if n == 0 {
		return nil, fmt.Errorf("trace: NumBlocks must be positive")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("trace: hammer needs at least one target")
	}
	for _, a := range targets {
		if a >= n {
			return nil, fmt.Errorf("trace: hammer target %d outside space [0,%d)", a, n)
		}
	}
	addrs := make([]uint64, len(targets))
	copy(addrs, targets)
	return &Hammer{n: n, addrs: addrs}, nil
}

// Name implements Generator.
func (h *Hammer) Name() string { return fmt.Sprintf("hammer-%d", len(h.addrs)) }

// NumBlocks implements Generator.
func (h *Hammer) NumBlocks() uint64 { return h.n }

// Next implements Generator.
func (h *Hammer) Next() uint64 {
	a := h.addrs[h.pos]
	h.pos++
	if h.pos == len(h.addrs) {
		h.pos = 0
	}
	return a
}

// NextBatch implements BatchGenerator.
func (h *Hammer) NextBatch(dst []uint64) {
	for i := range dst {
		dst[i] = h.addrs[h.pos]
		h.pos++
		if h.pos == len(h.addrs) {
			h.pos = 0
		}
	}
}

// BirthdayParadox implements Seznec's birthday-paradox attack on
// randomized wear leveling: the attacker repeatedly hammers a freshly
// chosen random set of addresses for a burst, betting that within a burst
// the remapping has not yet rotated the hot lines away. Reference [19] of
// the paper.
type BirthdayParadox struct {
	n       uint64 // ckpt:skip construction-time block count, fingerprinted by the registry
	setSize int    // ckpt:skip construction-time set size, validated on restore
	burst   uint64 // ckpt:skip construction-time burst length, validated on restore
	src     *rng.Source
	set     []uint64
	left    uint64
	pos     int
}

// NewBirthdayParadox builds the attack: setSize random addresses are
// hammered round-robin for burst writes, then a new set is drawn.
func NewBirthdayParadox(n uint64, setSize int, burst uint64, seed uint64) (*BirthdayParadox, error) {
	if n == 0 {
		return nil, fmt.Errorf("trace: NumBlocks must be positive")
	}
	if setSize <= 0 || uint64(setSize) > n {
		return nil, fmt.Errorf("trace: set size %d invalid for %d blocks", setSize, n)
	}
	if burst == 0 {
		return nil, fmt.Errorf("trace: burst must be positive")
	}
	return &BirthdayParadox{
		n:       n,
		setSize: setSize,
		burst:   burst,
		src:     rng.New(seed ^ 0xB17DA7),
		set:     make([]uint64, setSize),
	}, nil
}

// Name implements Generator.
func (b *BirthdayParadox) Name() string {
	return fmt.Sprintf("birthday-%d@%d", b.setSize, b.burst)
}

// NumBlocks implements Generator.
func (b *BirthdayParadox) NumBlocks() uint64 { return b.n }

// Next implements Generator.
func (b *BirthdayParadox) Next() uint64 {
	if b.left == 0 {
		for i := range b.set {
			b.set[i] = b.src.Uint64n(b.n)
		}
		b.left = b.burst
		b.pos = 0
	}
	b.left--
	a := b.set[b.pos]
	b.pos++
	if b.pos == len(b.set) {
		b.pos = 0
	}
	return a
}

// NextBatch implements BatchGenerator.
func (b *BirthdayParadox) NextBatch(dst []uint64) {
	for i := range dst {
		dst[i] = b.Next()
	}
}

// verify interface compliance.
var (
	_ BatchGenerator = (*Weighted)(nil)
	_ BatchGenerator = (*Uniform)(nil)
	_ BatchGenerator = (*Hammer)(nil)
	_ BatchGenerator = (*BirthdayParadox)(nil)
)
