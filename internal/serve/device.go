package serve

import (
	"encoding/json"
	"fmt"

	"wlreviver/internal/sim"
)

// addrCtxCheck is the cancellation-check granularity for explicit
// address batches, mirroring RunContext's batch-boundary-only rule.
const addrCtxCheck = 1 << 12

// serveRequest services one mailbox request against the checked-out
// engine. It runs on the device's actor goroutine.
func (f *Fleet) serveRequest(d *device, r *request) {
	res, err := f.checkout(d)
	if err != nil {
		r.reply <- response{err: err}
		return
	}
	var val any
	switch r.op {
	case opWrite:
		val, err = f.doWrite(res, r)
	case opWriteAddrs:
		val, err = f.doWriteAddrs(res, r)
	case opStatus:
		val = statusOf(d.id, res.eng)
	case opMetrics:
		val, err = metricsOf(res.eng)
	case opCheckpoint:
		val, err = f.saveCheckpoint(res)
	default:
		err = fmt.Errorf("serve: unknown op %d", r.op)
	}
	f.checkin(res)
	r.reply <- response{val: val, err: err}
}

// doWrite services a count-granularity request in BatchWrites rounds,
// observing cancellation at round boundaries. The serviced prefix is
// journaled (sync-before-ack) whatever ended the loop, so every write
// the reply acknowledges is durable.
func (f *Fleet) doWrite(res *resident, r *request) (WriteResult, error) {
	eng := res.eng
	var done uint64
	var ctxErr error
	for done < r.count {
		batch := min(r.count-done, f.cfg.BatchWrites)
		got, err := eng.RunContext(r.ctx, batch, nil)
		done += got
		if err != nil {
			ctxErr = err
			break
		}
		if got < batch {
			break // end of life inside the round
		}
	}
	if done > 0 {
		if err := res.jl.appendCount(eng.Writes()); err != nil {
			// Applied but not journaled: the engine diverged from the
			// durable history. Poison the resident so checkin discards
			// it and the next touch reloads the acknowledged state.
			res.broken = true
			return WriteResult{}, err
		}
		if err := f.noteAcked(res, done); err != nil {
			return WriteResult{}, err
		}
	}
	return writeReply(res, r.count, done, ctxErr)
}

// doWriteAddrs services an explicit address batch in order. Addresses
// are validated against the device's software-visible space before any
// write lands, so a bad batch is all-or-nothing.
func (f *Fleet) doWriteAddrs(res *resident, r *request) (WriteResult, error) {
	for _, a := range r.addrs {
		if a >= res.vblocks {
			return WriteResult{}, fmt.Errorf("serve: address %d out of range (device has %d blocks): %w",
				a, res.vblocks, sim.ErrBadConfig)
		}
	}
	eng := res.eng
	var done int
	var ctxErr error
	for i, a := range r.addrs {
		if i%addrCtxCheck == 0 {
			if err := r.ctx.Err(); err != nil {
				ctxErr = err
				break
			}
		}
		if !eng.WriteTagged(a, eng.Writes()) {
			break
		}
		done++
	}
	if done > 0 {
		if err := res.jl.appendAddrs(eng.Writes(), r.addrs[:done]); err != nil {
			res.broken = true
			return WriteResult{}, err
		}
		if err := f.noteAcked(res, uint64(done)); err != nil {
			return WriteResult{}, err
		}
	}
	return writeReply(res, uint64(len(r.addrs)), uint64(done), ctxErr)
}

// noteAcked accounts acknowledged writes toward the durability
// checkpoint period and rolls the checkpoint when it elapses.
func (f *Fleet) noteAcked(res *resident, n uint64) error {
	res.sinceCkpt += n
	if res.sinceCkpt >= f.cfg.CheckpointEvery {
		if _, err := f.saveCheckpoint(res); err != nil {
			return err
		}
	}
	return nil
}

// writeReply assembles a write request's result, converting a
// zero-progress halt into the typed device-state error.
func writeReply(res *resident, requested, done uint64, ctxErr error) (WriteResult, error) {
	eng := res.eng
	wr := WriteResult{
		Requested: requested,
		Done:      done,
		Writes:    eng.Writes(),
		Stopped:   eng.Stopped(),
		Crippled:  eng.Crippled(),
	}
	if ctxErr != nil {
		return wr, ctxErr
	}
	if done < requested && eng.Stopped() {
		if done > 0 {
			return wr, nil // partial service: the result reports Stopped
		}
		if eng.Crippled() {
			return wr, fmt.Errorf("serve: device %q: %w", res.d.id, ErrDeviceCrippled)
		}
		return wr, fmt.Errorf("serve: device %q: %w", res.d.id, ErrDeviceStopped)
	}
	return wr, nil
}

// statusOf snapshots the engine's observable state.
func statusOf(id string, eng *sim.Engine) DeviceStatus {
	return DeviceStatus{
		ID:             id,
		Writes:         eng.Writes(),
		Stopped:        eng.Stopped(),
		Crippled:       eng.Crippled(),
		SurvivalRate:   eng.SurvivalRate(),
		UsableFraction: eng.UsableFraction(),
		WritesPerBlock: eng.WritesPerBlock(),
	}
}

// metricsOf marshals the observer report. Metrics maps marshal with
// sorted keys, so the bytes are deterministic for a given state.
func metricsOf(eng *sim.Engine) (json.RawMessage, error) {
	m, ok := eng.Metrics()
	if !ok {
		return nil, fmt.Errorf("serve: device engine has no metrics observer")
	}
	data, err := json.Marshal(m.Report())
	if err != nil {
		return nil, err
	}
	return json.RawMessage(data), nil
}
