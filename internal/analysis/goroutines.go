package analysis

import "go/ast"

// runnerFile is the one non-test file allowed to start goroutines: the
// worker pool that fans experiments out and merges results in a
// deterministic order.
const runnerFile = "internal/sim/runner.go"

// ConfinedGoroutines bans `go` statements outside internal/sim/runner.go
// and _test.go files. All concurrency flows through the worker pool,
// whose merge step is what makes parallel output byte-identical to the
// serial run; an ad-hoc goroutine anywhere else can reorder writes into
// shared results and break that equivalence in ways the race detector
// only catches probabilistically.
type ConfinedGoroutines struct{}

// Name implements Rule.
func (*ConfinedGoroutines) Name() string { return "confined-goroutines" }

// Doc implements Rule.
func (*ConfinedGoroutines) Doc() string {
	return "go statements are confined to internal/sim/runner.go and _test.go files"
}

// Check implements Rule.
func (*ConfinedGoroutines) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.Path == runnerFile || f.IsTest() {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			report(g, "go statement outside %s: route concurrency through the sim worker pool", runnerFile)
		}
		return true
	})
}
