// Package pcm models a phase-change-memory chip at memory-block
// granularity with a cell-level endurance model.
//
// A block is the wear-leveling and access unit (64 B in the paper, the
// last-level-cache line size). Each block contains Config.CellsPerBlock
// cells (bits of a 512-bit ECC group in the paper's setup). Every cell has
// a finite lifetime in writes, drawn from a normal distribution
// N(MeanEndurance, (LifetimeCoV*MeanEndurance)^2) as in the paper's setup
// (Section IV-A: 10^8 writes, CoV 0.2). Each write to a block wears all of
// its cells by one; a cell fails permanently when the block's write count
// reaches the cell's lifetime.
//
// Materialising per-cell lifetimes would cost CellsPerBlock values per
// block, so the device instead generates, per block, the ascending order
// statistics of the cell lifetimes lazily and one at a time: the k-th
// smallest of C i.i.d. uniforms is generated sequentially from the
// (k-1)-th via the standard beta-spacing recurrence, then mapped through
// the normal quantile function. Only the next-to-fail threshold is stored.
//
// The hot per-block state is structure-of-arrays: two flat uint64 slices
// (wear counters and next-failure thresholds) that the write path and the
// horizon rescan walk linearly, plus two packed bitsets (dead blocks and
// materialized schedules). Blocks that have never approached a failure
// carry only a quantized lower bound on their first threshold, looked up
// in a small table shared process-wide per endurance model; the exact
// threshold — bit-identical to the eager computation — is materialized
// the first time the lower bound is crossed, and the handful of blocks
// with materialized schedules live in a sparse index instead of three
// more per-block arrays.
//
// The device is policy-free: it reports new cell failures on each write
// and lets an error-correction scheme (package ecc) decide when a block is
// dead. Dead blocks keep accepting accesses (a real chip cannot refuse
// them); higher layers are responsible for redirection.
package pcm

import (
	"fmt"
	"math"
	"sync"

	"wlreviver/internal/bitset"
	"wlreviver/internal/obs"
	"wlreviver/internal/rng"
	"wlreviver/internal/stats"
)

// BlockID is a device address (DA) in units of blocks.
type BlockID uint64

// Config describes the simulated chip geometry and endurance model.
type Config struct {
	// NumBlocks is the number of addressable blocks, including any extra
	// blocks a wear-leveling scheme needs (e.g. Start-Gap's gap block).
	NumBlocks uint64
	// BlockBytes is the block size in bytes (paper: 64).
	BlockBytes int
	// CellsPerBlock is the number of endurance-limited cells per block
	// (paper: 512-bit ECC group).
	CellsPerBlock int
	// MeanEndurance is the mean cell lifetime in writes (paper: 1e8;
	// simulations scale it down, see DESIGN.md).
	MeanEndurance float64
	// LifetimeCoV is the coefficient of variation of cell lifetime due to
	// process variation (paper: 0.2).
	LifetimeCoV float64
	// Seed makes the chip's process variation reproducible.
	Seed uint64
	// TrackContent, when set, records a logical tag per block so tests can
	// verify no data is lost across migrations. Costs 8 B/block.
	TrackContent bool
}

// DefaultConfig returns the scaled-down default geometry used by tests
// and benches: 2^16 blocks of 64 B (4 MiB), mean endurance 10^4.
func DefaultConfig() Config {
	return Config{
		NumBlocks:     1 << 16,
		BlockBytes:    64,
		CellsPerBlock: 512,
		MeanEndurance: 1e4,
		LifetimeCoV:   0.2,
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumBlocks == 0:
		return fmt.Errorf("pcm: NumBlocks must be positive")
	case c.BlockBytes <= 0:
		return fmt.Errorf("pcm: BlockBytes must be positive, got %d", c.BlockBytes)
	case c.CellsPerBlock <= 0:
		return fmt.Errorf("pcm: CellsPerBlock must be positive, got %d", c.CellsPerBlock)
	case c.MeanEndurance <= 0:
		return fmt.Errorf("pcm: MeanEndurance must be positive, got %g", c.MeanEndurance)
	case c.LifetimeCoV < 0:
		return fmt.Errorf("pcm: LifetimeCoV must be non-negative, got %g", c.LifetimeCoV)
	}
	return nil
}

// AccessStats counts raw device accesses. The paper's Table II reports
// average PCM accesses per software-issued request; the layers above the
// device add their indirection accesses here.
type AccessStats struct {
	Reads  uint64
	Writes uint64
}

// Total returns reads+writes.
func (a AccessStats) Total() uint64 { return a.Reads + a.Writes }

// failState is a block's materialized failure-schedule position: how many
// cells have failed and the last uniform order statistic generated, from
// which the beta-spacing recurrence advances.
type failState struct {
	cells uint16  // cells failed so far
	u     float64 // U_(cells+1), the order statistic behind nextFail
}

// Device is a simulated PCM chip. It is not safe for concurrent use; the
// simulator is single-threaded per device, which mirrors a single memory
// controller and keeps the hot path allocation- and lock-free.
type Device struct {
	cfg Config // ckpt:skip construction-time config, fingerprinted by the engine

	wear     []uint64 // writes serviced per block
	nextFail []uint64 // wear threshold of the next cell failure (exact when the block's exact bit is set, else a lower bound)

	exactBits bitset.Bits // blocks whose nextFail is exact; set iff the block has a fails entry
	deadBits  bitset.Bits // blocks declared uncorrectable by the ECC layer via MarkDead

	// fails holds the schedule position for blocks whose thresholds have
	// been materialized — typically a tiny fraction of the device.
	fails map[uint64]failState

	lifeLB []uint64 // ckpt:derived shared lower-bound table, rebuilt from cfg by NewDevice

	content []uint64 // logical tag per block when TrackContent

	stats     AccessStats
	deadCount uint64
	sigma     float64 // ckpt:derived recomputed from cfg.Lifetime in NewDevice

	// Failure-horizon fast path: horizon counts device writes guaranteed
	// not to trigger a cell failure anywhere. A cell fails on the write
	// that brings its block's wear up to nextFail, and each write lowers
	// exactly one block's margin by one, so after a scan finding minimum
	// margin M the next M-1 writes are failure-free; while horizon > 0 the
	// write path skips all failure bookkeeping. Unmaterialized blocks
	// contribute their lower-bound margin, which only shortens the
	// horizon — never past a real failure. When the scan itself finds
	// a margin of 1 (a failure is imminent), rescanIn amortizes the next
	// O(NumBlocks) scan over NumBlocks checked writes so pathological
	// streams cost O(1) extra per write, not O(NumBlocks).
	horizon  uint64
	rescanIn uint64

	// ckpt:skip runtime wiring, reattached after restore
	observer obs.Observer // nil unless attached; CellFailed probe
}

// lbQuantBits quantizes the first-failure uniform variate for the shared
// lower-bound table: 2^16 entries, 512 KiB per distinct endurance model,
// cached process-wide (devices of every scale and shard share one table).
const lbQuantBits = 16

type lbKey struct {
	mean  float64
	sigma float64
	cells int
}

var (
	lbMu    sync.Mutex
	lbCache = map[lbKey][]uint64{}
)

// lifeLowerBounds returns the table mapping q = floor(v * 2^16) — v the
// block's first uniform variate — to a guaranteed lower bound on the
// block's first-failure threshold. Entry q is the exact threshold at the
// quantization cell's left edge minus a slack covering the cell width's
// effect plus floating-point non-monotonicity of Pow/Erfinv (both orders
// of magnitude below the 2^-20 relative slack) and the ceil rounding.
func lifeLowerBounds(mean, sigma float64, cells int) []uint64 {
	key := lbKey{mean: mean, sigma: sigma, cells: cells}
	lbMu.Lock()
	defer lbMu.Unlock()
	if t := lbCache[key]; t != nil {
		return t
	}
	t := make([]uint64, 1<<lbQuantBits)
	for q := range t {
		v := float64(q) / (1 << lbQuantBits)
		u := 1 - math.Pow(1-v, 1/float64(cells))
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		life := mean + sigma*math.Sqrt2*math.Erfinv(2*u-1)
		if life < 1 {
			life = 1
		}
		lb := uint64(math.Ceil(life))
		slack := 1 + lb>>20
		if lb <= slack {
			lb = 1
		} else {
			lb -= slack
		}
		t[q] = lb
	}
	lbCache[key] = t
	return t
}

// NewDevice builds a chip from cfg.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:       cfg,
		wear:      make([]uint64, cfg.NumBlocks),
		nextFail:  make([]uint64, cfg.NumBlocks),
		exactBits: bitset.New(cfg.NumBlocks),
		deadBits:  bitset.New(cfg.NumBlocks),
		fails:     make(map[uint64]failState),
		sigma:     cfg.LifetimeCoV * cfg.MeanEndurance,
	}
	d.lifeLB = lifeLowerBounds(cfg.MeanEndurance, d.sigma, cfg.CellsPerBlock)
	if cfg.TrackContent {
		d.content = make([]uint64, cfg.NumBlocks)
	}
	// Weak-tail blocks (lower bound under matFloor) get their exact first
	// threshold up front, so the few fragile blocks of a large chip cannot
	// pin the failure horizon near zero from the start; everything else
	// starts from the table.
	matFloor := uint64(math.Ceil(cfg.MeanEndurance / 16))
	for b := uint64(0); b < cfg.NumBlocks; b++ {
		v := d.cellU(BlockID(b), 0)
		q := int(v * (1 << lbQuantBits))
		if q >= 1<<lbQuantBits {
			q = 1<<lbQuantBits - 1
		}
		if lb := d.lifeLB[q]; lb > matFloor {
			d.nextFail[b] = lb
		} else {
			d.materialize(BlockID(b))
		}
	}
	d.recomputeHorizon()
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumBlocks returns the number of blocks.
func (d *Device) NumBlocks() uint64 { return d.cfg.NumBlocks }

// cellU derives the uniform variate used for the k-th order-statistic
// spacing of block b. It depends only on (seed, b, k), so failure
// schedules are independent of the order in which blocks are written —
// and of when the schedule is materialized. rng.HashFloat64Open produces
// exactly what a freshly seeded Source would, without allocating one per
// draw.
func (d *Device) cellU(b BlockID, k int) float64 {
	return rng.HashFloat64Open(d.cfg.Seed ^ (uint64(b)+1)*0x9E3779B97F4A7C15 ^ (uint64(k)+1)*0xC2B2AE3D27D4EB4F)
}

// threshold computes the wear threshold of the (k+1)-th cell failure of
// block b from prev = U_(k) (0 when k == 0), returning the threshold and
// the advanced order statistic U_(k+1). k is the number of cells already
// failed.
func (d *Device) threshold(b BlockID, k int, prev float64) (uint64, float64) {
	c := d.cfg.CellsPerBlock
	if k >= c {
		return math.MaxUint64, prev // all cells failed; no further events
	}
	// Remaining c-k uniforms are i.i.d. on (prev, 1); their minimum is
	// prev + (1-prev) * (1 - (1-V)^(1/(c-k))).
	v := d.cellU(b, k)
	u := prev + (1-prev)*(1-math.Pow(1-v, 1/float64(c-k)))
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	life := d.cfg.MeanEndurance + d.sigma*math.Sqrt2*math.Erfinv(2*u-1)
	if life < 1 {
		life = 1
	}
	return uint64(math.Ceil(life)), u
}

// materialize replaces block b's lower-bound threshold with the exact
// first-failure threshold (identical to what the eager computation would
// have produced) and records the schedule position. Only valid while the
// block has no materialized schedule. nextFail can only grow here, so an
// armed horizon stays a valid bound.
func (d *Device) materialize(b BlockID) {
	t, u := d.threshold(b, 0, 0)
	d.nextFail[b] = t
	d.fails[uint64(b)] = failState{u: u}
	d.exactBits.Set(uint64(b))
}

// Write services one write to block b, wearing it. It returns the number
// of cells that newly failed during this write (usually zero). The caller
// (the ECC layer) decides whether the block is still correctable.
func (d *Device) Write(b BlockID) int {
	if d.horizon > 0 {
		d.horizon--
		d.stats.Writes++
		d.wear[b]++
		return 0
	}
	return d.writeChecked(b)
}

// WriteNoFail attempts the failure-horizon fast write for a live block:
// when no cell anywhere can fail on this write and b is not dead, the
// write is performed and true returned. Otherwise nothing happens and the
// caller must take the full checked path (Write). This lets the backend
// skip its dead/ECC bookkeeping in one branch.
func (d *Device) WriteNoFail(b BlockID) bool {
	if d.horizon == 0 || d.deadBits.Test(uint64(b)) {
		return false
	}
	d.horizon--
	d.stats.Writes++
	d.wear[b]++
	return true
}

// writeChecked is the full write path: advance wear, materialize any cell
// failures, and re-arm the horizon when due.
func (d *Device) writeChecked(b BlockID) int {
	d.stats.Writes++
	d.wear[b]++
	newFailures := 0
	if d.wear[b] >= d.nextFail[b] {
		if !d.exactBits.Test(uint64(b)) {
			d.materialize(b)
		}
		for d.wear[b] >= d.nextFail[b] {
			fs := d.fails[uint64(b)]
			fs.cells++
			newFailures++
			t, u := d.threshold(b, int(fs.cells), fs.u)
			fs.u = u
			d.fails[uint64(b)] = fs
			d.nextFail[b] = t
			if d.observer != nil {
				d.observer.CellFailed(uint64(b), int(fs.cells))
			}
		}
	}
	if d.rescanIn > 0 {
		d.rescanIn--
	} else {
		d.recomputeHorizon()
	}
	return newFailures
}

// recomputeHorizon scans every block's failure margin and re-arms the
// fast-path countdown. O(NumBlocks) over two flat arrays; runs at
// construction, on horizon expiry, and at most once per NumBlocks checked
// writes.
func (d *Device) recomputeHorizon() {
	min := uint64(math.MaxUint64)
	for b, w := range d.wear {
		if m := d.nextFail[b] - w; m < min {
			min = m
		}
	}
	// The write reaching nextFail fails, so minimum margin M leaves M-1
	// failure-free writes. writeChecked keeps nextFail > wear, so M >= 1.
	d.horizon = min - 1
	if d.horizon == 0 {
		d.rescanIn = uint64(len(d.wear))
	}
}

// Read services one read from block b. Reads do not wear PCM cells.
func (d *Device) Read(b BlockID) {
	d.stats.Reads++
}

// Wear returns the write count of block b.
func (d *Device) Wear(b BlockID) uint64 { return d.wear[b] }

// WearCounts returns a copy of all per-block write counts, for CoV and
// leveling-quality analysis.
func (d *Device) WearCounts() []uint64 {
	out := make([]uint64, len(d.wear))
	copy(out, d.wear)
	return out
}

// WearCoV computes the coefficient of variation of per-block wear without
// copying the counts, for periodic snapshots.
func (d *Device) WearCoV() float64 {
	return stats.CoVOfCounts(d.wear)
}

// WearMoments returns the streaming moments of per-block wear. Shards of a
// partitioned chip merge these (stats.Welford.Merge) to report the whole
// chip's WearCoV without concatenating the per-shard counts.
func (d *Device) WearMoments() stats.Welford {
	return stats.WelfordOfCounts(d.wear)
}

// SetObserver attaches an event observer (nil detaches). Cell-failure
// events fire only on the checked write path; the failure-horizon fast
// path by construction services writes that cannot fail a cell.
func (d *Device) SetObserver(o obs.Observer) { d.observer = o }

// FailedCells returns the number of failed cells in block b.
func (d *Device) FailedCells(b BlockID) int { return int(d.fails[uint64(b)].cells) }

// MarkDead records that the ECC layer declared block b uncorrectable.
// Marking an already-dead block is a no-op.
func (d *Device) MarkDead(b BlockID) {
	if !d.deadBits.Test(uint64(b)) {
		d.deadBits.Set(uint64(b))
		d.deadCount++
	}
}

// Dead reports whether block b has been declared uncorrectable.
func (d *Device) Dead(b BlockID) bool { return d.deadBits.Test(uint64(b)) }

// DeadBlocks returns the number of blocks declared dead.
func (d *Device) DeadBlocks() uint64 { return d.deadCount }

// SurvivalRate returns the fraction of blocks not declared dead, the
// y-axis of the paper's Figure 6.
func (d *Device) SurvivalRate() float64 {
	return 1 - float64(d.deadCount)/float64(d.cfg.NumBlocks)
}

// Stats returns the cumulative raw access counters.
func (d *Device) Stats() AccessStats { return d.stats }

// SetContent stores a logical content tag for block b (TrackContent only).
func (d *Device) SetContent(b BlockID, tag uint64) {
	if d.content != nil {
		d.content[b] = tag
	}
}

// Content returns the logical content tag of block b (TrackContent only).
func (d *Device) Content(b BlockID) uint64 {
	if d.content == nil {
		return 0
	}
	return d.content[b]
}

// TracksContent reports whether the device records content tags.
func (d *Device) TracksContent() bool { return d.content != nil }

// PeekNextFailure returns the wear count at which block b's next cell
// failure will occur, materializing the exact threshold if the block only
// carries its lower bound. Exposed for tests and fast-forward heuristics;
// not for the hot path (materialization mutates checkpointed state).
func (d *Device) PeekNextFailure(b BlockID) uint64 {
	if !d.exactBits.Test(uint64(b)) {
		d.materialize(b)
	}
	return d.nextFail[b]
}
