package wear_test

// The one table-driven entry point running the generic Leveler
// conformance suite over every shipped scheme. A new leveler earns its
// place in the framework by adding a Factory row here.

import (
	"testing"

	"wlreviver/internal/wear"
	"wlreviver/internal/wear/conformance"
)

func TestLevelerConformance(t *testing.T) {
	factories := []conformance.Factory{
		{
			Name: "StartGap", // non-power-of-two: exercises Feistel cycle walking
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewStartGap(wear.StartGapConfig{NumPAs: 48, GapWritePeriod: 4, Seed: seed})
			},
		},
		{
			Name: "RegionedStartGap",
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewRegionedStartGap(wear.RegionedStartGapConfig{
					NumPAs: 64, Regions: 4, GapWritePeriod: 4, Seed: seed,
				})
			},
		},
		{
			Name: "SecurityRefresh",
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
					NumPAs: 64, OuterWritePeriod: 4, Seed: seed,
				})
			},
		},
		{
			Name: "SecurityRefresh2L",
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewSecurityRefresh(wear.SecurityRefreshConfig{
					NumPAs: 64, InnerRegions: 4, OuterWritePeriod: 4, InnerWritePeriod: 2, Seed: seed,
				})
			},
		},
		{
			Name: "WoLFRaM",
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewWoLFRaM(wear.WoLFRaMConfig{
					NumPAs: 64, Regions: 4, SwapWritePeriod: 4, Seed: seed,
				})
			},
		},
		{
			Name: "SoftWear", // seedless by design: deterministic from the write stream
			New: func(seed uint64) (wear.Leveler, error) {
				return wear.NewSoftWear(wear.SoftWearConfig{
					NumPAs: 64, PageBlocks: 16, EpochWrites: 48,
				})
			},
		},
	}
	for _, f := range factories {
		t.Run(f.Name, func(t *testing.T) { conformance.Run(t, f) })
	}
}
