package ckpt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// buildSample writes one of every field kind across two sections.
func buildSample() []byte {
	e := NewEncoder()
	e.Begin("alpha")
	e.U8(7)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(1 << 60)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.5)
	e.String("hello")
	e.End()
	e.Begin("beta")
	e.U64s([]uint64{1, 2, 3})
	e.U32s([]uint32{4, 5})
	e.U16s([]uint16{6})
	e.I32s([]int32{-7, 8})
	e.F64s([]float64{0.25})
	e.Bools([]bool{true, false, true})
	e.MapU64(map[uint64]uint64{9: 90, 3: 30, 6: 60})
	e.SetU64(map[uint64]struct{}{5: {}, 1: {}})
	e.End()
	return e.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample()
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if err := d.Section("alpha"); err != nil {
		t.Fatalf("Section alpha: %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool pair wrong")
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := d.Section("beta"); err != nil {
		t.Fatalf("Section beta: %v", err)
	}
	if got := d.U64s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("U64s = %v", got)
	}
	if got := d.U32s(); len(got) != 2 || got[1] != 5 {
		t.Errorf("U32s = %v", got)
	}
	if got := d.U16s(); len(got) != 1 || got[0] != 6 {
		t.Errorf("U16s = %v", got)
	}
	if got := d.I32s(); len(got) != 2 || got[0] != -7 {
		t.Errorf("I32s = %v", got)
	}
	if got := d.F64s(); len(got) != 1 || got[0] != 0.25 {
		t.Errorf("F64s = %v", got)
	}
	if got := d.Bools(); len(got) != 3 || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	m := d.MapU64()
	if len(m) != 3 || m[6] != 60 {
		t.Errorf("MapU64 = %v", m)
	}
	set := d.SetU64()
	if _, ok := set[5]; len(set) != 2 || !ok {
		t.Errorf("SetU64 = %v", set)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(buildSample(), buildSample()) {
		t.Fatal("two encodes of the same state differ")
	}
}

func TestRejectsBadHeader(t *testing.T) {
	if _, err := NewDecoder(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewDecoder([]byte("XXXX\x01\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	data := buildSample()
	data[4]++ // version
	if _, err := NewDecoder(data); err == nil {
		t.Error("bad version accepted")
	}
}

// TestRejectsOldFormatVersion pins the error a pre-SoA (version 1)
// checkpoint image produces: callers must see which versions are in
// play, not a generic parse failure, so operators know to regenerate
// the checkpoint rather than chase corruption.
func TestRejectsOldFormatVersion(t *testing.T) {
	data := buildSample()
	data[4] = 1 // rewrite the header's format version to the old layout
	_, err := NewDecoder(data)
	if err == nil {
		t.Fatal("version-1 image accepted")
	}
	want := fmt.Sprintf("version 1, want %d", Version)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the versions (want substring %q)", err, want)
	}
}

// TestRejectsCorruption flips each byte of a valid image in turn and
// asserts a full decode either fails with an error or (for bytes the
// CRC does not cover, like the header we already validated) still
// yields the original values. No flip may silently change decoded state.
func TestRejectsCorruption(t *testing.T) {
	orig := buildSample()
	decodeAll := func(data []byte) (vals []uint64, err error) {
		d, err := NewDecoder(data)
		if err != nil {
			return nil, err
		}
		if err := d.Section("alpha"); err != nil {
			return nil, err
		}
		vals = append(vals, uint64(d.U8()), uint64(d.U16()), uint64(d.U32()), d.U64(), uint64(d.I64()))
		d.Bool()
		d.Bool()
		d.F64()
		_ = d.String()
		if err := d.Section("beta"); err != nil {
			return nil, err
		}
		vals = append(vals, d.U64s()...)
		d.U32s()
		d.U16s()
		d.I32s()
		d.F64s()
		d.Bools()
		for k, v := range d.MapU64() {
			vals = append(vals, k, v)
		}
		for k := range d.SetU64() {
			vals = append(vals, k)
		}
		if err := d.Close(); err != nil {
			return nil, err
		}
		// Map/set iteration above is unordered; canonicalize by sum so
		// the comparison stays deterministic.
		var sum uint64
		for _, v := range vals {
			sum += v
		}
		return []uint64{sum}, nil
	}
	want, err := decodeAll(orig)
	if err != nil {
		t.Fatalf("decode of pristine image: %v", err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		got, err := decodeAll(mut)
		if err != nil {
			continue // rejected: good
		}
		if got[0] != want[0] {
			t.Fatalf("flip at byte %d silently changed decoded state", i)
		}
	}
	for cut := 0; cut < len(orig); cut++ {
		if _, err := decodeAll(orig[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestSectionOrderEnforced(t *testing.T) {
	d, err := NewDecoder(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("beta"); err == nil {
		t.Error("out-of-order section accepted")
	}
}

func TestUnreadBytesRejected(t *testing.T) {
	d, err := NewDecoder(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("alpha"); err != nil {
		t.Fatal(err)
	}
	d.U8()
	if err := d.Section("beta"); err == nil {
		t.Error("advancing past a partially read section accepted")
	}
}

func TestSkipRest(t *testing.T) {
	d, err := NewDecoder(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("alpha"); err != nil {
		t.Fatal(err)
	}
	d.SkipRest()
	if err := d.Section("beta"); err != nil {
		t.Errorf("Section after SkipRest: %v", err)
	}
}

func TestAllocationGuard(t *testing.T) {
	e := NewEncoder()
	e.Begin("s")
	e.U32(0xFFFFFFFF) // claims 4 billion elements with no payload behind it
	e.End()
	d, err := NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("s"); err != nil {
		t.Fatal(err)
	}
	if v := d.U64s(); v != nil || d.Err() == nil {
		t.Error("oversized count not rejected before allocation")
	}
}

func TestMapOrderValidated(t *testing.T) {
	e := NewEncoder()
	e.Begin("s")
	e.U32(2)
	e.U64(9)
	e.U64(1)
	e.U64(3) // key below previous: not a sorted emission
	e.U64(2)
	e.End()
	d, err := NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("s"); err != nil {
		t.Fatal(err)
	}
	if m := d.MapU64(); m != nil || d.Err() == nil {
		t.Error("out-of-order map keys accepted")
	}
}

// BenchmarkCkptStreamSave measures encoding a paper-shaped checkpoint
// body: a few bulk u64/u32 device arrays plus a sparse map, the mix
// SaveState emits per engine. The streaming bulk writers (Encoder.alloc
// growing the single backing buffer in place) should keep this at one
// allocation per doubling with no intermediate []byte copies.
func BenchmarkCkptStreamSave(b *testing.B) {
	const blocks = 1 << 20
	wear := make([]uint64, blocks)
	horizon := make([]uint64, blocks/64)
	next := make([]uint32, blocks/256)
	for i := range wear {
		wear[i] = uint64(i) * 2654435761
	}
	sparse := make(map[uint64]uint64, 1024)
	for i := uint64(0); i < 1024; i++ {
		sparse[i*997] = i
	}
	bytesPerOp := int64(len(wear)*8 + len(horizon)*8 + len(next)*4)
	b.SetBytes(bytesPerOp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.Begin("device")
		e.U64s(wear)
		e.U64s(horizon)
		e.MapU64(sparse)
		e.End()
		e.Begin("reviver")
		e.U32s(next)
		e.End()
		ckptBenchSink = e.Finish()
	}
}

var ckptBenchSink []byte
