package trace

import "fmt"

// Generic workload kinds for Spec.Kind. Any Table I benchmark name
// (see BenchmarkNames) is also a valid kind.
const (
	// KindUniform writes uniformly at random over Blocks.
	KindUniform = "uniform"
	// KindSkewed is a stationary workload calibrated to CoV, with
	// page-correlated weights (PageBlocks blocks per page).
	KindSkewed = "skewed"
	// KindHammer repeatedly writes the Targets addresses round-robin.
	KindHammer = "hammer"
	// KindBirthday is Seznec's birthday-paradox attack: bursts of Burst
	// writes over random SetSize-address sets.
	KindBirthday = "birthday"
)

// Spec declares a workload generator as plain data. It is the wire
// form of the public wlreviver.WorkloadSpec: JSON-taggable so fleet
// clients can post it, and resolvable inside the module without the
// import cycle the root package would create. Kind and Blocks are
// required; the remaining fields apply to the kinds noted on each.
type Spec struct {
	// Kind selects the generator family: KindUniform, KindSkewed,
	// KindHammer, KindBirthday, or a Table I benchmark name.
	Kind string `json:"kind"`
	// Blocks is the software-visible address space in blocks.
	Blocks uint64 `json:"blocks"`
	// PageBlocks is the page size in blocks driving page-correlated
	// skew (skewed and benchmark kinds).
	PageBlocks uint64 `json:"page_blocks,omitempty"`
	// CoV is the target write coefficient of variation (skewed kind).
	CoV float64 `json:"cov,omitempty"`
	// Targets are the hammered block addresses (hammer kind).
	Targets []uint64 `json:"targets,omitempty"`
	// SetSize is the number of simultaneously attacked addresses per
	// burst (birthday kind).
	SetSize int `json:"set_size,omitempty"`
	// Burst is the writes issued per attacked set (birthday kind).
	Burst uint64 `json:"burst,omitempty"`
	// Seed drives the generator's randomness (all kinds except hammer,
	// which is deterministic in Targets).
	Seed uint64 `json:"seed,omitempty"`
}

// GenericKinds lists the non-benchmark kinds for error messages.
func GenericKinds() []string {
	return []string{KindUniform, KindSkewed, KindHammer, KindBirthday}
}

// NewFromSpec builds a generator from its declarative spec — the single
// construction path both the public NewWorkload and the fleet daemon
// delegate to.
func NewFromSpec(spec Spec) (Generator, error) {
	switch spec.Kind {
	case "":
		return nil, fmt.Errorf("trace: Spec.Kind is required (generic kinds: %v; benchmarks: %v): %w",
			GenericKinds(), BenchmarkNames(), ErrUnknownWorkload)
	case KindUniform:
		return NewUniform(spec.Blocks, spec.Seed)
	case KindSkewed:
		return NewWeighted(WeightedConfig{
			NumBlocks: spec.Blocks, PageBlocks: spec.PageBlocks,
			TargetCoV: spec.CoV, Seed: spec.Seed,
		})
	case KindHammer:
		return NewHammer(spec.Blocks, spec.Targets)
	case KindBirthday:
		return NewBirthdayParadox(spec.Blocks, spec.SetSize, spec.Burst, spec.Seed)
	default:
		if _, err := LookupBenchmark(spec.Kind); err != nil {
			return nil, fmt.Errorf("trace: unknown workload kind %q (generic kinds: %v; benchmarks: %v): %w",
				spec.Kind, GenericKinds(), BenchmarkNames(), ErrUnknownWorkload)
		}
		return NewBenchmark(spec.Kind, spec.Blocks, spec.PageBlocks, spec.Seed)
	}
}
