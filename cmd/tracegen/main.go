// Command tracegen generates synthetic write traces to files in the
// repository's binary trace format, and inspects existing trace files.
//
// Generate:
//
//	tracegen -out mg.trace -workload mg -blocks 65536 -writes 10000000
//
// Inspect:
//
//	tracegen -inspect mg.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"wlreviver"
	"wlreviver/internal/stats"
	"wlreviver/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "", "output trace file")
		inspect  = flag.String("inspect", "", "trace file to inspect instead of generating")
		workload = flag.String("workload", "uniform", "workload: uniform, a Table I benchmark name, or cov:<x>")
		blocks   = flag.Uint64("blocks", 1<<16, "block address space size")
		pageBlk  = flag.Uint64("page-blocks", 64, "page size in blocks (weight correlation)")
		writes   = flag.Uint64("writes", 1_000_000, "number of writes to record")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	if *inspect != "" {
		return inspectFile(*inspect)
	}
	if *out == "" {
		return fmt.Errorf("either -out or -inspect is required")
	}

	var gen wlreviver.Workload
	var err error
	switch {
	case *workload == "uniform":
		gen, err = wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadUniform, Blocks: *blocks, Seed: *seed})
	case len(*workload) > 4 && (*workload)[:4] == "cov:":
		var cov float64
		if _, err := fmt.Sscanf((*workload)[4:], "%f", &cov); err != nil {
			return fmt.Errorf("bad cov spec %q: %w", *workload, err)
		}
		gen, err = wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadSkewed, Blocks: *blocks, PageBlocks: *pageBlk, CoV: cov, Seed: *seed})
	default:
		gen, err = wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: *workload, Blocks: *blocks, PageBlocks: *pageBlk, Seed: *seed})
	}
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.WriteTrace(f, gen, *writes); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d writes of %q over %d blocks to %s\n", *writes, gen.Name(), *blocks, *out)
	return nil
}

// inspectFile prints a trace file's header and write-distribution stats.
func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.ReadTrace(f, path)
	if err != nil {
		return err
	}
	counts := make([]uint64, r.NumBlocks())
	for i := 0; i < r.Len(); i++ {
		counts[r.Next()]++
	}
	touched := 0
	var maxCount uint64
	for _, c := range counts {
		if c > 0 {
			touched++
		}
		if c > maxCount {
			maxCount = c
		}
	}
	fmt.Printf("file:          %s\n", path)
	fmt.Printf("blocks:        %d\n", r.NumBlocks())
	fmt.Printf("writes:        %d\n", r.Len())
	fmt.Printf("touched:       %d (%.1f%%)\n", touched, 100*float64(touched)/float64(r.NumBlocks()))
	fmt.Printf("write CoV:     %.2f\n", stats.CoVOfCounts(counts))
	fmt.Printf("hottest block: %d writes\n", maxCount)
	return nil
}
