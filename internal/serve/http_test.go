package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wlreviver/internal/sim"
	"wlreviver/internal/trace"
)

// TestStatusTableRoundTrip pins the one-table contract: every sentinel
// maps to its HTTP code, and the client's kind→sentinel reverse map
// reconstructs exactly the sentinel the server classified.
func TestStatusTableRoundTrip(t *testing.T) {
	for _, row := range statusTable {
		kind, code := classify(row.err)
		if kind != row.kind || code != row.code {
			t.Errorf("classify(%v) = %q/%d, want %q/%d", row.err, kind, code, row.kind, row.code)
		}
		back := sentinelFor(kind)
		if !errors.Is(back, row.err) {
			t.Errorf("sentinelFor(%q) = %v, does not match %v", kind, back, row.err)
		}
	}
	// Unclassified errors fall through to a plain 500.
	if kind, code := classify(errors.New("surprise")); kind != "internal" || code != http.StatusInternalServerError {
		t.Errorf("unclassified error mapped to %q/%d", kind, code)
	}
	if err := sentinelFor("no-such-kind"); err != nil {
		t.Errorf("unknown kind should yield no sentinel, got %v", err)
	}
}

// TestHTTPEndToEnd drives the full API through the HTTP client against
// a handler-hosted fleet: create, list, write, metrics, checkpoint,
// delete — and checks the checkpoint bytes match the in-process view.
func TestHTTPEndToEnd(t *testing.T) {
	f, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h.Devices != 0 {
		t.Fatalf("empty health: %+v, %v", h, err)
	}
	stacks, err := c.Stacks(ctx)
	if err != nil || len(stacks) == 0 {
		t.Fatalf("stacks: %v, %v", stacks, err)
	}

	spec := testSpec(7)
	if err := c.Create(ctx, "dev", spec); err != nil {
		t.Fatal(err)
	}
	ids, err := c.List(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "dev" {
		t.Fatalf("list: %v, %v", ids, err)
	}
	wr, err := c.Write(ctx, "dev", 10_000)
	if err != nil || wr.Done != 10_000 {
		t.Fatalf("write: %+v, %v", wr, err)
	}
	addrs := []uint64{0, 3, 5, 7}
	wr, err = c.WriteAddrs(ctx, "dev", addrs)
	if err != nil || wr.Done != uint64(len(addrs)) {
		t.Fatalf("write addrs: %+v, %v", wr, err)
	}
	st, err := c.Status(ctx, "dev")
	if err != nil || st.Writes != 10_004 {
		t.Fatalf("status: %+v, %v", st, err)
	}
	raw, err := c.Metrics(ctx, "dev")
	if err != nil || !bytes.Contains(raw, []byte("counters")) {
		t.Fatalf("metrics: %v, %v", err, string(raw))
	}
	img, err := c.Checkpoint(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Checkpoint(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, direct) {
		t.Error("checkpoint over HTTP differs from in-process checkpoint")
	}
	if err := c.Delete(ctx, "dev"); err != nil {
		t.Fatal(err)
	}
	if h, err := c.Health(ctx); err != nil || h.Devices != 0 {
		t.Fatalf("health after delete: %+v, %v", h, err)
	}
}

// TestHTTPErrorTaxonomy checks errors.Is works across the wire: the
// client rehydrates the same sentinels the server-side fleet returned.
func TestHTTPErrorTaxonomy(t *testing.T) {
	f, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	if _, err := c.Status(ctx, "ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("missing device over HTTP: got %v, want ErrUnknownDevice", err)
	}
	spec := testSpec(1)
	if err := c.Create(ctx, "dev", spec); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(ctx, "dev", spec); !errors.Is(err, ErrDeviceExists) {
		t.Errorf("duplicate create over HTTP: got %v, want ErrDeviceExists", err)
	}
	bad := testSpec(1)
	bad.Workload.Kind = "nosuch"
	if err := c.Create(ctx, "dev2", bad); !errors.Is(err, trace.ErrUnknownWorkload) {
		t.Errorf("bad workload over HTTP: got %v, want ErrUnknownWorkload", err)
	}
	bad = testSpec(1)
	bad.Blocks = 3 // not a power of two
	if err := c.Create(ctx, "dev2", bad); !errors.Is(err, sim.ErrBadConfig) {
		t.Errorf("bad geometry over HTTP: got %v, want ErrBadConfig", err)
	}
	if _, err := c.WriteAddrs(ctx, "dev", []uint64{1 << 40}); !errors.Is(err, sim.ErrBadConfig) {
		t.Errorf("out-of-range address over HTTP: got %v, want ErrBadConfig", err)
	}
}

// TestHTTPRequestValidation exercises the handler's own rejects, which
// no Client call can produce.
func TestHTTPRequestValidation(t *testing.T) {
	f, err := Open(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("/v1/devices", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/devices", `{"spec":{}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id: %d, want 400", resp.StatusCode)
	}
	if err := NewClient(srv.URL, srv.Client()).Create(context.Background(), "dev", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	// A write must carry exactly one of count / addrs.
	if resp := post("/v1/devices/dev/writes", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty write: %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/devices/dev/writes", `{"count":1,"addrs":[2]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous write: %d, want 400", resp.StatusCode)
	}
}
