package reviver

import (
	"wlreviver/internal/mc"
	"wlreviver/internal/pcm"
)

// pcmBlockID aliases the device's block-address type.
type pcmBlockID = pcm.BlockID

// Interface compliance with the memory-controller plumbing.
var (
	_ mc.Protector     = (*Reviver)(nil)
	_ mc.SpaceReporter = (*Reviver)(nil)
)
