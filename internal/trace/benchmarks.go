package trace

import (
	"errors"
	"fmt"
	"sort"
)

// BenchmarkSpec describes one of the paper's Table I workloads.
type BenchmarkSpec struct {
	// Name is the benchmark's program name (e.g. "mg", "ocean").
	Name string
	// Suite is the benchmark suite it comes from.
	Suite string
	// Description summarises the program, as in Table I.
	Description string
	// WriteCoV is the coefficient of variation of its per-block write
	// counts reported in Table I; the synthetic generator is calibrated
	// to reproduce it.
	WriteCoV float64
}

// Benchmarks reproduces the paper's Table I: the eight programs and
// their write CoVs.
var Benchmarks = []BenchmarkSpec{
	{Name: "blackscholes", Suite: "PARSEC", Description: "Option pricing", WriteCoV: 8.88},
	{Name: "streamcluster", Suite: "PARSEC", Description: "Online clustering of an input stream", WriteCoV: 11.30},
	{Name: "swaptions", Suite: "PARSEC", Description: "Pricing of a portfolio of swaptions", WriteCoV: 13.17},
	{Name: "mg", Suite: "NPB", Description: "Multi-Grid on communication", WriteCoV: 40.87},
	{Name: "fft", Suite: "SPLASH-2", Description: "fast fourier transform", WriteCoV: 13.87},
	{Name: "ocean", Suite: "SPLASH-2", Description: "large-scale ocean movements", WriteCoV: 4.15},
	{Name: "radix", Suite: "SPLASH-2", Description: "integer radix sort", WriteCoV: 5.54},
	{Name: "water-spatial", Suite: "SPLASH-2", Description: "molecular dynamics N-body problem", WriteCoV: 5.44},
}

// BenchmarkNames returns the benchmark names in Table I order.
func BenchmarkNames() []string {
	names := make([]string, len(Benchmarks))
	for i, b := range Benchmarks {
		names[i] = b.Name
	}
	return names
}

// ErrUnknownWorkload reports a workload or benchmark name that no
// generator answers to. Every lookup error in this package wraps it, so
// callers classify with errors.Is instead of string matching.
var ErrUnknownWorkload = errors.New("unknown workload")

// LookupBenchmark returns the spec for a named benchmark.
func LookupBenchmark(name string) (BenchmarkSpec, error) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	known := BenchmarkNames()
	sort.Strings(known)
	return BenchmarkSpec{}, fmt.Errorf("trace: unknown benchmark %q (known: %v): %w", name, known, ErrUnknownWorkload)
}

// NewBenchmark builds the synthetic stand-in for a Table I benchmark over
// numBlocks blocks with page-correlated weights (pageBlocks blocks per
// page). See DESIGN.md for why CoV calibration preserves the paper's
// analysis.
func NewBenchmark(name string, numBlocks, pageBlocks, seed uint64) (*Weighted, error) {
	spec, err := LookupBenchmark(name)
	if err != nil {
		return nil, err
	}
	return NewWeighted(WeightedConfig{
		Label:      spec.Name,
		NumBlocks:  numBlocks,
		PageBlocks: pageBlocks,
		TargetCoV:  spec.WriteCoV,
		Seed:       seed ^ uint64(len(spec.Name))*0x51ED2701,
	})
}
