package lls

import (
	"testing"

	"wlreviver/internal/ecc"
	"wlreviver/internal/mc"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/stats"
	"wlreviver/internal/trace"
	"wlreviver/internal/wear"
)

func TestRestrictedRandomizer(t *testing.T) {
	if _, err := NewRestrictedRandomizer(0, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewRestrictedRandomizer(7, 1); err == nil {
		t.Error("odd domain accepted")
	}
	const n = 256
	r, err := NewRestrictedRandomizer(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != n {
		t.Errorf("N = %d", r.N())
	}
	seen := make(map[uint64]bool, n)
	for x := uint64(0); x < n; x++ {
		y := r.Map(x)
		if seen[y] {
			t.Fatalf("not injective at %d", x)
		}
		seen[y] = true
		if back := r.Inverse(y); back != x {
			t.Fatalf("Inverse(Map(%d)) = %d", x, back)
		}
		// The restriction: halves swap.
		if (x < n/2) == (y < n/2) {
			t.Fatalf("Map(%d) = %d stays in its half; restriction violated", x, y)
		}
	}
}

// The restricted randomizer concentrates a hot region's writes into one
// half of the space — its leveling deficit versus the full Feistel.
func TestRestrictedRandomizerWeakerSpread(t *testing.T) {
	const n = 1 << 12
	restricted, _ := NewRestrictedRandomizer(n, 9)
	full, _ := wear.NewFeistel(n, 4, 9)
	spread := func(r wear.Randomizer) float64 {
		counts := make([]uint64, n)
		// Hot region: first 64 addresses hammered.
		for i := 0; i < 1<<16; i++ {
			counts[r.Map(uint64(i)%64)]++
		}
		return stats.CoVOfCounts(counts)
	}
	// Both scramble, so CoV is similar at this granularity — but the
	// restricted one confines the image to one half: verify directly.
	inUpper := 0
	for x := uint64(0); x < 64; x++ {
		if restricted.Map(x) >= n/2 {
			inUpper++
		}
	}
	if inUpper != 64 {
		t.Errorf("restricted randomizer leaked %d/64 hot addresses out of the target half", 64-inUpper)
	}
	_ = spread(full)
}

type stack struct {
	dev *pcm.Device
	be  *mc.Backend
	lv  *wear.StartGap
	os  *osmodel.Model
	ll  *LLS
}

func newStack(t *testing.T, blocks uint64, endurance float64, chunkPages uint64) *stack {
	t.Helper()
	rnd, err := NewRestrictedRandomizer(blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := wear.NewStartGap(wear.StartGapConfig{
		NumPAs: blocks, GapWritePeriod: 8, Randomizer: rnd,
	})
	if err != nil {
		t.Fatal(err)
	}
	backupRegion := blocks / 2
	dev, err := pcm.NewDevice(pcm.Config{
		NumBlocks: blocks + 1 + backupRegion, BlockBytes: 64, CellsPerBlock: 512,
		MeanEndurance: endurance, LifetimeCoV: 0.2, Seed: 3, TrackContent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ecc.NewECP(6, dev.NumBlocks())
	osm, err := osmodel.New(blocks, 16)
	if err != nil {
		t.Fatal(err)
	}
	be := &mc.Backend{Dev: dev, ECC: e}
	ll, err := New(Config{ChunkPages: chunkPages, SalvageGroups: 4}, lv, be, osm)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{dev: dev, be: be, lv: lv, os: osm, ll: ll}
}

func (s *stack) drive(t *testing.T, g trace.Generator, n int) {
	t.Helper()
	for i := 0; i < n && !s.ll.Crippled(); i++ {
		pa, ok := s.os.Translate(g.Next())
		if !ok {
			break
		}
		s.ll.Write(pa, uint64(i))
		if !s.ll.Crippled() {
			s.lv.NoteWrite(pa, s.ll)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	s := newStack(t, 64, 1e9, 1)
	if _, err := New(Config{ChunkPages: 0, SalvageGroups: 4}, s.lv, s.be, s.os); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := New(Config{ChunkPages: 1, SalvageGroups: 0}, s.lv, s.be, s.os); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := New(Config{ChunkPages: 1000, SalvageGroups: 4}, s.lv, s.be, s.os); err == nil {
		t.Error("chunk larger than backup capacity accepted")
	}
}

func TestHealthyPath(t *testing.T) {
	s := newStack(t, 64, 1e9, 1)
	res := s.ll.Write(7, 77)
	if res.Accesses != 1 {
		t.Errorf("healthy write used %d accesses", res.Accesses)
	}
	tag, acc := s.ll.Read(7)
	if tag != 77 || acc != 1 {
		t.Errorf("read = (%d,%d)", tag, acc)
	}
	if s.ll.Name() != "LLS" || s.ll.ResumePending() != 0 {
		t.Error("metadata wrong")
	}
	if s.ll.SoftwareUsableFraction() != 1 {
		t.Error("fresh LLS should be fully usable")
	}
}

func TestFailureReservesChunkAndRemaps(t *testing.T) {
	s := newStack(t, 128, 300, 1)
	g, _ := trace.NewUniform(128, 4)
	s.drive(t, g, 400_000)
	st := s.ll.Stats()
	if st.Failures == 0 {
		t.Fatal("no failure occurred at 300 endurance")
	}
	if st.ChunksReserved == 0 {
		t.Fatal("failures occurred but no chunk was reserved")
	}
	// Space drops in chunk-page steps.
	want := 1 - float64(st.ChunksReserved)*1*16/128.0/16*16 // ChunkPages=1, 8 pages total
	_ = want
	if s.ll.SoftwareUsableFraction() >= 1 {
		t.Error("chunk reservation should reduce usable space")
	}
	retired := s.os.RetiredPages()
	if retired != st.ChunksReserved*1 {
		t.Errorf("retired %d pages for %d chunks of 1 page", retired, st.ChunksReserved)
	}
}

// Remapped data stays readable across wear-leveling migrations.
func TestDataIntegrityAcrossMigrations(t *testing.T) {
	s := newStack(t, 128, 350, 1)
	g, _ := trace.NewUniform(128, 5)
	last := make(map[uint64]uint64)
	for i := 0; i < 400_000 && !s.ll.Crippled(); i++ {
		v := g.Next()
		pa, ok := s.os.Translate(v)
		if !ok {
			break
		}
		s.ll.Write(pa, uint64(i))
		last[pa] = uint64(i)
		if !s.ll.Crippled() {
			s.lv.NoteWrite(pa, s.ll)
		}
		if i%10_000 == 0 {
			for p, want := range last {
				if s.os.Retired(p) {
					delete(last, p)
					continue
				}
				if got, _ := s.ll.Read(p); got != want {
					t.Fatalf("PA %d reads %d, want %d at iteration %d", p, got, want, i)
				}
			}
		}
	}
	if s.ll.Stats().Failures == 0 {
		t.Skip("no failures; integrity under remapping not exercised")
	}
}

func TestUncachedAccessesCostThree(t *testing.T) {
	s := newStack(t, 128, 300, 1)
	g, _ := trace.NewUniform(128, 6)
	s.drive(t, g, 300_000)
	st := s.ll.Stats()
	if st.Failures == 0 {
		t.Skip("no failures")
	}
	ratio := float64(st.RequestAccesses) / float64(st.SoftwareWrites+st.SoftwareReads)
	if ratio <= 1.0 {
		t.Errorf("failed-block accesses should exceed 1 access/request, got %v", ratio)
	}
	if ratio > 3.5 {
		t.Errorf("access ratio %v implausibly high", ratio)
	}
}

func TestExhaustionExposes(t *testing.T) {
	s := newStack(t, 64, 100, 1)
	g, _ := trace.NewUniform(64, 7)
	s.drive(t, g, 3_000_000)
	if !s.ll.Crippled() {
		t.Fatal("LLS survived unbounded wear-out")
	}
}

func TestShiftWritesHappen(t *testing.T) {
	s := newStack(t, 128, 250, 1)
	g, _ := trace.NewUniform(128, 8)
	s.drive(t, g, 500_000)
	st := s.ll.Stats()
	if st.Failures < 3 {
		t.Skip("too few failures to observe shifting")
	}
	if st.ShiftWrites == 0 {
		t.Error("multiple failures but no order-matching shifts")
	}
}
