// Fixture: confined-goroutines positive and suppressed sites — a go
// statement outside internal/sim/runner.go.
package stats

// FanOut starts ad-hoc goroutines; the first is a finding, the second
// carries a justified suppression.
func FanOut(f func()) {
	go f() // want confined-goroutines "go statement outside internal/sim/runner.go"
	//lint:ignore confined-goroutines fixture demonstrates a justified suppression
	go f()
}
