// Package reviver implements WL-Reviver (Fan et al., DSN 2014): a
// framework that lets any in-PCM wear-leveling scheme keep functioning
// after block failures, with no OS support beyond standard
// exception-driven page retirement.
//
// # Design recap (paper §III)
//
// A failed memory block (a device address, DA) is never linked directly
// to a healthy spare block. Instead it is linked to a *virtual shadow
// block* — a physical address (PA) inside an OS page that was retired
// after a reported access error and is therefore invisible to software.
// The PA's current PA→DA mapping, owned by the wear-leveling scheme,
// supplies the actual *shadow block*; when the scheme migrates data and
// updates its mapping, the shadow follows automatically and no pointer
// ever needs rewriting.
//
// Spare PAs are acquired implicitly and incrementally: the first failure
// (or any failure arriving when the spare pool is empty during a software
// write) is reported to the OS, which retires the 4 KB page around the
// reported address; the page's 64 PAs become spares. Failures detected
// during wear-leveling migrations cannot be reported (that would need a
// new interrupt type), so the migration is suspended and the *next
// software write* is reported as failed in its place — a sacrifice the OS
// already knows how to recover from (§III-A).
//
// Each acquired page is split into a virtual-shadow section and an
// inverse-pointer section (Fig. 4): inverse pointers (virtual shadow PA →
// failed DA) let the framework reduce every multi-step chain to one step
// by switching two failed blocks' virtual shadows (Figs. 2–3), so any
// software-reachable failed block is always exactly one hop from a
// healthy shadow (Theorem 1). Blocks whose virtual shadow maps straight
// back to them form PA-DA loops; they hold no data and are unreachable
// from software (Theorems 2–3).
package reviver

import (
	"fmt"
	"sort"

	"wlreviver/internal/cache"
	"wlreviver/internal/mc"
	"wlreviver/internal/obs"
	"wlreviver/internal/osmodel"
	"wlreviver/internal/wear"
)

// Config parameterises the framework.
type Config struct {
	// PointerBytes is the stored size of a PA pointer (paper: 4, i.e.
	// 32-bit). It determines how many inverse pointers fit in one block
	// and thus the split of an acquired page into shadow and
	// inverse-pointer sections.
	PointerBytes int
	// RemapCache, when non-nil, caches failed-block remap metadata so a
	// hit skips the in-block pointer read (Table II's 32 KB cache).
	RemapCache *cache.Cache
	// DisableChainReduction turns off the virtual-shadow switching that
	// keeps chains at one step. For the ablation benchmark only; the
	// paper's design always reduces.
	DisableChainReduction bool
	// ImmediateAcquisition models §III-A's first option: instead of
	// suspending a starved migration until the next software write can be
	// sacrificed, the controller interrupts the OS immediately to acquire
	// a page — a design the paper rejects because it needs a new
	// interrupt type and OS changes. For the ablation benchmark.
	ImmediateAcquisition bool
	// Observer, when non-nil, receives a Revived event each time a failed
	// block is linked to a virtual shadow PA.
	Observer obs.Observer
}

// Stats counts the framework's activity.
type Stats struct {
	// SoftwareWrites and SoftwareReads count serviced requests.
	SoftwareWrites uint64
	SoftwareReads  uint64
	// RequestAccesses counts raw PCM accesses performed to service
	// software requests (data accesses plus chain pointer reads); the
	// paper's Table II reports RequestAccesses / requests.
	RequestAccesses uint64
	// MaintenanceAccesses counts raw accesses for everything else:
	// migrations, link writes, inverse-pointer updates.
	MaintenanceAccesses uint64
	// PagesAcquired counts OS pages retired on the framework's behalf.
	PagesAcquired uint64
	// SacrificedWrites counts healthy writes reported as failed to
	// trigger an acquisition for a suspended migration.
	SacrificedWrites uint64
	// LinksCreated counts failed blocks linked to virtual shadows.
	LinksCreated uint64
	// ChainSwitches counts multi-step chain reductions performed.
	ChainSwitches uint64
	// Suspensions counts wear-leveling operations suspended for lack of
	// spare PAs.
	Suspensions uint64
	// RelocationsDropped counts page-retirement recovery copies that
	// could not be completed (unrecoverable blocks).
	RelocationsDropped uint64
}

// chainLink records one dead block on a walked chain together with the
// virtual shadow PA that was followed out of it.
type chainLink struct {
	da  uint64
	via uint64
}

// pendingVal buffers the data of a suspended delivery so reads stay
// consistent while the migration waits for spare space (the hardware
// analogue is the migration buffer in the memory controller).
type pendingVal struct {
	tag uint64
	has bool
}

// pendingOp is a suspended wear-leveling delivery: write tag into the
// storage chain of entry, with the chain head reachable through headPA.
type pendingOp struct {
	entry   uint64
	tag     uint64
	has     bool
	headPA  uint64
	hasHead bool
}

// shadowNode is one virtual shadow PA's record in the flat arena: the PA
// itself, the failed DA currently linked to it (noDA while the PA sits in
// the spare pool), the pointer-section PA that stores its inverse pointer
// (noSlot when the acquired page had no pointer section), and the free-
// list link threading spare nodes. Nodes are append-only — a shadow PA
// keeps its arena slot for the chip's lifetime — so u32 indices into the
// one slice replace per-entry pointers and SaveState can emit the whole
// remap state as one contiguous section.
type shadowNode struct {
	pa   uint64
	da   uint64
	slot uint64
	next uint32
}

const (
	noDA   = ^uint64(0)
	noSlot = ^uint64(0)
	noNode = ^uint32(0)
)

// Reviver is the WL-Reviver framework instance for one chip.
type Reviver struct {
	cfg Config         // ckpt:skip construction-time config, fingerprinted by the engine
	lv  wear.Leveler   // ckpt:skip wiring; the leveler checkpoints itself
	be  *mc.Backend    // ckpt:skip wiring; the backend checkpoints itself
	os  *osmodel.Model // ckpt:skip wiring; the OS model checkpoints itself

	// nodes is the shadow arena (see shadowNode); freeHead threads the
	// spare pool through it newest-first, generalising the paper's
	// [current, last] register pair to tolerate skips.
	nodes    []shadowNode
	freeHead uint32
	byDA     map[uint64]uint32 // ckpt:derived failed DA -> arena index, rebuilt in LoadState
	byPA     map[uint64]uint32 // ckpt:derived shadow PA -> arena index, rebuilt in LoadState
	spares   int               // ckpt:derived free-list length, recounted in LoadState

	pending  []pendingOp
	pendVals map[uint64]pendingVal // entry DA -> buffered data while suspended
	orphans  map[uint64]struct{}   // dead blocks left unlinked by starved walks

	// lastWritePA remembers the most recent software write target for
	// the ImmediateAcquisition ablation (the page the OS interrupt
	// reports against). Stored as value+flag so recording it on every
	// write stays allocation-free.
	lastWritePA uint64
	lastWriteOK bool

	shadowPerPage uint64 // ckpt:derived recomputed from the page geometry in New
	st            Stats
}

// New builds a Reviver over a leveler, a backend and the OS model. The
// leveler's PA space must match the OS model's block count, and the
// backend's device must cover the leveler's DA space.
func New(cfg Config, lv wear.Leveler, be *mc.Backend, os *osmodel.Model) (*Reviver, error) {
	if cfg.PointerBytes <= 0 {
		cfg.PointerBytes = 4
	}
	blockBytes := be.Dev.Config().BlockBytes
	perBlock := uint64(blockBytes / cfg.PointerBytes)
	if perBlock == 0 {
		return nil, fmt.Errorf("reviver: pointer size %dB exceeds block size %dB",
			cfg.PointerBytes, blockBytes)
	}
	bpp := os.BlocksPerPage()
	shadow := bpp * perBlock / (perBlock + 1)
	if shadow == 0 {
		return nil, fmt.Errorf("reviver: page of %d blocks too small for a shadow section", bpp)
	}
	if lv.NumPAs() != os.NumPages()*bpp {
		return nil, fmt.Errorf("reviver: leveler PA space %d != OS space %d blocks",
			lv.NumPAs(), os.NumPages()*bpp)
	}
	if lv.NumDAs() > be.Dev.NumBlocks() {
		return nil, fmt.Errorf("reviver: leveler DA space %d exceeds device %d blocks",
			lv.NumDAs(), be.Dev.NumBlocks())
	}
	return &Reviver{
		cfg:           cfg,
		lv:            lv,
		be:            be,
		os:            os,
		freeHead:      noNode,
		byDA:          make(map[uint64]uint32),
		byPA:          make(map[uint64]uint32),
		pendVals:      make(map[uint64]pendingVal),
		orphans:       make(map[uint64]struct{}),
		shadowPerPage: shadow,
	}, nil
}

// Name implements mc.Protector.
func (r *Reviver) Name() string { return "WL-Reviver" }

// Stats returns a copy of the activity counters.
func (r *Reviver) Stats() Stats { return r.st }

// AvailableSpares returns the number of unlinked reserved PAs.
func (r *Reviver) AvailableSpares() int { return r.spares }

// LinkedFailures returns the number of failed blocks currently linked to
// virtual shadows.
func (r *Reviver) LinkedFailures() int { return len(r.byDA) }

// HasPending reports whether a wear-leveling delivery is suspended.
func (r *Reviver) HasPending() bool { return len(r.pending) > 0 }

// ---- spare-PA management -------------------------------------------------

// takePA hands out an unlinked reserved PA whose effective (post-update)
// mapping target is neither cur nor already on the walked path. Exclusion
// prevents two degenerate links: a PA mapping straight back to the block
// being linked (a data-less loop while data still needs storing), and a
// PA mapping into a block already on the chain being walked (which would
// close a pointer cycle). The free list runs newest-acquisition-first;
// skipped nodes stay threaded in place, so the scan order matches the
// paper's register-pair intent. The exclusion is passed as explicit walk
// state rather than a closure so the per-write delivery path performs no
// allocations.
func (r *Reviver) takePA(path []chainLink, cur uint64, rm remap) (uint64, bool) {
	prev := noNode
	for idx := r.freeHead; idx != noNode; idx = r.nodes[idx].next {
		p := r.nodes[idx].pa
		if onWalk(path, cur, rm.mapPA(r, p)) {
			prev = idx
			continue
		}
		if prev == noNode {
			r.freeHead = r.nodes[idx].next
		} else {
			r.nodes[prev].next = r.nodes[idx].next
		}
		r.nodes[idx].next = noNode
		r.spares--
		return p, true
	}
	return 0, false
}

// pushSpare returns a node to the head of the spare free list.
func (r *Reviver) pushSpare(idx uint32) {
	r.nodes[idx].next = r.freeHead
	r.freeHead = idx
	r.spares++
}

// onWalk reports whether da is the walk's current block or a block
// already on the walked path.
func onWalk(path []chainLink, cur, da uint64) bool {
	if da == cur {
		return true
	}
	for _, l := range path {
		if l.da == da {
			return true
		}
	}
	return false
}

// link records da's virtual shadow: the PA pointer is written into the
// failed block itself (readable thanks to strong in-block coding, as in
// FREE-p/Zombie), and the inverse pointer is written into the block
// mapped by the PA's pointer-section slot. p must have come from takePA
// (off the free list).
func (r *Reviver) link(da, p uint64) {
	delete(r.orphans, da)
	idx := r.byPA[p]
	r.nodes[idx].da = da
	r.byDA[da] = idx
	r.writeInv(idx)
	r.be.Dev.Write(pcmBlock(da)) // pointer write into the failed block
	r.st.MaintenanceAccesses++
	r.st.LinksCreated++
	if r.cfg.RemapCache != nil {
		r.cfg.RemapCache.Invalidate(da)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.Revived(da, p)
	}
}

// writeInv models rewriting the inverse pointer of the shadow at idx,
// wearing the pointer block that stores it. Inverse-pointer blocks are
// not themselves failure-protected: the paper notes they are written
// rarely and can be rebuilt by a full PCM scan if lost, so the logical
// mapping (the arena) is kept authoritative here.
func (r *Reviver) writeInv(idx uint32) {
	if slot := r.nodes[idx].slot; slot != noSlot {
		r.be.Dev.Write(pcmBlock(r.lv.Map(slot)))
		r.st.MaintenanceAccesses++
	}
}

// acquirePage reports an access failure at reportPA to the OS, which
// retires the surrounding page and relocates its live data to a donor
// page (the recovery the paper's §III-A relies on). The page's PAs are
// split per Fig. 4: the first shadowPerPage become spare virtual shadows,
// the rest address the blocks that will store their inverse pointers.
//
// The recovery copies are performed here, in exception-handling order:
// the page's data is snapshotted before any of its blocks can be reused
// as shadow storage, then delivered to the donor page. The returned
// relocations are the copies actually performed (informational — the
// caller must not replay them). A block whose data was already lost (the
// genuinely failed block being written) naturally drops out because its
// chain holds no data.
func (r *Reviver) acquirePage(reportPA uint64) []osmodel.Relocation {
	pas, relocs := r.os.ReportFailure(reportPA)
	type saved struct {
		rc  osmodel.Relocation
		tag uint64
	}
	toCopy := make([]saved, 0, len(relocs))
	for _, rc := range relocs {
		tag, has, acc := r.readEffective(r.lv.Map(rc.OldPA))
		r.st.MaintenanceAccesses += acc
		if has {
			toCopy = append(toCopy, saved{rc: rc, tag: tag})
		}
	}
	shadow := pas[:r.shadowPerPage]
	slots := pas[r.shadowPerPage:]
	perBlock := uint64(r.be.Dev.Config().BlockBytes / r.cfg.PointerBytes)
	for i, p := range shadow {
		slot := noSlot
		if len(slots) > 0 {
			slot = slots[uint64(i)/perBlock]
		}
		idx := uint32(len(r.nodes))
		r.nodes = append(r.nodes, shadowNode{pa: p, da: noDA, slot: slot, next: noNode})
		r.byPA[p] = idx
		r.pushSpare(idx)
	}
	performed := make([]osmodel.Relocation, 0, len(toCopy))
	for _, s := range toCopy {
		acc, needPA, _ := r.deliver(r.lv.Map(s.rc.NewPA), s.tag, nil, remap{}, true, true)
		r.st.MaintenanceAccesses += acc
		if needPA {
			// Even the fresh page could not supply a spare for the copy
			// target's chain; the OS would log an unrecoverable block.
			r.st.RelocationsDropped++
			continue
		}
		performed = append(performed, s.rc)
	}
	r.st.PagesAcquired++
	r.sweepOrphans()
	return performed
}

// sweepOrphans restores Theorem 2 after an acquisition: every dead block
// left unlinked by a spare-starved walk is linked now that fresh spares
// exist (best-effort; a block is re-orphaned if spares run out again).
// The sweep runs in ascending-DA order: each relink consumes spares and
// wears blocks, so an unordered map walk here would let two identical
// runs diverge.
func (r *Reviver) sweepOrphans() {
	if len(r.orphans) == 0 {
		return
	}
	das := make([]uint64, 0, len(r.orphans))
	for da := range r.orphans {
		das = append(das, da)
	}
	sort.Slice(das, func(i, j int) bool { return das[i] < das[j] })
	for _, da := range das {
		if !r.be.Dead(da) {
			delete(r.orphans, da)
			continue
		}
		if _, linked := r.byDA[da]; linked {
			delete(r.orphans, da)
			continue
		}
		if _, suspended := r.pendVals[da]; suspended {
			// A suspended delivery targets this block: its data sits in
			// the migration buffer and its pendingOp carries the correct
			// chain head. Relinking it here with a data-less walk would
			// let reduce rewire the head onto storage that never receives
			// the buffered data; resume() relinks it properly instead.
			continue
		}
		headPA, okHead := r.lv.Inverse(da)
		head := r.chainHead(headPA, okHead, da)
		acc, _, _ := r.deliver(da, 0, head, remap{}, false, false)
		r.st.MaintenanceAccesses += acc
	}
}

// ---- chain walking -------------------------------------------------------

// walkLimit bounds chain walks in introspection helpers; the delivery
// walk itself is bounded by the DA-space size (a chain can legitimately
// thread many dead blocks in a heavily degraded chip before reduction
// collapses it, but it can never revisit one).
const walkLimit = 64

// remap overlays the in-flight mapping update onto the leveler's current
// (pre-update) mapping. Mover calls arrive before the scheme commits its
// update (see wear.Mover), but deliveries must place data where the
// post-update mapping will look for it; the overlay covers the one or
// two PAs whose targets are changing.
type remap struct {
	pa1, da1 uint64
	pa2, da2 uint64
	n        uint8
}

// mapPA resolves p under the post-update mapping.
func (m remap) mapPA(r *Reviver, p uint64) uint64 {
	if m.n > 0 && p == m.pa1 {
		return m.da1
	}
	if m.n > 1 && p == m.pa2 {
		return m.da2
	}
	return r.lv.Map(p)
}

// deliver writes tag into the storage reachable through entry — the
// single fundamental operation the framework performs on behalf of both
// software writes and wear-leveling migrations. It walks the chain from
// entry, linking any newly failed blocks it encounters, writes the data
// into the first healthy block (when doWrite is set), and then reduces
// the walked chain to one step by switching virtual shadows.
//
// head seeds the walk with a chain element *above* entry: the failed
// block whose virtual shadow will map to entry once the in-flight
// mapping update lands (scenario 2, Fig. 3).
//
// needPA is returned when a link was needed but no spare PA exists; in
// that case no data was written and the caller must suspend. stopDA is
// then the block the walk starved at: the pre-return reduce() has
// already rewired the walked chain one hop from that block, so a
// suspension must target stopDA (via retarget), not the original entry
// — which may now sit on a dataless loop.
func (r *Reviver) deliver(entry, tag uint64, head []chainLink, rm remap, doWrite, hasData bool) (accesses uint64, needPA bool, stopDA uint64) {
	if doWrite && hasData {
		if _, suspended := r.pendVals[entry]; suspended {
			// A suspended delivery already targets this entry; writing
			// around it would be undone when it resumes with its stale
			// buffer. Supersede the buffered value instead — the
			// suspended op places the new data when spares allow, and
			// reads see it through the buffer meanwhile. (resume itself
			// clears the buffer before delivering, so it never lands
			// here.)
			r.pendVals[entry] = pendingVal{tag: tag, has: true}
			for i := range r.pending {
				if r.pending[i].entry == entry {
					r.pending[i].tag = tag
					r.pending[i].has = true
					break
				}
			}
			return 0, false, entry
		}
	}
	path := head
	cur := entry
	limit := int(r.lv.NumDAs()) + 8
	for steps := 0; ; steps++ {
		if steps > limit {
			panic(fmt.Sprintf("reviver: chain walk from DA %d exceeded %d steps; invariant broken", entry, limit))
		}
		if !r.be.Dead(cur) {
			if doWrite && hasData {
				accesses++
				if !r.be.WriteRaw(cur) {
					// The block died under this very write (Fig. 2c).
					var ok bool
					if path, cur, ok = r.freshLink(path, cur, rm); !ok {
						r.orphans[cur] = struct{}{}
						r.reduce(path) // shorten what was walked so far
						return accesses, true, cur
					}
					continue
				}
				if r.be.Dev.TracksContent() {
					r.be.Dev.SetContent(pcmBlock(cur), tag)
				}
			}
			break
		}
		// Dead block: follow (or create) its virtual shadow link.
		idx, linked := r.byDA[cur]
		var p uint64
		if linked {
			p = r.nodes[idx].pa
		}
		if linked && onWalk(path, cur, rm.mapPA(r, p)) {
			// Following the existing link would close a cycle: either the
			// block sits on a PA-DA loop that data now needs to flow
			// through, or the link points back into the walked chain.
			// Recycle the virtual shadow into the spare pool and relink
			// the block afresh.
			r.nodes[idx].da = noDA
			delete(r.byDA, cur)
			r.pushSpare(idx)
			linked = false
		}
		if !linked {
			var ok bool
			if path, cur, ok = r.freshLink(path, cur, rm); !ok {
				r.orphans[cur] = struct{}{}
				r.reduce(path) // shorten what was walked so far
				return accesses, true, cur
			}
			continue
		}
		// Reading the in-block pointer costs one access unless the
		// remap cache holds it.
		if r.cfg.RemapCache == nil || !r.cfg.RemapCache.Lookup(cur) {
			r.be.ReadRaw(cur)
			accesses++
		}
		path = append(path, chainLink{da: cur, via: p})
		cur = rm.mapPA(r, p)
	}
	r.reduce(path)
	return accesses, false, entry
}

// retarget redirects a starved delivery to the walk's starvation point.
// deliver has already reduced the walked chain one hop from stopDA, so
// resuming at the original entry would place the data on a detached
// loop. When the target moves, the head is re-derived from the mapping:
// the PA mapping to stopDA now threads it from the rewired chain head.
func (r *Reviver) retarget(stopDA, entry uint64, headPA uint64, hasHead bool) (uint64, uint64, bool) {
	if stopDA == entry {
		return entry, headPA, hasHead
	}
	p, ok := r.lv.Inverse(stopDA)
	return stopDA, p, ok
}

// freshLink links cur to a spare PA (judged under the effective
// post-update mapping), extending the walk through it. It returns the
// grown path and the new cursor; ok is false when the spare pool is
// starved, leaving path and cur unchanged.
func (r *Reviver) freshLink(path []chainLink, cur uint64, rm remap) ([]chainLink, uint64, bool) {
	p, ok := r.takePA(path, cur, rm)
	if !ok {
		return path, cur, false
	}
	r.link(cur, p)
	path = append(path, chainLink{da: cur, via: p})
	return path, rm.mapPA(r, p), true
}

// reduce collapses a walked multi-step chain to one step: the chain's
// first failed block adopts the last virtual shadow (one hop from the
// final storage), and every other failed block adopts its predecessor's
// virtual shadow, placing it on a data-less PA-DA loop (Figs. 2d, 3b).
func (r *Reviver) reduce(path []chainLink) {
	if len(path) < 2 || r.cfg.DisableChainReduction {
		return
	}
	last := path[len(path)-1].via
	r.rewritePtr(path[0].da, last)
	for i := 1; i < len(path); i++ {
		r.rewritePtr(path[i].da, path[i-1].via)
	}
	r.st.ChainSwitches++
}

// rewritePtr points da's virtual shadow at p, updating the in-block
// pointer, the inverse pointer, and the remap cache. Only reduce calls
// it, with a permutation of the walked path's (da, via) pairs, so every
// arena node touched here is reassigned exactly once and no stale byDA
// entry survives the loop.
func (r *Reviver) rewritePtr(da, p uint64) {
	idx := r.byPA[p]
	r.nodes[idx].da = da
	r.byDA[da] = idx
	r.writeInv(idx)
	r.be.Dev.Write(pcmBlock(da))
	r.st.MaintenanceAccesses++
	if r.cfg.RemapCache != nil {
		r.cfg.RemapCache.Invalidate(da)
	}
}

// readEffective walks the chain from da and reads the logical data
// stored for it. has is false when da is on a data-less PA-DA loop (or
// an unlinked failure being handled elsewhere).
func (r *Reviver) readEffective(da uint64) (tag uint64, has bool, accesses uint64) {
	cur := da
	for steps := 0; ; steps++ {
		if steps > walkLimit {
			panic(fmt.Sprintf("reviver: read walk from DA %d exceeded %d steps", da, walkLimit))
		}
		if v, pending := r.pendVals[cur]; pending {
			// The data sits in the controller's suspended-migration
			// buffer. Checked at every step, not just the entry: a chain
			// may legitimately run through a block whose own delivery is
			// suspended (the head was walked before the suspension).
			return v.tag, v.has, accesses
		}
		if !r.be.Dead(cur) {
			r.be.ReadRaw(cur)
			accesses++
			return r.be.Dev.Content(pcmBlock(cur)), true, accesses
		}
		idx, linked := r.byDA[cur]
		if !linked {
			return 0, false, accesses // unlinked failure: no stored data
		}
		next := r.lv.Map(r.nodes[idx].pa)
		if next == cur {
			return 0, false, accesses // PA-DA loop: no data behind it
		}
		if r.cfg.RemapCache == nil || !r.cfg.RemapCache.Lookup(cur) {
			r.be.ReadRaw(cur)
			accesses++
		}
		cur = next
	}
}

// chainHead returns the one-element head slice for a delivery whose
// entry will, after the in-flight mapping update, be mapped by headPA —
// when headPA is some failed block's virtual shadow, that block's chain
// now runs through the entry and must join the reduction. A head equal
// to the entry itself (the entry's own shadow is remapping onto it) is
// omitted: the walk's loop-recycling handles that case directly.
func (r *Reviver) chainHead(headPA uint64, ok bool, entry uint64) []chainLink {
	if !ok {
		return nil
	}
	idx, isShadow := r.byPA[headPA]
	if !isShadow {
		return nil
	}
	d := r.nodes[idx].da
	if d == noDA || d == entry || !r.be.Dead(d) {
		return nil
	}
	return []chainLink{{da: d, via: headPA}}
}

// ---- mc.Protector: software request path ----------------------------------

// Write implements mc.Protector. See package comment for the sacrifice
// protocol when a suspended migration is waiting for spare space.
func (r *Reviver) Write(pa, tag uint64) mc.WriteResult {
	r.st.SoftwareWrites++
	if len(r.pending) > 0 {
		if r.spares > 0 {
			r.resume()
		}
		if len(r.pending) > 0 {
			// Sacrifice this write: report it to the OS as failed even
			// though it may not be (§III-A). The OS retires the page and
			// redirects the write to an alternative location; the caller
			// retries at the new translation.
			relocs := r.acquirePage(pa)
			r.st.SacrificedWrites++
			return mc.WriteResult{Relocations: relocs, Retry: true}
		}
	}
	r.lastWritePA = pa
	r.lastWriteOK = true
	da := r.lv.Map(pa)
	accesses, needPA, _ := r.deliver(da, tag, nil, remap{}, true, true)
	r.st.RequestAccesses += accesses
	if needPA {
		// A genuine write failure with the spare pool empty: report it.
		relocs := r.acquirePage(pa)
		return mc.WriteResult{Accesses: accesses, Relocations: relocs, Retry: true}
	}
	return mc.WriteResult{Accesses: accesses}
}

// Read implements mc.Protector.
func (r *Reviver) Read(pa uint64) (uint64, uint64) {
	r.st.SoftwareReads++
	tag, _, accesses := r.readEffective(r.lv.Map(pa))
	r.st.RequestAccesses += accesses
	return tag, accesses
}

// ResumePending implements mc.Protector.
func (r *Reviver) ResumePending() uint64 {
	if len(r.pending) == 0 || r.spares == 0 {
		return 0
	}
	return r.resume()
}

// resume retries suspended deliveries in order until they complete or
// spare PAs run out again.
func (r *Reviver) resume() uint64 {
	var total uint64
	for len(r.pending) > 0 {
		op := r.pending[0]
		// Clear the buffer first: deliver treats a buffered entry as "a
		// suspended op owns this" and would supersede instead of writing.
		delete(r.pendVals, op.entry)
		head := r.chainHead(op.headPA, op.hasHead, op.entry)
		accesses, needPA, stop := r.deliver(op.entry, op.tag, head, remap{}, true, op.has)
		total += accesses
		if needPA {
			// Still starved: the failed walk may have rewired the chain
			// again, so re-aim the op at the new starvation point and
			// restore the buffer there so reads stay consistent until
			// the next sacrifice frees spares.
			e, h, ok := r.retarget(stop, op.entry, op.headPA, op.hasHead)
			r.pending[0].entry, r.pending[0].headPA, r.pending[0].hasHead = e, h, ok
			r.pendVals[e] = pendingVal{tag: op.tag, has: op.has}
			break
		}
		r.pending = r.pending[1:]
	}
	r.st.MaintenanceAccesses += total
	return total
}

// suspend parks a delivery until spare space arrives, buffering its data
// so reads stay consistent (the paper suspends the whole migration in
// the controller; buffering the one moved block is the simulation
// equivalent — observable behaviour is identical). Under the
// ImmediateAcquisition ablation it instead interrupts the OS right away
// and completes the delivery.
func (r *Reviver) suspend(entry, tag uint64, has bool, headPA uint64, hasHead bool) {
	if r.cfg.ImmediateAcquisition && r.lastWriteOK && !r.os.Retired(r.lastWritePA) {
		r.acquirePage(r.lastWritePA)
		r.lastWriteOK = false
		accesses, needPA, stop := r.deliver(entry, tag, r.chainHead(headPA, hasHead, entry), remap{}, true, has)
		r.st.MaintenanceAccesses += accesses
		if !needPA {
			return
		}
		// Even the fresh page could not finish it; fall through to the
		// regular suspension, aimed at where this walk starved.
		entry, headPA, hasHead = r.retarget(stop, entry, headPA, hasHead)
	}
	r.pending = append(r.pending, pendingOp{
		entry: entry, tag: tag, has: has, headPA: headPA, hasHead: hasHead,
	})
	r.pendVals[entry] = pendingVal{tag: tag, has: has}
	r.st.Suspensions++
}

// ---- wear.Mover: migration path -------------------------------------------

// Migrate implements wear.Mover: the wear-leveling scheme moves the block
// of data at src into dst (about to become the mapping target of src's
// current PA). Failures along dst's chain are hidden; if hiding needs a
// spare PA and none exists, the delivery is suspended per §III-A.
func (r *Reviver) Migrate(src, dst uint64) {
	headPA, okHead := r.lv.Inverse(src) // post-update, headPA maps to dst
	tag, has, accesses := r.readEffective(src)
	r.st.MaintenanceAccesses += accesses
	if len(r.pending) > 0 {
		// An earlier operation is already waiting; queue behind it to
		// preserve order.
		r.suspend(dst, tag, has, headPA, okHead)
		return
	}
	rm := remap{}
	if okHead {
		rm = remap{pa1: headPA, da1: dst, n: 1}
	}
	accesses, needPA, stop := r.deliver(dst, tag, r.chainHead(headPA, okHead, dst), rm, true, has)
	r.st.MaintenanceAccesses += accesses
	if needPA {
		e, h, ok := r.retarget(stop, dst, headPA, okHead)
		r.suspend(e, tag, has, h, ok)
	}
}

// Swap implements wear.Mover: the scheme exchanges the data at a and b
// (Security Refresh's fundamental operation). Each direction is one
// delivery with its own chain head.
func (r *Reviver) Swap(a, b uint64) {
	if a == b {
		return
	}
	raPA, okA := r.lv.Inverse(a) // post-update, raPA maps to b
	rbPA, okB := r.lv.Inverse(b) // post-update, rbPA maps to a
	tagA, hasA, acc1 := r.readEffective(a)
	tagB, hasB, acc2 := r.readEffective(b)
	r.st.MaintenanceAccesses += acc1 + acc2
	rm := remap{}
	if okA {
		rm = remap{pa1: raPA, da1: b, n: 1}
	}
	if okB {
		rm.pa2, rm.da2 = rbPA, a
		rm.n++
		if !okA {
			rm.pa1, rm.da1, rm.pa2, rm.da2 = rbPA, a, 0, 0
		}
	}
	r.deliverOrSuspend(b, tagA, hasA, raPA, okA, rm)
	r.deliverOrSuspend(a, tagB, hasB, rbPA, okB, rm)
}

// deliverOrSuspend performs one delivery, suspending on PA starvation.
func (r *Reviver) deliverOrSuspend(entry, tag uint64, has bool, headPA uint64, hasHead bool, rm remap) {
	if len(r.pending) > 0 {
		r.suspend(entry, tag, has, headPA, hasHead)
		return
	}
	accesses, needPA, stop := r.deliver(entry, tag, r.chainHead(headPA, hasHead, entry), rm, true, has)
	r.st.MaintenanceAccesses += accesses
	if needPA {
		e, h, ok := r.retarget(stop, entry, headPA, hasHead)
		r.suspend(e, tag, has, h, ok)
	}
}

// ---- introspection for tests and invariant checking -----------------------

// ShadowPA returns da's virtual shadow PA, if linked.
func (r *Reviver) ShadowPA(da uint64) (uint64, bool) {
	idx, ok := r.byDA[da]
	if !ok {
		return 0, false
	}
	return r.nodes[idx].pa, true
}

// InversePointer returns the failed DA recorded for virtual shadow PA p.
// Spare shadows record no DA.
func (r *Reviver) InversePointer(p uint64) (uint64, bool) {
	idx, ok := r.byPA[p]
	if !ok || r.nodes[idx].da == noDA {
		return 0, false
	}
	return r.nodes[idx].da, true
}

// OnLoop reports whether da sits on a PA-DA loop (its virtual shadow
// maps straight back to it).
func (r *Reviver) OnLoop(da uint64) bool {
	idx, ok := r.byDA[da]
	return ok && r.lv.Map(r.nodes[idx].pa) == da
}

// ChainSteps returns the number of DA→PA→DA steps from da to its current
// storage block, and whether the walk ends at a healthy block. Loops
// report (1, false).
func (r *Reviver) ChainSteps(da uint64) (int, bool) {
	cur := da
	for steps := 0; steps <= walkLimit; steps++ {
		if !r.be.Dead(cur) {
			return steps, true
		}
		idx, ok := r.byDA[cur]
		if !ok {
			return steps, false
		}
		next := r.lv.Map(r.nodes[idx].pa)
		if next == cur {
			return steps + 1, false
		}
		cur = next
	}
	return walkLimit, false
}

// SparePAs returns the spare pool's PAs in free-list order (the next one
// handed out first), for tests and invariant checks.
func (r *Reviver) SparePAs() []uint64 {
	out := make([]uint64, 0, r.spares)
	for idx := r.freeHead; idx != noNode; idx = r.nodes[idx].next {
		out = append(out, r.nodes[idx].pa)
	}
	return out
}

// LinkedDAs returns the currently linked failed DAs in ascending order,
// for tests and invariant checks.
func (r *Reviver) LinkedDAs() []uint64 {
	out := make([]uint64, 0, len(r.byDA))
	for da := range r.byDA {
		out = append(out, da)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pcmBlock(da uint64) pcmBlockID { return pcmBlockID(da) }

// SoftwareUsableFraction implements mc.SpaceReporter: the fraction of
// pages the OS can still hand to software. WL-Reviver loses exactly one
// page per acquisition and nothing else.
func (r *Reviver) SoftwareUsableFraction() float64 {
	return r.os.UsableFraction()
}
