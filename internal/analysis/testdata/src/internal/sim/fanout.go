// Fixture: the goroutine allowance is per-file, not per-package — a go
// statement in any OTHER internal/sim file is still a finding, exactly
// as it is outside the package (see internal/stats/spawn.go).
package sim

// SpawnHelper is the tempting mistake the rule exists for: "it's still
// in package sim" does not make an ad-hoc goroutine deterministic.
func SpawnHelper(f func()) {
	go f() // want confined-goroutines "go statement outside internal/sim/runner.go"
}
