// Attack resilience: the wear-leveling literature's malicious write
// patterns — single-address hammering and Seznec's birthday-paradox
// attack — against Start-Gap alone (which dies with its first block
// failure) and Start-Gap revived by WL-Reviver.
//
// The output shows the attacker's writes-per-block budget needed to take
// 30% of the memory's capacity: with WL-Reviver the scheme keeps
// redistributing the attack even as blocks die, multiplying the cost of
// the attack.
package main

import (
	"fmt"
	"log"

	"wlreviver"
)

const (
	blocks    = 1 << 13
	endurance = 2_000
	maxWrites = 200_000_000
)

func main() {
	attacks := []struct {
		name string
		make func() (wlreviver.Workload, error)
	}{
		{"hammer-1 (one hot line)", func() (wlreviver.Workload, error) {
			return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadHammer, Blocks: blocks, Targets: []uint64{42}})
		}},
		{"hammer-8 (hot set of 8)", func() (wlreviver.Workload, error) {
			return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadHammer, Blocks: blocks, Targets: []uint64{1, 2, 3, 4, 5, 6, 7, 8}})
		}},
		{"birthday-16x4096", func() (wlreviver.Workload, error) {
			return wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: wlreviver.WorkloadBirthday, Blocks: blocks, SetSize: 16, Burst: 4096, Seed: 99})
		}},
	}

	fmt.Println("attack                      scheme        writes/block to 30% capacity loss")
	for _, atk := range attacks {
		for _, variant := range []struct {
			label string
			prot  wlreviver.Config
		}{
			{"Start-Gap", protCfg(wlreviver.ProtectorNone)},
			{"SG + WLR", protCfg(wlreviver.ProtectorWLReviver)},
		} {
			w, err := atk.make()
			if err != nil {
				log.Fatal(err)
			}
			sys, err := wlreviver.New(variant.prot, w)
			if err != nil {
				log.Fatal(err)
			}
			for sys.Writes() < maxWrites && sys.UsableFraction() > 0.70 {
				if sys.Run(1<<16, nil) == 0 {
					break
				}
			}
			outcome := fmt.Sprintf("%.0f", sys.WritesPerBlock())
			if sys.UsableFraction() > 0.70 {
				outcome = fmt.Sprintf(">%.0f (survived the budget)", sys.WritesPerBlock())
			}
			fmt.Printf("%-27s %-12s  %s\n", atk.name, variant.label, outcome)
		}
	}
}

// protCfg builds the shared system config with the given protector.
func protCfg(p wlreviver.ProtectorKind) wlreviver.Config {
	cfg := wlreviver.DefaultConfig()
	cfg.Blocks = blocks
	cfg.BlocksPerPage = 32
	cfg.MeanEndurance = endurance
	cfg.GapWritePeriod = 50
	cfg.Protector = p
	return cfg
}
