// Space trade-off: the paper's Figure 7 experiment as an interactive
// study. FREE-p must pre-reserve spare space — too little and the slots
// run out early (the wear-leveling scheme then dies with the next
// failure); too much and the usable capacity is reduced from day one.
// WL-Reviver reserves nothing up front and acquires retired pages only
// as failures demand, so it dominates every static choice.
//
// The program sweeps reservations under a skewed (mg) and a uniform
// (ocean) workload and prints, for each, when usable capacity crosses
// 90%, 80% and 70%.
package main

import (
	"fmt"
	"log"

	"wlreviver"
)

const (
	blocks    = 1 << 13
	endurance = 2_500
)

func main() {
	for _, workload := range []string{"ocean", "mg"} {
		fmt.Printf("workload %s — writes/block at which usable capacity falls to:\n", workload)
		fmt.Printf("  %-14s %8s %8s %8s\n", "scheme", "90%", "80%", "70%")
		schemes := []struct {
			label   string
			prot    wlreviver.ProtectorKind
			reserve float64
		}{
			{"WL-Reviver", wlreviver.ProtectorWLReviver, 0},
			{"FREE-p 0%", wlreviver.ProtectorFREEp, 0},
			{"FREE-p 5%", wlreviver.ProtectorFREEp, 0.05},
			{"FREE-p 10%", wlreviver.ProtectorFREEp, 0.10},
			{"FREE-p 15%", wlreviver.ProtectorFREEp, 0.15},
		}
		for _, s := range schemes {
			cfg := wlreviver.DefaultConfig()
			cfg.Blocks = blocks
			cfg.BlocksPerPage = 32
			cfg.MeanEndurance = endurance
			cfg.GapWritePeriod = 50
			cfg.Protector = s.prot
			cfg.FreepReserveFraction = s.reserve
			gen, err := wlreviver.NewWorkload(wlreviver.WorkloadSpec{Kind: workload, Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: 3})
			if err != nil {
				log.Fatal(err)
			}
			sys, err := wlreviver.New(cfg, gen)
			if err != nil {
				log.Fatal(err)
			}
			crossings := map[float64]float64{0.9: -1, 0.8: -1, 0.7: -1}
			for sys.UsableFraction() > 0.65 && sys.WritesPerBlock() < 6000 {
				if sys.Run(1<<15, nil) == 0 {
					break
				}
				u := sys.UsableFraction()
				for level, at := range crossings {
					if at < 0 && u <= level {
						crossings[level] = sys.WritesPerBlock()
					}
				}
			}
			fmt.Printf("  %-14s %8s %8s %8s\n", s.label,
				fmtCross(crossings[0.9]), fmtCross(crossings[0.8]), fmtCross(crossings[0.7]))
		}
		fmt.Println()
	}
}

// fmtCross renders a crossing point, or "-" if never crossed.
func fmtCross(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
