package conformance_test

import (
	"testing"

	"wlreviver/internal/wear"
	"wlreviver/internal/wear/conformance"
)

// TestSuiteSelfCheck runs the exported suite against two levelers from
// opposite ends of the design space — Start-Gap's rotating gap and
// SoftWear's page-granularity relocation — so the harness itself is
// exercised (and counted by the coverage gate) independently of the
// per-scheme conformance tests in internal/wear.
func TestSuiteSelfCheck(t *testing.T) {
	conformance.Run(t, conformance.Factory{
		Name: "StartGap",
		New: func(seed uint64) (wear.Leveler, error) {
			return wear.NewStartGap(wear.StartGapConfig{
				NumPAs: 64, GapWritePeriod: 4, Seed: seed,
			})
		},
	})
	conformance.Run(t, conformance.Factory{
		Name: "SoftWear",
		New: func(seed uint64) (wear.Leveler, error) {
			return wear.NewSoftWear(wear.SoftWearConfig{
				NumPAs: 64, PageBlocks: 16, EpochWrites: 48,
			})
		},
		PageBlocks: 16,
	})
}

// TestShadowMemHelpers pins the tag discipline the suite's shadow
// memory is built on: distinct tags per PA, poison for never-written
// slots, and bijection verification catching an out-of-range map.
func TestShadowMemHelpers(t *testing.T) {
	if conformance.Tag(1) == conformance.Tag(2) {
		t.Fatal("Tag is not PA-distinct")
	}
	m := conformance.NewShadowMem(4)
	for i, v := range m.Data {
		if v != ^uint64(0) {
			t.Fatalf("slot %d not poisoned: %#x", i, v)
		}
	}
	lv, err := wear.NewStartGap(wear.StartGapConfig{NumPAs: 8, GapWritePeriod: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mem := conformance.NewShadowMem(lv.NumDAs())
	conformance.FillThrough(lv, mem)
	conformance.VerifyThrough(t, lv, mem, "self-check")
	conformance.VerifyBijection(t, lv, "self-check")
}
