package mc

import (
	"wlreviver/internal/osmodel"
	"wlreviver/internal/pcm"
	"wlreviver/internal/wear"
)

// Passthrough is the no-protection baseline: accesses go straight to the
// device, and the first failure that reaches the wear-leveling scheme
// cripples it (the paper's premise — Start-Gap and Security Refresh
// cease to function with a single block failure in their space). Failed
// writes are reported to the OS, which retires the page and relocates
// its data to a donor — so concentrated write traffic chases the
// relocations from page to page, serially failing fresh blocks and
// shrinking the memory ("the OS would ... ultimately be misled to
// believe that all memory blocks fail", §I-B). This cascade is what the
// paper's lifetime comparisons measure against.
type Passthrough struct {
	lv wear.Leveler   // ckpt:skip wiring; the leveler checkpoints itself
	be *Backend       // ckpt:skip wiring; the backend checkpoints itself
	os *osmodel.Model // ckpt:skip wiring; the OS model checkpoints itself

	crippled     bool
	requests     uint64
	reqAccesses  uint64
	lostWrites   uint64
	firstFailure uint64 // request index of the first exposed failure
}

// NewPassthrough builds the baseline protector.
func NewPassthrough(lv wear.Leveler, be *Backend, os *osmodel.Model) *Passthrough {
	return &Passthrough{lv: lv, be: be, os: os}
}

// Name implements Protector.
func (p *Passthrough) Name() string { return "none" }

// Crippled implements Crippler.
func (p *Passthrough) Crippled() bool { return p.crippled }

// FirstFailureAt returns the request index at which the first failure
// was exposed (0 if none yet).
func (p *Passthrough) FirstFailureAt() uint64 { return p.firstFailure }

// Write implements Protector. A write that fails (the target block is or
// becomes dead) is reported to the OS: the page retires, its live data
// is relocated to a donor, and the caller retries at the fresh
// translation. Any failure also cripples the wear-leveling scheme.
func (p *Passthrough) Write(pa, tag uint64) WriteResult {
	p.requests++
	p.reqAccesses++
	da := p.lv.Map(pa)
	if p.be.WriteRaw(da) {
		if p.be.Dev.TracksContent() {
			p.be.Dev.SetContent(pcm.BlockID(da), tag)
		}
		return WriteResult{Accesses: 1}
	}
	p.lostWrites++
	p.expose()
	relocs := p.relocate(pa)
	return WriteResult{Accesses: 1, Relocations: relocs, Retry: true}
}

// relocate performs the OS's standard page retirement and recovery copy.
func (p *Passthrough) relocate(pa uint64) []osmodel.Relocation {
	_, relocs := p.os.ReportFailure(pa)
	performed := relocs[:0]
	for _, rc := range relocs {
		src := p.lv.Map(rc.OldPA)
		if p.be.Dead(src) {
			continue // unrecoverable block
		}
		p.be.ReadRaw(src)
		dst := p.lv.Map(rc.NewPA)
		if !p.be.WriteRaw(dst) {
			p.expose()
			continue
		}
		if p.be.Dev.TracksContent() {
			p.be.Dev.SetContent(pcm.BlockID(dst), p.be.Dev.Content(pcm.BlockID(src)))
		}
		performed = append(performed, rc)
	}
	return performed
}

// LostWrites returns the number of failed (and reported) writes.
func (p *Passthrough) LostWrites() uint64 { return p.lostWrites }

// expose marks the wear-leveling scheme as non-functional.
func (p *Passthrough) expose() {
	if !p.crippled {
		p.crippled = true
		p.firstFailure = p.requests
	}
}

// Read implements Protector.
func (p *Passthrough) Read(pa uint64) (uint64, uint64) {
	p.requests++
	p.reqAccesses++
	da := p.lv.Map(pa)
	p.be.ReadRaw(da)
	if p.be.Dead(da) {
		return 0, 1 // data lost
	}
	return p.be.Dev.Content(pcm.BlockID(da)), 1
}

// ResumePending implements Protector; nothing ever suspends.
func (p *Passthrough) ResumePending() uint64 { return 0 }

// Migrate implements wear.Mover.
func (p *Passthrough) Migrate(src, dst uint64) {
	if p.be.Dead(src) || p.be.Dead(dst) {
		p.expose()
		return
	}
	p.be.ReadRaw(src)
	if !p.be.WriteRaw(dst) {
		p.expose()
		return
	}
	if p.be.Dev.TracksContent() {
		p.be.Dev.SetContent(pcm.BlockID(dst), p.be.Dev.Content(pcm.BlockID(src)))
	}
}

// Swap implements wear.Mover.
func (p *Passthrough) Swap(a, b uint64) {
	if p.be.Dead(a) || p.be.Dead(b) {
		p.expose()
		return
	}
	p.be.ReadRaw(a)
	p.be.ReadRaw(b)
	ta := p.be.Dev.Content(pcm.BlockID(a))
	tb := p.be.Dev.Content(pcm.BlockID(b))
	okA := p.be.WriteRaw(a)
	okB := p.be.WriteRaw(b)
	if !okA || !okB {
		p.expose()
		return
	}
	if p.be.Dev.TracksContent() {
		p.be.Dev.SetContent(pcm.BlockID(a), tb)
		p.be.Dev.SetContent(pcm.BlockID(b), ta)
	}
}

// SoftwareUsableFraction implements SpaceReporter: the fraction of
// pages the OS has not retired (there is no framework to hide failures,
// so every exposed failure costs a whole page).
func (p *Passthrough) SoftwareUsableFraction() float64 {
	return p.os.UsableFraction()
}

// RequestCounts returns cumulative (software requests, raw accesses).
func (p *Passthrough) RequestCounts() (requests, accesses uint64) {
	return p.requests, p.reqAccesses
}

// RequestAccessRatio returns raw accesses per software request.
func (p *Passthrough) RequestAccessRatio() float64 {
	if p.requests == 0 {
		return 0
	}
	return float64(p.reqAccesses) / float64(p.requests)
}

var (
	_ Protector     = (*Passthrough)(nil)
	_ Crippler      = (*Passthrough)(nil)
	_ SpaceReporter = (*Passthrough)(nil)
)
