package osmodel

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct{ blocks, bpp uint64 }{
		{0, 64}, {100, 0}, {100, 64}, // 100 not multiple of 64
	}
	for i, c := range cases {
		if _, err := New(c.blocks, c.bpp); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
	m, err := New(64*16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 16 || m.BlocksPerPage() != 64 {
		t.Errorf("geometry wrong: %d pages, %d bpp", m.NumPages(), m.BlocksPerPage())
	}
}

func TestTranslateIdentityInitially(t *testing.T) {
	m, _ := New(64*4, 64)
	for v := uint64(0); v < 256; v += 17 {
		pa, ok := m.Translate(v)
		if !ok || pa != v {
			t.Errorf("Translate(%d) = (%d,%v), want identity", v, pa, ok)
		}
	}
}

func TestReportFailureRetiresPage(t *testing.T) {
	m, _ := New(64*4, 64)
	pas, copies := m.ReportFailure(70) // block 70 is in page 1
	if len(pas) != 64 {
		t.Fatalf("reserved %d PAs, want 64", len(pas))
	}
	if pas[0] != 64 || pas[63] != 127 {
		t.Errorf("reserved range [%d,%d], want [64,127]", pas[0], pas[63])
	}
	if !m.Retired(70) || m.Retired(0) {
		t.Error("retirement flags wrong")
	}
	if m.RetiredPages() != 1 || m.UsablePages() != 3 {
		t.Errorf("retired=%d usable=%d", m.RetiredPages(), m.UsablePages())
	}
	if got := m.UsableFraction(); got != 0.75 {
		t.Errorf("usable fraction = %v, want 0.75", got)
	}
	if len(copies) != 64 {
		t.Fatalf("expected 64 recovery copies, got %d", len(copies))
	}
	// Virtual page 1 must now translate to the donor page.
	pa, ok := m.Translate(64)
	if !ok {
		t.Fatal("translate failed")
	}
	if m.PageOf(pa) == 1 {
		t.Error("virtual page 1 still maps to retired physical page 1")
	}
	if copies[0].NewPA != pa {
		t.Errorf("relocation target %d disagrees with translation %d", copies[0].NewPA, pa)
	}
}

func TestReportFailureOnRetiredPagePanics(t *testing.T) {
	m, _ := New(64*2, 64)
	m.ReportFailure(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double retirement")
		}
	}()
	m.ReportFailure(5)
}

func TestTranslateNeverReturnsRetiredPage(t *testing.T) {
	m, _ := New(64*8, 64)
	for i := 0; i < 7; i++ {
		// Retire whichever physical page virtual block 0 lives on, plus others.
		pa, ok := m.Translate(uint64(i) * 64)
		if !ok {
			t.Fatalf("translate failed at step %d", i)
		}
		m.ReportFailure(pa)
		for v := uint64(0); v < 8*64; v += 64 {
			pa, ok := m.Translate(v)
			if !ok {
				t.Fatalf("no usable pages after %d retirements", i+1)
			}
			if m.Retired(pa) {
				t.Fatalf("virtual %d translated to retired PA %d", v, pa)
			}
		}
	}
}

func TestAllPagesRetired(t *testing.T) {
	m, _ := New(64*2, 64)
	m.ReportFailure(0)
	pas, copies := m.ReportFailure(64)
	if len(pas) != 64 {
		t.Error("last page should still yield reserved PAs")
	}
	if copies != nil {
		t.Error("no donor exists; copies should be nil")
	}
	if _, ok := m.Translate(0); ok {
		t.Error("translation should fail with zero usable pages")
	}
	if m.UsableFraction() != 0 {
		t.Error("usable fraction should be 0")
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	m, _ := New(64*10, 64)
	m.ReportFailure(3 * 64)
	m.ReportFailure(7 * 64)
	bm := m.Bitmap()

	fresh, _ := New(64*10, 64)
	if err := fresh.LoadBitmap(bm); err != nil {
		t.Fatal(err)
	}
	if fresh.RetiredPages() != 2 {
		t.Fatalf("restored %d retired pages, want 2", fresh.RetiredPages())
	}
	for _, page := range []uint64{3, 7} {
		if !fresh.Retired(page * 64) {
			t.Errorf("page %d not retired after reload", page)
		}
		pa, ok := fresh.Translate(page * 64)
		if !ok || fresh.Retired(pa) {
			t.Errorf("virtual page %d not remapped after reload", page)
		}
	}
	if err := fresh.LoadBitmap([]byte{1}); err == nil {
		t.Error("short bitmap accepted")
	}
}

func TestBitmapAllRetired(t *testing.T) {
	m, _ := New(64*2, 64)
	m.ReportFailure(0)
	m.ReportFailure(64)
	fresh, _ := New(64*2, 64)
	if err := fresh.LoadBitmap(m.Bitmap()); err != nil {
		t.Fatal(err)
	}
	if fresh.UsablePages() != 0 {
		t.Error("all pages should be retired after reload")
	}
}

// Property: after arbitrary retirement sequences, translation targets are
// always live pages and the usable count is consistent.
func TestQuickRetirementConsistency(t *testing.T) {
	prop := func(seq []uint8) bool {
		const pages = 16
		m, err := New(64*pages, 64)
		if err != nil {
			return false
		}
		for _, s := range seq {
			if m.UsablePages() == 0 {
				break
			}
			// Report through translation so we never hit a retired page.
			pa, ok := m.Translate(uint64(s%pages) * 64)
			if !ok {
				return false
			}
			m.ReportFailure(pa)
		}
		if m.RetiredPages()+m.UsablePages() != pages {
			return false
		}
		if m.UsablePages() == 0 {
			return true
		}
		for v := uint64(0); v < pages; v++ {
			pa, ok := m.Translate(v * 64)
			if !ok || m.Retired(pa) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
