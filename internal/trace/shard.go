package trace

// ShardSeed derives the workload seed for one shard of a partitioned
// chip. A sharded run splits the chip's block space into equal shards,
// each driven by an independent generator over its own sub-space; the
// derived seed depends only on (base seed, shard index), never on how
// many OS threads execute the shards, so the per-shard address streams —
// and therefore every simulation output — are invariant under the
// execution pool width.
//
// The mix is SplitMix64's finalizer over seed ^ f(shard); it decorrelates
// adjacent shards even for adjacent base seeds.
func ShardSeed(seed, shard uint64) uint64 {
	z := seed ^ (shard+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
