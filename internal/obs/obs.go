// Package obs is the simulator's deterministic observability layer:
// typed engine lifecycle events and periodic metrics snapshots, paced
// exclusively in simulated writes — never wall-clock time — so an
// observed run is exactly as reproducible as an unobserved one.
//
// The layer is zero-cost when disabled: every probe site in the engine,
// the device, the memory controller, the remap cache, the levelers and
// the protection frameworks sits behind a nil-observer check, so the
// write hot path is untouched unless an Observer is attached. With an
// observer attached the event stream is a pure function of the
// configuration seed — the probes only read simulation state, never
// perturb it — which is what lets the experiment harness pin
// byte-identical output with and without observation.
package obs

// Snapshot is a periodic cross-layer state sample, emitted by the
// engine every SnapshotEvery simulated writes (the simulator's only
// clock). Cumulative fields count since the start of the run.
type Snapshot struct {
	// Writes is the number of software writes serviced so far.
	Writes uint64 `json:"writes"`
	// WritesPerBlock is Writes normalised by software capacity — the
	// scale-free x-axis used throughout EXPERIMENTS.md.
	WritesPerBlock float64 `json:"writes_per_block"`
	// SurvivalRate is the fraction of device blocks not declared dead.
	SurvivalRate float64 `json:"survival_rate"`
	// UsableFraction is the software-usable capacity fraction.
	UsableFraction float64 `json:"usable_fraction"`
	// DeadBlocks is the number of device blocks declared dead.
	DeadBlocks uint64 `json:"dead_blocks"`
	// RetiredPages is the number of OS pages retired.
	RetiredPages uint64 `json:"retired_pages"`
	// LiveRemaps is the number of failed blocks currently linked to
	// virtual shadows (WL-Reviver only; 0 otherwise).
	LiveRemaps int `json:"live_remaps"`
	// SparePAs is the number of unlinked reserved PAs (WL-Reviver only).
	SparePAs int `json:"spare_pas"`
	// LevelerOps counts the wear-leveling scheme's remapping operations:
	// Start-Gap gap movements, Security Refresh outer-region swaps,
	// WoLFRaM decoder remaps, or SoftWear page relocations.
	LevelerOps uint64 `json:"leveler_ops"`
	// CacheHits and CacheMisses are the remap cache's cumulative lookup
	// outcomes (0 when no cache is configured).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// AccessRatio is raw PCM accesses per software request so far (the
	// paper's Table II metric; 0 when the protector does not track it).
	AccessRatio float64 `json:"access_ratio"`
	// WearCoV is the coefficient of variation of per-block device wear —
	// the leveling-quality metric.
	WearCoV float64 `json:"wear_cov"`
}

// Observer receives typed engine lifecycle events. Implementations are
// invoked synchronously from the simulation loop of a single engine and
// need not be safe for concurrent use; the experiment runner attaches a
// distinct observer to every engine it fans out. Observers must not
// mutate simulation state — the engine's output is pinned byte-identical
// with and without observation.
//
// Embed Base to implement only the events of interest, or use Metrics
// for a ready-made accumulator.
type Observer interface {
	// BlockFailed fires when the ECC layer declares a device block
	// uncorrectable; wear is the block's write count at death.
	BlockFailed(da uint64, wear uint64)
	// CellFailed fires when a PCM cell wears out; failedCells is the
	// block's total after this failure. Blocks absorb many cell failures
	// before BlockFailed (ECP6 corrects six per block).
	CellFailed(da uint64, failedCells int)
	// Revived fires when a failed block is linked to a virtual shadow PA
	// (the WL-Reviver framework's fundamental recovery step).
	Revived(da uint64, shadowPA uint64)
	// RemapCacheHit and RemapCacheMiss fire per remap-cache lookup.
	RemapCacheHit(key uint64)
	RemapCacheMiss(key uint64)
	// GapMoved fires per Start-Gap gap movement; region is the region
	// index (0 for the single-region scheme) and gapDA the gap's device
	// address after the move.
	GapMoved(region int, gapDA uint64)
	// RegionSwapped fires per Security Refresh block swap between device
	// addresses a and b.
	RegionSwapped(a, b uint64)
	// DecoderRemapped fires per WoLFRaM programmable-decoder remap: the
	// decoder swapped the blocks at device addresses a and b.
	DecoderRemapped(a, b uint64)
	// PageRelocated fires per SoftWear page relocation: the page occupying
	// device frame oldFrame moved to frame newFrame (and vice versa).
	PageRelocated(oldFrame, newFrame uint64)
	// PageRetired fires when the OS retires a page after a reported
	// access failure.
	PageRetired(page uint64)
	// Snapshot fires every SnapshotEvery simulated writes with a
	// cross-layer state sample.
	Snapshot(s Snapshot)
}

// Base is a no-op Observer; embed it to implement a subset of events.
type Base struct{}

// BlockFailed implements Observer.
func (Base) BlockFailed(uint64, uint64) {}

// CellFailed implements Observer.
func (Base) CellFailed(uint64, int) {}

// Revived implements Observer.
func (Base) Revived(uint64, uint64) {}

// RemapCacheHit implements Observer.
func (Base) RemapCacheHit(uint64) {}

// RemapCacheMiss implements Observer.
func (Base) RemapCacheMiss(uint64) {}

// GapMoved implements Observer.
func (Base) GapMoved(int, uint64) {}

// RegionSwapped implements Observer.
func (Base) RegionSwapped(uint64, uint64) {}

// DecoderRemapped implements Observer.
func (Base) DecoderRemapped(uint64, uint64) {}

// PageRelocated implements Observer.
func (Base) PageRelocated(uint64, uint64) {}

// PageRetired implements Observer.
func (Base) PageRetired(uint64) {}

// Snapshot implements Observer.
func (Base) Snapshot(Snapshot) {}

var _ Observer = Base{}
