package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"wlreviver/internal/obs"
	"wlreviver/internal/trace"
)

// buildCkptEngine constructs a fresh metrics-observed engine over the
// shared tiny checkpoint-test geometry, with endurance raised so the
// runs here never hit end of life.
func buildCkptEngine(cfg Config) (*Engine, error) {
	cfg.MeanEndurance = 1e6
	cfg.Observer = obs.NewMetrics()
	cfg.SnapshotEvery = 1000
	gen, err := trace.NewFromSpec(trace.Spec{
		Kind: "mg", Blocks: cfg.Blocks, PageBlocks: cfg.BlocksPerPage, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return NewEngine(cfg, gen)
}

// TestRunContextCancelAtBatchBoundary pins RunContext's determinism
// contract: cancellation is observed only at runCtxBatch boundaries, so
// the serviced count is always a full multiple of the batch size (or
// the whole request), and a cancelled-then-resumed run is byte-identical
// to an uninterrupted one.
func TestRunContextCancelAtBatchBoundary(t *testing.T) {
	build := func() *Engine {
		cfg := ckptTestConfig()
		eng, err := buildCkptEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	const total = 5 * runCtxBatch / 2 // 2.5 batches

	// Cancel from the onWrite callback partway into the second batch.
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := build()
	done, err := interrupted.RunContext(ctx, total, func(d uint64) {
		if d == runCtxBatch+17 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if done != 2*runCtxBatch {
		t.Fatalf("cancelled run serviced %d writes, want batch-aligned %d", done, 2*runCtxBatch)
	}

	// Resume to the full total; the result must match a straight run.
	if d, err := interrupted.RunContext(context.Background(), total-done, nil); err != nil || d != total-done {
		t.Fatalf("resume serviced %d, err %v", d, err)
	}
	straight := build()
	if d, err := straight.RunContext(context.Background(), total, nil); err != nil || d != total {
		t.Fatalf("straight run serviced %d, err %v", d, err)
	}
	wantImg, err := straight.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	gotImg, err := interrupted.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotImg, wantImg) {
		t.Error("cancelled+resumed run diverges from uninterrupted run")
	}

	// An already-cancelled context services nothing.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if d, err := build().RunContext(dead, total, nil); d != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled context serviced %d writes, err %v", d, err)
	}
}

// TestRunIsRunContext pins Run as a thin wrapper: same writes, same
// image as RunContext with a background context.
func TestRunIsRunContext(t *testing.T) {
	cfg := ckptTestConfig()
	a, err := buildCkptEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCkptEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40_000
	if got := a.RunN(n); got != n {
		t.Fatalf("RunN serviced %d", got)
	}
	got, err := b.RunContext(context.Background(), n, nil)
	if err != nil || got != n {
		t.Fatalf("RunContext serviced %d, err %v", got, err)
	}
	imgA, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imgA, imgB) {
		t.Error("RunN and RunContext diverge")
	}
}
