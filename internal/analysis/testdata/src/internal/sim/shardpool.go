// Fixture: internal/sim/shardpool.go is the intra-engine shard
// scheduler, the second (and last) non-test file allowed to start
// goroutines. Nothing in this file is a finding.
package sim

// RunShards fans one engine's shards out; allowed here by path.
func RunShards(pool int, fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
	_ = pool
}
