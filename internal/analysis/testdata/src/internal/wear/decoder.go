// Fixture: the patterns the two related-work levelers introduced.
// WoLFRaM-style programmable decoders are built from a seeded random
// permutation — seeded-constructors must catch a decoder constructor
// that hides its seed. SoftWear-style relocation keeps an in-flight
// cursor that is transient within one call — ckpt-state-coverage must
// accept the annotated cursor and still flag an unannotated one.
package wear

import (
	"wlreviver/internal/ckpt"
	"wlreviver/internal/rng"
)

// Decoder is a WoLFRaM-style per-region programmable address decoder.
type Decoder struct {
	perm []uint64
}

// NewDecoder shuffles the initial permutation from a pinned stream the
// caller cannot influence.
func NewDecoder(size uint64) *Decoder { // want seeded-constructors "constructor NewDecoder uses package rng"
	src := rng.New(1)
	perm := make([]uint64, size)
	for i := range perm {
		perm[i] = src.Uint64n(size)
	}
	return &Decoder{perm: perm}
}

// DecoderConfig carries the seed, so the constructor below is clean.
type DecoderConfig struct {
	Size uint64
	Seed uint64
}

// NewSeededDecoder threads the config seed into the permutation draw.
func NewSeededDecoder(cfg DecoderConfig) *Decoder {
	src := rng.New(cfg.Seed)
	perm := make([]uint64, cfg.Size)
	for i := range perm {
		perm[i] = src.Uint64n(cfg.Size)
	}
	return &Decoder{perm: perm}
}

// Relocator is a SoftWear-style page relocator: the relocation cursor
// exists only while one relocation call is in flight, so it is skipped
// from checkpoints with a recorded reason — no finding.
type Relocator struct {
	frames     []uint64
	epochLeft  uint64
	relocHot   uint64 // ckpt:skip transient within one relocation call
	relocCold  uint64 // ckpt:skip transient within one relocation call
	relocSteps uint64 // ckpt:skip transient within one relocation call
}

// SaveState captures only the durable mapping state.
func (r *Relocator) SaveState(e *ckpt.Encoder) {
	e.U64s(r.frames)
	e.U64(r.epochLeft)
}

// LoadState restores it.
func (r *Relocator) LoadState(d *ckpt.Decoder) error {
	r.frames = d.U64s()
	r.epochLeft = d.U64()
	return nil
}

// BareRelocator forgets the annotation: the same cursor field with no
// recorded reason is exactly the silent-divergence bug the rule exists
// to catch.
type BareRelocator struct {
	frames []uint64
	cursor uint64 // want ckpt-state-coverage "field cursor of BareRelocator is checkpointed in neither SaveState nor LoadState"
}

// SaveState captures the frames only.
func (b *BareRelocator) SaveState(e *ckpt.Encoder) { e.U64s(b.frames) }

// LoadState likewise.
func (b *BareRelocator) LoadState(d *ckpt.Decoder) error {
	b.frames = d.U64s()
	return nil
}
