package reviver

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes the framework's mutable state: the shadow arena
// (links, slot assignments and the spare free list as one contiguous
// run of nodes), suspended deliveries and activity counters. The byDA
// and byPA index maps and the spare count are derived from the arena and
// are rebuilt on load. Unlike Snapshot (the in-PCM reboot image, which
// refuses pending operations), this is a faithful mid-run capture.
func (r *Reviver) SaveState(e *ckpt.Encoder) {
	e.U32(uint32(len(r.nodes)))
	for _, n := range r.nodes {
		e.U64(n.pa)
		e.U64(n.da)
		e.U64(n.slot)
		e.U32(n.next)
	}
	e.U32(r.freeHead)
	e.U32(uint32(len(r.pending)))
	for _, p := range r.pending {
		e.U64(p.entry)
		e.U64(p.tag)
		e.Bool(p.has)
		e.U64(p.headPA)
		e.Bool(p.hasHead)
	}
	e.U32(uint32(len(r.pendVals)))
	for _, entry := range ckpt.KeysU64(r.pendVals) {
		v := r.pendVals[entry]
		e.U64(entry)
		e.U64(v.tag)
		e.Bool(v.has)
	}
	e.SetU64(r.orphans)
	e.U64(r.lastWritePA)
	e.Bool(r.lastWriteOK)
	e.U64(r.st.SoftwareWrites)
	e.U64(r.st.SoftwareReads)
	e.U64(r.st.RequestAccesses)
	e.U64(r.st.MaintenanceAccesses)
	e.U64(r.st.PagesAcquired)
	e.U64(r.st.SacrificedWrites)
	e.U64(r.st.LinksCreated)
	e.U64(r.st.ChainSwitches)
	e.U64(r.st.Suspensions)
	e.U64(r.st.RelocationsDropped)
}

// LoadState restores state written by SaveState into a framework built
// over the identical layer stack.
func (r *Reviver) LoadState(dec *ckpt.Decoder) error {
	nNodes := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nNodes*28 > 1<<30 { // each node is 28 payload bytes
		return fmt.Errorf("reviver: checkpoint arena size %d implausible", nNodes)
	}
	nodes := make([]shadowNode, nNodes)
	for i := range nodes {
		nodes[i] = shadowNode{
			pa:   dec.U64(),
			da:   dec.U64(),
			slot: dec.U64(),
			next: dec.U32(),
		}
	}
	freeHead := dec.U32()
	nPend := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nPend*18 > 1<<30 { // each pending op is 18 payload bytes
		return fmt.Errorf("reviver: checkpoint pending count %d implausible", nPend)
	}
	pending := make([]pendingOp, nPend)
	for i := range pending {
		pending[i] = pendingOp{
			entry:   dec.U64(),
			tag:     dec.U64(),
			has:     dec.Bool(),
			headPA:  dec.U64(),
			hasHead: dec.Bool(),
		}
	}
	nVals := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	pendVals := make(map[uint64]pendingVal, nVals)
	var prevEntry uint64
	for i := 0; i < nVals; i++ {
		entry := dec.U64()
		v := pendingVal{tag: dec.U64(), has: dec.Bool()}
		if dec.Err() != nil {
			return dec.Err()
		}
		if i > 0 && entry <= prevEntry {
			return fmt.Errorf("reviver: checkpoint pending values out of order")
		}
		prevEntry = entry
		pendVals[entry] = v
	}
	orphans := dec.SetU64()
	lastWritePA := dec.U64()
	lastWriteOK := dec.Bool()
	var st Stats
	st.SoftwareWrites = dec.U64()
	st.SoftwareReads = dec.U64()
	st.RequestAccesses = dec.U64()
	st.MaintenanceAccesses = dec.U64()
	st.PagesAcquired = dec.U64()
	st.SacrificedWrites = dec.U64()
	st.LinksCreated = dec.U64()
	st.ChainSwitches = dec.U64()
	st.Suspensions = dec.U64()
	st.RelocationsDropped = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	byPA := make(map[uint64]uint32, len(nodes))
	byDA := make(map[uint64]uint32)
	for i, n := range nodes {
		if _, dup := byPA[n.pa]; dup {
			return fmt.Errorf("reviver: checkpoint arena repeats shadow PA %d", n.pa)
		}
		byPA[n.pa] = uint32(i)
		if n.da == noDA {
			continue
		}
		if other, dup := byDA[n.da]; dup {
			return fmt.Errorf("reviver: checkpoint links DA %d to shadow PAs %d and %d",
				n.da, nodes[other].pa, n.pa)
		}
		byDA[n.da] = uint32(i)
	}
	spares := 0
	for idx := freeHead; idx != noNode; {
		if int(idx) >= len(nodes) {
			return fmt.Errorf("reviver: checkpoint free list index %d outside arena of %d", idx, len(nodes))
		}
		if nodes[idx].da != noDA {
			return fmt.Errorf("reviver: checkpoint free list holds linked shadow PA %d", nodes[idx].pa)
		}
		spares++
		if spares > len(nodes) {
			return fmt.Errorf("reviver: checkpoint free list cycles")
		}
		idx = nodes[idx].next
	}
	if linkedAndSpare := len(byDA) + spares; linkedAndSpare != len(nodes) {
		return fmt.Errorf("reviver: checkpoint arena has %d nodes but %d linked + %d spare",
			len(nodes), len(byDA), spares)
	}
	r.nodes = nodes
	r.freeHead = freeHead
	r.byDA = byDA
	r.byPA = byPA
	r.spares = spares
	r.pending = pending
	r.pendVals = pendVals
	r.orphans = orphans
	r.lastWritePA = lastWritePA
	r.lastWriteOK = lastWriteOK
	r.st = st
	return nil
}
