package ecc

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// SaveState serializes ECP's per-block correction usage and dead flags.
func (e *ECP) SaveState(enc *ckpt.Encoder) {
	enc.U16s(e.used)
	enc.Bools(e.deadFlag)
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (e *ECP) LoadState(dec *ckpt.Decoder) error {
	used := dec.U16s()
	deadFlag := dec.Bools()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(used) != len(e.used) || len(deadFlag) != len(e.deadFlag) {
		return fmt.Errorf("ecc: ECP checkpoint block count mismatch")
	}
	copy(e.used, used)
	copy(e.deadFlag, deadFlag)
	return nil
}

// SaveState serializes PAYG's local usage, pool occupancy and dead flags.
func (p *PAYG) SaveState(enc *ckpt.Encoder) {
	enc.U16s(p.localUsed)
	enc.I32s(p.setFree)
	enc.I64(p.overflow)
	enc.Bools(p.deadFlag)
	enc.U64(p.pooledUsed)
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (p *PAYG) LoadState(dec *ckpt.Decoder) error {
	localUsed := dec.U16s()
	setFree := dec.I32s()
	overflow := dec.I64()
	deadFlag := dec.Bools()
	pooledUsed := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(localUsed) != len(p.localUsed) || len(setFree) != len(p.setFree) ||
		len(deadFlag) != len(p.deadFlag) {
		return fmt.Errorf("ecc: PAYG checkpoint geometry mismatch")
	}
	copy(p.localUsed, localUsed)
	copy(p.setFree, setFree)
	p.overflow = overflow
	copy(p.deadFlag, deadFlag)
	p.pooledUsed = pooledUsed
	return nil
}

// SaveState serializes SAFER's per-block stuck-cell usage and dead flags.
func (s *SAFER) SaveState(enc *ckpt.Encoder) {
	enc.U16s(s.used)
	enc.Bools(s.deadFlag)
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (s *SAFER) LoadState(dec *ckpt.Decoder) error {
	used := dec.U16s()
	deadFlag := dec.Bools()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(used) != len(s.used) || len(deadFlag) != len(s.deadFlag) {
		return fmt.Errorf("ecc: SAFER checkpoint block count mismatch")
	}
	copy(s.used, used)
	copy(s.deadFlag, deadFlag)
	return nil
}
