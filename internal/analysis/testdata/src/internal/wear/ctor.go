// Fixture: seeded-constructors positives and the three accepted ways
// to thread a seed, plus a suppressed case.
package wear

import "wlreviver/internal/rng"

// Shuffler is a stochastic component under construction.
type Shuffler struct {
	src *rng.Source
}

// Config carries a seed, so constructors taking it are fine.
type Config struct {
	Size uint64
	Seed uint64
}

// NewShuffler draws randomness with no way for the caller to seed it.
func NewShuffler(size uint64) *Shuffler { // want seeded-constructors "constructor NewShuffler uses package rng"
	return &Shuffler{src: rng.New(42)}
}

// NewSeededShuffler is seeded by parameter name.
func NewSeededShuffler(size, seed uint64) *Shuffler {
	return &Shuffler{src: rng.New(seed)}
}

// NewShufflerFrom is seeded by a *rng.Source parameter.
func NewShufflerFrom(src *rng.Source) *Shuffler {
	return &Shuffler{src: rng.New(src.Uint64())}
}

// NewShufflerConfig is seeded through the config struct's Seed field.
func NewShufflerConfig(cfg Config) *Shuffler {
	return &Shuffler{src: rng.New(cfg.Seed)}
}

// NewFixedShuffler deliberately pins its stream; the suppression
// records why.
//
//lint:ignore seeded-constructors fixture: stream is pinned as a published reference vector
func NewFixedShuffler() *Shuffler {
	return &Shuffler{src: rng.New(7)}
}
