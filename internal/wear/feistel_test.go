package wear

import (
	"testing"
	"testing/quick"
)

func TestFeistelBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 64, 100, 1000, 4096, 5000} {
		f, err := NewFeistel(n, 4, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make(map[uint64]bool, n)
		for x := uint64(0); x < n; x++ {
			y := f.Map(x)
			if y >= n {
				t.Fatalf("n=%d: Map(%d) = %d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: Map not injective at %d", n, x)
			}
			seen[y] = true
			if back := f.Inverse(y); back != x {
				t.Fatalf("n=%d: Inverse(Map(%d)) = %d", n, x, back)
			}
		}
	}
}

func TestFeistelDifferentSeedsDiffer(t *testing.T) {
	const n = 1024
	a, _ := NewFeistel(n, 4, 1)
	b, _ := NewFeistel(n, 4, 2)
	same := 0
	for x := uint64(0); x < n; x++ {
		if a.Map(x) == b.Map(x) {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("seeds 1 and 2 agree on %d/%d points", same, n)
	}
}

func TestFeistelScrambles(t *testing.T) {
	// Consecutive inputs should not stay consecutive (spatial decorrelation,
	// the property Start-Gap's randomizer exists to provide).
	const n = 1 << 12
	f, _ := NewFeistel(n, 4, 7)
	adjacent := 0
	prev := f.Map(0)
	for x := uint64(1); x < n; x++ {
		y := f.Map(x)
		d := int64(y) - int64(prev)
		if d == 1 || d == -1 {
			adjacent++
		}
		prev = y
	}
	if adjacent > n/100 {
		t.Errorf("%d/%d adjacent pairs stayed adjacent; randomizer too weak", adjacent, n)
	}
}

func TestFeistelErrors(t *testing.T) {
	if _, err := NewFeistel(0, 4, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewFeistel(8, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestFeistelPanicsOutOfDomain(t *testing.T) {
	f, _ := NewFeistel(10, 4, 1)
	for _, fn := range []func(){
		func() { f.Map(10) },
		func() { f.Inverse(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-domain input")
				}
			}()
			fn()
		}()
	}
}

func TestQuickFeistelRoundTrip(t *testing.T) {
	f, _ := NewFeistel(100000, 4, 99)
	prop := func(x uint64) bool {
		x %= 100000
		return f.Inverse(f.Map(x)) == x && f.Map(f.Inverse(x)) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityRandomizer(t *testing.T) {
	id := Identity{Size: 16}
	if id.N() != 16 {
		t.Error("size")
	}
	for x := uint64(0); x < 16; x++ {
		if id.Map(x) != x || id.Inverse(x) != x {
			t.Error("identity must not move addresses")
		}
	}
}
