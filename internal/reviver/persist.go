package reviver

// Reboot support (paper §III-A): the retirement bitmap — one bit per
// page, set at most once in the chip's lifetime — is persisted in PCM so
// a rebooting OS knows which pages to keep away from, and the framework's
// pointers live in PCM anyway (in-block pointers in the failed blocks,
// inverse pointers in the acquired pages' pointer sections), so the
// controller's tables can be rebuilt by reading them back — "even in very
// rare cases where the pointers are lost, they can be rebuilt by scanning
// the entire PCM".
//
// The simulator keeps that PCM-resident metadata as authoritative Go
// maps; Snapshot models reading it out of the chip at shutdown (or the
// full scan), and Restore models the reboot: the OS reloads the bitmap
// and the controller reloads its links.

import (
	"encoding/binary"
	"fmt"
)

var snapshotMagic = [4]byte{'W', 'L', 'R', 'V'}

const snapshotVersion = 1

// Snapshot serialises the framework's PCM-resident metadata: the OS
// retirement bitmap, the failed-block links, the spare-PA pool and the
// inverse-pointer slot assignments. It fails while a wear-leveling
// delivery is suspended (a clean shutdown completes pending work first;
// hardware would drain the migration buffer).
func (r *Reviver) Snapshot() ([]byte, error) {
	if len(r.pending) > 0 {
		return nil, fmt.Errorf("reviver: cannot snapshot with %d suspended deliveries", len(r.pending))
	}
	bitmap := r.os.Bitmap()
	var out []byte
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, snapshotVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(bitmap)))
	out = append(out, bitmap...)
	// Links, in ascending-DA order so snapshot bytes are deterministic.
	out = binary.LittleEndian.AppendUint64(out, uint64(len(r.byDA)))
	for _, da := range r.LinkedDAs() {
		out = binary.LittleEndian.AppendUint64(out, da)
		out = binary.LittleEndian.AppendUint64(out, r.nodes[r.byDA[da]].pa)
	}
	// Spares, oldest-acquired first (the free list runs newest-first, so
	// reversed here); Restore re-pushes them in read order, reproducing
	// the exact hand-out order.
	spares := r.SparePAs()
	out = binary.LittleEndian.AppendUint64(out, uint64(len(spares)))
	for i := len(spares) - 1; i >= 0; i-- {
		out = binary.LittleEndian.AppendUint64(out, spares[i])
	}
	// Pointer-slot assignments, in arena (acquisition) order.
	nSlots := 0
	for _, n := range r.nodes {
		if n.slot != noSlot {
			nSlots++
		}
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(nSlots))
	for _, n := range r.nodes {
		if n.slot != noSlot {
			out = binary.LittleEndian.AppendUint64(out, n.pa)
			out = binary.LittleEndian.AppendUint64(out, n.slot)
		}
	}
	return out, nil
}

// Restore rebuilds the framework's state from a Snapshot after a reboot:
// the OS model reloads the retirement bitmap and the controller reloads
// links, spares and slot assignments. The device (the PCM itself, with
// its wear and failures) and the wear-leveling scheme's registers are
// non-volatile and must be the ones the snapshot was taken against;
// Restore validates the snapshot against them.
func (r *Reviver) Restore(data []byte) error {
	rd := &snapReader{buf: data}
	var magic [4]byte
	if err := rd.bytes(magic[:]); err != nil {
		return fmt.Errorf("reviver: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("reviver: bad snapshot magic %q", magic)
	}
	version, err := rd.u32()
	if err != nil {
		return fmt.Errorf("reviver: reading snapshot version: %w", err)
	}
	if version != snapshotVersion {
		return fmt.Errorf("reviver: unsupported snapshot version %d", version)
	}
	bmLen, err := rd.u64()
	if err != nil {
		return err
	}
	bitmap := make([]byte, bmLen)
	if err := rd.bytes(bitmap); err != nil {
		return fmt.Errorf("reviver: reading bitmap: %w", err)
	}
	if err := r.os.LoadBitmap(bitmap); err != nil {
		return err
	}

	nPtr, err := rd.u64()
	if err != nil {
		return err
	}
	nodes := make([]shadowNode, 0, nPtr)
	byDA := make(map[uint64]uint32, nPtr)
	byPA := make(map[uint64]uint32, nPtr)
	for i := uint64(0); i < nPtr; i++ {
		da, err := rd.u64()
		if err != nil {
			return err
		}
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		if da >= r.lv.NumDAs() {
			return fmt.Errorf("reviver: snapshot links DA %d outside the DA space", da)
		}
		if !r.be.Dead(da) {
			return fmt.Errorf("reviver: snapshot links DA %d but the chip says it is healthy", da)
		}
		if !r.os.Retired(pa) {
			return fmt.Errorf("reviver: snapshot shadow PA %d is not in a retired page", pa)
		}
		if other, dup := byDA[da]; dup {
			return fmt.Errorf("reviver: snapshot links DA %d to both PA %d and PA %d", da, nodes[other].pa, pa)
		}
		if other, dup := byPA[pa]; dup {
			return fmt.Errorf("reviver: snapshot links PA %d to both DA %d and DA %d", pa, nodes[other].da, da)
		}
		idx := uint32(len(nodes))
		nodes = append(nodes, shadowNode{pa: pa, da: da, slot: noSlot, next: noNode})
		byDA[da] = idx
		byPA[pa] = idx
	}
	// Spares were written oldest-acquired first; pushing in read order
	// leaves the most recently acquired at the free-list head, the same
	// hand-out order the snapshotted framework had.
	nAvail, err := rd.u64()
	if err != nil {
		return err
	}
	freeHead := noNode
	spares := 0
	for i := uint64(0); i < nAvail; i++ {
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		if !r.os.Retired(pa) {
			return fmt.Errorf("reviver: snapshot spare PA %d is not in a retired page", pa)
		}
		if _, dup := byPA[pa]; dup {
			return fmt.Errorf("reviver: snapshot lists PA %d as both linked and spare", pa)
		}
		idx := uint32(len(nodes))
		nodes = append(nodes, shadowNode{pa: pa, da: noDA, slot: noSlot, next: freeHead})
		byPA[pa] = idx
		freeHead = idx
		spares++
	}
	nSlot, err := rd.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nSlot; i++ {
		pa, err := rd.u64()
		if err != nil {
			return err
		}
		slot, err := rd.u64()
		if err != nil {
			return err
		}
		idx, ok := byPA[pa]
		if !ok {
			return fmt.Errorf("reviver: snapshot assigns pointer slot %d to unknown PA %d", slot, pa)
		}
		nodes[idx].slot = slot
	}

	r.nodes = nodes
	r.byDA = byDA
	r.byPA = byPA
	r.freeHead = freeHead
	r.spares = spares
	r.pending = nil
	r.pendVals = make(map[uint64]pendingVal)
	r.orphans = make(map[uint64]struct{})
	return nil
}

// snapReader is a bounds-checked little-endian reader.
type snapReader struct {
	buf []byte
	off int
}

func (s *snapReader) bytes(dst []byte) error {
	if s.off+len(dst) > len(s.buf) {
		return fmt.Errorf("reviver: snapshot truncated at offset %d", s.off)
	}
	copy(dst, s.buf[s.off:])
	s.off += len(dst)
	return nil
}

func (s *snapReader) u32() (uint32, error) {
	var b [4]byte
	if err := s.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (s *snapReader) u64() (uint64, error) {
	var b [8]byte
	if err := s.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
