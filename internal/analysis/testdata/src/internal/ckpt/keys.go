// Fixture: no-ckpt-map-order positives inside internal/ckpt itself —
// every function in the wire-format package is serialization code, so
// any map range fires regardless of sink — plus the collect-then-sort
// exemption and a suppressed commutative fold.
package ckpt

import "sort"

// Encoder is a stand-in for the real wire-format encoder.
type Encoder struct{ buf []byte }

// U64 is a stand-in field writer.
func (e *Encoder) U64(v uint64) { e.buf = append(e.buf, byte(v)) }

// WriteMap serializes a map in iteration order: the emitted bytes
// differ run to run.
func (e *Encoder) WriteMap(m map[uint64]uint64) {
	for k, v := range m { // want no-ckpt-map-order "range over map in serialization code"
		e.U64(k)
		e.U64(v)
	}
}

// U64s is a stand-in bulk column writer; the reviver arena fixture's
// SaveState feeds its SoA sections through it.
func (e *Encoder) U64s(v []uint64) {
	for _, x := range v {
		e.U64(x)
	}
}

// U32s is the narrow-column counterpart.
func (e *Encoder) U32s(v []uint32) {
	for _, x := range v {
		e.U64(uint64(x))
	}
}

// Decoder is a stand-in for the real wire-format decoder.
type Decoder struct {
	buf []byte
	pos int
}

// U64 is a stand-in field reader.
func (d *Decoder) U64() uint64 {
	if d.pos >= len(d.buf) {
		return 0
	}
	v := uint64(d.buf[d.pos])
	d.pos++
	return v
}

// U64s is the bulk column reader.
func (d *Decoder) U64s() []uint64 { return []uint64{d.U64()} }

// U32s is the narrow-column reader.
func (d *Decoder) U32s() []uint32 { return []uint32{uint32(d.U64())} }

// KeysU64 mirrors the real helper's name; SaveSorted in the pcm fixture
// iterates its result.
func KeysU64(m map[uint64]uint64) []uint64 { return Keys(m) }

// Keys is the sanctioned shape: the collection loop is exempt because
// the function sorts before anything reaches the image.
func Keys(m map[uint64]uint64) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Checksum folds a map into one order-independent word; the
// suppression reason records the commutativity argument.
func Checksum(m map[uint64]uint64) uint64 {
	var sum uint64
	//lint:ignore no-ckpt-map-order XOR fold is commutative, order cannot reach the image
	for k, v := range m {
		sum ^= k ^ v
	}
	return sum
}
