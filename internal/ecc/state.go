package ecc

import (
	"fmt"

	"wlreviver/internal/ckpt"
)

// sparseU16 encodes a sparse per-block uint16 map as a sorted-key run of
// (block, value) pairs — the shared wire shape of the schemes' usage
// tables since the dense arrays became maps.
func saveSparseU16(enc *ckpt.Encoder, m map[uint64]uint16) {
	enc.U32(uint32(len(m)))
	for _, b := range ckpt.KeysU64(m) {
		enc.U64(b)
		enc.U16(m[b])
	}
}

// loadSparseU16 decodes a saveSparseU16 run, validating strict key order
// and the block-space bound.
func loadSparseU16(dec *ckpt.Decoder, numBlocks uint64, scheme string) (map[uint64]uint16, error) {
	n := int(dec.U32())
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if uint64(n) > numBlocks {
		return nil, fmt.Errorf("ecc: %s checkpoint has %d usage entries for %d blocks", scheme, n, numBlocks)
	}
	m := make(map[uint64]uint16, n)
	var prev uint64
	for i := 0; i < n; i++ {
		b := dec.U64()
		v := dec.U16()
		if dec.Err() != nil {
			return nil, dec.Err()
		}
		if i > 0 && b <= prev {
			return nil, fmt.Errorf("ecc: %s checkpoint usage entries out of order", scheme)
		}
		if b >= numBlocks {
			return nil, fmt.Errorf("ecc: %s checkpoint usage entry for block %d outside %d blocks", scheme, b, numBlocks)
		}
		prev = b
		m[b] = v
	}
	return m, nil
}

// SaveState serializes ECP's per-block correction usage and dead flags.
func (e *ECP) SaveState(enc *ckpt.Encoder) {
	saveSparseU16(enc, e.used)
	enc.U64s(e.deadFlag.Words())
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (e *ECP) LoadState(dec *ckpt.Decoder) error {
	used, err := loadSparseU16(dec, e.numBlocks, "ECP")
	if err != nil {
		return err
	}
	dec.U64sInto(e.deadFlag.Words())
	if err := dec.Err(); err != nil {
		return err
	}
	e.used = used
	return nil
}

// SaveState serializes PAYG's local usage, pool occupancy and dead flags.
func (p *PAYG) SaveState(enc *ckpt.Encoder) {
	saveSparseU16(enc, p.localUsed)
	enc.I32s(p.setFree)
	enc.I64(p.overflow)
	enc.U64s(p.deadFlag.Words())
	enc.U64(p.pooledUsed)
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (p *PAYG) LoadState(dec *ckpt.Decoder) error {
	localUsed, err := loadSparseU16(dec, p.numBlocks, "PAYG")
	if err != nil {
		return err
	}
	setFree := dec.I32s()
	overflow := dec.I64()
	dec.U64sInto(p.deadFlag.Words())
	pooledUsed := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(setFree) != len(p.setFree) {
		return fmt.Errorf("ecc: PAYG checkpoint geometry mismatch")
	}
	p.localUsed = localUsed
	copy(p.setFree, setFree)
	p.overflow = overflow
	p.pooledUsed = pooledUsed
	return nil
}

// SaveState serializes SAFER's per-block stuck-cell usage and dead flags.
func (s *SAFER) SaveState(enc *ckpt.Encoder) {
	saveSparseU16(enc, s.used)
	enc.U64s(s.deadFlag.Words())
}

// LoadState restores state written by SaveState into a scheme built for
// the identical device geometry.
func (s *SAFER) LoadState(dec *ckpt.Decoder) error {
	used, err := loadSparseU16(dec, s.numBlocks, "SAFER")
	if err != nil {
		return err
	}
	dec.U64sInto(s.deadFlag.Words())
	if err := dec.Err(); err != nil {
		return err
	}
	s.used = used
	return nil
}
