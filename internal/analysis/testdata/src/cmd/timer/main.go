// Fixture: cmd/ is exempt from no-wallclock — drivers time experiments
// for human-facing banners. Nothing in this file is a finding.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
