package obs

import (
	"wlreviver/internal/stats"
)

// Counter names used by Metrics for the typed events. Exported so tests
// and reports can reference them without string literals.
const (
	CounterBlockFailed     = "block_failed"
	CounterCellFailed      = "cell_failed"
	CounterRevived         = "revived"
	CounterRemapCacheHit   = "remap_cache_hit"
	CounterRemapCacheMiss  = "remap_cache_miss"
	CounterGapMoved        = "gap_moved"
	CounterRegionSwapped   = "region_swapped"
	CounterDecoderRemapped = "decoder_remapped"
	CounterPageRelocated   = "page_relocated"
	CounterPageRetired     = "page_retired"
	CounterSnapshots       = "snapshots"
)

// Metrics is the standard Observer: it accumulates named event counters,
// the snapshot series, and the wear-at-death sample set. It is not safe
// for concurrent use — attach one Metrics per engine (the experiment
// harness's Scale.Observe factory does exactly that).
type Metrics struct {
	counters  map[string]uint64
	snapshots []Snapshot
	deathWear []float64 // device wear of each block at death
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]uint64)}
}

// Add increments a named counter by n. Event methods use it with the
// Counter* names; callers may add their own.
func (m *Metrics) Add(name string, n uint64) { m.counters[name] += n }

// Counter returns a named counter's value (0 when never incremented).
func (m *Metrics) Counter(name string) uint64 { return m.counters[name] }

// Counters returns a copy of all named counters.
func (m *Metrics) Counters() map[string]uint64 {
	out := make(map[string]uint64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}

// Snapshots returns the snapshot series in emission order.
func (m *Metrics) Snapshots() []Snapshot {
	out := make([]Snapshot, len(m.snapshots))
	copy(out, m.snapshots)
	return out
}

// LastSnapshot returns the most recent snapshot, if any was emitted.
func (m *Metrics) LastSnapshot() (Snapshot, bool) {
	if len(m.snapshots) == 0 {
		return Snapshot{}, false
	}
	return m.snapshots[len(m.snapshots)-1], true
}

// BlockFailed implements Observer.
func (m *Metrics) BlockFailed(da uint64, wear uint64) {
	m.Add(CounterBlockFailed, 1)
	m.deathWear = append(m.deathWear, float64(wear))
}

// CellFailed implements Observer.
func (m *Metrics) CellFailed(uint64, int) { m.Add(CounterCellFailed, 1) }

// Revived implements Observer.
func (m *Metrics) Revived(uint64, uint64) { m.Add(CounterRevived, 1) }

// RemapCacheHit implements Observer.
func (m *Metrics) RemapCacheHit(uint64) { m.Add(CounterRemapCacheHit, 1) }

// RemapCacheMiss implements Observer.
func (m *Metrics) RemapCacheMiss(uint64) { m.Add(CounterRemapCacheMiss, 1) }

// GapMoved implements Observer.
func (m *Metrics) GapMoved(int, uint64) { m.Add(CounterGapMoved, 1) }

// RegionSwapped implements Observer.
func (m *Metrics) RegionSwapped(uint64, uint64) { m.Add(CounterRegionSwapped, 1) }

// DecoderRemapped implements Observer.
func (m *Metrics) DecoderRemapped(uint64, uint64) { m.Add(CounterDecoderRemapped, 1) }

// PageRelocated implements Observer.
func (m *Metrics) PageRelocated(uint64, uint64) { m.Add(CounterPageRelocated, 1) }

// PageRetired implements Observer.
func (m *Metrics) PageRetired(uint64) { m.Add(CounterPageRetired, 1) }

// Snapshot implements Observer.
func (m *Metrics) Snapshot(s Snapshot) {
	m.Add(CounterSnapshots, 1)
	m.snapshots = append(m.snapshots, s)
}

// WearAtDeathHistogram buckets the wear-at-death samples into n bins
// spanning the observed range, or nil with no block failures observed.
func (m *Metrics) WearAtDeathHistogram(n int) *stats.Histogram {
	if len(m.deathWear) == 0 {
		return nil
	}
	min, max := m.deathWear[0], m.deathWear[0]
	for _, w := range m.deathWear {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max == min {
		max = min + 1
	}
	h := stats.NewHistogram(min, max+1, n)
	for _, w := range m.deathWear {
		h.Add(w)
	}
	return h
}

// Summary condenses a sample distribution for the JSON report.
type Summary struct {
	Count  uint64  `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	CoV    float64 `json:"cov"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// summarize builds a Summary over values (nil for an empty sample).
func summarize(values []float64) *Summary {
	if len(values) == 0 {
		return nil
	}
	var w stats.Welford
	min, max := values[0], values[0]
	for _, v := range values {
		w.Add(v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return &Summary{
		Count:  w.Count(),
		Mean:   w.Mean(),
		StdDev: w.StdDev(),
		CoV:    w.CoV(),
		Min:    min,
		P50:    stats.Percentile(values, 50),
		P90:    stats.Percentile(values, 90),
		Max:    max,
	}
}

// HistogramData is a histogram's serialisable form.
type HistogramData struct {
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	Counts []uint64 `json:"counts"`
}

// Report is Metrics' serialisable form: named event counters, the
// snapshot series, and the wear/latency distribution summaries. Its
// encoding/json output is deterministic — map keys marshal sorted — so
// two identical event streams produce byte-identical JSON.
type Report struct {
	Counters map[string]uint64 `json:"counters"`
	// Snapshots is the periodic state series (omitted when none fired).
	Snapshots []Snapshot `json:"snapshots,omitempty"`
	// WearAtDeath summarises device wear of blocks at death — the
	// realised endurance distribution.
	WearAtDeath *Summary `json:"wear_at_death,omitempty"`
	// WearAtDeathHist buckets the same samples (16 bins).
	WearAtDeathHist *HistogramData `json:"wear_at_death_hist,omitempty"`
	// AccessRatio summarises the snapshot series' accesses-per-request
	// samples — the latency proxy the paper's Table II reports.
	AccessRatio *Summary `json:"access_ratio,omitempty"`
}

// Report assembles the serialisable report.
func (m *Metrics) Report() Report {
	r := Report{Counters: m.Counters(), Snapshots: m.Snapshots()}
	r.WearAtDeath = summarize(m.deathWear)
	if h := m.WearAtDeathHistogram(16); h != nil {
		r.WearAtDeathHist = &HistogramData{Min: h.Min, Max: h.Max, Counts: h.Counts()}
	}
	if len(m.snapshots) > 0 {
		ratios := make([]float64, 0, len(m.snapshots))
		for _, s := range m.snapshots {
			if s.AccessRatio > 0 {
				ratios = append(ratios, s.AccessRatio)
			}
		}
		r.AccessRatio = summarize(ratios)
	}
	return r
}

var _ Observer = (*Metrics)(nil)
