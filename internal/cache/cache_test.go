package cache

import (
	"testing"
	"testing/quick"
)

func TestSizedConfig(t *testing.T) {
	cfg, err := SizedConfig(32*1024, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sets*cfg.Ways != 4096 {
		t.Errorf("32KB/8B should hold 4096 entries, got %d", cfg.Sets*cfg.Ways)
	}
	if cfg.Sets&(cfg.Sets-1) != 0 {
		t.Errorf("sets %d not a power of two", cfg.Sets)
	}
	for _, bad := range [][3]int{{0, 8, 8}, {32, 0, 8}, {32, 8, 0}, {8, 8, 8}} {
		if _, err := SizedConfig(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("SizedConfig%v accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []Config{{Sets: 0, Ways: 1}, {Sets: 3, Ways: 1}, {Sets: 4, Ways: 0}} {
		if _, err := New(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestHitAfterInsert(t *testing.T) {
	c, _ := New(Config{Sets: 4, Ways: 2})
	if c.Lookup(42) {
		t.Fatal("first lookup should miss")
	}
	if !c.Lookup(42) {
		t.Fatal("second lookup should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestHitRateEmpty(t *testing.T) {
	c, _ := New(Config{Sets: 2, Ways: 1})
	if c.HitRate() != 0 {
		t.Error("empty cache hit rate should be 0")
	}
}

func TestLRUEviction(t *testing.T) {
	// Single set, 2 ways: fill with a,b; touch a; insert c -> b evicted.
	c, _ := New(Config{Sets: 1, Ways: 2})
	c.Lookup(1)
	c.Lookup(2)
	c.Lookup(1) // 1 is now MRU
	c.Lookup(3) // evicts 2
	if !c.Contains(1) {
		t.Error("1 should survive (MRU)")
	}
	if c.Contains(2) {
		t.Error("2 should be evicted (LRU)")
	}
	if !c.Contains(3) {
		t.Error("3 should be present")
	}
}

func TestContainsDoesNotInsert(t *testing.T) {
	c, _ := New(Config{Sets: 2, Ways: 1})
	if c.Contains(9) {
		t.Fatal("empty cache contains nothing")
	}
	if c.Contains(9) {
		t.Fatal("Contains must not insert")
	}
	if c.Hits() != 0 && c.Misses() != 0 {
		t.Error("Contains must not touch stats")
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(Config{Sets: 2, Ways: 2})
	c.Lookup(5)
	c.Invalidate(5)
	if c.Contains(5) {
		t.Error("invalidated key still present")
	}
	c.Invalidate(99) // absent key: no-op, no panic
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	c, _ := New(Config{Sets: 64, Ways: 4})
	// Working set of 64 keys into 256 entries: after warmup, all hits.
	for round := 0; round < 10; round++ {
		for k := uint64(0); k < 64; k++ {
			c.Lookup(k)
		}
	}
	if got := c.HitRate(); got < 0.85 {
		t.Errorf("hit rate %v too low for resident working set", got)
	}
}

func TestEntries(t *testing.T) {
	c, _ := New(Config{Sets: 8, Ways: 4})
	if c.Entries() != 32 {
		t.Errorf("entries = %d", c.Entries())
	}
}

// Property: a key just looked up is always present immediately after.
func TestQuickLookupThenContains(t *testing.T) {
	c, _ := New(Config{Sets: 16, Ways: 4})
	prop := func(key uint64) bool {
		c.Lookup(key)
		return c.Contains(key)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals total lookups.
func TestQuickStatsBalance(t *testing.T) {
	prop := func(keys []uint64) bool {
		c, err := New(Config{Sets: 4, Ways: 2})
		if err != nil {
			return false
		}
		for _, k := range keys {
			c.Lookup(k)
		}
		return c.Hits()+c.Misses() == uint64(len(keys))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
