package reviver

import (
	"testing"

	"wlreviver/internal/osmodel"
	"wlreviver/internal/trace"
)

// Wear a system until failures are linked, snapshot, "reboot" (fresh OS
// model + fresh Reviver over the same non-volatile device and leveler),
// restore, and verify the system continues with data and invariants
// intact.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 300, seed: 21})
	g, _ := trace.NewUniform(256, 21)
	for i := 0; i < 600_000 && h.rv.LinkedFailures() < 5; i++ {
		if !h.write(g.Next()) {
			t.Fatal("memory died before enough failures accumulated")
		}
	}
	if h.rv.LinkedFailures() < 5 {
		t.Skip("not enough failures to make the test meaningful")
	}
	// Drain any suspension so the snapshot is clean.
	for h.rv.HasPending() {
		if !h.write(g.Next()) {
			t.Fatal("memory died while draining")
		}
	}
	snap, err := h.rv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantLinks := h.rv.LinkedFailures()
	wantSpares := h.rv.AvailableSpares()
	wantRetired := h.os.RetiredPages()

	// Reboot: the PCM (device) and the controller's wear-leveling
	// registers (leveler) are non-volatile; the OS and the framework's
	// tables are rebuilt.
	freshOS, err := osmodel.New(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Config{}, h.lv, h.be, freshOS)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.LinkedFailures() != wantLinks {
		t.Errorf("links after restore: %d, want %d", fresh.LinkedFailures(), wantLinks)
	}
	if fresh.AvailableSpares() != wantSpares {
		t.Errorf("spares after restore: %d, want %d", fresh.AvailableSpares(), wantSpares)
	}
	if freshOS.RetiredPages() != wantRetired {
		t.Errorf("retired pages after restore: %d, want %d", freshOS.RetiredPages(), wantRetired)
	}

	// The restored system must read back every surviving PA's data.
	h.os = freshOS
	h.rv = fresh
	h.verifyTheorems()
	h.verifyContent()

	// And keep running: another wear-out leg with invariants checked.
	h.run(g, 100_000, 5_000)
}

func TestSnapshotRejectsPending(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 64, blocksPerPage: 16, endurance: 1e9, seed: 22})
	// Force a suspension artificially: kill the gap target with no spares.
	h.rv.suspend(1, 0, false, 0, false)
	if _, err := h.rv.Snapshot(); err == nil {
		t.Fatal("snapshot with pending deliveries must fail")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	h := newHarness(t, harnessOpts{blocks: 64, blocksPerPage: 16, endurance: 1e9, seed: 23})
	good, err := h.rv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"truncated":   good[:len(good)-1],
		"bad version": func() []byte { b := append([]byte{}, good...); b[4] = 99; return b }(),
	}
	for name, data := range cases {
		freshOS, _ := osmodel.New(64, 16)
		fresh, _ := New(Config{}, h.lv, h.be, freshOS)
		if err := fresh.Restore(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestRestoreValidatesAgainstChip(t *testing.T) {
	// A snapshot taken against one chip must be rejected by a different
	// (healthy) chip: its links reference blocks the new chip says are
	// alive.
	h := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 250, seed: 24})
	g, _ := trace.NewUniform(256, 24)
	for i := 0; i < 800_000 && h.rv.LinkedFailures() == 0; i++ {
		if !h.write(g.Next()) {
			break
		}
	}
	if h.rv.LinkedFailures() == 0 {
		t.Skip("no failures")
	}
	for h.rv.HasPending() {
		h.write(g.Next())
	}
	snap, err := h.rv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := newHarness(t, harnessOpts{blocks: 256, blocksPerPage: 16, endurance: 1e9, seed: 25})
	if err := other.rv.Restore(snap); err == nil {
		t.Fatal("snapshot restored against a chip with no matching failures")
	}
}
