package sim

import (
	"fmt"
	"strings"

	"wlreviver/internal/trace"
)

// AttackRow is one (attack, scheme) lifetime measurement.
type AttackRow struct {
	Attack string
	Scheme string
	// LifetimeWPB is writes-per-block until 30% capacity loss; Survived
	// is set when the attack budget ran out first.
	LifetimeWPB float64
	Survived    bool
}

// AttacksResult measures malicious wear-out resistance: the paper (§IV-B)
// argues WL-Reviver's benefit persists under "malicious attacks,
// including birthday paradox attack" — this experiment quantifies it.
type AttacksResult struct {
	Rows []AttackRow
	// SimWrites is the total simulated writes across all runs.
	SimWrites uint64
}

// TotalWrites reports the experiment's simulated write volume.
func (r *AttacksResult) TotalWrites() uint64 { return r.SimWrites }

// Attacks runs address-hammering and birthday-paradox attacks against
// ECP6 + Start-Gap with and without WL-Reviver, reporting the attacker's
// cost to destroy 30% of the memory's capacity — one job per
// (attack, scheme) engine.
func Attacks(s Scale) (*AttacksResult, error) {
	attacks := []struct {
		name string
		make func(seed uint64) (trace.Generator, error)
	}{
		{"hammer-1", func(seed uint64) (trace.Generator, error) {
			return trace.NewHammer(s.Blocks, []uint64{s.Blocks / 3})
		}},
		{"hammer-16", func(seed uint64) (trace.Generator, error) {
			targets := make([]uint64, 16)
			for i := range targets {
				targets[i] = uint64(i) * 37 % s.Blocks
			}
			return trace.NewHammer(s.Blocks, targets)
		}},
		{"birthday-16", func(seed uint64) (trace.Generator, error) {
			return trace.NewBirthdayParadox(s.Blocks, 16, 4*s.GapWritePeriod*s.Blocks/64, seed)
		}},
	}
	var jobs []Job[AttackRow]
	for _, atk := range attacks {
		for _, withWLR := range []bool{false, true} {
			scheme := "ECP6-SG"
			if withWLR {
				scheme = "ECP6-SG-WLR"
			}
			key := "attacks/" + atk.name + "/" + scheme
			jobs = append(jobs, Job[AttackRow]{
				Name: key,
				Run: func() (AttackRow, uint64, error) {
					gen, err := atk.make(s.Seed)
					if err != nil {
						return AttackRow{}, 0, err
					}
					cfg := s.engineConfig(key)
					if withWLR {
						cfg.Protector = ProtectorWLReviver
					} else {
						cfg.Protector = ProtectorNone
					}
					e, err := NewEngine(cfg, gen)
					if err != nil {
						return AttackRow{}, 0, err
					}
					curve, err := runCurve(e, s.Checkpoint.driver(key), atk.name, usable, 0.70, s.maxWrites(), s.batch())
					if err != nil {
						return AttackRow{}, 0, err
					}
					return AttackRow{
						Attack:      atk.name,
						Scheme:      scheme,
						LifetimeWPB: curve.Points[len(curve.Points)-1].X,
						Survived:    curve.Points[len(curve.Points)-1].Y > 0.70,
					}, e.Writes(), nil
				},
			})
		}
	}
	rows, writes, err := CollectJobs(jobs, s.Workers)
	if err != nil {
		return nil, err
	}
	return &AttacksResult{Rows: rows, SimWrites: writes}, nil
}

// String formats the attack table.
func (r *AttacksResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Malicious wear-out attacks — attacker writes/block to destroy 30%% of capacity\n")
	fmt.Fprintf(&b, "%-14s %-14s %14s\n", "Attack", "Scheme", "Cost")
	for _, row := range r.Rows {
		cost := fmt.Sprintf("%.0f", row.LifetimeWPB)
		if row.Survived {
			cost = fmt.Sprintf(">%.0f", row.LifetimeWPB)
		}
		fmt.Fprintf(&b, "%-14s %-14s %14s\n", row.Attack, row.Scheme, cost)
	}
	return b.String()
}
