package wlreviver

import (
	"wlreviver/internal/obs"
)

// Observer receives typed engine lifecycle events — block and cell
// failures, revivals, remap-cache hits, leveler operations, page
// retirements — plus periodic Snapshot samples paced in simulated
// writes. Attach one via Config.Observer; observation is passive (the
// simulated outcome is byte-identical with and without it) and free when
// no observer is attached. Embed ObserverBase to implement a subset of
// events, or use Metrics for a ready-made accumulator.
type Observer = obs.Observer

// ObserverBase is a no-op Observer to embed when implementing only the
// events of interest.
type ObserverBase = obs.Base

// Snapshot is a periodic cross-layer state sample an Observer receives
// every Config.SnapshotEvery simulated writes.
type Snapshot = obs.Snapshot

// Metrics is the standard Observer: named event counters, the snapshot
// series, and wear-at-death distribution summaries. Retrieve it from a
// running System with System.Metrics(); serialise it with
// Metrics.Report (deterministic JSON).
type Metrics = obs.Metrics

// MetricsReport is a Metrics accumulator's serialisable form.
type MetricsReport = obs.Report

// NewMetrics returns an empty Metrics accumulator to use as
// Config.Observer.
func NewMetrics() *Metrics { return obs.NewMetrics() }
