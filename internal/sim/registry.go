package sim

import (
	"fmt"
	"sort"
)

// ReferenceWorkloads are the two Table I benchmarks the paper's
// per-workload figures (6–8) and Table II are evaluated on.
var ReferenceWorkloads = []string{"ocean", "mg"}

// Experiment is one registered evaluation preset: a stable name, a
// one-line description, and a runner producing the printable result.
// Every result also implements TotalWrites() uint64 (write-volume
// accounting) and, for the curve figures, CurveData() (CSV export).
type Experiment struct {
	Name string
	Doc  string
	Run  func(Scale) (fmt.Stringer, error)
}

// Experiments returns the ordered experiment registry — the single place
// evaluation presets are declared. The CLI's -exp dispatch and the public
// wlreviver re-exports are both built over it, so adding an experiment
// here surfaces it everywhere.
func Experiments() []Experiment {
	return []Experiment{
		{
			Name: "table1",
			Doc:  "benchmark write CoVs, paper vs synthetic stand-ins",
			Run:  func(s Scale) (fmt.Stringer, error) { return Table1(s) },
		},
		{
			Name: "fig5",
			Doc:  "lifetime to 30% capacity loss per benchmark, ±WL-Reviver",
			Run:  func(s Scale) (fmt.Stringer, error) { return Fig5(s) },
		},
		{
			Name: "fig6",
			Doc:  "capacity-survival curves under six ECC/leveler stacks",
			Run:  func(s Scale) (fmt.Stringer, error) { return bothWorkloads(s, Fig6) },
		},
		{
			Name: "fig7",
			Doc:  "user-usable space, WL-Reviver vs FREE-p reservations",
			Run:  func(s Scale) (fmt.Stringer, error) { return bothWorkloads(s, Fig7) },
		},
		{
			Name: "fig8",
			Doc:  "software-usable space, WL-Reviver vs LLS",
			Run:  func(s Scale) (fmt.Stringer, error) { return bothWorkloads(s, Fig8) },
		},
		{
			Name: "table2",
			Doc:  "access time and usable space at 10/20/30% failed blocks",
			Run: func(s Scale) (fmt.Stringer, error) {
				return Table2(s, []string{"mg", "ocean"})
			},
		},
		{
			Name: "wolfram",
			Doc:  "WoLFRaM decoder remapping: bare vs FREE-p vs LLS vs WL-Reviver",
			Run: func(s Scale) (fmt.Stringer, error) {
				return bothWorkloads(s, func(s Scale, w string) (*FigLevelerResult, error) {
					return FigLeveler(s, w, LevelerWoLFRaM, "wolfram")
				})
			},
		},
		{
			Name: "softwear",
			Doc:  "SoftWear OS-level page leveling: bare vs FREE-p vs LLS vs WL-Reviver",
			Run: func(s Scale) (fmt.Stringer, error) {
				return bothWorkloads(s, func(s Scale, w string) (*FigLevelerResult, error) {
					return FigLeveler(s, w, LevelerSoftWear, "softwear")
				})
			},
		},
		{
			Name: "attacks",
			Doc:  "hammering and birthday-paradox attack costs, ±WL-Reviver",
			Run:  func(s Scale) (fmt.Stringer, error) { return Attacks(s) },
		},
	}
}

// ExperimentNames returns the registered names in registry order.
func ExperimentNames() []string {
	exps := Experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment returns the registered experiment with the given name,
// or an error listing the known names.
func LookupExperiment(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	known := ExperimentNames()
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q (known: %v): %w", name, known, ErrUnknownExperiment)
}

// DeviceStack is a named ECC/leveler/protector stack drawn from the
// experiment registry's sweeps, so a fleet tenant can ask for "the
// stack Figure 6's ECP6-SG-WLR arm runs" by name instead of spelling
// out the component selectors. Names are qualified by the experiment
// that defines them ("fig6/ECP6-SG-WLR", "fig7/FREE-p(10%)", ...).
type DeviceStack struct {
	// Name is the registry key, "<experiment>/<arm>".
	Name string
	// ECC, Leveler, Protector select the stack's components.
	ECC       ECCKind
	Leveler   LevelerKind
	Protector ProtectorKind
	// FreepReserveFraction is FREE-p's pre-reservation (fig7 arms).
	FreepReserveFraction float64
}

// DeviceStacks returns the named stacks in registry order: Figure 6's
// six ECC/leveler arms, Figure 7's protection ladder and Figure 8's
// WLR-vs-LLS pair — every per-engine configuration the paper's
// per-workload figures sweep.
func DeviceStacks() []DeviceStack {
	stacks := []DeviceStack{
		{Name: "fig6/ECP6", ECC: ECCECP6, Leveler: LevelerNone, Protector: ProtectorNone},
		{Name: "fig6/PAYG", ECC: ECCPAYG, Leveler: LevelerNone, Protector: ProtectorNone},
		{Name: "fig6/ECP6-SG", ECC: ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorNone},
		{Name: "fig6/PAYG-SG", ECC: ECCPAYG, Leveler: LevelerStartGap, Protector: ProtectorNone},
		{Name: "fig6/ECP6-SG-WLR", ECC: ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorWLReviver},
		{Name: "fig6/PAYG-SG-WLR", ECC: ECCPAYG, Leveler: LevelerStartGap, Protector: ProtectorWLReviver},
		{Name: "fig7/WL-Reviver", ECC: ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorWLReviver},
	}
	for _, pct := range []float64{0, 0.05, 0.10, 0.15} {
		stacks = append(stacks, DeviceStack{
			Name: fmt.Sprintf("fig7/FREE-p(%.0f%%)", pct*100),
			ECC:  ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorFREEp,
			FreepReserveFraction: pct,
		})
	}
	stacks = append(stacks,
		DeviceStack{Name: "fig8/WL-Reviver", ECC: ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorWLReviver},
		DeviceStack{Name: "fig8/LLS", ECC: ECCECP6, Leveler: LevelerStartGap, Protector: ProtectorLLS},
	)
	// The new-leveler experiments' protection ladders (wolfram, softwear).
	for _, nl := range []struct {
		exp string
		lv  LevelerKind
	}{{"wolfram", LevelerWoLFRaM}, {"softwear", LevelerSoftWear}} {
		exp, lv := nl.exp, nl.lv
		stacks = append(stacks,
			DeviceStack{Name: exp + "/" + lv.String(), ECC: ECCECP6, Leveler: lv, Protector: ProtectorNone},
			DeviceStack{Name: exp + "/" + lv.String() + "-FREE-p(10%)", ECC: ECCECP6, Leveler: lv, Protector: ProtectorFREEp, FreepReserveFraction: 0.10},
			DeviceStack{Name: exp + "/" + lv.String() + "-LLS", ECC: ECCECP6, Leveler: lv, Protector: ProtectorLLS},
			DeviceStack{Name: exp + "/" + lv.String() + "-WLR", ECC: ECCECP6, Leveler: lv, Protector: ProtectorWLReviver},
		)
	}
	return stacks
}

// DeviceStackNames returns the registered stack names in order.
func DeviceStackNames() []string {
	stacks := DeviceStacks()
	names := make([]string, len(stacks))
	for i, s := range stacks {
		names[i] = s.Name
	}
	return names
}

// LookupDeviceStack returns the named stack, or an error listing the
// known names.
func LookupDeviceStack(name string) (DeviceStack, error) {
	for _, s := range DeviceStacks() {
		if s.Name == name {
			return s, nil
		}
	}
	known := DeviceStackNames()
	sort.Strings(known)
	return DeviceStack{}, fmt.Errorf("sim: unknown device stack %q (known: %v): %w", name, known, ErrUnknownExperiment)
}

// ResultPair bundles a per-workload figure's runs over the two reference
// workloads into one result, in presentation order.
type ResultPair struct {
	First  fmt.Stringer
	Second fmt.Stringer
}

// String renders both workloads' results.
func (p ResultPair) String() string { return p.First.String() + "\n" + p.Second.String() }

// Halves returns the per-workload results in presentation order.
func (p ResultPair) Halves() []fmt.Stringer { return []fmt.Stringer{p.First, p.Second} }

// TotalWrites sums the simulated write volume across both halves.
func (p ResultPair) TotalWrites() uint64 {
	var sum uint64
	for _, h := range p.Halves() {
		if wc, ok := h.(interface{ TotalWrites() uint64 }); ok {
			sum += wc.TotalWrites()
		}
	}
	return sum
}

// bothWorkloads runs a per-workload figure for the reference workloads.
func bothWorkloads[T fmt.Stringer](s Scale, f func(Scale, string) (T, error)) (fmt.Stringer, error) {
	first, err := f(s, ReferenceWorkloads[0])
	if err != nil {
		return nil, err
	}
	second, err := f(s, ReferenceWorkloads[1])
	if err != nil {
		return nil, err
	}
	return ResultPair{First: first, Second: second}, nil
}
