package sim

import "errors"

// Sentinel errors for the package's public construction and restore
// surface. Callers — most prominently the serve layer, which maps each
// sentinel to one HTTP status — classify failures with errors.Is
// instead of matching message text; the descriptive fmt.Errorf messages
// wrap these so both the class and the detail survive.
var (
	// ErrBadConfig reports a Config (or workload/config combination)
	// that cannot assemble a system: zero geometry, mismatched address
	// spaces, unknown component selectors.
	ErrBadConfig = errors.New("invalid configuration")

	// ErrConfigMismatch reports a checkpoint image taken under a
	// different configuration than the engine it is being restored into.
	ErrConfigMismatch = errors.New("checkpoint configuration mismatch")

	// ErrUnknownExperiment reports an experiment name absent from the
	// registry.
	ErrUnknownExperiment = errors.New("unknown experiment")
)
