package analysis

import "go/ast"

// ckptImportPath is the checkpoint wire-format package; a function that
// takes one of its Encoders is serialization code by definition.
const ckptImportPath = "wlreviver/internal/ckpt"

// NoCkptMapOrder flags `range` over a map inside serialization code:
// any function in internal/ckpt, and any function elsewhere that takes
// a ckpt.Encoder parameter (which is every SaveState method and
// encode helper). Checkpoint bytes must be a pure function of state —
// the resume-equals-uninterrupted guarantee compares them byte for
// byte — and Go's randomized map iteration order would leak into them.
// Unlike ordered-map-output this rule needs no sink analysis: in a
// serialization function every statement feeds the image, so the loop
// itself is the finding. Iterate ckpt.KeysU64/ckpt.KeysString instead.
// As in ordered-map-output, a function that calls into sort or slices
// is exempt: the sanctioned fix collects keys by ranging the map once,
// then sorts — that collection loop must not re-fire the rule. Other
// deliberate sites (e.g. a loop computing a commutative checksum)
// carry //lint:ignore with the reason.
type NoCkptMapOrder struct{}

// Name implements Rule.
func (*NoCkptMapOrder) Name() string { return "no-ckpt-map-order" }

// Doc implements Rule.
func (*NoCkptMapOrder) Doc() string {
	return "serialization code (internal/ckpt, SaveState/encode funcs) must not range over maps; use ckpt.KeysU64/KeysString"
}

// Check implements Rule.
func (*NoCkptMapOrder) Check(f *File, report func(ast.Node, string, ...any)) {
	if f.IsTest() {
		return
	}
	inCkpt := f.In("internal/ckpt")
	encName, hasEnc := f.ImportName(ckptImportPath)
	if !inCkpt && !hasEnc {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if !inCkpt && !takesEncoder(fd, encName) {
			continue
		}
		if sortsInFunc(f, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(f, rng.X) {
				return true
			}
			report(rng, "range over map in serialization code; iteration order leaks into checkpoint bytes — iterate ckpt.KeysU64/KeysString")
			return true
		})
	}
}

// takesEncoder reports whether the function declares a parameter whose
// type mentions <encName>.Encoder (optionally through a pointer).
func takesEncoder(fd *ast.FuncDecl, encName string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		t := p.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Encoder" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == encName {
			return true
		}
	}
	return false
}
